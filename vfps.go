// Package vfps is a Go implementation of VFPS-SM, the participant-selection
// framework for vertical federated learning from "Hounding Data Diversity:
// Towards Participant Selection in Vertical Federated Learning" (ICDE 2025).
//
// Given a consortium of participants that each hold a vertical slice of a
// shared dataset's feature space, the library selects the sub-consortium
// that maximises a KNN-driven data-likelihood objective. The objective is
// submodular, so greedy selection carries a 1−1/e guarantee and naturally
// rewards feature diversity: near-duplicate participants are never chosen
// together. The selection protocol runs under additively homomorphic
// encryption and uses Fagin's top-k algorithm to prune the number of
// encrypted partial distances from N per query down to a small candidate
// set.
//
// Quickstart:
//
//	d, _ := vfps.GenerateDataset("Bank", 2000)
//	part, _ := vfps.VerticalSplit(d, 4, 1)
//	cons, _ := vfps.NewConsortium(ctx, vfps.Config{
//		Partition: part, Labels: d.Y, Classes: d.Classes,
//	})
//	sel, _ := cons.Select(ctx, 2, vfps.SelectOptions{})
//	fmt.Println(sel.Selected)
//
// The baselines evaluated in the paper (RANDOM, SHAPLEY, VF-MINE) are
// available through SelectWith, and downstream KNN/LR/MLP models through
// Evaluate, so end-to-end comparisons can be reproduced directly.
package vfps

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vfps/internal/baselines"
	"vfps/internal/core"
	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/he"
	"vfps/internal/mat"
	"vfps/internal/obs"
	"vfps/internal/vfl"
)

// PoolSet is a cluster-lifetime registry of Paillier randomizer pools shared
// across consortiums (and across rounds of one): precomputed randomizers
// survive the gaps between protocol phases instead of each consortium paying
// pool warm-up again. Pass one via Config.SharedPool; the caller owns Close.
type PoolSet = he.PoolSet

// NewPoolSet builds a shared randomizer pool registry; buffer and workers
// size each per-key pool (<= 0 select the defaults: buffer 64, one worker).
func NewPoolSet(buffer, workers int) *PoolSet { return he.NewPoolSet(buffer, workers) }

// Re-exported data types: the dataset layer is part of the public surface.
type (
	// Dataset is a labelled classification dataset.
	Dataset = dataset.Dataset
	// Partition is a vertical split of a dataset across participants.
	Partition = dataset.Partition
	// Selection reports a VFPS-SM run: the chosen participants, objective
	// value, similarity matrix, and full cost accounting.
	Selection = core.Selection
	// CostCounts is a snapshot of primitive-operation counts.
	CostCounts = costmodel.Raw
)

// Method identifies a participant-selection strategy.
type Method string

// The selection strategies evaluated in the paper.
const (
	MethodVFPS     Method = "vfps-sm"      // this library's contribution
	MethodVFPSBase Method = "vfps-sm-base" // without Fagin pruning
	MethodRandom   Method = "random"
	MethodShapley  Method = "shapley"
	MethodVFMine   Method = "vfmine"
)

// Config wires a consortium.
type Config struct {
	// Partition holds each participant's local features (one row set shared
	// by all participants).
	Partition *Partition
	// Labels are the instance labels held by the leader participant.
	Labels []int
	// Classes is the number of label classes.
	Classes int
	// Scheme selects the protection backend: "paillier" for real additive
	// HE, "secagg" for SMC-style pairwise masking (exact aggregates, no
	// public-key operations, but requires that no two parties collude with
	// the server), "dp" for noise-based differential privacy (cheapest, but
	// perturbs the selection — see DPEpsilon), or "plain" (default) for the
	// op-count-preserving HE simulation used by benchmark sweeps.
	Scheme string
	// DPEpsilon and DPDelta tune the "dp" scheme's per-release privacy
	// (defaults 1.0 and 1e-5).
	DPEpsilon, DPDelta float64
	// KeyBits sizes the Paillier modulus (default 512 here; use ≥ 2048 in
	// adversarial deployments).
	KeyBits int
	// ShuffleSeed seeds the shared pseudo-ID permutation (identity
	// security); any fixed value shared by the consortium works.
	ShuffleSeed int64
	// FaginBatch is the mini-batch size b for ranked-list streaming
	// (default 32).
	FaginBatch int
	// Parallelism pins the HE pipeline's concurrency on every role (party
	// fan-out, worker-pool encryption/decryption, randomizer precompute):
	// 1 forces fully serial execution, 0 uses the default degree
	// (VFPS_PARALLELISM or GOMAXPROCS). Selection results are identical at
	// every setting; only wall-clock time changes.
	Parallelism int
	// Pack enables Paillier slot packing: several fixed-point partial
	// distances travel in each ciphertext, dividing encryption count,
	// decryption count and bytes on the wire by the pack factor. Selection
	// results are bit-identical with packing on or off. Ignored by the other
	// schemes.
	Pack bool
	// PackAdaptive lets the aggregation server renegotiate the packing slot
	// width per round from the magnitude bounds the parties advertise,
	// packing more values per ciphertext than the static worst-case geometry
	// whenever the data allows. Requires Pack; selections stay bit-identical.
	PackAdaptive bool
	// ChunkBytes > 0 splits collection responses into ≤ChunkBytes ciphertext
	// chunks on the binary codec, letting the leader pipeline chunk
	// decryption; gob and legacy peers keep whole-blob framing.
	ChunkBytes int
	// DeltaCache enables cross-round delta encoding: repeat queries resend
	// only the ciphertext blocks that changed since the previous round.
	DeltaCache bool
	// ShardWorkers ≥ 2 shards the ciphertext tree reduce across that many
	// aggregation workers over aligned power-of-two party subtrees.
	// Selections are bit-identical at every worker count.
	ShardWorkers int
	// PackWidthHint seeds the adaptive pack negotiation with a slot width a
	// previous consortium learned over the same data shape, so round one
	// packs adaptively instead of paying the static warm-up. Only meaningful
	// with Pack+PackAdaptive; 0 keeps pure in-band negotiation.
	PackWidthHint int
	// EncryptWindow pins the fixed-base window width used by encryption
	// randomizer precompute: 0 keeps the default (6), negative restores
	// classic uniform-r sampling (one full modular exponentiation per
	// randomizer; see SECURITY.md on the subgroup-sampling trade-off).
	// Selection results are bit-identical at every setting.
	EncryptWindow int
	// Mont selects the Paillier modular-arithmetic backend: 0 follows the
	// process default (the Montgomery kernel of internal/mont, unless
	// VFPS_MONT=0 in the environment), positive forces the kernel, negative
	// forces pure math/big. Both backends compute identical residues, so
	// selection results are bit-identical at every setting; the stdlib path
	// exists for auditability. Ignored by the other schemes.
	Mont int
	// SharedPool, when non-nil, attaches this consortium's encrypting roles
	// to a cluster-lifetime PoolSet shared with other consortiums instead of
	// starting private pools. The caller owns the set's lifecycle
	// (PoolSet.Close); closing the consortium leaves the shared pools
	// running.
	SharedPool *PoolSet
	// Wire selects the protocol codec: "gob" (default) or "binary" (the
	// compact versioned wire format of internal/wire). Empty falls back to
	// the VFPS_WIRE environment variable, then "gob". Selection results are
	// bit-identical across codecs; only bytes on the wire change.
	Wire string
	// SpeculateTA lets the leader's threshold-variant scan decrypt round r+1
	// concurrently with evaluating round r's stop condition; a speculation the
	// threshold invalidates is discarded and its decryptions are surfaced as
	// vfps_ta_speculative_waste_total (never in the cost counters, which stay
	// identical to the serial scan). Selections are bit-identical either way.
	SpeculateTA bool
	// SimCache memoises similarity reports by (roster, query set, variant, K)
	// across this consortium's selections: a selection whose membership and
	// parameters recur skips the encrypted similarity phase entirely. Exact —
	// the replayed W is the one a fresh run would compute — but opt-in, since
	// it short-circuits the per-run cost profile benchmarks measure.
	SimCache bool
	// Obs installs metrics and tracing on every role of the consortium. Nil
	// falls back to the process default observer (obs.SetDefault); when that
	// is also unset, observability stays disabled at no measurable cost.
	Obs *obs.Observer
	// Instance labels the consortium's metric series when several
	// consortiums share one registry (default "local").
	Instance string
}

// Consortium is a wired VFL deployment ready to run participant selection
// and downstream training.
type Consortium struct {
	cluster *vfl.Cluster
	pt      *Partition
	labels  []int
	classes int

	// mu guards the churn-era state below. It intentionally does NOT fence
	// selections against membership changes — callers that interleave them
	// hold their own lock (the server layer uses a per-consortium run lock).
	mu       sync.Mutex
	simCache *core.SimCache
	// lastSelected remembers the most recent selection as the default prior
	// for the "warm" optimizer.
	lastSelected []int
}

// NewConsortium builds the full in-process deployment: key server,
// aggregation server, one node per participant, and the leader.
func NewConsortium(ctx context.Context, cfg Config) (*Consortium, error) {
	if cfg.Partition == nil || cfg.Partition.P() == 0 {
		return nil, fmt.Errorf("vfps: config needs a partition")
	}
	n := cfg.Partition.Parties[0].Rows
	if len(cfg.Labels) != n {
		return nil, fmt.Errorf("vfps: %d labels for %d rows", len(cfg.Labels), n)
	}
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("vfps: need at least 2 classes")
	}
	cl, err := vfl.NewLocalCluster(ctx, vfl.ClusterConfig{
		Partition:     cfg.Partition,
		Scheme:        cfg.Scheme,
		KeyBits:       cfg.KeyBits,
		ShuffleSeed:   cfg.ShuffleSeed,
		Batch:         cfg.FaginBatch,
		DPEpsilon:     cfg.DPEpsilon,
		DPDelta:       cfg.DPDelta,
		Parallelism:   cfg.Parallelism,
		Pack:          cfg.Pack,
		PackAdaptive:  cfg.PackAdaptive,
		ChunkBytes:    cfg.ChunkBytes,
		DeltaCache:    cfg.DeltaCache,
		ShardWorkers:  cfg.ShardWorkers,
		SpeculateTA:   cfg.SpeculateTA,
		PackHint:      cfg.PackWidthHint,
		EncryptWindow: cfg.EncryptWindow,
		Mont:          cfg.Mont,
		Pool:          cfg.SharedPool,
		Wire:          cfg.Wire,
		Obs:           cfg.Obs,
		Instance:      cfg.Instance,
	})
	if err != nil {
		return nil, err
	}
	cons := &Consortium{cluster: cl, pt: cfg.Partition, labels: cfg.Labels, classes: cfg.Classes}
	if cfg.SimCache {
		cons.simCache = core.NewSimCache(0)
		if cfg.Obs != nil {
			core.DeclareSimCacheMetrics(cfg.Obs.Registry())
		}
	}
	return cons, nil
}

// Close releases the consortium's background resources (randomizer
// precompute pools). The consortium stays usable afterwards.
func (c *Consortium) Close() { c.cluster.Close() }

// PackWidthHint exports the adaptive slot width the consortium's aggregation
// coordinator has learned (margin included; 0 before the first adaptive
// round). A serving layer can feed it into a successor consortium's
// Config.PackWidthHint to skip the static warm-up round.
func (c *Consortium) PackWidthHint() int { return c.cluster.Agg.PackHint() }

// ShardWorkers reports how many aggregation shard workers the consortium
// runs (0 when the tree reduce is unsharded).
func (c *Consortium) ShardWorkers() int { return len(c.cluster.Workers) }

// P returns the current number of participants, reflecting any membership
// changes since construction.
func (c *Consortium) P() int { return c.cluster.Leader.P() }

// PartyNames returns the current roster's node names in index order.
func (c *Consortium) PartyNames() []string { return c.cluster.PartyNames() }

// AddParticipant joins a new participant holding the given feature rows
// (one row per data instance, matching N) to the running consortium. The
// deployment is rewired in place — no teardown, surviving nodes keep their
// caches — so a re-selection after the join pays encryption only for the
// joiner's blocks when the delta cache is on. Returns the new party's node
// name. Not supported under the "secagg" scheme. Callers must not run a
// selection concurrently; the server layer fences with its per-consortium
// run lock.
func (c *Consortium) AddParticipant(features [][]float64) (string, error) {
	if len(features) != c.N() {
		return "", fmt.Errorf("vfps: joiner has %d rows, consortium holds %d", len(features), c.N())
	}
	if len(features[0]) == 0 {
		return "", fmt.Errorf("vfps: joiner holds no features")
	}
	for i, r := range features {
		if len(r) != len(features[0]) {
			return "", fmt.Errorf("vfps: joiner row %d has %d features, row 0 has %d", i, len(r), len(features[0]))
		}
	}
	return c.cluster.AddParticipant(mat.FromRows(features))
}

// RemoveParticipant removes the participant with the given index (the i in
// its party/<i> node name) and rewires the deployment in place. The last
// participant cannot be removed. Not supported under the "secagg" scheme.
func (c *Consortium) RemoveParticipant(index int) error {
	return c.cluster.RemoveParticipant(index)
}

// N returns the number of data instances.
func (c *Consortium) N() int { return c.pt.Parties[0].Rows }

// SelectOptions tunes a VFPS-SM selection. The zero value follows the
// paper's defaults.
type SelectOptions struct {
	// K is the proxy-KNN neighbour count (default 10).
	K int
	// NumQueries is the number of query samples drawn from the data
	// (default 32, or all rows if fewer). Ignored when Queries is set.
	NumQueries int
	// Queries overrides the sampled query set with explicit row indices.
	Queries []int
	// Seed drives query sampling and the stochastic optimizer.
	Seed int64
	// Stratified draws the query sample with per-class proportional
	// allocation using the leader's labels, which stabilises the likelihood
	// estimate on imbalanced data. Ignored when Queries is set.
	Stratified bool
	// Base disables the Fagin optimization (VFPS-SM-BASE).
	Base bool
	// TopK overrides the top-k protocol: "fagin" (default), "base", or
	// "threshold" (leader-assisted Threshold Algorithm). Takes precedence
	// over Base when set.
	TopK string
	// Optimizer is "greedy" (default), "lazy", "stochastic", or "warm" — the
	// last revalidates a prior selection and repairs only displaced picks,
	// producing exactly the greedy answer. The prior is WarmStart when set,
	// otherwise the consortium's own most recent selection.
	Optimizer string
	// WarmStart overrides the "warm" optimizer's prior selection. Ignored by
	// the other optimizers.
	WarmStart []int
	// Parallelism bounds concurrent in-flight queries during the similarity
	// phase (default 1). Results are identical to the sequential run.
	Parallelism int
}

// queriesFor resolves the query set against a consortium, honouring the
// Stratified option (which needs the leader-held labels).
func (c *Consortium) queriesFor(o SelectOptions) []int {
	if len(o.Queries) > 0 {
		return o.Queries
	}
	nq := o.NumQueries
	if nq <= 0 {
		nq = 32
	}
	if o.Stratified {
		return core.SampleQueriesStratified(c.labels, c.classes, nq, o.Seed)
	}
	return core.SampleQueries(c.N(), nq, o.Seed)
}

func (o SelectOptions) k() int {
	if o.K <= 0 {
		return 10
	}
	return o.K
}

// Select runs VFPS-SM and returns the chosen sub-consortium with full cost
// accounting.
func (c *Consortium) Select(ctx context.Context, count int, opts SelectOptions) (*Selection, error) {
	variant := vfl.VariantFagin
	if opts.Base {
		variant = vfl.VariantBase
	}
	if opts.TopK != "" {
		variant = vfl.Variant(opts.TopK)
	}
	c.mu.Lock()
	prior := opts.WarmStart
	if prior == nil {
		prior = c.lastSelected
	}
	cache := c.simCache
	c.mu.Unlock()
	sel, err := core.Select(ctx, c.cluster.Leader, count, core.Config{
		K:           opts.k(),
		Queries:     c.queriesFor(opts),
		Variant:     variant,
		Optimizer:   core.Optimizer(opts.Optimizer),
		Seed:        opts.Seed,
		Parallelism: opts.Parallelism,
		WarmStart:   prior,
		Cache:       cache,
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.lastSelected = append([]int(nil), sel.Selected...)
	c.mu.Unlock()
	return sel, nil
}

// AdaptiveOptions tunes SelectAdaptive: selection that adds query batches
// until the similarity estimate stabilises instead of spending a fixed query
// budget.
type AdaptiveOptions struct {
	SelectOptions
	// ChunkSize is the number of queries per round (default 8).
	ChunkSize int
	// Tolerance is the convergence threshold on W entries (default 0.01).
	Tolerance float64
	// MinQueries is the floor before convergence may trigger.
	MinQueries int
}

// SelectAdaptive runs VFPS-SM with an adaptive query budget: NumQueries (or
// Queries) caps the budget, and the run stops early once two consecutive
// similarity estimates agree within Tolerance. Selection.QueriesUsed reports
// the realised budget.
func (c *Consortium) SelectAdaptive(ctx context.Context, count int, opts AdaptiveOptions) (*Selection, error) {
	variant := vfl.VariantFagin
	if opts.Base {
		variant = vfl.VariantBase
	}
	if opts.TopK != "" {
		variant = vfl.Variant(opts.TopK)
	}
	c.mu.Lock()
	prior := opts.WarmStart
	if prior == nil {
		prior = c.lastSelected
	}
	c.mu.Unlock()
	return core.SelectAdaptive(ctx, c.cluster.Leader, count, core.AdaptiveConfig{
		Config: core.Config{
			K:           opts.k(),
			Queries:     c.queriesFor(opts.SelectOptions),
			Variant:     variant,
			Optimizer:   core.Optimizer(opts.Optimizer),
			Seed:        opts.Seed,
			Parallelism: opts.Parallelism,
			WarmStart:   prior,
		},
		ChunkSize:  opts.ChunkSize,
		Tolerance:  opts.Tolerance,
		MinQueries: opts.MinQueries,
	})
}

// BaselineSelection reports a baseline method's outcome with the same cost
// accounting as Selection.
type BaselineSelection struct {
	Method           Method
	Selected         []int
	Scores           []float64 // per-participant scores (nil for random)
	Counts           CostCounts
	WallTime         time.Duration
	ProjectedSeconds float64
}

// SelectWith runs any of the paper's selection strategies, returning a
// uniform report. For MethodVFPS and MethodVFPSBase the Selection is
// converted to a BaselineSelection for comparison tables.
func (c *Consortium) SelectWith(ctx context.Context, method Method, count int, opts SelectOptions) (*BaselineSelection, error) {
	start := time.Now()
	switch method {
	case MethodVFPS, MethodVFPSBase:
		opts.Base = method == MethodVFPSBase
		sel, err := c.Select(ctx, count, opts)
		if err != nil {
			return nil, err
		}
		return &BaselineSelection{
			Method:           method,
			Selected:         sel.Selected,
			Counts:           sel.Counts,
			WallTime:         sel.WallTime,
			ProjectedSeconds: sel.ProjectedSeconds,
		}, nil
	case MethodRandom:
		sel, err := baselines.SelectRandom(c.P(), count, opts.Seed)
		if err != nil {
			return nil, err
		}
		return &BaselineSelection{Method: method, Selected: sel, WallTime: time.Since(start)}, nil
	case MethodShapley, MethodVFMine:
		var counts costmodel.Counts
		px, err := baselines.NewProxy(c.pt, c.labels, c.classes, c.queriesFor(opts), opts.k())
		if err != nil {
			return nil, err
		}
		px.Counts = &counts
		var scores []float64
		if method == MethodShapley {
			scores, err = baselines.ShapleyValues(px)
		} else {
			scores, err = baselines.VFMineScores(px, 0, opts.Seed)
		}
		if err != nil {
			return nil, err
		}
		raw := counts.Snapshot()
		return &BaselineSelection{
			Method:           method,
			Selected:         baselines.SelectTop(scores, count),
			Scores:           scores,
			Counts:           raw,
			WallTime:         time.Since(start),
			ProjectedSeconds: costmodel.For(c.cluster.Leader.Scheme().Name()).Seconds(raw),
		}, nil
	default:
		return nil, fmt.Errorf("vfps: unknown selection method %q", method)
	}
}

// RewardShares computes fair, order-independent contribution shares from a
// completed selection: the Shapley values of the KNN submodular likelihood
// over the estimated similarity matrix. This addresses the reward-fairness
// limitation the paper leaves as future work (§IV-D) — greedy gains
// systematically under-credit later picks, while these shares are symmetric
// (exact duplicates earn the same) and sum to the full-consortium objective.
func RewardShares(sel *Selection) ([]float64, error) {
	if sel == nil {
		return nil, fmt.Errorf("vfps: nil selection")
	}
	return core.RewardShares(sel.W)
}

// Partition exposes the consortium's vertical partition.
func (c *Consortium) Partition() *Partition { return c.pt }

// Labels exposes the leader-held labels.
func (c *Consortium) Labels() []int { return c.labels }

// Classes returns the number of label classes.
func (c *Consortium) Classes() int { return c.classes }
