package vfps

import (
	"vfps/internal/baselines"
)

// KNNShapley computes exact per-sample Shapley values under the KNN utility
// (Jia et al., VLDB 2019) in O(N log N) per test point — the data-valuation
// companion to participant-level selection: once a sub-consortium is
// selected, rank which training records help or hurt the proxy model.
//
// trainPt/testPt must share the same party layout (e.g. both produced by
// Partition.ApplyRows on the same vertical split). A positive value means
// the sample improves KNN predictions on the test set; noisy or mislabelled
// samples come out negative.
func KNNShapley(trainPt *Partition, yTrain []int, testPt *Partition, yTest []int, k int) ([]float64, error) {
	return baselines.KNNShapleySamples(trainPt, yTrain, testPt, yTest, k)
}
