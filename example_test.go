package vfps_test

import (
	"context"
	"fmt"
	"log"

	"vfps"
)

// Example demonstrates the core workflow: wire a consortium over a vertical
// partition, select a diverse sub-consortium, and train on it.
func Example() {
	ctx := context.Background()
	data, err := vfps.GenerateDataset("Bank", 400)
	if err != nil {
		log.Fatal(err)
	}
	partition, err := vfps.VerticalSplit(data, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	cons, err := vfps.NewConsortium(ctx, vfps.Config{
		Partition: partition,
		Labels:    data.Y,
		Classes:   data.Classes,
	})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := cons.Select(ctx, 2, vfps.SelectOptions{K: 5, NumQueries: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d of %d participants\n", len(sel.Selected), cons.P())
	fmt.Printf("pruned to %v candidates per query\n", sel.AvgCandidates < float64(cons.N()-1))
	// Output:
	// selected 2 of 4 participants
	// pruned to true candidates per query
}

// ExampleConsortium_SelectWith compares the selection baselines of the
// paper on one consortium.
func ExampleConsortium_SelectWith() {
	ctx := context.Background()
	data, _ := vfps.GenerateDataset("Rice", 300)
	partition, _ := vfps.VerticalSplit(data, 3, 1)
	cons, _ := vfps.NewConsortium(ctx, vfps.Config{
		Partition: partition, Labels: data.Y, Classes: data.Classes,
	})
	opts := vfps.SelectOptions{K: 5, NumQueries: 8, Seed: 1}
	for _, m := range []vfps.Method{vfps.MethodShapley, vfps.MethodVFPS} {
		sel, err := cons.SelectWith(ctx, m, 2, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s chose %d participants\n", m, len(sel.Selected))
	}
	// Output:
	// shapley chose 2 participants
	// vfps-sm chose 2 participants
}

// ExampleRewardShares computes fair contribution shares after selection.
func ExampleRewardShares() {
	ctx := context.Background()
	data, _ := vfps.GenerateDataset("Rice", 200)
	partition, _ := vfps.VerticalSplit(data, 3, 1)
	cons, _ := vfps.NewConsortium(ctx, vfps.Config{
		Partition: partition, Labels: data.Y, Classes: data.Classes,
	})
	sel, _ := cons.Select(ctx, 3, vfps.SelectOptions{K: 5, NumQueries: 8, Seed: 1})
	shares, err := vfps.RewardShares(sel)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	fmt.Printf("shares for %d participants sum to f(P): %v\n", len(shares), sum-sel.Value < 1e-9)
	// Output:
	// shares for 3 participants sum to f(P): true
}
