// Command vfpsbench regenerates the paper's tables and figures on the
// synthetic dataset suite.
//
// Usage:
//
//	vfpsbench -exp all                 # everything, default scale
//	vfpsbench -exp table4 -rows 2000   # one experiment, bigger workload
//	vfpsbench -exp fig7 -datasets Phishing
//	vfpsbench -exp all -json out.json  # also write structured results
//
// Times are projected seconds under the calibrated cost model (see
// DESIGN.md); pass -full to use the paper's full learning-rate grid.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"vfps/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|table4|table5|fig4|fig5|fig6|fig7|fig8|fig9|exttopk|extscheme|extdp|extpruning|extbatch|parallel|all")
		rows      = flag.Int("rows", 800, "max instances per dataset")
		queries   = flag.Int("queries", 32, "KNN query samples for selection")
		k         = flag.Int("k", 10, "proxy-KNN neighbour count")
		parties   = flag.Int("parties", 4, "consortium size")
		selCount  = flag.Int("select", 2, "sub-consortium size")
		epochs    = flag.Int("epochs", 30, "max downstream training epochs")
		datasets  = flag.String("datasets", "", "comma-separated dataset subset (default all)")
		seed      = flag.Int64("seed", 1, "random seed")
		full      = flag.Bool("full", false, "use the paper's full learning-rate grid {0.001,0.01,0.1}")
		scaleRows = flag.Bool("scalerows", true, "size each dataset relative to its paper-scale row count")
		jsonPath  = flag.String("json", "", "also write structured results to this JSON file")
		withGBDT  = flag.Bool("gbdt", false, "add the GBDT extension model to the table4/table5 grids")
		repeats   = flag.Int("repeats", 1, "average the table4/table5 grids over this many seeded runs (paper: 5)")
	)
	flag.Parse()

	opt := experiments.Options{
		Rows:        *rows,
		Queries:     *queries,
		K:           *k,
		Parties:     *parties,
		SelectCount: *selCount,
		MaxEpochs:   *epochs,
		Seed:        *seed,
		ScaleRows:   *scaleRows,
		IncludeGBDT: *withGBDT,
		Repeats:     *repeats,
		Out:         os.Stdout,
	}
	if *full {
		opt.LRGrid = []float64{0.001, 0.01, 0.1}
	}
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}

	ctx := context.Background()
	runners := map[string]func() (any, error){
		"table1":     func() (any, error) { return experiments.Table1(ctx, opt) },
		"table4":     func() (any, error) { return experiments.Grid(ctx, opt) },
		"table5":     func() (any, error) { return experiments.Grid(ctx, opt) },
		"fig4":       func() (any, error) { return experiments.Fig4(ctx, opt) },
		"fig5":       func() (any, error) { return experiments.Fig5(ctx, opt) },
		"fig6":       func() (any, error) { return experiments.Fig6(ctx, opt) },
		"fig7":       func() (any, error) { return experiments.Fig7(ctx, opt) },
		"fig8":       func() (any, error) { return experiments.Fig8(ctx, opt) },
		"fig9":       func() (any, error) { return experiments.Fig9(ctx, opt) },
		"exttopk":    func() (any, error) { return experiments.ExtTopk(ctx, opt) },
		"extscheme":  func() (any, error) { return experiments.ExtScheme(ctx, opt) },
		"extdp":      func() (any, error) { return experiments.ExtDP(ctx, opt) },
		"extpruning": func() (any, error) { return experiments.ExtPruning(ctx, opt) },
		"extbatch":   func() (any, error) { return experiments.ExtBatch(ctx, opt) },
		"parallel":   func() (any, error) { return experiments.Parallel(ctx, opt) },
	}
	// "parallel" is a machine-dependent wall-clock benchmark, so it is run
	// explicitly (-exp parallel) rather than folded into -exp all.
	order := []string{"table1", "table4", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"exttopk", "extscheme", "extdp", "extpruning", "extbatch"}

	results := map[string]any{}
	runOne := func(name string) {
		run, ok := runners[name]
		if !ok {
			fatal("unknown experiment %q", name)
		}
		res, err := run()
		if err != nil {
			fatal("%s: %v", name, err)
		}
		results[name] = res
	}
	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("\n--- running %s ---\n", name)
			runOne(name)
		}
	} else {
		runOne(*exp)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal("creating %s: %v", *jsonPath, err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal("writing %s: %v", *jsonPath, err)
		}
		if err := f.Close(); err != nil {
			fatal("closing %s: %v", *jsonPath, err)
		}
		fmt.Printf("\nstructured results written to %s\n", *jsonPath)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vfpsbench: "+format+"\n", args...)
	os.Exit(1)
}
