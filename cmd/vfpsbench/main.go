// Command vfpsbench regenerates the paper's tables and figures on the
// synthetic dataset suite.
//
// Usage:
//
//	vfpsbench -exp all                 # everything, default scale
//	vfpsbench -exp table4 -rows 2000   # one experiment, bigger workload
//	vfpsbench -exp fig7 -datasets Phishing
//	vfpsbench -exp all -json out.json  # also write structured results
//
// Times are projected seconds under the calibrated cost model (see
// DESIGN.md); pass -full to use the paper's full learning-rate grid.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vfps/internal/experiments"
	"vfps/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|table4|table5|fig4|fig5|fig6|fig7|fig8|fig9|exttopk|extscheme|extdp|extpruning|extbatch|parallel|packed|wire|payload|churn|all")
		rows      = flag.Int("rows", 800, "max instances per dataset")
		queries   = flag.Int("queries", 32, "KNN query samples for selection")
		k         = flag.Int("k", 10, "proxy-KNN neighbour count")
		parties   = flag.Int("parties", 4, "consortium size")
		selCount  = flag.Int("select", 2, "sub-consortium size")
		epochs    = flag.Int("epochs", 30, "max downstream training epochs")
		datasets  = flag.String("datasets", "", "comma-separated dataset subset (default all)")
		seed      = flag.Int64("seed", 1, "random seed")
		full      = flag.Bool("full", false, "use the paper's full learning-rate grid {0.001,0.01,0.1}")
		scaleRows = flag.Bool("scalerows", true, "size each dataset relative to its paper-scale row count")
		jsonPath  = flag.String("json", "", "also write structured results to this JSON file")
		withGBDT  = flag.Bool("gbdt", false, "add the GBDT extension model to the table4/table5 grids")
		repeats   = flag.Int("repeats", 1, "average the table4/table5 grids over this many seeded runs (paper: 5)")
		tracePath = flag.String("trace", "", "record protocol phase spans and write the trace report to this JSON file")
	)
	flag.Parse()

	// With -trace, install a process-default observer so every cluster the
	// experiments build (they do not set ClusterConfig.Obs themselves) records
	// phase spans and metrics into it.
	var observer *obs.Observer
	if *tracePath != "" {
		// Experiments run many selections; size the ring generously so early
		// phases are not evicted before the report is written.
		observer = obs.NewObserver(8 * obs.DefaultTraceCapacity)
		obs.SetDefault(observer)
	}

	opt := experiments.Options{
		Rows:        *rows,
		Queries:     *queries,
		K:           *k,
		Parties:     *parties,
		SelectCount: *selCount,
		MaxEpochs:   *epochs,
		Seed:        *seed,
		ScaleRows:   *scaleRows,
		IncludeGBDT: *withGBDT,
		Repeats:     *repeats,
		Out:         os.Stdout,
	}
	if *full {
		opt.LRGrid = []float64{0.001, 0.01, 0.1}
	}
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}

	ctx := context.Background()
	runners := map[string]func(context.Context) (any, error){
		"table1":     func(ctx context.Context) (any, error) { return experiments.Table1(ctx, opt) },
		"table4":     func(ctx context.Context) (any, error) { return experiments.Grid(ctx, opt) },
		"table5":     func(ctx context.Context) (any, error) { return experiments.Grid(ctx, opt) },
		"fig4":       func(ctx context.Context) (any, error) { return experiments.Fig4(ctx, opt) },
		"fig5":       func(ctx context.Context) (any, error) { return experiments.Fig5(ctx, opt) },
		"fig6":       func(ctx context.Context) (any, error) { return experiments.Fig6(ctx, opt) },
		"fig7":       func(ctx context.Context) (any, error) { return experiments.Fig7(ctx, opt) },
		"fig8":       func(ctx context.Context) (any, error) { return experiments.Fig8(ctx, opt) },
		"fig9":       func(ctx context.Context) (any, error) { return experiments.Fig9(ctx, opt) },
		"exttopk":    func(ctx context.Context) (any, error) { return experiments.ExtTopk(ctx, opt) },
		"extscheme":  func(ctx context.Context) (any, error) { return experiments.ExtScheme(ctx, opt) },
		"extdp":      func(ctx context.Context) (any, error) { return experiments.ExtDP(ctx, opt) },
		"extpruning": func(ctx context.Context) (any, error) { return experiments.ExtPruning(ctx, opt) },
		"extbatch":   func(ctx context.Context) (any, error) { return experiments.ExtBatch(ctx, opt) },
		"parallel":   func(ctx context.Context) (any, error) { return experiments.Parallel(ctx, opt) },
		"packed":     func(ctx context.Context) (any, error) { return experiments.Packed(ctx, opt) },
		"wire":       func(ctx context.Context) (any, error) { return experiments.Wire(ctx, opt) },
		"encrypt":    func(ctx context.Context) (any, error) { return experiments.Encrypt(ctx, opt) },
		"payload":    func(ctx context.Context) (any, error) { return experiments.Payload(ctx, opt) },
		"churn":      func(ctx context.Context) (any, error) { return experiments.Churn(ctx, opt) },
	}
	// "parallel", "packed", "wire", "encrypt", "payload" and "churn" are
	// machine-dependent wall-clock benchmarks, so they are run explicitly
	// (-exp parallel / -exp packed / -exp wire / -exp encrypt /
	// -exp payload / -exp churn) rather than folded into -exp all.
	order := []string{"table1", "table4", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"exttopk", "extscheme", "extdp", "extpruning", "extbatch"}

	results := map[string]any{}
	start := time.Now()
	runOne := func(name string) {
		run, ok := runners[name]
		if !ok {
			fatal("unknown experiment %q", name)
		}
		// Each experiment runs under its own root span so the trace report's
		// top-level phases decompose the benchmark wall clock; the protocol
		// spans (select.similarity, vfl.query, ...) nest beneath it.
		rctx, sp := observer.Tracer().Start(ctx, "bench."+name)
		res, err := run(rctx)
		sp.End()
		if err != nil {
			fatal("%s: %v", name, err)
		}
		results[name] = res
	}
	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("\n--- running %s ---\n", name)
			runOne(name)
		}
	} else {
		runOne(*exp)
	}
	wall := time.Since(start)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal("creating %s: %v", *jsonPath, err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal("writing %s: %v", *jsonPath, err)
		}
		if err := f.Close(); err != nil {
			fatal("closing %s: %v", *jsonPath, err)
		}
		fmt.Printf("\nstructured results written to %s\n", *jsonPath)
	}

	if *tracePath != "" {
		report := observer.Tracer().Report()
		// Report().Phases covers only root spans; under parallelism the
		// per-query protocol spans (vfl.query, vfl.decrypt, agg.*) are
		// children of select.similarity, so summarize every span by name too
		// and collect the query IDs the run minted.
		spanSummary := obs.SummarizeSpans(report.Spans)
		qidSet := map[string]bool{}
		var queryIDs []string
		for _, s := range report.Spans {
			if qid := s.Labels["qid"]; qid != "" && !qidSet[qid] {
				qidSet[qid] = true
				queryIDs = append(queryIDs, qid)
			}
		}
		dump := struct {
			WallNs      int64                `json:"wallNs"`
			WallSecs    float64              `json:"wallSecs"`
			Trace       obs.TraceReport      `json:"trace"`
			SpanSummary []obs.PhaseSummary   `json:"spanSummary"`
			QueryIDs    []string             `json:"queryIDs,omitempty"`
			Metrics     []obs.FamilySnapshot `json:"metrics"`
		}{
			WallNs:      wall.Nanoseconds(),
			WallSecs:    wall.Seconds(),
			Trace:       report,
			SpanSummary: spanSummary,
			QueryIDs:    queryIDs,
			Metrics:     observer.Registry().Snapshot(),
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("creating %s: %v", *tracePath, err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dump); err != nil {
			fatal("writing %s: %v", *tracePath, err)
		}
		if err := f.Close(); err != nil {
			fatal("closing %s: %v", *tracePath, err)
		}
		var phaseSecs float64
		for _, p := range dump.Trace.Phases {
			phaseSecs += p.TotalSecs
		}
		fmt.Printf("trace written to %s (%d spans, phases %.3fs of %.3fs wall)\n",
			*tracePath, len(dump.Trace.Spans), phaseSecs, wall.Seconds())
		for _, p := range spanSummary {
			fmt.Printf("  %-22s %6d spans %10.3fs\n", p.Name, p.Count, p.TotalSecs)
		}
		if len(queryIDs) > 0 {
			sample := queryIDs
			if len(sample) > 5 {
				sample = sample[:5]
			}
			fmt.Printf("  %d query IDs (e.g. %s)\n", len(queryIDs), strings.Join(sample, ", "))
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vfpsbench: "+format+"\n", args...)
	os.Exit(1)
}
