package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchSmoke runs one fast experiment through the CLI and checks that a
// paper-style table is printed.
func TestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "vfpsbench")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build: %v", err)
	}
	out, err := exec.Command(bin,
		"-exp", "fig9", "-rows", "150", "-queries", "6",
		"-datasets", "Rice,Bank").CombinedOutput()
	if err != nil {
		t.Fatalf("vfpsbench failed: %v\n%s", err, out)
	}
	output := string(out)
	if !strings.Contains(output, "Fig. 9") || !strings.Contains(output, "VFPS-SM-BASE") {
		t.Fatalf("missing table:\n%s", output)
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "vfpsbench")
	if err := exec.Command("go", "build", "-o", bin, ".").Run(); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := exec.Command(bin, "-exp", "fig99").Run(); err == nil {
		t.Fatal("expected non-zero exit for unknown experiment")
	}
}

func TestBenchJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "vfpsbench")
	if err := exec.Command("go", "build", "-o", bin, ".").Run(); err != nil {
		t.Fatalf("build: %v", err)
	}
	jsonPath := filepath.Join(dir, "out.json")
	out, err := exec.Command(bin,
		"-exp", "fig9", "-rows", "120", "-queries", "6",
		"-datasets", "Rice", "-json", jsonPath).CombinedOutput()
	if err != nil {
		t.Fatalf("vfpsbench failed: %v\n%s", err, out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := parsed["fig9"]["Candidates"]; !ok {
		t.Fatalf("fig9 result missing Candidates: %s", data)
	}
}
