package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFiveProcessDeployment builds the vfpsnode binary and runs the full
// topology — key server, three participants, aggregation server, leader — as
// six separate OS processes exchanging real TCP traffic, then checks the
// leader completes a selection.
func TestFiveProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "vfpsnode")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building vfpsnode: %v", err)
	}

	var procs []*exec.Cmd
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
			}
			p.Wait()
		}
	})

	// start launches a serving role and returns its bound address, parsed
	// from the "... listening on ADDR" banner.
	start := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
		scanner := bufio.NewScanner(stdout)
		deadline := time.After(30 * time.Second)
		lineCh := make(chan string, 1)
		go func() {
			if scanner.Scan() {
				lineCh <- scanner.Text()
			}
			close(lineCh)
		}()
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatalf("role %v exited before announcing its address", args)
			}
			idx := strings.LastIndex(line, "listening on ")
			if idx < 0 {
				t.Fatalf("unexpected banner %q", line)
			}
			return strings.TrimSpace(line[idx+len("listening on "):])
		case <-deadline:
			t.Fatalf("timeout waiting for role %v", args)
		}
		return ""
	}

	const (
		dataset = "Rice"
		rows    = "120"
		parties = 3
	)
	scheme := os.Getenv("VFPSNODE_TEST_SCHEME")
	if scheme == "" {
		scheme = "plain"
	}
	// VFPSNODE_TEST_WIRE picks the protocol codec: "" (gob default),
	// "binary", or "mixed" — binary everywhere except party 1, proving the
	// per-peer negotiation fallback over real TCP.
	wireName := os.Getenv("VFPSNODE_TEST_WIRE")
	wireFor := func(partyIdx int) []string {
		switch wireName {
		case "":
			return nil
		case "mixed":
			if partyIdx == 1 {
				return []string{"-wire", "gob"}
			}
			return []string{"-wire", "binary"}
		default:
			return []string{"-wire", wireName}
		}
	}
	keyAddr := start(append([]string{"-role", "keyserver", "-scheme", scheme, "-keybits", "256",
		"-parties", fmt.Sprint(parties), "-addr", "127.0.0.1:0"}, wireFor(-1)...)...)
	dir := fmt.Sprintf("keyserver=%s", keyAddr)

	partyAddrs := make([]string, parties)
	for i := 0; i < parties; i++ {
		partyAddrs[i] = start(append([]string{"-role", "party", "-index", fmt.Sprint(i),
			"-dataset", dataset, "-rows", rows, "-parties", fmt.Sprint(parties),
			"-addr", "127.0.0.1:0", "-directory", dir}, wireFor(i)...)...)
		dir += fmt.Sprintf(",party/%d=%s", i, partyAddrs[i])
	}
	aggAddr := start(append([]string{"-role", "aggserver", "-addr", "127.0.0.1:0", "-directory", dir}, wireFor(-1)...)...)
	dir += ",aggserver=" + aggAddr

	leader := exec.Command(bin, append([]string{"-role", "leader",
		"-dataset", dataset, "-rows", rows, "-parties", fmt.Sprint(parties),
		"-select", "2", "-k", "5", "-queries", "8", "-directory", dir}, wireFor(-1)...)...)
	out, err := leader.CombinedOutput()
	if err != nil {
		t.Fatalf("leader failed: %v\n%s", err, out)
	}
	output := string(out)
	if !strings.Contains(output, "selected participants:") {
		t.Fatalf("leader output missing selection:\n%s", output)
	}
	if !strings.Contains(output, "similarity matrix") {
		t.Fatalf("leader output missing similarity matrix:\n%s", output)
	}
	t.Logf("leader output:\n%s", output)
}

// TestFiveProcessDeploymentWire re-runs the TCP topology with the compact
// binary codec on every role, and once with one gob-only party so the other
// roles must negotiate down to gob for that peer.
func TestFiveProcessDeploymentWire(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	for _, w := range []string{"binary", "mixed"} {
		t.Run(w, func(t *testing.T) {
			t.Setenv("VFPSNODE_TEST_WIRE", w)
			TestFiveProcessDeployment(t)
		})
	}
}

// TestFiveProcessDeploymentSchemes re-runs the multi-process topology under
// the real Paillier and secure-aggregation protections.
func TestFiveProcessDeploymentSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	for _, scheme := range []string{"paillier", "secagg"} {
		t.Run(scheme, func(t *testing.T) {
			t.Setenv("VFPSNODE_TEST_SCHEME", scheme)
			TestFiveProcessDeployment(t)
		})
	}
}

func TestParseDirectory(t *testing.T) {
	dir, err := parseDirectory("a=1.2.3.4:5, b=6.7.8.9:10")
	if err != nil {
		t.Fatal(err)
	}
	if dir["a"] != "1.2.3.4:5" || dir["b"] != "6.7.8.9:10" {
		t.Fatalf("parsed %v", dir)
	}
	if _, err := parseDirectory("missing-equals"); err == nil {
		t.Fatal("expected parse error")
	}
	empty, err := parseDirectory("")
	if err != nil || len(empty) != 0 {
		t.Fatal("empty directory should parse")
	}
}

func TestGreedySelectLocal(t *testing.T) {
	w := [][]float64{
		{1.00, 0.95, 0.30},
		{0.95, 1.00, 0.30},
		{0.30, 0.30, 1.00},
	}
	sel, value, err := greedySelect(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selection %v", sel)
	}
	has2 := sel[0] == 2 || sel[1] == 2
	if !has2 {
		t.Fatalf("diverse element not selected: %v", sel)
	}
	if value <= 0 {
		t.Fatal("value missing")
	}
	if _, _, err := greedySelect(w, 0); err == nil {
		t.Fatal("expected count error")
	}
	if _, _, err := greedySelect(w, 4); err == nil {
		t.Fatal("expected count>P error")
	}
}

func TestSampleQueriesHelper(t *testing.T) {
	q := sampleQueries(100, 10)
	if len(q) != 10 {
		t.Fatalf("got %d", len(q))
	}
	seen := map[int]bool{}
	for _, i := range q {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("bad queries %v", q)
		}
		seen[i] = true
	}
	if len(sampleQueries(5, 10)) != 5 {
		t.Fatal("clamp failed")
	}
}
