// Command vfpsnode runs one role of a distributed VFPS-SM deployment over
// TCP: the key server, the aggregation server, an aggregation shard worker,
// a participant, or the leader that drives selection. Every data-holding
// node generates its vertical slice of the (deterministic) synthetic dataset
// locally, so no data files need distributing.
//
// Sharded aggregation (DESIGN.md §15): start -shard-workers N aggworker
// processes (one per shard, -index 0..shards-1) plus the aggserver with the
// same -shard-workers value and aggworker/<i> directory entries; each worker
// reduces its party subtree and the aggserver merges the shard roots,
// bit-identically to the unsharded reduce.
//
// A five-node Bank deployment on one machine:
//
//	vfpsnode -role keyserver -addr 127.0.0.1:7001 &
//	vfpsnode -role party -index 0 -addr 127.0.0.1:7010 &
//	vfpsnode -role party -index 1 -addr 127.0.0.1:7011 &
//	vfpsnode -role party -index 2 -addr 127.0.0.1:7012 &
//	vfpsnode -role party -index 3 -addr 127.0.0.1:7013 &
//	vfpsnode -role aggserver -addr 127.0.0.1:7002 \
//	    -directory 'keyserver=127.0.0.1:7001,party/0=127.0.0.1:7010,party/1=127.0.0.1:7011,party/2=127.0.0.1:7012,party/3=127.0.0.1:7013' &
//	vfpsnode -role leader -select 2 \
//	    -directory 'keyserver=127.0.0.1:7001,aggserver=127.0.0.1:7002,party/0=127.0.0.1:7010,party/1=127.0.0.1:7011,party/2=127.0.0.1:7012,party/3=127.0.0.1:7013'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/he"
	"vfps/internal/obs"
	"vfps/internal/transport"
	"vfps/internal/vfl"
)

// tuneScheme applies the -parallelism, -mont and -pack flags to an HE scheme;
// only Paillier has tunables. Parties that bulk-encrypt also get a randomizer pool
// unless the node is pinned fully serial. Packing must be set consistently on
// every participant and the leader (the aggregation server validates the pack
// factors it sees); maxAdds is the consortium size, matching the one-
// ciphertext-per-party aggregation tree.
func tuneScheme(s he.Scheme, parallelism, window, mont int, pool, pack bool, maxAdds int) {
	p, ok := s.(*he.Paillier)
	if !ok {
		return
	}
	p.SetMont(mont)
	p.SetParallelism(parallelism)
	if pool && parallelism != 1 {
		p.SetEncryptWindow(window)
		p.StartRandomizerPool(4*p.Parallelism(), 1)
	}
	if pack {
		if err := p.EnablePacking(maxAdds); err != nil {
			fatal("enabling packing: %v", err)
		}
	}
}

func main() {
	var (
		role        = flag.String("role", "", "keyserver|aggserver|aggworker|party|leader")
		addr        = flag.String("addr", "127.0.0.1:0", "listen address (serving roles)")
		directory   = flag.String("directory", "", "comma-separated name=host:port peer directory")
		scheme      = flag.String("scheme", "paillier", "protection scheme: paillier|plain|secagg")
		keyBits     = flag.Int("keybits", 1024, "Paillier modulus bits")
		index       = flag.Int("index", 0, "participant index (role=party) or shard index (role=aggworker)")
		shardWkrs   = flag.Int("shard-workers", 0, "shard the ciphertext reduce across this many aggregation workers (roles aggserver/aggworker; 0 = unsharded)")
		ds          = flag.String("dataset", "Bank", "synthetic dataset name")
		rows        = flag.Int("rows", 800, "max dataset rows")
		parties     = flag.Int("parties", 4, "consortium size")
		splitSeed   = flag.Int64("splitseed", 1, "vertical split seed (must match across nodes)")
		shuffleSeed = flag.Int64("shuffleseed", 7, "pseudo-ID shuffle seed (must match across participants)")
		selCount    = flag.Int("select", 2, "sub-consortium size (role=leader)")
		k           = flag.Int("k", 10, "proxy-KNN neighbour count (role=leader)")
		queries     = flag.Int("queries", 32, "query sample count (role=leader)")
		batch       = flag.Int("batch", 32, "Fagin mini-batch size (role=leader)")
		variant     = flag.String("variant", "fagin", "KNN variant: fagin|base|threshold (role=leader)")
		specTA      = flag.Bool("speculate-ta", false, "overlap the threshold scan's next round with the stopping check; discarded-round decryptions surface in vfps_ta_speculative_waste_total (role=leader; requires -variant threshold)")
		parallelism = flag.Int("parallelism", 0, "HE pipeline concurrency (0 = VFPS_PARALLELISM or GOMAXPROCS, 1 = serial)")
		pack        = flag.Bool("pack", false, "slot-pack Paillier ciphertexts (set identically on all parties and the leader)")
		packAdapt   = flag.Bool("pack-adaptive", false, "renegotiate the packing slot width per round from observed magnitudes (role=leader; requires -pack)")
		chunkBytes  = flag.Int("chunk-bytes", 0, "split collection responses into ciphertext chunks of at most this many bytes (role=leader; requires -wire binary)")
		deltaCache  = flag.Bool("delta-cache", false, "cross-round delta encoding: repeat queries resend only changed ciphertext blocks (role=leader)")
		window      = flag.Int("encrypt-window", 0, "fixed-base window for randomizer precompute (0 = default 6, negative = classic uniform sampling)")
		montKnob    = flag.Int("mont", 0, "Paillier modular-arithmetic backend: 0 = default (Montgomery kernel unless VFPS_MONT=0), >0 = force kernel, <0 = pure math/big")
		wireName    = flag.String("wire", "", "protocol codec: gob|binary (default VFPS_WIRE or gob; mixed clusters negotiate down to gob per peer)")
		obsAddr     = flag.String("obs-addr", "", "optional debug listen address serving /metrics, /v1/trace, /v1/slow and /debug/pprof")
		logJSON     = flag.String("log-json", "", `structured query-log destination: "-"/"stdout", "stderr", or a file path (off when empty)`)
		slowRing    = flag.Int("slow-ring", 0, "flight-recorder capacity for /v1/slow (0 = default)")
		rounds      = flag.Int("rounds", 1, "similarity rounds to run (role=leader); each round is one trace")
		qworkers    = flag.Int("qworkers", 1, "concurrent queries in flight per round (role=leader)")
		linger      = flag.Duration("linger", 0, "how long the leader keeps its obs listener up after finishing, for trace scrapes (role=leader)")
	)
	flag.Parse()

	dir, err := parseDirectory(*directory)
	if err != nil {
		fatal("%v", err)
	}
	codec, err := vfl.ResolveWireCodec(*wireName)
	if err != nil {
		fatal("%v", err)
	}
	ctx := context.Background()

	// Observability is opt-in: without -obs-addr or -log-json every
	// instrument stays a nil no-op. With either, this node's metrics, spans
	// and query log are live; -obs-addr additionally serves them on a
	// separate debug listener.
	var o *obs.Observer
	if *obsAddr != "" || *logJSON != "" {
		o = obs.NewObserver(obs.DefaultTraceCapacity)
		// Tag spans with this process's role so the cross-node span forest
		// shows which process each span ran in.
		nodeName := *role
		switch *role {
		case "party":
			nodeName = vfl.PartyName(*index)
		case "aggworker":
			nodeName = vfl.AggWorkerName(*index)
		}
		o.Trace.SetNode(nodeName)
		if *logJSON != "" || *slowRing > 0 {
			logw, closeLog, err := openLog(*logJSON)
			if err != nil {
				fatal("%v", err)
			}
			defer closeLog()
			o.Events = obs.NewQueryLog(logw, *slowRing)
		}
		obs.SetDefault(o)
		reg := o.Registry()
		transport.DeclareMetrics(reg)
		he.DeclareMetrics(reg)
		costmodel.DeclareMetrics(reg)
		obs.RegisterRuntimeMetrics(reg)
		if *obsAddr != "" {
			dbg := &http.Server{Addr: *obsAddr, Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
			go func() {
				fmt.Printf("observability endpoints on http://%s/metrics\n", *obsAddr)
				if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
					fmt.Fprintf(os.Stderr, "vfpsnode: obs listener: %v\n", err)
				}
			}()
		}
	}

	switch *role {
	case "keyserver":
		var ks *vfl.KeyServer
		if *scheme == "secagg" {
			ks, err = vfl.NewKeyServerSecAgg(*parties, *shuffleSeed^0x5eca66)
		} else {
			ks, err = vfl.NewKeyServer(*scheme, *keyBits)
		}
		if err != nil {
			fatal("%v", err)
		}
		ks.SetCodec(codec)
		serve(*addr, "key server", ks.Handler(), o)
	case "party":
		pt, _, err := localPartition(*ds, *rows, *parties, *splitSeed)
		if err != nil {
			fatal("%v", err)
		}
		if *index < 0 || *index >= pt.P() {
			fatal("party index %d out of range [0,%d)", *index, pt.P())
		}
		cli := transport.NewTCPClient(dir)
		defer cli.Close()
		cli.SetObserver(o)
		pub, err := vfl.FetchPublicSchemeWire(ctx, transport.NewCodecCaller(cli, codec), vfl.KeyServerName)
		if err != nil {
			fatal("fetching public key: %v", err)
		}
		tuneScheme(pub, *parallelism, *window, *montKnob, true, *pack, pt.P())
		observeScheme(pub, o, "party")
		part, err := vfl.NewParticipant(*index, pt.Parties[*index], pub, *shuffleSeed)
		if err != nil {
			fatal("%v", err)
		}
		part.SetParallelism(*parallelism)
		part.SetObserver(o, "node")
		part.SetCodec(codec)
		serve(*addr, fmt.Sprintf("participant %d (%d features)", *index, part.Features()), part.Handler(), o)
	case "aggserver":
		cli := transport.NewTCPClient(dir)
		defer cli.Close()
		cli.SetObserver(o)
		pub, err := vfl.FetchPublicSchemeWire(ctx, transport.NewCodecCaller(cli, codec), vfl.KeyServerName)
		if err != nil {
			fatal("fetching public key: %v", err)
		}
		names := partyNames(dir)
		if len(names) == 0 {
			fatal("directory lists no party/<i> entries")
		}
		tuneScheme(pub, *parallelism, *window, *montKnob, false, false, 0) // agg only adds; packing config lives on parties and leader
		observeScheme(pub, o, "aggserver")
		agg, err := vfl.NewAggServer(cli, names, pub)
		if err != nil {
			fatal("%v", err)
		}
		agg.SetParallelism(*parallelism)
		agg.SetObserver(o, "node")
		agg.SetCodec(codec)
		if size, shards := vfl.PlanSubtrees(len(names), *shardWkrs); *shardWkrs >= 2 && shards >= 2 {
			plan := &vfl.ShardPlan{SubtreeSize: size}
			for wi := 0; wi < shards; wi++ {
				w := vfl.AggWorkerName(wi)
				if _, ok := dir[w]; !ok {
					fatal("-shard-workers %d needs %q in the directory", *shardWkrs, w)
				}
				plan.Workers = append(plan.Workers, w)
			}
			if err := agg.SetShardPlan(plan); err != nil {
				fatal("%v", err)
			}
			fmt.Printf("sharding the reduce over %d workers (subtree size %d)\n", shards, size)
		}
		serve(*addr, fmt.Sprintf("aggregation server (%d participants)", len(names)), agg.Handler(), o)
	case "aggworker":
		cli := transport.NewTCPClient(dir)
		defer cli.Close()
		cli.SetObserver(o)
		pub, err := vfl.FetchPublicSchemeWire(ctx, transport.NewCodecCaller(cli, codec), vfl.KeyServerName)
		if err != nil {
			fatal("fetching public key: %v", err)
		}
		names := partyNames(dir)
		if len(names) == 0 {
			fatal("directory lists no party/<i> entries")
		}
		size, shards := vfl.PlanSubtrees(len(names), *shardWkrs)
		if *shardWkrs < 2 || shards < 2 {
			fatal("role aggworker needs -shard-workers >= 2 (got %d over %d parties)", *shardWkrs, len(names))
		}
		if *index < 0 || *index >= shards {
			fatal("shard index %d out of range [0,%d)", *index, shards)
		}
		plan := &vfl.ShardPlan{SubtreeSize: size}
		lo, hi := plan.Range(*index, len(names))
		tuneScheme(pub, *parallelism, *window, *montKnob, false, false, 0) // workers only add, like the aggserver
		observeScheme(pub, o, "aggworker")
		wkr, err := vfl.NewAggServer(cli, names[lo:hi], pub)
		if err != nil {
			fatal("%v", err)
		}
		wkr.SetParallelism(*parallelism)
		wkr.SetRole(vfl.AggWorkerName(*index))
		wkr.SetObserver(o, "node")
		wkr.SetCodec(codec)
		serve(*addr, fmt.Sprintf("aggregation worker %d (parties %d..%d)", *index, lo, hi-1), wkr.Handler(), o)
	case "leader":
		cli := transport.NewTCPClient(dir)
		defer cli.Close()
		cli.SetObserver(o)
		priv, err := vfl.FetchPrivateSchemeWire(ctx, transport.NewCodecCaller(cli, codec), vfl.KeyServerName)
		if err != nil {
			fatal("fetching private key: %v", err)
		}
		names := partyNames(dir)
		tuneScheme(priv, *parallelism, *window, *montKnob, false, *pack, len(names))
		observeScheme(priv, o, "leader")
		leader, err := vfl.NewLeader(cli, vfl.AggServerName, names, priv, *batch)
		if err != nil {
			fatal("%v", err)
		}
		leader.SetParallelism(*parallelism)
		leader.SetObserver(o, "node")
		leader.SetCodec(codec)
		leader.SetPayloadOptions(*packAdapt && *pack, *chunkBytes, *deltaCache)
		leader.SetSpeculativeTA(*specTA)
		// Shard workers hold per-role op counters; fold them into the totals.
		leader.SetExtraCountNodes(aggWorkerNames(dir))
		runLeader(ctx, leader, o, *rows, *selCount, *k, *queries, vfl.Variant(*variant), *rounds, *qworkers)
		if *linger > 0 {
			fmt.Printf("lingering %s for trace scrapes...\n", *linger)
			time.Sleep(*linger)
		}
	default:
		fatal("unknown role %q (want keyserver|aggserver|party|leader)", *role)
	}
}

func runLeader(ctx context.Context, leader *vfl.Leader, o *obs.Observer, rows, selCount, k, queries int, variant vfl.Variant, rounds, qworkers int) {
	qs := sampleQueries(rows, queries)
	if rounds <= 0 {
		rounds = 1
	}
	if qworkers <= 0 {
		qworkers = 1
	}
	fmt.Printf("running %s-variant selection over %d queries, k=%d, %d round(s), %d worker(s)...\n",
		variant, len(qs), k, rounds, qworkers)
	var rep *vfl.SimilarityReport
	for r := 0; r < rounds; r++ {
		// Each round is one trace: the round's queries — and every remote
		// span they fan out — share a trace ID, so the collector's span
		// forest groups a round across processes.
		rctx := ctx
		var traceID obs.TraceID
		if o != nil {
			rctx, traceID = obs.ContextWithNewTrace(ctx)
		}
		start := time.Now()
		var err error
		rep, err = leader.SimilaritiesParallel(rctx, qs, k, variant, qworkers)
		if err != nil {
			fatal("similarity phase (round %d): %v", r, err)
		}
		line := fmt.Sprintf("round %d: %d queries in %.3fs", r, rep.Queries, time.Since(start).Seconds())
		if !traceID.IsZero() {
			line += " trace=" + traceID.String()
		}
		fmt.Println(line)
	}
	fmt.Println("participant similarity matrix:")
	for _, row := range rep.W {
		for _, v := range row {
			fmt.Printf("  %.4f", v)
		}
		fmt.Println()
	}
	selected, value, err := greedySelect(rep.W, selCount)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("selected participants: %v (objective %.4f)\n", selected, value)
	fmt.Printf("avg encrypted candidates per query: %.1f\n", rep.AvgCandidates)
	total, err := leader.TotalCounts(ctx)
	if err != nil {
		fatal("gathering counts: %v", err)
	}
	fmt.Printf("total ops: %s\n", total)
	fmt.Printf("projected selection time at paper-grade HE: %.2fs\n", costmodel.Default.Seconds(total))
}

func localPartition(name string, rows, parties int, splitSeed int64) (*dataset.Partition, *dataset.Dataset, error) {
	spec, err := dataset.SpecByName(name)
	if err != nil {
		return nil, nil, err
	}
	d, err := spec.Generate(rows)
	if err != nil {
		return nil, nil, err
	}
	pt, err := dataset.VerticalSplit(d, parties, splitSeed)
	if err != nil {
		return nil, nil, err
	}
	return pt, d, nil
}

// observeScheme installs HE op instrumentation when the node has an observer
// and the scheme supports it.
func observeScheme(s he.Scheme, o *obs.Observer, instance string) {
	if ob, ok := s.(he.Observable); ok {
		ob.SetObserver(o.Registry(), instance)
	}
}

func serve(addr, what string, h transport.Handler, o *obs.Observer) {
	srv, err := transport.ListenTCP(addr, h)
	if err != nil {
		fatal("%v", err)
	}
	srv.SetObserver(o)
	fmt.Printf("%s listening on %s\n", what, srv.Addr())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
	srv.Close()
}

func parseDirectory(s string) (map[string]string, error) {
	dir := map[string]string{}
	if s == "" {
		return dir, nil
	}
	for _, entry := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("bad directory entry %q (want name=host:port)", entry)
		}
		dir[name] = addr
	}
	return dir, nil
}

// partyNames extracts the party/<i> entries from the directory in index
// order.
func partyNames(dir map[string]string) []string {
	var names []string
	for i := 0; ; i++ {
		name := vfl.PartyName(i)
		if _, ok := dir[name]; !ok {
			return names
		}
		names = append(names, name)
	}
}

// aggWorkerNames extracts the aggworker/<i> entries from the directory in
// index order (empty for unsharded deployments).
func aggWorkerNames(dir map[string]string) []string {
	var names []string
	for i := 0; ; i++ {
		name := vfl.AggWorkerName(i)
		if _, ok := dir[name]; !ok {
			return names
		}
		names = append(names, name)
	}
}

func sampleQueries(n, count int) []int {
	if count > n {
		count = n
	}
	out := make([]int, count)
	for i := range out {
		out[i] = i * n / count
	}
	return out
}

// greedySelect runs Algorithm 1 directly on the similarity matrix (the
// leader-side selection step).
func greedySelect(w [][]float64, count int) ([]int, float64, error) {
	p := len(w)
	if count <= 0 || count > p {
		return nil, 0, fmt.Errorf("select count %d out of range [1,%d]", count, p)
	}
	selected := []int{}
	in := make([]bool, p)
	covered := make([]float64, p)
	var value float64
	for len(selected) < count {
		bestV, bestGain := -1, -1.0
		for v := 0; v < p; v++ {
			if in[v] {
				continue
			}
			var gain float64
			for q := 0; q < p; q++ {
				if w[q][v] > covered[q] {
					gain += w[q][v] - covered[q]
				}
			}
			if gain > bestGain {
				bestGain, bestV = gain, v
			}
		}
		in[bestV] = true
		selected = append(selected, bestV)
		for q := 0; q < p; q++ {
			if w[q][bestV] > covered[q] {
				covered[q] = w[q][bestV]
			}
		}
		value += bestGain
	}
	return selected, value, nil
}

// openLog resolves the -log-json destination. The returned close func is a
// no-op for the standard streams.
func openLog(dest string) (io.Writer, func(), error) {
	switch dest {
	case "":
		return nil, func() {}, nil
	case "-", "stdout":
		return os.Stdout, func() {}, nil
	case "stderr":
		return os.Stderr, func() {}, nil
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("opening query log %s: %w", dest, err)
		}
		return f, func() { f.Close() }, nil
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vfpsnode: "+format+"\n", args...)
	os.Exit(1)
}
