// Command vfpsserve exposes participant selection as a JSON-over-HTTP
// service (see internal/server for the endpoint reference).
//
//	vfpsserve -addr :8080
//	curl -X POST localhost:8080/v1/consortiums -d '{"dataset":"Bank","parties":4}'
//	curl -X POST localhost:8080/v1/consortiums/c1/select -d '{"count":2}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"vfps/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()
	fmt.Printf("vfpsserve listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, server.New()); err != nil {
		fmt.Fprintf(os.Stderr, "vfpsserve: %v\n", err)
		os.Exit(1)
	}
}
