// Command vfpsserve exposes participant selection as a JSON-over-HTTP
// service (see internal/server for the endpoint reference, including the
// /metrics, /v1/trace and /debug observability surface).
//
//	vfpsserve -addr :8080
//	curl -X POST localhost:8080/v1/consortiums -d '{"dataset":"Bank","parties":4}'
//	curl -X POST localhost:8080/v1/consortiums/c1/select -d '{"count":2}'
//	curl localhost:8080/metrics
//
// Admission control (off by default; see internal/server):
//
//	vfpsserve -max-concurrent 4 -queue-depth 8 -tenant-concurrent 2 \
//	          -tenant-he-budget 1000000 -idle-ttl 30m
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vfps/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	logJSON := flag.String("log-json", "", `structured query-log destination: "-"/"stdout", "stderr", or a file path (off when empty)`)
	slowRing := flag.Int("slow-ring", 0, "flight-recorder capacity for /v1/slow (0 = default)")
	peers := flag.String("peers", "", "comma-separated observability base URLs whose spans /v1/trace merges into the span forest")
	maxConcurrent := flag.Int("max-concurrent", 0, "global cap on concurrent selections (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue size when -max-concurrent is reached (full queue → 429)")
	tenantConcurrent := flag.Int("tenant-concurrent", 0, "per-tenant cap on concurrent selections (0 = unlimited)")
	tenantHEBudget := flag.Int64("tenant-he-budget", 0, "per-tenant cumulative HE-operation budget (0 = unlimited)")
	idleTTL := flag.Duration("idle-ttl", 0, "evict consortiums idle for this long (0 = never)")
	poolWorkers := flag.Int("pool-workers", 0, "shared Paillier randomizer pool workers (0 = 1)")
	flag.Parse()

	opts := server.Options{
		SlowRing: *slowRing,
		Admission: server.AdmissionConfig{
			MaxConcurrent:    *maxConcurrent,
			QueueDepth:       *queueDepth,
			TenantConcurrent: *tenantConcurrent,
			TenantHEBudget:   *tenantHEBudget,
		},
		IdleTTL:     *idleTTL,
		PoolWorkers: *poolWorkers,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opts.TracePeers = append(opts.TracePeers, p)
			}
		}
	}
	logw, closeLog, err := openLog(*logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vfpsserve: %v\n", err)
		os.Exit(1)
	}
	defer closeLog()
	opts.LogWriter = logw

	handler := server.NewWithOptions(opts)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("vfpsserve listening on %s\n", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "vfpsserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling so a second ^C kills us
		fmt.Println("vfpsserve: shutting down...")
		// Refuse new selections but let queued ones finish, then wait for
		// both the HTTP layer and the admission layer to drain.
		handler.BeginDrain()
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "vfpsserve: drain deadline exceeded: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		if err := handler.Drain(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "vfpsserve: %v\n", err)
			os.Exit(1)
		}
		handler.Close()
	}
}

// openLog resolves the -log-json destination. The returned close func is a
// no-op for the standard streams.
func openLog(dest string) (io.Writer, func(), error) {
	switch dest {
	case "":
		return nil, func() {}, nil
	case "-", "stdout":
		return os.Stdout, func() {}, nil
	case "stderr":
		return os.Stderr, func() {}, nil
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("opening query log %s: %w", dest, err)
		}
		return f, func() { f.Close() }, nil
	}
}
