// Command vfpsserve exposes participant selection as a JSON-over-HTTP
// service (see internal/server for the endpoint reference, including the
// /metrics, /v1/trace and /debug observability surface).
//
//	vfpsserve -addr :8080
//	curl -X POST localhost:8080/v1/consortiums -d '{"dataset":"Bank","parties":4}'
//	curl -X POST localhost:8080/v1/consortiums/c1/select -d '{"count":2}'
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vfps/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("vfpsserve listening on %s\n", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "vfpsserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling so a second ^C kills us
		fmt.Println("vfpsserve: shutting down...")
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "vfpsserve: drain deadline exceeded: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
	}
}
