// Command vfpsselect runs VFPS-SM participant selection on a CSV dataset:
// it splits the feature columns vertically across simulated participants,
// runs the encrypted selection protocol, and reports which participants
// (feature groups) to keep.
//
//	vfpsselect -csv data.csv -label -1 -header -parties 4 -select 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"vfps"
)

func main() {
	var (
		csvPath     = flag.String("csv", "", "path to the CSV dataset (required)")
		labelCol    = flag.Int("label", -1, "label column index (negative counts from the end)")
		header      = flag.Bool("header", true, "treat the first row as a header")
		parties     = flag.Int("parties", 4, "number of participants to split features across")
		selCount    = flag.Int("select", 2, "number of participants to select")
		k           = flag.Int("k", 10, "proxy-KNN neighbour count")
		queries     = flag.Int("queries", 32, "KNN query samples")
		scheme      = flag.String("scheme", "plain", "HE scheme: plain|paillier")
		seed        = flag.Int64("seed", 1, "random seed")
		evaluate    = flag.Bool("evaluate", false, "also train a downstream KNN on the selection")
		standardize = flag.Bool("standardize", true, "scale features to zero mean and unit variance (KNN distances are scale-sensitive)")
	)
	flag.Parse()
	if *csvPath == "" {
		fatal("missing -csv")
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	d, err := vfps.LoadCSV(f, *csvPath, *labelCol, *header)
	if err != nil {
		fatal("%v", err)
	}
	if *standardize {
		d.X.Standardize()
	}
	fmt.Printf("loaded %s: %d instances, %d features, %d classes\n", d.Name, d.N(), d.F(), d.Classes)

	pt, err := vfps.VerticalSplit(d, *parties, *seed)
	if err != nil {
		fatal("%v", err)
	}
	ctx := context.Background()
	cons, err := vfps.NewConsortium(ctx, vfps.Config{
		Partition: pt, Labels: d.Y, Classes: d.Classes, Scheme: *scheme, ShuffleSeed: *seed,
	})
	if err != nil {
		fatal("%v", err)
	}
	sel, err := cons.Select(ctx, *selCount, vfps.SelectOptions{K: *k, NumQueries: *queries, Seed: *seed})
	if err != nil {
		fatal("selection: %v", err)
	}
	fmt.Print(vfps.FormatSelection(sel))
	for _, p := range sel.Selected {
		fmt.Printf("  participant %d holds feature columns %v\n", p, pt.FeatureIdx[p])
	}

	if *evaluate {
		before, err := cons.Evaluate(vfps.ModelKNN, nil, vfps.EvalOptions{K: *k, Seed: *seed})
		if err != nil {
			fatal("evaluating ALL: %v", err)
		}
		after, err := cons.Evaluate(vfps.ModelKNN, sel.Selected, vfps.EvalOptions{K: *k, Seed: *seed})
		if err != nil {
			fatal("evaluating selection: %v", err)
		}
		fmt.Printf("downstream KNN accuracy: all %d parties %.4f -> selected %d parties %.4f\n",
			cons.P(), before.Accuracy, len(sel.Selected), after.Accuracy)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vfpsselect: "+format+"\n", args...)
	os.Exit(1)
}
