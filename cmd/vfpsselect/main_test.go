package main

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelectOnCSV drives the whole CLI: write a learnable CSV, run selection
// with evaluation, and check the report.
func TestSelectOnCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "data.csv")
	writeTestCSV(t, csvPath, 300, 8)

	bin := filepath.Join(dir, "vfpsselect")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build: %v", err)
	}
	out, err := exec.Command(bin,
		"-csv", csvPath, "-parties", "4", "-select", "2",
		"-k", "5", "-queries", "16", "-evaluate").CombinedOutput()
	if err != nil {
		t.Fatalf("vfpsselect failed: %v\n%s", err, out)
	}
	output := string(out)
	for _, want := range []string{
		"loaded", "selected participants:", "feature columns",
		"downstream KNN accuracy",
	} {
		if !strings.Contains(output, want) {
			t.Fatalf("output missing %q:\n%s", want, output)
		}
	}
}

func TestMissingCSVFlagFails(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "vfpsselect")
	if err := exec.Command("go", "build", "-o", bin, ".").Run(); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Fatal("expected non-zero exit without -csv")
	}
}

func writeTestCSV(t *testing.T, path string, rows, features int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(1))
	for j := 0; j < features; j++ {
		fmt.Fprintf(f, "f%d,", j)
	}
	fmt.Fprintln(f, "label")
	for i := 0; i < rows; i++ {
		cls := i % 2
		sign := -1.0
		if cls == 1 {
			sign = 1.0
		}
		for j := 0; j < features; j++ {
			fmt.Fprintf(f, "%.4f,", sign*1.5+rng.NormFloat64())
		}
		fmt.Fprintf(f, "c%d\n", cls)
	}
}
