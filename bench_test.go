package vfps_test

import (
	"context"
	"math/rand"
	"testing"

	"vfps"
	"vfps/internal/experiments"
	"vfps/internal/submod"
	"vfps/internal/topk"
)

// benchOpts is the shared workload for the table/figure benches: all ten
// datasets at a scale that keeps the full suite in minutes. cmd/vfpsbench
// regenerates the same tables at any scale.
func benchOpts() experiments.Options {
	return experiments.Options{
		Rows:      400,
		Queries:   16,
		K:         10,
		MaxEpochs: 8,
		Seed:      1,
		ScaleRows: true,
	}
}

// BenchmarkTable1 regenerates the motivating LR-on-SUSY comparison
// (selection + training time and accuracy for ALL/SHAPLEY/VF-MINE/VFPS-SM).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the accuracy grid: 3 downstream models × 10
// datasets × 5 selection methods.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates the end-to-end running-time grid over the same
// sweep (projected seconds under the calibrated cost model).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates the selection-time comparison, including the
// VFPS-SM-BASE ablation.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the MLP training-time comparison.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates the duplicate-participant diversity study.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the scalability sweep (P = 4…20); SHAPLEY's
// exact 2^P enumeration is the dominant cost by design.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates the impact-of-k sweep.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates the candidate-pruning ablation (BASE vs Fagin).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- design-choice ablations beyond the paper's figures ---

// BenchmarkTopkAblation compares the three top-k merge strategies on the
// same ranked lists: the paper's Fagin choice, the Threshold Algorithm it
// mentions as an alternative, and the naive full merge.
func BenchmarkTopkAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lists := make([]*topk.RankedList, 4)
	for i := range lists {
		scores := make([]float64, 20000)
		for j := range scores {
			scores[j] = rng.Float64()
		}
		lists[i] = topk.NewRankedList(scores)
	}
	b.Run("fagin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := topk.Fagin(lists, 10, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("threshold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := topk.Threshold(lists, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := topk.Naive(lists, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGreedyAblation compares the submodular maximizers on a large
// ground set (greedy = Algorithm 1, lazy = Minoux, stochastic = "lazier
// than lazy greedy").
func BenchmarkGreedyAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 128
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		w[i][i] = 1
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			w[i][j], w[j][i] = v, v
		}
	}
	f, err := submod.NewFacilityLocation(w)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := submod.Greedy(f, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := submod.LazyGreedy(f, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stochastic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := submod.StochasticGreedy(f, 32, 0.1, rand.New(rand.NewSource(int64(i)))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPaillierSelection runs the full selection protocol under real
// Paillier encryption at increasing modulus sizes, measuring how key size
// drives selection cost (the φe/φd knob of the cost model).
func BenchmarkPaillierSelection(b *testing.B) {
	d, err := vfps.GenerateDataset("Rice", 80)
	if err != nil {
		b.Fatal(err)
	}
	pt, err := vfps.VerticalSplit(d, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, bits := range []int{256, 512, 1024} {
		b.Run(map[int]string{256: "bits256", 512: "bits512", 1024: "bits1024"}[bits], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cons, err := vfps.NewConsortium(context.Background(), vfps.Config{
					Partition: pt, Labels: d.Y, Classes: d.Classes,
					Scheme: "paillier", KeyBits: bits, ShuffleSeed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cons.Select(context.Background(), 2,
					vfps.SelectOptions{K: 5, NumQueries: 4, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSelection measures the parallel HE pipeline end to end:
// the same real-Paillier selection pinned fully serial (Parallelism=1, no
// randomizer pool) versus the default worker-pool degree. The selected set
// and operation counts are identical by construction; only wall clock moves.
// cmd/vfpsbench -exp parallel records the same comparison to JSON.
func BenchmarkParallelSelection(b *testing.B) {
	d, err := vfps.GenerateDataset("Bank", 120)
	if err != nil {
		b.Fatal(err)
	}
	pt, err := vfps.VerticalSplit(d, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name        string
		parallelism int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			cons, err := vfps.NewConsortium(context.Background(), vfps.Config{
				Partition: pt, Labels: d.Y, Classes: d.Classes,
				Scheme: "paillier", KeyBits: 512, ShuffleSeed: 7,
				Parallelism: mode.parallelism,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cons.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cons.Select(context.Background(), 2,
					vfps.SelectOptions{K: 5, NumQueries: 4, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectionVariants isolates the Fagin optimization: the same
// selection with and without candidate pruning on one mid-size dataset.
func BenchmarkSelectionVariants(b *testing.B) {
	d, err := vfps.GenerateDataset("IJCNN", 1000)
	if err != nil {
		b.Fatal(err)
	}
	pt, err := vfps.VerticalSplit(d, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	cons, err := vfps.NewConsortium(context.Background(), vfps.Config{
		Partition: pt, Labels: d.Y, Classes: d.Classes,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		base bool
	}{{"base", true}, {"fagin", false}} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cons.Select(context.Background(), 2, vfps.SelectOptions{
					K: 10, NumQueries: 16, Seed: 1, Base: variant.base,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
