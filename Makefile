GO ?= go

.PHONY: build test check race bench bench-packed bench-wire bench-encrypt bench-payload bench-churn bench-mont microbench experiments fuzz cover obs-smoke soak clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Formatting and vet first, then the full suite, a wire-codec fuzz smoke,
# and the live observability surface — the pre-commit gate.
check:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzWire$$' -fuzztime=5s
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzChunkedCiphertext$$' -fuzztime=5s
	$(GO) test ./internal/paillier -race
	$(GO) test ./internal/mont -race
	$(GO) test ./internal/vfl -race -run='^TestAdaptivePackSelectionIdentity$$'
	$(GO) test ./internal/vfl -race -run='^TestShardedSelectionIdentity$$'
	$(GO) test . -race -run='^TestChurnSelectionMatchesColdRebuild$$'
	$(GO) test ./internal/server -race -run='^TestConcurrentMultiConsortium$$'
	$(GO) test ./internal/paillier -run='^$$' -fuzz='^FuzzFixedBaseExp$$' -fuzztime=5s
	$(GO) test ./internal/mont -run='^$$' -fuzz='^FuzzMontMulExp$$' -fuzztime=5s
	$(MAKE) obs-smoke
	SOAK_ROUNDS=1 SOAK_QUERIES=6 SOAK_MT_ROUNDS=1 $(MAKE) soak

# Start vfpsserve, drive an encrypted selection, and assert the /metrics,
# /metrics.json, /v1/trace and /debug/vars endpoints expose every wired
# metric family (see scripts/obs_smoke.sh).
obs-smoke:
	./scripts/obs_smoke.sh

# Multi-process soak: key server + parties + aggregation shard workers +
# aggregation server + a vfpsserve collector over real TCP, concurrent query
# rounds through the leader, gated on throughput (SOAK_MIN_QPS), tail
# latency (SOAK_P99_MS), a cross-process span forest with zero orphans, and
# the structured query log; then the multi-tenant load arm — an
# admission-controlled vfpsserve multiplexing sharded consortiums — gated on
# concurrent-vs-sequential speedup (SOAK_MIN_MT_SPEEDUP, scaled to the core
# count), concurrent p99 (SOAK_MT_P99_MS), and admission accounting
# (see scripts/soak.sh for all knobs).
soak:
	./scripts/soak.sh

race:
	$(GO) test ./... -race

# Benchmark the parallel HE pipeline (serial vs worker-pool vs pooled
# randomizers, plus end-to-end selection) and record it for comparison.
bench:
	$(GO) run ./cmd/vfpsbench -exp parallel -json BENCH_parallel.json

# Benchmark the batched Paillier hot path (CRT decryption, slot-packed
# ciphertexts, packed end-to-end selection) and gate the result against the
# checked-in baseline: identical selections, ≥4x fewer ciphertext bytes,
# ≥3x CRT decrypt speedup, and no packed wall-clock regression.
bench-packed:
	$(GO) run ./cmd/vfpsbench -exp packed -json BENCH_packed.json
	./scripts/bench_compare.sh BENCH_packed.json

# Benchmark the compact binary codec against gob (message sizes plus gob/binary
# end-to-end selections, packed and unpacked) and gate the result: identical
# selections and ≥2x fewer framing (non-ciphertext) bytes on the Fagin variant.
bench-wire:
	$(GO) run ./cmd/vfpsbench -exp wire -json BENCH_wire.json
	./scripts/bench_compare.sh BENCH_wire.json

# Benchmark the encryption hot path (classic vs fixed-base windowed vs CRT vs
# pooled randomizer production, the Montgomery kernel A/B on modmul- and
# modexp-bound arms, plus end-to-end selections under each pool mode) and gate
# the result: ≥2x windowed encrypt speedup, ≥1.5x Montgomery speedup on the
# modmul-bound arms with decrypt parity, and selections identical to classic
# uniform sampling on every arm including mont-off.
bench-encrypt:
	$(GO) run ./cmd/vfpsbench -exp encrypt -json BENCH_encrypt.json
	./scripts/bench_compare.sh BENCH_encrypt.json

# Benchmark the ciphertext-payload optimizations (adaptive pack factor,
# chunked streaming, cross-round delta cache) over repeated Fagin selections
# and gate the result: every arm — including the mixed-codec one falling back
# to legacy framing — selects the identical set, and the fully optimized arm
# cuts steady-state ciphertext bytes by ≥3x over static packing.
bench-payload:
	$(GO) run ./cmd/vfpsbench -exp payload -json BENCH_payload.json
	./scripts/bench_compare.sh BENCH_payload.json

# Benchmark online membership churn (in-place join/leave, set-keyed
# similarity reuse, speculative TA decryption) and gate the result: the
# incremental join pays ≥2x fewer encryptions than a cold rebuild at 6+
# surviving parties, every churn arm selects bit-identically to its cold
# twin, and a roster revisit through the similarity cache pays 0 HE ops.
bench-churn:
	$(GO) run ./cmd/vfpsbench -exp churn -json BENCH_churn.json
	./scripts/bench_compare.sh BENCH_churn.json

# Go-test microbenchmarks of the Montgomery kernel alone: CIOS multiply and
# square vs big.Int Mul+Mod, windowed exponentiation vs big.Int.Exp, with
# allocation counts (the hot ops must report 0 allocs/op).
bench-mont:
	$(GO) test ./internal/mont -run='^$$' -bench=. -benchmem

# Go-test microbenchmarks across all packages.
microbench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure plus the extension studies.
experiments:
	$(GO) run ./cmd/vfpsbench -exp all -rows 2000 -queries 16 -epochs 20

cover:
	$(GO) test ./... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

fuzz:
	$(GO) test ./internal/dataset -run='^$$' -fuzz=FuzzLoadCSV -fuzztime=30s
	$(GO) test ./internal/transport -run='^$$' -fuzz=FuzzReadRequest -fuzztime=30s
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzWire$$' -fuzztime=30s
	$(GO) test ./internal/paillier -run='^$$' -fuzz='^FuzzFixedBaseExp$$' -fuzztime=30s
	$(GO) test ./internal/mont -run='^$$' -fuzz='^FuzzMontMulExp$$' -fuzztime=30s

clean:
	rm -f cover.out vfpsbench vfpsnode vfpsselect vfpsserve SOAK_summary.json
