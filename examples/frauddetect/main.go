// Fraud detection (the paper's Fig. 1 scenario): a bank wants to train a
// financial-fraud model with an e-commerce company and a credit company.
// The bank and the credit company hold largely overlapping financial
// features, while the e-commerce company contributes diverse shopping
// behaviour. Score-based selection (Shapley) ranks bank and credit highest
// individually; VFPS-SM instead pairs one of them with the e-commerce
// company because its submodular objective rewards diversity.
//
//	go run ./examples/frauddetect
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"vfps"
	"vfps/internal/dataset"
	"vfps/internal/mat"
)

const (
	nCustomers = 1500
	bankDims   = 8 // financial features at the bank
	shopDims   = 6 // shopping features at the e-commerce company
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2024))

	// Build the three organisations' feature spaces: the credit company's
	// records are noisy near-copies of the bank's financial features.
	bank := mat.New(nCustomers, bankDims)
	shop := mat.New(nCustomers, shopDims)
	credit := mat.New(nCustomers, bankDims)
	labels := make([]int, nCustomers)
	for i := 0; i < nCustomers; i++ {
		fraud := rng.Float64() < 0.5
		if fraud {
			labels[i] = 1
		}
		sign := -1.0
		if fraud {
			sign = 1.0
		}
		for j := 0; j < bankDims; j++ {
			bank.Set(i, j, sign*0.55+rng.NormFloat64())
			credit.Set(i, j, bank.At(i, j)+rng.NormFloat64()*0.2) // near-duplicate
		}
		for j := 0; j < shopDims; j++ {
			// Independent fraud signal in shopping behaviour: adds real
			// information the financial features cannot supply.
			shop.Set(i, j, sign*0.4+rng.NormFloat64())
		}
	}
	partition := &dataset.Partition{
		Parties:     []*mat.Matrix{bank, shop, credit},
		FeatureIdx:  [][]int{seq(0, bankDims), seq(bankDims, shopDims), seq(bankDims+shopDims, bankDims)},
		DuplicateOf: []int{-1, -1, -1},
	}
	names := []string{"bank", "e-commerce", "credit"}

	cons, err := vfps.NewConsortium(ctx, vfps.Config{
		Partition: partition, Labels: labels, Classes: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := vfps.SelectOptions{K: 10, NumQueries: 48, Seed: 3}
	shap, err := cons.SelectWith(ctx, vfps.MethodShapley, 2, opts)
	if err != nil {
		log.Fatal(err)
	}
	smart, err := cons.SelectWith(ctx, vfps.MethodVFPS, 2, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("individual Shapley values:")
	for i, v := range shap.Scores {
		fmt.Printf("  %-11s %.4f\n", names[i], v)
	}
	fmt.Printf("SHAPLEY picks the top scorers:  %s\n", nameList(names, shap.Selected))
	fmt.Printf("VFPS-SM picks for diversity:    %s\n", nameList(names, smart.Selected))

	// Fair reward shares from the diversity objective (the paper's §IV-D
	// future work): the near-duplicate bank and credit split one
	// contribution instead of being double-counted.
	full, err := cons.Select(ctx, 3, opts)
	if err != nil {
		log.Fatal(err)
	}
	shares, err := vfps.RewardShares(full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fair reward shares (submodular Shapley):")
	for i, s := range shares {
		fmt.Printf("  %-11s %.4f\n", names[i], s)
	}

	for _, run := range []struct {
		label    string
		selected []int
	}{
		{"SHAPLEY pair", shap.Selected},
		{"VFPS-SM pair", smart.Selected},
		{"all three", nil},
	} {
		ev, err := cons.Evaluate(vfps.ModelMLP, run.selected, vfps.EvalOptions{MaxEpochs: 25, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fraud-model accuracy with %-13s %.4f (projected training cost %.1fs)\n",
			run.label+":", ev.Accuracy, ev.ProjectedSeconds)
	}
}

func seq(from, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = from + i
	}
	return out
}

func nameList(names []string, idx []int) string {
	s := ""
	for i, v := range idx {
		if i > 0 {
			s += " + "
		}
		s += names[v]
	}
	return s
}
