// Reward allocation: the paper's §IV-D limitation, solved. VFPS-SM's greedy
// marginal gains shrink by construction, so a participant picked later looks
// less valuable than an identical one picked earlier — an exact duplicate
// can even earn zero. This example builds a consortium containing a
// duplicate pair, shows the order-biased greedy gains, and then computes
// fair reward shares: the Shapley values of the submodular likelihood
// itself, which need no extra encrypted communication.
//
//	go run ./examples/rewards
package main

import (
	"context"
	"fmt"
	"log"

	"vfps"
)

func main() {
	ctx := context.Background()

	data, err := vfps.GenerateDataset("Credit", 1000)
	if err != nil {
		log.Fatal(err)
	}
	base, err := vfps.VerticalSplit(data, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	// Party 3 is an exact replica of one of the originals.
	partition := base.WithDuplicates(1, 5)
	dupOf := partition.DuplicateOf[3]
	fmt.Printf("consortium: parties 0-2 original, party 3 duplicates party %d\n\n", dupOf)

	cons, err := vfps.NewConsortium(ctx, vfps.Config{
		Partition: partition, Labels: data.Y, Classes: data.Classes,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Select everyone so each party realises a greedy gain.
	sel, err := cons.Select(ctx, 4, vfps.SelectOptions{K: 10, NumQueries: 32, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("greedy selection order and marginal gains (order-biased):")
	for i, p := range sel.Selected {
		tag := ""
		if p == 3 || p == dupOf {
			tag = "  <- duplicate pair"
		}
		fmt.Printf("  step %d: party %d  gain %.4f%s\n", i+1, p, sel.Gains[i], tag)
	}

	shares, err := vfps.RewardShares(sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfair reward shares (Shapley values of the likelihood objective):")
	var total float64
	for p, s := range shares {
		tag := ""
		if p == 3 || p == dupOf {
			tag = "  <- identical shares for identical data"
		}
		fmt.Printf("  party %d: %.4f%s\n", p, s, tag)
		total += s
	}
	fmt.Printf("shares sum to %.4f = f(full consortium) %.4f\n", total, sel.Value)
}
