// Quickstart: select a diverse sub-consortium from a 4-party vertical
// federation and train a downstream model on it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"vfps"
)

func main() {
	ctx := context.Background()

	// 1. Data: a synthetic stand-in for the paper's Bank dataset, with its
	// features scattered vertically over four organisations.
	data, err := vfps.GenerateDataset("Bank", 2000)
	if err != nil {
		log.Fatal(err)
	}
	partition, err := vfps.VerticalSplit(data, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d instances, %d features over %d participants\n",
		data.N(), data.F(), partition.P())

	// 2. Wire the consortium: key server, aggregation server, participants
	// and the label-holding leader, all in-process.
	cons, err := vfps.NewConsortium(ctx, vfps.Config{
		Partition: partition,
		Labels:    data.Y,
		Classes:   data.Classes,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Select 2 of the 4 participants with VFPS-SM.
	sel, err := cons.Select(ctx, 2, vfps.SelectOptions{K: 10, NumQueries: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected participants: %v (likelihood objective %.4f)\n", sel.Selected, sel.Value)
	fmt.Printf("Fagin pruning: %.1f candidates encrypted per query instead of %d\n",
		sel.AvgCandidates, cons.N()-1)
	fmt.Printf("selection took %s locally; projected %.1fs at paper-grade HE\n",
		sel.WallTime.Round(1e6), sel.ProjectedSeconds)

	// 4. Compare downstream training on everyone vs the selection.
	for _, run := range []struct {
		label   string
		parties []int
	}{
		{"all 4 participants", nil},
		{"selected 2 participants", sel.Selected},
	} {
		ev, err := cons.Evaluate(vfps.ModelLR, run.parties, vfps.EvalOptions{MaxEpochs: 30})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("LR on %-24s accuracy %.4f, projected training cost %.1fs\n",
			run.label+":", ev.Accuracy, ev.ProjectedSeconds)
	}
}
