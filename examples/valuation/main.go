// Data valuation: after selecting a sub-consortium, the leader can value
// individual training records with exact KNN-Shapley (Jia et al., VLDB
// 2019) — the sample-level companion of participant selection. This example
// corrupts a slice of the training labels and shows that the lowest-valued
// records are overwhelmingly the corrupted ones, so valuation doubles as
// mislabel detection.
//
//	go run ./examples/valuation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"vfps"
)

func main() {
	data, err := vfps.GenerateDataset("Rice", 1200)
	if err != nil {
		log.Fatal(err)
	}
	partition, err := vfps.VerticalSplit(data, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	trainRows, _, testRows, err := vfps.SplitIndices(data.N(), 1)
	if err != nil {
		log.Fatal(err)
	}
	yTrain := vfps.SelectLabels(data.Y, trainRows)
	yTest := vfps.SelectLabels(data.Y, testRows)

	// Corrupt 5% of the training labels.
	rng := rand.New(rand.NewSource(7))
	corrupted := map[int]bool{}
	for len(corrupted) < len(yTrain)/20 {
		i := rng.Intn(len(yTrain))
		if !corrupted[i] {
			corrupted[i] = true
			yTrain[i] = 1 - yTrain[i]
		}
	}
	fmt.Printf("training set: %d records, %d deliberately mislabelled\n",
		len(yTrain), len(corrupted))

	values, err := vfps.KNNShapley(
		partition.ApplyRows(trainRows), yTrain,
		partition.ApplyRows(testRows), yTest, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Rank ascending: the least valuable records first.
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })

	flagged := len(corrupted)
	hits := 0
	for _, i := range idx[:flagged] {
		if corrupted[i] {
			hits++
		}
	}
	fmt.Printf("bottom-%d valued records: %d/%d are the corrupted ones (%.0f%% precision)\n",
		flagged, hits, flagged, 100*float64(hits)/float64(flagged))
	fmt.Printf("value range: worst %.5f, best %.5f\n",
		values[idx[0]], values[idx[len(idx)-1]])
}
