// Diversity study (the paper's Fig. 6 protocol): start from a four-party
// consortium, inject exact duplicate participants one at a time, and watch
// how each selection method copes. Score-based methods (Shapley, VF-MINE)
// rank a duplicate as highly as its source and waste selection slots on
// redundant data; VFPS-SM's submodular objective gives a duplicate zero
// marginal gain, so its accuracy stays flat.
//
//	go run ./examples/diversity
package main

import (
	"context"
	"fmt"
	"log"

	"vfps"
)

func main() {
	ctx := context.Background()
	const baseParties = 4

	data, err := vfps.GenerateDataset("Phishing", 1200)
	if err != nil {
		log.Fatal(err)
	}
	base, err := vfps.VerticalSplit(data, baseParties, 1)
	if err != nil {
		log.Fatal(err)
	}

	methods := []vfps.Method{vfps.MethodShapley, vfps.MethodVFMine, vfps.MethodVFPS}
	fmt.Println("downstream KNN accuracy when selecting 2 participants:")
	fmt.Printf("%-12s", "dups")
	for _, m := range methods {
		fmt.Printf("%12s", m)
	}
	fmt.Println()

	for dups := 0; dups <= 4; dups++ {
		partition := base
		if dups > 0 {
			partition = base.WithDuplicates(dups, 99)
		}
		cons, err := vfps.NewConsortium(ctx, vfps.Config{
			Partition: partition, Labels: data.Y, Classes: data.Classes,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("+%-11d", dups)
		for _, m := range methods {
			sel, err := cons.SelectWith(ctx, m, 2, vfps.SelectOptions{K: 10, NumQueries: 32, Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			ev, err := cons.Evaluate(vfps.ModelKNN, sel.Selected, vfps.EvalOptions{K: 10})
			if err != nil {
				log.Fatal(err)
			}
			redundant := ""
			if picksDuplicatePair(partition, sel.Selected) {
				redundant = "*"
			}
			fmt.Printf("%11.4f%s", ev.Accuracy, pad(redundant))
		}
		fmt.Println()
	}
	fmt.Println("\n(* = the method selected a participant together with its own replica)")
}

// picksDuplicatePair reports whether the selection contains a party and its
// exact duplicate.
func picksDuplicatePair(pt *vfps.Partition, selected []int) bool {
	group := func(p int) int {
		if src := pt.DuplicateOf[p]; src >= 0 {
			return src
		}
		return p
	}
	seen := map[int]bool{}
	for _, p := range selected {
		g := group(p)
		if seen[g] {
			return true
		}
		seen[g] = true
	}
	return false
}

func pad(s string) string {
	if s == "" {
		return " "
	}
	return s
}
