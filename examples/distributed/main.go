// Distributed deployment: the five system roles — key server, aggregation
// server, three participants (the first doubling as leader) — each run
// behind their own TCP socket on localhost, exchanging real length-framed
// gob messages with Paillier-encrypted partial distances. The same topology
// runs across machines with cmd/vfpsnode.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"

	"vfps"
	"vfps/internal/costmodel"
	"vfps/internal/submod"
	"vfps/internal/transport"
	"vfps/internal/vfl"
)

func main() {
	ctx := context.Background()

	data, err := vfps.GenerateDataset("Rice", 300)
	if err != nil {
		log.Fatal(err)
	}
	partition, err := vfps.VerticalSplit(data, 3, 1)
	if err != nil {
		log.Fatal(err)
	}

	directory := map[string]string{}

	// Key server: generates the Paillier key pair (small modulus for demo
	// speed; use ≥ 2048 bits in production).
	ks, err := vfl.NewKeyServer("paillier", 512)
	if err != nil {
		log.Fatal(err)
	}
	keySrv, err := transport.ListenTCP("127.0.0.1:0", ks.Handler())
	if err != nil {
		log.Fatal(err)
	}
	defer keySrv.Close()
	directory[vfl.KeyServerName] = keySrv.Addr()
	fmt.Printf("key server          %s\n", keySrv.Addr())

	// Participants fetch the public key and serve their local features.
	bootstrap := transport.NewTCPClient(directory)
	defer bootstrap.Close()
	pub, err := vfl.FetchPublicScheme(ctx, bootstrap, vfl.KeyServerName)
	if err != nil {
		log.Fatal(err)
	}
	var partyNames []string
	for i := 0; i < partition.P(); i++ {
		part, err := vfl.NewParticipant(i, partition.Parties[i], pub, 7)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := transport.ListenTCP("127.0.0.1:0", part.Handler())
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		name := vfl.PartyName(i)
		directory[name] = srv.Addr()
		partyNames = append(partyNames, name)
		fmt.Printf("participant %d       %s (%d features)\n", i, srv.Addr(), part.Features())
	}

	// Aggregation server: merges rankings with Fagin and sums ciphertexts.
	aggCli := transport.NewTCPClient(directory)
	defer aggCli.Close()
	agg, err := vfl.NewAggServer(aggCli, partyNames, pub)
	if err != nil {
		log.Fatal(err)
	}
	aggSrv, err := transport.ListenTCP("127.0.0.1:0", agg.Handler())
	if err != nil {
		log.Fatal(err)
	}
	defer aggSrv.Close()
	directory[vfl.AggServerName] = aggSrv.Addr()
	fmt.Printf("aggregation server  %s\n", aggSrv.Addr())

	// Leader: holds the private key, drives the protocol.
	leaderCli := transport.NewTCPClient(directory)
	defer leaderCli.Close()
	priv, err := vfl.FetchPrivateScheme(ctx, leaderCli, vfl.KeyServerName)
	if err != nil {
		log.Fatal(err)
	}
	leader, err := vfl.NewLeader(leaderCli, vfl.AggServerName, partyNames, priv, 16)
	if err != nil {
		log.Fatal(err)
	}

	queries := []int{5, 50, 100, 150, 200, 250}
	fmt.Printf("\nrunning encrypted vertical KNN over %d queries (Paillier, Fagin-pruned)...\n", len(queries))
	rep, err := leader.Similarities(ctx, queries, 5, vfl.VariantFagin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("similarity matrix:")
	for _, row := range rep.W {
		for _, v := range row {
			fmt.Printf("  %.4f", v)
		}
		fmt.Println()
	}
	obj, err := submod.NewFacilityLocation(rep.W)
	if err != nil {
		log.Fatal(err)
	}
	res, err := submod.Greedy(obj, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected participants: %v (objective %.4f)\n", res.Selected, res.Value)
	fmt.Printf("avg encrypted candidates per query: %.1f of %d\n", rep.AvgCandidates, data.N()-1)

	counts, err := leader.TotalCounts(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol ops: %s\n", counts)
	fmt.Printf("projected time at calibrated HE rates: %.2fs\n", costmodel.Default.Seconds(counts))
}
