module vfps

go 1.22
