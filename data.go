package vfps

import (
	"io"

	"vfps/internal/dataset"
)

// DatasetNames lists the built-in synthetic generators, matching the
// geometry of the ten datasets in the paper's Table III.
func DatasetNames() []string {
	names := make([]string, len(dataset.PaperSpecs))
	for i, s := range dataset.PaperSpecs {
		names[i] = s.Name
	}
	return names
}

// GenerateDataset materialises one of the built-in synthetic datasets with
// at most maxRows instances (0 = paper scale). Deterministic.
func GenerateDataset(name string, maxRows int) (*Dataset, error) {
	spec, err := dataset.SpecByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Generate(maxRows)
}

// VerticalSplit assigns the dataset's features to p participants in random
// near-equal blocks (deterministic in seed).
func VerticalSplit(d *Dataset, p int, seed int64) (*Partition, error) {
	return dataset.VerticalSplit(d, p, seed)
}

// LoadCSV reads a classification dataset from CSV data; labelCol may be
// negative to count from the last column, and header skips the first row.
func LoadCSV(r io.Reader, name string, labelCol int, header bool) (*Dataset, error) {
	return dataset.LoadCSV(r, name, labelCol, header)
}

// SplitIndices divides row indices into 80/10/10 train/val/test groups
// (seeded shuffle), for carving row-aligned views with Partition.ApplyRows.
func SplitIndices(n int, seed int64) (train, val, test []int, err error) {
	return dataset.SplitIndices(n, seed)
}

// SelectLabels restricts labels to the given rows, aligned with
// Partition.ApplyRows.
func SelectLabels(y []int, rows []int) []int { return dataset.SelectLabels(y, rows) }
