package vfps

import (
	"fmt"
	"strings"
)

// FormatSelection renders a Selection as a human-readable report: the chosen
// sub-consortium, per-step marginal gains, the similarity matrix, and the
// protocol cost summary. Intended for CLI and log output.
func FormatSelection(sel *Selection) string {
	if sel == nil {
		return "<nil selection>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "selected participants: %v (objective %.4f", sel.Selected, sel.Value)
	if sel.QueriesUsed > 0 {
		fmt.Fprintf(&b, ", %d queries", sel.QueriesUsed)
	}
	b.WriteString(")\n")
	for i, p := range sel.Selected {
		fmt.Fprintf(&b, "  step %d: party %d  marginal gain %.4f\n", i+1, p, sel.Gains[i])
	}
	b.WriteString("similarity matrix w(p,s):\n")
	for _, row := range sel.W {
		b.WriteString(" ")
		for _, v := range row {
			fmt.Fprintf(&b, " %.4f", v)
		}
		b.WriteByte('\n')
	}
	if sel.AvgCandidates > 0 {
		fmt.Fprintf(&b, "avg encrypted candidates per query: %.1f\n", sel.AvgCandidates)
	}
	fmt.Fprintf(&b, "protocol ops: %s\n", sel.Counts.String())
	fmt.Fprintf(&b, "wall time %s; projected %.2fs at calibrated HE rates\n",
		sel.WallTime.Round(1e6), sel.ProjectedSeconds)
	return b.String()
}
