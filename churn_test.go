package vfps

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"vfps/internal/mat"
)

// subPartition builds a partition holding the listed parties of pt, in order.
func subPartition(pt *Partition, parties []int) *Partition {
	out := &Partition{}
	for _, p := range parties {
		out.Parties = append(out.Parties, pt.Parties[p])
		out.FeatureIdx = append(out.FeatureIdx, pt.FeatureIdx[p])
		out.DuplicateOf = append(out.DuplicateOf, -1)
	}
	return out
}

func matRows(m *mat.Matrix) [][]float64 {
	rows := make([][]float64, m.Rows)
	for i := range rows {
		rows[i] = append([]float64(nil), m.Data[i*m.Cols:(i+1)*m.Cols]...)
	}
	return rows
}

// TestChurnSelectionMatchesColdRebuild is the churn bit-identity matrix: a
// consortium that reaches a membership through live joins and leaves must
// produce exactly the selection — same picks, same objective value, same
// similarity matrix — as a consortium cold-built at that final membership,
// across parallelism, ciphertext packing and optimizer choices.
func TestChurnSelectionMatchesColdRebuild(t *testing.T) {
	d, err := GenerateDataset("Bank", 96)
	if err != nil {
		t.Fatal(err)
	}
	full, err := VerticalSplit(d, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		scheme      string
		pack        bool
		parallelism int
		optimizer   string
	}{
		{"plain", false, 1, "greedy"},
		{"plain", false, 1, "lazy"},
		{"plain", false, 1, "warm"},
		{"plain", false, 4, "greedy"},
		{"plain", false, 4, "lazy"},
		{"plain", false, 4, "warm"},
		{"paillier", true, 1, "greedy"},
		{"paillier", true, 1, "warm"},
		{"paillier", true, 4, "lazy"},
		{"paillier", true, 4, "warm"},
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("%s-pack=%v-par=%d-%s", tc.scheme, tc.pack, tc.parallelism, tc.optimizer)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx := context.Background()
			mk := func(pt *Partition) *Consortium {
				cons, err := NewConsortium(ctx, Config{
					Partition: pt, Labels: d.Y, Classes: d.Classes,
					Scheme: tc.scheme, KeyBits: 256, ShuffleSeed: 7,
					Pack: tc.pack, DeltaCache: true, Parallelism: tc.parallelism,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(cons.Close)
				return cons
			}
			opts := SelectOptions{
				K: 5, NumQueries: 6, Seed: 3,
				Optimizer: tc.optimizer, Parallelism: tc.parallelism,
			}

			// Live consortium: start with parties {0,1,2}, select once (seeds
			// the delta caches and the warm prior), join 3 and 4, drop index 1.
			live := mk(subPartition(full, []int{0, 1, 2}))
			if _, err := live.Select(ctx, 2, opts); err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{3, 4} {
				joined, err := live.AddParticipant(matRows(full.Parties[p]))
				if err != nil {
					t.Fatal(err)
				}
				if want := fmt.Sprintf("party/%d", p); joined != want {
					t.Fatalf("join named %q, want %q", joined, want)
				}
			}
			if err := live.RemoveParticipant(1); err != nil {
				t.Fatal(err)
			}
			if got := live.PartyNames(); !reflect.DeepEqual(got, []string{"party/0", "party/2", "party/3", "party/4"}) {
				t.Fatalf("post-churn roster %v", got)
			}
			churned, err := live.Select(ctx, 2, opts)
			if err != nil {
				t.Fatal(err)
			}

			// Cold twin at the final membership.
			cold, err := mk(subPartition(full, []int{0, 2, 3, 4})).Select(ctx, 2, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(churned.Selected, cold.Selected) {
				t.Fatalf("churned selection %v, cold rebuild %v", churned.Selected, cold.Selected)
			}
			if churned.Value != cold.Value {
				t.Fatalf("churned value %v, cold rebuild %v", churned.Value, cold.Value)
			}
			if !reflect.DeepEqual(churned.W, cold.W) {
				t.Fatalf("similarity matrices diverge:\nchurned %v\ncold    %v", churned.W, cold.W)
			}
		})
	}
}

// TestChurnRejectsFixedSizeScheme pins the guard: secagg's pairwise masks
// fix the consortium size at key setup, so membership changes are refused.
func TestChurnRejectsFixedSizeScheme(t *testing.T) {
	d, err := GenerateDataset("Rice", 80)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := VerticalSplit(d, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsortium(context.Background(), Config{
		Partition: pt, Labels: d.Y, Classes: d.Classes, Scheme: "secagg",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	if _, err := cons.AddParticipant(matRows(pt.Parties[0])); err == nil {
		t.Fatal("secagg join should be rejected")
	}
	if err := cons.RemoveParticipant(0); err == nil {
		t.Fatal("secagg leave should be rejected")
	}
}

// TestChurnJoinValidation pins the joiner shape checks.
func TestChurnJoinValidation(t *testing.T) {
	d, err := GenerateDataset("Rice", 80)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := VerticalSplit(d, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsortium(context.Background(), Config{
		Partition: pt, Labels: d.Y, Classes: d.Classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	if _, err := cons.AddParticipant(make([][]float64, 7)); err == nil {
		t.Fatal("row-count mismatch should be rejected")
	}
	bad := matRows(pt.Parties[0])
	bad[3] = bad[3][:1]
	if _, err := cons.AddParticipant(bad); err == nil {
		t.Fatal("ragged joiner should be rejected")
	}
	if err := cons.RemoveParticipant(9); err == nil {
		t.Fatal("unknown index should be rejected")
	}
	// The last participant cannot leave.
	if err := cons.RemoveParticipant(1); err != nil {
		t.Fatal(err)
	}
	if err := cons.RemoveParticipant(2); err != nil {
		t.Fatal(err)
	}
	if err := cons.RemoveParticipant(0); err == nil {
		t.Fatal("removing the last participant should be rejected")
	}
}
