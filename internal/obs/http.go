package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// Observer bundles the two observability facilities a component needs: the
// metrics registry and the phase tracer. A nil *Observer (the default
// everywhere) disables both at the cost of a nil check; the accessors are
// nil-safe so call sites never guard.
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
}

// NewObserver returns an enabled observer with a fresh registry and a tracer
// of the given span capacity (<= 0 → DefaultTraceCapacity).
func NewObserver(traceCapacity int) *Observer {
	return &Observer{Metrics: New(), Trace: NewTracer(traceCapacity)}
}

// Registry returns the metrics registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Tracer returns the span tracer (nil on a nil observer).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// defaultObs is the process-wide observer used by components that were not
// handed one explicitly. It starts nil — fully disabled — so observability
// is strictly opt-in.
var defaultObs atomic.Pointer[Observer]

// SetDefault installs the process-wide default observer (pass nil to
// disable). Binaries call this once at startup, before building clusters.
func SetDefault(o *Observer) { defaultObs.Store(o) }

// Default returns the process-wide observer, which is nil unless SetDefault
// was called.
func Default() *Observer { return defaultObs.Load() }

// Or returns o itself when non-nil and the process default otherwise — the
// one-line fallback used by constructors with an optional Obs field.
func (o *Observer) Or(fallback *Observer) *Observer {
	if o != nil {
		return o
	}
	return fallback
}

// ---- HTTP surface ----

// Routes mounts the observability endpoints onto mux:
//
//	GET /metrics       Prometheus text exposition
//	GET /metrics.json  registry snapshot as JSON
//	GET /v1/trace      span report (?reset=1 clears the ring after the dump)
//	GET /debug/vars    expvar (includes the registry as "vfps_metrics")
//	GET /debug/pprof/  runtime profiling (net/http/pprof)
func (o *Observer) Routes(mux *http.ServeMux) {
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(o.Registry().Snapshot())
	})
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		rep := o.Tracer().Report()
		if r.URL.Query().Get("reset") == "1" {
			o.Tracer().Reset()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	o.publishExpvar()
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a standalone mux with just the observability endpoints —
// the vfpsnode -obs-addr debug listener.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	o.Routes(mux)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	return mux
}

// expvar.Publish panics on duplicate names and offers no unpublish, so the
// registry var is installed once per process and resolves the registry to
// export at read time.
var expvarOnce sync.Once
var expvarReg atomic.Pointer[Registry]

func (o *Observer) publishExpvar() {
	if reg := o.Registry(); reg != nil {
		expvarReg.Store(reg)
	}
	expvarOnce.Do(func() {
		expvar.Publish("vfps_metrics", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}
