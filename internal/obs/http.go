package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Observer bundles the observability facilities a component needs: the
// metrics registry, the phase tracer and the per-query accounting log. A nil
// *Observer (the default everywhere) disables all three at the cost of a nil
// check; the accessors are nil-safe so call sites never guard.
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
	Events  *QueryLog

	// tracePeers lists remote /v1/trace base URLs whose spans this
	// observer's /v1/trace merges into its span forest (SetTracePeers).
	tracePeers []string
}

// NewObserver returns an enabled observer with a fresh registry, a tracer
// of the given span capacity (<= 0 → DefaultTraceCapacity), and a default
// flight recorder (no JSON log writer until one is configured).
func NewObserver(traceCapacity int) *Observer {
	return &Observer{Metrics: New(), Trace: NewTracer(traceCapacity), Events: NewQueryLog(nil, 0)}
}

// Registry returns the metrics registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Tracer returns the span tracer (nil on a nil observer).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Log returns the per-query accounting log (nil on a nil observer).
func (o *Observer) Log() *QueryLog {
	if o == nil {
		return nil
	}
	return o.Events
}

// SetTracePeers configures remote /v1/trace base URLs (e.g.
// "http://127.0.0.1:9010") whose span reports this observer's /v1/trace
// endpoint scrapes and merges into its cross-node span forest. Set before
// serving; not safe to mutate concurrently with scrapes.
func (o *Observer) SetTracePeers(urls []string) {
	if o == nil {
		return
	}
	o.tracePeers = append([]string(nil), urls...)
}

// defaultObs is the process-wide observer used by components that were not
// handed one explicitly. It starts nil — fully disabled — so observability
// is strictly opt-in.
var defaultObs atomic.Pointer[Observer]

// SetDefault installs the process-wide default observer (pass nil to
// disable). Binaries call this once at startup, before building clusters.
func SetDefault(o *Observer) { defaultObs.Store(o) }

// Default returns the process-wide observer, which is nil unless SetDefault
// was called.
func Default() *Observer { return defaultObs.Load() }

// Or returns o itself when non-nil and the process default otherwise — the
// one-line fallback used by constructors with an optional Obs field.
func (o *Observer) Or(fallback *Observer) *Observer {
	if o != nil {
		return o
	}
	return fallback
}

// ---- HTTP surface ----

// Routes mounts the observability endpoints onto mux:
//
//	GET /metrics       Prometheus text exposition
//	GET /metrics.json  registry snapshot as JSON
//	GET /v1/trace      span report (?reset=1 clears the ring after the dump)
//	GET /debug/vars    expvar (includes the registry as "vfps_metrics")
//	GET /debug/pprof/  runtime profiling (net/http/pprof)
func (o *Observer) Routes(mux *http.ServeMux) {
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(o.Registry().Snapshot())
	})
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		rep := o.Tracer().Report()
		if r.URL.Query().Get("reset") == "1" {
			o.Tracer().Reset()
		}
		// raw=1 skips peer scraping and forest assembly — the form peers
		// request from each other, so two nodes listing one another cannot
		// recurse.
		if r.URL.Query().Get("raw") != "1" {
			for _, peer := range o.tracePeers {
				prep, err := FetchTraceReport(r.Context(), peer)
				if err != nil {
					rep.PeerErrors = append(rep.PeerErrors, peer+": "+err.Error())
					continue
				}
				rep.Peers = append(rep.Peers, peer)
				rep.Spans = append(rep.Spans, prep.Spans...)
			}
			rep.Forest = AssembleForest(rep.Spans)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	mux.HandleFunc("GET /v1/slow", func(w http.ResponseWriter, r *http.Request) {
		slow := o.Log().Slowest()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"capacity": o.Log().Cap(),
			"count":    len(slow),
			"slowest":  slow,
		})
	})
	o.publishExpvar()
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a standalone mux with just the observability endpoints —
// the vfpsnode -obs-addr debug listener.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	o.Routes(mux)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	return mux
}

// FetchTraceReport scrapes one peer's span report from base+"/v1/trace?raw=1"
// (raw: local spans only, no recursive peer merge). base is the peer's
// observability listener, e.g. "http://127.0.0.1:9010".
func FetchTraceReport(ctx context.Context, base string) (TraceReport, error) {
	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/v1/trace?raw=1", nil)
	if err != nil {
		return TraceReport{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return TraceReport{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return TraceReport{}, fmt.Errorf("obs: peer trace scrape: status %d", resp.StatusCode)
	}
	var rep TraceReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return TraceReport{}, fmt.Errorf("obs: peer trace scrape: %w", err)
	}
	return rep, nil
}

// expvar.Publish panics on duplicate names and offers no unpublish, so the
// registry var is installed once per process and resolves the registry to
// export at read time.
var expvarOnce sync.Once
var expvarReg atomic.Pointer[Registry]

func (o *Observer) publishExpvar() {
	if reg := o.Registry(); reg != nil {
		expvarReg.Store(reg)
	}
	expvarOnce.Do(func() {
		expvar.Publish("vfps_metrics", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}
