package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestObserverHandlerEndpoints(t *testing.T) {
	o := NewObserver(16)
	o.Registry().Counter("vfps_http_test_total", "t", "x").With("a").Inc()
	_, sp := o.Tracer().Start(context.Background(), "phase")
	sp.End()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp, string(b)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("/metrics: status %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, `vfps_http_test_total{x="a"} 1`) {
		t.Fatalf("/metrics body missing series:\n%s", body)
	}

	resp, body = get("/metrics.json")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics.json: %d", resp.StatusCode)
	}
	var fams []FamilySnapshot
	if err := json.Unmarshal([]byte(body), &fams); err != nil {
		t.Fatalf("/metrics.json parse: %v", err)
	}
	if len(fams) != 1 || fams[0].Name != "vfps_http_test_total" {
		t.Fatalf("/metrics.json families = %+v", fams)
	}

	resp, body = get("/v1/trace?reset=1")
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/trace: %d", resp.StatusCode)
	}
	var rep TraceReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/v1/trace parse: %v", err)
	}
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "phase" {
		t.Fatalf("/v1/trace spans = %+v", rep.Spans)
	}
	if o.Tracer().Len() != 0 {
		t.Fatal("?reset=1 must clear the ring")
	}

	resp, body = get("/debug/vars")
	if resp.StatusCode != 200 || !strings.Contains(body, "vfps_metrics") {
		t.Fatalf("/debug/vars: status %d, body %q", resp.StatusCode, body)
	}

	resp, _ = get("/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", resp.StatusCode)
	}
}
