// Package obs is the stdlib-only observability substrate of the VFPS
// runtime: a concurrent metrics registry (counters, gauges and fixed-bucket
// histograms with labels, exported in Prometheus text format and as JSON), a
// lightweight span tracer that records the selection protocol's phases into
// a bounded ring buffer, and HTTP handlers that surface both plus the
// standard expvar/pprof introspection endpoints.
//
// Everything in this package is nil-safe: a nil *Registry, *Tracer,
// *Observer or any instrument obtained from one degrades to a no-op, so
// instrumented code paths cost a single nil check when observability is
// disabled (the default). Components therefore accept an observer without
// guarding call sites:
//
//	var reg *obs.Registry // nil: disabled
//	calls := reg.Counter("vfps_calls_total", "calls", "peer")
//	calls.With("party/0").Inc() // no-op, no allocation
//
// Metric names follow the Prometheus conventions (snake case, _total for
// counters, unit suffixes _seconds/_bytes for histograms). The phase metrics
// map onto the paper's cost symbols through internal/costmodel's gauge
// bridge; see DESIGN.md §7 for the full correspondence.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric families.
type Kind string

// The metric kinds, named after their Prometheus TYPE line.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry is a set of named metric families. The zero value is not usable;
// call New. A nil *Registry is a valid no-op sink. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and a series per
// distinct label-value combination.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram upper bounds, ascending, +Inf implicit

	mu     sync.RWMutex
	series map[string]*series
	order  []string // insertion order of series keys
}

// series is one labelled time series.
type series struct {
	labelVals []string
	n         atomic.Int64  // counter value
	f         atomic.Uint64 // gauge value (float64 bits)
	fn        func() float64
	h         *histo
}

// seriesSep joins label values into map keys; label values containing it are
// rejected nowhere (it is an unlikely byte in metric labels) but would only
// merge series, never corrupt state.
const seriesSep = "\x1f"

// lookup returns the family, creating it on first use. Redeclaring a family
// with the same schema is idempotent; a kind or label-arity mismatch panics,
// as it is a programming error that would silently corrupt the export.
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labelNames []string) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{
				name:       name,
				help:       help,
				kind:       kind,
				labelNames: append([]string(nil), labelNames...),
				buckets:    append([]float64(nil), buckets...),
				series:     make(map[string]*series),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q redeclared as %s (was %s)", name, kind, f.kind))
	}
	if len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("obs: metric %q redeclared with %d labels (was %d)", name, len(labelNames), len(f.labelNames)))
	}
	return f
}

// with returns the series for the given label values, creating it on first
// use.
func (f *family) with(labelVals []string) *series {
	if len(labelVals) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labelNames), len(labelVals)))
	}
	key := strings.Join(labelVals, seriesSep)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelVals: append([]string(nil), labelVals...)}
	if f.kind == KindHistogram {
		s.h = newHisto(f.buckets)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// ---- counters ----

// CounterVec is a family of monotonically increasing counters.
type CounterVec struct{ fam *family }

// Counter declares (or finds) a counter family. A nil registry returns a nil
// vec, whose instruments are no-ops.
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.lookup(name, help, KindCounter, nil, labelNames)}
}

// With resolves the counter for the given label values.
func (v *CounterVec) With(labelVals ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{s: v.fam.with(labelVals)}
}

// Counter is one counter series.
type Counter struct{ s *series }

// Add increases the counter; negative deltas are ignored (counters are
// monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.s.n.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.s.n.Load()
}

// ---- gauges ----

// GaugeVec is a family of instantaneous values.
type GaugeVec struct{ fam *family }

// Gauge declares (or finds) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.lookup(name, help, KindGauge, nil, labelNames)}
}

// With resolves the gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{s: v.fam.with(labelVals)}
}

// Func installs a pull gauge: fn is evaluated at scrape time. Re-installing
// for the same label values replaces the previous function.
func (v *GaugeVec) Func(fn func() float64, labelVals ...string) {
	if v == nil {
		return
	}
	s := v.fam.with(labelVals)
	v.fam.mu.Lock()
	s.fn = fn
	v.fam.mu.Unlock()
}

// Gauge is one gauge series.
type Gauge struct{ s *series }

// Set stores the value.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.s.f.Store(math.Float64bits(x))
}

// Add shifts the value by dx (CAS loop; safe for concurrent use).
func (g *Gauge) Add(dx float64) {
	if g == nil {
		return
	}
	for {
		old := g.s.f.Load()
		if g.s.f.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+dx)) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.s.value()
}

// value resolves a series' scalar at scrape time. Callers must hold no
// family lock when the series has a pull function that might block.
func (s *series) value() float64 {
	if s.fn != nil {
		return s.fn()
	}
	return math.Float64frombits(s.f.Load())
}

// ---- histograms ----

// histo is the lock-free histogram state: cumulative-at-export fixed
// buckets, atomic per-bucket counts, and a CAS-accumulated float sum.
type histo struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow bucket
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

func newHisto(bounds []float64) *histo {
	return &histo{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histo) observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramVec is a family of fixed-bucket histograms.
type HistogramVec struct{ fam *family }

// Histogram declares (or finds) a histogram family with the given ascending
// bucket upper bounds (the +Inf bucket is implicit). buckets must not be
// empty and is captured on first declaration.
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.lookup(name, help, KindHistogram, buckets, labelNames)}
}

// With resolves the histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &Histogram{s: v.fam.with(labelVals)}
}

// Histogram is one histogram series.
type Histogram struct{ s *series }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.s.h.observe(v)
}

// ObserveSince records the elapsed seconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.s.h.observe(time.Since(t0).Seconds())
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramData {
	if h == nil {
		return HistogramData{}
	}
	return h.s.h.snapshot()
}

func (h *histo) snapshot() HistogramData {
	d := HistogramData{
		Buckets: append([]float64(nil), h.bounds...),
		Counts:  make([]int64, len(h.counts)),
		Sum:     math.Float64frombits(h.sum.Load()),
		Count:   h.count.Load(),
	}
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
	}
	return d
}

// HistogramData is a plain-value histogram snapshot. Counts has one entry
// per bucket plus the trailing +Inf overflow bucket; entries are per-bucket
// (not cumulative).
type HistogramData struct {
	Buckets []float64 `json:"buckets"`
	Counts  []int64   `json:"counts"`
	Sum     float64   `json:"sum"`
	Count   int64     `json:"count"`
}

// Merge returns the element-wise sum of two snapshots. The bucket layouts
// must match exactly; merging histograms with different bounds would silently
// misbin samples, so that is an error.
func (d HistogramData) Merge(o HistogramData) (HistogramData, error) {
	if len(o.Buckets) == 0 && o.Count == 0 {
		return d, nil
	}
	if len(d.Buckets) == 0 && d.Count == 0 {
		return o, nil
	}
	if len(d.Buckets) != len(o.Buckets) {
		return HistogramData{}, fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(d.Buckets), len(o.Buckets))
	}
	for i := range d.Buckets {
		if d.Buckets[i] != o.Buckets[i] {
			return HistogramData{}, fmt.Errorf("obs: bucket bound mismatch at %d: %g vs %g", i, d.Buckets[i], o.Buckets[i])
		}
	}
	out := HistogramData{
		Buckets: append([]float64(nil), d.Buckets...),
		Counts:  make([]int64, len(d.Counts)),
		Sum:     d.Sum + o.Sum,
		Count:   d.Count + o.Count,
	}
	for i := range d.Counts {
		out.Counts[i] = d.Counts[i] + o.Counts[i]
	}
	return out, nil
}

// MergeAll merges every series of the family into one histogram — the
// cross-label total (e.g. call latency over all peers and methods).
func (v *HistogramVec) MergeAll() (HistogramData, error) {
	if v == nil {
		return HistogramData{}, nil
	}
	v.fam.mu.RLock()
	defer v.fam.mu.RUnlock()
	var out HistogramData
	var err error
	for _, key := range v.fam.order {
		out, err = out.Merge(v.fam.series[key].h.snapshot())
		if err != nil {
			return HistogramData{}, err
		}
	}
	return out, nil
}

// ---- standard bucket layouts ----

// DefBuckets is the fallback bucket layout (Prometheus' classic defaults).
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// LatencyBuckets spans 10 µs … 10 s, sized for both sub-millisecond
// in-process RPCs and paper-grade HE operations.
var LatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets spans 64 B … 16 MiB message payloads.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536,
	262144, 1048576, 4194304, 16777216,
}
