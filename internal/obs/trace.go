package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records completed spans into a bounded in-memory ring buffer. It is
// deliberately minimal: no sampling, no export pipeline — just enough to
// answer "where did this selection run spend its time" from a live process.
// A nil *Tracer is a valid disabled tracer: Start returns a nil span and the
// instrumented path pays one nil check.
type Tracer struct {
	ids atomic.Uint64

	mu      sync.Mutex
	cap     int
	buf     []SpanData // ring, insertion position = next % cap once full
	next    int
	dropped uint64
}

// DefaultTraceCapacity bounds the span ring when no capacity is given.
const DefaultTraceCapacity = 8192

// NewTracer returns a tracer keeping up to capacity completed spans
// (DefaultTraceCapacity when <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity, buf: make([]SpanData, 0, capacity)}
}

// SpanData is one completed span as it appears in a trace report.
type SpanData struct {
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	// DurationNs is End-Start in nanoseconds.
	DurationNs int64             `json:"durationNs"`
	Labels     map[string]string `json:"labels,omitempty"`
}

// Span is an in-flight operation. End records it; labels may be attached at
// any point before End. A nil *Span no-ops everywhere.
type Span struct {
	t *Tracer

	mu     sync.Mutex
	data   SpanData
	ended  bool
	labels map[string]string
}

// Start begins a span. If ctx carries a span (from an enclosing Start), the
// new span is linked as its child; the returned context carries the new span
// for deeper nesting. A nil tracer returns (ctx, nil) without touching ctx,
// so disabled tracing allocates nothing.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{t: t}
	s.data.ID = t.ids.Add(1)
	s.data.Name = name
	s.data.Start = time.Now()
	if parent := SpanFromContext(ctx); parent != nil {
		s.data.Parent = parent.data.ID
	}
	return ContextWithSpan(ctx, s), s
}

// SetLabel attaches a key/value pair to the span.
func (s *Span) SetLabel(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string, 4)
	}
	s.labels[k] = v
	s.mu.Unlock()
}

// SetLabelInt attaches an integer label.
func (s *Span) SetLabelInt(k string, v int64) {
	if s == nil {
		return
	}
	s.SetLabel(k, strconv.FormatInt(v, 10))
}

// End completes the span and commits it to the tracer's ring buffer.
// Ending twice is harmless (the second call is ignored).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurationNs = time.Since(s.data.Start).Nanoseconds()
	s.data.Labels = s.labels
	data := s.data
	s.mu.Unlock()
	s.t.record(data)
}

func (t *Tracer) record(d SpanData) {
	t.mu.Lock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, d)
	} else {
		t.buf[t.next%t.cap] = d
		t.dropped++
	}
	t.next++
	t.mu.Unlock()
}

// ctxKey carries the active span through a context chain.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// PhaseSummary aggregates the root spans (those without a parent) sharing a
// name: the protocol phases. Because root spans do not overlap within one
// driver goroutine, their total durations sum to (at most) the run's wall
// clock.
type PhaseSummary struct {
	Name      string  `json:"name"`
	Count     int     `json:"count"`
	TotalNs   int64   `json:"totalNs"`
	TotalSecs float64 `json:"totalSecs"`
}

// TraceReport is the JSON dump of the tracer's ring buffer.
type TraceReport struct {
	Capacity int            `json:"capacity"`
	Dropped  uint64         `json:"dropped"` // spans evicted from the ring
	Phases   []PhaseSummary `json:"phases"`  // root spans aggregated by name
	Spans    []SpanData     `json:"spans"`   // all retained spans, by start time
}

// Report snapshots the retained spans sorted by start time, with a per-name
// summary of the root spans. A nil tracer reports an empty trace.
func (t *Tracer) Report() TraceReport {
	if t == nil {
		return TraceReport{}
	}
	t.mu.Lock()
	spans := append([]SpanData(nil), t.buf...)
	rep := TraceReport{Capacity: t.cap, Dropped: t.dropped}
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
	rep.Spans = spans
	byName := map[string]*PhaseSummary{}
	var names []string
	for _, s := range spans {
		if s.Parent != 0 {
			continue
		}
		p := byName[s.Name]
		if p == nil {
			p = &PhaseSummary{Name: s.Name}
			byName[s.Name] = p
			names = append(names, s.Name)
		}
		p.Count++
		p.TotalNs += s.DurationNs
	}
	for _, n := range names {
		p := byName[n]
		p.TotalSecs = float64(p.TotalNs) / 1e9
		rep.Phases = append(rep.Phases, *p)
	}
	return rep
}

// Reset discards all retained spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.dropped = 0
	t.mu.Unlock()
}

// Len reports the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}
