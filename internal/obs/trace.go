package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records completed spans into a bounded in-memory ring buffer. It is
// deliberately minimal: no sampling, no export pipeline — just enough to
// answer "where did this selection run spend its time" from a live process.
// A nil *Tracer is a valid disabled tracer: Start returns a nil span and the
// instrumented path pays one nil check.
type Tracer struct {
	node atomic.Pointer[string]

	mu      sync.Mutex
	cap     int
	buf     []SpanData // ring, insertion position = next % cap once full
	next    int
	dropped uint64
}

// DefaultTraceCapacity bounds the span ring when no capacity is given.
const DefaultTraceCapacity = 8192

// NewTracer returns a tracer keeping up to capacity completed spans
// (DefaultTraceCapacity when <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity, buf: make([]SpanData, 0, capacity)}
}

// SetNode names the process this tracer runs in. The name is stamped on
// every span started afterwards, so spans merged across processes stay
// attributable (the span forest groups by it).
func (t *Tracer) SetNode(name string) {
	if t == nil {
		return
	}
	t.node.Store(&name)
}

// Node returns the configured process name ("" when unset).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	if p := t.node.Load(); p != nil {
		return *p
	}
	return ""
}

// TraceID is the 128-bit identity a whole distributed operation shares. It
// renders as 32 hex digits in JSON.
type TraceID [16]byte

// IsZero reports whether the trace ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// MarshalText implements encoding.TextMarshaler (hex).
func (t TraceID) MarshalText() ([]byte, error) {
	b := make([]byte, 32)
	hex.Encode(b, t[:])
	return b, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *TraceID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*t = TraceID{}
		return nil
	}
	if len(b) != 32 {
		return fmt.Errorf("obs: trace id %q is not 32 hex digits", b)
	}
	_, err := hex.Decode(t[:], b)
	return err
}

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (56 - 8*i))
			id[8+i] = byte(lo >> (56 - 8*i))
		}
	}
	return id
}

// newSpanID returns a random non-zero span ID. IDs are drawn from 53 bits so
// they survive JSON consumers that read numbers as float64 (jq, browsers);
// the wire field still carries the full 64-bit value.
func newSpanID() uint64 {
	for {
		if id := rand.Uint64() & ((1 << 53) - 1); id != 0 {
			return id
		}
	}
}

// SpanData is one completed span as it appears in a trace report.
type SpanData struct {
	Trace  TraceID `json:"trace,omitempty"`
	ID     uint64  `json:"id"`
	Parent uint64  `json:"parent,omitempty"`
	// Node names the process the span ran in (Tracer.SetNode).
	Node  string    `json:"node,omitempty"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// DurationNs is End-Start in nanoseconds.
	DurationNs int64             `json:"durationNs"`
	Labels     map[string]string `json:"labels,omitempty"`
}

// Span is an in-flight operation. End records it; labels may be attached at
// any point before End. A nil *Span no-ops everywhere.
type Span struct {
	t *Tracer

	mu     sync.Mutex
	data   SpanData
	ended  bool
	labels map[string]string
}

// Start begins a span. Parent resolution, in order: a local span carried by
// ctx (from an enclosing Start) links the new span as its child and shares
// its trace; a remote parent (ContextWithRemoteParent, extracted from the
// wire) links it under the caller's span in the caller's trace; a bare trace
// scope (ContextWithNewTrace) groups it as a root of that trace; otherwise
// the span roots a fresh trace. The returned context carries the new span
// for deeper nesting. A nil tracer returns (ctx, nil) without touching ctx,
// so disabled tracing allocates nothing.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{t: t}
	s.data.ID = newSpanID()
	s.data.Name = name
	s.data.Node = t.Node()
	s.data.Start = time.Now()
	if parent := SpanFromContext(ctx); parent != nil {
		s.data.Parent = parent.data.ID
		s.data.Trace = parent.data.Trace
	} else if rp, ok := RemoteParentFromContext(ctx); ok {
		s.data.Parent = rp.Span
		s.data.Trace = rp.Trace
	} else if tid, ok := traceScopeFromContext(ctx); ok {
		s.data.Trace = tid
	} else {
		s.data.Trace = NewTraceID()
	}
	return ContextWithSpan(ctx, s), s
}

// Context returns the span's identity for wire injection (false on a nil
// span).
func (s *Span) Context() (SpanContext, bool) {
	if s == nil {
		return SpanContext{}, false
	}
	return SpanContext{Trace: s.data.Trace, Span: s.data.ID}, true
}

// SetLabel attaches a key/value pair to the span.
func (s *Span) SetLabel(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string, 4)
	}
	s.labels[k] = v
	s.mu.Unlock()
}

// SetLabelInt attaches an integer label.
func (s *Span) SetLabelInt(k string, v int64) {
	if s == nil {
		return
	}
	s.SetLabel(k, strconv.FormatInt(v, 10))
}

// End completes the span and commits it to the tracer's ring buffer.
// Ending twice is harmless (the second call is ignored).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurationNs = time.Since(s.data.Start).Nanoseconds()
	s.data.Labels = s.labels
	data := s.data
	s.mu.Unlock()
	s.t.record(data)
}

func (t *Tracer) record(d SpanData) {
	t.mu.Lock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, d)
	} else {
		t.buf[t.next%t.cap] = d
		t.dropped++
	}
	t.next++
	t.mu.Unlock()
}

// SpanContext is the cross-process identity of a span: enough to parent a
// remote child under it.
type SpanContext struct {
	Trace TraceID
	Span  uint64
}

// ctxKey carries the active span through a context chain.
type ctxKey struct{}

// remoteKey carries a remote parent extracted from an inbound request.
type remoteKey struct{}

// scopeKey carries a trace ID that groups sibling root spans.
type scopeKey struct{}

// queryKey carries the query/tenant identifier of the operation in flight.
type queryKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextWithRemoteParent returns ctx carrying the caller's span identity as
// extracted from an inbound wire request: the next Start links its span under
// the remote caller.
func ContextWithRemoteParent(ctx context.Context, sc SpanContext) context.Context {
	if sc.Trace.IsZero() || sc.Span == 0 {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// RemoteParentFromContext returns the remote parent installed by
// ContextWithRemoteParent, if any.
func RemoteParentFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteKey{}).(SpanContext)
	return sc, ok
}

// ContextWithNewTrace mints a fresh trace ID and scopes ctx to it: root spans
// started beneath share the trace without gaining a parent link, so one
// logical operation made of sequential root phases (a selection) reads as a
// single trace. Child spans still inherit from their parent span as usual.
func ContextWithNewTrace(ctx context.Context) (context.Context, TraceID) {
	tid := NewTraceID()
	return context.WithValue(ctx, scopeKey{}, tid), tid
}

func traceScopeFromContext(ctx context.Context) (TraceID, bool) {
	tid, ok := ctx.Value(scopeKey{}).(TraceID)
	return tid, ok
}

// SpanContextOf resolves the identity to inject into an outbound request: the
// active local span when there is one, else a remote parent being forwarded
// verbatim (an intermediary without its own tracer still propagates the
// caller's trace downstream).
func SpanContextOf(ctx context.Context) (SpanContext, bool) {
	if s := SpanFromContext(ctx); s != nil {
		return s.Context()
	}
	return RemoteParentFromContext(ctx)
}

// ContextWithQueryID returns ctx carrying the query/tenant identifier.
func ContextWithQueryID(ctx context.Context, qid string) context.Context {
	if qid == "" {
		return ctx
	}
	return context.WithValue(ctx, queryKey{}, qid)
}

// QueryIDFromContext returns the query identifier in flight, or "".
func QueryIDFromContext(ctx context.Context) string {
	qid, _ := ctx.Value(queryKey{}).(string)
	return qid
}

// NewQueryID returns a fresh random query identifier with the given prefix,
// e.g. "q-3fa97c12".
func NewQueryID(prefix string) string {
	return fmt.Sprintf("%s-%08x", prefix, uint32(rand.Uint64()))
}

// PhaseSummary aggregates the root spans (those without a parent) sharing a
// name: the protocol phases. Because root spans do not overlap within one
// driver goroutine, their total durations sum to (at most) the run's wall
// clock.
type PhaseSummary struct {
	Name      string  `json:"name"`
	Count     int     `json:"count"`
	TotalNs   int64   `json:"totalNs"`
	TotalSecs float64 `json:"totalSecs"`
}

// TraceReport is the JSON dump of the tracer's ring buffer. Forest, Peers and
// PeerErrors are filled only by the HTTP layer when it merges remote reports.
type TraceReport struct {
	Capacity int            `json:"capacity"`
	Dropped  uint64         `json:"dropped"` // spans evicted from the ring
	Phases   []PhaseSummary `json:"phases"`  // root spans aggregated by name
	Spans    []SpanData     `json:"spans"`   // all retained spans, by start time
	// Forest groups the spans (local plus any merged peers') into per-trace
	// trees; see AssembleForest.
	Forest []TraceTree `json:"forest,omitempty"`
	// Peers lists the remote /v1/trace endpoints merged into this report, and
	// PeerErrors any that could not be scraped.
	Peers      []string `json:"peers,omitempty"`
	PeerErrors []string `json:"peerErrors,omitempty"`
}

// Report snapshots the retained spans sorted by start time, with a per-name
// summary of the root spans. A nil tracer reports an empty trace.
func (t *Tracer) Report() TraceReport {
	if t == nil {
		return TraceReport{}
	}
	t.mu.Lock()
	spans := append([]SpanData(nil), t.buf...)
	rep := TraceReport{Capacity: t.cap, Dropped: t.dropped}
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
	rep.Spans = spans
	byName := map[string]*PhaseSummary{}
	var names []string
	for _, s := range spans {
		if s.Parent != 0 {
			continue
		}
		p := byName[s.Name]
		if p == nil {
			p = &PhaseSummary{Name: s.Name}
			byName[s.Name] = p
			names = append(names, s.Name)
		}
		p.Count++
		p.TotalNs += s.DurationNs
	}
	for _, n := range names {
		p := byName[n]
		p.TotalSecs = float64(p.TotalNs) / 1e9
		rep.Phases = append(rep.Phases, *p)
	}
	return rep
}

// SummarizeSpans aggregates every span — children included — by name, in
// first-appearance order. Where Report().Phases covers only root spans,
// this is the per-operation breakdown (vfl.query, agg.fagin, rpc, ...)
// needed when work runs under parallelism and nothing but the phase roots
// would otherwise be summarized.
func SummarizeSpans(spans []SpanData) []PhaseSummary {
	byName := map[string]*PhaseSummary{}
	var names []string
	for _, s := range spans {
		p := byName[s.Name]
		if p == nil {
			p = &PhaseSummary{Name: s.Name}
			byName[s.Name] = p
			names = append(names, s.Name)
		}
		p.Count++
		p.TotalNs += s.DurationNs
	}
	out := make([]PhaseSummary, 0, len(names))
	for _, n := range names {
		p := byName[n]
		p.TotalSecs = float64(p.TotalNs) / 1e9
		out = append(out, *p)
	}
	return out
}

// TraceTree is one trace's spans assembled across processes.
type TraceTree struct {
	Trace TraceID `json:"trace"`
	// Nodes lists the distinct process names contributing spans, sorted.
	Nodes []string `json:"nodes"`
	// Roots counts spans with no parent link (the trace's phase roots).
	Roots int `json:"roots"`
	// Orphans counts spans whose parent span is not in the set — evicted
	// from a ring, or owned by a process that was not scraped.
	Orphans int        `json:"orphans"`
	Spans   []SpanData `json:"spans"`
}

// AssembleForest groups spans by trace ID into per-trace trees, the
// cross-node view /v1/trace serves: spans from different processes that
// carried the same trace context merge into one tree, remote children sitting
// under their caller's span ID. Spans without a trace ID (from a pre-upgrade
// peer) are dropped. Trees are ordered by their earliest span.
func AssembleForest(spans []SpanData) []TraceTree {
	byTrace := map[TraceID][]SpanData{}
	for _, s := range spans {
		if s.Trace.IsZero() {
			continue
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	forest := make([]TraceTree, 0, len(byTrace))
	for tid, ss := range byTrace {
		sort.Slice(ss, func(i, j int) bool {
			if !ss[i].Start.Equal(ss[j].Start) {
				return ss[i].Start.Before(ss[j].Start)
			}
			return ss[i].ID < ss[j].ID
		})
		tree := TraceTree{Trace: tid, Spans: ss}
		ids := make(map[uint64]bool, len(ss))
		nodes := map[string]bool{}
		for _, s := range ss {
			ids[s.ID] = true
			if s.Node != "" {
				nodes[s.Node] = true
			}
		}
		for _, s := range ss {
			switch {
			case s.Parent == 0:
				tree.Roots++
			case !ids[s.Parent]:
				tree.Orphans++
			}
		}
		for n := range nodes {
			tree.Nodes = append(tree.Nodes, n)
		}
		sort.Strings(tree.Nodes)
		forest = append(forest, tree)
	}
	sort.Slice(forest, func(i, j int) bool {
		a, b := forest[i].Spans[0], forest[j].Spans[0]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		return forest[i].Trace.String() < forest[j].Trace.String()
	})
	return forest
}

// Reset discards all retained spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.dropped = 0
	t.mu.Unlock()
}

// Len reports the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}
