package obs

import (
	"context"
	"sync"
	"testing"
)

func TestTraceIDText(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned zero")
	}
	txt, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if string(txt) != id.String() || len(txt) != 32 {
		t.Fatalf("text form %q vs String %q", txt, id.String())
	}
	var back TraceID
	if err := back.UnmarshalText(txt); err != nil || back != id {
		t.Fatalf("round trip: %v, %v", back, err)
	}
	if err := back.UnmarshalText([]byte("xyz")); err == nil {
		t.Fatal("bad hex accepted")
	}
}

func TestSpanParentResolution(t *testing.T) {
	tr := NewTracer(16)
	tr.SetNode("n1")
	ctx := context.Background()

	// Remote parent: the span joins the caller's trace under the caller's
	// span ID.
	remote := SpanContext{Trace: NewTraceID(), Span: 42}
	rctx := ContextWithRemoteParent(ctx, remote)
	_, sp := tr.Start(rctx, "served")
	sp.End()

	// Trace scope: sequential roots share the trace without parent links.
	sctx, tid := ContextWithNewTrace(ctx)
	_, r1 := tr.Start(sctx, "phase1")
	r1.End()
	_, r2 := tr.Start(sctx, "phase2")
	r2.End()

	rep := tr.Report()
	byName := map[string]SpanData{}
	for _, s := range rep.Spans {
		byName[s.Name] = s
	}
	if s := byName["served"]; s.Trace != remote.Trace || s.Parent != remote.Span {
		t.Fatalf("remote-parented span = %+v, want trace %s parent 42", s, remote.Trace)
	}
	if s := byName["phase1"]; s.Trace != tid || s.Parent != 0 {
		t.Fatalf("scoped root = %+v, want trace %s no parent", s, tid)
	}
	if byName["phase2"].Trace != tid {
		t.Fatal("sibling roots must share the scoped trace")
	}
	if byName["served"].Node != "n1" {
		t.Fatalf("span node = %q, want n1", byName["served"].Node)
	}
	// Report().Phases counts parentless spans only: the remote-parented span
	// must stay out (its parent lives on another node).
	for _, p := range rep.Phases {
		if p.Name == "served" {
			t.Fatal("remote-parented span leaked into root phases")
		}
	}
}

func TestSpanContextOf(t *testing.T) {
	tr := NewTracer(4)
	ctx := context.Background()
	if _, ok := SpanContextOf(ctx); ok {
		t.Fatal("bare context has no span context")
	}
	remote := SpanContext{Trace: NewTraceID(), Span: 7}
	rctx := ContextWithRemoteParent(ctx, remote)
	if sc, ok := SpanContextOf(rctx); !ok || sc != remote {
		t.Fatalf("forwarded remote parent = %+v, %v", sc, ok)
	}
	sctx, sp := tr.Start(rctx, "local")
	if sc, ok := SpanContextOf(sctx); !ok || sc.Span == remote.Span || sc.Trace != remote.Trace {
		t.Fatalf("local span context = %+v, %v", sc, ok)
	}
	sp.End()
}

func TestAssembleForest(t *testing.T) {
	tr1 := NewTracer(16) // "leader" process
	tr1.SetNode("leader")
	tr2 := NewTracer(16) // "party" process
	tr2.SetNode("party/0")

	sctx, tid := ContextWithNewTrace(context.Background())
	qctx, q := tr1.Start(sctx, "vfl.query")
	qc, _ := q.Context()
	// Simulate the wire: the party extracts the leader's span context and
	// parents its serve span under it.
	pctx := ContextWithRemoteParent(context.Background(), qc)
	_, serve := tr2.Start(pctx, "rpc.serve")
	serve.End()
	_, child := tr1.Start(qctx, "vfl.decrypt")
	child.End()
	q.End()
	// An unrelated trace on the party.
	_, other := tr2.Start(context.Background(), "other")
	other.End()

	all := append(tr1.Report().Spans, tr2.Report().Spans...)
	forest := AssembleForest(all)
	if len(forest) != 2 {
		t.Fatalf("forest has %d trees, want 2", len(forest))
	}
	var tree *TraceTree
	for i := range forest {
		if forest[i].Trace == tid {
			tree = &forest[i]
		}
	}
	if tree == nil {
		t.Fatalf("trace %s missing from forest", tid)
	}
	if len(tree.Spans) != 3 || tree.Roots != 1 || tree.Orphans != 0 {
		t.Fatalf("tree = %d spans, %d roots, %d orphans; want 3/1/0", len(tree.Spans), tree.Roots, tree.Orphans)
	}
	if len(tree.Nodes) != 2 || tree.Nodes[0] != "leader" || tree.Nodes[1] != "party/0" {
		t.Fatalf("tree nodes = %v", tree.Nodes)
	}
	for _, s := range tree.Spans {
		if s.Name == "rpc.serve" && s.Parent != qc.Span {
			t.Fatalf("serve span parent = %d, want %d", s.Parent, qc.Span)
		}
	}
}

// TestTracerEvictionConcurrentWriters overflows a small ring from many
// goroutines (run with -race): every write must land, the ring must stay
// bounded, and len+dropped must equal the write count.
func TestTracerEvictionConcurrentWriters(t *testing.T) {
	const capacity, workers, per = 32, 8, 250
	tr := NewTracer(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ctx, sp := tr.Start(context.Background(), "op")
				_, inner := tr.Start(ctx, "inner")
				inner.End()
				sp.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tr.Report()
		}
	}()
	wg.Wait()
	<-done
	rep := tr.Report()
	total := workers * per * 2
	if len(rep.Spans) != capacity {
		t.Fatalf("ring holds %d spans, want %d", len(rep.Spans), capacity)
	}
	if got := int(rep.Dropped) + len(rep.Spans); got != total {
		t.Fatalf("dropped+retained = %d, want %d", got, total)
	}
	for _, s := range rep.Spans {
		if s.ID == 0 || s.Trace.IsZero() {
			t.Fatalf("retained span missing identity: %+v", s)
		}
		if s.ID >= 1<<53 {
			t.Fatalf("span ID %d exceeds the float64-safe range", s.ID)
		}
	}
}
