package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache bounds the cost of runtime.ReadMemStats under frequent
// scrapes: all pull gauges share one snapshot refreshed at most every 250ms.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	ms   runtime.MemStats
	init bool
}

func (c *memStatsCache) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.init || time.Since(c.at) > 250*time.Millisecond {
		runtime.ReadMemStats(&c.ms)
		c.at = time.Now()
		c.init = true
	}
	return c.ms
}

// RegisterRuntimeMetrics installs Go runtime pull gauges on reg — scheduler
// load, heap pressure and GC pause totals — so a soak can watch a process
// degrade without attaching a profiler:
//
//	vfps_go_goroutines             live goroutines
//	vfps_go_heap_alloc_bytes       bytes of allocated heap objects
//	vfps_go_heap_objects           live heap objects
//	vfps_go_sys_bytes              total bytes obtained from the OS
//	vfps_go_gc_pause_seconds_total cumulative stop-the-world pause time
//	vfps_go_gc_cycles_total        completed GC cycles
//
// A nil registry is a no-op; registering twice replaces the pull functions.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	cache := &memStatsCache{}
	reg.Gauge("vfps_go_goroutines", "Number of live goroutines.").
		Func(func() float64 { return float64(runtime.NumGoroutine()) })
	reg.Gauge("vfps_go_heap_alloc_bytes", "Bytes of allocated heap objects.").
		Func(func() float64 { return float64(cache.read().HeapAlloc) })
	reg.Gauge("vfps_go_heap_objects", "Number of live heap objects.").
		Func(func() float64 { return float64(cache.read().HeapObjects) })
	reg.Gauge("vfps_go_sys_bytes", "Total bytes of memory obtained from the OS.").
		Func(func() float64 { return float64(cache.read().Sys) })
	reg.Gauge("vfps_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time in seconds.").
		Func(func() float64 { return float64(cache.read().PauseTotalNs) / 1e9 })
	reg.Gauge("vfps_go_gc_cycles_total", "Completed GC cycles.").
		Func(func() float64 { return float64(cache.read().NumGC) })
}
