package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestQueryLogGoldenJSON pins the exact JSON line one event produces: the
// record is a pure function of the event (the slog time attribute is
// dropped), so downstream parsers (scripts/soak.sh) can rely on the shape.
func TestQueryLogGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	q := NewQueryLog(&buf, 4)
	q.Record(QueryEvent{
		Time:    time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		Kind:    "query",
		ID:      "q-00000001",
		Tenant:  "c1",
		Trace:   "000102030405060708090a0b0c0d0e0f",
		Seconds: 0.25,
		Phases: []PhaseSecs{
			{Name: "collect", Seconds: 0.2},
			{Name: "sums", Seconds: 0.05},
		},
		Attrs: map[string]any{"k": 10, "variant": "fagin"},
	})
	want := `{"level":"INFO","msg":"query","event":{"time":"2026-01-02T03:04:05Z","kind":"query","id":"q-00000001","tenant":"c1","trace":"000102030405060708090a0b0c0d0e0f","seconds":0.25,"phases":[{"name":"collect","seconds":0.2},{"name":"sums","seconds":0.05}],"attrs":{"k":10,"variant":"fagin"}}}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("query-log record mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestQueryLogSlowRing(t *testing.T) {
	q := NewQueryLog(nil, 3)
	for i := 1; i <= 10; i++ {
		q.Record(QueryEvent{Kind: "query", ID: fmt.Sprintf("q-%02d", i), Seconds: float64(i)})
	}
	if q.Cap() != 3 || q.Len() != 3 {
		t.Fatalf("ring cap=%d len=%d, want 3/3", q.Cap(), q.Len())
	}
	slow := q.Slowest()
	if len(slow) != 3 || slow[0].Seconds != 10 || slow[1].Seconds != 9 || slow[2].Seconds != 8 {
		t.Fatalf("slowest = %+v, want 10,9,8", slow)
	}
	// A faster event must not displace a retained slow one.
	q.Record(QueryEvent{Kind: "query", ID: "q-fast", Seconds: 0.001})
	if got := q.Slowest(); got[2].Seconds != 8 {
		t.Fatalf("fast event displaced a slow one: %+v", got)
	}
}

func TestQueryLogDefaultsAndNil(t *testing.T) {
	if got := NewQueryLog(nil, 0).Cap(); got != DefaultSlowRing {
		t.Fatalf("default slow ring = %d, want %d", got, DefaultSlowRing)
	}
	var q *QueryLog
	q.Record(QueryEvent{Kind: "query"}) // must not panic
	if q.Slowest() != nil || q.Len() != 0 || q.Cap() != 0 {
		t.Fatal("nil QueryLog must report empty")
	}
}

// TestQueryLogConcurrentWriters hammers Record and Slowest from many
// goroutines (run with -race); the ring must stay bounded and retain the
// globally slowest events.
func TestQueryLogConcurrentWriters(t *testing.T) {
	var buf safeBuffer
	q := NewQueryLog(&buf, 8)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Record(QueryEvent{
					Kind:    "query",
					ID:      fmt.Sprintf("q-%d-%d", w, i),
					Seconds: float64(w*per + i),
				})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = q.Slowest()
		}
	}()
	wg.Wait()
	<-done
	slow := q.Slowest()
	if len(slow) != 8 {
		t.Fatalf("retained %d events, want 8", len(slow))
	}
	// The slowest seconds values are the 8 largest written: 1592..1599.
	for i, ev := range slow {
		if want := float64(workers*per - 1 - i); ev.Seconds != want {
			t.Fatalf("slow[%d].Seconds = %v, want %v", i, ev.Seconds, want)
		}
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != workers*per {
		t.Fatalf("log wrote %d lines, want %d", lines, workers*per)
	}
}

// safeBuffer is a mutex-guarded bytes.Buffer (slog handlers serialize writes,
// but the test reads it back after the fact).
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}
