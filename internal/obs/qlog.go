package obs

import (
	"context"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// DefaultSlowRing is the flight-recorder capacity when none is configured:
// the K slowest queries retained for /v1/slow.
const DefaultSlowRing = 32

// PhaseSecs is one named phase latency inside a query event.
type PhaseSecs struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// QueryEvent is one structured accounting record: a single KNN query
// (kind "query") or a whole selection round (kind "selection"). Events are
// written as JSON log lines and fed to the slow-query flight recorder.
type QueryEvent struct {
	Time time.Time `json:"time"`
	// Kind is "query" or "selection".
	Kind string `json:"kind"`
	// ID is the query/selection identifier; for queries it is the same ID
	// propagated in the wire trace-context field.
	ID string `json:"id,omitempty"`
	// Tenant is the consortium instance the work ran under.
	Tenant string `json:"tenant,omitempty"`
	// Trace is the hex trace ID linking the event to its span tree.
	Trace string `json:"trace,omitempty"`
	// Name is the protocol variant or method.
	Name    string  `json:"name,omitempty"`
	Seconds float64 `json:"seconds"`
	// Phases holds the per-phase latency decomposition.
	Phases []PhaseSecs `json:"phases,omitempty"`
	// Attrs carries counts — HE ops, wire/framing bytes, candidates — as
	// flat key/values (JSON sorts map keys, so records are stable).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// QueryLog is the per-query accounting sink: an optional structured JSON
// event log (stdlib log/slog, one line per event) plus a bounded
// flight-recorder ring of the K slowest events, served at /v1/slow. A nil
// *QueryLog no-ops.
type QueryLog struct {
	logger *slog.Logger

	mu   sync.Mutex
	k    int
	slow []QueryEvent
}

// NewQueryLog builds a query log writing JSON lines to w (nil w disables the
// log but keeps the slow ring) retaining the slowK slowest events
// (DefaultSlowRing when <= 0). The slog time attribute is dropped — each
// event carries its own timestamp — so a record is a pure function of the
// event.
func NewQueryLog(w io.Writer, slowK int) *QueryLog {
	if slowK <= 0 {
		slowK = DefaultSlowRing
	}
	q := &QueryLog{k: slowK}
	if w != nil {
		h := slog.NewJSONHandler(w, &slog.HandlerOptions{
			ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
				if len(groups) == 0 && a.Key == slog.TimeKey {
					return slog.Attr{}
				}
				return a
			},
		})
		q.logger = slog.New(h)
	}
	return q
}

// Record emits one event: a JSON log line (when a writer is configured) and a
// slow-ring update. A zero event time is stamped with the current time.
func (q *QueryLog) Record(ev QueryEvent) {
	if q == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if q.logger != nil {
		q.logger.LogAttrs(context.Background(), slog.LevelInfo, ev.Kind, slog.Any("event", ev))
	}
	q.mu.Lock()
	if len(q.slow) < q.k {
		q.slow = append(q.slow, ev)
	} else {
		mi := 0
		for i := range q.slow {
			if q.slow[i].Seconds < q.slow[mi].Seconds {
				mi = i
			}
		}
		if ev.Seconds > q.slow[mi].Seconds {
			q.slow[mi] = ev
		}
	}
	q.mu.Unlock()
}

// Slowest returns the retained events, slowest first (ties broken by time
// then ID for a deterministic dump). Nil-safe.
func (q *QueryLog) Slowest() []QueryEvent {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	out := append([]QueryEvent(nil), q.slow...)
	q.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len reports the number of retained slow events.
func (q *QueryLog) Len() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.slow)
}

// Cap reports the flight-recorder capacity.
func (q *QueryLog) Cap() int {
	if q == nil {
		return 0
	}
	return q.k
}
