package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every instrument reachable from a nil registry/tracer/observer must be
	// a no-op: this is the "disabled observability costs one nil check"
	// contract the hot paths rely on.
	var r *Registry
	r.Counter("c_total", "c", "l").With("x").Inc()
	r.Gauge("g", "g").With().Set(3)
	r.Gauge("g2", "g", "l").Func(func() float64 { return 1 }, "x")
	r.Histogram("h_seconds", "h", nil).With().Observe(0.1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v, want nil", got)
	}

	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x")
	sp.SetLabel("k", "v")
	sp.SetLabelInt("n", 1)
	sp.End()
	if sp != nil {
		t.Fatal("nil tracer must return a nil span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer must not attach a span to ctx")
	}
	if rep := tr.Report(); rep.Capacity != 0 || len(rep.Spans) != 0 {
		t.Fatalf("nil tracer report = %+v", rep)
	}

	var o *Observer
	if o.Registry() != nil || o.Tracer() != nil {
		t.Fatal("nil observer accessors must return nil")
	}
	if o.Or(nil) != nil {
		t.Fatal("nil.Or(nil) must be nil")
	}
	enabled := NewObserver(4)
	if o.Or(enabled) != enabled {
		t.Fatal("nil.Or(x) must be x")
	}
	if enabled.Or(nil) != enabled {
		t.Fatal("x.Or(nil) must be x")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("calls_total", "calls", "peer")
	c.With("a").Add(3)
	c.With("a").Inc()
	c.With("b").Inc()
	c.With("a").Add(-5) // ignored: counters are monotone
	if got := c.With("a").Value(); got != 4 {
		t.Fatalf("counter a = %d, want 4", got)
	}
	if got := c.With("b").Value(); got != 1 {
		t.Fatalf("counter b = %d, want 1", got)
	}

	g := r.Gauge("depth", "depth")
	g.With().Set(7)
	g.With().Add(-2.5)
	if got := g.With().Value(); got != 4.5 {
		t.Fatalf("gauge = %g, want 4.5", got)
	}

	gv := r.Gauge("pull", "pull", "i")
	gv.Func(func() float64 { return 42 }, "x")
	if got := gv.With("x").Value(); got != 42 {
		t.Fatalf("pull gauge = %g, want 42", got)
	}
}

func TestHistogramBinning(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.With().Observe(v)
	}
	d := h.With().Snapshot()
	// 0.05 and 0.1 land in the <=0.1 bucket (SearchFloat64s: first bound >= v),
	// 0.5 in <=1, 2 in <=10, 100 overflows to +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if d.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, d.Counts[i], w, d.Counts)
		}
	}
	if d.Count != 5 {
		t.Fatalf("count = %d, want 5", d.Count)
	}
	if math.Abs(d.Sum-102.65) > 1e-9 {
		t.Fatalf("sum = %g, want 102.65", d.Sum)
	}
}

func TestHistogramMerge(t *testing.T) {
	r := New()
	h := r.Histogram("m_seconds", "m", []float64{1, 2}, "l")
	h.With("a").Observe(0.5)
	h.With("a").Observe(1.5)
	h.With("b").Observe(5)
	all, err := h.MergeAll()
	if err != nil {
		t.Fatalf("MergeAll: %v", err)
	}
	if all.Count != 3 || all.Counts[0] != 1 || all.Counts[1] != 1 || all.Counts[2] != 1 {
		t.Fatalf("merged = %+v", all)
	}

	// Merging into an empty snapshot keeps the populated side.
	got, err := HistogramData{}.Merge(all)
	if err != nil || got.Count != 3 {
		t.Fatalf("empty.Merge = %+v, %v", got, err)
	}
	// Mismatched layouts must refuse rather than misbin.
	other := HistogramData{Buckets: []float64{1, 3}, Counts: []int64{0, 0, 1}, Count: 1}
	if _, err := all.Merge(other); err == nil {
		t.Fatal("merge with mismatched bounds must error")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	// Hammer one family of each kind from many goroutines while a reader
	// scrapes; run under -race this is the concurrency contract test.
	r := New()
	c := r.Counter("cc_total", "cc", "w")
	g := r.Gauge("cg", "cg")
	h := r.Histogram("ch_seconds", "ch", LatencyBuckets, "w")

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				c.With(lbl).Inc()
				g.With().Add(1)
				g.With().Add(-1)
				h.With(lbl).Observe(float64(i) * 1e-4)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	var total int64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		total += c.With(lbl).Value()
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
	if got := g.With().Value(); got != 0 {
		t.Fatalf("gauge = %g, want 0", got)
	}
	all, err := h.MergeAll()
	if err != nil || all.Count != workers*iters {
		t.Fatalf("histogram count = %d (%v), want %d", all.Count, err, workers*iters)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	c := r.Counter("vfps_test_calls_total", "Calls made.", "peer", "method")
	c.With("party/0", "Distances").Add(3)
	c.With("leader", "Decrypt").Inc()
	r.Gauge("vfps_test_depth", "Pool depth.").With().Set(2.5)
	h := r.Histogram("vfps_test_seconds", "Latency.", []float64{0.1, 1}, "op")
	h.With("enc").Observe(0.05)
	h.With("enc").Observe(0.5)
	h.With("enc").Observe(7)
	// Declared but empty family still emits HELP/TYPE so smoke tests can
	// assert the surface before traffic.
	r.Counter("vfps_test_errors_total", "Errors.", "peer")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP vfps_test_calls_total Calls made.
# TYPE vfps_test_calls_total counter
vfps_test_calls_total{peer="party/0",method="Distances"} 3
vfps_test_calls_total{peer="leader",method="Decrypt"} 1
# HELP vfps_test_depth Pool depth.
# TYPE vfps_test_depth gauge
vfps_test_depth 2.5
# HELP vfps_test_errors_total Errors.
# TYPE vfps_test_errors_total counter
# HELP vfps_test_seconds Latency.
# TYPE vfps_test_seconds histogram
vfps_test_seconds_bucket{op="enc",le="0.1"} 1
vfps_test_seconds_bucket{op="enc",le="1"} 2
vfps_test_seconds_bucket{op="enc",le="+Inf"} 3
vfps_test_seconds_sum{op="enc"} 7.55
vfps_test_seconds_count{op="enc"} 3
`
	if b.String() != want {
		t.Fatalf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestRedeclareMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("dup", "d", "l")
	for name, fn := range map[string]func(){
		"kind":  func() { r.Gauge("dup", "d", "l") },
		"arity": func() { r.Counter("dup", "d", "l", "extra") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s mismatch must panic", name)
				}
			}()
			fn()
		}()
	}
	// Identical redeclaration is idempotent and shares state.
	r.Counter("dup", "d", "l").With("x").Inc()
	if got := r.Counter("dup", "d", "l").With("x").Value(); got != 1 {
		t.Fatalf("redeclared counter = %d, want 1", got)
	}
}

func TestTracerNestingAndPhases(t *testing.T) {
	tr := NewTracer(16)
	ctx := context.Background()

	rctx, root := tr.Start(ctx, "phase1")
	cctx, child := tr.Start(rctx, "child")
	if SpanFromContext(cctx) != child {
		t.Fatal("ctx must carry the innermost span")
	}
	child.SetLabelInt("n", 7)
	time.Sleep(time.Millisecond)
	child.End()
	child.End() // idempotent
	root.End()
	_, root2 := tr.Start(ctx, "phase2")
	root2.End()

	rep := tr.Report()
	if len(rep.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(rep.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range rep.Spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != byName["phase1"].ID {
		t.Fatalf("child parent = %d, want %d", byName["child"].Parent, byName["phase1"].ID)
	}
	if byName["child"].Labels["n"] != "7" {
		t.Fatalf("child labels = %v", byName["child"].Labels)
	}
	if byName["child"].DurationNs <= 0 {
		t.Fatal("ended span must have positive duration")
	}
	// Phases aggregate root spans only: the child must not appear.
	if len(rep.Phases) != 2 || rep.Phases[0].Name != "phase1" || rep.Phases[1].Name != "phase2" {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	if rep.Phases[0].TotalNs < byName["child"].DurationNs {
		t.Fatal("parent phase must cover its child's duration")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(context.Background(), "s")
		sp.End()
	}
	rep := tr.Report()
	if len(rep.Spans) != 4 || rep.Dropped != 6 || rep.Capacity != 4 {
		t.Fatalf("ring state: spans=%d dropped=%d cap=%d", len(rep.Spans), rep.Dropped, rep.Capacity)
	}
	tr.Reset()
	if tr.Len() != 0 || len(tr.Report().Spans) != 0 {
		t.Fatal("reset must discard retained spans")
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, sp := tr.Start(context.Background(), "op")
				_, inner := tr.Start(ctx, "inner")
				inner.End()
				sp.End()
			}
		}()
	}
	go func() {
		for i := 0; i < 20; i++ {
			_ = tr.Report()
		}
	}()
	wg.Wait()
	if tr.Len() != 256 {
		t.Fatalf("ring should be full: %d", tr.Len())
	}
}
