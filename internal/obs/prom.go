package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (version 0.0.4). Families are emitted in name order and every
// declared family appears — with its HELP and TYPE lines even when it has no
// series yet — so scrapers and smoke tests can assert the full metric
// surface immediately after startup. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// snapshotSeries copies the family's series references in insertion order.
func (f *family) snapshotSeries() []*series {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		out = append(out, f.series[key])
	}
	return out
}

func (f *family) writePrometheus(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range f.snapshotSeries() {
		switch f.kind {
		case KindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labelNames, s.labelVals, ""), s.n.Load())
		case KindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labelNames, s.labelVals, ""), formatFloat(s.value()))
		case KindHistogram:
			d := s.h.snapshot()
			cum := int64(0)
			for i, bound := range d.Buckets {
				cum += d.Counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, s.labelVals, formatFloat(bound)), cum)
			}
			cum += d.Counts[len(d.Counts)-1]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labelNames, s.labelVals, "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labelNames, s.labelVals, ""), formatFloat(d.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labelNames, s.labelVals, ""), d.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound label. No labels at all renders as the empty string.
func labelString(names, vals []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, integers without exponent where possible.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- JSON snapshot ----

// SeriesSnapshot is one labelled series in a registry snapshot.
type SeriesSnapshot struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Value     float64           `json:"value"`
	Histogram *HistogramData    `json:"histogram,omitempty"`
}

// FamilySnapshot is one metric family in a registry snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help"`
	Kind   Kind             `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures every family and series as plain values, in name order.
// A nil registry snapshots to nil.
func (r *Registry) Snapshot() []FamilySnapshot {
	if r == nil {
		return nil
	}
	fams := r.sortedFamilies()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, Series: []SeriesSnapshot{}}
		for _, s := range f.snapshotSeries() {
			ss := SeriesSnapshot{}
			if len(f.labelNames) > 0 {
				ss.Labels = make(map[string]string, len(f.labelNames))
				for i, n := range f.labelNames {
					ss.Labels[n] = s.labelVals[i]
				}
			}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.n.Load())
			case KindGauge:
				ss.Value = s.value()
			case KindHistogram:
				d := s.h.snapshot()
				ss.Histogram = &d
				ss.Value = float64(d.Count)
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// MarshalJSON exports the snapshot, so a registry can be dropped straight
// into an expvar.Func or a JSON response body.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
