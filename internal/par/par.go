// Package par provides the shared parallel-execution primitives of the VFL
// runtime: the process-wide parallelism degree (the VFPS_PARALLELISM knob)
// and a chunked, context-aware parallel for-loop used by the HE vector
// kernels and the protocol fan-out paths.
//
// Degree 1 always restores fully serial execution, which determinism tests
// rely on; any higher degree must not change results, only wall-clock time.
package par

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable that pins the default parallelism.
const EnvVar = "VFPS_PARALLELISM"

// chunk is the number of loop iterations handed to a worker at a time, and
// the interval at which the serial path polls ctx. Items on the HE hot path
// cost ~ms each, so a small chunk keeps the load balanced without measurable
// dispatch overhead.
const chunk = 8

// Degree returns the default parallelism: VFPS_PARALLELISM when set to a
// positive integer, otherwise runtime.GOMAXPROCS(0).
func Degree() int {
	if s := os.Getenv(EnvVar); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Normalize resolves a parallelism setting: values <= 0 mean "use Degree()".
func Normalize(n int) int {
	if n <= 0 {
		return Degree()
	}
	return n
}

// For runs fn(i) for every i in [0, n) using up to workers goroutines
// (workers <= 0 means Degree(); workers == 1 runs serially on the calling
// goroutine). Iterations are dispatched in fixed-size chunks and ctx is
// polled between chunks, so a cancelled context stops the loop within one
// chunk rather than after all n iterations.
//
// All scheduled iterations run to completion even if some fail; the error
// for the lowest index is returned, matching the error a serial loop would
// surface. If ctx is cancelled before every iteration ran, the context error
// is returned unless an fn error at a lower index precedes it.
func For(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Normalize(workers)
	if workers > (n+chunk-1)/chunk {
		workers = (n + chunk - 1) / chunk
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if i%chunk == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					return
				}
				start := int(next.Add(chunk)) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if err := fn(i); err != nil {
						record(i, err)
						break // abandon this chunk, keep other indices running
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
