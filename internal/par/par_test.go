package par

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
)

func TestDegreeEnvOverride(t *testing.T) {
	old, had := os.LookupEnv(EnvVar)
	defer func() {
		if had {
			os.Setenv(EnvVar, old)
		} else {
			os.Unsetenv(EnvVar)
		}
	}()
	os.Setenv(EnvVar, "3")
	if got := Degree(); got != 3 {
		t.Fatalf("Degree with %s=3 = %d", EnvVar, got)
	}
	os.Setenv(EnvVar, "0") // ignored: must fall back to GOMAXPROCS
	if got := Degree(); got < 1 {
		t.Fatalf("Degree with %s=0 = %d", EnvVar, got)
	}
	os.Setenv(EnvVar, "banana")
	if got := Degree(); got < 1 {
		t.Fatalf("Degree with junk env = %d", got)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize(5); got != 5 {
		t.Fatalf("Normalize(5) = %d", got)
	}
	if got := Normalize(0); got != Degree() {
		t.Fatalf("Normalize(0) = %d, want Degree()=%d", got, Degree())
	}
	if got := Normalize(-2); got != Degree() {
		t.Fatalf("Normalize(-2) = %d, want Degree()=%d", got, Degree())
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 8, 9, 100} {
			visits := make([]atomic.Int32, n)
			err := For(context.Background(), n, workers, func(i int) error {
				visits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range visits {
				if c := visits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForReturnsLowestIndexedError(t *testing.T) {
	errAt := func(bad ...int) error {
		isBad := map[int]bool{}
		for _, b := range bad {
			isBad[b] = true
		}
		return For(context.Background(), 100, 8, func(i int) error {
			if isBad[i] {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
	}
	err := errAt(71, 13, 42)
	if err == nil || err.Error() != "fail@13" {
		t.Fatalf("got %v, want fail@13", err)
	}
	if err := errAt(); err != nil {
		t.Fatalf("no bad indices: %v", err)
	}
}

func TestForHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := For(ctx, 10_000, 4, func(i int) error {
		if ran.Add(1) == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Fatal("cancellation did not stop the loop early")
	}
}

func TestForSerialHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := For(ctx, 10_000, 1, func(i int) error {
		if ran.Add(1) == 50 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Fatal("serial loop ignored cancellation")
	}
}

func TestForEmptyIgnoresContextState(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := For(ctx, 0, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("For(n=0) on cancelled ctx = %v, want nil", err)
	}
}
