package costmodel

import "vfps/internal/obs"

// metricCostOps is the gauge family bridging Raw counts into the metrics
// registry. Each series carries the paper's symbol as a label value so
// dashboards can plot β/φe/φd/γ/δ/η side by side per role.
const metricCostOps = "vfps_cost_ops"

// opFields maps exported op names to Raw field accessors; the op label values
// double as the paper symbols documented on Raw.
var opFields = []struct {
	op  string
	get func(Raw) int64
}{
	{"distance_flops", func(r Raw) int64 { return r.DistanceFlops }}, // β
	{"encryptions", func(r Raw) int64 { return r.Encryptions }},      // φe
	{"decryptions", func(r Raw) int64 { return r.Decryptions }},      // φd
	{"cipher_adds", func(r Raw) int64 { return r.CipherAdds }},       // γ
	{"plain_adds", func(r Raw) int64 { return r.PlainAdds }},         // δ
	{"items_sent", func(r Raw) int64 { return r.ItemsSent }},         // η
	{"messages", func(r Raw) int64 { return r.Messages }},
	{"bytes_sent", func(r Raw) int64 { return r.BytesSent }},
	{"framing_bytes", func(r Raw) int64 { return r.FramingBytes }},
	{"cache_hits", func(r Raw) int64 { return r.CacheHits }},
	{"cache_misses", func(r Raw) int64 { return r.CacheMisses }},
}

// DeclareMetrics pre-declares the cost-model gauge family on reg so it shows
// up on /metrics before any protocol traffic. Safe on a nil registry.
func DeclareMetrics(reg *obs.Registry) {
	declareCost(reg)
}

func declareCost(reg *obs.Registry) *obs.GaugeVec {
	return reg.Gauge(metricCostOps,
		"Live protocol operation counts per role (paper cost symbols: distance_flops=β, encryptions=φe, decryptions=φd, cipher_adds=γ, plain_adds=δ, items_sent=η).",
		"instance", "role", "op")
}

// Register exposes the live counter as gauge series
// vfps_cost_ops{instance,role,op}. The gauges read the counter on scrape, so
// they track Add and Reset with no extra work on the protocol hot path.
// Registering the same (instance, role) again rebinds the series to c.
func (c *Counts) Register(reg *obs.Registry, instance, role string) {
	if c == nil || reg == nil {
		return
	}
	g := declareCost(reg)
	for _, f := range opFields {
		get := f.get
		g.Func(func() float64 { return float64(get(c.Snapshot())) }, instance, role, f.op)
	}
}
