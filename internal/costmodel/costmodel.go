// Package costmodel accounts the primitive operations the VFL protocol
// performs and projects them onto wall-clock time at paper scale.
//
// The paper's cost analysis (§IV-A) prices a selection run in terms of
// β (computing a partial distance), φe/φd (encrypting/decrypting one item),
// γ (adding two encrypted items), δ (adding two plaintext items) and
// η (transmitting one item). This package counts exactly those quantities
// during protocol runs; a Model maps counts to projected seconds so that the
// experiment harness can report paper-shaped running times even when the
// local run uses scaled-down data or the simulated Plain scheme.
package costmodel

import (
	"fmt"
	"strings"
	"sync"
)

// Counts accumulates primitive-operation counts. The zero value is ready to
// use; methods are safe for concurrent use.
type Counts struct {
	mu sync.Mutex
	c  Raw
}

// Raw is a plain-value snapshot of operation counts.
type Raw struct {
	// DistanceFlops counts feature-level multiply-adds spent computing
	// partial distances (β is charged per feature element).
	DistanceFlops int64
	// Encryptions (φe) and Decryptions (φd) count HE item operations.
	Encryptions int64
	Decryptions int64
	// CipherAdds (γ) counts homomorphic additions.
	CipherAdds int64
	// PlainAdds (δ) counts plaintext additions performed by the protocol
	// (ranking merges, neighbour sums).
	PlainAdds int64
	// ItemsSent (η) counts transmitted data items (ids, scalars or
	// ciphertexts) and Messages counts protocol round trips.
	ItemsSent int64
	Messages  int64
	// BytesSent tracks the payload share of transmitted traffic: the value
	// content a message fundamentally has to move — ciphertext and key
	// blobs, 8 bytes per float scalar — as actually encoded on the wire.
	BytesSent int64
	// FramingBytes tracks the wire overhead around that payload: codec
	// envelopes, field tags, length prefixes, pseudo-ID lists and (for gob)
	// type descriptors. BytesSent+FramingBytes is the full encoded volume;
	// earlier revisions lumped both into BytesSent.
	FramingBytes int64
	// CacheHits and CacheMisses count cross-round delta-cache lookups on the
	// receiving side of a ciphertext transfer: a hit is a block restored from
	// cache instead of the wire, a miss forces a full resend.
	CacheHits   int64
	CacheMisses int64
}

// WireBytes returns the full encoded traffic volume, payload plus framing —
// the quantity BytesSent alone used to approximate.
func (r Raw) WireBytes() int64 { return r.BytesSent + r.FramingBytes }

// Add atomically accumulates a snapshot into the counter.
func (c *Counts) Add(r Raw) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.c.DistanceFlops += r.DistanceFlops
	c.c.Encryptions += r.Encryptions
	c.c.Decryptions += r.Decryptions
	c.c.CipherAdds += r.CipherAdds
	c.c.PlainAdds += r.PlainAdds
	c.c.ItemsSent += r.ItemsSent
	c.c.Messages += r.Messages
	c.c.BytesSent += r.BytesSent
	c.c.FramingBytes += r.FramingBytes
	c.c.CacheHits += r.CacheHits
	c.c.CacheMisses += r.CacheMisses
}

// Snapshot returns the current totals.
func (c *Counts) Snapshot() Raw {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c
}

// Reset zeroes the counters.
func (c *Counts) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.c = Raw{}
}

// Plus returns the element-wise sum of two snapshots.
func (r Raw) Plus(o Raw) Raw {
	return Raw{
		DistanceFlops: r.DistanceFlops + o.DistanceFlops,
		Encryptions:   r.Encryptions + o.Encryptions,
		Decryptions:   r.Decryptions + o.Decryptions,
		CipherAdds:    r.CipherAdds + o.CipherAdds,
		PlainAdds:     r.PlainAdds + o.PlainAdds,
		ItemsSent:     r.ItemsSent + o.ItemsSent,
		Messages:      r.Messages + o.Messages,
		BytesSent:     r.BytesSent + o.BytesSent,
		FramingBytes:  r.FramingBytes + o.FramingBytes,
		CacheHits:     r.CacheHits + o.CacheHits,
		CacheMisses:   r.CacheMisses + o.CacheMisses,
	}
}

// Attrs flattens the counts into the key/value form the structured query log
// records (obs.QueryEvent.Attrs): HE-op counts plus the payload/framing byte
// split, with the combined wire total precomputed for gate scripts.
func (r Raw) Attrs() map[string]any {
	return map[string]any{
		"distanceFlops": r.DistanceFlops,
		"encryptions":   r.Encryptions,
		"decryptions":   r.Decryptions,
		"cipherAdds":    r.CipherAdds,
		"plainAdds":     r.PlainAdds,
		"itemsSent":     r.ItemsSent,
		"messages":      r.Messages,
		"bytesSent":     r.BytesSent,
		"framingBytes":  r.FramingBytes,
		"wireBytes":     r.WireBytes(),
		"cacheHits":     r.CacheHits,
		"cacheMisses":   r.CacheMisses,
	}
}

// String formats the counts compactly.
func (r Raw) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flops=%d enc=%d dec=%d cadd=%d padd=%d items=%d msgs=%d bytes=%d framing=%d",
		r.DistanceFlops, r.Encryptions, r.Decryptions, r.CipherAdds, r.PlainAdds,
		r.ItemsSent, r.Messages, r.BytesSent, r.FramingBytes)
	if r.CacheHits != 0 || r.CacheMisses != 0 {
		fmt.Fprintf(&b, " cacheHits=%d cacheMisses=%d", r.CacheHits, r.CacheMisses)
	}
	return b.String()
}

// Model prices operation counts in seconds per unit.
type Model struct {
	Beta    float64 // per distance flop
	PhiE    float64 // per encryption
	PhiD    float64 // per decryption
	Gamma   float64 // per ciphertext addition
	Delta   float64 // per plaintext addition
	Eta     float64 // per transmitted item
	Latency float64 // per protocol message (round-trip setup)
}

// Default is calibrated against this repository's Paillier implementation at
// a 1024-bit modulus (BenchmarkEncrypt/Decrypt/AddCipher in
// internal/paillier) and a LAN-like link comparable to the paper's EC2
// cluster: encryption ≈ 2 ms, decryption ≈ 0.7 ms, ciphertext addition
// ≈ 6 µs, ~1 µs per transmitted item plus 0.3 ms per message round trip.
var Default = Model{
	Beta:    1e-9,
	PhiE:    2.0e-3,
	PhiD:    0.7e-3,
	Gamma:   6e-6,
	Delta:   2e-9,
	Eta:     1e-6,
	Latency: 3e-4,
}

// SecAggModel prices the pairwise-masking (SMC-style) protection: an
// "encryption" is P−1 SHA-256 evaluations (~2 µs at P=4), aggregation is a
// 64-bit add, and decryption is a decode. Communication keeps the same
// per-item and per-message costs; masked items are 8 bytes instead of a
// ciphertext, which the byte counters reflect.
var SecAggModel = Model{
	Beta:    1e-9,
	PhiE:    2e-6,
	PhiD:    5e-9,
	Gamma:   2e-9,
	Delta:   2e-9,
	Eta:     1e-6,
	Latency: 3e-4,
}

// For returns the pricing model for a protection scheme name: Paillier rates
// for "paillier" and the op-count-preserving "plain" simulation, masking
// rates for "secagg".
func For(scheme string) Model {
	if scheme == "secagg" {
		return SecAggModel
	}
	return Default
}

// Seconds projects a count snapshot to wall-clock seconds under the model.
func (m Model) Seconds(r Raw) float64 {
	return m.Beta*float64(r.DistanceFlops) +
		m.PhiE*float64(r.Encryptions) +
		m.PhiD*float64(r.Decryptions) +
		m.Gamma*float64(r.CipherAdds) +
		m.Delta*float64(r.PlainAdds) +
		m.Eta*float64(r.ItemsSent) +
		m.Latency*float64(r.Messages)
}
