package costmodel

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestAddAndSnapshot(t *testing.T) {
	var c Counts
	c.Add(Raw{Encryptions: 2, ItemsSent: 5})
	c.Add(Raw{Encryptions: 3, Decryptions: 1})
	s := c.Snapshot()
	if s.Encryptions != 5 || s.Decryptions != 1 || s.ItemsSent != 5 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestReset(t *testing.T) {
	var c Counts
	c.Add(Raw{CipherAdds: 9})
	c.Reset()
	if s := c.Snapshot(); s.CipherAdds != 0 {
		t.Fatal("reset failed")
	}
}

func TestConcurrentAdd(t *testing.T) {
	var c Counts
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Add(Raw{PlainAdds: 1, Messages: 2})
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.PlainAdds != 100 || s.Messages != 200 {
		t.Fatalf("concurrent adds lost: %+v", s)
	}
}

func TestPlus(t *testing.T) {
	a := Raw{DistanceFlops: 1, Encryptions: 2, Decryptions: 3, CipherAdds: 4,
		PlainAdds: 5, ItemsSent: 6, Messages: 7, BytesSent: 8, FramingBytes: 9}
	b := a.Plus(a)
	if b.DistanceFlops != 2 || b.BytesSent != 16 || b.Messages != 14 || b.FramingBytes != 18 {
		t.Fatalf("Plus wrong: %+v", b)
	}
}

func TestWireBytesBreakdown(t *testing.T) {
	// The payload/framing split must accumulate independently and sum to the
	// total traffic the pre-split revisions reported as BytesSent.
	var c Counts
	c.Add(Raw{BytesSent: 100, FramingBytes: 7})
	c.Add(Raw{BytesSent: 50, FramingBytes: 3})
	s := c.Snapshot()
	if s.BytesSent != 150 || s.FramingBytes != 10 {
		t.Fatalf("breakdown wrong: %+v", s)
	}
	if s.WireBytes() != 160 {
		t.Fatalf("WireBytes = %d, want payload+framing = 160", s.WireBytes())
	}
	if !strings.Contains(s.String(), "framing=10") {
		t.Fatalf("String() misses framing: %q", s.String())
	}
}

func TestString(t *testing.T) {
	s := Raw{Encryptions: 3}.String()
	if !strings.Contains(s, "enc=3") {
		t.Fatalf("String() = %q", s)
	}
}

func TestSecondsLinear(t *testing.T) {
	m := Model{Beta: 1, PhiE: 10, PhiD: 100, Gamma: 1000, Delta: 1e4, Eta: 1e5, Latency: 1e6}
	r := Raw{DistanceFlops: 1, Encryptions: 1, Decryptions: 1, CipherAdds: 1, PlainAdds: 1, ItemsSent: 1, Messages: 1}
	want := 1.0 + 10 + 100 + 1000 + 1e4 + 1e5 + 1e6
	if got := m.Seconds(r); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Seconds = %g, want %g", got, want)
	}
}

func TestDefaultDominatedByEncryption(t *testing.T) {
	// The paper's premise: HE item operations dominate. One encryption must
	// cost orders of magnitude more than one plaintext add or one flop.
	if Default.PhiE < 1e4*Default.Delta || Default.PhiE < 1e4*Default.Beta {
		t.Fatal("default model does not make encryption dominant")
	}
	// And projecting a BASE-style run (N encryptions) must exceed a
	// Fagin-style run (N/20 encryptions) by roughly the candidate ratio.
	base := Default.Seconds(Raw{Encryptions: 100000})
	fagin := Default.Seconds(Raw{Encryptions: 5000})
	if ratio := base / fagin; ratio < 15 || ratio > 25 {
		t.Fatalf("encryption-count ratio not preserved: %g", ratio)
	}
}

func TestForSchemeSelection(t *testing.T) {
	if For("secagg") != SecAggModel {
		t.Fatal("secagg must use the masking model")
	}
	if For("paillier") != Default || For("plain") != Default || For("dp") != Default {
		t.Fatal("other schemes must use the default model")
	}
	// The masking model must make the same workload orders of magnitude
	// cheaper (its whole point).
	r := Raw{Encryptions: 100000, CipherAdds: 300000, Decryptions: 100000}
	if SecAggModel.Seconds(r) > Default.Seconds(r)/100 {
		t.Fatal("masking model not meaningfully cheaper")
	}
}
