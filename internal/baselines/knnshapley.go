package baselines

import (
	"fmt"
	"sort"

	"vfps/internal/dataset"
	"vfps/internal/mat"
)

// KNNShapleySamples implements the exact closed-form KNN-Shapley data
// valuation of Jia et al. (VLDB 2019), which the paper's related-work
// section builds on: the Shapley value of every *training sample* under the
// KNN utility, computed in O(N log N) per test point instead of 2^N.
//
// It complements participant-level selection with sample-level valuation:
// once a sub-consortium is selected, the leader can rank which records
// contribute most to (or hurt) the proxy model.
//
// The utility of a training subset S for one test point (x, y) is the
// fraction of its K nearest members of S carrying label y. The recursion,
// with training points sorted ascending by distance (α_1 nearest):
//
//	s(α_N) = 1[y_{α_N} = y] / N
//	s(α_i) = s(α_{i+1}) + (1[y_{α_i}=y] − 1[y_{α_{i+1}}=y])/K · min(K, i)/i
//
// Values are averaged over the test points.
func KNNShapleySamples(trainPt *dataset.Partition, yTrain []int,
	testPt *dataset.Partition, yTest []int, k int) ([]float64, error) {
	if trainPt == nil || trainPt.P() == 0 {
		return nil, fmt.Errorf("baselines: knn-shapley needs a training partition")
	}
	n := trainPt.Parties[0].Rows
	if n != len(yTrain) {
		return nil, fmt.Errorf("baselines: %d training rows vs %d labels", n, len(yTrain))
	}
	if testPt == nil || testPt.P() != trainPt.P() {
		return nil, fmt.Errorf("baselines: test partition layout mismatch")
	}
	nt := testPt.Parties[0].Rows
	if nt != len(yTest) {
		return nil, fmt.Errorf("baselines: %d test rows vs %d labels", nt, len(yTest))
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("baselines: k=%d out of range for %d training rows", k, n)
	}
	values := make([]float64, n)
	dist := make([]float64, n)
	order := make([]int, n)
	s := make([]float64, n)
	for t := 0; t < nt; t++ {
		for i := range dist {
			dist[i] = 0
		}
		for p, party := range testPt.Parties {
			qRow := party.Row(t)
			train := trainPt.Parties[p]
			for i := 0; i < n; i++ {
				dist[i] += mat.SqDist(qRow, train.Row(i))
			}
		}
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if dist[order[a]] != dist[order[b]] {
				return dist[order[a]] < dist[order[b]]
			}
			return order[a] < order[b]
		})
		match := func(rank int) float64 {
			if yTrain[order[rank]] == yTest[t] {
				return 1
			}
			return 0
		}
		// Recursion from the farthest point inward (0-based rank r maps to
		// the paper's 1-based i = r+1).
		s[n-1] = match(n-1) / float64(n)
		for r := n - 2; r >= 0; r-- {
			i := float64(r + 1)
			mk := float64(k)
			if i < mk {
				mk = i
			}
			s[r] = s[r+1] + (match(r)-match(r+1))/float64(k)*mk/i
		}
		for r, id := range order {
			values[id] += s[r]
		}
	}
	for i := range values {
		values[i] /= float64(nt)
	}
	return values, nil
}
