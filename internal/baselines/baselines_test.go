package baselines

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/mat"
)

func testProxy(t *testing.T, name string, rows, parties, dups, k, nq int) (*Proxy, *dataset.Partition) {
	t.Helper()
	spec, err := dataset.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := spec.Generate(rows)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := dataset.VerticalSplit(d, parties, 42)
	if err != nil {
		t.Fatal(err)
	}
	if dups > 0 {
		pt = pt.WithDuplicates(dups, 17)
	}
	queries := make([]int, nq)
	for i := range queries {
		queries[i] = (i * 7) % rows
	}
	px, err := NewProxy(pt, d.Y, d.Classes, queries, k)
	if err != nil {
		t.Fatal(err)
	}
	return px, pt
}

func TestProxyValidation(t *testing.T) {
	if _, err := NewProxy(nil, nil, 2, []int{0}, 3); err == nil {
		t.Fatal("expected partition error")
	}
	spec, _ := dataset.SpecByName("Rice")
	d, _ := spec.Generate(50)
	pt, _ := dataset.VerticalSplit(d, 2, 1)
	if _, err := NewProxy(pt, d.Y[:10], 2, []int{0}, 3); err == nil {
		t.Fatal("expected label mismatch error")
	}
	if _, err := NewProxy(pt, d.Y, 2, []int{0}, 0); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := NewProxy(pt, d.Y, 2, nil, 3); err == nil {
		t.Fatal("expected empty-queries error")
	}
	if _, err := NewProxy(pt, d.Y, 2, []int{99}, 3); err == nil {
		t.Fatal("expected query-range error")
	}
}

func TestUtilityBoundsAndMonotoneTrend(t *testing.T) {
	px, _ := testProxy(t, "Rice", 200, 4, 0, 5, 30)
	for _, coalition := range [][]int{{}, {0}, {0, 1}, {0, 1, 2, 3}} {
		u := px.Utility(coalition)
		if u < 0 || u > 1 {
			t.Fatalf("utility %g out of [0,1]", u)
		}
	}
	// On learnable data the full consortium should beat the empty one.
	if px.Utility([]int{0, 1, 2, 3}) <= px.Utility(nil) {
		t.Fatal("full coalition no better than majority vote on learnable data")
	}
}

func TestProxyCostCharging(t *testing.T) {
	px, _ := testProxy(t, "Rice", 100, 3, 0, 5, 10)
	var counts costmodel.Counts
	px.Counts = &counts
	px.Utility([]int{0, 1})
	c := counts.Snapshot()
	wantEnc := int64(10 * 99 * 2) // queries × (N-1) × coalition size
	if c.Encryptions != wantEnc {
		t.Fatalf("encryptions %d, want %d", c.Encryptions, wantEnc)
	}
	// Empty coalition is free.
	counts.Reset()
	px.Utility(nil)
	if counts.Snapshot().Encryptions != 0 {
		t.Fatal("empty coalition should not charge")
	}
}

func TestShapleyEfficiencyProperty(t *testing.T) {
	// Σ_p SV(p) must equal U(full) − U(∅).
	px, _ := testProxy(t, "Bank", 150, 4, 0, 5, 25)
	sv, err := ShapleyValues(px)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range sv {
		total += v
	}
	full := make([]int, px.P)
	for i := range full {
		full[i] = i
	}
	want := px.Utility(full) - px.Utility(nil)
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("efficiency violated: ΣSV=%g, U(P)-U(∅)=%g", total, want)
	}
}

func TestShapleySymmetryForDuplicates(t *testing.T) {
	// An exact replica of a party must receive the same Shapley value.
	px, pt := testProxy(t, "Rice", 120, 3, 1, 5, 20)
	sv, err := ShapleyValues(px)
	if err != nil {
		t.Fatal(err)
	}
	src := pt.DuplicateOf[3]
	if math.Abs(sv[3]-sv[src]) > 1e-9 {
		t.Fatalf("duplicate SV %g != source SV %g", sv[3], sv[src])
	}
}

func TestShapleyTwoPartyHandFormula(t *testing.T) {
	px, _ := testProxy(t, "Rice", 80, 2, 0, 5, 15)
	sv, err := ShapleyValues(px)
	if err != nil {
		t.Fatal(err)
	}
	u0 := px.Utility([]int{0})
	u1 := px.Utility([]int{1})
	u01 := px.Utility([]int{0, 1})
	ue := px.Utility(nil)
	want0 := 0.5*(u0-ue) + 0.5*(u01-u1)
	want1 := 0.5*(u1-ue) + 0.5*(u01-u0)
	if math.Abs(sv[0]-want0) > 1e-9 || math.Abs(sv[1]-want1) > 1e-9 {
		t.Fatalf("sv %v, want [%g %g]", sv, want0, want1)
	}
}

func TestShapleyMCApproximatesExact(t *testing.T) {
	px, _ := testProxy(t, "Bank", 120, 3, 0, 5, 20)
	exact, err := ShapleyValues(px)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ShapleyMC(px, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-mc[i]) > 0.1 {
			t.Fatalf("MC[%d]=%g vs exact %g", i, mc[i], exact[i])
		}
	}
	if _, err := ShapleyMC(px, 0, 1); err == nil {
		t.Fatal("expected samples validation error")
	}
}

func TestShapleyChargesExponentialCost(t *testing.T) {
	cost := func(parties int) int64 {
		px, _ := testProxy(t, "Credit", 60, parties, 0, 3, 8)
		var counts costmodel.Counts
		px.Counts = &counts
		if _, err := ShapleyValues(px); err != nil {
			t.Fatal(err)
		}
		return counts.Snapshot().Encryptions
	}
	c3, c5 := cost(3), cost(5)
	// 2^P coalitions with average size P/2: cost ratio ≈ (2^5·2.5)/(2^3·1.5) ≈ 6.7.
	if ratio := float64(c5) / float64(c3); ratio < 4 {
		t.Fatalf("Shapley cost did not grow exponentially: ratio %g", ratio)
	}
}

func TestSelectShapley(t *testing.T) {
	px, _ := testProxy(t, "Bank", 120, 4, 0, 5, 20)
	sel, err := SelectShapley(px, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0] == sel[1] {
		t.Fatalf("selection %v", sel)
	}
}

func TestMutualInformationKnown(t *testing.T) {
	// Perfectly informative predictions: I = H(Y) = ln 2 for balanced binary.
	pred := []int{0, 0, 1, 1}
	truth := []int{0, 0, 1, 1}
	if got := MutualInformation(pred, truth, 2); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("MI %g, want ln2", got)
	}
	// Independent predictions: I = 0.
	pred = []int{0, 1, 0, 1}
	truth = []int{0, 0, 1, 1}
	if got := MutualInformation(pred, truth, 2); math.Abs(got) > 1e-12 {
		t.Fatalf("MI %g, want 0", got)
	}
	// Anti-correlated is still fully informative.
	pred = []int{1, 1, 0, 0}
	truth = []int{0, 0, 1, 1}
	if got := MutualInformation(pred, truth, 2); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("anti-correlated MI %g, want ln2", got)
	}
	if MutualInformation(nil, nil, 2) != 0 {
		t.Fatal("empty MI should be 0")
	}
}

func TestVFMineScoresFavorInformativeParties(t *testing.T) {
	px, _ := testProxy(t, "Rice", 200, 4, 0, 5, 30)
	scores, err := VFMineScores(px, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("scores %v", scores)
	}
	for _, s := range scores {
		if s < 0 {
			t.Fatalf("negative MI score %g", s)
		}
	}
}

func TestVFMineCheaperThanShapley(t *testing.T) {
	px, _ := testProxy(t, "Credit", 80, 5, 0, 3, 10)
	var shCounts, vmCounts costmodel.Counts
	px.Counts = &shCounts
	if _, err := ShapleyValues(px); err != nil {
		t.Fatal(err)
	}
	px.Counts = &vmCounts
	if _, err := VFMineScores(px, 0, 1); err != nil {
		t.Fatal(err)
	}
	if vmCounts.Snapshot().Encryptions >= shCounts.Snapshot().Encryptions {
		t.Fatalf("VF-MINE (%d) should be cheaper than Shapley (%d)",
			vmCounts.Snapshot().Encryptions, shCounts.Snapshot().Encryptions)
	}
}

func TestSelectVFMine(t *testing.T) {
	px, _ := testProxy(t, "Bank", 100, 4, 0, 5, 15)
	sel, err := SelectVFMine(px, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0] == sel[1] {
		t.Fatalf("selection %v", sel)
	}
}

func TestVFMineValidation(t *testing.T) {
	px, _ := testProxy(t, "Rice", 60, 2, 0, 3, 5)
	px.P = 1
	if _, err := VFMineScores(px, 4, 1); err == nil {
		t.Fatal("expected P<2 error")
	}
}

func TestSelectRandom(t *testing.T) {
	sel, err := SelectRandom(6, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("selection %v", sel)
	}
	seen := map[int]bool{}
	for _, p := range sel {
		if p < 0 || p >= 6 || seen[p] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[p] = true
	}
	again, _ := SelectRandom(6, 3, 9)
	if !reflect.DeepEqual(sel, again) {
		t.Fatal("random selection not deterministic in the seed")
	}
	if _, err := SelectRandom(3, 0, 1); err == nil {
		t.Fatal("expected count error")
	}
	if _, err := SelectRandom(3, 4, 1); err == nil {
		t.Fatal("expected count>P error")
	}
}

func TestSelectTop(t *testing.T) {
	got := SelectTop([]float64{0.1, 0.9, 0.5, 0.9}, 3)
	want := []int{1, 3, 2} // ties by smaller index
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SelectTop = %v, want %v", got, want)
	}
	if len(SelectTop([]float64{1}, 5)) != 1 {
		t.Fatal("SelectTop should clamp count")
	}
}

func TestShapleyTooManyParties(t *testing.T) {
	px, _ := testProxy(t, "Rice", 60, 2, 0, 3, 5)
	px.P = 25
	if _, err := ShapleyValues(px); err == nil {
		t.Fatal("expected P>24 error")
	}
}

func knnShapleyFixture(t *testing.T, rows, parties, k, nTest int) (*dataset.Partition, []int, *dataset.Partition, []int) {
	t.Helper()
	spec, err := dataset.SpecByName("Rice")
	if err != nil {
		t.Fatal(err)
	}
	d, err := spec.Generate(rows + nTest)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := dataset.VerticalSplit(d, parties, 3)
	if err != nil {
		t.Fatal(err)
	}
	trainRows := make([]int, rows)
	for i := range trainRows {
		trainRows[i] = i
	}
	testRows := make([]int, nTest)
	for i := range testRows {
		testRows[i] = rows + i
	}
	return pt.ApplyRows(trainRows), dataset.SelectLabels(d.Y, trainRows),
		pt.ApplyRows(testRows), dataset.SelectLabels(d.Y, testRows)
}

func TestKNNShapleyEfficiency(t *testing.T) {
	// Per test point, values sum to the full-set utility: the fraction of
	// the K nearest training points with the correct label. Averaged over
	// test points, the sums must still match.
	trainPt, yTr, testPt, yTest := knnShapleyFixture(t, 120, 3, 5, 8)
	values, err := KNNShapleySamples(trainPt, yTr, testPt, yTest, 5)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for _, v := range values {
		got += v
	}
	// Recompute the average full-set utility directly.
	var want float64
	n := trainPt.Parties[0].Rows
	for ti := 0; ti < testPt.Parties[0].Rows; ti++ {
		dist := make([]float64, n)
		for p, party := range testPt.Parties {
			q := party.Row(ti)
			train := trainPt.Parties[p]
			for i := 0; i < n; i++ {
				dist[i] += mat.SqDist(q, train.Row(i))
			}
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if dist[idx[a]] != dist[idx[b]] {
				return dist[idx[a]] < dist[idx[b]]
			}
			return idx[a] < idx[b]
		})
		correct := 0
		for j := 0; j < 5; j++ {
			if yTr[idx[j]] == yTest[ti] {
				correct++
			}
		}
		want += float64(correct) / 5
	}
	want /= float64(testPt.Parties[0].Rows)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("efficiency violated: Σvalues=%g, U(D)=%g", got, want)
	}
}

func TestKNNShapleyRanksHelpfulSamplesHigh(t *testing.T) {
	trainPt, yTr, testPt, yTest := knnShapleyFixture(t, 200, 3, 5, 20)
	values, err := KNNShapleySamples(trainPt, yTr, testPt, yTest, 5)
	if err != nil {
		t.Fatal(err)
	}
	// On learnable data, the mean value must be positive and some samples
	// must be clearly more valuable than others.
	var sum, maxV, minV float64
	maxV, minV = values[0], values[0]
	for _, v := range values {
		sum += v
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	if sum <= 0 {
		t.Fatalf("total value %g not positive", sum)
	}
	if maxV <= minV {
		t.Fatal("no spread in sample values")
	}
}

func TestKNNShapleyValidation(t *testing.T) {
	trainPt, yTr, testPt, yTest := knnShapleyFixture(t, 50, 2, 3, 4)
	if _, err := KNNShapleySamples(nil, nil, testPt, yTest, 3); err == nil {
		t.Fatal("expected partition error")
	}
	if _, err := KNNShapleySamples(trainPt, yTr[:5], testPt, yTest, 3); err == nil {
		t.Fatal("expected label mismatch error")
	}
	if _, err := KNNShapleySamples(trainPt, yTr, testPt, yTest, 0); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := KNNShapleySamples(trainPt, yTr, testPt, yTest[:1], 3); err == nil {
		t.Fatal("expected test label mismatch error")
	}
	if _, err := KNNShapleySamples(trainPt, yTr, nil, yTest, 3); err == nil {
		t.Fatal("expected test partition error")
	}
}
