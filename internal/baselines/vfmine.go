package baselines

import (
	"fmt"
	"math"
	"math/rand"
)

// VFMineScores implements the VF-MINE-style baseline: participants are
// scored by the mutual information between the proxy-KNN predictions of
// random participant groups and the true labels, averaged over the groups
// each participant joins. Group evaluations charge federated cost, so
// VF-MINE lands between VFPS-SM (one evaluation of the full consortium) and
// SHAPLEY (2^P evaluations), matching the paper's selection-time ordering.
//
// numGroups ≤ 0 defaults to 2·P groups of size ⌈P/2⌉.
func VFMineScores(px *Proxy, numGroups int, seed int64) ([]float64, error) {
	p := px.P
	if p < 2 {
		return nil, fmt.Errorf("baselines: VF-MINE needs at least 2 participants")
	}
	if numGroups <= 0 {
		numGroups = 2 * p
	}
	groupSize := (p + 1) / 2
	if groupSize < 1 {
		groupSize = 1
	}
	rng := rand.New(rand.NewSource(seed))
	sum := make([]float64, p)
	cnt := make([]int, p)
	labels := px.Labels()
	evalGroup := func(group []int) {
		pred := px.Predict(group)
		mi := MutualInformation(pred, labels, px.Classes)
		for _, m := range group {
			sum[m] += mi
			cnt[m]++
		}
	}
	// Cover every participant at least once with permutation chunks, then
	// fill with uniform random groups.
	generated := 0
	for generated < numGroups {
		perm := rng.Perm(p)
		for start := 0; start < p && generated < numGroups; start += groupSize {
			end := start + groupSize
			if end > p {
				end = p
			}
			evalGroup(perm[start:end])
			generated++
		}
	}
	scores := make([]float64, p)
	for i := range scores {
		if cnt[i] > 0 {
			scores[i] = sum[i] / float64(cnt[i])
		}
	}
	return scores, nil
}

// SelectVFMine picks the `count` participants with the highest VF-MINE
// scores.
func SelectVFMine(px *Proxy, count, numGroups int, seed int64) ([]int, error) {
	scores, err := VFMineScores(px, numGroups, seed)
	if err != nil {
		return nil, err
	}
	return SelectTop(scores, count), nil
}

// MutualInformation estimates I(pred; truth) in nats from the empirical
// joint distribution of two label sequences over `classes` classes.
func MutualInformation(pred, truth []int, classes int) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0
	}
	n := float64(len(pred))
	joint := make([][]float64, classes)
	for i := range joint {
		joint[i] = make([]float64, classes)
	}
	pMarg := make([]float64, classes)
	tMarg := make([]float64, classes)
	for i := range pred {
		joint[pred[i]][truth[i]]++
		pMarg[pred[i]]++
		tMarg[truth[i]]++
	}
	var mi float64
	for a := 0; a < classes; a++ {
		for b := 0; b < classes; b++ {
			if joint[a][b] == 0 {
				continue
			}
			pab := joint[a][b] / n
			mi += pab * math.Log(pab/((pMarg[a]/n)*(tMarg[b]/n)))
		}
	}
	if mi < 0 { // numerical guard
		mi = 0
	}
	return mi
}

// SelectRandom returns `count` distinct participants drawn uniformly with
// the given seed (the RANDOM baseline).
func SelectRandom(p, count int, seed int64) ([]int, error) {
	if count <= 0 || count > p {
		return nil, fmt.Errorf("baselines: random count %d out of range [1,%d]", count, p)
	}
	return rand.New(rand.NewSource(seed)).Perm(p)[:count], nil
}
