// Package baselines implements the participant-selection baselines the paper
// compares against (§V-A): RANDOM, SHAPLEY (exact Shapley values over a
// vertical-federated KNN proxy, plus a Monte-Carlo variant) and VF-MINE
// (mutual-information scoring over participant groups). All methods share a
// KNN proxy whose coalition evaluations charge the federated cost they would
// incur, so selection-time comparisons reproduce the paper's shape.
package baselines

import (
	"fmt"
	"math"
	"sort"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/mat"
)

// Proxy precomputes each participant's partial distances from every query
// sample to every training row, so that the utility of any coalition
// (KNN accuracy with distances summed over coalition members) can be
// evaluated quickly while still charging the HE/communication cost a
// federated evaluation would incur.
type Proxy struct {
	P, N, K int
	Classes int
	Queries []int
	y       []int
	// dists[p][qi][row] = partial distance at party p between query qi and
	// training row; the query's own row is +Inf so it is never a neighbour.
	dists [][][]float64
	// majority is the training majority class: the empty coalition's
	// predictor.
	majority int
	// Counts, when non-nil, accumulates the federated cost of coalition
	// evaluations.
	Counts *costmodel.Counts
}

// NewProxy builds the proxy for a partition, labels and query subset.
func NewProxy(pt *dataset.Partition, y []int, classes int, queries []int, k int) (*Proxy, error) {
	if pt == nil || pt.P() == 0 {
		return nil, fmt.Errorf("baselines: proxy needs a partition")
	}
	n := pt.Parties[0].Rows
	if n != len(y) {
		return nil, fmt.Errorf("baselines: %d rows vs %d labels", n, len(y))
	}
	if k <= 0 || k >= n {
		return nil, fmt.Errorf("baselines: k=%d out of range for %d rows", k, n)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("baselines: empty query set")
	}
	for _, q := range queries {
		if q < 0 || q >= n {
			return nil, fmt.Errorf("baselines: query %d out of range", q)
		}
	}
	px := &Proxy{
		P:       pt.P(),
		N:       n,
		K:       k,
		Classes: classes,
		Queries: queries,
		y:       y,
	}
	px.dists = make([][][]float64, pt.P())
	for p, party := range pt.Parties {
		px.dists[p] = make([][]float64, len(queries))
		for qi, q := range queries {
			row := make([]float64, n)
			qRow := party.Row(q)
			for i := 0; i < n; i++ {
				if i == q {
					row[i] = math.Inf(1)
					continue
				}
				row[i] = mat.SqDist(qRow, party.Row(i))
			}
			px.dists[p][qi] = row
		}
	}
	counts := make([]int, classes)
	for _, label := range y {
		counts[label]++
	}
	px.majority = mat.ArgMax(floats(counts))
	return px, nil
}

func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// chargeEval accounts one federated coalition evaluation of size s: every
// member encrypts its N−1 partial distances per query, the server aggregates
// them, and the leader decrypts the totals.
func (px *Proxy) chargeEval(s int) {
	if px.Counts == nil || s == 0 {
		return
	}
	q := int64(len(px.Queries))
	n := int64(px.N - 1)
	ss := int64(s)
	px.Counts.Add(costmodel.Raw{
		DistanceFlops: q * n * ss,
		Encryptions:   q * n * ss,
		CipherAdds:    q * n * (ss - 1),
		Decryptions:   q * n,
		ItemsSent:     q * n * (ss + 1),
		Messages:      q * (ss + 1),
	})
}

// predictSums votes the k nearest rows of each query given per-query summed
// distances.
func (px *Proxy) predictSums(sums [][]float64) []int {
	out := make([]int, len(px.Queries))
	for qi := range px.Queries {
		out[qi] = px.voteOne(sums[qi])
	}
	return out
}

func (px *Proxy) voteOne(dist []float64) int {
	// Partial selection of the k smallest via a bounded insertion list —
	// k is small, so this is O(N·k) worst case but ~O(N) in practice.
	type nb struct {
		d   float64
		idx int
	}
	best := make([]nb, 0, px.K)
	for i, d := range dist {
		if math.IsInf(d, 1) {
			continue
		}
		if len(best) == px.K && d >= best[px.K-1].d {
			continue
		}
		pos := sort.Search(len(best), func(j int) bool {
			if best[j].d != d {
				return best[j].d > d
			}
			return best[j].idx > i
		})
		if len(best) < px.K {
			best = append(best, nb{})
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = nb{d: d, idx: i}
	}
	votes := make([]float64, px.Classes)
	for _, b := range best {
		votes[px.y[b.idx]]++
	}
	return mat.ArgMax(votes)
}

// coalitionSums materialises summed distances for an explicit coalition.
func (px *Proxy) coalitionSums(coalition []int) [][]float64 {
	sums := make([][]float64, len(px.Queries))
	for qi := range px.Queries {
		row := make([]float64, px.N)
		for _, p := range coalition {
			for i, d := range px.dists[p][qi] {
				row[i] += d
			}
		}
		sums[qi] = row
	}
	return sums
}

// Predict returns the proxy-KNN predicted label of every query under the
// given coalition (the majority class for an empty coalition), charging the
// federated evaluation cost.
func (px *Proxy) Predict(coalition []int) []int {
	px.chargeEval(len(coalition))
	if len(coalition) == 0 {
		out := make([]int, len(px.Queries))
		for i := range out {
			out[i] = px.majority
		}
		return out
	}
	return px.predictSums(px.coalitionSums(coalition))
}

// Utility returns the proxy-KNN accuracy of a coalition over the query set.
func (px *Proxy) Utility(coalition []int) float64 {
	return px.accuracy(px.Predict(coalition))
}

func (px *Proxy) accuracy(pred []int) float64 {
	correct := 0
	for qi, q := range px.Queries {
		if pred[qi] == px.y[q] {
			correct++
		}
	}
	return float64(correct) / float64(len(px.Queries))
}

// Labels returns the true labels of the query samples.
func (px *Proxy) Labels() []int {
	out := make([]int, len(px.Queries))
	for i, q := range px.Queries {
		out[i] = px.y[q]
	}
	return out
}

// SelectTop returns the indices of the `count` highest scores (ties broken
// by smaller index), in descending score order.
func SelectTop(scores []float64, count int) []int {
	if count > len(scores) {
		count = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if scores[i] != scores[j] {
			return scores[i] > scores[j]
		}
		return i < j
	})
	return idx[:count]
}
