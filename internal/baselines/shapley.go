package baselines

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// maskEval evaluates coalition utilities incrementally: toggling one party
// updates the per-query summed distances in O(|Q|·N) instead of rebuilding
// the coalition from scratch, which makes exact 2^P enumeration feasible.
type maskEval struct {
	px   *Proxy
	sums [][]float64
	mask uint32
}

func newMaskEval(px *Proxy) *maskEval {
	sums := make([][]float64, len(px.Queries))
	for qi := range sums {
		sums[qi] = make([]float64, px.N)
	}
	return &maskEval{px: px, sums: sums}
}

func (e *maskEval) toggle(p int) {
	bit := uint32(1) << p
	sign := 1.0
	if e.mask&bit != 0 {
		sign = -1
	}
	e.mask ^= bit
	for qi := range e.sums {
		row := e.sums[qi]
		for i, d := range e.px.dists[p][qi] {
			if math.IsInf(d, 1) {
				continue // keep the self-row clean of Inf-Inf artefacts
			}
			row[i] += sign * d
		}
	}
}

func (e *maskEval) utility() float64 {
	size := bits.OnesCount32(e.mask)
	e.px.chargeEval(size)
	if size == 0 {
		pred := make([]int, len(e.px.Queries))
		for i := range pred {
			pred[i] = e.px.majority
		}
		return e.px.accuracy(pred)
	}
	// The self-row must stay excluded: voteOne skips +Inf entries, and the
	// incremental sums keep them at 0, so mark them explicitly.
	correct := 0
	for qi, q := range e.px.Queries {
		row := e.sums[qi]
		saved := row[q]
		row[q] = math.Inf(1)
		if e.px.voteOne(row) == e.px.y[q] {
			correct++
		}
		row[q] = saved
	}
	return float64(correct) / float64(len(e.px.Queries))
}

// ShapleyValues computes exact Shapley values of every participant under the
// proxy utility by Gray-code enumeration of all 2^P coalitions:
//
//	SV(p) = (1/P) Σ_{S ⊆ P\{p}} C(P−1,|S|)⁻¹ · [U(S∪{p}) − U(S)].
//
// Every coalition evaluation charges federated cost, so the measured and
// projected selection times grow exponentially in P exactly as in Fig. 7.
func ShapleyValues(px *Proxy) ([]float64, error) {
	p := px.P
	if p > 24 {
		return nil, fmt.Errorf("baselines: exact Shapley limited to P ≤ 24, got %d (use ShapleyMC)", p)
	}
	size := 1 << p
	u := make([]float64, size)
	ev := newMaskEval(px)
	u[0] = ev.utility()
	// Gray-code walk: order i -> gray(i) toggles exactly one bit per step.
	prevGray := uint32(0)
	for i := 1; i < size; i++ {
		gray := uint32(i) ^ (uint32(i) >> 1)
		diff := gray ^ prevGray
		ev.toggle(bits.TrailingZeros32(diff))
		u[gray] = ev.utility()
		prevGray = gray
	}
	// Combine marginals with the Shapley kernel.
	binom := make([]float64, p) // C(P-1, s)
	binom[0] = 1
	for s := 1; s < p; s++ {
		binom[s] = binom[s-1] * float64(p-s) / float64(s)
	}
	sv := make([]float64, p)
	for pi := 0; pi < p; pi++ {
		bit := 1 << pi
		var total float64
		for mask := 0; mask < size; mask++ {
			if mask&bit != 0 {
				continue
			}
			s := bits.OnesCount32(uint32(mask))
			total += (u[mask|bit] - u[mask]) / binom[s]
		}
		sv[pi] = total / float64(p)
	}
	return sv, nil
}

// ShapleyMC estimates Shapley values with Monte-Carlo permutation sampling:
// the average marginal contribution of each party over random arrival
// orders. Used when P makes exact enumeration intractable.
func ShapleyMC(px *Proxy, samples int, seed int64) ([]float64, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("baselines: sample count %d must be positive", samples)
	}
	p := px.P
	sv := make([]float64, p)
	rng := rand.New(rand.NewSource(seed))
	ev := newMaskEval(px)
	for s := 0; s < samples; s++ {
		// Reset to the empty coalition.
		for pi := 0; pi < p; pi++ {
			if ev.mask&(1<<pi) != 0 {
				ev.toggle(pi)
			}
		}
		prev := ev.utility()
		for _, pi := range rng.Perm(p) {
			ev.toggle(pi)
			cur := ev.utility()
			sv[pi] += cur - prev
			prev = cur
		}
	}
	for i := range sv {
		sv[i] /= float64(samples)
	}
	return sv, nil
}

// SelectShapley picks the `count` participants with the highest exact
// Shapley values.
func SelectShapley(px *Proxy, count int) ([]int, error) {
	sv, err := ShapleyValues(px)
	if err != nil {
		return nil, err
	}
	return SelectTop(sv, count), nil
}
