package mont

import (
	"math/big"
	"math/bits"
)

// expWindow is the fixed window width of ExpWindow. Six bits balances the
// 2^6-entry per-call table build (62 multiplies) against the per-window
// multiply count at the exponent widths the Paillier paths use (512–2112
// bits); it matches the fixed-base window the randomizer tables use.
const expWindow = 6

// ExpWindow computes z = x^e in Montgomery form: x must be in Montgomery
// form and z receives the Montgomery form of the power. e is a plain
// non-negative exponent. Left-to-right fixed windows: the 2^w-entry odd-and-
// even table lives on the stack, squarings run through SqrREDC. z may alias
// x. Zero heap allocations per call.
func (c *Ctx) ExpWindow(z, x Nat, e *big.Int) {
	k := c.k
	if e.Sign() == 0 {
		copy(z, c.one)
		return
	}
	var tableBuf [(1 << expWindow) * MaxLimbs]big.Word
	table := tableBuf[: (1<<expWindow)*k : (1<<expWindow)*k]
	copy(table[0:k], c.one)
	copy(table[k:2*k], x)
	for i := 2; i < 1<<expWindow; i++ {
		c.MulREDC(table[i*k:(i+1)*k], table[(i-1)*k:i*k], x)
	}
	var accBuf [MaxLimbs]big.Word
	acc := accBuf[:k]
	copy(acc, c.one)
	eb := e.Bits()
	nw := (e.BitLen() + expWindow - 1) / expWindow
	for wi := nw - 1; wi >= 0; wi-- {
		if wi != nw-1 {
			for s := 0; s < expWindow; s++ {
				c.SqrREDC(acc, acc)
			}
		}
		if d := window(eb, wi); d != 0 {
			c.MulREDC(acc, acc, table[d*k:(d+1)*k])
		}
	}
	copy(z, acc)
}

// window extracts the wi-th expWindow-bit digit of the little-endian word
// vector eb, straddling a word boundary when needed.
func window(eb []big.Word, wi int) int {
	bitPos := wi * expWindow
	wordIdx := bitPos / bits.UintSize
	bitIdx := bitPos % bits.UintSize
	if wordIdx >= len(eb) {
		return 0
	}
	d := uint(eb[wordIdx]) >> bitIdx
	if bitIdx+expWindow > bits.UintSize && wordIdx+1 < len(eb) {
		d |= uint(eb[wordIdx+1]) << (bits.UintSize - bitIdx)
	}
	return int(d & (1<<expWindow - 1))
}

// ExpBig computes z = base^e mod m on plain big.Int values through the
// Montgomery kernel: reduce, convert in, ExpWindow, convert out. z may alias
// base. The conversions cost two REDC passes total, noise next to the
// exponentiation itself.
func (c *Ctx) ExpBig(z, base, e *big.Int) *big.Int {
	var xb [MaxLimbs]big.Word
	k := c.k
	x := c.SetBig(xb[:k], base)
	c.ToMont(x, x)
	c.ExpWindow(x, x, e)
	c.FromMont(x, x)
	return c.PutBig(z, x)
}
