//go:build amd64

#include "textflag.h"

// func addMulVVWAsm(z, x []big.Word, y big.Word) (carry big.Word)
//
// z += x*y, returning the final carry. MULX keeps the multiplier in DX;
// ADCX carries the running hi-limb chain, ADOX the z add-back chain, so the
// two additions per limb never serialise on the same flag. Four limbs per
// unrolled block; both flags fold into R15 between blocks (DECQ clobbers
// OF, so the fold cannot ride across the loop edge).
TEXT ·addMulVVWAsm(SB), NOSPLIT, $0-64
	MOVQ z_base+0(FP), DI
	MOVQ z_len+8(FP), BX
	MOVQ x_base+24(FP), SI
	MOVQ y+48(FP), DX
	XORQ R15, R15          // running carry between blocks

	MOVQ BX, CX
	SHRQ $2, CX            // CX = n/4 blocks
	ANDQ $3, BX            // BX = n%4 tail

	TESTQ CX, CX
	JZ   tail

block4:
	XORQ AX, AX            // clear CF and OF
	MULXQ 0(SI), R8, R9    // lo=R8 hi=R9
	ADCXQ R15, R8          // + carry-in  (CF chain)
	ADOXQ 0(DI), R8        // + z[0]      (OF chain)
	MOVQ R8, 0(DI)
	MULXQ 8(SI), R10, R11
	ADCXQ R9, R10
	ADOXQ 8(DI), R10
	MOVQ R10, 8(DI)
	MULXQ 16(SI), R12, R13
	ADCXQ R11, R12
	ADOXQ 16(DI), R12
	MOVQ R12, 16(DI)
	MULXQ 24(SI), R14, R15
	ADCXQ R13, R14
	ADOXQ 24(DI), R14
	MOVQ R14, 24(DI)
	// fold CF and OF into R15
	MOVQ $0, AX
	ADCXQ AX, R15
	ADOXQ AX, R15

	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  block4

tail:
	TESTQ BX, BX
	JZ   done

tail1:
	XORQ AX, AX
	MULXQ 0(SI), R8, R9
	ADCXQ R15, R8
	ADOXQ 0(DI), R8
	MOVQ R8, 0(DI)
	MOVQ $0, AX
	ADCXQ AX, R9
	ADOXQ AX, R9
	MOVQ R9, R15
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ BX
	JNZ  tail1

done:
	MOVQ R15, carry+56(FP)
	RET

// func cpuidMaxLeaf() uint32
TEXT ·cpuidMaxLeaf(SB), NOSPLIT, $0-4
	XORL AX, AX
	XORL CX, CX
	CPUID
	MOVL AX, ret+0(FP)
	RET

// func cpuid7EBX() uint32
TEXT ·cpuid7EBX(SB), NOSPLIT, $0-4
	MOVL $7, AX
	XORL CX, CX
	CPUID
	MOVL BX, ret+0(FP)
	RET
