//go:build !amd64

package mont

import "math/big"

func addMulVVW(z, x []big.Word, y big.Word) big.Word {
	return addMulVVWGo(z, x, y)
}
