package mont

import (
	"math/big"
	"testing"
)

// FuzzMontMulExp cross-checks the Montgomery kernel against math/big over
// fuzz-chosen odd moduli of 1024–3072 bits: MulREDC (through ModMulBig, so
// both REDC directions are covered) against Mul+Mod, and ExpWindow against
// Exp. The exponent is capped at 192 bits to keep iterations fast; window
// extraction and the squaring ladder are width-independent.
func FuzzMontMulExp(f *testing.F) {
	f.Add(byte(0), []byte{3}, []byte{2}, []byte{5}, []byte{7})
	f.Add(byte(37), []byte{0xff, 0x01, 0x17}, []byte{0xfe}, []byte{0xab, 0xcd}, []byte{0x80, 0x00, 0x01})
	f.Add(byte(255), []byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{9}, []byte{10}, []byte{11})
	f.Fuzz(func(t *testing.T, widthSel byte, mb, xb, yb, eb []byte) {
		width := 1024 + int(widthSel)*8 // 1024..3064 bits
		m := new(big.Int).SetBytes(mb)
		m.SetBit(m, width-1, 1) // force the width
		m.SetBit(m, 0, 1)       // force odd
		if m.BitLen() > width {
			m.Mod(m, new(big.Int).Lsh(big.NewInt(1), uint(width)))
			m.SetBit(m, width-1, 1)
			m.SetBit(m, 0, 1)
		}
		c, err := NewCtx(m)
		if err != nil {
			t.Fatalf("NewCtx on %d-bit odd modulus: %v", width, err)
		}
		x := new(big.Int).SetBytes(xb)
		x.Mod(x, m)
		y := new(big.Int).SetBytes(yb)
		y.Mod(y, m)
		e := new(big.Int).SetBytes(eb)
		if e.BitLen() > 192 {
			e.Rsh(e, uint(e.BitLen()-192))
		}

		wantMul := new(big.Int).Mul(x, y)
		wantMul.Mod(wantMul, m)
		if got := c.ModMulBig(new(big.Int), x, y); got.Cmp(wantMul) != 0 {
			t.Fatalf("ModMulBig mismatch at %d bits:\n got %x\nwant %x", width, got, wantMul)
		}

		wantExp := new(big.Int).Exp(x, e, m)
		if got := c.ExpBig(new(big.Int), x, e); got.Cmp(wantExp) != 0 {
			t.Fatalf("ExpBig mismatch at %d bits e=%x:\n got %x\nwant %x", width, e, got, wantExp)
		}
	})
}
