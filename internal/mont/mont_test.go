package mont

import (
	"crypto/rand"
	"math/big"
	"math/bits"
	"testing"
)

// randOdd returns a random odd modulus of exactly the given bit length.
func randOdd(t testing.TB, bitLen int) *big.Int {
	t.Helper()
	m, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(bitLen)))
	if err != nil {
		t.Fatal(err)
	}
	m.SetBit(m, bitLen-1, 1)
	m.SetBit(m, 0, 1)
	return m
}

func randMod(t testing.TB, m *big.Int) *big.Int {
	t.Helper()
	x, err := rand.Int(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// testWidths exercises word-aligned and straddling widths, including the
// single-limb edge and the production Paillier widths (n² of 1024/2048-bit
// keys, p² of their halves).
var testWidths = []int{64, 65, 127, 128, 129, 512, 1024, 1027, 2048, 3072}

func TestMulREDCCrossCheck(t *testing.T) {
	for _, w := range testWidths {
		m := randOdd(t, w)
		c, err := NewCtx(m)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		for i := 0; i < 8; i++ {
			x, y := randMod(t, m), randMod(t, m)
			xm, ym, zm := c.NewNat(), c.NewNat(), c.NewNat()
			c.ToMont(xm, c.SetBig(xm, x))
			c.ToMont(ym, c.SetBig(ym, y))
			c.MulREDC(zm, xm, ym)
			c.FromMont(zm, zm)
			got := c.PutBig(new(big.Int), zm)
			want := new(big.Int).Mul(x, y)
			want.Mod(want, m)
			if got.Cmp(want) != 0 {
				t.Fatalf("width %d: MulREDC mismatch\n got %x\nwant %x", w, got, want)
			}
		}
	}
}

func TestSqrREDCCrossCheck(t *testing.T) {
	for _, w := range testWidths {
		m := randOdd(t, w)
		c, err := NewCtx(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			x := randMod(t, m)
			xm := c.NewNat()
			c.ToMont(xm, c.SetBig(xm, x))
			c.SqrREDC(xm, xm)
			c.FromMont(xm, xm)
			got := c.PutBig(new(big.Int), xm)
			want := new(big.Int).Mul(x, x)
			want.Mod(want, m)
			if got.Cmp(want) != 0 {
				t.Fatalf("width %d: SqrREDC mismatch", w)
			}
		}
	}
}

// TestSqrREDCCarryRipple pins the reduction-row carry ripple: an all-ones
// modulus block drives saturated limbs where a non-rippling carry add-in
// silently drops bits (~2⁻⁶⁴ per row on random inputs, so random testing
// alone cannot be trusted to hit it).
func TestSqrREDCCarryRipple(t *testing.T) {
	for _, w := range []int{128, 512, 1024} {
		m := new(big.Int).Lsh(big.NewInt(1), uint(w))
		m.Sub(m, big.NewInt(1)) // 2^w − 1: every limb saturated
		c, err := NewCtx(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			x := randMod(t, m)
			xm := c.NewNat()
			c.ToMont(xm, c.SetBig(xm, x))
			c.SqrREDC(xm, xm)
			c.FromMont(xm, xm)
			got := c.PutBig(new(big.Int), xm)
			want := new(big.Int).Mul(x, x)
			want.Mod(want, m)
			if got.Cmp(want) != 0 {
				t.Fatalf("width %d iter %d: saturated-modulus square mismatch", w, i)
			}
		}
	}
}

func TestExpWindowCrossCheck(t *testing.T) {
	for _, w := range []int{64, 129, 512, 1024, 2048} {
		m := randOdd(t, w)
		c, err := NewCtx(m)
		if err != nil {
			t.Fatal(err)
		}
		exps := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			big.NewInt(2),
			big.NewInt(65537),
			randMod(t, m),
			new(big.Int).Sub(m, big.NewInt(1)),
		}
		x := randMod(t, m)
		for _, e := range exps {
			got := c.ExpBig(new(big.Int), x, e)
			want := new(big.Int).Exp(x, e, m)
			if got.Cmp(want) != 0 {
				t.Fatalf("width %d e=%x: ExpWindow mismatch", w, e)
			}
		}
	}
}

func TestModMulBigAndAliasing(t *testing.T) {
	m := randOdd(t, 1024)
	c, err := NewCtx(m)
	if err != nil {
		t.Fatal(err)
	}
	x, y := randMod(t, m), randMod(t, m)
	want := new(big.Int).Mul(x, y)
	want.Mod(want, m)
	if got := c.ModMulBig(new(big.Int), x, y); got.Cmp(want) != 0 {
		t.Fatal("ModMulBig mismatch")
	}
	// z aliasing x, and a negative operand through the cold reduction path.
	z := new(big.Int).Set(x)
	if c.ModMulBig(z, z, y); z.Cmp(want) != 0 {
		t.Fatal("ModMulBig aliased mismatch")
	}
	neg := new(big.Int).Sub(x, m) // ≡ x mod m, negative
	if got := c.ModMulBig(new(big.Int), neg, y); got.Cmp(want) != 0 {
		t.Fatal("ModMulBig negative-operand mismatch")
	}
}

func TestRPow(t *testing.T) {
	m := randOdd(t, 512)
	c, err := NewCtx(m)
	if err != nil {
		t.Fatal(err)
	}
	R := new(big.Int).Lsh(big.NewInt(1), uint(c.K()*bits.UintSize))
	for j := 1; j <= 9; j++ {
		want := new(big.Int).Exp(R, big.NewInt(int64(j)), m)
		got := c.PutBig(new(big.Int), c.RPow(j))
		if got.Cmp(want) != 0 {
			t.Fatalf("RPow(%d) mismatch", j)
		}
	}
	// The documented fold contract: t REDC folds of plain residues leave a
	// R^(−t) deficit that one multiply against RPow(t+1) repairs.
	vals := make([]*big.Int, 5)
	want := big.NewInt(1)
	for i := range vals {
		vals[i] = randMod(t, m)
		want.Mul(want, vals[i])
		want.Mod(want, m)
	}
	acc := c.SetBig(c.NewNat(), vals[0])
	op := c.NewNat()
	for _, v := range vals[1:] {
		c.MulREDC(acc, acc, c.SetBig(op, v))
	}
	c.MulREDC(acc, acc, c.RPow(len(vals)))
	if got := c.PutBig(new(big.Int), acc); got.Cmp(want) != 0 {
		t.Fatal("deficit-repair fold mismatch")
	}
}

func TestNewCtxRejects(t *testing.T) {
	for _, m := range []*big.Int{
		nil,
		big.NewInt(0),
		big.NewInt(-7),
		big.NewInt(10), // even
		new(big.Int).Add(new(big.Int).Lsh(big.NewInt(1), (MaxLimbs+1)*64), big.NewInt(1)),
	} {
		if _, err := NewCtx(m); err == nil {
			t.Fatalf("NewCtx(%v) accepted an invalid modulus", m)
		}
	}
}

func TestCtxForCache(t *testing.T) {
	m := randOdd(t, 256)
	a, b := CtxFor(m), CtxFor(m)
	if a == nil || a != b {
		t.Fatal("CtxFor did not return the shared context for the same pointer")
	}
	even := big.NewInt(8)
	if CtxFor(even) != nil || CtxFor(even) != nil {
		t.Fatal("CtxFor accepted an even modulus")
	}
}

// TestAllocsSteadyState is the allocation-count regression gate: MulREDC,
// SqrREDC and ExpWindow must run the steady state entirely on the stack.
func TestAllocsSteadyState(t *testing.T) {
	m := randOdd(t, 2048) // n² width of a 1024-bit key
	c, err := NewCtx(m)
	if err != nil {
		t.Fatal(err)
	}
	x, y, z := c.NewNat(), c.NewNat(), c.NewNat()
	c.ToMont(x, c.SetBig(x, randMod(t, m)))
	c.ToMont(y, c.SetBig(y, randMod(t, m)))
	e := randMod(t, new(big.Int).Lsh(big.NewInt(1), 256))
	if n := testing.AllocsPerRun(100, func() { c.MulREDC(z, x, y) }); n != 0 {
		t.Fatalf("MulREDC allocates %.1f objects per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { c.SqrREDC(z, x) }); n != 0 {
		t.Fatalf("SqrREDC allocates %.1f objects per op", n)
	}
	if n := testing.AllocsPerRun(20, func() { c.ExpWindow(z, x, e) }); n != 0 {
		t.Fatalf("ExpWindow allocates %.1f objects per op", n)
	}
}

func TestAddMulVVWGoVsAsm(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33} {
		z1 := make([]big.Word, n)
		z2 := make([]big.Word, n)
		x := make([]big.Word, n)
		for i := range x {
			x[i] = ^big.Word(0) - big.Word(i)
			z1[i] = big.Word(i) * 0x9e3779b9
			z2[i] = z1[i]
		}
		y := ^big.Word(0)
		c1 := addMulVVWGo(z1, x, y)
		c2 := addMulVVW(z2, x, y)
		if c1 != c2 {
			t.Fatalf("n=%d: carry mismatch %x vs %x", n, c1, c2)
		}
		for i := range z1 {
			if z1[i] != z2[i] {
				t.Fatalf("n=%d limb %d: %x vs %x", n, i, z1[i], z2[i])
			}
		}
	}
}
