package mont

import (
	"math/big"
	"math/bits"
)

// addMulVVWGo is the portable limb row: z += x·y with carry propagation,
// returning the final carry. len(x) must be ≥ len(z).
func addMulVVWGo(z, x []big.Word, y big.Word) big.Word {
	yy := uint(y)
	var carry uint
	for i := range z {
		hi, lo := bits.Mul(uint(x[i]), yy)
		lo, c := bits.Add(lo, carry, 0)
		hi += c
		s, c2 := bits.Add(uint(z[i]), lo, 0)
		z[i] = big.Word(s)
		carry = hi + c2
	}
	return big.Word(carry)
}
