//go:build amd64

package mont

import "math/big"

// hasADX gates the MULX/ADCX/ADOX row kernel. The go toolchain's baseline
// GOAMD64 level does not guarantee ADX or BMI2, so detect at startup and
// fall back to the portable row on older silicon.
var hasADX = func() bool {
	if cpuidMaxLeaf() < 7 {
		return false
	}
	ebx := cpuid7EBX()
	const bmi2 = 1 << 8 // MULX
	const adx = 1 << 19 // ADCX/ADOX
	return ebx&bmi2 != 0 && ebx&adx != 0
}()

// addMulVVWAsm is the ADX row kernel: dual carry chains (ADCX for the
// running carry, ADOX for the z add-back), four limbs per unrolled block.
//
//go:noescape
func addMulVVWAsm(z, x []big.Word, y big.Word) (carry big.Word)

// cpuidMaxLeaf returns CPUID leaf 0 EAX (the highest supported leaf).
func cpuidMaxLeaf() uint32

// cpuid7EBX returns CPUID leaf 7 subleaf 0 EBX (structured feature flags).
func cpuid7EBX() uint32

func addMulVVW(z, x []big.Word, y big.Word) big.Word {
	if hasADX {
		return addMulVVWAsm(z, x, y)
	}
	return addMulVVWGo(z, x, y)
}
