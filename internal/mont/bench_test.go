package mont

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// Benchmarks compare the kernel against the math/big operations it replaces
// at the production widths (n² of 1024/2048-bit keys, p² of their halves).
// `make bench-mont` runs these.

func benchCtx(b *testing.B, bits int) (*Ctx, *big.Int, *big.Int) {
	b.Helper()
	m, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
	if err != nil {
		b.Fatal(err)
	}
	m.SetBit(m, bits-1, 1)
	m.SetBit(m, 0, 1)
	c, err := NewCtx(m)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := rand.Int(rand.Reader, m)
	y, _ := rand.Int(rand.Reader, m)
	return c, x, y
}

func benchWidths(b *testing.B, f func(b *testing.B, bits int)) {
	for _, bits := range []int{1024, 2048, 3072} {
		b.Run(big.NewInt(int64(bits)).String(), func(b *testing.B) { f(b, bits) })
	}
}

func BenchmarkMulREDC(b *testing.B) {
	benchWidths(b, func(b *testing.B, bits int) {
		c, x, y := benchCtx(b, bits)
		xm, ym, z := c.NewNat(), c.NewNat(), c.NewNat()
		c.ToMont(xm, c.SetBig(xm, x))
		c.ToMont(ym, c.SetBig(ym, y))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.MulREDC(z, xm, ym)
		}
	})
}

func BenchmarkSqrREDC(b *testing.B) {
	benchWidths(b, func(b *testing.B, bits int) {
		c, x, _ := benchCtx(b, bits)
		xm, z := c.NewNat(), c.NewNat()
		c.ToMont(xm, c.SetBig(xm, x))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.SqrREDC(z, xm)
		}
	})
}

func BenchmarkBigMulMod(b *testing.B) {
	benchWidths(b, func(b *testing.B, bits int) {
		c, x, y := benchCtx(b, bits)
		z := new(big.Int)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			z.Mul(x, y)
			z.Mod(z, c.Mod())
		}
	})
}

func BenchmarkModMulBig(b *testing.B) {
	benchWidths(b, func(b *testing.B, bits int) {
		c, x, y := benchCtx(b, bits)
		z := new(big.Int)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.ModMulBig(z, x, y)
		}
	})
}

func BenchmarkExpWindow(b *testing.B) {
	benchWidths(b, func(b *testing.B, bits int) {
		c, x, _ := benchCtx(b, bits)
		e, _ := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(bits/2)))
		z := new(big.Int)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.ExpBig(z, x, e)
		}
	})
}

func BenchmarkBigExp(b *testing.B) {
	benchWidths(b, func(b *testing.B, bits int) {
		c, x, _ := benchCtx(b, bits)
		e, _ := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(bits/2)))
		z := new(big.Int)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			z.Exp(x, e, c.Mod())
		}
	})
}
