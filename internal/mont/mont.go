// Package mont implements fixed-width Montgomery modular arithmetic for the
// Paillier hot paths: a per-modulus context of precomputed constants
// (Ctx{mod, n0inv, rr}), a CIOS multiply-reduce (MulREDC) and squaring
// (SqrREDC) with zero steady-state heap allocation, windowed exponentiation
// over Montgomery-form operands (ExpWindow), and conversions in and out of
// Montgomery form. See DESIGN.md §12 for the representation and the
// recurrences; SECURITY.md documents why the kernel's variable-time final
// subtraction is acceptable in this threat model.
//
// Values are fixed-width little-endian limb vectors (Nat) of exactly
// Ctx.K() words. A residue x is in Montgomery form when the vector holds
// x·R mod m with R = 2^(K·W); MulREDC computes a·b·R⁻¹ mod m, so
// Montgomery-form operands chain through products with no per-step
// conversions. Plain residues can also be folded directly — each REDC then
// contributes one R⁻¹ deficit, repaired at the end by a single multiply with
// a precomputed power of R (RPow).
package mont

import (
	"errors"
	"math/big"
	"math/bits"
	"sync"
)

// MaxLimbs bounds the supported modulus width: 130 words covers n² of a
// 4096-bit Paillier key (128 limbs) with slack. The fixed bound lets every
// intermediate buffer live on the stack, which is what makes the hot path
// allocation-free.
const MaxLimbs = 130

// Nat is a fixed-width little-endian limb vector of exactly Ctx.K() words.
// Unlike big.Int it is never normalised: high zero limbs stay in place.
type Nat []big.Word

// Ctx carries the precomputed per-modulus constants. All fields are
// read-only after NewCtx, so any number of goroutines may share one Ctx;
// RPow's lazy table has its own lock.
type Ctx struct {
	k   int      // limb count
	mod Nat      // the modulus m
	n0  big.Word // -m⁻¹ mod 2^W (the CIOS per-row quotient factor)
	rr  Nat      // R² mod m (Montgomery conversion factor)
	one Nat      // R mod m (the Montgomery form of 1)
	m   *big.Int // the modulus as a big.Int (read-only)

	rpowMu sync.Mutex
	rpows  []Nat // rpows[j] = R^(j+1) mod m, plain residues, grown on demand
}

// NewCtx precomputes a Montgomery context for the odd modulus m.
func NewCtx(m *big.Int) (*Ctx, error) {
	if m == nil || m.Sign() <= 0 || m.Bit(0) == 0 {
		return nil, errors.New("mont: modulus must be positive and odd")
	}
	k := (m.BitLen() + bits.UintSize - 1) / bits.UintSize
	if k > MaxLimbs {
		return nil, errors.New("mont: modulus exceeds MaxLimbs")
	}
	c := &Ctx{k: k, m: m, mod: make(Nat, k)}
	copy(c.mod, m.Bits())
	// n0 = -m⁻¹ mod 2^W by Newton iteration: each step doubles the number of
	// correct low bits, six steps cover 64-bit words from the 5-bit seed m₀.
	m0 := uint(c.mod[0])
	inv := m0
	for i := 0; i < 6; i++ {
		inv *= 2 - m0*inv
	}
	c.n0 = big.Word(-inv)
	rr := new(big.Int).Lsh(big.NewInt(1), uint(2*k*bits.UintSize))
	rr.Mod(rr, m)
	c.rr = make(Nat, k)
	copy(c.rr, rr.Bits())
	one := new(big.Int).Lsh(big.NewInt(1), uint(k*bits.UintSize))
	one.Mod(one, m)
	c.one = make(Nat, k)
	copy(c.one, one.Bits())
	return c, nil
}

// ctxCache maps *big.Int → *Ctx by pointer identity. Moduli in this codebase
// (n², p², q²) are immutable once a key is built, so the pointer is a stable
// identity; the cache pins both the Ctx and its modulus for the process
// lifetime, a few KB per key.
var ctxCache sync.Map

// CtxFor returns a shared context for m, keyed by pointer identity, or nil
// when m admits none (even, non-positive, or wider than MaxLimbs). Callers
// treat nil as "fall back to math/big".
func CtxFor(m *big.Int) *Ctx {
	if v, ok := ctxCache.Load(m); ok {
		c, _ := v.(*Ctx)
		return c
	}
	c, err := NewCtx(m)
	if err != nil {
		c = nil // cache the failure as a typed nil
	}
	ctxCache.Store(m, c)
	return c
}

// K returns the context's limb count; every Nat passed to this context must
// have exactly K limbs.
func (c *Ctx) K() int { return c.k }

// Mod returns the modulus (read-only).
func (c *Ctx) Mod() *big.Int { return c.m }

// One returns R mod m, the Montgomery form of 1. The returned Nat is shared
// and must not be written.
func (c *Ctx) One() Nat { return c.one }

// NewNat allocates a zero Nat of the context's width.
func (c *Ctx) NewNat() Nat { return make(Nat, c.k) }

// SetBig loads x into z as a fixed-width residue and returns z. Values
// outside [0, m) take a cold reduction path that allocates; hot-path callers
// pass reduced values.
func (c *Ctx) SetBig(z Nat, x *big.Int) Nat {
	if x.Sign() < 0 || x.Cmp(c.m) >= 0 {
		x = new(big.Int).Mod(x, c.m)
	}
	w := x.Bits()
	copy(z, w)
	for i := len(w); i < c.k; i++ {
		z[i] = 0
	}
	return z
}

// PutBig stores the plain residue x into z, reusing z's limb storage when it
// has capacity (zero allocations steady-state), and returns z.
func (c *Ctx) PutBig(z *big.Int, x Nat) *big.Int {
	return z.SetBits(append(z.Bits()[:0], x...))
}

// ToMont converts the plain residue x to Montgomery form in z (z = x·R mod
// m). z may alias x.
func (c *Ctx) ToMont(z, x Nat) { c.MulREDC(z, x, c.rr) }

// FromMont converts the Montgomery-form x back to a plain residue in z
// (z = x·R⁻¹ mod m). z may alias x.
func (c *Ctx) FromMont(z, x Nat) {
	var ob [MaxLimbs]big.Word
	ob[0] = 1
	c.MulREDC(z, x, ob[:c.k])
}

// MulREDC computes z = x·y·R⁻¹ mod m by CIOS: k rows, each adding x[i]·y and
// then m·((T[i]·n0) mod 2^W) into a sliding window of the accumulator so the
// low limb cancels, followed by one conditional subtraction. z, x and y must
// all be k limbs; z may alias x and/or y. The accumulator lives on the
// stack: zero heap allocations per call.
func (c *Ctx) MulREDC(z, x, y Nat) {
	var tb [2*MaxLimbs + 1]big.Word
	k := c.k
	T := tb[: 2*k+1 : 2*k+1]
	m := c.mod
	n0 := c.n0
	for i := 0; i < k; i++ {
		c1 := addMulVVW(T[i:i+k], y, x[i])
		mm := T[i] * n0
		c2 := addMulVVW(T[i:i+k], m, mm)
		// Both row carries land on T[i+k]; the carry out of that add lands on
		// T[i+k+1], which no earlier row has written (row j touches only
		// T[j..j+k+1]), so the plain add-in cannot overflow.
		s, cc := bits.Add(uint(T[i+k]), uint(c1), 0)
		s2, cc2 := bits.Add(s, uint(c2), 0)
		T[i+k] = big.Word(s2)
		T[i+k+1] += big.Word(cc + cc2)
	}
	c.condSub(z, T)
}

// SqrREDC computes z = x²·R⁻¹ mod m (SOS squaring: cross products, doubling,
// diagonal, then k reduction rows). One squaring costs roughly ¾ of a
// MulREDC; exponentiation is squaring-dominated, so the saving compounds.
// z may alias x.
func (c *Ctx) SqrREDC(z, x Nat) {
	var tb [2*MaxLimbs + 1]big.Word
	k := c.k
	T := tb[: 2*k+1 : 2*k+1]
	// Cross products: T[i+j] += x[i]·x[j] over j > i. Row i's carry lands on
	// T[i+k], untouched by earlier rows (row j < i stops at T[j+k]).
	for i := 0; i < k-1; i++ {
		T[i+k] += addMulVVW(T[2*i+1:i+k], x[i+1:k], x[i])
	}
	// Double. x² < 2^(2kW), so the doubled cross sum fits 2k limbs and the
	// final carry out of T[2k-1] is zero.
	var carry big.Word
	for i := 0; i < 2*k; i++ {
		nc := T[i] >> (bits.UintSize - 1)
		T[i] = T[i]<<1 | carry
		carry = nc
	}
	// Diagonal: x[i]² added at T[2i], T[2i+1].
	var cc uint
	for i := 0; i < k; i++ {
		hi, lo := bits.Mul(uint(x[i]), uint(x[i]))
		s0, c1 := bits.Add(uint(T[2*i]), lo, cc)
		s1, c2 := bits.Add(uint(T[2*i+1]), hi, c1)
		T[2*i], T[2*i+1] = big.Word(s0), big.Word(s1)
		cc = c2
	}
	T[2*k] += big.Word(cc)
	// Montgomery reduction rows. Unlike MulREDC, T above the row window
	// already holds live squaring data, so the row carry must ripple instead
	// of a single add-in (a saturated limb would otherwise drop the carry).
	m := c.mod
	n0 := c.n0
	for i := 0; i < k; i++ {
		mm := T[i] * n0
		c2 := addMulVVW(T[i:i+k], m, mm)
		s, b := bits.Add(uint(T[i+k]), uint(c2), 0)
		T[i+k] = big.Word(s)
		for idx := i + k + 1; b != 0 && idx <= 2*k; idx++ {
			s, b = bits.Add(uint(T[idx]), 0, b)
			T[idx] = big.Word(s)
		}
	}
	c.condSub(z, T)
}

// condSub finishes a REDC: the result T[k..2k] is < 2m with top bit T[2k];
// subtract m once when the value is ≥ m. Variable time, see SECURITY.md.
func (c *Ctx) condSub(z Nat, T []big.Word) {
	k := c.k
	m := c.mod
	var b uint
	for j := 0; j < k; j++ {
		var s uint
		s, b = bits.Sub(uint(T[k+j]), uint(m[j]), b)
		z[j] = big.Word(s)
	}
	if T[2*k] == 0 && b != 0 {
		copy(z, T[k:2*k])
	}
}

// RPow returns R^j mod m (j ≥ 1) as a plain residue, growing a lazily built
// shared table. Folding t plain residues through t MulREDC calls leaves a
// R^(−t) deficit; one final MulREDC against RPow(t+1) repairs it. The
// returned Nat is shared and must not be written.
func (c *Ctx) RPow(j int) Nat {
	c.rpowMu.Lock()
	defer c.rpowMu.Unlock()
	for len(c.rpows) < j {
		next := make(Nat, c.k)
		if len(c.rpows) == 0 {
			copy(next, c.one) // R¹
		} else {
			c.MulREDC(next, c.rpows[len(c.rpows)-1], c.rr)
		}
		c.rpows = append(c.rpows, next)
	}
	return c.rpows[j-1]
}

// ModMulBig sets z = x·y mod m on plain big.Int residues through two REDC
// passes (one to multiply, one to strip the R⁻¹), reusing z's storage.
// Slightly faster than big.Int Mul+Mod and allocation-free steady-state.
// z may alias x or y.
func (c *Ctx) ModMulBig(z, x, y *big.Int) *big.Int {
	var xb, yb, t [MaxLimbs]big.Word
	k := c.k
	xn := c.SetBig(xb[:k], x)
	yn := c.SetBig(yb[:k], y)
	c.MulREDC(t[:k], xn, yn)
	c.MulREDC(xn, t[:k], c.rr)
	return c.PutBig(z, xn)
}
