package dataset

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"vfps/internal/mat"
)

func TestPaperSpecsMatchTableIII(t *testing.T) {
	want := map[string][2]int{
		"Bank": {10000, 11}, "Credit": {30000, 23}, "Phishing": {11055, 68},
		"Web": {64700, 300}, "Rice": {18185, 10}, "Adult": {32561, 123},
		"IJCNN": {141691, 22}, "SUSY": {5000000, 18}, "HDI": {253661, 21},
		"SD": {991346, 23},
	}
	if len(PaperSpecs) != len(want) {
		t.Fatalf("expected %d specs, got %d", len(want), len(PaperSpecs))
	}
	for _, s := range PaperSpecs {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected spec %s", s.Name)
		}
		if s.Instances != w[0] || s.Features != w[1] {
			t.Fatalf("%s: %d×%d, want %d×%d", s.Name, s.Instances, s.Features, w[0], w[1])
		}
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("Rice")
	if err != nil || s.Name != "Rice" {
		t.Fatalf("SpecByName failed: %v", err)
	}
	if _, err := SpecByName("Nope"); err == nil {
		t.Fatal("expected error for unknown spec")
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	s, _ := SpecByName("Bank")
	d1, err := s.Generate(500)
	if err != nil {
		t.Fatal(err)
	}
	if d1.N() != 500 || d1.F() != 11 || len(d1.Y) != 500 {
		t.Fatalf("unexpected shape %dx%d", d1.N(), d1.F())
	}
	d2, _ := s.Generate(500)
	for i := range d1.X.Data {
		if d1.X.Data[i] != d2.X.Data[i] {
			t.Fatal("generation is not deterministic")
		}
	}
	for i := range d1.Y {
		if d1.Y[i] != d2.Y[i] {
			t.Fatal("labels not deterministic")
		}
	}
}

func TestGenerateBothClassesPresent(t *testing.T) {
	for _, s := range PaperSpecs {
		d, err := s.Generate(400)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		counts := make([]int, d.Classes)
		for _, y := range d.Y {
			if y < 0 || y >= d.Classes {
				t.Fatalf("%s: label %d out of range", s.Name, y)
			}
			counts[y]++
		}
		for c, n := range counts {
			if n == 0 {
				t.Fatalf("%s: class %d absent", s.Name, c)
			}
		}
	}
}

func TestGenerateBinaryDatasets(t *testing.T) {
	s, _ := SpecByName("Phishing")
	d, _ := s.Generate(300)
	for _, v := range d.X.Data {
		if v != 0 && v != 1 {
			t.Fatalf("binary dataset has value %g", v)
		}
	}
}

func TestGenerateContinuousStandardized(t *testing.T) {
	s, _ := SpecByName("Rice")
	d, _ := s.Generate(2000)
	for j := 0; j < d.F(); j++ {
		col := make([]float64, d.N())
		for i := 0; i < d.N(); i++ {
			col[i] = d.X.At(i, j)
		}
		if math.Abs(mat.Mean(col)) > 1e-6 {
			t.Fatalf("col %d mean %g not ~0", j, mat.Mean(col))
		}
	}
}

func TestGenerateIsLearnable(t *testing.T) {
	// A 1-NN classifier on the joint space must beat the majority baseline
	// comfortably; otherwise participant selection has nothing to find.
	s, _ := SpecByName("Rice")
	d, _ := s.Generate(1200)
	split, err := TrainValTest(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < split.Test.N(); i++ {
		q := split.Test.X.Row(i)
		best, bestD := -1, math.Inf(1)
		for j := 0; j < split.Train.N(); j++ {
			if dist := mat.SqDist(q, split.Train.X.Row(j)); dist < bestD {
				bestD, best = dist, j
			}
		}
		if split.Train.Y[best] == split.Test.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(split.Test.N())
	if acc < 0.8 {
		t.Fatalf("Rice 1-NN accuracy %.3f too low; generator is not learnable", acc)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := Spec{Name: "x", Instances: 100, Features: 5, Classes: 2, Informative: 9}
	if _, err := bad.Generate(0); err == nil {
		t.Fatal("expected informative-range error")
	}
	bad2 := Spec{Name: "x", Instances: 100, Features: 5, Classes: 1, Informative: 2}
	if _, err := bad2.Generate(0); err == nil {
		t.Fatal("expected class-count error")
	}
	bad3 := Spec{Name: "x", Instances: 0, Features: 5, Classes: 2, Informative: 2}
	if _, err := bad3.Generate(0); err == nil {
		t.Fatal("expected row-count error")
	}
	bad4 := Spec{Name: "x", Instances: 10, Features: 5, Classes: 2, Informative: 3, Redundant: 4}
	if _, err := bad4.Generate(0); err == nil {
		t.Fatal("expected informative+redundant error")
	}
}

func TestTrainValTestProportions(t *testing.T) {
	s, _ := SpecByName("Bank")
	d, _ := s.Generate(1000)
	split, err := TrainValTest(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if split.Train.N() != 800 || split.Val.N() != 100 || split.Test.N() != 100 {
		t.Fatalf("split sizes %d/%d/%d", split.Train.N(), split.Val.N(), split.Test.N())
	}
	if _, err := TrainValTest(&Dataset{Name: "tiny", X: mat.New(3, 1), Y: []int{0, 1, 0}, Classes: 2}, 1); err == nil {
		t.Fatal("expected error for tiny dataset")
	}
}

func TestTrainValTestDisjointAndComplete(t *testing.T) {
	s, _ := SpecByName("Bank")
	d, _ := s.Generate(200)
	split, _ := TrainValTest(d, 3)
	// Fingerprint rows to verify the union covers the original multiset.
	fp := func(ds *Dataset) map[string]int {
		m := map[string]int{}
		for i := 0; i < ds.N(); i++ {
			m[fmt.Sprintf("%v", ds.X.Row(i))]++
		}
		return m
	}
	all := fp(d)
	got := map[string]int{}
	for _, part := range []*Dataset{split.Train, split.Val, split.Test} {
		for k, v := range fp(part) {
			got[k] += v
		}
	}
	if len(all) != len(got) {
		t.Fatal("split lost or invented rows")
	}
	for k, v := range all {
		if got[k] != v {
			t.Fatal("split multiset mismatch")
		}
	}
}

func TestVerticalSplitReconstructs(t *testing.T) {
	s, _ := SpecByName("Credit")
	d, _ := s.Generate(150)
	pt, err := VerticalSplit(d, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pt.P() != 4 {
		t.Fatalf("P = %d", pt.P())
	}
	// Feature indices must partition 0..F-1.
	seen := map[int]bool{}
	total := 0
	for _, idx := range pt.FeatureIdx {
		for _, c := range idx {
			if seen[c] {
				t.Fatalf("column %d assigned twice", c)
			}
			seen[c] = true
			total++
		}
	}
	if total != d.F() {
		t.Fatalf("assigned %d of %d columns", total, d.F())
	}
	// Party matrices must agree cell-by-cell with the original columns.
	for p, m := range pt.Parties {
		for i := 0; i < d.N(); i++ {
			for j, c := range pt.FeatureIdx[p] {
				if m.At(i, j) != d.X.At(i, c) {
					t.Fatal("party matrix does not match source columns")
				}
			}
		}
	}
}

func TestVerticalSplitValidation(t *testing.T) {
	s, _ := SpecByName("Rice")
	d, _ := s.Generate(50)
	if _, err := VerticalSplit(d, 0, 1); err == nil {
		t.Fatal("expected p=0 error")
	}
	if _, err := VerticalSplit(d, 11, 1); err == nil {
		t.Fatal("expected p>F error")
	}
}

func TestPartitionSelectAndJoint(t *testing.T) {
	s, _ := SpecByName("Rice")
	d, _ := s.Generate(60)
	pt, _ := VerticalSplit(d, 4, 2)
	sub, err := pt.Select([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.P() != 2 || sub.Parties[0] != pt.Parties[2] {
		t.Fatal("Select returned wrong parties")
	}
	joint := sub.Joint()
	if joint.Cols != len(pt.FeatureIdx[2])+len(pt.FeatureIdx[0]) {
		t.Fatal("Joint width wrong")
	}
	if _, err := pt.Select([]int{9}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestPartitionApplyRows(t *testing.T) {
	s, _ := SpecByName("Rice")
	d, _ := s.Generate(60)
	pt, _ := VerticalSplit(d, 3, 2)
	rows := []int{5, 1, 9}
	sub := pt.ApplyRows(rows)
	for p := range sub.Parties {
		for i, r := range rows {
			for j := range sub.FeatureIdx[p] {
				if sub.Parties[p].At(i, j) != pt.Parties[p].At(r, j) {
					t.Fatal("ApplyRows mismatch")
				}
			}
		}
	}
}

func TestWithDuplicates(t *testing.T) {
	s, _ := SpecByName("Rice")
	d, _ := s.Generate(80)
	pt, _ := VerticalSplit(d, 4, 2)
	dup := pt.WithDuplicates(3, 9)
	if dup.P() != 7 {
		t.Fatalf("P = %d, want 7", dup.P())
	}
	for p := 4; p < 7; p++ {
		src := dup.DuplicateOf[p]
		if src < 0 || src >= 4 {
			t.Fatalf("duplicate %d has invalid source %d", p, src)
		}
		a, b := dup.Parties[p], dup.Parties[src]
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatal("duplicate party differs from source")
			}
		}
	}
	// Original partition must be untouched.
	if pt.P() != 4 {
		t.Fatal("WithDuplicates mutated the source partition")
	}
}

func TestLoadCSV(t *testing.T) {
	csvData := "f1,f2,label\n1.5,2.0,spam\n0.5,1.0,ham\n2.5,3.0,spam\n"
	d, err := LoadCSV(strings.NewReader(csvData), "mail", -1, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 || d.F() != 2 || d.Classes != 2 {
		t.Fatalf("shape %dx%d classes %d", d.N(), d.F(), d.Classes)
	}
	// "ham" < "spam" so ham=0, spam=1.
	if d.Y[0] != 1 || d.Y[1] != 0 {
		t.Fatalf("labels %v", d.Y)
	}
	if d.X.At(0, 0) != 1.5 {
		t.Fatal("feature parse wrong")
	}
}

func TestLoadCSVLabelColumnMiddle(t *testing.T) {
	csvData := "1.0,yes,2.0\n3.0,no,4.0\n"
	d, err := LoadCSV(strings.NewReader(csvData), "x", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.F() != 2 || d.X.At(1, 1) != 4.0 {
		t.Fatal("middle label column parsed wrong")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader(""), "x", 0, false); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := LoadCSV(strings.NewReader("1,a\n2,a\n"), "x", 5, false); err == nil {
		t.Fatal("expected label column range error")
	}
	if _, err := LoadCSV(strings.NewReader("oops,a\n1,b\n"), "x", 1, false); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := LoadCSV(strings.NewReader("1,a\n2,a\n"), "x", 1, false); err == nil {
		t.Fatal("expected single-class error")
	}
}

func TestSplitIndices(t *testing.T) {
	train, val, test, err := SplitIndices(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 80 || len(val) != 10 || len(test) != 10 {
		t.Fatalf("sizes %d/%d/%d", len(train), len(val), len(test))
	}
	seen := map[int]bool{}
	for _, g := range [][]int{train, val, test} {
		for _, r := range g {
			if seen[r] {
				t.Fatal("row assigned twice")
			}
			seen[r] = true
		}
	}
	if len(seen) != 100 {
		t.Fatal("rows lost")
	}
	if _, _, _, err := SplitIndices(5, 1); err == nil {
		t.Fatal("expected tiny-n error")
	}
}

func TestSelectLabels(t *testing.T) {
	y := []int{9, 8, 7, 6}
	got := SelectLabels(y, []int{2, 0})
	if got[0] != 7 || got[1] != 9 {
		t.Fatalf("SelectLabels = %v", got)
	}
}

func TestMulticlassGeneration(t *testing.T) {
	spec := Spec{
		Name: "multi", Instances: 600, Features: 12, Classes: 4,
		Informative: 6, Redundant: 5, ClustersPerClass: 1,
		ClassSep: 2.5, NoiseStd: 0.8, Seed: 77,
	}
	d, err := spec.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, y := range d.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n < 50 {
			t.Fatalf("class %d underrepresented: %d", c, n)
		}
	}
}
