// Package dataset provides the data layer of the reproduction: deterministic
// synthetic generators standing in for the ten public datasets of Table III
// (which are not available offline — see DESIGN.md §3), vertical feature
// partitioning across participants, duplicate-participant injection for the
// diversity study (Fig. 6), train/validation/test splitting, and CSV loading
// for user data.
package dataset

import (
	"fmt"
	"math/rand"

	"vfps/internal/mat"
)

// Dataset is a labelled classification dataset.
type Dataset struct {
	Name    string
	X       *mat.Matrix // N×F feature matrix
	Y       []int       // N labels in 0..Classes-1
	Classes int
}

// N returns the number of instances.
func (d *Dataset) N() int { return d.X.Rows }

// F returns the joint feature dimension.
func (d *Dataset) F() int { return d.X.Cols }

// Spec describes one synthetic dataset generator. The geometry fields mirror
// Table III of the paper; the structure fields control how learnable and how
// redundant the feature space is, so that vertical partitions genuinely
// differ in quality — the property participant selection exploits.
type Spec struct {
	Name      string
	Domain    string
	Instances int // paper-scale row count (Table III)
	Features  int // joint feature dimension (Table III)
	Classes   int

	// Informative is the number of features carrying class signal; the rest
	// are noise or redundant copies.
	Informative int
	// Redundant features are noisy linear copies of informative ones,
	// creating the cross-participant overlap that makes some participants
	// near-duplicates of others.
	Redundant int
	// ClustersPerClass controls class-conditional multi-modality.
	ClustersPerClass int
	// ClassSep scales centroid separation: larger is easier.
	ClassSep float64
	// NoiseStd is the within-cluster standard deviation.
	NoiseStd float64
	// LabelNoise is the fraction of labels flipped uniformly at random.
	LabelNoise float64
	// Binary quantises features to {0,1} (one-hot-like datasets such as
	// Phishing, Adult and Web).
	Binary bool
	// Seed fixes the generator stream for reproducibility.
	Seed int64
}

// PaperSpecs lists generators matching the row/feature geometry of Table III.
// Structure parameters are chosen per dataset so the suite spans easy
// (Rice, Web) to hard (SD, SUSY) tasks, mirroring the accuracy spread the
// paper reports.
// Nearly all non-informative features are redundant copies rather than pure
// noise: like the real tabular/one-hot datasets of Table III, every feature
// carries (possibly duplicated) signal, so cross-participant diversity maps
// to complementary information rather than to noise coverage.
var PaperSpecs = []Spec{
	{Name: "Bank", Domain: "Finance", Instances: 10000, Features: 11, Classes: 2,
		Informative: 4, Redundant: 6, ClustersPerClass: 2, ClassSep: 1.6, NoiseStd: 1.0, LabelNoise: 0.08, Seed: 101},
	{Name: "Credit", Domain: "Finance", Instances: 30000, Features: 23, Classes: 2,
		Informative: 7, Redundant: 15, ClustersPerClass: 3, ClassSep: 1.3, NoiseStd: 1.2, LabelNoise: 0.10, Seed: 102},
	{Name: "Phishing", Domain: "Internet", Instances: 11055, Features: 68, Classes: 2,
		Informative: 16, Redundant: 50, ClustersPerClass: 2, ClassSep: 1.2, NoiseStd: 1.0, LabelNoise: 0.04, Binary: true, Seed: 103},
	{Name: "Web", Domain: "Internet", Instances: 64700, Features: 300, Classes: 2,
		Informative: 40, Redundant: 250, ClustersPerClass: 2, ClassSep: 0.9, NoiseStd: 1.0, LabelNoise: 0.02, Binary: true, Seed: 104},
	{Name: "Rice", Domain: "Science", Instances: 18185, Features: 10, Classes: 2,
		Informative: 4, Redundant: 6, ClustersPerClass: 1, ClassSep: 3.0, NoiseStd: 0.7, LabelNoise: 0.005, Seed: 105},
	{Name: "Adult", Domain: "Science", Instances: 32561, Features: 123, Classes: 2,
		Informative: 24, Redundant: 95, ClustersPerClass: 3, ClassSep: 1.5, NoiseStd: 1.0, LabelNoise: 0.08, Binary: true, Seed: 106},
	{Name: "IJCNN", Domain: "Science", Instances: 141691, Features: 22, Classes: 2,
		Informative: 7, Redundant: 14, ClustersPerClass: 4, ClassSep: 1.8, NoiseStd: 0.9, LabelNoise: 0.03, Seed: 107},
	{Name: "SUSY", Domain: "Science", Instances: 5000000, Features: 18, Classes: 2,
		Informative: 6, Redundant: 11, ClustersPerClass: 3, ClassSep: 1.0, NoiseStd: 1.4, LabelNoise: 0.15, Seed: 108},
	{Name: "HDI", Domain: "Healthcare", Instances: 253661, Features: 21, Classes: 2,
		Informative: 6, Redundant: 14, ClustersPerClass: 2, ClassSep: 1.9, NoiseStd: 1.1, LabelNoise: 0.06, Seed: 109},
	{Name: "SD", Domain: "Healthcare", Instances: 991346, Features: 23, Classes: 2,
		Informative: 6, Redundant: 16, ClustersPerClass: 3, ClassSep: 0.9, NoiseStd: 1.5, LabelNoise: 0.18, Seed: 110},
}

// SpecByName returns the paper spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range PaperSpecs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown spec %q", name)
}

// Generate materialises the dataset with at most maxRows instances (0 means
// paper scale). Generation is deterministic in the spec's Seed.
func (s Spec) Generate(maxRows int) (*Dataset, error) {
	n := s.Instances
	if maxRows > 0 && maxRows < n {
		n = maxRows
	}
	if n <= 0 {
		return nil, fmt.Errorf("dataset %s: no rows requested", s.Name)
	}
	if s.Classes < 2 {
		return nil, fmt.Errorf("dataset %s: need at least 2 classes", s.Name)
	}
	inf := s.Informative
	if inf <= 0 || inf > s.Features {
		return nil, fmt.Errorf("dataset %s: informative=%d out of range", s.Name, inf)
	}
	red := s.Redundant
	if red < 0 || inf+red > s.Features {
		return nil, fmt.Errorf("dataset %s: informative+redundant exceeds features", s.Name)
	}
	clusters := s.ClustersPerClass
	if clusters < 1 {
		clusters = 1
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Class-conditional cluster centroids in the informative subspace.
	centroids := make([][][]float64, s.Classes)
	for c := range centroids {
		centroids[c] = make([][]float64, clusters)
		for g := range centroids[c] {
			cent := make([]float64, inf)
			for j := range cent {
				cent[j] = rng.NormFloat64() * s.ClassSep
			}
			centroids[c][g] = cent
		}
	}
	// Redundant features copy a random informative feature with mixing noise.
	redSrc := make([]int, red)
	redMix := make([]float64, red)
	for i := range redSrc {
		redSrc[i] = rng.Intn(inf)
		redMix[i] = 0.1 + 0.3*rng.Float64()
	}

	x := mat.New(n, s.Features)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(s.Classes)
		g := rng.Intn(clusters)
		row := x.Row(i)
		cent := centroids[c][g]
		for j := 0; j < inf; j++ {
			row[j] = cent[j] + rng.NormFloat64()*s.NoiseStd
		}
		for j := 0; j < red; j++ {
			row[inf+j] = row[redSrc[j]] + rng.NormFloat64()*redMix[j]
		}
		for j := inf + red; j < s.Features; j++ {
			row[j] = rng.NormFloat64() // pure noise features
		}
		if s.LabelNoise > 0 && rng.Float64() < s.LabelNoise {
			c = (c + 1 + rng.Intn(s.Classes-1)) % s.Classes
		}
		y[i] = c
	}
	if s.Binary {
		x.Apply(func(v float64) float64 {
			if v > 0 {
				return 1
			}
			return 0
		})
	} else {
		x.Standardize()
	}
	return &Dataset{Name: s.Name, X: x, Y: y, Classes: s.Classes}, nil
}

// Split is a train/validation/test division of a dataset.
type Split struct {
	Train, Val, Test *Dataset
}

// SplitIndices divides row indices 0..n-1 into 80/10/10 train/val/test
// groups after a seeded shuffle. Use with Partition.ApplyRows to carve
// row-aligned views across all participants.
func SplitIndices(n int, seed int64) (train, val, test []int, err error) {
	if n < 10 {
		return nil, nil, nil, fmt.Errorf("dataset: %d rows is too few to split", n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nTrain := n * 8 / 10
	nVal := n / 10
	return perm[:nTrain], perm[nTrain : nTrain+nVal], perm[nTrain+nVal:], nil
}

// SelectLabels returns y restricted to the given rows, aligned with
// Partition.ApplyRows.
func SelectLabels(y []int, rows []int) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = y[r]
	}
	return out
}

// TrainValTest splits d into 80/10/10 partitions after a seeded shuffle,
// matching the paper's protocol.
func TrainValTest(d *Dataset, seed int64) (*Split, error) {
	n := d.N()
	if n < 10 {
		return nil, fmt.Errorf("dataset %s: %d rows is too few to split", d.Name, n)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	nTrain := n * 8 / 10
	nVal := n / 10
	pick := func(idx []int, suffix string) *Dataset {
		ys := make([]int, len(idx))
		for i, r := range idx {
			ys[i] = d.Y[r]
		}
		return &Dataset{
			Name:    d.Name + suffix,
			X:       d.X.SelectRows(idx),
			Y:       ys,
			Classes: d.Classes,
		}
	}
	return &Split{
		Train: pick(perm[:nTrain], "/train"),
		Val:   pick(perm[nTrain:nTrain+nVal], "/val"),
		Test:  pick(perm[nTrain+nVal:], "/test"),
	}, nil
}
