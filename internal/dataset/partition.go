package dataset

import (
	"fmt"
	"math/rand"

	"vfps/internal/mat"
)

// Partition is a vertical split of a dataset's feature space across
// participants: party p holds X.SelectCols(FeatureIdx[p]) for every
// instance, matching the VFL data layout of §II-A.
type Partition struct {
	// Parties[p] is the N×F_p local feature matrix of participant p.
	Parties []*mat.Matrix
	// FeatureIdx[p] lists the joint-space column indices party p holds.
	FeatureIdx [][]int
	// DuplicateOf[p] is the index of the party p replicates, or -1 for
	// original parties. Used by the Fig. 6 diversity study.
	DuplicateOf []int
}

// P returns the number of participants.
func (pt *Partition) P() int { return len(pt.Parties) }

// VerticalSplit randomly assigns the dataset's features to p participants in
// near-equal blocks (the paper: "randomly split each dataset into vertical
// partitions based on the number of features"). Deterministic in seed.
func VerticalSplit(d *Dataset, p int, seed int64) (*Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("dataset: party count %d must be positive", p)
	}
	if p > d.F() {
		return nil, fmt.Errorf("dataset: %d parties exceed %d features", p, d.F())
	}
	rng := rand.New(rand.NewSource(seed))
	cols := rng.Perm(d.F())
	part := &Partition{
		Parties:     make([]*mat.Matrix, p),
		FeatureIdx:  make([][]int, p),
		DuplicateOf: make([]int, p),
	}
	for i := 0; i < p; i++ {
		from := i * d.F() / p
		to := (i + 1) * d.F() / p
		idx := append([]int{}, cols[from:to]...)
		part.FeatureIdx[i] = idx
		part.Parties[i] = d.X.SelectCols(idx)
		part.DuplicateOf[i] = -1
	}
	return part, nil
}

// Select returns the partition restricted to the given parties, preserving
// their order. Used to train downstream models on a selected sub-consortium.
func (pt *Partition) Select(parties []int) (*Partition, error) {
	out := &Partition{
		Parties:     make([]*mat.Matrix, len(parties)),
		FeatureIdx:  make([][]int, len(parties)),
		DuplicateOf: make([]int, len(parties)),
	}
	for i, p := range parties {
		if p < 0 || p >= pt.P() {
			return nil, fmt.Errorf("dataset: party %d out of range [0,%d)", p, pt.P())
		}
		out.Parties[i] = pt.Parties[p]
		out.FeatureIdx[i] = pt.FeatureIdx[p]
		out.DuplicateOf[i] = pt.DuplicateOf[p]
	}
	return out, nil
}

// Joint concatenates the selected parties' features back into one matrix
// (the view a centralized model of the sub-consortium would train on).
func (pt *Partition) Joint() *mat.Matrix {
	return mat.HConcat(pt.Parties...)
}

// ApplyRows returns a partition holding only the given instance rows from
// every party (used to carve train/val/test views that stay aligned across
// participants).
func (pt *Partition) ApplyRows(rows []int) *Partition {
	out := &Partition{
		Parties:     make([]*mat.Matrix, pt.P()),
		FeatureIdx:  pt.FeatureIdx,
		DuplicateOf: pt.DuplicateOf,
	}
	for i, m := range pt.Parties {
		out.Parties[i] = m.SelectRows(rows)
	}
	return out
}

// WithDuplicates returns a new partition with `count` additional parties,
// each an exact replica of a randomly chosen original party — the Fig. 6
// protocol of manually injecting duplicate participants. Deterministic in
// seed.
func (pt *Partition) WithDuplicates(count int, seed int64) *Partition {
	rng := rand.New(rand.NewSource(seed))
	out := &Partition{
		Parties:     append([]*mat.Matrix{}, pt.Parties...),
		FeatureIdx:  append([][]int{}, pt.FeatureIdx...),
		DuplicateOf: append([]int{}, pt.DuplicateOf...),
	}
	orig := pt.P()
	for i := 0; i < count; i++ {
		src := rng.Intn(orig)
		out.Parties = append(out.Parties, pt.Parties[src].Clone())
		out.FeatureIdx = append(out.FeatureIdx, append([]int{}, pt.FeatureIdx[src]...))
		out.DuplicateOf = append(out.DuplicateOf, src)
	}
	return out
}
