package dataset

import (
	"strings"
	"testing"
)

// FuzzLoadCSV ensures arbitrary CSV input never panics the loader and that
// successful loads produce a consistent dataset.
func FuzzLoadCSV(f *testing.F) {
	f.Add("a,b,label\n1,2,x\n3,4,y\n", 2, true)
	f.Add("1,2,x\n3,4,y\n", -1, false)
	f.Add("", 0, false)
	f.Add("1\n2\n", 0, false)
	f.Add("not,numeric,x\n1,2,y\n", 2, false)
	f.Add("1,2\n3,4,5\n", 1, false)
	f.Add("∞,2,x\n1,2,y\n", 2, false)
	f.Fuzz(func(t *testing.T, data string, labelCol int, header bool) {
		d, err := LoadCSV(strings.NewReader(data), "fuzz", labelCol, header)
		if err != nil {
			return
		}
		if d.N() == 0 || d.Classes < 2 {
			t.Fatalf("accepted invalid dataset: n=%d classes=%d", d.N(), d.Classes)
		}
		if len(d.Y) != d.N() {
			t.Fatal("label count mismatch")
		}
		for _, y := range d.Y {
			if y < 0 || y >= d.Classes {
				t.Fatalf("label %d out of range", y)
			}
		}
	})
}
