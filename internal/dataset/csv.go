package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"vfps/internal/mat"
)

// LoadCSV reads a classification dataset from CSV. Every column except
// labelCol must be numeric; the label column may be any string and is mapped
// to class ids in sorted label order. If header is true the first record is
// treated as column names and skipped. labelCol may be negative to index
// from the end (-1 = last column).
func LoadCSV(r io.Reader, name string, labelCol int, header bool) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if header && len(records) > 0 {
		records = records[1:]
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv %s has no data rows", name)
	}
	width := len(records[0])
	if labelCol < 0 {
		labelCol += width
	}
	if labelCol < 0 || labelCol >= width {
		return nil, fmt.Errorf("dataset: label column %d out of range for %d columns", labelCol, width)
	}
	rows := make([][]float64, 0, len(records))
	rawLabels := make([]string, 0, len(records))
	for i, rec := range records {
		if len(rec) != width {
			return nil, fmt.Errorf("dataset: csv row %d has %d fields, want %d", i+1, len(rec), width)
		}
		row := make([]float64, 0, width-1)
		for j, field := range rec {
			if j == labelCol {
				rawLabels = append(rawLabels, field)
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv row %d col %d: %w", i+1, j, err)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	// Map labels to dense class ids in sorted order for determinism.
	uniq := map[string]bool{}
	for _, l := range rawLabels {
		uniq[l] = true
	}
	names := make([]string, 0, len(uniq))
	for l := range uniq {
		names = append(names, l)
	}
	sort.Strings(names)
	classID := make(map[string]int, len(names))
	for i, l := range names {
		classID[l] = i
	}
	y := make([]int, len(rawLabels))
	for i, l := range rawLabels {
		y[i] = classID[l]
	}
	if len(names) < 2 {
		return nil, fmt.Errorf("dataset: csv %s has a single class %q", name, names[0])
	}
	return &Dataset{Name: name, X: mat.FromRows(rows), Y: y, Classes: len(names)}, nil
}
