package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// montKeys returns the same generated key twice: once forced onto the
// Montgomery kernel and once forced onto the stdlib path. The clone shares
// the big.Int values (all read-only) but carries its own knob and its own
// precomputed CRT state.
func montKeys(t *testing.T, bits int) (on, off *PrivateKey) {
	t.Helper()
	on = key2(t, bits)
	off = &PrivateKey{
		PublicKey: on.PublicKey,
		Lambda:    on.Lambda, Mu: on.Mu, P: on.P, Q: on.Q,
	}
	if err := off.Precompute(); err != nil {
		t.Fatal(err)
	}
	on.Mont, off.Mont = 1, -1
	return on, off
}

func key2(t *testing.T, bits int) *PrivateKey {
	t.Helper()
	sk, err := GenerateKey(rand.Reader, bits)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// TestMontKnobBitIdentical drives every threaded operation — encryption
// randomizers, CRT encrypt/decrypt, AddCipher, AddCipherInto, Sum — through
// both arithmetic paths and demands identical residues.
func TestMontKnobBitIdentical(t *testing.T) {
	on, off := montKeys(t, 512)
	// Deterministic entropy so both paths sample identical randomizers.
	mkRead := func() *countingReader { return &countingReader{seed: 42} }

	msgs := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(-77), big.NewInt(123456789)}
	var csOn, csOff []*Ciphertext
	rOn, rOff := mkRead(), mkRead()
	for _, m := range msgs {
		a, err := on.Encrypt(rOn, m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := off.Encrypt(rOff, m)
		if err != nil {
			t.Fatal(err)
		}
		if a.C.Cmp(b.C) != 0 {
			t.Fatalf("Encrypt(%v): mont and stdlib ciphertexts differ", m)
		}
		csOn = append(csOn, a)
		csOff = append(csOff, b)
	}
	// Public-key encryption path (no CRT).
	pkOn, pkOff := &on.PublicKey, &off.PublicKey
	rOn, rOff = mkRead(), mkRead()
	a, err := pkOn.Encrypt(rOn, big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := pkOff.Encrypt(rOff, big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.C.Cmp(b.C) != 0 {
		t.Fatal("PublicKey.Encrypt: paths differ")
	}

	sumOn, err := pkOn.Sum(csOn...)
	if err != nil {
		t.Fatal(err)
	}
	sumOff, err := pkOff.Sum(csOff...)
	if err != nil {
		t.Fatal(err)
	}
	if sumOn.C.Cmp(sumOff.C) != 0 {
		t.Fatal("Sum: paths differ")
	}
	addOn, err := pkOn.AddCipher(csOn[0], csOn[1])
	if err != nil {
		t.Fatal(err)
	}
	addOff, err := pkOff.AddCipher(csOff[0], csOff[1])
	if err != nil {
		t.Fatal(err)
	}
	if addOn.C.Cmp(addOff.C) != 0 {
		t.Fatal("AddCipher: paths differ")
	}
	intoOn := &Ciphertext{C: new(big.Int).Set(csOn[2].C)}
	intoOff := &Ciphertext{C: new(big.Int).Set(csOff[2].C)}
	if err := pkOn.AddCipherInto(intoOn, csOn[3]); err != nil {
		t.Fatal(err)
	}
	if err := pkOff.AddCipherInto(intoOff, csOff[3]); err != nil {
		t.Fatal(err)
	}
	if intoOn.C.Cmp(intoOff.C) != 0 {
		t.Fatal("AddCipherInto: paths differ")
	}

	// Both keys decrypt both sums to the true total, through CRT-with-mont
	// and CRT-with-stdlib respectively.
	want := big.NewInt(0)
	for _, m := range msgs {
		want.Add(want, m)
	}
	for _, sk := range []*PrivateKey{on, off} {
		got, err := sk.Decrypt(sumOn)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("Decrypt(sum) = %v, want %v (Mont=%d)", got, want, sk.Mont)
		}
	}
}

// TestMontPooledRandomizersBitIdentical pins the fixed-base table paths:
// with identical entropy, windowed randomizer production (plain and CRT
// domains) yields identical values through both table representations.
func TestMontPooledRandomizersBitIdentical(t *testing.T) {
	on, off := montKeys(t, 512)
	for _, crt := range []bool{false, true} {
		var skOn, skOff *PrivateKey
		if crt {
			skOn, skOff = on, off
		}
		srcOn := newRnSource(&on.PublicKey, skOn, DefaultWindow)
		srcOff := newRnSource(&off.PublicKey, skOff, DefaultWindow)
		rOn := &countingReader{seed: 7}
		rOff := &countingReader{seed: 7}
		for i := 0; i < 4; i++ {
			a, err := srcOn.value(rOn)
			if err != nil {
				t.Fatal(err)
			}
			b, err := srcOff.value(rOff)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cmp(b) != 0 {
				t.Fatalf("crt=%v draw %d: windowed randomizers differ", crt, i)
			}
		}
	}
}

// countingReader is a tiny deterministic entropy source (xorshift on a
// counter) so two knob settings see byte-identical randomness.
type countingReader struct{ seed uint64 }

func (c *countingReader) Read(p []byte) (int, error) {
	for i := range p {
		c.seed ^= c.seed << 13
		c.seed ^= c.seed >> 7
		c.seed ^= c.seed << 17
		p[i] = byte(c.seed)
	}
	return len(p), nil
}

// TestAddCipherIntoZeroAlloc is the allocation regression gate for the
// accumulation hot path: once the accumulator has grown to full width, the
// Montgomery AddCipherInto must not allocate.
func TestAddCipherIntoZeroAlloc(t *testing.T) {
	sk := key2(t, 512)
	sk.Mont = 1
	pk := &sk.PublicKey
	a, err := sk.Encrypt(rand.Reader, big.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sk.Encrypt(rand.Reader, big.NewInt(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := pk.AddCipherInto(a, b); err != nil { // warm the accumulator
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := pk.AddCipherInto(a, b); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AddCipherInto allocates %.1f objects per op on the Montgomery path", n)
	}
}

// TestMontKnobDefault pins the tri-state resolution: negative forces stdlib,
// positive forces the kernel, zero follows the process default.
func TestMontKnobDefault(t *testing.T) {
	sk := key2(t, 128)
	pk := &sk.PublicKey
	pk.Mont = -1
	if pk.useMont() {
		t.Fatal("Mont=-1 must disable the kernel")
	}
	if pk.montN2() != nil {
		t.Fatal("montN2 must be nil with the kernel off")
	}
	pk.Mont = 1
	if !pk.useMont() {
		t.Fatal("Mont=1 must enable the kernel")
	}
	if pk.montN2() == nil {
		t.Fatal("montN2 must be available with the kernel forced on")
	}
}
