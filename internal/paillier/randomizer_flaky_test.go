package paillier

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyReader fails its first `failures` reads with a transient error, then
// delegates to crypto/rand. It reproduces the entropy hiccup that used to
// kill pool workers permanently.
type flakyReader struct {
	mu       sync.Mutex
	failures int
	reads    int
}

var errEntropy = errors.New("transient entropy failure")

func (f *flakyReader) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	if f.failures > 0 {
		f.failures--
		return 0, errEntropy
	}
	return rand.Read(p)
}

// deadReader always fails — the pathological source the backoff cap guards
// against.
type deadReader struct{ reads atomic.Int64 }

func (d *deadReader) Read(p []byte) (int, error) {
	d.reads.Add(1)
	return 0, errEntropy
}

// TestRandomizerSurvivesTransientEntropyError is the headline regression
// test: a pool whose entropy source errors once must keep its worker, count
// the failure, and refill to full depth once the source recovers. Before the
// fix, fill() returned on the first error and the pool silently died.
func TestRandomizerSurvivesTransientEntropyError(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	rz := NewRandomizer(&sk.PublicKey, &flakyReader{failures: 1}, 4, 1)
	defer rz.Close()
	deadline := time.Now().Add(10 * time.Second)
	for rz.Depth() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := rz.Depth(); d < 4 {
		t.Fatalf("pool never recovered from transient entropy error: depth %d, stats %+v", d, rz.Stats())
	}
	if s := rz.Stats(); s.Errors < 1 {
		t.Fatalf("entropy failure not counted: %+v", s)
	}
	// The pool stays fully usable.
	if _, err := sk.PublicKey.EncryptWith(rz, big.NewInt(42)); err != nil {
		t.Fatalf("EncryptWith after recovery: %v", err)
	}
}

// TestRandomizerErrorHookAndBackoff checks that every failure fires the
// error hook (the obs-counter bridge) and that a permanently dead source
// retries with bounded backoff instead of spinning — and that Close
// interrupts a worker parked in its backoff sleep.
func TestRandomizerErrorHookAndBackoff(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	dead := &deadReader{}
	rz := NewRandomizer(&sk.PublicKey, dead, 2, 1)
	var hooked atomic.Int64
	rz.SetErrorHook(func() { hooked.Add(1) })
	deadline := time.Now().Add(10 * time.Second)
	for rz.Stats().Errors < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s := rz.Stats(); s.Errors < 3 {
		t.Fatalf("worker stopped retrying: %+v", s)
	}
	if hooked.Load() < 1 {
		t.Fatal("error hook never fired")
	}
	// Backoff bounds the retry rate: after the first few attempts the worker
	// sleeps between reads, so the read count stays far below a spin loop's.
	time.Sleep(50 * time.Millisecond)
	if n := dead.reads.Load(); n > 200 {
		t.Fatalf("dead source read %d times in ~50ms — backoff not applied", n)
	}
	start := time.Now()
	rz.Close()
	waitWorkers(t, rz)
	if waited := time.Since(start); waited > 2*fillBackoffMax {
		t.Fatalf("Close took %v, want prompt interrupt of the backoff sleep", waited)
	}
	// Inline fallback reports the entropy error instead of hanging.
	if _, err := rz.Next(); !errors.Is(err, errEntropy) {
		t.Fatalf("Next with dead source: %v, want %v", err, errEntropy)
	}
}

// TestRandomizerNextCloseRace hammers Next from many goroutines while the
// pool is closed mid-flight: no send-on-closed panics (the value channel is
// never closed), and no randomizer is ever handed out twice (every returned
// *big.Int is a distinct allocation). Run under -race this also exercises
// the Depth/Stats/drain synchronisation.
func TestRandomizerNextCloseRace(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	rz := NewRandomizer(&sk.PublicKey, rand.Reader, 8, 4)
	var seen sync.Map
	var dup atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rn, err := rz.Next()
				if err != nil {
					t.Errorf("Next: %v", err)
					return
				}
				if _, loaded := seen.LoadOrStore(rn, true); loaded {
					dup.Store(true)
				}
				rz.Depth()
				rz.Stats()
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	rz.Close()
	wg.Wait()
	if dup.Load() {
		t.Fatal("a randomizer was handed out twice")
	}
	waitWorkers(t, rz)
	if d := rz.Depth(); d != 0 {
		t.Fatalf("Depth after close = %d, want 0", d)
	}
}

// TestPrefillAfterCloseAddsNothing pins the close contract: a closed pool
// accepts no new values, so the drain cannot race a concurrent Prefill into
// a stale non-zero depth.
func TestPrefillAfterCloseAddsNothing(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	rz := NewRandomizer(&sk.PublicKey, rand.Reader, 4, 1)
	rz.Close()
	waitWorkers(t, rz)
	if added, err := rz.Prefill(3); err != nil || added != 0 {
		t.Fatalf("Prefill on closed pool added %d (%v), want 0", added, err)
	}
	if len(rz.ch) != 0 {
		t.Fatalf("closed pool still buffers %d values", len(rz.ch))
	}
}

var _ io.Reader = (*flakyReader)(nil)
