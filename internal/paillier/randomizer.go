package paillier

import (
	"context"
	"io"
	"math/big"
	"sync"
	"sync/atomic"
	"time"
)

// Randomizer precomputes encryption randomizers r^n mod n² into a bounded
// pool. The modexp is ~99% of Paillier encryption cost and is independent of
// the message, so background goroutines can compute randomizers during idle
// time; Encrypt then collapses to two modular multiplications on the fast
// path. Each pooled value is consumed exactly once (channel semantics — the
// channel is never closed and is the only hand-out path, so no randomizer is
// ever issued twice), and ciphertext randomness is never reused.
//
// Production goes through an rnSource (fixed-base window tables, optionally
// CRT-accelerated for a key holder; see fixedbase.go), so even the pool-miss
// fallback is ~3× cheaper than a full modexp once the one-time table is
// built.
//
// A Randomizer is safe for concurrent use. Close stops the background
// workers and empties the pool; Next keeps working after Close by computing
// inline.
type Randomizer struct {
	pk      *PublicKey
	random  io.Reader
	src     *rnSource
	ch      chan *big.Int
	done    chan struct{}
	once    sync.Once
	closed  atomic.Bool
	fillers sync.WaitGroup // fill goroutines only (Close's drain waits on these)
	workers sync.WaitGroup // fill goroutines plus the context watcher and drain

	hits, misses, errs atomic.Int64
	errHook            atomic.Value // func(), invoked on every entropy failure
}

// PoolStats is a point-in-time snapshot of pool effectiveness: Hits counts
// draws served from the pool, Misses draws that fell back to inline
// computation, and Errors entropy-read failures (each retried with backoff,
// never fatal to a worker).
type PoolStats struct {
	Hits, Misses, Errors int64
}

// PoolOptions tunes a randomizer pool beyond the buffer/worker pair.
type PoolOptions struct {
	// Buffer bounds the pool (<= 0 → 64).
	Buffer int
	// Workers is the number of background fill goroutines (0 → 1; negative →
	// none, leaving a pure source whose Next always computes inline through
	// the window tables — useful for benchmarks and single-shot callers).
	Workers int
	// Window is the fixed-base window width in bits: 0 selects DefaultWindow,
	// negative restores classic uniform-r sampling with a full modexp per
	// randomizer (see SECURITY.md on the subgroup trade-off).
	Window int
	// Key optionally carries the private key so production runs the CRT
	// half-width path — for the key holder only.
	Key *PrivateKey
}

// fill retry backoff bounds: a transient entropy failure retries almost
// immediately, repeated failures back off exponentially to the cap so a dead
// entropy source costs ~4 wakeups/second, not a spin loop.
const (
	fillBackoffMin = time.Millisecond
	fillBackoffMax = 250 * time.Millisecond
)

// NewRandomizer starts a pool of precomputed randomizers for pk, filled by
// the given number of background workers (minimum 1) into a buffer of the
// given size (default 64 when <= 0). random must tolerate the pool's
// internally serialised concurrent reads; crypto/rand.Reader is the usual
// choice. Production uses fixed-base windowing at DefaultWindow; use
// NewRandomizerOpts to tune or disable it.
func NewRandomizer(pk *PublicKey, random io.Reader, buffer, workers int) *Randomizer {
	return NewRandomizerOpts(pk, random, PoolOptions{Buffer: buffer, Workers: workers})
}

// NewRandomizerOpts is NewRandomizer with full control over the production
// strategy (window width, CRT key, workerless source mode).
func NewRandomizerOpts(pk *PublicKey, random io.Reader, opt PoolOptions) *Randomizer {
	if opt.Buffer <= 0 {
		opt.Buffer = 64
	}
	workers := opt.Workers
	if workers == 0 {
		workers = 1
	}
	if workers < 0 {
		workers = 0
	}
	rz := &Randomizer{
		pk:     pk,
		random: random,
		src:    newRnSource(pk, opt.Key, opt.Window),
		ch:     make(chan *big.Int, opt.Buffer),
		done:   make(chan struct{}),
	}
	for w := 0; w < workers; w++ {
		rz.fillers.Add(1)
		rz.workers.Add(1)
		go rz.fill()
	}
	return rz
}

// NewRandomizerContext is NewRandomizer with the pool's lifetime additionally
// bound to ctx: cancelling ctx closes the pool, so callers that forget the
// explicit Close still release the precompute goroutines when their request
// or process context unwinds. Close remains safe to call as well.
func NewRandomizerContext(ctx context.Context, pk *PublicKey, random io.Reader, buffer, workers int) *Randomizer {
	rz := NewRandomizer(pk, random, buffer, workers)
	if ctx == nil {
		return rz
	}
	if done := ctx.Done(); done != nil {
		rz.workers.Add(1)
		go func() {
			defer rz.workers.Done()
			select {
			case <-done:
				rz.Close()
			case <-rz.done:
			}
		}()
	}
	return rz
}

// SetErrorHook installs f to be called on every entropy failure, in addition
// to the Errors counter — the bridge to an observability counter. Passing nil
// removes the hook.
func (rz *Randomizer) SetErrorHook(f func()) {
	rz.errHook.Store(f)
}

// fail records one entropy failure.
func (rz *Randomizer) fail() {
	rz.errs.Add(1)
	if f, _ := rz.errHook.Load().(func()); f != nil {
		f()
	}
}

// value computes one randomizer inline through the source.
func (rz *Randomizer) value() (*big.Int, error) {
	rn, err := rz.src.value(rz.random)
	if err != nil {
		rz.fail()
		return nil, err
	}
	return rn, nil
}

// fill is the background producer loop. Entropy-read failures are transient
// by assumption (a depleted or briefly erroring source recovers): the worker
// retries with capped exponential backoff and counts the failure instead of
// exiting, so one hiccup never silently degrades every subsequent Encrypt to
// an inline modexp. The only exit is pool close.
func (rz *Randomizer) fill() {
	defer rz.workers.Done()
	defer rz.fillers.Done()
	backoff := fillBackoffMin
	for {
		select {
		case <-rz.done:
			return
		default:
		}
		rn, err := rz.value()
		if err != nil {
			select {
			case <-rz.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > fillBackoffMax {
				backoff = fillBackoffMax
			}
			continue
		}
		backoff = fillBackoffMin
		select {
		case rz.ch <- rn:
		case <-rz.done:
			return
		}
	}
}

// Next returns a fresh randomizer, preferring the precomputed pool and
// computing inline when the pool is empty — it never blocks waiting for the
// background workers. The miss path deliberately does not rendezvous with a
// worker that may be mid-fill: pairing them up would trade one cheap
// windowed computation for a latency-coupling channel dance, and the
// mid-fill value lands in the pool for the next caller anyway.
func (rz *Randomizer) Next() (*big.Int, error) {
	select {
	case rn := <-rz.ch:
		rz.hits.Add(1)
		return rn, nil
	default:
		rz.misses.Add(1)
		return rz.value()
	}
}

// Prefill synchronously computes up to n randomizers into the pool (bounded
// by spare buffer capacity) and returns how many were added. Call it at
// startup — or between protocol rounds, when the party is otherwise idle —
// to guarantee the next burst of encryptions hits the fast path. A closed
// pool accepts nothing.
func (rz *Randomizer) Prefill(n int) (int, error) {
	added := 0
	for added < n {
		if rz.closed.Load() {
			return added, nil
		}
		rn, err := rz.value()
		if err != nil {
			return added, err
		}
		select {
		case rz.ch <- rn:
			added++
		default:
			return added, nil // buffer full
		}
	}
	return added, nil
}

// Depth reports how many precomputed randomizers are currently pooled — the
// observability gauge that shows whether the background workers keep up with
// encryption demand. A closed pool reports 0 immediately, even while the
// drain of leftover values is still in flight.
func (rz *Randomizer) Depth() int {
	if rz.closed.Load() {
		return 0
	}
	return len(rz.ch)
}

// Stats snapshots the pool's hit/miss/error counters.
func (rz *Randomizer) Stats() PoolStats {
	return PoolStats{
		Hits:   rz.hits.Load(),
		Misses: rz.misses.Load(),
		Errors: rz.errs.Load(),
	}
}

// Closed reports whether Close (or a bound context cancel) has run.
func (rz *Randomizer) Closed() bool { return rz.closed.Load() }

// Close stops the background workers and discards pooled values once the
// workers have exited, so a closed pool holds no memory and its Depth reads
// zero. Next keeps working afterwards by computing inline.
func (rz *Randomizer) Close() {
	rz.once.Do(func() {
		rz.closed.Store(true)
		close(rz.done)
		rz.workers.Add(1)
		go func() {
			defer rz.workers.Done()
			rz.fillers.Wait()
			for {
				select {
				case <-rz.ch:
				default:
					return
				}
			}
		}()
	})
}

// EncryptWith encrypts m drawing its randomizer from the pool.
func (pk *PublicKey) EncryptWith(rz *Randomizer, m *big.Int) (*Ciphertext, error) {
	em, err := pk.encode(m)
	if err != nil {
		return nil, err
	}
	rn, err := rz.Next()
	if err != nil {
		return nil, err
	}
	return pk.encryptWithRn(em, rn), nil
}
