package paillier

import (
	"context"
	"io"
	"math/big"
	"sync"
)

// Randomizer precomputes encryption randomizers r^n mod n² into a bounded
// pool. The modexp is ~99% of Paillier encryption cost and is independent of
// the message, so background goroutines can compute randomizers during idle
// time; Encrypt then collapses to two modular multiplications on the fast
// path. Each pooled value is consumed exactly once (channel semantics), so
// ciphertext randomness is never reused.
//
// A Randomizer is safe for concurrent use. Close stops the background
// workers; Next keeps working after Close by computing inline.
type Randomizer struct {
	pk      *PublicKey
	random  io.Reader
	randMu  sync.Mutex // serialises reads of random across goroutines
	ch      chan *big.Int
	done    chan struct{}
	once    sync.Once
	workers sync.WaitGroup // tracks fill goroutines (and the context watcher)
}

// NewRandomizer starts a pool of precomputed randomizers for pk, filled by
// the given number of background workers (minimum 1) into a buffer of the
// given size (default 64 when <= 0). random must tolerate the pool's
// internally serialised concurrent reads; crypto/rand.Reader is the usual
// choice.
func NewRandomizer(pk *PublicKey, random io.Reader, buffer, workers int) *Randomizer {
	if buffer <= 0 {
		buffer = 64
	}
	if workers <= 0 {
		workers = 1
	}
	rz := &Randomizer{
		pk:     pk,
		random: random,
		ch:     make(chan *big.Int, buffer),
		done:   make(chan struct{}),
	}
	for w := 0; w < workers; w++ {
		rz.workers.Add(1)
		go rz.fill()
	}
	return rz
}

// NewRandomizerContext is NewRandomizer with the pool's lifetime additionally
// bound to ctx: cancelling ctx closes the pool, so callers that forget the
// explicit Close still release the precompute goroutines when their request
// or process context unwinds. Close remains safe to call as well.
func NewRandomizerContext(ctx context.Context, pk *PublicKey, random io.Reader, buffer, workers int) *Randomizer {
	rz := NewRandomizer(pk, random, buffer, workers)
	if ctx == nil {
		return rz
	}
	if done := ctx.Done(); done != nil {
		rz.workers.Add(1)
		go func() {
			defer rz.workers.Done()
			select {
			case <-done:
				rz.Close()
			case <-rz.done:
			}
		}()
	}
	return rz
}

// value computes one randomizer inline, serialising access to the entropy
// source.
func (rz *Randomizer) value() (*big.Int, error) {
	rz.randMu.Lock()
	r, err := rz.pk.sampleR(rz.random)
	rz.randMu.Unlock()
	if err != nil {
		return nil, err
	}
	return r.Exp(r, rz.pk.N, rz.pk.N2), nil
}

func (rz *Randomizer) fill() {
	defer rz.workers.Done()
	for {
		select {
		case <-rz.done:
			return
		default:
		}
		rn, err := rz.value()
		if err != nil {
			return // entropy source failed; Next falls back to inline compute
		}
		select {
		case rz.ch <- rn:
		case <-rz.done:
			return
		}
	}
}

// Next returns a fresh randomizer, preferring the precomputed pool and
// computing inline when the pool is empty — it never blocks waiting for the
// background workers.
func (rz *Randomizer) Next() (*big.Int, error) {
	select {
	case rn := <-rz.ch:
		return rn, nil
	default:
		return rz.value()
	}
}

// Prefill synchronously computes up to n randomizers into the pool (bounded
// by spare buffer capacity) and returns how many were added. Call it at
// startup to guarantee the first burst of encryptions hits the fast path.
func (rz *Randomizer) Prefill(n int) (int, error) {
	added := 0
	for added < n {
		rn, err := rz.value()
		if err != nil {
			return added, err
		}
		select {
		case rz.ch <- rn:
			added++
		default:
			return added, nil // buffer full
		}
	}
	return added, nil
}

// Depth reports how many precomputed randomizers are currently pooled — the
// observability gauge that shows whether the background workers keep up with
// encryption demand.
func (rz *Randomizer) Depth() int { return len(rz.ch) }

// Close stops the background workers. Pending pooled values remain usable.
func (rz *Randomizer) Close() {
	rz.once.Do(func() { close(rz.done) })
}

// EncryptWith encrypts m drawing its randomizer from the pool.
func (pk *PublicKey) EncryptWith(rz *Randomizer, m *big.Int) (*Ciphertext, error) {
	em, err := pk.encode(m)
	if err != nil {
		return nil, err
	}
	rn, err := rz.Next()
	if err != nil {
		return nil, err
	}
	return pk.encryptWithRn(em, rn), nil
}
