package paillier

import (
	"bytes"
	"crypto/rand"
	"io"
	"math/big"
	"testing"

	"vfps/internal/mont"
)

// TestFBTableMatchesExp checks the radix-2^w table product against
// math/big.Exp across window widths and exponent sizes.
func TestFBTableMatchesExp(t *testing.T) {
	sk := key(t)
	mod := sk.N2
	base, err := rand.Int(rand.Reader, mod)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 6, 8} {
		for _, expBits := range []int{1, 7, 64, sk.N.BitLen() + exponentSlack} {
			// Both table representations — plain residues and the
			// Montgomery-form rows — must agree with big.Int.Exp.
			for _, ctx := range []*mont.Ctx{nil, mont.CtxFor(mod)} {
				tab := newFBTable(base, mod, expBits, w, ctx)
				for i := 0; i < 5; i++ {
					e, err := rand.Int(rand.Reader, new(big.Int).Lsh(one, uint(expBits)))
					if err != nil {
						t.Fatal(err)
					}
					want := new(big.Int).Exp(base, e, mod)
					if got := tab.exp(e); got.Cmp(want) != 0 {
						t.Fatalf("w=%d expBits=%d mont=%v: table exp mismatch", w, expBits, ctx != nil)
					}
				}
				// Exponent zero must yield the identity.
				if got := tab.exp(new(big.Int)); got.Cmp(one) != 0 {
					t.Fatalf("w=%d mont=%v: exp(0) = %v, want 1", w, ctx != nil, got)
				}
			}
		}
	}
}

// TestCRTEncMatchesExp checks that the half-width CRT production of r^n
// mod n² agrees with the direct full-width exponentiation.
func TestCRTEncMatchesExp(t *testing.T) {
	sk := key(t)
	enc := newCRTEnc(sk)
	if enc == nil {
		t.Fatal("newCRTEnc returned nil for a factored key")
	}
	for i := 0; i < 8; i++ {
		r, err := sk.sampleR(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Exp(r, sk.N, sk.N2)
		if got := enc.exp(r); got.Cmp(want) != 0 {
			t.Fatal("CRT r^n mismatch")
		}
	}
	if newCRTEnc(sk.WithoutCRT()) != nil {
		t.Fatal("newCRTEnc must be nil without factors")
	}
	if newCRTEnc(nil) != nil {
		t.Fatal("newCRTEnc(nil) must be nil")
	}
}

// TestRnSourceStrategies runs every production strategy (classic, windowed,
// CRT, CRT+windowed) and verifies each output blinds a ciphertext that
// decrypts correctly — i.e. every strategy emits true n-th residues.
func TestRnSourceStrategies(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	for _, tc := range []struct {
		name   string
		window int
		key    *PrivateKey
	}{
		{"classic", -1, nil},
		{"windowed", 0, nil},
		{"windowed-w4", 4, nil},
		{"crt", -1, sk},
		{"crt-windowed", 0, sk},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := newRnSource(pk, tc.key, tc.window)
			seen := map[string]bool{}
			for i := 0; i < 6; i++ {
				rn, err := src.value(rand.Reader)
				if err != nil {
					t.Fatal(err)
				}
				if seen[rn.String()] {
					t.Fatal("source repeated a randomizer")
				}
				seen[rn.String()] = true
				m := big.NewInt(int64(1000 + i))
				em, err := pk.encode(m)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sk.Decrypt(pk.encryptWithRn(em, rn))
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(m) != 0 {
					t.Fatalf("round trip %v -> %v", m, got)
				}
			}
		})
	}
}

// TestPrivateKeyEncrypt checks the key holder's CRT-accelerated scalar
// encryption against normal decryption and the legacy key fallback.
func TestPrivateKeyEncrypt(t *testing.T) {
	sk := key(t)
	if sk.crte == nil {
		t.Fatal("generated key is missing encryption CRT constants")
	}
	for _, m := range []int64{0, 1, -1, 123456, -98765} {
		c, err := sk.Encrypt(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Fatalf("sk.Encrypt round trip %d -> %v", m, got)
		}
	}
	legacy := sk.WithoutCRT()
	c, err := legacy.Encrypt(rand.Reader, big.NewInt(77))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sk.Decrypt(c); err != nil || got.Int64() != 77 {
		t.Fatalf("legacy sk.Encrypt round trip -> %v, %v", got, err)
	}
}

// FuzzFixedBaseExp cross-checks the window-table product against big.Int.Exp
// on arbitrary bases and exponents (the make-check smoke for the encryption
// hot path).
func FuzzFixedBaseExp(f *testing.F) {
	// Fixed odd modulus: a product of two 64-bit primes squared would be
	// ideal, but any odd modulus > 1 exercises the table arithmetic.
	mod, _ := new(big.Int).SetString("c90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74020bbea63b139b23", 16)
	f.Add([]byte{2}, []byte{5}, uint8(4))
	f.Add([]byte{0xff, 0x13}, []byte{0x80, 0x00, 0x01}, uint8(6))
	f.Fuzz(func(t *testing.T, baseB, expB []byte, w uint8) {
		window := int(w%8) + 1
		if len(expB) > 64 {
			expB = expB[:64]
		}
		base := new(big.Int).SetBytes(baseB)
		e := new(big.Int).SetBytes(expB)
		want := new(big.Int).Exp(new(big.Int).Mod(base, mod), e, mod)
		tab := newFBTable(base, mod, max(e.BitLen(), 1), window, nil)
		if got := tab.exp(e); got.Cmp(want) != 0 {
			t.Fatalf("base=%x e=%x w=%d: got %v want %v", baseB, expB, window, got, want)
		}
		mtab := newFBTable(base, mod, max(e.BitLen(), 1), window, mont.CtxFor(mod))
		if got := mtab.exp(e); got.Cmp(want) != 0 {
			t.Fatalf("base=%x e=%x w=%d (mont): got %v want %v", baseB, expB, window, got, want)
		}
	})
}

// TestSampleExpWidth pins the exponent sampler's contract: expBits-wide,
// non-zero, and resilient to a reader that first returns zeros.
func TestSampleExpWidth(t *testing.T) {
	sk := key(t)
	src := newRnSource(&sk.PublicKey, nil, 0)
	zeroThenRand := io.MultiReader(bytes.NewReader(make([]byte, (src.expBits+7)/8)), rand.Reader)
	e, err := src.sampleExp(zeroThenRand)
	if err != nil {
		t.Fatal(err)
	}
	if e.Sign() == 0 {
		t.Fatal("sampleExp returned zero")
	}
	if e.BitLen() > src.expBits {
		t.Fatalf("exponent %d bits, want <= %d", e.BitLen(), src.expBits)
	}
}
