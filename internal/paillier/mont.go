package paillier

import (
	"math/big"
	"os"
	"sync"

	"vfps/internal/mont"
)

// The Montgomery kernel (internal/mont) replaces division-based big.Int
// reduction on the modular-multiplication hot paths: fixed-base table
// products (operands chained in Montgomery form across the whole windowed
// product), Garner recombination, and ciphertext accumulation
// (AddCipher/AddCipherInto/Sum). Plain modular exponentiations deliberately
// stay on big.Int.Exp, which already runs an assembly Montgomery ladder
// internally and cannot be beaten by re-entering/leaving the form per call
// (DESIGN.md §12). Every path computes the exact same residues, so
// ciphertexts, sums and selections are bit-identical with the kernel on or
// off; the knob exists for auditability (the stdlib path is the reference)
// and for machines where the portable rows may not pay off.

var (
	montEnvOnce sync.Once
	montEnvOn   bool
)

// montDefault resolves the process-wide default: on, unless VFPS_MONT is set
// to 0/false/off.
func montDefault() bool {
	montEnvOnce.Do(func() {
		switch os.Getenv("VFPS_MONT") {
		case "0", "false", "off":
			montEnvOn = false
		default:
			montEnvOn = true
		}
	})
	return montEnvOn
}

// useMont resolves the key's tri-state Mont knob.
func (pk *PublicKey) useMont() bool {
	if pk.Mont != 0 {
		return pk.Mont > 0
	}
	return montDefault()
}

// montN2 returns the shared Montgomery context for n², or nil when the knob
// is off (callers fall back to math/big).
func (pk *PublicKey) montN2() *mont.Ctx {
	if !pk.useMont() {
		return nil
	}
	return mont.CtxFor(pk.N2)
}

// newMontCtx builds a private context for a key-local modulus (p², q²),
// swallowing the only possible failure (modulus too wide) into nil.
func newMontCtx(m *big.Int) *mont.Ctx {
	c, err := mont.NewCtx(m)
	if err != nil {
		return nil
	}
	return c
}

// montSum folds the ciphertext product in a single fixed-width accumulator:
// one CIOS pass per ciphertext (the operands stay un-normalised limb vectors
// across the whole reduction) plus one final pass against R^(t+1) to repair
// the accumulated R^(−t) deficit, converting back to a big.Int exactly once.
// Compare the stdlib fold's full Mul+Mod per element.
func (pk *PublicKey) montSum(ctx *mont.Ctx, cs []*Ciphertext) (*Ciphertext, error) {
	k := ctx.K()
	var accBuf, opBuf [mont.MaxLimbs]big.Word
	acc := ctx.SetBig(accBuf[:k], cs[0].C)
	op := opBuf[:k]
	for _, c := range cs[1:] {
		if err := pk.validate(c); err != nil {
			return nil, err
		}
		ctx.MulREDC(acc, acc, ctx.SetBig(op, c.C))
	}
	ctx.MulREDC(acc, acc, ctx.RPow(len(cs)))
	return &Ciphertext{C: ctx.PutBig(new(big.Int), acc)}, nil
}
