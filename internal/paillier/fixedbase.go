package paillier

import (
	"io"
	"math/big"
	"sync"

	"vfps/internal/mont"
)

// This file removes the encryption modexp wall. A Paillier encryption is
// c = g^m · r^n mod n²; with g = n+1 the g^m part is two mulmods, so ~99% of
// the cost is the randomizer r^n mod n². Two orthogonal accelerations apply:
//
//  1. Fixed-base windowing. Instead of a fresh uniform r per ciphertext,
//     sample one r_base ∈ Z_n* per pool, precompute a radix-2^w table of
//     powers of g_r = r_base^n mod n², and derive each randomizer as
//     g_r^e = (r_base^e)^n for a fresh random exponent e. With window w and
//     L-bit exponents the per-randomizer cost drops from a full modexp
//     (~1.5·L modular multiplications) to ⌈L/w⌉ multiplications against the
//     table — ~3× wall-clock at 1024-bit keys with w=6 (see BENCH_encrypt).
//     The randomizer then ranges over the cyclic subgroup ⟨r_base^n⟩ rather
//     than all n-th residues — the standard precomputation trade-off,
//     documented in SECURITY.md; set Window < 0 to keep uniform sampling.
//
//  2. CRT encryption for the key holder. When the private key's factors are
//     present, r^n mod n² splits into two half-width exponentiations mod p²
//     and q² (with exponents reduced mod p(p−1) and q(q−1)) recombined by
//     Garner — the same machinery as CRT decryption, ~1.6× serial. It
//     composes with the window tables: half-width tables mod p² and q².

// DefaultWindow is the fixed-base window width in bits. 6 balances table
// build time and memory (⌈L/6⌉·64 bigints, ~3 MB at 1024-bit keys) against
// the per-randomizer multiplication count.
const DefaultWindow = 6

// maxWindow caps the table width: beyond 8 bits the 2^w-entry rows cost more
// memory and build time than the shrinking multiplication count repays.
const maxWindow = 8

// exponentSlack is the extra exponent bits beyond |n| sampled for fixed-base
// randomizers, so the derived group element is statistically close to uniform
// over the subgroup ⟨r_base⟩ despite its order being unknown.
const exponentSlack = 64

// fbTable is a radix-2^w fixed-base exponentiation table:
// rows[j][d] = base^(d·2^(j·w)) mod m. Exponentiation by an L-bit exponent is
// then a product of ⌈L/w⌉ table entries — no squarings, no full modexp. The
// table is read-only after newFBTable, so concurrent exp calls share it.
//
// With a Montgomery context the entries are stored in Montgomery form
// (flattened per row, entry d at mrows[j][d·k:(d+1)·k]): since
// MulREDC(a·R, b·R) = (a·b)·R, Montgomery-form entries chain through the
// whole per-window product with no per-step conversions, and the accumulator
// leaves Montgomery form exactly once at the end. That turns the table
// product — the windowed-encryption hot loop — from ⌈L/w⌉ divisions into
// ⌈L/w⌉ CIOS passes.
type fbTable struct {
	window int
	mod    *big.Int
	rows   [][]*big.Int // plain residues (mctx == nil)

	mctx  *mont.Ctx    // non-nil → Montgomery-form table
	mrows [][]big.Word // Montgomery-form rows, flattened
}

// newFBTable precomputes the table for exponents up to expBits bits; a
// non-nil ctx builds it in Montgomery form.
func newFBTable(base, mod *big.Int, expBits, window int, ctx *mont.Ctx) *fbTable {
	nRows := (expBits + window - 1) / window
	t := &fbTable{window: window, mod: mod, mctx: ctx}
	if ctx != nil {
		k := ctx.K()
		t.mrows = make([][]big.Word, nRows)
		cur := ctx.NewNat() // base^(2^(j·w)) in Montgomery form as j advances
		ctx.ToMont(cur, ctx.SetBig(cur, base))
		for j := 0; j < nRows; j++ {
			row := make([]big.Word, (1<<window)*k)
			copy(row[0:k], ctx.One())
			copy(row[k:2*k], cur)
			for d := 2; d < 1<<window; d++ {
				ctx.MulREDC(row[d*k:(d+1)*k], row[(d-1)*k:d*k], cur)
			}
			t.mrows[j] = row
			for s := 0; s < window; s++ {
				ctx.SqrREDC(cur, cur)
			}
		}
		return t
	}
	t.rows = make([][]*big.Int, nRows)
	cur := new(big.Int).Mod(base, mod) // base^(2^(j·w)) as j advances
	for j := 0; j < nRows; j++ {
		row := make([]*big.Int, 1<<window)
		row[0] = one
		row[1] = new(big.Int).Set(cur)
		for d := 2; d < len(row); d++ {
			row[d] = new(big.Int).Mul(row[d-1], cur)
			row[d].Mod(row[d], mod)
		}
		t.rows[j] = row
		for s := 0; s < window; s++ {
			cur.Mul(cur, cur)
			cur.Mod(cur, mod)
		}
	}
	return t
}

// exp computes base^e mod m as the product of one table entry per window.
func (t *fbTable) exp(e *big.Int) *big.Int {
	if t.mctx != nil {
		return t.expMont(e)
	}
	acc := new(big.Int).Set(one)
	for j := range t.rows {
		if d := t.digit(e, j); d != 0 {
			acc.Mul(acc, t.rows[j][d])
			acc.Mod(acc, t.mod)
		}
	}
	return acc
}

// expMont is exp over the Montgomery-form table: the accumulator stays in
// Montgomery form across every window and converts back exactly once.
func (t *fbTable) expMont(e *big.Int) *big.Int {
	ctx := t.mctx
	k := ctx.K()
	var accBuf [mont.MaxLimbs]big.Word
	acc := accBuf[:k]
	copy(acc, ctx.One())
	for j := range t.mrows {
		if d := t.digit(e, j); d != 0 {
			ctx.MulREDC(acc, acc, t.mrows[j][d*k:(d+1)*k])
		}
	}
	ctx.FromMont(acc, acc)
	return ctx.PutBig(new(big.Int), acc)
}

// digit extracts e's j-th base-2^w digit.
func (t *fbTable) digit(e *big.Int, j int) int {
	d := 0
	for b := 0; b < t.window; b++ {
		if e.Bit(j*t.window+b) == 1 {
			d |= 1 << b
		}
	}
	return d
}

// crtEnc caches the constants of CRT-accelerated randomizer production for a
// key holder: exponents n reduced mod λ(p²) and λ(q²), and the Garner
// recombination constant lifting (x mod p², x mod q²) back to mod n².
// Read-only after newCRTEnc.
type crtEnc struct {
	p2, q2 *big.Int // p², q²
	np, nq *big.Int // n mod p(p−1), n mod q(q−1)
	p2inv  *big.Int // (p²)⁻¹ mod q²

	key      *PublicKey // back-pointer for the Mont knob
	cp2, cq2 *mont.Ctx  // Montgomery contexts for p², q² (nil → stdlib)
}

// newCRTEnc derives the encryption-side CRT constants; nil when the key does
// not carry its factorisation.
func newCRTEnc(sk *PrivateKey) *crtEnc {
	if sk == nil || sk.P == nil || sk.Q == nil {
		return nil
	}
	p2 := new(big.Int).Mul(sk.P, sk.P)
	q2 := new(big.Int).Mul(sk.Q, sk.Q)
	// λ(p²) = p(p−1); r^n mod p² only needs n mod p(p−1) in the exponent.
	lp := new(big.Int).Mul(sk.P, new(big.Int).Sub(sk.P, one))
	lq := new(big.Int).Mul(sk.Q, new(big.Int).Sub(sk.Q, one))
	p2inv := new(big.Int).ModInverse(p2, q2)
	if p2inv == nil {
		return nil
	}
	return &crtEnc{
		p2: p2, q2: q2,
		np: new(big.Int).Mod(sk.N, lp), nq: new(big.Int).Mod(sk.N, lq),
		p2inv: p2inv,
		key:   &sk.PublicKey,
		cp2:   newMontCtx(p2), cq2: newMontCtx(q2),
	}
}

// useMont reports whether this key's CRT-encryption paths run the Montgomery
// kernel (knob on and both half-width contexts available).
func (e *crtEnc) useMont() bool {
	return e.key.useMont() && e.cp2 != nil && e.cq2 != nil
}

// combine lifts (xp mod p², xq mod q²) to mod n² by Garner.
func (e *crtEnc) combine(xp, xq *big.Int) *big.Int {
	u := new(big.Int).Sub(xq, xp)
	if e.useMont() {
		e.cq2.ModMulBig(u, u, e.p2inv)
	} else {
		u.Mul(u, e.p2inv)
		u.Mod(u, e.q2)
	}
	u.Mul(u, e.p2)
	return u.Add(u, xp)
}

// exp computes r^n mod n² through the two half-width moduli. The
// exponentiations stay on big.Int.Exp regardless of the Mont knob — Exp is
// already a Montgomery ladder internally (DESIGN.md §12) — while combine's
// Garner multiply routes through the kernel.
func (e *crtEnc) exp(r *big.Int) *big.Int {
	xp := new(big.Int).Mod(r, e.p2)
	xp.Exp(xp, e.np, e.p2)
	xq := new(big.Int).Mod(r, e.q2)
	xq.Exp(xq, e.nq, e.q2)
	return e.combine(xp, xq)
}

// rnSource produces encryption randomizers r^n mod n², picking the fastest
// strategy available at construction: fixed-base window tables (optionally in
// the CRT domain for a key holder), CRT exponentiation, or the classic
// uniform-r modexp. Entropy reads and the lazy table build are serialised
// internally; the table products run outside the lock, so concurrent
// producers scale.
type rnSource struct {
	pk      *PublicKey
	enc     *crtEnc // non-nil → CRT production (key holder)
	window  int     // <= 0 → classic uniform sampling
	expBits int

	mu     sync.Mutex
	built  bool
	tab    *fbTable // plain window table mod n² (nil in CRT mode)
	tp, tq *fbTable // CRT window tables mod p², q²
}

// newRnSource builds a source for pk. window 0 selects DefaultWindow,
// negative disables fixed-base derivation; sk optionally enables the CRT
// path. The window tables are built lazily on first use (and rebuilt never),
// so construction is cheap and a pool's background workers absorb the
// one-time build cost off the caller's latency path.
func newRnSource(pk *PublicKey, sk *PrivateKey, window int) *rnSource {
	if window == 0 {
		window = DefaultWindow
	}
	if window > maxWindow {
		window = maxWindow
	}
	return &rnSource{
		pk:      pk,
		enc:     newCRTEnc(sk),
		window:  window,
		expBits: pk.N.BitLen() + exponentSlack,
	}
}

// build samples r_base, computes g_r = r_base^n mod n² and precomputes the
// window tables. Called with s.mu held; an entropy failure leaves the source
// unbuilt so the next call retries.
func (s *rnSource) build(random io.Reader) error {
	rb, err := s.pk.sampleR(random)
	if err != nil {
		return err
	}
	var gr *big.Int
	if s.enc != nil {
		gr = s.enc.exp(rb)
		var cp2, cq2 *mont.Ctx
		if s.enc.useMont() {
			cp2, cq2 = s.enc.cp2, s.enc.cq2
		}
		s.tp = newFBTable(gr, s.enc.p2, s.expBits, s.window, cp2)
		s.tq = newFBTable(gr, s.enc.q2, s.expBits, s.window, cq2)
	} else {
		gr = new(big.Int).Exp(rb, s.pk.N, s.pk.N2)
		s.tab = newFBTable(gr, s.pk.N2, s.expBits, s.window, s.pk.montN2())
	}
	s.built = true
	return nil
}

// sampleExp draws a uniform non-zero expBits-bit exponent. Called with s.mu
// held (the entropy source may not be concurrency safe).
func (s *rnSource) sampleExp(random io.Reader) (*big.Int, error) {
	buf := make([]byte, (s.expBits+7)/8)
	for {
		if _, err := io.ReadFull(random, buf); err != nil {
			return nil, err
		}
		e := new(big.Int).SetBytes(buf)
		if s.expBits%8 != 0 {
			e.Rsh(e, uint(8-s.expBits%8))
		}
		// e = 0 would yield the identity randomizer (an unblinded
		// ciphertext); probability 2^-expBits, but reject it anyway.
		if e.Sign() != 0 {
			return e, nil
		}
	}
}

// value produces one randomizer r^n mod n².
func (s *rnSource) value(random io.Reader) (*big.Int, error) {
	if s.window <= 0 {
		s.mu.Lock()
		r, err := s.pk.sampleR(random)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if s.enc != nil {
			return s.enc.exp(r), nil
		}
		return r.Exp(r, s.pk.N, s.pk.N2), nil
	}
	s.mu.Lock()
	if !s.built {
		if err := s.build(random); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	e, err := s.sampleExp(random)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if s.enc != nil {
		return s.enc.combine(s.tp.exp(e), s.tq.exp(e)), nil
	}
	return s.tab.exp(e), nil
}
