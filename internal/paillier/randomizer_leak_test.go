package paillier

import (
	"context"
	"crypto/rand"
	"testing"
	"time"
)

// waitWorkers fails the test if the pool's background goroutines are still
// running after the deadline.
func waitWorkers(t *testing.T, rz *Randomizer) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		rz.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("randomizer workers still running after close")
	}
}

// TestRandomizerCloseStopsWorkers verifies Close releases every fill
// goroutine, including workers parked on a full buffer.
func TestRandomizerCloseStopsWorkers(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	rz := NewRandomizer(&sk.PublicKey, rand.Reader, 4, 3)
	// Let the workers fill the buffer so at least some of them block in the
	// send path before Close fires.
	deadline := time.Now().Add(10 * time.Second)
	for rz.Depth() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rz.Close()
	waitWorkers(t, rz)
	// A closed pool reports zero depth (the obs gauge must not show stale
	// precomputed values) and its buffer is drained once the workers exit.
	if d := rz.Depth(); d != 0 {
		t.Fatalf("Depth after Close = %d, want 0", d)
	}
	if len(rz.ch) != 0 {
		t.Fatalf("pool buffer holds %d values after Close drain", len(rz.ch))
	}
	// Next falls back to inline compute after Close.
	for i := 0; i < 6; i++ {
		if _, err := rz.Next(); err != nil {
			t.Fatalf("Next after Close: %v", err)
		}
	}
}

// TestRandomizerContextCancelStopsWorkers verifies the ctx-bound constructor
// tears the pool down on cancellation without an explicit Close.
func TestRandomizerContextCancelStopsWorkers(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rz := NewRandomizerContext(ctx, &sk.PublicKey, rand.Reader, 4, 2)
	cancel()
	waitWorkers(t, rz)
	if d := rz.Depth(); d != 0 {
		t.Fatalf("Depth after context cancel = %d, want 0", d)
	}
	if _, err := rz.Next(); err != nil {
		t.Fatalf("Next after cancel: %v", err)
	}
	rz.Close() // explicit Close after cancel must stay a no-op
}

// TestRandomizerCloseUnblocksWatcher checks the inverse path: an explicit
// Close with a still-live context must also release the watcher goroutine.
func TestRandomizerCloseUnblocksWatcher(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rz := NewRandomizerContext(ctx, &sk.PublicKey, rand.Reader, 2, 1)
	rz.Close()
	waitWorkers(t, rz)
}
