package paillier

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// testKey caches one key pair: key generation dominates the suite otherwise.
var (
	keyOnce sync.Once
	testSK  *PrivateKey
)

func key(t testing.TB) *PrivateKey {
	keyOnce.Do(func() {
		sk, err := GenerateKey(rand.Reader, 512)
		if err != nil {
			panic(err)
		}
		testSK = sk
	})
	if testSK == nil {
		t.Fatal("key generation failed")
	}
	return testSK
}

func encT(t testing.TB, pk *PublicKey, m int64) *Ciphertext {
	c, err := pk.Encrypt(rand.Reader, big.NewInt(m))
	if err != nil {
		t.Fatalf("Encrypt(%d): %v", m, err)
	}
	return c
}

func decT(t testing.TB, sk *PrivateKey, c *Ciphertext) int64 {
	m, err := sk.Decrypt(c)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	return m.Int64()
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := key(t)
	for _, m := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40)} {
		if got := decT(t, sk, encT(t, &sk.PublicKey, m)); got != m {
			t.Fatalf("round trip %d -> %d", m, got)
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	sk := key(t)
	c1 := encT(t, &sk.PublicKey, 7)
	c2 := encT(t, &sk.PublicKey, 7)
	if c1.C.Cmp(c2.C) == 0 {
		t.Fatal("two encryptions of the same message should differ")
	}
}

func TestAddCipher(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	c, err := pk.AddCipher(encT(t, pk, 30), encT(t, pk, 12))
	if err != nil {
		t.Fatal(err)
	}
	if got := decT(t, sk, c); got != 42 {
		t.Fatalf("30+12 = %d", got)
	}
}

func TestAddCipherNegative(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	c, err := pk.AddCipher(encT(t, pk, 10), encT(t, pk, -25))
	if err != nil {
		t.Fatal(err)
	}
	if got := decT(t, sk, c); got != -15 {
		t.Fatalf("10-25 = %d", got)
	}
}

func TestAddPlain(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	c, err := pk.AddPlain(encT(t, pk, 100), big.NewInt(-40))
	if err != nil {
		t.Fatal(err)
	}
	if got := decT(t, sk, c); got != 60 {
		t.Fatalf("100-40 = %d", got)
	}
}

func TestMulPlain(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	for _, tc := range []struct{ m, k, want int64 }{
		{6, 7, 42}, {6, -7, -42}, {-6, 7, -42}, {5, 0, 0},
	} {
		c, err := pk.MulPlain(encT(t, pk, tc.m), big.NewInt(tc.k))
		if err != nil {
			t.Fatal(err)
		}
		if got := decT(t, sk, c); got != tc.want {
			t.Fatalf("%d*%d = %d, want %d", tc.m, tc.k, got, tc.want)
		}
	}
}

func TestSum(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	cs := []*Ciphertext{encT(t, pk, 1), encT(t, pk, 2), encT(t, pk, 3), encT(t, pk, -10)}
	c, err := pk.Sum(cs...)
	if err != nil {
		t.Fatal(err)
	}
	if got := decT(t, sk, c); got != -4 {
		t.Fatalf("sum = %d, want -4", got)
	}
}

func TestSumEmpty(t *testing.T) {
	sk := key(t)
	if _, err := sk.PublicKey.Sum(); err == nil {
		t.Fatal("expected error for empty Sum")
	}
}

func TestMessageRange(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	tooBig := new(big.Int).Set(pk.N) // n itself is out of the signed range
	if _, err := pk.Encrypt(rand.Reader, tooBig); err == nil {
		t.Fatal("expected range error")
	}
}

func TestCiphertextValidation(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	bad := []*Ciphertext{
		nil,
		{C: nil},
		{C: big.NewInt(0)},
		{C: new(big.Int).Set(pk.N2)},
		{C: new(big.Int).Neg(big.NewInt(5))},
	}
	for i, c := range bad {
		if _, err := sk.Decrypt(c); err == nil {
			t.Fatalf("case %d: expected decrypt error", i)
		}
		if _, err := pk.AddCipher(c, encT(t, pk, 1)); err == nil {
			t.Fatalf("case %d: expected add error", i)
		}
	}
}

func TestSerialization(t *testing.T) {
	sk := key(t)
	c := encT(t, &sk.PublicKey, 123456)
	rt := CiphertextFromBytes(c.Bytes())
	if got := decT(t, sk, rt); got != 123456 {
		t.Fatalf("serialized round trip got %d", got)
	}
}

func TestCiphertextSize(t *testing.T) {
	sk := key(t)
	size := sk.PublicKey.CiphertextSize()
	// n is 512 bits, n² is ~1024 bits, so ~128 bytes.
	if size < 120 || size > 136 {
		t.Fatalf("unexpected ciphertext size %d", size)
	}
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 8); err == nil {
		t.Fatal("expected error for tiny key")
	}
}

func TestKeysAreDistinct(t *testing.T) {
	a, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	if a.N.Cmp(b.N) == 0 {
		t.Fatal("independent keys should have distinct moduli")
	}
}

// Property: Dec(Enc(a) ⊕ Enc(b)) == a + b for random signed a, b.
func TestHomomorphicAddProperty(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	f := func(a, b int32) bool {
		ca := encT(t, pk, int64(a))
		cb := encT(t, pk, int64(b))
		c, err := pk.AddCipher(ca, cb)
		if err != nil {
			return false
		}
		return decT(t, sk, c) == int64(a)+int64(b)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: mrand.New(mrand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Dec(MulPlain(Enc(a), k)) == a*k.
func TestHomomorphicScaleProperty(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	f := func(a, k int16) bool {
		c, err := pk.MulPlain(encT(t, pk, int64(a)), big.NewInt(int64(k)))
		if err != nil {
			return false
		}
		return decT(t, sk, c) == int64(a)*int64(k)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: mrand.New(mrand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	sk := key(b)
	m := big.NewInt(123456789)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sk.PublicKey.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	sk := key(b)
	c := encT(b, &sk.PublicKey, 123456789)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddCipher(b *testing.B) {
	sk := key(b)
	pk := &sk.PublicKey
	c1 := encT(b, pk, 1)
	c2 := encT(b, pk, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pk.AddCipher(c1, c2); err != nil {
			b.Fatal(err)
		}
	}
}
