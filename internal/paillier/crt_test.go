package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// TestCRTMatchesLambdaPath cross-checks the CRT decryption fast path against
// the classic λ/μ path over positive, negative and boundary plaintexts.
func TestCRTMatchesLambdaPath(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !sk.HasCRT() {
		t.Fatal("generated key should carry CRT constants")
	}
	slow := sk.WithoutCRT()
	if slow.HasCRT() {
		t.Fatal("WithoutCRT must disable the fast path")
	}
	max := new(big.Int).Sub(sk.maxMessage(), big.NewInt(1))
	cases := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(-1),
		big.NewInt(123456789),
		big.NewInt(-987654321),
		max,
		new(big.Int).Neg(max),
	}
	for i := 0; i < 32; i++ {
		m, err := rand.Int(rand.Reader, sk.maxMessage())
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			m.Neg(m)
		}
		cases = append(cases, m)
	}
	for _, m := range cases {
		c, err := sk.Encrypt(rand.Reader, m)
		if err != nil {
			t.Fatalf("encrypting %v: %v", m, err)
		}
		fast, err := sk.Decrypt(c)
		if err != nil {
			t.Fatalf("CRT decrypting %v: %v", m, err)
		}
		ref, err := slow.Decrypt(c)
		if err != nil {
			t.Fatalf("λ/μ decrypting %v: %v", m, err)
		}
		if fast.Cmp(m) != 0 {
			t.Fatalf("CRT path: got %v want %v", fast, m)
		}
		if fast.Cmp(ref) != 0 {
			t.Fatalf("paths disagree: CRT %v vs λ/μ %v", fast, ref)
		}
	}
}

// TestCRTHomomorphicSum checks that CRT decryption also agrees after
// homomorphic additions (the protocol's actual decryption inputs).
func TestCRTHomomorphicSum(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{41, -7, 1000003, -250000, 9}
	var want int64
	cs := make([]*Ciphertext, len(vals))
	for i, v := range vals {
		want += v
		c, err := sk.Encrypt(rand.Reader, big.NewInt(v))
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	sum, err := sk.Sum(cs...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != want {
		t.Fatalf("sum: got %v want %d", got, want)
	}
	ref, err := sk.WithoutCRT().Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cmp(got) != 0 {
		t.Fatalf("paths disagree on aggregate: %v vs %v", got, ref)
	}
}

// TestPrecomputeRejectsBadFactors guards the factor consistency check.
func TestPrecomputeRejectsBadFactors(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	bad := &PrivateKey{PublicKey: sk.PublicKey, Lambda: sk.Lambda, Mu: sk.Mu,
		P: new(big.Int).Add(sk.P, big.NewInt(2)), Q: sk.Q}
	if err := bad.Precompute(); err == nil {
		t.Fatal("Precompute accepted inconsistent factors")
	}
}

// TestAddCipherInto checks the in-place accumulate variant against AddCipher
// and that src operands are left untouched.
func TestAddCipherInto(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := sk.Encrypt(rand.Reader, big.NewInt(17))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.Encrypt(rand.Reader, big.NewInt(25))
	if err != nil {
		t.Fatal(err)
	}
	c2Orig := new(big.Int).Set(c2.C)
	ref, err := sk.AddCipher(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.AddCipherInto(c1, c2); err != nil {
		t.Fatal(err)
	}
	if c1.C.Cmp(ref.C) != 0 {
		t.Fatal("AddCipherInto disagrees with AddCipher")
	}
	if c2.C.Cmp(c2Orig) != 0 {
		t.Fatal("AddCipherInto modified its src operand")
	}
	m, err := sk.Decrypt(c1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 42 {
		t.Fatalf("in-place sum decrypts to %v, want 42", m)
	}
	if err := sk.AddCipherInto(c1, &Ciphertext{C: big.NewInt(0)}); err == nil {
		t.Fatal("AddCipherInto accepted an out-of-range src")
	}
}
