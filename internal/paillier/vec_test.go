package paillier

import (
	"context"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
)

func TestEncryptVecDecryptVecRoundTrip(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	ctx := context.Background()
	ms := make([]*big.Int, 37)
	for i := range ms {
		ms[i] = big.NewInt(int64(i*i) - 100)
	}
	for _, workers := range []int{1, 4} {
		cs, err := pk.EncryptVec(ctx, rand.Reader, nil, ms, workers)
		if err != nil {
			t.Fatalf("EncryptVec(workers=%d): %v", workers, err)
		}
		got, err := sk.DecryptVec(ctx, cs, workers)
		if err != nil {
			t.Fatalf("DecryptVec(workers=%d): %v", workers, err)
		}
		for i := range ms {
			if got[i].Cmp(ms[i]) != 0 {
				t.Fatalf("workers=%d: item %d round trip %v -> %v", workers, i, ms[i], got[i])
			}
		}
	}
}

func TestEncryptVecPooledRoundTrip(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	ctx := context.Background()
	rz := NewRandomizer(pk, rand.Reader, 16, 1)
	defer rz.Close()
	ms := []*big.Int{big.NewInt(0), big.NewInt(7), big.NewInt(-42)}
	cs, err := pk.EncryptVec(ctx, rand.Reader, rz, ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptVec(ctx, cs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if got[i].Cmp(ms[i]) != 0 {
			t.Fatalf("pooled round trip %v -> %v", ms[i], got[i])
		}
	}
}

func TestEncryptVecHonorsCancelledContext(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms := make([]*big.Int, 64)
	for i := range ms {
		ms[i] = big.NewInt(int64(i))
	}
	if _, err := pk.EncryptVec(ctx, rand.Reader, nil, ms, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("EncryptVec on cancelled ctx = %v, want context.Canceled", err)
	}
	cs := make([]*Ciphertext, 64)
	for i := range cs {
		cs[i] = encT(t, pk, int64(i))
	}
	if _, err := sk.DecryptVec(ctx, cs, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("DecryptVec on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestRandomizerPrefillAndUniqueness(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	// workers=0 is floored to 1; a tiny buffer exercises the bounded pool.
	rz := NewRandomizer(pk, rand.Reader, 4, 0)
	defer rz.Close()
	if added, err := rz.Prefill(100); err != nil {
		t.Fatal(err)
	} else if added > 4 {
		t.Fatalf("Prefill overfilled the buffer: %d > 4", added)
	}
	// Each pooled randomizer is consumed once: encrypting the same message
	// repeatedly must never produce equal ciphertexts.
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		c, err := pk.EncryptWith(rz, big.NewInt(5))
		if err != nil {
			t.Fatal(err)
		}
		s := string(c.Bytes())
		if seen[s] {
			t.Fatal("randomizer reuse: identical ciphertexts for the same message")
		}
		seen[s] = true
		if got := decT(t, sk, c); got != 5 {
			t.Fatalf("EncryptWith round trip -> %d", got)
		}
	}
}

func TestRandomizerNextWorksAfterClose(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	rz := NewRandomizer(pk, rand.Reader, 2, 1)
	rz.Close()
	rz.Close() // idempotent
	c, err := pk.EncryptWith(rz, big.NewInt(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := decT(t, sk, c); got != 9 {
		t.Fatalf("post-Close round trip -> %d", got)
	}
}

func TestParseCiphertext(t *testing.T) {
	sk := key(t)
	pk := &sk.PublicKey
	valid := encT(t, pk, 123)
	tooBig := new(big.Int).Add(pk.N2, big.NewInt(1))
	cases := []struct {
		name string
		in   []byte
		ok   bool
	}{
		{"valid", valid.Bytes(), true},
		{"empty", nil, false},
		{"zero-length", []byte{}, false},
		{"zero value", []byte{0}, false},
		{"equal n2", pk.N2.Bytes(), false},
		{"above n2", tooBig.Bytes(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := pk.ParseCiphertext(tc.in)
			if tc.ok {
				if err != nil {
					t.Fatalf("ParseCiphertext: %v", err)
				}
				if got := decT(t, sk, c); got != 123 {
					t.Fatalf("parsed ciphertext decrypts to %d", got)
				}
				return
			}
			if !errors.Is(err, ErrCiphertextBytes) {
				t.Fatalf("ParseCiphertext(%q) err = %v, want ErrCiphertextBytes", tc.name, err)
			}
		})
	}
}

// --- vector-kernel benchmarks (the perf numbers behind BENCH_parallel.json
// come from the experiments.Parallel harness; these isolate the kernels) ---

func benchKey(b *testing.B, bits int) *PrivateKey {
	b.Helper()
	sk, err := GenerateKey(rand.Reader, bits)
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

func benchMessages(n int) []*big.Int {
	ms := make([]*big.Int, n)
	for i := range ms {
		ms[i] = big.NewInt(int64(i % 1000))
	}
	return ms
}

func BenchmarkEncryptVec(b *testing.B) {
	sk := benchKey(b, 1024)
	pk := &sk.PublicKey
	ctx := context.Background()
	ms := benchMessages(100)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pk.EncryptVec(ctx, rand.Reader, nil, ms, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pk.EncryptVec(ctx, rand.Reader, nil, ms, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		rz := NewRandomizer(pk, rand.Reader, len(ms)*(b.N+1), 1)
		defer rz.Close()
		if _, err := rz.Prefill(len(ms) * b.N); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pk.EncryptVec(ctx, rand.Reader, rz, ms, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecryptVec(b *testing.B) {
	sk := benchKey(b, 1024)
	pk := &sk.PublicKey
	ctx := context.Background()
	cs, err := pk.EncryptVec(ctx, rand.Reader, nil, benchMessages(100), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sk.DecryptVec(ctx, cs, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sk.DecryptVec(ctx, cs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
