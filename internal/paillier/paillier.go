// Package paillier implements the Paillier additively homomorphic
// cryptosystem on top of math/big.
//
// The paper's implementation uses the CKKS scheme via TenSEAL; the VFPS-SM
// protocol, however, only requires additive homomorphism — participants
// encrypt partial distances, the aggregation server sums ciphertexts, and the
// leader decrypts the totals. Paillier provides exactly that operation set
// with exact integer arithmetic, so it is used here as the stdlib-only
// substitute (see DESIGN.md §3).
//
// Supported operations:
//
//	Enc(m)                         encryption under the public key
//	Dec(c)                         decryption under the private key
//	AddCipher(c1, c2) = Enc(m1+m2) homomorphic addition
//	AddPlain(c, k)    = Enc(m+k)   plaintext addition
//	MulPlain(c, k)    = Enc(m*k)   plaintext scaling
//
// Plaintexts live in Z_n. Negative values are represented by the upper half
// of the ring and mapped back by Dec.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"vfps/internal/mont"
)

var one = big.NewInt(1)

// PublicKey is a Paillier public key.
type PublicKey struct {
	N  *big.Int // modulus n = p·q
	N2 *big.Int // n²
	G  *big.Int // generator, fixed to n+1

	// Mont selects the Montgomery arithmetic kernel (internal/mont) for the
	// modular hot paths — fixed-base table products, CRT exponentiations,
	// ciphertext accumulation: 0 (default) enables it unless VFPS_MONT=0,
	// positive forces it on, negative restores pure math/big arithmetic.
	// Ciphertexts and sums are bit-identical at every setting. Not part of
	// the wire format; set it before the key starts serving traffic.
	Mont int
}

// PrivateKey holds the Paillier secret values along with the public key.
//
// When the factorisation P, Q is present (keys from GenerateKey, or
// unmarshalled from the current wire format), Decrypt runs the CRT fast path:
// two half-size exponentiations mod p² and q² instead of one full-size
// exponentiation mod n², the classic ~4× decryption win. Keys without P, Q
// (legacy serialisations, hand-built literals) fall back to the λ/μ path and
// remain fully functional.
type PrivateKey struct {
	PublicKey
	Lambda *big.Int // lcm(p-1, q-1)
	Mu     *big.Int // (L(g^lambda mod n²))⁻¹ mod n
	P, Q   *big.Int // prime factors of n; nil on legacy keys (disables CRT)

	crt  *crtPrecomp // non-nil once Precompute succeeds
	crte *crtEnc     // encryption-side CRT constants (fixedbase.go)
}

// crtPrecomp caches the constants of CRT decryption. All fields are
// read-only after Precompute, so concurrent Decrypt calls share them safely.
type crtPrecomp struct {
	p2, q2 *big.Int // p², q²
	ep, eq *big.Int // decryption exponents p−1, q−1
	hp, hq *big.Int // L_p(g^{p−1} mod p²)⁻¹ mod p, L_q(g^{q−1} mod q²)⁻¹ mod q
	pinv   *big.Int // p⁻¹ mod q (Garner recombination)

	mq *mont.Ctx // Montgomery context for q (Garner recombination multiply)
}

// Precompute derives the CRT decryption constants from P and Q. It is called
// by GenerateKey and UnmarshalPrivateKey; call it manually only on hand-built
// keys. A key without P, Q precomputes nothing and keeps the λ/μ path. It
// must not race with in-flight Decrypt calls.
func (sk *PrivateKey) Precompute() error {
	sk.crt = nil
	sk.crte = nil
	if sk.P == nil || sk.Q == nil {
		return nil
	}
	if new(big.Int).Mul(sk.P, sk.Q).Cmp(sk.N) != 0 {
		return errors.New("paillier: private key factors do not multiply to n")
	}
	p2 := new(big.Int).Mul(sk.P, sk.P)
	q2 := new(big.Int).Mul(sk.Q, sk.Q)
	ep := new(big.Int).Sub(sk.P, one)
	eq := new(big.Int).Sub(sk.Q, one)
	// hp = L_p(g^{p−1} mod p²)⁻¹ mod p, with L_p(x) = (x−1)/p.
	hp := new(big.Int).ModInverse(lFunc(new(big.Int).Exp(sk.G, ep, p2), sk.P), sk.P)
	hq := new(big.Int).ModInverse(lFunc(new(big.Int).Exp(sk.G, eq, q2), sk.Q), sk.Q)
	pinv := new(big.Int).ModInverse(sk.P, sk.Q)
	if hp == nil || hq == nil || pinv == nil {
		return errors.New("paillier: CRT constants not invertible")
	}
	sk.crt = &crtPrecomp{
		p2: p2, q2: q2, ep: ep, eq: eq, hp: hp, hq: hq, pinv: pinv,
		mq: newMontCtx(sk.Q),
	}
	sk.crte = newCRTEnc(sk)
	return nil
}

// HasCRT reports whether decryption runs the CRT fast path.
func (sk *PrivateKey) HasCRT() bool { return sk.crt != nil }

// WithoutCRT returns a key that decrypts through the classic λ/μ path — the
// baseline that CRT benchmarks and cross-checks compare against.
func (sk *PrivateKey) WithoutCRT() *PrivateKey {
	return &PrivateKey{PublicKey: sk.PublicKey, Lambda: sk.Lambda, Mu: sk.Mu}
}

// Ciphertext is a Paillier ciphertext: an element of Z_{n²}.
type Ciphertext struct {
	C *big.Int
}

// ErrCiphertextRange reports a ciphertext outside Z_{n²} or non-invertible,
// which indicates corruption or a key mismatch.
var ErrCiphertextRange = errors.New("paillier: ciphertext out of range")

// ErrMessageRange reports a plaintext magnitude that does not fit in the
// signed embedding of Z_n.
var ErrMessageRange = errors.New("paillier: message out of range")

// ErrCiphertextBytes reports serialised ciphertext bytes that cannot encode
// any element of Z_{n²}: empty input or a value outside the ring. Catching
// this at decode time keeps corrupt wire data out of the modular arithmetic.
var ErrCiphertextBytes = errors.New("paillier: malformed ciphertext bytes")

// GenerateKey creates a Paillier key pair with an n of the given bit length.
// Bits of 1024+ are cryptographically meaningful; the test suite uses smaller
// keys for speed.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 16 {
		return nil, fmt.Errorf("paillier: key size %d too small", bits)
	}
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := rand.Prime(random, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		// With g = n+1 the scheme needs gcd(n, (p-1)(q-1)) == 1, which holds
		// when p and q are distinct primes of similar size, but verify anyway.
		phi := new(big.Int).Mul(pm1, qm1)
		if new(big.Int).GCD(nil, nil, n, phi).Cmp(one) != 0 {
			continue
		}
		lambda := new(big.Int).Div(phi, new(big.Int).GCD(nil, nil, pm1, qm1))
		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, one)
		// mu = (L(g^lambda mod n²))⁻¹ mod n, where L(x) = (x-1)/n.
		gl := new(big.Int).Exp(g, lambda, n2)
		l := lFunc(gl, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue
		}
		sk := &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2, G: g},
			Lambda:    lambda,
			Mu:        mu,
			P:         p,
			Q:         q,
		}
		if err := sk.Precompute(); err != nil {
			continue
		}
		return sk, nil
	}
}

func lFunc(x, n *big.Int) *big.Int {
	r := new(big.Int).Sub(x, one)
	return r.Div(r, n)
}

// maxMessage returns the largest magnitude representable in the signed
// embedding: messages m with |m| < n/2.
func (pk *PublicKey) maxMessage() *big.Int {
	return new(big.Int).Rsh(pk.N, 1)
}

// encode maps a signed big.Int into Z_n.
func (pk *PublicKey) encode(m *big.Int) (*big.Int, error) {
	if m.CmpAbs(pk.maxMessage()) >= 0 {
		return nil, fmt.Errorf("%w: |m| >= n/2", ErrMessageRange)
	}
	if m.Sign() >= 0 {
		return new(big.Int).Set(m), nil
	}
	return new(big.Int).Add(pk.N, m), nil
}

// decode maps an element of Z_n back to a signed big.Int.
func (pk *PublicKey) decode(m *big.Int) *big.Int {
	if m.Cmp(pk.maxMessage()) > 0 {
		return new(big.Int).Sub(m, pk.N)
	}
	return new(big.Int).Set(m)
}

// Encrypt encrypts the signed message m under pk using fresh randomness from
// random (crypto/rand.Reader in production).
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*Ciphertext, error) {
	em, err := pk.encode(m)
	if err != nil {
		return nil, err
	}
	rn, err := pk.randomizerValue(random)
	if err != nil {
		return nil, err
	}
	return pk.encryptWithRn(em, rn), nil
}

// Encrypt on the private key is the key holder's fast path: the randomizer
// r^n mod n² is computed through two half-width exponentiations mod p² and
// q² plus Garner recombination — the encryption-side mirror of CRT
// decryption. Ciphertexts are indistinguishable from PublicKey.Encrypt
// output.
func (sk *PrivateKey) Encrypt(random io.Reader, m *big.Int) (*Ciphertext, error) {
	em, err := sk.encode(m)
	if err != nil {
		return nil, err
	}
	rn, err := sk.randomizerValue(random)
	if err != nil {
		return nil, err
	}
	return sk.encryptWithRn(em, rn), nil
}

// randomizerValue computes r^n mod n² for a fresh uniform r, through the CRT
// half-width path when the key carries its factorisation.
func (sk *PrivateKey) randomizerValue(random io.Reader) (*big.Int, error) {
	r, err := sk.sampleR(random)
	if err != nil {
		return nil, err
	}
	if sk.crte != nil {
		return sk.crte.exp(r), nil
	}
	return r.Exp(r, sk.N, sk.N2), nil
}

// sampleR samples r uniformly from Z_n* (gcd(r, n) == 1).
func (pk *PublicKey) sampleR(random io.Reader) (*big.Int, error) {
	for {
		r, err := rand.Int(random, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: sampling randomness: %w", err)
		}
		if r.Sign() != 0 && new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// randomizerValue computes r^n mod n² for a fresh r — the modexp that
// dominates encryption cost. Randomizer pools precompute these off the
// latency path.
func (pk *PublicKey) randomizerValue(random io.Reader) (*big.Int, error) {
	r, err := pk.sampleR(random)
	if err != nil {
		return nil, err
	}
	return r.Exp(r, pk.N, pk.N2), nil
}

// encryptWithRn assembles a ciphertext from an already encoded message and a
// precomputed randomizer r^n mod n² — two modular multiplications.
// c = g^m · r^n mod n²; with g = n+1, g^m = 1 + m·n (mod n²).
func (pk *PublicKey) encryptWithRn(em, rn *big.Int) *Ciphertext {
	gm := new(big.Int).Mul(em, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// validate checks that a ciphertext is a plausible element of Z_{n²}.
func (pk *PublicKey) validate(c *Ciphertext) error {
	if c == nil || c.C == nil {
		return fmt.Errorf("%w: nil ciphertext", ErrCiphertextRange)
	}
	if c.C.Sign() <= 0 || c.C.Cmp(pk.N2) >= 0 {
		return ErrCiphertextRange
	}
	return nil
}

// Decrypt recovers the signed message from c, through the CRT fast path when
// the key carries its factorisation and the λ/μ path otherwise. Both paths
// produce identical plaintexts.
func (sk *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	if err := sk.validate(c); err != nil {
		return nil, err
	}
	return sk.decode(sk.decryptRing(c)), nil
}

// decryptRing recovers the Z_n representative of c's plaintext.
func (sk *PrivateKey) decryptRing(c *Ciphertext) *big.Int {
	if t := sk.crt; t != nil {
		// mp = L_p(c^{p−1} mod p²)·hp mod p, and symmetrically mod q: two
		// half-width exponentiations with half-length exponents instead of one
		// full-width exponentiation, ~4× cheaper in big.Int word operations.
		// The exponentiations deliberately stay on big.Int.Exp even with the
		// Montgomery kernel enabled: Exp already runs an assembly Montgomery
		// ladder internally, so the kernel cannot beat it on plain modexp
		// (DESIGN.md §12); only Garner's multiply routes through the kernel.
		cp, cq := new(big.Int), new(big.Int)
		cp.Exp(c.C, t.ep, t.p2)
		cq.Exp(c.C, t.eq, t.q2)
		mp := lFunc(cp, sk.P)
		mp.Mul(mp, t.hp)
		mp.Mod(mp, sk.P)
		mq := lFunc(cq, sk.Q)
		mq.Mul(mq, t.hq)
		mq.Mod(mq, sk.Q)
		// Garner: m = mp + p·((mq − mp)·p⁻¹ mod q) ∈ [0, n).
		u := new(big.Int).Sub(mq, mp)
		if sk.useMont() && t.mq != nil {
			t.mq.ModMulBig(u, u, t.pinv)
		} else {
			u.Mul(u, t.pinv)
			u.Mod(u, sk.Q)
		}
		u.Mul(u, sk.P)
		return u.Add(u, mp)
	}
	// m = L(c^lambda mod n²) · mu mod n
	cl := new(big.Int).Exp(c.C, sk.Lambda, sk.N2)
	m := lFunc(cl, sk.N)
	m.Mul(m, sk.Mu)
	m.Mod(m, sk.N)
	return m
}

// AddCipher returns a ciphertext of m1 + m2 given ciphertexts of m1 and m2.
func (pk *PublicKey) AddCipher(c1, c2 *Ciphertext) (*Ciphertext, error) {
	if err := pk.validate(c1); err != nil {
		return nil, err
	}
	if err := pk.validate(c2); err != nil {
		return nil, err
	}
	if ctx := pk.montN2(); ctx != nil {
		return &Ciphertext{C: ctx.ModMulBig(new(big.Int), c1.C, c2.C)}, nil
	}
	c := new(big.Int).Mul(c1.C, c2.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// AddCipherInto homomorphically accumulates src into dst in place:
// dst ← Enc(m_dst + m_src), reusing dst's big.Int storage. On the aggregation
// server's tree reduce this trades AddCipher's two fresh big.Int allocations
// per addition for amortised zero — the accumulator's buffer is grown once and
// reused across the whole fold (see BenchmarkSum*).
func (pk *PublicKey) AddCipherInto(dst, src *Ciphertext) error {
	if err := pk.validate(dst); err != nil {
		return err
	}
	if err := pk.validate(src); err != nil {
		return err
	}
	if ctx := pk.montN2(); ctx != nil {
		// Two REDC passes into dst's existing limb storage: zero allocations
		// once the accumulator has grown to full width.
		ctx.ModMulBig(dst.C, dst.C, src.C)
		return nil
	}
	dst.C.Mul(dst.C, src.C)
	dst.C.Mod(dst.C, pk.N2)
	return nil
}

// AddPlain returns a ciphertext of m + k given a ciphertext of m and a
// signed plaintext k.
func (pk *PublicKey) AddPlain(c *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if err := pk.validate(c); err != nil {
		return nil, err
	}
	ek, err := pk.encode(k)
	if err != nil {
		return nil, err
	}
	// Enc(m) · g^k = Enc(m+k); with g = n+1, g^k = 1 + k·n (mod n²).
	gk := new(big.Int).Mul(ek, pk.N)
	gk.Add(gk, one)
	gk.Mod(gk, pk.N2)
	out := gk.Mul(gk, c.C)
	out.Mod(out, pk.N2)
	return &Ciphertext{C: out}, nil
}

// MulPlain returns a ciphertext of m·k given a ciphertext of m and a signed
// plaintext k.
func (pk *PublicKey) MulPlain(c *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if err := pk.validate(c); err != nil {
		return nil, err
	}
	e := new(big.Int).Set(k)
	if e.Sign() < 0 {
		// c^{-k} requires the inverse of c modulo n².
		inv := new(big.Int).ModInverse(c.C, pk.N2)
		if inv == nil {
			return nil, ErrCiphertextRange
		}
		e.Neg(e)
		out := new(big.Int).Exp(inv, e, pk.N2)
		return &Ciphertext{C: out}, nil
	}
	out := new(big.Int).Exp(c.C, e, pk.N2)
	return &Ciphertext{C: out}, nil
}

// Sum homomorphically adds a sequence of ciphertexts. It returns an error on
// an empty input. The inputs are not modified: the fold runs in a single
// accumulator — a fixed-width Montgomery limb vector when the kernel is
// enabled (one CIOS pass per ciphertext, converted back to a big.Int once at
// the end), AddCipherInto otherwise — so Sum allocates one ciphertext
// regardless of len(cs).
func (pk *PublicKey) Sum(cs ...*Ciphertext) (*Ciphertext, error) {
	if len(cs) == 0 {
		return nil, errors.New("paillier: Sum of no ciphertexts")
	}
	if err := pk.validate(cs[0]); err != nil {
		return nil, err
	}
	if ctx := pk.montN2(); ctx != nil && len(cs) > 1 {
		return pk.montSum(ctx, cs)
	}
	acc := &Ciphertext{C: new(big.Int).Set(cs[0].C)}
	for _, c := range cs[1:] {
		if err := pk.AddCipherInto(acc, c); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Bytes serialises a ciphertext to a big-endian byte slice.
func (c *Ciphertext) Bytes() []byte { return c.C.Bytes() }

// CiphertextFromBytes reconstructs a ciphertext from Bytes output without
// validation; operations on the result re-validate against a key. Prefer
// PublicKey.ParseCiphertext when a key is at hand, which rejects malformed
// bytes immediately with a typed error.
func CiphertextFromBytes(b []byte) *Ciphertext {
	return &Ciphertext{C: new(big.Int).SetBytes(b)}
}

// ParseCiphertext reconstructs a ciphertext from Bytes output and validates
// it against pk. Zero-length input and encodings outside (0, n²) are rejected
// with ErrCiphertextBytes instead of surfacing later as a range error or
// garbage plaintext deep inside the modular arithmetic.
func (pk *PublicKey) ParseCiphertext(b []byte) (*Ciphertext, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrCiphertextBytes)
	}
	c := &Ciphertext{C: new(big.Int).SetBytes(b)}
	if c.C.Sign() <= 0 || c.C.Cmp(pk.N2) >= 0 {
		return nil, fmt.Errorf("%w: value outside (0, n²)", ErrCiphertextBytes)
	}
	return c, nil
}

// CiphertextSize returns the serialised size in bytes of a ciphertext under
// pk (used by the cost model for communication accounting).
func (pk *PublicKey) CiphertextSize() int { return (pk.N2.BitLen() + 7) / 8 }

// PlaintextHeadroomBits reports how many plaintext bits a packed message may
// occupy so that it — and every homomorphic sum of such messages the slot
// headroom admits — stays strictly below n/2, inside the positive half of the
// signed embedding: the modulus width minus a two-bit margin. Slot-packing
// geometry (internal/fixed, internal/he) derives its usable width from this
// hook instead of re-deriving modulus internals.
func (pk *PublicKey) PlaintextHeadroomBits() uint { return uint(pk.N.BitLen() - 2) }
