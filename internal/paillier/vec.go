package paillier

import (
	"context"
	"io"
	"math/big"
	"sync"

	"vfps/internal/par"
)

// lockedReader serialises access to an entropy source shared by the vector
// workers. crypto/rand.Reader is already safe for concurrent use, but the
// deterministic readers tests substitute are not; the lock costs nothing
// next to a modexp.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

// EncryptVec encrypts ms with up to workers goroutines (workers <= 0 uses
// par.Degree(), 1 is fully serial), drawing randomizers from rz when non-nil
// and computing them inline otherwise. ctx is polled between chunks, so a
// cancelled caller stops mid-vector instead of grinding through all N
// modexps.
func (pk *PublicKey) EncryptVec(ctx context.Context, random io.Reader, rz *Randomizer, ms []*big.Int, workers int) ([]*Ciphertext, error) {
	shared := &lockedReader{r: random}
	out := make([]*Ciphertext, len(ms))
	err := par.For(ctx, len(ms), workers, func(i int) error {
		em, err := pk.encode(ms[i])
		if err != nil {
			return err
		}
		var rn *big.Int
		if rz != nil {
			rn, err = rz.Next()
		} else {
			rn, err = pk.randomizerValue(shared)
		}
		if err != nil {
			return err
		}
		out[i] = pk.encryptWithRn(em, rn)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecryptVec decrypts cs with up to workers goroutines (workers <= 0 uses
// par.Degree(), 1 is fully serial), polling ctx between chunks.
func (sk *PrivateKey) DecryptVec(ctx context.Context, cs []*Ciphertext, workers int) ([]*big.Int, error) {
	out := make([]*big.Int, len(cs))
	err := par.For(ctx, len(cs), workers, func(i int) error {
		m, err := sk.Decrypt(cs[i])
		if err != nil {
			return err
		}
		out[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
