package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// benchCiphertexts encrypts n small plaintexts under a fresh key.
func benchCiphertexts(b *testing.B, bits, n int) (*PrivateKey, []*Ciphertext) {
	b.Helper()
	sk, err := GenerateKey(rand.Reader, bits)
	if err != nil {
		b.Fatal(err)
	}
	cs := make([]*Ciphertext, n)
	for i := range cs {
		c, err := sk.Encrypt(rand.Reader, big.NewInt(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		cs[i] = c
	}
	return sk, cs
}

// BenchmarkSumPairwise is the pre-accumulator baseline: a left fold through
// AddCipher, allocating a fresh ciphertext (two big.Ints) per addition.
func BenchmarkSumPairwise(b *testing.B) {
	sk, cs := benchCiphertexts(b, 1024, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := cs[0]
		var err error
		for _, c := range cs[1:] {
			acc, err = sk.AddCipher(acc, c)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSumInPlace folds the same vector through the single-accumulator
// Sum (AddCipherInto); allocs/op should drop to ~one accumulator per fold.
func BenchmarkSumInPlace(b *testing.B) {
	sk, cs := benchCiphertexts(b, 1024, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Sum(cs...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecryptCRT and BenchmarkDecryptNoCRT expose the CRT fast-path
// ratio directly (the experiments harness measures the same pair end-to-end).
func BenchmarkDecryptCRT(b *testing.B) {
	sk, cs := benchCiphertexts(b, 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(cs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptNoCRT(b *testing.B) {
	sk, cs := benchCiphertexts(b, 1024, 1)
	slow := sk.WithoutCRT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slow.Decrypt(cs[0]); err != nil {
			b.Fatal(err)
		}
	}
}
