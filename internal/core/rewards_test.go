package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vfps/internal/submod"
)

func randomW(rng *rand.Rand, p int) [][]float64 {
	w := make([][]float64, p)
	for i := range w {
		w[i] = make([]float64, p)
	}
	for i := 0; i < p; i++ {
		w[i][i] = 1
		for j := i + 1; j < p; j++ {
			v := rng.Float64()
			w[i][j], w[j][i] = v, v
		}
	}
	return w
}

func TestRewardSharesEfficiency(t *testing.T) {
	// Shares must sum to f(full consortium).
	rng := rand.New(rand.NewSource(1))
	w := randomW(rng, 6)
	shares, err := RewardShares(w)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := submod.NewFacilityLocation(w)
	full := make([]int, 6)
	for i := range full {
		full[i] = i
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-obj.Value(full)) > 1e-9 {
		t.Fatalf("Σshares = %g, f(P) = %g", sum, obj.Value(full))
	}
}

func TestRewardSharesSymmetryForDuplicates(t *testing.T) {
	// Exact duplicates (identical similarity rows AND unit mutual
	// similarity) must receive identical rewards — the fairness property
	// the greedy gains lack.
	w := [][]float64{
		{1.0, 1.0, 0.3, 0.4},
		{1.0, 1.0, 0.3, 0.4},
		{0.3, 0.3, 1.0, 0.5},
		{0.4, 0.4, 0.5, 1.0},
	}
	shares, err := RewardShares(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shares[0]-shares[1]) > 1e-12 {
		t.Fatalf("duplicates rewarded unequally: %v", shares)
	}
}

func TestRewardSharesFixGreedyOrderBias(t *testing.T) {
	// Under greedy, the second of two exact duplicates gets zero marginal
	// gain; the Shapley shares split their joint contribution evenly.
	cl, pt := cluster(t, "Rice", 150, 3, 1) // party 3 duplicates some source
	sel, err := Select(context.Background(), cl.Leader, 4, Config{
		K: 5, Queries: SampleQueries(150, 12, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	src := pt.DuplicateOf[3]
	shares, err := RewardShares(sel.W)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shares[3]-shares[src]) > 1e-9 {
		t.Fatalf("duplicate pair rewarded unequally: %v (src=%d)", shares, src)
	}
	// The greedy gains for the pair are near-maximally biased: the later
	// pick earns (almost) nothing.
	posOf := func(party int) int {
		for i, p := range sel.Selected {
			if p == party {
				return i
			}
		}
		return -1
	}
	first, second := posOf(src), posOf(3)
	if first > second {
		first, second = second, first
	}
	if sel.Gains[second] > 0.05*sel.Gains[first] {
		t.Fatalf("expected strong order bias in greedy gains: %v", sel.Gains)
	}
}

func TestRewardSharesValidation(t *testing.T) {
	if _, err := RewardShares(nil); err == nil {
		t.Fatal("expected empty matrix error")
	}
	big := randomW(rand.New(rand.NewSource(2)), 25)
	if _, err := RewardShares(big); err == nil {
		t.Fatal("expected P>24 error")
	}
}

// Property: shares are non-negative for monotone f and efficient for random
// similarity matrices.
func TestRewardSharesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(6)
		w := randomW(rng, p)
		shares, err := RewardShares(w)
		if err != nil {
			return false
		}
		obj, _ := submod.NewFacilityLocation(w)
		full := make([]int, p)
		for i := range full {
			full[i] = i
		}
		var sum float64
		for _, s := range shares {
			if s < -1e-9 { // monotone f ⇒ non-negative marginals
				return false
			}
			sum += s
		}
		return math.Abs(sum-obj.Value(full)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
