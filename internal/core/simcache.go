package core

import (
	"fmt"
	"strings"
	"sync"

	"vfps/internal/obs"
	"vfps/internal/vfl"
)

// SimCache memoises similarity reports by the full estimation identity: the
// participant roster (a set signature — node names in index order), the
// query set, the KNN variant and K. Over a static dataset the similarity
// matrix is a pure function of that key, so a hit is exact, not approximate:
// it skips the encrypted similarity phase entirely while returning the
// bit-identical W a fresh protocol run would produce. The serving layer uses
// it for set-keyed reuse across membership churn — a consortium that returns
// to a previously seen roster replays its cached estimate instead of paying
// P·queries encrypted-distance work again.
//
// The cache is bounded with FIFO eviction (ring index, like the vfl delta
// cache) and safe for concurrent use. Reports are deep-copied on both store
// and lookup, so callers can mutate W freely.
type SimCache struct {
	mu    sync.Mutex
	m     map[string]*vfl.SimilarityReport
	order []string
	head  int
	limit int
}

// simCacheLimit bounds the default cache: a report is P² float64s, so even
// wide consortiums stay a few MB.
const simCacheLimit = 64

// NewSimCache returns an empty cache holding at most limit reports
// (non-positive → the default 64).
func NewSimCache(limit int) *SimCache {
	if limit <= 0 {
		limit = simCacheLimit
	}
	return &SimCache{limit: limit}
}

// SimKey derives the cache key of one similarity estimation: the roster in
// index order, the exact query list, the variant and K. Any membership
// change, query resample or parameter change yields a distinct key.
func SimKey(parties []string, queries []int, variant vfl.Variant, k int) string {
	var b strings.Builder
	for _, p := range parties {
		b.WriteString(p)
		b.WriteByte('|')
	}
	b.WriteByte(';')
	for _, q := range queries {
		fmt.Fprintf(&b, "%d,", q)
	}
	fmt.Fprintf(&b, ";%s;%d", variant, k)
	return b.String()
}

func copyReport(rep *vfl.SimilarityReport) *vfl.SimilarityReport {
	out := *rep
	out.W = make([][]float64, len(rep.W))
	for i, row := range rep.W {
		out.W[i] = append([]float64(nil), row...)
	}
	return &out
}

// Lookup returns a copy of the cached report for key, if present.
func (c *SimCache) Lookup(key string) (*vfl.SimilarityReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, ok := c.m[key]
	if !ok {
		return nil, false
	}
	return copyReport(rep), true
}

// Store caches a copy of the report under key, evicting the oldest entry
// when full.
func (c *SimCache) Store(key string, rep *vfl.SimilarityReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit <= 0 {
		c.limit = simCacheLimit
	}
	if c.m == nil {
		c.m = make(map[string]*vfl.SimilarityReport)
	}
	if _, ok := c.m[key]; !ok {
		if len(c.order)-c.head >= c.limit {
			delete(c.m, c.order[c.head])
			c.order[c.head] = ""
			c.head++
			if c.head*2 >= len(c.order) {
				c.order = append(c.order[:0], c.order[c.head:]...)
				c.head = 0
			}
		}
		c.order = append(c.order, key)
	}
	c.m[key] = copyReport(rep)
}

// Len reports the number of cached reports.
func (c *SimCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Similarity-cache metric families: lookup outcomes per instance.
const (
	metricSimCacheHits   = "vfps_simcache_hits_total"
	metricSimCacheMisses = "vfps_simcache_misses_total"
)

func declareSimCache(reg *obs.Registry) (hits, misses *obs.CounterVec) {
	hits = reg.Counter(metricSimCacheHits,
		"Selections that reused a set-keyed cached similarity report instead of re-running the encrypted similarity phase.",
		"instance")
	misses = reg.Counter(metricSimCacheMisses,
		"Selections whose (roster, queries, variant, K) key had no cached similarity report.",
		"instance")
	return hits, misses
}

// DeclareSimCacheMetrics pre-declares the similarity-cache families on reg
// so they render on /metrics before the first cached selection. Safe on a
// nil registry.
func DeclareSimCacheMetrics(reg *obs.Registry) {
	declareSimCache(reg)
}

// recordSimCache feeds one lookup outcome into the metric families. No-op
// without a registry.
func recordSimCache(reg *obs.Registry, instance string, hit bool) {
	if reg == nil {
		return
	}
	if instance == "" {
		instance = "local"
	}
	h, m := declareSimCache(reg)
	if hit {
		h.With(instance).Add(1)
	} else {
		m.With(instance).Add(1)
	}
}
