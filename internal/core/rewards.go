package core

import (
	"fmt"
	"math/bits"

	"vfps/internal/submod"
)

// RewardShares addresses the limitation the paper leaves as future work
// (§IV-D): the greedy marginal gains of VFPS-SM diminish by construction, so
// participants selected later receive systematically smaller "contributions"
// and the scores cannot back a fair reward system.
//
// The fix: rewards are the Shapley values of the KNN submodular likelihood
// f(S) = Σ_p max_{s∈S} w(p,s) itself. Unlike the SHAPLEY *selection*
// baseline — which needs 2^P federated KNN evaluations — f is evaluated
// locally on the already-estimated similarity matrix, so exact enumeration
// costs O(2^P · P²) plain arithmetic: microseconds at the consortium sizes
// VFL runs at, and no additional encrypted communication at all.
//
// The returned shares are order-independent, symmetric (exact duplicates
// receive identical rewards) and efficient (they sum to f(P)).
func RewardShares(w [][]float64) ([]float64, error) {
	obj, err := submod.NewFacilityLocation(w)
	if err != nil {
		return nil, fmt.Errorf("core: rewards: %w", err)
	}
	p := obj.N()
	if p > 24 {
		return nil, fmt.Errorf("core: exact reward shares limited to P ≤ 24, got %d", p)
	}
	size := 1 << p
	// Evaluate f on every subset once. Value(S) costs O(P·|S|); the whole
	// table is O(2^P · P²), fine for P ≤ 24 in plain arithmetic.
	values := make([]float64, size)
	subset := make([]int, 0, p)
	for mask := 1; mask < size; mask++ {
		subset = subset[:0]
		for v := 0; v < p; v++ {
			if mask&(1<<v) != 0 {
				subset = append(subset, v)
			}
		}
		values[mask] = obj.Value(subset)
	}
	binom := make([]float64, p) // C(P-1, s)
	binom[0] = 1
	for s := 1; s < p; s++ {
		binom[s] = binom[s-1] * float64(p-s) / float64(s)
	}
	shares := make([]float64, p)
	for pi := 0; pi < p; pi++ {
		bit := 1 << pi
		var total float64
		for mask := 0; mask < size; mask++ {
			if mask&bit != 0 {
				continue
			}
			s := bits.OnesCount32(uint32(mask))
			total += (values[mask|bit] - values[mask]) / binom[s]
		}
		shares[pi] = total / float64(p)
	}
	return shares, nil
}
