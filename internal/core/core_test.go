package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"vfps/internal/dataset"
	"vfps/internal/vfl"
)

func cluster(t *testing.T, name string, rows, parties, dups int) (*vfl.Cluster, *dataset.Partition) {
	t.Helper()
	spec, err := dataset.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := spec.Generate(rows)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := dataset.VerticalSplit(d, parties, 42)
	if err != nil {
		t.Fatal(err)
	}
	if dups > 0 {
		pt = pt.WithDuplicates(dups, 17)
	}
	cl, err := vfl.NewLocalCluster(context.Background(), vfl.ClusterConfig{
		Partition:   pt,
		Scheme:      "plain",
		ShuffleSeed: 7,
		Batch:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, pt
}

func TestSampleQueries(t *testing.T) {
	q := SampleQueries(100, 10, 1)
	if len(q) != 10 {
		t.Fatalf("got %d queries", len(q))
	}
	seen := map[int]bool{}
	for _, i := range q {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("bad sample %v", q)
		}
		seen[i] = true
	}
	if got := SampleQueries(5, 99, 1); len(got) != 5 {
		t.Fatalf("over-sample should return all rows, got %v", got)
	}
	// Deterministic in the seed.
	if !reflect.DeepEqual(SampleQueries(100, 10, 2), SampleQueries(100, 10, 2)) {
		t.Fatal("sampling not deterministic")
	}
}

func TestSelectBasic(t *testing.T) {
	cl, _ := cluster(t, "Bank", 120, 4, 0)
	sel, err := Select(context.Background(), cl.Leader, 2, Config{
		K:       5,
		Queries: SampleQueries(120, 12, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 2 {
		t.Fatalf("selected %v", sel.Selected)
	}
	if sel.Selected[0] == sel.Selected[1] {
		t.Fatal("duplicate selection")
	}
	if sel.Value <= 0 {
		t.Fatalf("objective value %g", sel.Value)
	}
	if len(sel.Gains) != 2 || sel.Gains[1] > sel.Gains[0]+1e-9 {
		t.Fatalf("gains not diminishing: %v", sel.Gains)
	}
	if sel.Counts.Encryptions == 0 || sel.ProjectedSeconds <= 0 {
		t.Fatal("cost accounting missing")
	}
	if sel.AvgCandidates <= 0 {
		t.Fatal("candidate stats missing")
	}
}

func TestSelectAvoidsDuplicates(t *testing.T) {
	// 3 original parties + 3 exact duplicates: selecting 3 must never take
	// a party together with its own replica.
	cl, pt := cluster(t, "Rice", 150, 3, 3)
	sel, err := Select(context.Background(), cl.Leader, 3, Config{
		K:       5,
		Queries: SampleQueries(150, 15, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	group := func(p int) int {
		if src := pt.DuplicateOf[p]; src >= 0 {
			return src
		}
		return p
	}
	seen := map[int]bool{}
	for _, p := range sel.Selected {
		g := group(p)
		if seen[g] {
			t.Fatalf("selected redundant pair: %v (duplicateOf=%v)", sel.Selected, pt.DuplicateOf)
		}
		seen[g] = true
	}
}

func TestSelectVariantsAgree(t *testing.T) {
	cl, _ := cluster(t, "Credit", 100, 4, 0)
	queries := SampleQueries(100, 10, 9)
	base, err := Select(context.Background(), cl.Leader, 2, Config{K: 5, Queries: queries, Variant: vfl.VariantBase})
	if err != nil {
		t.Fatal(err)
	}
	fagin, err := Select(context.Background(), cl.Leader, 2, Config{K: 5, Queries: queries, Variant: vfl.VariantFagin})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Selected, fagin.Selected) {
		t.Fatalf("variants disagree: base %v fagin %v", base.Selected, fagin.Selected)
	}
	if fagin.Counts.Encryptions >= base.Counts.Encryptions {
		t.Fatalf("fagin should encrypt less: %d vs %d", fagin.Counts.Encryptions, base.Counts.Encryptions)
	}
	if fagin.ProjectedSeconds >= base.ProjectedSeconds {
		t.Fatal("fagin should project cheaper than base")
	}
}

func TestSelectOptimizersAgreeOnValue(t *testing.T) {
	cl, _ := cluster(t, "Bank", 100, 4, 0)
	queries := SampleQueries(100, 10, 2)
	greedy, err := Select(context.Background(), cl.Leader, 2, Config{K: 5, Queries: queries, Optimizer: OptGreedy})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Select(context.Background(), cl.Leader, 2, Config{K: 5, Queries: queries, Optimizer: OptLazy})
	if err != nil {
		t.Fatal(err)
	}
	if d := greedy.Value - lazy.Value; d > 1e-9 || d < -1e-9 {
		t.Fatalf("lazy value %g != greedy %g", lazy.Value, greedy.Value)
	}
	stoch, err := Select(context.Background(), cl.Leader, 2, Config{K: 5, Queries: queries, Optimizer: OptStochastic, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stoch.Value < 0.5*greedy.Value {
		t.Fatalf("stochastic value %g too low vs %g", stoch.Value, greedy.Value)
	}
}

func TestSelectDeterministic(t *testing.T) {
	cl, _ := cluster(t, "Bank", 100, 4, 0)
	queries := SampleQueries(100, 10, 4)
	a, err := Select(context.Background(), cl.Leader, 2, Config{K: 5, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(context.Background(), cl.Leader, 2, Config{K: 5, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Selected, b.Selected) {
		t.Fatalf("selection not deterministic: %v vs %v", a.Selected, b.Selected)
	}
}

func TestSelectValidation(t *testing.T) {
	cl, _ := cluster(t, "Rice", 50, 3, 0)
	ctx := context.Background()
	if _, err := Select(ctx, nil, 1, Config{}); err == nil {
		t.Fatal("expected nil-leader error")
	}
	if _, err := Select(ctx, cl.Leader, 0, Config{Queries: []int{1}}); err == nil {
		t.Fatal("expected count=0 error")
	}
	if _, err := Select(ctx, cl.Leader, 4, Config{Queries: []int{1}}); err == nil {
		t.Fatal("expected count>P error")
	}
	if _, err := Select(ctx, cl.Leader, 2, Config{}); err == nil {
		t.Fatal("expected no-queries error")
	}
	if _, err := Select(ctx, cl.Leader, 2, Config{Queries: []int{1}, Optimizer: Optimizer("annealing")}); err == nil {
		t.Fatal("expected optimizer error")
	}
	// Failures inside the protocol phases must name the phase: a cancelled
	// context breaks the very first RPC (the count reset), and the error is
	// wrapped as a prepare-phase failure.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	_, err := Select(cancelled, cl.Leader, 2, Config{Queries: []int{1}})
	if err == nil {
		t.Fatal("expected cancelled-context error")
	}
	if !strings.HasPrefix(err.Error(), "core: prepare phase:") {
		t.Fatalf("prepare failure not wrapped with phase prefix: %v", err)
	}
}

func TestSelectWarmStartMatchesGreedy(t *testing.T) {
	cl, _ := cluster(t, "Bank", 100, 4, 0)
	queries := SampleQueries(100, 10, 6)
	greedy, err := Select(context.Background(), cl.Leader, 2, Config{K: 5, Queries: queries, Optimizer: OptGreedy})
	if err != nil {
		t.Fatal(err)
	}
	// A warm start seeded with the prior answer, a stale prior, and no prior
	// at all must all reproduce the greedy selection exactly.
	for _, prior := range [][]int{greedy.Selected, {3, 0}, nil} {
		warm, err := Select(context.Background(), cl.Leader, 2, Config{
			K: 5, Queries: queries, Optimizer: OptWarmStart, WarmStart: prior,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm.Selected, greedy.Selected) {
			t.Fatalf("warm start (prior %v) selected %v, greedy %v", prior, warm.Selected, greedy.Selected)
		}
		if d := warm.Value - greedy.Value; d > 1e-12 || d < -1e-12 {
			t.Fatalf("warm start value %g != greedy %g", warm.Value, greedy.Value)
		}
	}
}

func TestSelectSimCacheReusesReport(t *testing.T) {
	cl, _ := cluster(t, "Bank", 100, 4, 0)
	queries := SampleQueries(100, 10, 8)
	cache := NewSimCache(0)
	cold, err := Select(context.Background(), cl.Leader, 2, Config{K: 5, Queries: queries, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d reports after first run", cache.Len())
	}
	warm, err := Select(context.Background(), cl.Leader, 2, Config{K: 5, Queries: queries, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Selected, cold.Selected) || !reflect.DeepEqual(warm.W, cold.W) {
		t.Fatalf("cached selection diverged: %v vs %v", warm.Selected, cold.Selected)
	}
	// The hit skipped the encrypted similarity phase entirely.
	if warm.Counts.Encryptions != 0 || warm.Counts.Decryptions != 0 {
		t.Fatalf("cache hit still paid HE ops: %+v", warm.Counts)
	}
	if cold.Counts.Encryptions == 0 {
		t.Fatalf("cold run paid no HE ops: %+v", cold.Counts)
	}
	// A different parameterisation must miss: same roster, new K.
	again, err := Select(context.Background(), cl.Leader, 2, Config{K: 6, Queries: queries, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if again.Counts.Encryptions == 0 {
		t.Fatal("K change should have missed the cache")
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d reports after K change", cache.Len())
	}
}

func TestSimCacheEviction(t *testing.T) {
	c := NewSimCache(4)
	rep := &vfl.SimilarityReport{W: [][]float64{{1, 0.5}, {0.5, 1}}, Queries: 3}
	for i := 0; i < 12; i++ {
		c.Store(SimKey([]string{"a", "b"}, []int{i}, vfl.VariantBase, 5), rep)
	}
	if c.Len() != 4 {
		t.Fatalf("cache grew to %d entries past its limit", c.Len())
	}
	// Oldest keys evicted, newest retained; hits return deep copies.
	if _, ok := c.Lookup(SimKey([]string{"a", "b"}, []int{0}, vfl.VariantBase, 5)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	got, ok := c.Lookup(SimKey([]string{"a", "b"}, []int{11}, vfl.VariantBase, 5))
	if !ok {
		t.Fatal("newest entry missing")
	}
	got.W[0][1] = -1
	fresh, _ := c.Lookup(SimKey([]string{"a", "b"}, []int{11}, vfl.VariantBase, 5))
	if fresh.W[0][1] != 0.5 {
		t.Fatal("lookup returned an aliased report")
	}
}

func TestSelectAdaptiveConverges(t *testing.T) {
	cl, _ := cluster(t, "Rice", 300, 4, 0)
	ctx := context.Background()
	queries := SampleQueries(300, 64, 7)
	sel, err := SelectAdaptive(ctx, cl.Leader, 2, AdaptiveConfig{
		Config:    Config{K: 5, Queries: queries},
		ChunkSize: 8,
		Tolerance: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 2 {
		t.Fatalf("selected %v", sel.Selected)
	}
	if sel.QueriesUsed > len(queries) || sel.QueriesUsed < 16 {
		t.Fatalf("queries used %d out of expected range", sel.QueriesUsed)
	}
	t.Logf("adaptive run used %d of %d queries", sel.QueriesUsed, len(queries))
}

func TestSelectAdaptiveUsesFewerQueriesOnEasyConsortia(t *testing.T) {
	// With exact duplicates the similarity matrix stabilises quickly.
	cl, _ := cluster(t, "Rice", 300, 3, 3)
	ctx := context.Background()
	queries := SampleQueries(300, 96, 9)
	sel, err := SelectAdaptive(ctx, cl.Leader, 3, AdaptiveConfig{
		Config:    Config{K: 5, Queries: queries},
		ChunkSize: 8,
		Tolerance: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.QueriesUsed >= len(queries) {
		t.Fatalf("adaptive never converged: used all %d queries", sel.QueriesUsed)
	}
}

func TestSelectAdaptiveValidation(t *testing.T) {
	cl, _ := cluster(t, "Rice", 60, 3, 0)
	ctx := context.Background()
	if _, err := SelectAdaptive(ctx, nil, 1, AdaptiveConfig{}); err == nil {
		t.Fatal("expected nil-leader error")
	}
	if _, err := SelectAdaptive(ctx, cl.Leader, 0, AdaptiveConfig{Config: Config{Queries: []int{1}}}); err == nil {
		t.Fatal("expected count error")
	}
	if _, err := SelectAdaptive(ctx, cl.Leader, 2, AdaptiveConfig{}); err == nil {
		t.Fatal("expected no-queries error")
	}
	if _, err := SelectAdaptive(ctx, cl.Leader, 2, AdaptiveConfig{
		Config: Config{Queries: []int{1, 2}, Optimizer: Optimizer("nope")},
	}); err == nil {
		t.Fatal("expected optimizer error")
	}
}

func TestSelectAdaptiveMatchesFullOnExhaustion(t *testing.T) {
	// With a tolerance of 0 the adaptive run exhausts all queries and must
	// match the fixed-budget selection exactly.
	cl, _ := cluster(t, "Bank", 150, 4, 0)
	ctx := context.Background()
	queries := SampleQueries(150, 16, 3)
	full, err := Select(ctx, cl.Leader, 2, Config{K: 5, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := SelectAdaptive(ctx, cl.Leader, 2, AdaptiveConfig{
		Config:    Config{K: 5, Queries: queries},
		ChunkSize: 4,
		Tolerance: 1e-18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Selected, adaptive.Selected) {
		t.Fatalf("adaptive %v vs full %v", adaptive.Selected, full.Selected)
	}
	if adaptive.QueriesUsed != len(queries) {
		t.Fatalf("expected exhaustion, used %d", adaptive.QueriesUsed)
	}
}

func TestSampleQueriesStratified(t *testing.T) {
	// 90/10 imbalanced labels: stratified sampling must include minority
	// rows.
	y := make([]int, 100)
	for i := 90; i < 100; i++ {
		y[i] = 1
	}
	q := SampleQueriesStratified(y, 2, 20, 1)
	if len(q) != 20 {
		t.Fatalf("got %d queries", len(q))
	}
	minority := 0
	seen := map[int]bool{}
	for _, r := range q {
		if seen[r] {
			t.Fatal("duplicate query row")
		}
		seen[r] = true
		if y[r] == 1 {
			minority++
		}
	}
	if minority < 1 {
		t.Fatal("stratified sample missed the minority class")
	}
	// Roughly proportional: expect ~2 of 20.
	if minority > 8 {
		t.Fatalf("minority oversampled: %d of 20", minority)
	}
	// Deterministic.
	q2 := SampleQueriesStratified(y, 2, 20, 1)
	if !reflect.DeepEqual(q, q2) {
		t.Fatal("stratified sampling not deterministic")
	}
	// count >= n falls back to everything.
	if got := SampleQueriesStratified(y, 2, 500, 1); len(got) != 100 {
		t.Fatalf("fallback returned %d", len(got))
	}
}

func TestSelectAdaptiveWithThresholdVariant(t *testing.T) {
	cl, _ := cluster(t, "Bank", 150, 4, 0)
	sel, err := SelectAdaptive(context.Background(), cl.Leader, 2, AdaptiveConfig{
		Config:    Config{K: 5, Queries: SampleQueries(150, 24, 3), Variant: vfl.VariantThreshold},
		ChunkSize: 6,
		Tolerance: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 2 {
		t.Fatalf("selected %v", sel.Selected)
	}
}

func TestSelectAdaptiveLazyOptimizer(t *testing.T) {
	cl, _ := cluster(t, "Rice", 120, 3, 0)
	sel, err := SelectAdaptive(context.Background(), cl.Leader, 2, AdaptiveConfig{
		Config: Config{K: 5, Queries: SampleQueries(120, 16, 1), Optimizer: OptLazy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 2 {
		t.Fatalf("selected %v", sel.Selected)
	}
}

func TestSelectWithStochasticOptimizerAdaptive(t *testing.T) {
	cl, _ := cluster(t, "Rice", 120, 3, 0)
	sel, err := SelectAdaptive(context.Background(), cl.Leader, 2, AdaptiveConfig{
		Config: Config{K: 5, Queries: SampleQueries(120, 16, 1), Optimizer: OptStochastic, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 2 {
		t.Fatalf("selected %v", sel.Selected)
	}
}

func TestSampleQueriesStratifiedMissingClass(t *testing.T) {
	// A class id with no samples must not break allocation.
	y := make([]int, 50) // all class 0, classes=3 declared
	q := SampleQueriesStratified(y, 3, 10, 1)
	if len(q) != 10 {
		t.Fatalf("got %d queries", len(q))
	}
}
