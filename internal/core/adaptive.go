package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"vfps/internal/costmodel"
	"vfps/internal/submod"
	"vfps/internal/vfl"
)

// AdaptiveConfig tunes SelectAdaptive. It extends Config with a convergence
// rule: queries are processed in chunks until the similarity matrix
// stabilises, so easy consortia (e.g. with obvious duplicates) pay for far
// fewer encrypted KNN queries than the fixed-budget protocol.
type AdaptiveConfig struct {
	Config
	// ChunkSize is the number of queries added per round (default 8).
	ChunkSize int
	// Tolerance is the maximum absolute change of any W entry between
	// rounds that still counts as converged (default 0.01).
	Tolerance float64
	// MinQueries is the floor before convergence may trigger (default
	// 2×ChunkSize).
	MinQueries int
}

// SelectAdaptive runs VFPS-SM with an adaptive query budget: it consumes
// cfg.Queries chunk by chunk and stops as soon as two consecutive similarity
// estimates agree within Tolerance (or the query list is exhausted).
func SelectAdaptive(ctx context.Context, leader *vfl.Leader, selectCount int, cfg AdaptiveConfig) (*Selection, error) {
	if leader == nil {
		return nil, fmt.Errorf("core: nil leader")
	}
	if selectCount <= 0 || selectCount > leader.P() {
		return nil, fmt.Errorf("core: select count %d out of range [1,%d]", selectCount, leader.P())
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("core: no query samples configured")
	}
	if cfg.Variant == "" {
		cfg.Variant = vfl.VariantFagin
	}
	if cfg.Optimizer == "" {
		cfg.Optimizer = OptGreedy
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 8
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.01
	}
	if cfg.MinQueries <= 0 {
		cfg.MinQueries = 2 * cfg.ChunkSize
	}

	start := time.Now()
	if err := leader.ResetAllCounts(ctx); err != nil {
		return nil, err
	}
	acc := leader.NewAccumulator()
	var prevW [][]float64
	var rep *vfl.SimilarityReport
	remaining := cfg.Queries
	for len(remaining) > 0 {
		chunk := remaining
		if len(chunk) > cfg.ChunkSize {
			chunk = chunk[:cfg.ChunkSize]
		}
		remaining = remaining[len(chunk):]
		if err := leader.Accumulate(ctx, chunk, cfg.K, cfg.Variant, cfg.Parallelism, acc); err != nil {
			return nil, fmt.Errorf("core: adaptive similarity phase: %w", err)
		}
		rep = acc.Report()
		if prevW != nil && acc.Queries() >= cfg.MinQueries && maxAbsDiff(prevW, rep.W) <= cfg.Tolerance {
			break
		}
		prevW = rep.W
	}

	obj, err := submod.NewFacilityLocation(rep.W)
	if err != nil {
		return nil, fmt.Errorf("core: building objective: %w", err)
	}
	var res *submod.Result
	switch cfg.Optimizer {
	case OptGreedy:
		res, err = submod.Greedy(obj, selectCount)
	case OptLazy:
		res, err = submod.LazyGreedy(obj, selectCount)
	case OptStochastic:
		res, err = submod.StochasticGreedy(obj, selectCount, 0.1, rand.New(rand.NewSource(cfg.Seed)))
	case OptWarmStart:
		res, err = submod.GreedyWarmStart(obj, selectCount, cfg.WarmStart)
	default:
		return nil, fmt.Errorf("core: unknown optimizer %q", cfg.Optimizer)
	}
	if err != nil {
		return nil, fmt.Errorf("core: maximization: %w", err)
	}
	perRole, err := leader.GatherCounts(ctx)
	if err != nil {
		return nil, err
	}
	var total costmodel.Raw
	for _, c := range perRole {
		total = total.Plus(c)
	}
	return &Selection{
		Selected:         res.Selected,
		Value:            res.Value,
		Gains:            res.Gains,
		W:                rep.W,
		AvgCandidates:    rep.AvgCandidates,
		Counts:           total,
		PerRole:          perRole,
		WallTime:         time.Since(start),
		ProjectedSeconds: costmodel.For(leader.Scheme().Name()).Seconds(total),
		Evaluations:      res.Evaluations,
		QueriesUsed:      acc.Queries(),
	}, nil
}

func maxAbsDiff(a, b [][]float64) float64 {
	var m float64
	for i := range a {
		for j := range a[i] {
			if d := math.Abs(a[i][j] - b[i][j]); d > m {
				m = d
			}
		}
	}
	return m
}
