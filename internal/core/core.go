// Package core implements VFPS-SM itself — the paper's contribution: it
// drives the vertical-federated KNN oracle to estimate the pairwise
// participant similarities w(p,s), builds the KNN submodular likelihood
// f(S) = Σ_p max_{s∈S} w(p,s), and greedily selects the sub-consortium with
// maximum likelihood (Algorithm 1), while accounting every protocol cost.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"vfps/internal/costmodel"
	"vfps/internal/obs"
	"vfps/internal/submod"
	"vfps/internal/vfl"
)

// Optimizer names the submodular maximization strategy.
type Optimizer string

const (
	// OptGreedy is the paper's Algorithm 1.
	OptGreedy Optimizer = "greedy"
	// OptLazy is Minoux's accelerated greedy (identical output, fewer
	// evaluations).
	OptLazy Optimizer = "lazy"
	// OptStochastic is stochastic greedy with eps = 0.1.
	OptStochastic Optimizer = "stochastic"
	// OptWarmStart revalidates a prior selection (Config.WarmStart) and
	// repairs only displaced picks; output is identical to greedy.
	OptWarmStart Optimizer = "warm"
)

// Config tunes a selection run.
type Config struct {
	// K is the neighbour count of the proxy KNN classifier (paper default
	// 10; Fig. 8 sweeps it).
	K int
	// Queries are the training-row indices used as KNN query samples. The
	// paper evaluates a query subset Q ⊆ D; use SampleQueries for a seeded
	// uniform sample.
	Queries []int
	// Variant picks VFPS-SM (fagin) or VFPS-SM-BASE (base).
	Variant vfl.Variant
	// Optimizer picks the maximization strategy (default greedy).
	Optimizer Optimizer
	// Seed feeds the stochastic optimizer.
	Seed int64
	// Parallelism bounds concurrent in-flight queries during the similarity
	// phase (default 1, i.e. sequential).
	Parallelism int
	// WarmStart is the prior selection OptWarmStart revalidates. Ignored by
	// the other optimizers; an empty prior degrades to lazy greedy.
	WarmStart []int
	// Cache, when non-nil, memoises similarity reports by (roster, queries,
	// variant, K) so a selection whose membership recurs skips the encrypted
	// similarity phase entirely. Opt-in: leaving it nil preserves the
	// protocol's per-run cost profile for benchmarks.
	Cache *SimCache
}

// Selection reports the outcome of a VFPS-SM run.
type Selection struct {
	// Selected lists the chosen participants in selection order.
	Selected []int
	// Value is the likelihood objective f(Selected).
	Value float64
	// Gains are the per-step marginal gains (diminishing, by Theorem 1).
	Gains []float64
	// W is the estimated participant similarity matrix.
	W [][]float64
	// AvgCandidates is the mean per-query number of encrypted/communicated
	// instances (the Fig. 9 metric).
	AvgCandidates float64
	// Counts aggregates primitive-operation counts across every role.
	Counts costmodel.Raw
	// PerRole breaks counts down by node name.
	PerRole map[string]costmodel.Raw
	// WallTime is the measured selection duration.
	WallTime time.Duration
	// ProjectedSeconds prices Counts under the calibrated cost model,
	// projecting the selection cost of an encrypted deployment.
	ProjectedSeconds float64
	// Evaluations counts objective evaluations in the maximization step.
	Evaluations int
	// QueriesUsed is the number of KNN queries actually processed (differs
	// from len(Config.Queries) only for SelectAdaptive).
	QueriesUsed int
}

// SampleQueries returns `count` distinct row indices from [0, n) drawn with
// the given seed; if count >= n it returns all rows.
func SampleQueries(n, count int, seed int64) []int {
	if count >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return rand.New(rand.NewSource(seed)).Perm(n)[:count]
}

// SampleQueriesStratified draws `count` query rows with per-class
// proportional allocation (at least one per class when count allows),
// using the labels the leader holds. Class-balanced queries stabilise the
// likelihood estimate on imbalanced datasets.
func SampleQueriesStratified(y []int, classes, count int, seed int64) []int {
	n := len(y)
	if count >= n {
		return SampleQueries(n, count, seed)
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := make([][]int, classes)
	for i, label := range y {
		if label >= 0 && label < classes {
			byClass[label] = append(byClass[label], i)
		}
	}
	out := make([]int, 0, count)
	for c, rows := range byClass {
		if len(rows) == 0 {
			continue
		}
		// Proportional share, rounded, with a floor of one.
		share := count * len(rows) / n
		if share < 1 {
			share = 1
		}
		if share > len(rows) {
			share = len(rows)
		}
		perm := rng.Perm(len(rows))
		for i := 0; i < share && len(out) < count; i++ {
			out = append(out, rows[perm[i]])
		}
		_ = c
	}
	// Top up from the global pool if rounding left us short.
	if len(out) < count {
		in := map[int]bool{}
		for _, r := range out {
			in[r] = true
		}
		for _, r := range rng.Perm(n) {
			if len(out) == count {
				break
			}
			if !in[r] {
				out = append(out, r)
				in[r] = true
			}
		}
	}
	return out
}

// Select runs the full VFPS-SM pipeline against an already wired cluster
// leader, choosing selectCount of the leader's participants.
func Select(ctx context.Context, leader *vfl.Leader, selectCount int, cfg Config) (*Selection, error) {
	if leader == nil {
		return nil, fmt.Errorf("core: nil leader")
	}
	if selectCount <= 0 || selectCount > leader.P() {
		return nil, fmt.Errorf("core: select count %d out of range [1,%d]", selectCount, leader.P())
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("core: no query samples configured")
	}
	if cfg.Variant == "" {
		cfg.Variant = vfl.VariantFagin
	}
	if cfg.Optimizer == "" {
		cfg.Optimizer = OptGreedy
	}

	// Each protocol phase — count reset, similarity estimation, submodular
	// maximization, cost accounting — opens a sequential root span so a trace
	// report's per-phase durations decompose the selection wall clock. The
	// phases share one trace ID (without a parent link, preserving the
	// four-root-phase report shape), so a cross-node span forest groups an
	// entire selection — including every remote RPC it fanned out — under a
	// single trace.
	observer := leader.Observer()
	tracer := observer.Tracer()
	var traceID obs.TraceID
	if tracer != nil {
		ctx, traceID = obs.ContextWithNewTrace(ctx)
	}
	selID := obs.QueryIDFromContext(ctx)
	if observer != nil && selID == "" {
		selID = obs.NewQueryID("s")
		ctx = obs.ContextWithQueryID(ctx, selID)
	}
	start := time.Now()
	phaseStart := start
	var phases []obs.PhaseSecs
	phase := func(name string) {
		if observer != nil {
			now := time.Now()
			phases = append(phases, obs.PhaseSecs{Name: name, Seconds: now.Sub(phaseStart).Seconds()})
			phaseStart = now
		}
	}
	pctx, psp := tracer.Start(ctx, "select.prepare")
	err := leader.ResetAllCounts(pctx)
	psp.End()
	phase("prepare")
	if err != nil {
		return nil, fmt.Errorf("core: prepare phase: %w", err)
	}
	var simKey string
	var rep *vfl.SimilarityReport
	if cfg.Cache != nil {
		simKey = SimKey(leader.Parties(), cfg.Queries, cfg.Variant, cfg.K)
		var hit bool
		rep, hit = cfg.Cache.Lookup(simKey)
		if observer != nil {
			recordSimCache(observer.Registry(), leader.Instance(), hit)
		}
	}
	if rep == nil {
		sctx, ssp := tracer.Start(ctx, "select.similarity")
		ssp.SetLabelInt("queries", int64(len(cfg.Queries)))
		ssp.SetLabelInt("k", int64(cfg.K))
		rep, err = leader.SimilaritiesParallel(sctx, cfg.Queries, cfg.K, cfg.Variant, cfg.Parallelism)
		ssp.End()
		phase("similarity")
		if err != nil {
			return nil, fmt.Errorf("core: similarity phase: %w", err)
		}
		if cfg.Cache != nil {
			cfg.Cache.Store(simKey, rep)
		}
	} else {
		phase("similarity")
	}
	_, msp := tracer.Start(ctx, "select.maximize")
	msp.SetLabel("optimizer", string(cfg.Optimizer))
	obj, err := submod.NewFacilityLocation(rep.W)
	if err != nil {
		msp.End()
		return nil, fmt.Errorf("core: building objective: %w", err)
	}
	var res *submod.Result
	switch cfg.Optimizer {
	case OptGreedy:
		res, err = submod.Greedy(obj, selectCount)
	case OptLazy:
		res, err = submod.LazyGreedy(obj, selectCount)
	case OptStochastic:
		res, err = submod.StochasticGreedy(obj, selectCount, 0.1, rand.New(rand.NewSource(cfg.Seed)))
	case OptWarmStart:
		res, err = submod.GreedyWarmStart(obj, selectCount, cfg.WarmStart)
	default:
		msp.End()
		return nil, fmt.Errorf("core: unknown optimizer %q", cfg.Optimizer)
	}
	if err != nil {
		msp.End()
		return nil, fmt.Errorf("core: maximization: %w", err)
	}
	msp.SetLabelInt("evaluations", int64(res.Evaluations))
	msp.End()
	phase("maximize")
	gctx, gsp := tracer.Start(ctx, "select.accounting")
	perRole, err := leader.GatherCounts(gctx)
	gsp.End()
	phase("accounting")
	if err != nil {
		return nil, fmt.Errorf("core: accounting phase: %w", err)
	}
	var total costmodel.Raw
	for _, c := range perRole {
		total = total.Plus(c)
	}
	// One selection-level query-log event: end-to-end latency decomposed by
	// phase, plus the full cost-model snapshot as attributes.
	if observer != nil {
		ev := obs.QueryEvent{
			Kind:    "selection",
			ID:      selID,
			Tenant:  leader.Instance(),
			Seconds: time.Since(start).Seconds(),
			Phases:  phases,
			Attrs:   total.Attrs(),
		}
		if !traceID.IsZero() {
			ev.Trace = traceID.String()
		}
		ev.Attrs["queries"] = len(cfg.Queries)
		ev.Attrs["k"] = cfg.K
		ev.Attrs["variant"] = string(cfg.Variant)
		ev.Attrs["selected"] = len(res.Selected)
		observer.Log().Record(ev)
	}
	return &Selection{
		Selected:         res.Selected,
		Value:            res.Value,
		Gains:            res.Gains,
		W:                rep.W,
		AvgCandidates:    rep.AvgCandidates,
		Counts:           total,
		PerRole:          perRole,
		WallTime:         time.Since(start),
		ProjectedSeconds: costmodel.For(leader.Scheme().Name()).Seconds(total),
		Evaluations:      res.Evaluations,
		QueriesUsed:      len(cfg.Queries),
	}, nil
}
