package core

import (
	"context"
	"testing"
	"time"

	"vfps/internal/dataset"
	"vfps/internal/obs"
	"vfps/internal/vfl"
)

// TestSelectPhaseSpans asserts a traced selection decomposes into the four
// sequential root phases — count reset, similarity estimation, submodular
// maximization, cost accounting — whose durations sum to within the measured
// wall clock, with every query span nested inside the similarity phase.
func TestSelectPhaseSpans(t *testing.T) {
	spec, err := dataset.SpecByName("Bank")
	if err != nil {
		t.Fatal(err)
	}
	d, err := spec.Generate(100)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := dataset.VerticalSplit(d, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(4096)
	cl, err := vfl.NewLocalCluster(context.Background(), vfl.ClusterConfig{
		Partition:   pt,
		Scheme:      "plain",
		ShuffleSeed: 7,
		Batch:       8,
		Obs:         o,
		Instance:    "phase-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	o.Tracer().Reset() // drop cluster-construction spans

	start := time.Now()
	sel, err := Select(context.Background(), cl.Leader, 2, Config{
		K:       5,
		Queries: SampleQueries(100, 10, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	rep := o.Tracer().Report()
	wantPhases := []string{"select.prepare", "select.similarity", "select.maximize", "select.accounting"}
	if len(rep.Phases) != len(wantPhases) {
		t.Fatalf("phases = %+v, want %v", rep.Phases, wantPhases)
	}
	for i, w := range wantPhases {
		if rep.Phases[i].Name != w {
			t.Fatalf("phase %d = %s, want %s (all: %+v)", i, rep.Phases[i].Name, w, rep.Phases)
		}
	}
	var phaseNs int64
	for _, p := range rep.Phases {
		if p.Count != 1 || p.TotalNs <= 0 {
			t.Fatalf("degenerate phase %+v", p)
		}
		phaseNs += p.TotalNs
	}
	if phaseNs > wall.Nanoseconds() {
		t.Fatalf("phase total %dns exceeds wall clock %dns", phaseNs, wall.Nanoseconds())
	}

	// All query spans run inside the similarity phase, none at the root.
	var simID uint64
	for _, s := range rep.Spans {
		if s.Name == "select.similarity" {
			simID = s.ID
		}
	}
	queries := 0
	for _, s := range rep.Spans {
		if s.Name == vfl.SpanQuery {
			queries++
			if s.Parent != simID {
				t.Fatalf("%s span parented to %d, want similarity phase %d", vfl.SpanQuery, s.Parent, simID)
			}
		}
	}
	if queries != sel.QueriesUsed {
		t.Fatalf("traced %d query spans, selection used %d", queries, sel.QueriesUsed)
	}
}
