// Package transport carries the VFL protocol messages between the system
// roles (participants, aggregation server, leader, key server). It replaces
// the paper's proto3/gRPC stack with a stdlib-only request/response
// abstraction and two implementations: an in-process transport for
// single-binary runs and tests, and a TCP transport with length-framed
// messages for genuinely distributed deployments (cmd/vfpsnode). Message
// bodies are opaque here; CodecCaller layers internal/wire codecs (gob or
// the compact binary format) with per-peer version negotiation on top of
// either transport.
package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vfps/internal/obs"
)

// Handler processes one request addressed to a node and returns the response
// payload. Handlers must be safe for concurrent use.
type Handler func(ctx context.Context, method string, req []byte) ([]byte, error)

// Caller issues requests to named peers.
type Caller interface {
	// Call sends req to the peer's handler for method and returns its
	// response, honouring ctx cancellation.
	Call(ctx context.Context, peer, method string, req []byte) ([]byte, error)
}

// Stats counts traffic through a transport endpoint; the cost model uses
// these to account communication (η in the paper's cost analysis). Both
// transports record the same counters on the same events: CallsSent and
// BytesSent when a call is dispatched (even if it subsequently fails),
// BytesReceived when a successful response arrives, and Errors whenever Call
// returns a non-nil error — so error rate is Errors/CallsSent on any
// transport.
type Stats struct {
	CallsSent     atomic.Int64
	BytesSent     atomic.Int64
	BytesReceived atomic.Int64
	Errors        atomic.Int64
}

// StatsSnapshot is a plain-value copy of the counters.
type StatsSnapshot struct {
	CallsSent     int64
	BytesSent     int64
	BytesReceived int64
	Errors        int64
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		CallsSent:     s.CallsSent.Load(),
		BytesSent:     s.BytesSent.Load(),
		BytesReceived: s.BytesReceived.Load(),
		Errors:        s.Errors.Load(),
	}
}

// ErrUnknownPeer reports a Call to a peer that is not registered.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// ErrUnknownMethod reports a request for a method the node does not serve.
var ErrUnknownMethod = errors.New("transport: unknown method")

// Memory is an in-process transport: a registry of named handlers.
// The zero value is ready to use.
type Memory struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	stats    Stats
	ins      atomic.Pointer[instruments]
	// FailPeer, when non-empty, makes calls to that peer fail with
	// ErrInjectedFailure — used by failure-injection tests.
	failPeer atomic.Value // string
}

// SetObserver installs metrics and tracing on the transport: per-peer and
// per-method call counters, latency and payload-size histograms, plus an
// "rpc" span per call when the observer carries a tracer. A nil observer
// restores the no-op default.
func (m *Memory) SetObserver(o *obs.Observer) {
	m.ins.Store(newInstruments(o, "memory"))
}

// ErrInjectedFailure is returned for peers marked faulty via InjectFailure.
var ErrInjectedFailure = errors.New("transport: injected failure")

// Register installs the handler serving the given node name, replacing any
// previous registration.
func (m *Memory) Register(name string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.handlers == nil {
		m.handlers = make(map[string]Handler)
	}
	m.handlers[name] = h
}

// InjectFailure makes subsequent calls to the named peer fail; an empty name
// clears the injection.
func (m *Memory) InjectFailure(peer string) { m.failPeer.Store(peer) }

// Call dispatches directly to the registered handler.
func (m *Memory) Call(ctx context.Context, peer, method string, req []byte) ([]byte, error) {
	m.stats.CallsSent.Add(1)
	m.stats.BytesSent.Add(int64(len(req)))
	ins := m.ins.Load()
	start := time.Now()
	ctx, sp := ins.span(ctx, peer, method)
	resp, err := m.dispatch(ctx, peer, method, req)
	ins.record(peer, method, len(req), len(resp), start, err)
	sp.End()
	if err != nil {
		m.stats.Errors.Add(1)
		return nil, err
	}
	m.stats.BytesReceived.Add(int64(len(resp)))
	return resp, nil
}

func (m *Memory) dispatch(ctx context.Context, peer, method string, req []byte) ([]byte, error) {
	if fp, _ := m.failPeer.Load().(string); fp != "" && fp == peer {
		return nil, fmt.Errorf("calling %s: %w", peer, ErrInjectedFailure)
	}
	m.mu.RLock()
	h, ok := m.handlers[peer]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPeer, peer)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return h(ctx, method, req)
}

// Stats exposes the traffic counters.
func (m *Memory) Stats() *Stats { return &m.stats }

// EncodeGob serialises v with encoding/gob.
func EncodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// DecodeGob deserialises data into v (a pointer).
func DecodeGob(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("transport: decoding %T: %w", v, err)
	}
	return nil
}
