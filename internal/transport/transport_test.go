package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoHandler(ctx context.Context, method string, req []byte) ([]byte, error) {
	switch method {
	case "echo":
		return req, nil
	case "upper":
		return []byte(strings.ToUpper(string(req))), nil
	case "fail":
		return nil, errors.New("boom")
	default:
		return nil, fmt.Errorf("%w: %s", ErrUnknownMethod, method)
	}
}

func TestMemoryCall(t *testing.T) {
	var m Memory
	m.Register("node1", echoHandler)
	resp, err := m.Call(context.Background(), "node1", "echo", []byte("hi"))
	if err != nil || string(resp) != "hi" {
		t.Fatalf("echo failed: %v %q", err, resp)
	}
}

func TestMemoryUnknownPeer(t *testing.T) {
	var m Memory
	if _, err := m.Call(context.Background(), "ghost", "echo", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestMemoryHandlerError(t *testing.T) {
	var m Memory
	m.Register("n", echoHandler)
	if _, err := m.Call(context.Background(), "n", "fail", nil); err == nil {
		t.Fatal("expected handler error")
	}
	if _, err := m.Call(context.Background(), "n", "nope", nil); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

func TestMemoryContextCancelled(t *testing.T) {
	var m Memory
	m.Register("n", echoHandler)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Call(ctx, "n", "echo", nil); err == nil {
		t.Fatal("expected context error")
	}
}

func TestMemoryInjectFailure(t *testing.T) {
	var m Memory
	m.Register("n", echoHandler)
	m.InjectFailure("n")
	if _, err := m.Call(context.Background(), "n", "echo", nil); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("want ErrInjectedFailure, got %v", err)
	}
	m.InjectFailure("")
	if _, err := m.Call(context.Background(), "n", "echo", nil); err != nil {
		t.Fatalf("clearing injection failed: %v", err)
	}
}

func TestMemoryStats(t *testing.T) {
	var m Memory
	m.Register("n", echoHandler)
	if _, err := m.Call(context.Background(), "n", "echo", []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	s := m.Stats().Snapshot()
	if s.CallsSent != 1 || s.BytesSent != 4 || s.BytesReceived != 4 || s.Errors != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMemoryConcurrent(t *testing.T) {
	var m Memory
	m.Register("n", echoHandler)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := fmt.Sprintf("m%d", i)
			resp, err := m.Call(context.Background(), "n", "echo", []byte(msg))
			if err != nil || string(resp) != msg {
				t.Errorf("call %d: %v %q", i, err, resp)
			}
		}(i)
	}
	wg.Wait()
}

func TestGobRoundTrip(t *testing.T) {
	type payload struct {
		A int
		B []float64
		C string
	}
	in := payload{A: 7, B: []float64{1.5, -2.5}, C: "x"}
	b, err := EncodeGob(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := DecodeGob(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != in.A || out.C != in.C || len(out.B) != 2 || out.B[1] != -2.5 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestDecodeGobGarbage(t *testing.T) {
	var out int
	if err := DecodeGob([]byte{0xff, 0x01, 0x02}, &out); err == nil {
		t.Fatal("expected decode error")
	}
}

func startTCP(t *testing.T) (*TCPServer, *TCPClient) {
	t.Helper()
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli := NewTCPClient(map[string]string{"srv": srv.Addr()})
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestTCPCall(t *testing.T) {
	_, cli := startTCP(t)
	resp, err := cli.Call(context.Background(), "srv", "upper", []byte("hello"))
	if err != nil || string(resp) != "HELLO" {
		t.Fatalf("tcp call: %v %q", err, resp)
	}
}

func TestTCPRemoteError(t *testing.T) {
	_, cli := startTCP(t)
	_, err := cli.Call(context.Background(), "srv", "fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "boom") {
		t.Fatalf("want RemoteError boom, got %v", err)
	}
	// The connection must remain usable after a remote error.
	resp, err := cli.Call(context.Background(), "srv", "echo", []byte("ok"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("connection broken after remote error: %v", err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	_, cli := startTCP(t)
	if _, err := cli.Call(context.Background(), "ghost", "echo", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	cli := NewTCPClient(map[string]string{"down": "127.0.0.1:1"})
	defer cli.Close()
	if _, err := cli.Call(context.Background(), "down", "echo", nil); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestTCPLargePayload(t *testing.T) {
	_, cli := startTCP(t)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := cli.Call(context.Background(), "srv", "echo", big)
	if err != nil || len(resp) != len(big) {
		t.Fatalf("large payload: %v len %d", err, len(resp))
	}
	for i := range big {
		if resp[i] != big[i] {
			t.Fatal("payload corrupted")
		}
	}
}

func TestTCPConcurrent(t *testing.T) {
	_, cli := startTCP(t)
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := fmt.Sprintf("msg-%d", i)
			resp, err := cli.Call(context.Background(), "srv", "echo", []byte(msg))
			if err != nil || string(resp) != msg {
				t.Errorf("call %d: %v %q", i, err, resp)
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPDeadline(t *testing.T) {
	slow := func(ctx context.Context, method string, req []byte) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return req, nil
	}
	srv, err := ListenTCP("127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewTCPClient(map[string]string{"srv": srv.Addr()})
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, "srv", "echo", []byte("x")); err == nil {
		t.Fatal("expected deadline error")
	}
}

func TestTCPServerClose(t *testing.T) {
	srv, cli := startTCP(t)
	if _, err := cli.Call(context.Background(), "srv", "echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	cli2 := NewTCPClient(map[string]string{"srv": srv.Addr()})
	defer cli2.Close()
	if _, err := cli2.Call(ctx, "srv", "echo", []byte("b")); err == nil {
		t.Fatal("expected error after server close")
	}
}

func TestTCPClientClosed(t *testing.T) {
	_, cli := startTCP(t)
	cli.Close()
	if _, err := cli.Call(context.Background(), "srv", "echo", nil); err == nil {
		t.Fatal("expected closed-client error")
	}
}

func TestTCPStats(t *testing.T) {
	_, cli := startTCP(t)
	if _, err := cli.Call(context.Background(), "srv", "echo", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	s := cli.Stats().Snapshot()
	if s.CallsSent != 1 || s.BytesSent != 5 || s.BytesReceived != 5 || s.Errors != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	// A length header beyond the sanity bound must be rejected before any
	// allocation attempt.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := readFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("expected oversized-frame error")
	}
}

func TestWriteReadFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("round trip: %v %q", err, got)
	}
	// Empty frames are legal.
	buf.Reset()
	if err := writeFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := readFrame(&buf); err != nil || len(got) != 0 {
		t.Fatalf("empty frame: %v %q", err, got)
	}
}
