package transport

import (
	"context"
	"fmt"
	"testing"

	"vfps/internal/obs"
	"vfps/internal/wire"
)

// tcpEchoHandler serves hello plus echo, mirroring the request codec and
// reporting the query ID its context carried — the server-side contract of
// trace propagation.
func tcpEchoHandler(seenQID *string) Handler {
	return func(ctx context.Context, method string, req []byte) ([]byte, error) {
		switch method {
		case MethodHello:
			return wire.HandleHello(req, wire.MaxVersion)
		case "echo":
			*seenQID = obs.QueryIDFromContext(ctx)
			codec, err := wire.DetectMax(req, wire.MaxVersion)
			if err != nil {
				return nil, err
			}
			var msg echoMsg
			if err := codec.Unmarshal(req, &msg); err != nil {
				return nil, err
			}
			msg.N++
			return codec.Marshal(&msg)
		default:
			return nil, fmt.Errorf("%w: %s", ErrUnknownMethod, method)
		}
	}
}

// TestTCPTracePropagation drives one binary-codec call across a real TCP
// boundary and asserts the two processes' span rings stitch into one trace:
// the server's rpc.serve span must be parented under the client's span, and
// the query ID must arrive in the handler context.
func TestTCPTracePropagation(t *testing.T) {
	var seenQID string
	srv, err := ListenTCP("127.0.0.1:0", tcpEchoHandler(&seenQID))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	serverObs := obs.NewObserver(64)
	serverObs.Trace.SetNode("server")
	srv.SetObserver(serverObs)

	cli := NewTCPClient(map[string]string{"peer": srv.Addr()})
	defer cli.Close()
	clientObs := obs.NewObserver(64)
	clientObs.Trace.SetNode("client")
	cli.SetObserver(clientObs)
	cc := NewCodecCaller(cli, wire.Binary())

	ctx := obs.ContextWithQueryID(context.Background(), "q-cafe0001")
	ctx, root := clientObs.Trace.Start(ctx, "vfl.query")
	var resp echoMsg
	if _, err := cc.Invoke(ctx, "peer", "echo", &echoMsg{N: 41}, &resp); err != nil {
		t.Fatal(err)
	}
	root.End()
	if resp.N != 42 {
		t.Fatalf("echo = %d, want 42", resp.N)
	}
	if seenQID != "q-cafe0001" {
		t.Fatalf("handler saw query ID %q, want q-cafe0001", seenQID)
	}

	rootData := clientObs.Trace.Report().Spans
	var query, rpc obs.SpanData
	for _, s := range rootData {
		switch s.Name {
		case "vfl.query":
			query = s
		case "rpc":
			rpc = s
		}
	}
	if query.ID == 0 {
		t.Fatal("client query span missing")
	}
	var serve obs.SpanData
	for _, s := range serverObs.Trace.Report().Spans {
		if s.Name == "rpc.serve" && s.Labels["method"] == "echo" {
			serve = s
		}
	}
	if serve.ID == 0 {
		t.Fatal("server rpc.serve span missing")
	}
	if serve.Trace != query.Trace {
		t.Fatalf("server span trace %s, want client trace %s", serve.Trace, query.Trace)
	}
	// Injection happens at the Invoke layer, so the server span parents
	// under the caller's protocol span (the transport's own rpc span is a
	// sibling leaf measuring the exchange); the forest must stitch both
	// processes with no orphans.
	if serve.Parent != query.ID {
		t.Fatalf("serve parent = %d, want client query span %d", serve.Parent, query.ID)
	}
	if rpc.ID == 0 || rpc.Parent != query.ID {
		t.Fatalf("client rpc span = %+v, want child of query span %d", rpc, query.ID)
	}
	all := append(rootData, serverObs.Trace.Report().Spans...)
	for _, tree := range obs.AssembleForest(all) {
		if tree.Trace != query.Trace {
			continue
		}
		if tree.Orphans != 0 || len(tree.Nodes) != 2 {
			t.Fatalf("stitched tree = %+v", tree)
		}
		return
	}
	t.Fatal("query trace missing from forest")
}

// TestTCPTraceOmittedForLegacy asserts the two paths that must not carry the
// field: gob codecs (no envelope) and calls with no span in context.
func TestTCPTraceOmittedForLegacy(t *testing.T) {
	var seenQID string
	srv, err := ListenTCP("127.0.0.1:0", tcpEchoHandler(&seenQID))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewTCPClient(map[string]string{"peer": srv.Addr()})
	defer cli.Close()

	// Gob: even with a live span, nothing is injected (version 0 payloads
	// have no tag space) and the call succeeds against the same server.
	clientObs := obs.NewObserver(64)
	cli.SetObserver(clientObs)
	gc := NewCodecCaller(cli, wire.Gob())
	ctx, sp := clientObs.Trace.Start(context.Background(), "op")
	var resp echoMsg
	if _, err := gc.Invoke(ctx, "peer", "echo", &echoMsg{N: 1}, &resp); err != nil || resp.N != 2 {
		t.Fatalf("gob echo: %v, N=%d", err, resp.N)
	}
	sp.End()
	if seenQID != "" {
		t.Fatalf("gob call leaked query ID %q", seenQID)
	}

	// Binary with no span or query ID in context: the request byte stream is
	// identical to a pre-trace build's, so legacy golden vectors hold.
	bc := NewCodecCaller(cli, wire.Binary())
	if _, err := bc.Invoke(context.Background(), "peer", "echo", &echoMsg{N: 5}, &resp); err != nil || resp.N != 6 {
		t.Fatalf("binary echo: %v, N=%d", err, resp.N)
	}
	if seenQID != "" {
		t.Fatalf("observer-less call leaked query ID %q", seenQID)
	}
}
