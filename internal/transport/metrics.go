package transport

import (
	"context"
	"errors"
	"net"
	"time"

	"vfps/internal/obs"
	"vfps/internal/wire"
)

// Metric families recorded by the transports. The same families are used by
// the Memory and TCP client paths (distinguished by the transport label), so
// dashboards aggregate over deployments transparently.
const (
	metricCalls     = "vfps_transport_calls_total"
	metricErrors    = "vfps_transport_errors_total"
	metricLatency   = "vfps_transport_call_seconds"
	metricReqBytes  = "vfps_transport_request_bytes"
	metricRespBytes = "vfps_transport_response_bytes"
	metricServed    = "vfps_transport_served_total"
	metricServeSecs = "vfps_transport_serve_seconds"
)

// DeclareMetrics pre-declares the transport metric families on reg, so a
// freshly started process exposes the full metric surface (HELP/TYPE lines)
// before any traffic flows. Safe to call more than once; a nil registry is a
// no-op.
func DeclareMetrics(reg *obs.Registry) {
	clientFamilies(reg)
	serverFamilies(reg)
}

// instruments is the resolved client-side metric set plus the tracer. It is
// installed atomically via SetObserver; a nil *instruments (the default)
// costs one pointer load per call.
type instruments struct {
	kind    string // transport label value: "memory" or "tcp"
	tracer  *obs.Tracer
	calls   *obs.CounterVec
	errors  *obs.CounterVec
	latency *obs.HistogramVec
	reqB    *obs.HistogramVec
	respB   *obs.HistogramVec
}

func clientFamilies(reg *obs.Registry) (calls, errors *obs.CounterVec, latency, reqB, respB *obs.HistogramVec) {
	calls = reg.Counter(metricCalls, "RPC calls issued, by transport, peer and method.", "transport", "peer", "method")
	errors = reg.Counter(metricErrors, "RPC calls that returned an error, by kind (timeout, canceled, remote, decode, route, injected, network, other). Sum over kind for the pre-label total.", "transport", "peer", "method", "kind")
	latency = reg.Histogram(metricLatency, "End-to-end RPC call latency in seconds.", obs.LatencyBuckets, "transport", "peer", "method")
	reqB = reg.Histogram(metricReqBytes, "RPC request payload size in bytes.", obs.SizeBuckets, "transport", "peer", "method")
	respB = reg.Histogram(metricRespBytes, "RPC response payload size in bytes.", obs.SizeBuckets, "transport", "peer", "method")
	return
}

func serverFamilies(reg *obs.Registry) (served *obs.CounterVec, secs *obs.HistogramVec) {
	served = reg.Counter(metricServed, "RPC requests served by the TCP server, by method.", "method")
	secs = reg.Histogram(metricServeSecs, "Handler execution time on the TCP server in seconds.", obs.LatencyBuckets, "method")
	return
}

// newInstruments resolves the client instrument set against an observer,
// returning nil when the observer carries nothing to record into.
func newInstruments(o *obs.Observer, kind string) *instruments {
	if o.Registry() == nil && o.Tracer() == nil {
		return nil
	}
	ins := &instruments{kind: kind, tracer: o.Tracer()}
	ins.calls, ins.errors, ins.latency, ins.reqB, ins.respB = clientFamilies(o.Registry())
	return ins
}

// record accounts one finished call. The latency histogram includes failed
// calls (timeouts must be visible in tail latency); byte histograms record
// only what actually crossed the wire.
func (ins *instruments) record(peer, method string, reqLen, respLen int, start time.Time, err error) {
	if ins == nil {
		return
	}
	ins.calls.With(ins.kind, peer, method).Inc()
	ins.latency.With(ins.kind, peer, method).ObserveSince(start)
	ins.reqB.With(ins.kind, peer, method).Observe(float64(reqLen))
	if err != nil {
		ins.errors.With(ins.kind, peer, method, errKind(err)).Inc()
		return
	}
	ins.respB.With(ins.kind, peer, method).Observe(float64(respLen))
}

// errKind classifies a call error for the error counter's kind label, so a
// soak failure is attributable at a glance: a timeout wall is not a decode
// bug is not a crashing remote handler. The unlabeled pre-kind total is the
// sum across kinds — dashboards aggregating over all labels see the same
// series as before.
func errKind(err error) string {
	var remote *RemoteError
	var uv *wire.UnsupportedVersionError
	var nerr net.Error
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.As(err, &remote):
		return "remote"
	case errors.Is(err, wire.ErrCorrupt), errors.Is(err, wire.ErrTruncated),
		errors.Is(err, wire.ErrOverflow), errors.Is(err, wire.ErrWireType),
		errors.As(err, &uv):
		return "decode"
	case errors.Is(err, ErrUnknownPeer), errors.Is(err, ErrUnknownMethod):
		return "route"
	case errors.Is(err, ErrInjectedFailure):
		return "injected"
	case errors.As(err, &nerr):
		if nerr.Timeout() {
			return "timeout"
		}
		return "network"
	default:
		return "other"
	}
}

// span opens an "rpc" span as a child of any span already in ctx.
func (ins *instruments) span(ctx context.Context, peer, method string) (context.Context, *obs.Span) {
	if ins == nil || ins.tracer == nil {
		return ctx, nil
	}
	ctx, sp := ins.tracer.Start(ctx, "rpc")
	sp.SetLabel("peer", peer)
	sp.SetLabel("method", method)
	return ctx, sp
}
