package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"vfps/internal/wire"
)

// echoMsg is a minimal wire.Message for exercising CodecCaller.
type echoMsg struct {
	N  int64
	BB [][]byte
}

func (m *echoMsg) MarshalWire(e *wire.Encoder) {
	e.Int(1, m.N)
	e.Blobs(2, m.BB)
}

func (m *echoMsg) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.N = d.Int()
		case 2:
			m.BB = d.Blobs()
		}
	}
	return d.Err()
}

// codecNode registers a handler that serves hello at the given version and
// echoes echoMsg mirroring the request codec — the same contract the vfl
// roles implement.
func codecNode(t *testing.T, m *Memory, name string, version uint64) {
	t.Helper()
	m.Register(name, func(ctx context.Context, method string, req []byte) ([]byte, error) {
		switch method {
		case MethodHello:
			return wire.HandleHello(req, version)
		case "echo":
			codec, err := wire.DetectMax(req, version)
			if err != nil {
				return nil, err
			}
			var msg echoMsg
			if err := codec.Unmarshal(req, &msg); err != nil {
				return nil, err
			}
			msg.N++
			return codec.Marshal(&msg)
		default:
			return nil, fmt.Errorf("%w: %s", ErrUnknownMethod, method)
		}
	})
}

// prewireNode has no hello handler at all — a build from before this codec
// layer existed. It still speaks gob.
func prewireNode(t *testing.T, m *Memory, name string) {
	t.Helper()
	m.Register(name, func(ctx context.Context, method string, req []byte) ([]byte, error) {
		if method != "echo" {
			return nil, fmt.Errorf("%w: %s", ErrUnknownMethod, method)
		}
		var msg echoMsg
		if err := DecodeGob(req, &msg); err != nil {
			return nil, err
		}
		msg.N++
		return EncodeGob(&msg)
	})
}

func TestCodecCallerNegotiation(t *testing.T) {
	var m Memory
	codecNode(t, &m, "binpeer", wire.MaxVersion)
	codecNode(t, &m, "gobpeer", 0)
	prewireNode(t, &m, "oldpeer")

	cc := NewCodecCaller(&m, wire.Binary())
	ctx := context.Background()
	for peer, wantCodec := range map[string]string{
		"binpeer": "binary",
		"gobpeer": "gob",
		"oldpeer": "gob",
	} {
		var resp echoMsg
		st, err := cc.Invoke(ctx, peer, "echo", &echoMsg{N: 41, BB: [][]byte{{1, 2, 3}}}, &resp)
		if err != nil {
			t.Fatalf("%s: %v", peer, err)
		}
		if resp.N != 42 {
			t.Errorf("%s: echo returned %d", peer, resp.N)
		}
		if st.Codec != wantCodec {
			t.Errorf("%s: request went out as %s, want %s", peer, st.Codec, wantCodec)
		}
		if got := cc.Negotiated(peer); got != wantCodec {
			t.Errorf("%s: negotiated %q, want %q", peer, got, wantCodec)
		}
		if st.Payload != 3 || st.Framing <= 0 {
			t.Errorf("%s: stats %+v, want payload 3 and positive framing", peer, st)
		}
	}
}

func TestCodecCallerGobPreferenceSkipsHello(t *testing.T) {
	var m Memory
	// The peer would fail loudly if it ever saw a hello.
	m.Register("peer", func(ctx context.Context, method string, req []byte) ([]byte, error) {
		if method == MethodHello {
			t.Error("gob-preferring caller sent a hello probe")
		}
		var msg echoMsg
		if err := DecodeGob(req, &msg); err != nil {
			return nil, err
		}
		return EncodeGob(&msg)
	})
	cc := NewCodecCaller(&m, nil) // nil pref = gob
	var resp echoMsg
	if _, err := cc.Invoke(context.Background(), "peer", "echo", &echoMsg{N: 7}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 7 {
		t.Fatalf("echo returned %d", resp.N)
	}
	if got := cc.Negotiated("peer"); got != "gob" {
		t.Fatalf("Negotiated = %q", got)
	}
}

func TestCodecCallerTransientFaultNotCached(t *testing.T) {
	var m Memory
	codecNode(t, &m, "peer", wire.MaxVersion)
	m.InjectFailure("peer")
	cc := NewCodecCaller(&m, wire.Binary())
	ctx := context.Background()
	if _, err := cc.Invoke(ctx, "peer", "echo", &echoMsg{N: 1}, nil); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("faulty peer: got %v", err)
	}
	if got := cc.Negotiated("peer"); got != "" {
		t.Fatalf("fault cached a codec: %q", got)
	}
	// Once the fault clears the probe succeeds and commits to binary.
	m.InjectFailure("")
	var resp echoMsg
	if _, err := cc.Invoke(ctx, "peer", "echo", &echoMsg{N: 1}, &resp); err != nil || resp.N != 2 {
		t.Fatalf("recovered call: %v, N=%d", err, resp.N)
	}
	if got := cc.Negotiated("peer"); got != "binary" {
		t.Fatalf("Negotiated = %q, want binary", got)
	}
}

func TestCodecCallerRejectsFutureResponseVersion(t *testing.T) {
	var m Memory
	m.Register("peer", func(ctx context.Context, method string, req []byte) ([]byte, error) {
		if method == MethodHello {
			return wire.HandleHello(req, wire.MaxVersion)
		}
		// A misbehaving peer answering with a version-9 envelope.
		return wire.AppendUvarint([]byte{0x00}, 9), nil
	})
	cc := NewCodecCaller(&m, wire.Binary())
	var resp echoMsg
	var vErr *wire.UnsupportedVersionError
	_, err := cc.Invoke(context.Background(), "peer", "echo", &echoMsg{N: 1}, &resp)
	if !errors.As(err, &vErr) || vErr.Version != 9 {
		t.Fatalf("future response version: got %v, want UnsupportedVersionError{9}", err)
	}
}
