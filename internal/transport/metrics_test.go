package transport

import (
	"context"
	"strings"
	"testing"

	"vfps/internal/obs"
)

// runScript drives one fixed call sequence — two successes, one handler
// error, one unknown method — against any Caller and returns the per-call
// errors. Both transports must account it identically.
func runScript(t *testing.T, c Caller, peer string) {
	t.Helper()
	if _, err := c.Call(context.Background(), peer, "echo", []byte("abcd")); err != nil {
		t.Fatalf("echo: %v", err)
	}
	if _, err := c.Call(context.Background(), peer, "upper", []byte("xy")); err != nil {
		t.Fatalf("upper: %v", err)
	}
	if _, err := c.Call(context.Background(), peer, "fail", []byte("zzz")); err == nil {
		t.Fatal("fail must error")
	}
	if _, err := c.Call(context.Background(), peer, "nope", nil); err == nil {
		t.Fatal("unknown method must error")
	}
}

// TestStatsSymmetry pins the contract documented on Stats: the in-memory and
// TCP transports increment the same counters on the same events, so cost
// accounting (η) and error rates are transport-independent.
func TestStatsSymmetry(t *testing.T) {
	var m Memory
	m.Register("peer", echoHandler)
	runScript(t, &m, "peer")
	mem := m.Stats().Snapshot()

	_, cli := startTCP(t)
	runScript(t, cli, "srv")
	tcp := cli.Stats().Snapshot()

	if mem != tcp {
		t.Fatalf("stats diverge:\n  memory %+v\n  tcp    %+v", mem, tcp)
	}
	want := StatsSnapshot{CallsSent: 4, BytesSent: 4 + 2 + 3 + 0, BytesReceived: 4 + 2, Errors: 2}
	if mem != want {
		t.Fatalf("stats = %+v, want %+v", mem, want)
	}
}

// TestTransportMetrics runs the script on both observed transports and
// asserts the metric families agree on call, error, and latency-sample
// counts, with only the transport label differing.
func TestTransportMetrics(t *testing.T) {
	script := func(install func(o *obs.Observer) Caller, peer string) *obs.Registry {
		o := obs.NewObserver(64)
		DeclareMetrics(o.Registry())
		c := install(o)
		runScript(t, c, peer)
		return o.Registry()
	}

	check := func(reg *obs.Registry, transportLabel, peer string) {
		t.Helper()
		fams := map[string]obs.FamilySnapshot{}
		for _, f := range reg.Snapshot() {
			fams[f.Name] = f
		}
		total := func(name string) float64 {
			var tot float64
			for _, s := range fams[name].Series {
				if s.Labels["transport"] == transportLabel {
					tot += s.Value
				}
			}
			return tot
		}
		if got := total("vfps_transport_calls_total"); got != 4 {
			t.Fatalf("%s calls = %g, want 4", transportLabel, got)
		}
		if got := total("vfps_transport_errors_total"); got != 2 {
			t.Fatalf("%s errors = %g, want 2", transportLabel, got)
		}
		// Latency is observed for every call, including failures.
		if got := total("vfps_transport_call_seconds"); got != 4 {
			t.Fatalf("%s latency samples = %g, want 4", transportLabel, got)
		}
		// Response sizes are success-only.
		if got := total("vfps_transport_response_bytes"); got != 2 {
			t.Fatalf("%s response samples = %g, want 2", transportLabel, got)
		}
		for _, s := range fams["vfps_transport_calls_total"].Series {
			if s.Labels["peer"] != peer {
				t.Fatalf("%s peer label = %q, want %q", transportLabel, s.Labels["peer"], peer)
			}
		}
	}

	memReg := script(func(o *obs.Observer) Caller {
		var m Memory
		m.Register("peer", echoHandler)
		m.SetObserver(o)
		return &m
	}, "peer")
	check(memReg, "memory", "peer")

	tcpReg := script(func(o *obs.Observer) Caller {
		_, cli := startTCP(t)
		cli.SetObserver(o)
		return cli
	}, "srv")
	check(tcpReg, "tcp", "srv")
}

// TestTCPServerMetrics asserts the serving side records one sample per
// request with per-method labels.
func TestTCPServerMetrics(t *testing.T) {
	o := obs.NewObserver(64)
	DeclareMetrics(o.Registry())
	srv, cli := startTCP(t)
	srv.SetObserver(o)
	runScript(t, cli, "srv")

	var served float64
	for _, f := range o.Registry().Snapshot() {
		if f.Name != "vfps_transport_served_total" {
			continue
		}
		methods := map[string]bool{}
		for _, s := range f.Series {
			served += s.Value
			methods[s.Labels["method"]] = true
		}
		for _, m := range []string{"echo", "upper", "fail", "nope"} {
			if !methods[m] {
				t.Fatalf("served_total missing method %q (have %v)", m, methods)
			}
		}
	}
	if served != 4 {
		t.Fatalf("served_total = %g, want 4", served)
	}
}

// TestMetricsPrometheusExport sanity-checks the declared transport families
// render as valid exposition text even before traffic.
func TestMetricsPrometheusExport(t *testing.T) {
	reg := obs.New()
	DeclareMetrics(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"vfps_transport_calls_total",
		"vfps_transport_errors_total",
		"vfps_transport_call_seconds",
		"vfps_transport_request_bytes",
		"vfps_transport_response_bytes",
		"vfps_transport_served_total",
		"vfps_transport_serve_seconds",
	} {
		if !strings.Contains(b.String(), "# TYPE "+fam+" ") {
			t.Fatalf("missing family %s in:\n%s", fam, b.String())
		}
	}
}
