package transport

import (
	"bytes"
	"testing"
)

// FuzzReadRequest ensures arbitrary wire bytes never panic the server-side
// request parser, and that well-formed requests round-trip.
func FuzzReadRequest(f *testing.F) {
	var good bytes.Buffer
	if err := writeRequest(&good, "echo", []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		method, body, err := readRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed requests must re-serialise to a parseable request.
		var buf bytes.Buffer
		if err := writeRequest(&buf, method, body); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		m2, b2, err := readRequest(bytes.NewReader(buf.Bytes()))
		if err != nil || m2 != method || !bytes.Equal(b2, body) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}

// FuzzReadResponse mirrors FuzzReadRequest for the response path.
func FuzzReadResponse(f *testing.F) {
	var ok bytes.Buffer
	if err := writeResponse(&ok, []byte("result"), nil); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	var fail bytes.Buffer
	if err := writeResponse(&fail, nil, &RemoteError{Msg: "boom"}); err != nil {
		f.Fatal(err)
	}
	f.Add(fail.Bytes())
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = readResponse(bytes.NewReader(data))
	})
}

// FuzzDecodeGob ensures arbitrary bytes never panic the gob helpers.
func FuzzDecodeGob(f *testing.F) {
	good, _ := EncodeGob(map[string]int{"a": 1})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x13})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out map[string]int
		_ = DecodeGob(data, &out)
	})
}
