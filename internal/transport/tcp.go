package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vfps/internal/obs"
	"vfps/internal/wire"
)

// Wire format, both directions, all integers big-endian:
//
//	request:  u32 methodLen | method | u32 bodyLen | body
//	response: u8 status (0 ok, 1 error) | u32 bodyLen | body
//
// Error responses carry the error text as the body. Each connection serves
// one request at a time; the client keeps a small pool per peer so
// concurrent calls do not serialise.

const maxFrame = 1 << 30 // 1 GiB sanity bound on any length field

// TCPServer serves a node's handler over a TCP listener.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}

	served    *obs.CounterVec
	serveSecs *obs.HistogramVec
	obsOn     atomic.Bool
	tracer    atomic.Pointer[obs.Tracer]
}

// SetObserver installs per-method served-request counters, handler latency
// histograms and (when the observer traces) an "rpc.serve" span per request
// on the server side.
func (s *TCPServer) SetObserver(o *obs.Observer) {
	s.mu.Lock()
	s.served, s.serveSecs = serverFamilies(o.Registry())
	s.mu.Unlock()
	s.obsOn.Store(o.Registry() != nil)
	if t := o.Tracer(); t != nil {
		s.tracer.Store(t)
	}
}

// ListenTCP starts serving handler on addr (e.g. "127.0.0.1:0") and returns
// the server; its Addr method reports the bound address.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		method, body, err := readRequest(conn)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		start := time.Now()
		// Extract the caller's trace context from the envelope so handler
		// spans (and any further outbound calls) link under the caller's
		// span; requests without the field — gob, legacy peers — serve with
		// a bare context exactly as before.
		ctx := context.Background()
		if tc, ok := wire.ExtractTraceContext(body); ok {
			ctx = obs.ContextWithRemoteParent(ctx, obs.SpanContext{Trace: obs.TraceID(tc.Trace), Span: tc.Span})
			ctx = obs.ContextWithQueryID(ctx, tc.Query)
		}
		ctx, ssp := s.tracer.Load().Start(ctx, "rpc.serve")
		ssp.SetLabel("method", method)
		resp, herr := s.handler(ctx, method, body)
		ssp.End()
		if s.obsOn.Load() {
			s.mu.Lock()
			served, secs := s.served, s.serveSecs
			s.mu.Unlock()
			served.With(method).Inc()
			secs.With(method).ObserveSince(start)
		}
		if werr := writeResponse(conn, resp, herr); werr != nil {
			return
		}
	}
}

// Close stops accepting, closes open connections and waits for in-flight
// requests.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// TCPClient issues calls to peers identified by name, using a static
// name→address directory and a per-peer connection pool.
type TCPClient struct {
	directory map[string]string
	mu        sync.Mutex
	pools     map[string][]net.Conn
	stats     Stats
	ins       atomic.Pointer[instruments]
	closed    bool
}

// SetObserver installs metrics and tracing on the client: the same per-peer
// and per-method families as the Memory transport, labelled transport="tcp".
func (c *TCPClient) SetObserver(o *obs.Observer) {
	c.ins.Store(newInstruments(o, "tcp"))
}

// NewTCPClient builds a client over a name→"host:port" directory.
func NewTCPClient(directory map[string]string) *TCPClient {
	dir := make(map[string]string, len(directory))
	for k, v := range directory {
		dir[k] = v
	}
	return &TCPClient{directory: dir, pools: make(map[string][]net.Conn)}
}

func (c *TCPClient) getConn(peer string) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("transport: client closed")
	}
	addr, ok := c.directory[peer]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownPeer, peer)
	}
	pool := c.pools[peer]
	if n := len(pool); n > 0 {
		conn := pool[n-1]
		c.pools[peer] = pool[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", peer, addr, err)
	}
	return conn, nil
}

func (c *TCPClient) putConn(peer string, conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.pools[peer]) >= 4 {
		conn.Close()
		return
	}
	c.pools[peer] = append(c.pools[peer], conn)
}

// Call implements Caller over TCP. A context deadline, if set, bounds the
// whole exchange.
func (c *TCPClient) Call(ctx context.Context, peer, method string, req []byte) ([]byte, error) {
	c.stats.CallsSent.Add(1)
	c.stats.BytesSent.Add(int64(len(req)))
	ins := c.ins.Load()
	start := time.Now()
	_, sp := ins.span(ctx, peer, method)
	resp, err := c.exchange(ctx, peer, method, req)
	ins.record(peer, method, len(req), len(resp), start, err)
	sp.End()
	if err != nil {
		c.stats.Errors.Add(1)
		return nil, err
	}
	c.stats.BytesReceived.Add(int64(len(resp)))
	return resp, nil
}

func (c *TCPClient) exchange(ctx context.Context, peer, method string, req []byte) ([]byte, error) {
	conn, err := c.getConn(peer)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			conn.Close()
			return nil, err
		}
	} else if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, err
	}
	if err := writeRequest(conn, method, req); err != nil {
		conn.Close()
		return nil, err
	}
	resp, rerr, err := readResponse(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.putConn(peer, conn)
	if rerr != nil {
		return nil, rerr
	}
	return resp, nil
}

// Stats exposes traffic counters.
func (c *TCPClient) Stats() *Stats { return &c.stats }

// Close drops all pooled connections.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, pool := range c.pools {
		for _, conn := range pool {
			conn.Close()
		}
	}
	c.pools = map[string][]net.Conn{}
	return nil
}

func writeRequest(w io.Writer, method string, body []byte) error {
	if err := writeFrame(w, []byte(method)); err != nil {
		return err
	}
	return writeFrame(w, body)
}

func readRequest(r io.Reader) (method string, body []byte, err error) {
	m, err := readFrame(r)
	if err != nil {
		return "", nil, err
	}
	b, err := readFrame(r)
	if err != nil {
		return "", nil, err
	}
	return string(m), b, nil
}

func writeResponse(w io.Writer, body []byte, herr error) error {
	status := []byte{0}
	if herr != nil {
		status[0] = 1
		body = []byte(herr.Error())
	}
	if _, err := w.Write(status); err != nil {
		return err
	}
	return writeFrame(w, body)
}

// RemoteError is a handler error propagated across the TCP transport; only
// its text survives the wire.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "transport: remote error: " + e.Msg }

func readResponse(r io.Reader) (body []byte, remote error, err error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return nil, nil, err
	}
	b, err := readFrame(r)
	if err != nil {
		return nil, nil, err
	}
	if status[0] != 0 {
		return nil, &RemoteError{Msg: string(b)}, nil
	}
	return b, nil, nil
}

func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
