package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"vfps/internal/obs"
	"vfps/internal/wire"
)

// MethodHello is the reserved method every codec-aware node serves for wire
// version negotiation (see wire.HandleHello).
const MethodHello = wire.HelloMethod

// WireStats reports the byte breakdown of one encoded request, so callers
// can charge their side of the traffic to the cost model.
type WireStats struct {
	Codec   string // codec the request was encoded with
	Payload int64  // value-content bytes (ciphertexts, keys, float scalars)
	Framing int64  // everything else: envelope, tags, ID lists, descriptors
}

// CodecCaller wraps a Caller with message-level encoding and per-peer wire
// version negotiation. A caller preferring gob sends gob directly (the
// pre-wire behaviour, no probe). A caller preferring the binary codec probes
// each peer once with MethodHello and caches the committed codec:
//
//   - the peer answers → min(peer version, ours); a gob-configured peer
//     answers 0 and the caller falls back to gob for it;
//   - the peer reports ErrUnknownMethod (or any handler-side *RemoteError
//     over TCP, where only the error text survives) → a pre-wire build,
//     fall back to gob;
//   - transport-level failures (unknown peer, cancelled context, injected
//     or network faults) propagate and nothing is cached, so a transient
//     fault cannot pin a peer to the wrong codec.
//
// Servers mirror the request codec in their response, so negotiation is
// purely caller-driven and mixed-codec clusters interoperate per pair.
type CodecCaller struct {
	caller Caller
	pref   wire.Codec

	mu    sync.Mutex
	peers map[string]wire.Codec
}

// NewCodecCaller wraps c; a nil pref defaults to gob.
func NewCodecCaller(c Caller, pref wire.Codec) *CodecCaller {
	if pref == nil {
		pref = wire.Gob()
	}
	return &CodecCaller{caller: c, pref: pref, peers: make(map[string]wire.Codec)}
}

// Underlying returns the wrapped Caller for raw []byte calls.
func (cc *CodecCaller) Underlying() Caller { return cc.caller }

// Preferred returns the codec this caller negotiates for.
func (cc *CodecCaller) Preferred() wire.Codec { return cc.pref }

// Negotiated reports the codec committed for a peer, or "" before the first
// call to it (always the preferred name when preferring gob).
func (cc *CodecCaller) Negotiated(peer string) string {
	if cc.pref.Version() == 0 {
		return cc.pref.Name()
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.peers[peer]; ok {
		return c.Name()
	}
	return ""
}

func (cc *CodecCaller) codecFor(ctx context.Context, peer string) (wire.Codec, error) {
	if cc.pref.Version() == 0 {
		return cc.pref, nil
	}
	cc.mu.Lock()
	c, ok := cc.peers[peer]
	cc.mu.Unlock()
	if ok {
		return c, nil
	}
	ack, err := cc.caller.Call(ctx, peer, MethodHello, wire.MarshalHello(cc.pref.Version()))
	var remote *RemoteError
	switch {
	case err == nil:
		v, perr := wire.ParseHelloAck(ack)
		if perr != nil {
			return nil, fmt.Errorf("transport: negotiating with %s: %w", peer, perr)
		}
		c, perr = wire.ForVersion(min(v, cc.pref.Version()))
		if perr != nil {
			return nil, fmt.Errorf("transport: negotiating with %s: %w", peer, perr)
		}
	case errors.Is(err, ErrUnknownMethod), errors.As(err, &remote):
		// The peer exists but cannot serve the probe: a pre-wire build.
		c = wire.Gob()
	default:
		return nil, err
	}
	cc.mu.Lock()
	cc.peers[peer] = c
	cc.mu.Unlock()
	return c, nil
}

// Invoke encodes req with the codec negotiated for peer, calls the method,
// and decodes the response into resp (sniffed via the envelope, bounded by
// the negotiated version so a misbehaving peer's future-version reply is a
// typed error). Either message may be nil: a nil req sends the codec's empty
// payload, a nil resp discards the response body. The returned WireStats
// cover the request encoding even when the call itself fails.
func (cc *CodecCaller) Invoke(ctx context.Context, peer, method string, req, resp wire.Message) (WireStats, error) {
	codec, err := cc.codecFor(ctx, peer)
	if err != nil {
		return WireStats{}, err
	}
	var raw []byte
	var payload int64
	if req != nil {
		raw, payload, err = wire.MarshalMeasured(codec, req)
	} else {
		raw, err = codec.Marshal(nil)
	}
	if err != nil {
		return WireStats{}, err
	}
	// Inject the caller's trace context as a reserved trailing field of the
	// binary envelope, so the server parents its spans under the caller's
	// across the process boundary. Gob payloads (version 0) omit it — the gob
	// fallback is the legacy path — and v1 peers that predate the field skip
	// the unknown tag. The extra bytes are framing, never payload.
	if codec.Version() >= 1 {
		if sc, ok := obs.SpanContextOf(ctx); ok {
			raw = wire.AppendTraceContext(raw, wire.TraceContext{
				Trace: [16]byte(sc.Trace),
				Span:  sc.Span,
				Query: obs.QueryIDFromContext(ctx),
			})
		}
	}
	st := WireStats{Codec: codec.Name(), Payload: payload, Framing: int64(len(raw)) - payload}
	out, err := cc.caller.Call(ctx, peer, method, raw)
	if err != nil {
		return st, err
	}
	if resp == nil {
		return st, nil
	}
	respCodec, err := wire.DetectMax(out, codec.Version())
	if err != nil {
		return st, fmt.Errorf("transport: response from %s: %w", peer, err)
	}
	if err := respCodec.Unmarshal(out, resp); err != nil {
		return st, fmt.Errorf("transport: response from %s: %w", peer, err)
	}
	return st, nil
}
