package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func startServerOpts(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewWithOptions(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func doJSONTenant(t *testing.T, method, url, tenant string, body any, out any) (int, http.Header) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode, resp.Header
}

// TestConcurrentMultiConsortium is the multiplexing property test: several
// consortiums run selections at once (run with -race in make check) and each
// produces the same selection it produces when run alone.
func TestConcurrentMultiConsortium(t *testing.T) {
	_, ts := startServerOpts(t, Options{})
	const consortiums = 3
	ids := make([]string, consortiums)
	for i := range ids {
		var created CreateResponse
		code := doJSON(t, "POST", ts.URL+"/v1/consortiums",
			CreateRequest{Dataset: "Rice", Rows: 120, Parties: 3, SplitSeed: int64(i)}, &created)
		if code != http.StatusCreated {
			t.Fatalf("create %d returned %d", i, code)
		}
		ids[i] = created.ID
	}
	// Reference: sequential runs.
	want := make([][]int, consortiums)
	for i, id := range ids {
		var out SelectResponse
		code := doJSON(t, "POST", ts.URL+"/v1/consortiums/"+id+"/select",
			SelectRequest{NumQueries: 4, Seed: 1}, &out)
		if code != http.StatusOK {
			t.Fatalf("reference select on %s returned %d", id, code)
		}
		want[i] = out.Selected
	}
	// Concurrent runs on all consortiums at once, several rounds each.
	var wg sync.WaitGroup
	errc := make(chan error, consortiums*2)
	for i, id := range ids {
		for round := 0; round < 2; round++ {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				var out SelectResponse
				code := doJSON(t, "POST", ts.URL+"/v1/consortiums/"+id+"/select",
					SelectRequest{NumQueries: 4, Seed: 1}, &out)
				if code != http.StatusOK {
					errc <- errors.New("concurrent select failed on " + id)
					return
				}
				if len(out.Selected) != len(want[i]) {
					errc <- errors.New("selection size changed under concurrency on " + id)
					return
				}
				for j := range out.Selected {
					if out.Selected[j] != want[i][j] {
						errc <- errors.New("selection changed under concurrency on " + id)
						return
					}
				}
			}(i, id)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestAdmissionTenantBudget exhausts one tenant's HE-operation budget and
// checks the 429, while another tenant keeps being served.
func TestAdmissionTenantBudget(t *testing.T) {
	_, ts := startServerOpts(t, Options{Admission: AdmissionConfig{TenantHEBudget: 1}})
	id := createTestConsortium(t, ts)
	// First selection is admitted (budget not yet spent) and overspends it.
	var out SelectResponse
	if code, _ := doJSONTenant(t, "POST", ts.URL+"/v1/consortiums/"+id+"/select", "acme",
		SelectRequest{NumQueries: 3, Seed: 1}, &out); code != http.StatusOK {
		t.Fatalf("first select returned %d", code)
	}
	var e errorBody
	code, _ := doJSONTenant(t, "POST", ts.URL+"/v1/consortiums/"+id+"/select", "acme",
		SelectRequest{NumQueries: 3, Seed: 1}, &e)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-budget select returned %d (%v)", code, e)
	}
	// A different tenant is unaffected.
	if code, _ := doJSONTenant(t, "POST", ts.URL+"/v1/consortiums/"+id+"/select", "globex",
		SelectRequest{NumQueries: 3, Seed: 1}, &out); code != http.StatusOK {
		t.Fatalf("other tenant select returned %d", code)
	}
}

// TestAdmissionQuotas unit-tests the quota ladder: tenant concurrency, the
// bounded queue with Retry-After, and context cancellation while queued.
func TestAdmissionQuotas(t *testing.T) {
	s := NewWithOptions(Options{Admission: AdmissionConfig{
		MaxConcurrent: 1, QueueDepth: 1, TenantConcurrent: 2,
	}})
	defer s.Close()
	a := s.adm
	ctx := context.Background()

	l1, err := a.acquire(ctx, "t1")
	if err != nil {
		t.Fatal(err)
	}
	// Queue the one allowed waiter.
	waited := make(chan *lease)
	go func() {
		l, err := a.acquire(ctx, "t1")
		if err != nil {
			t.Error(err)
		}
		waited <- l
	}()
	// Wait until it is actually queued before probing rejections.
	for i := 0; a.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.queued.Load() != 1 {
		t.Fatal("second acquire did not queue")
	}
	// Tenant t1 now has 2 in flight (1 running, 1 queued): over quota.
	var ae *admitError
	if _, err := a.acquire(ctx, "t1"); !errors.As(err, &ae) || ae.reason != "tenant-concurrency" {
		t.Fatalf("tenant-concurrency rejection missing: %v", err)
	}
	if ae.retryAfter <= 0 {
		t.Fatal("tenant-concurrency rejection lacks Retry-After")
	}
	// Another tenant passes the tenant check but finds the queue full.
	if _, err := a.acquire(ctx, "t2"); !errors.As(err, &ae) || ae.reason != "queue-full" {
		t.Fatalf("queue-full rejection missing: %v", err)
	}
	if ae.retryAfter <= 0 {
		t.Fatal("queue-full rejection lacks Retry-After")
	}
	// A canceled context unblocks a queued waiter. t2 has 0 in flight now.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	// The queue slot is still held by the t1 waiter, so this one is rejected
	// as queue-full; release the runner first so the waiter drains.
	l1.Release(0)
	l2 := <-waited
	if _, err := a.acquire(cctx, "t2"); err == nil {
		// l2 still holds the only slot, so a canceled ctx must surface.
		t.Fatal("canceled queued acquire succeeded")
	}
	l2.Release(5)
	if a.tenants["t1"].heSpent != 5 {
		t.Fatalf("heSpent = %d, want 5", a.tenants["t1"].heSpent)
	}
	if got := a.tenants["t1"].inflight; got != 0 {
		t.Fatalf("inflight = %d after releases", got)
	}
}

// TestAdmissionDrain checks graceful shutdown semantics: queued work still
// completes, new work is refused, and Drain returns once everything lands.
func TestAdmissionDrain(t *testing.T) {
	s := NewWithOptions(Options{Admission: AdmissionConfig{MaxConcurrent: 1, QueueDepth: 2}})
	defer s.Close()
	a := s.adm
	ctx := context.Background()
	l1, err := a.acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	queuedLease := make(chan *lease)
	go func() {
		l, err := a.acquire(ctx, "t")
		if err != nil {
			t.Error(err)
		}
		queuedLease <- l
	}()
	for i := 0; a.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	a.BeginDrain()
	// New work is refused outright.
	var ae *admitError
	if _, err := a.acquire(ctx, "t"); !errors.As(err, &ae) || ae.reason != "draining" {
		t.Fatalf("draining rejection missing: %v", err)
	}
	// The queued request is accepted work: it must still get its slot.
	l1.Release(0)
	l2 := <-queuedLease
	// Drain must block until l2 releases.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := a.Drain(short); err == nil {
		t.Fatal("drain returned while a selection was in flight")
	}
	l2.Release(0)
	full, cancel2 := context.WithTimeout(ctx, 2*time.Second)
	defer cancel2()
	if err := a.Drain(full); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteConsortium covers the DELETE endpoint: 204, then 404 on every
// subsequent touch.
func TestDeleteConsortium(t *testing.T) {
	_, ts := startServerOpts(t, Options{})
	id := createTestConsortium(t, ts)
	if code, _ := doJSONTenant(t, "DELETE", ts.URL+"/v1/consortiums/"+id, "", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete returned %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/consortiums/"+id, nil, &map[string]any{}); code != http.StatusNotFound {
		t.Fatalf("get after delete returned %d", code)
	}
	if code, _ := doJSONTenant(t, "DELETE", ts.URL+"/v1/consortiums/"+id, "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete returned %d", code)
	}
}

// TestIdleTTLEviction creates a consortium, lets it idle past the TTL, and
// expects the janitor to evict it.
func TestIdleTTLEviction(t *testing.T) {
	s, ts := startServerOpts(t, Options{IdleTTL: 50 * time.Millisecond})
	id := createTestConsortium(t, ts)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code := doJSON(t, "GET", ts.URL+"/v1/consortiums/"+id, nil, &map[string]any{})
		if code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("consortium not evicted after idle TTL")
		}
		// Polling refreshes lastUsed via release; back off past the TTL.
		time.Sleep(120 * time.Millisecond)
	}
	if s.evicted.Value() == 0 {
		t.Fatal("eviction counter not incremented")
	}
}

// TestPackHintCarry checks that a learned adaptive pack width survives the
// consortium it was learned on: after delete, a same-shape successor is
// seeded with it at creation time.
func TestPackHintCarry(t *testing.T) {
	_, ts := startServerOpts(t, Options{})
	mk := func() string {
		var created CreateResponse
		code := doJSON(t, "POST", ts.URL+"/v1/consortiums", CreateRequest{
			Dataset: "Rice", Rows: 40, Parties: 3, Scheme: "paillier",
			KeyBits: 256, Pack: true, PackAdaptive: true,
		}, &created)
		if code != http.StatusCreated {
			t.Fatalf("create returned %d", code)
		}
		return created.ID
	}
	info := func(id string) map[string]any {
		out := map[string]any{}
		if code := doJSON(t, "GET", ts.URL+"/v1/consortiums/"+id, nil, &out); code != http.StatusOK {
			t.Fatalf("get returned %d", code)
		}
		return out
	}
	first := mk()
	if hint := info(first)["packWidthHint"].(float64); hint != 0 {
		t.Fatalf("fresh consortium already has pack hint %v", hint)
	}
	var out SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/consortiums/"+first+"/select",
		SelectRequest{NumQueries: 2, Seed: 1}, &out); code != http.StatusOK {
		t.Fatalf("select returned %d", code)
	}
	learned := info(first)["packWidthHint"].(float64)
	if learned <= 0 {
		t.Fatal("adaptive run did not learn a pack width")
	}
	if code, _ := doJSONTenant(t, "DELETE", ts.URL+"/v1/consortiums/"+first, "", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete returned %d", code)
	}
	second := mk()
	if hint := info(second)["packWidthHint"].(float64); hint != learned {
		t.Fatalf("successor seeded with %v, want %v", hint, learned)
	}
}

// TestOptimizerKnob runs the lazy and stochastic submodular maximizers via
// the HTTP knob; lazy must match greedy exactly.
func TestOptimizerKnob(t *testing.T) {
	_, ts := startServerOpts(t, Options{})
	id := createTestConsortium(t, ts)
	sel := func(optimizer string) []int {
		var out SelectResponse
		code := doJSON(t, "POST", ts.URL+"/v1/consortiums/"+id+"/select",
			SelectRequest{NumQueries: 3, Seed: 1, Optimizer: optimizer}, &out)
		if code != http.StatusOK {
			t.Fatalf("select optimizer=%q returned %d", optimizer, code)
		}
		return out.Selected
	}
	greedy := sel("")
	lazy := sel("lazy")
	if len(greedy) != len(lazy) {
		t.Fatalf("lazy size %d, greedy %d", len(lazy), len(greedy))
	}
	for i := range greedy {
		if greedy[i] != lazy[i] {
			t.Fatalf("lazy selection %v differs from greedy %v", lazy, greedy)
		}
	}
	if got := sel("stochastic"); len(got) != len(greedy) {
		t.Fatalf("stochastic selected %d, want %d", len(got), len(greedy))
	}
	var e errorBody
	if code := doJSON(t, "POST", ts.URL+"/v1/consortiums/"+id+"/select",
		SelectRequest{Optimizer: "nope"}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad optimizer returned %d", code)
	}
}

// TestShardedConsortiumHTTP creates a sharded consortium through the API and
// checks the worker count is reported and selections succeed.
func TestShardedConsortiumHTTP(t *testing.T) {
	_, ts := startServerOpts(t, Options{})
	var created CreateResponse
	code := doJSON(t, "POST", ts.URL+"/v1/consortiums",
		CreateRequest{Dataset: "Rice", Rows: 120, Parties: 4, ShardWorkers: 2}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create returned %d", code)
	}
	out := map[string]any{}
	if code := doJSON(t, "GET", ts.URL+"/v1/consortiums/"+created.ID, nil, &out); code != http.StatusOK {
		t.Fatalf("get returned %d", code)
	}
	if got := out["shardWorkers"].(float64); got != 2 {
		t.Fatalf("shardWorkers = %v, want 2", got)
	}
	var sel SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/consortiums/"+created.ID+"/select",
		SelectRequest{NumQueries: 3, Seed: 1}, &sel); code != http.StatusOK {
		t.Fatalf("sharded select returned %d", code)
	}
	if len(sel.Selected) == 0 {
		t.Fatal("sharded select chose nobody")
	}
}
