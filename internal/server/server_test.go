package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func createTestConsortium(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	var created CreateResponse
	code := doJSON(t, "POST", ts.URL+"/v1/consortiums",
		CreateRequest{Dataset: "Rice", Rows: 200, Parties: 3}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create returned %d", code)
	}
	if created.ID == "" || created.Parties != 3 || created.Rows != 200 {
		t.Fatalf("create response %+v", created)
	}
	return created.ID
}

func TestHealthz(t *testing.T) {
	ts := startServer(t)
	var out map[string]string
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &out); code != 200 || out["status"] != "ok" {
		t.Fatalf("healthz %d %v", code, out)
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	ts := startServer(t)
	var out struct {
		Datasets []string `json:"datasets"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/datasets", nil, &out); code != 200 {
		t.Fatalf("datasets %d", code)
	}
	if len(out.Datasets) != 10 {
		t.Fatalf("datasets %v", out.Datasets)
	}
}

func TestCreateSelectEvaluateFlow(t *testing.T) {
	ts := startServer(t)
	id := createTestConsortium(t, ts)

	var info map[string]any
	if code := doJSON(t, "GET", ts.URL+"/v1/consortiums/"+id, nil, &info); code != 200 {
		t.Fatalf("get %d", code)
	}
	if info["parties"].(float64) != 3 {
		t.Fatalf("info %v", info)
	}

	var sel SelectResponse
	code := doJSON(t, "POST", fmt.Sprintf("%s/v1/consortiums/%s/select", ts.URL, id),
		SelectRequest{Count: 2, K: 5, NumQueries: 8, Seed: 1}, &sel)
	if code != 200 {
		t.Fatalf("select %d", code)
	}
	if len(sel.Selected) != 2 || sel.ProjectedSeconds <= 0 {
		t.Fatalf("selection %+v", sel)
	}

	var ev EvaluateResponse
	code = doJSON(t, "POST", fmt.Sprintf("%s/v1/consortiums/%s/evaluate", ts.URL, id),
		EvaluateRequest{Model: "knn", Parties: sel.Selected, K: 5}, &ev)
	if code != 200 {
		t.Fatalf("evaluate %d", code)
	}
	if ev.Accuracy < 0.5 || ev.AUC <= 0.5 {
		t.Fatalf("evaluation %+v", ev)
	}
}

func TestSelectBaselineMethods(t *testing.T) {
	ts := startServer(t)
	id := createTestConsortium(t, ts)
	for _, method := range []string{"shapley", "vfmine", "random", "vfps-sm-base"} {
		var sel SelectResponse
		code := doJSON(t, "POST", fmt.Sprintf("%s/v1/consortiums/%s/select", ts.URL, id),
			SelectRequest{Method: method, Count: 2, K: 5, NumQueries: 6, Seed: 1}, &sel)
		if code != 200 {
			t.Fatalf("%s: %d", method, code)
		}
		if len(sel.Selected) != 2 {
			t.Fatalf("%s: %+v", method, sel)
		}
	}
}

func TestMembershipChurnEndpoints(t *testing.T) {
	ts := startServer(t)
	var created CreateResponse
	code := doJSON(t, "POST", ts.URL+"/v1/consortiums",
		CreateRequest{Dataset: "Rice", Rows: 200, Parties: 3, DeltaCache: true, SimCache: true}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create returned %d", code)
	}
	id := created.ID
	selectURL := fmt.Sprintf("%s/v1/consortiums/%s/select", ts.URL, id)
	partsURL := fmt.Sprintf("%s/v1/consortiums/%s/participants", ts.URL, id)
	req := SelectRequest{Count: 2, K: 5, NumQueries: 8, Seed: 1}

	var before SelectResponse
	if code := doJSON(t, "POST", selectURL, req, &before); code != 200 {
		t.Fatalf("select %d", code)
	}

	var joined JoinResponse
	if code := doJSON(t, "POST", partsURL, JoinRequest{CloneOf: 0, Noise: 0.05, Seed: 9}, &joined); code != http.StatusCreated {
		t.Fatalf("join %d", code)
	}
	if joined.Name != "party/3" || joined.Parties != 4 {
		t.Fatalf("join response %+v", joined)
	}
	var info map[string]any
	if code := doJSON(t, "GET", ts.URL+"/v1/consortiums/"+id, nil, &info); code != 200 {
		t.Fatalf("get %d", code)
	}
	if info["parties"].(float64) != 4 || len(info["partyNames"].([]any)) != 4 {
		t.Fatalf("post-join info %v", info)
	}
	var after SelectResponse
	if code := doJSON(t, "POST", selectURL, req, &after); code != 200 {
		t.Fatalf("post-join select %d", code)
	}
	if len(after.Selected) != 2 {
		t.Fatalf("post-join selection %+v", after)
	}

	var left map[string]any
	if code := doJSON(t, "DELETE", partsURL+"/3", nil, &left); code != 200 || left["parties"].(float64) != 3 {
		t.Fatalf("leave %d %v", code, left)
	}
	// Back at the original roster: the selection must reproduce the original
	// answer (and with simCache on, without re-running the similarity phase).
	var again SelectResponse
	if code := doJSON(t, "POST", selectURL, req, &again); code != 200 {
		t.Fatalf("post-leave select %d", code)
	}
	if fmt.Sprint(again.Selected) != fmt.Sprint(before.Selected) {
		t.Fatalf("post-leave selection %v, original %v", again.Selected, before.Selected)
	}

	// Error paths: unknown index, out-of-range clone source, fixed-size
	// scheme.
	if code := doJSON(t, "DELETE", partsURL+"/9", nil, nil); code != http.StatusNotFound {
		t.Fatalf("leave unknown index: %d", code)
	}
	if code := doJSON(t, "POST", partsURL, JoinRequest{CloneOf: 7}, nil); code != http.StatusBadRequest {
		t.Fatalf("join bad clone source: %d", code)
	}
	var fixed CreateResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/consortiums",
		CreateRequest{Dataset: "Rice", Rows: 120, Parties: 3, Scheme: "secagg"}, &fixed); code != http.StatusCreated {
		t.Fatalf("secagg create %d", code)
	}
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/consortiums/%s/participants", ts.URL, fixed.ID),
		JoinRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("secagg join should be rejected: %d", code)
	}
}

func TestRewardsEndpoint(t *testing.T) {
	ts := startServer(t)
	id := createTestConsortium(t, ts)
	var out RewardsResponse
	code := doJSON(t, "POST", fmt.Sprintf("%s/v1/consortiums/%s/rewards", ts.URL, id),
		RewardsRequest{K: 5, NumQueries: 8, Seed: 1}, &out)
	if code != 200 {
		t.Fatalf("rewards %d", code)
	}
	if len(out.Shares) != 3 {
		t.Fatalf("shares %v", out.Shares)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := startServer(t)
	var e errorBody
	// Unknown dataset.
	if code := doJSON(t, "POST", ts.URL+"/v1/consortiums",
		CreateRequest{Dataset: "Nope"}, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown dataset: %d", code)
	}
	// Unknown consortium id.
	if code := doJSON(t, "GET", ts.URL+"/v1/consortiums/c999", nil, &e); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", code)
	}
	// Malformed body.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/consortiums", bytes.NewBufferString("{nonsense"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d", resp.StatusCode)
	}
	// Unknown field rejected (typo safety).
	req2, _ := http.NewRequest("POST", ts.URL+"/v1/consortiums", bytes.NewBufferString(`{"datasett":"Rice"}`))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", resp2.StatusCode)
	}
	// Bad selection method.
	id := createTestConsortium(t, ts)
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/consortiums/%s/select", ts.URL, id),
		SelectRequest{Method: "voodoo", Count: 2}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad method: %d", code)
	}
	// Bad downstream model.
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/consortiums/%s/evaluate", ts.URL, id),
		EvaluateRequest{Model: "svm"}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad model: %d", code)
	}
}

func TestConcurrentClients(t *testing.T) {
	ts := startServer(t)
	id := createTestConsortium(t, ts)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(seed int64) {
			var sel SelectResponse
			code := doJSON(t, "POST", fmt.Sprintf("%s/v1/consortiums/%s/select", ts.URL, id),
				SelectRequest{Count: 2, K: 5, NumQueries: 6, Seed: seed}, &sel)
			if code != 200 || len(sel.Selected) != 2 {
				done <- fmt.Errorf("seed %d: code %d sel %v", seed, code, sel.Selected)
				return
			}
			done <- nil
		}(int64(i))
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
