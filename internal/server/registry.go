package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vfps"
)

// entry is one live consortium plus the bookkeeping the multiplexing layer
// needs: a per-consortium run lock (protocol runs mutate per-run state —
// delta caches, pack negotiation — so two selections on the SAME consortium
// must serialize, while selections on different consortiums proceed
// concurrently), an in-flight count that fences idle-TTL eviction, and the
// last-used timestamp the janitor ages against.
type entry struct {
	id   string
	cons *vfps.Consortium
	// hintKey identifies the dataset shape for the pack-width hint store, so
	// a recreated consortium of the same shape can skip the adaptive warm-up.
	hintKey string
	// runMu serializes selection/reward protocol runs on this consortium.
	runMu sync.Mutex
	// inflight counts handlers currently holding the entry. The janitor only
	// evicts entries with inflight == 0, and acquire increments under the
	// registry mutex, so an entry can never be evicted between lookup and use.
	inflight atomic.Int32
	lastUsed atomic.Int64 // unix nanos
}

// release marks one handler done with the entry and refreshes its idle clock.
func (e *entry) release() {
	e.lastUsed.Store(time.Now().UnixNano())
	e.inflight.Add(-1)
}

// registry is the concurrent consortium table. It replaces the old
// one-big-server-mutex design: the registry lock covers only map surgery;
// protocol runs hold per-entry locks.
type registry struct {
	mu      sync.Mutex
	nextID  int
	entries map[string]*entry
	// hints carries learned adaptive pack widths across consortium
	// restarts, keyed by dataset shape (monotone max, like the in-cluster
	// negotiation).
	hints map[string]int
}

func newRegistry() *registry {
	return &registry{entries: map[string]*entry{}, hints: map[string]int{}}
}

// allocID reserves the next caller-visible consortium id.
func (g *registry) allocID() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextID++
	return fmt.Sprintf("c%d", g.nextID)
}

// add registers a freshly built consortium under id.
func (g *registry) add(id, hintKey string, cons *vfps.Consortium) *entry {
	e := &entry{id: id, cons: cons, hintKey: hintKey}
	e.lastUsed.Store(time.Now().UnixNano())
	g.mu.Lock()
	g.entries[id] = e
	g.mu.Unlock()
	return e
}

// acquire looks up id and pins the entry against eviction. Callers must
// e.release() when done.
func (g *registry) acquire(id string) (*entry, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.entries[id]
	if !ok {
		return nil, false
	}
	e.inflight.Add(1)
	return e, true
}

// remove unlinks id from the table and returns the entry for teardown; new
// requests 404 immediately while the caller waits out in-flight runs.
func (g *registry) remove(id string) (*entry, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.entries[id]
	if ok {
		delete(g.entries, id)
	}
	return e, ok
}

// expire unlinks every idle entry older than ttl and returns them for
// teardown. Entries with in-flight handlers are skipped (the handler's
// release refreshes lastUsed, so they age from their last use).
func (g *registry) expire(ttl time.Duration) []*entry {
	cutoff := time.Now().Add(-ttl).UnixNano()
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []*entry
	for id, e := range g.entries {
		if e.inflight.Load() == 0 && e.lastUsed.Load() < cutoff {
			delete(g.entries, id)
			out = append(out, e)
		}
	}
	return out
}

// drainAll unlinks every entry (server shutdown).
func (g *registry) drainAll() []*entry {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*entry, 0, len(g.entries))
	for id, e := range g.entries {
		delete(g.entries, id)
		out = append(out, e)
	}
	return out
}

// hintFor returns the learned pack width for a dataset shape (0 if none).
func (g *registry) hintFor(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hints[key]
}

// recordHint folds a consortium's final negotiated width into the store
// (monotone max, mirroring the packNeed semantics inside the cluster).
func (g *registry) recordHint(key string, bits int) {
	if bits <= 0 {
		return
	}
	g.mu.Lock()
	if bits > g.hints[key] {
		g.hints[key] = bits
	}
	g.mu.Unlock()
}

// hintKeyFor derives the pack-hint grouping key from the request shape.
func hintKeyFor(dataset string, rows, parties int, scheme string) string {
	return fmt.Sprintf("%s|%d|%d|%s", dataset, rows, parties, scheme)
}
