// Package server exposes participant selection and downstream evaluation as
// a JSON-over-HTTP service, so non-Go stacks can drive the library. State is
// an in-memory registry of consortiums keyed by caller-visible ids; many
// selections across consortiums run concurrently behind per-tenant admission
// control, sharing one Paillier randomizer PoolSet.
//
// Endpoints:
//
//	GET    /healthz                       liveness
//	GET    /v1/datasets                   built-in synthetic dataset names
//	POST   /v1/consortiums                              create a consortium
//	GET    /v1/consortiums/{id}                         consortium info
//	DELETE /v1/consortiums/{id}                         tear a consortium down
//	POST   /v1/consortiums/{id}/select                  run a selection method
//	POST   /v1/consortiums/{id}/evaluate                train a downstream model
//	POST   /v1/consortiums/{id}/rewards                 fair reward shares for a selection
//	POST   /v1/consortiums/{id}/participants            join a new participant (churn)
//	DELETE /v1/consortiums/{id}/participants/{index}    remove a participant (churn)
//
// Membership changes rewire the running consortium in place — surviving
// nodes keep their caches — and hold the same per-consortium run lock as
// selections, so an in-flight selection always completes against a stable
// roster.
//
// Selection and reward requests pass admission control (see Options.Admission):
// tenants are identified by the X-Tenant header ("default" when absent), and
// over-quota requests receive 429 with a Retry-After hint, or wait in a
// bounded queue for a global concurrency slot.
//
// Observability (internal/obs; consortium metric series are labelled with
// the consortium id as instance):
//
//	GET  /metrics                       Prometheus text exposition
//	GET  /metrics.json                  same registry as JSON
//	GET  /v1/trace                      protocol span dump (?reset=1 clears)
//	GET  /debug/vars                    expvar, including the registry
//	GET  /debug/pprof/...               net/http/pprof profiles
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vfps"
	"vfps/internal/costmodel"
	"vfps/internal/he"
	"vfps/internal/obs"
	"vfps/internal/transport"
)

// Server is the HTTP handler with its consortium registry.
type Server struct {
	reg     *registry
	adm     *admission
	pool    *vfps.PoolSet
	mux     *http.ServeMux
	obs     *obs.Observer
	reqs    *obs.CounterVec
	evicted *obs.Counter
	janitor chan struct{} // closed to stop the TTL janitor
	janDone chan struct{}
	idleTTL time.Duration
}

// Options configures the server's observability surface and admission
// limits.
type Options struct {
	// LogWriter, when set, receives the structured per-query JSON event log
	// (one slog line per query/selection).
	LogWriter io.Writer
	// SlowRing is the flight-recorder capacity for /v1/slow (<= 0 →
	// obs.DefaultSlowRing).
	SlowRing int
	// TracePeers lists remote observability base URLs (vfpsnode -obs-addr
	// listeners) whose spans /v1/trace merges into the cross-node span
	// forest.
	TracePeers []string
	// Admission bounds concurrent selections; the zero value admits
	// everything.
	Admission AdmissionConfig
	// IdleTTL, when positive, evicts consortiums untouched for that long
	// (their learned pack width is kept for successors of the same shape).
	IdleTTL time.Duration
	// PoolWorkers sizes the shared Paillier randomizer pool attached to
	// every consortium (<= 0 → 1).
	PoolWorkers int
}

// New builds the server with its routes and a live observer: every consortium
// it creates reports metrics and spans through the /metrics, /v1/trace and
// /debug endpoints.
func New() *Server { return NewWithOptions(Options{}) }

// NewWithOptions is New with the observability surface configured.
func NewWithOptions(opts Options) *Server {
	o := obs.NewObserver(obs.DefaultTraceCapacity)
	o.Trace.SetNode("serve")
	if opts.LogWriter != nil || opts.SlowRing > 0 {
		o.Events = obs.NewQueryLog(opts.LogWriter, opts.SlowRing)
	}
	o.SetTracePeers(opts.TracePeers)
	workers := opts.PoolWorkers
	if workers <= 0 {
		workers = 1
	}
	s := &Server{
		reg:     newRegistry(),
		pool:    vfps.NewPoolSet(0, workers),
		mux:     http.NewServeMux(),
		obs:     o,
		idleTTL: opts.IdleTTL,
	}
	reg := o.Registry()
	obs.RegisterRuntimeMetrics(reg)
	// Pre-declare the protocol metric families so scrapers see them before
	// the first consortium runs.
	transport.DeclareMetrics(reg)
	he.DeclareMetrics(reg)
	costmodel.DeclareMetrics(reg)
	s.adm = newAdmission(opts.Admission, reg)
	s.reqs = reg.Counter("vfps_http_requests_total", "API requests served.", "method")
	s.evicted = reg.Counter("vfps_consortium_evictions_total",
		"Consortiums evicted by the idle-TTL janitor.").With()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"datasets": vfps.DatasetNames()})
	})
	s.mux.HandleFunc("POST /v1/consortiums", s.createConsortium)
	s.mux.HandleFunc("GET /v1/consortiums/{id}", s.getConsortium)
	s.mux.HandleFunc("DELETE /v1/consortiums/{id}", s.deleteConsortium)
	s.mux.HandleFunc("POST /v1/consortiums/{id}/select", s.selectParticipants)
	s.mux.HandleFunc("POST /v1/consortiums/{id}/evaluate", s.evaluate)
	s.mux.HandleFunc("POST /v1/consortiums/{id}/rewards", s.rewards)
	s.mux.HandleFunc("POST /v1/consortiums/{id}/participants", s.joinParticipant)
	s.mux.HandleFunc("DELETE /v1/consortiums/{id}/participants/{index}", s.leaveParticipant)
	o.Routes(s.mux)
	if opts.IdleTTL > 0 {
		s.janitor = make(chan struct{})
		s.janDone = make(chan struct{})
		go s.runJanitor(opts.IdleTTL)
	}
	return s
}

// runJanitor periodically evicts idle consortiums, preserving their learned
// pack width for future same-shape consortiums.
func (s *Server) runJanitor(ttl time.Duration) {
	defer close(s.janDone)
	tick := ttl / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.janitor:
			return
		case <-t.C:
			for _, e := range s.reg.expire(ttl) {
				s.teardown(e)
				s.evicted.Inc()
			}
		}
	}
}

// teardown retires an already-unlinked entry: waits out any in-flight run,
// banks the learned pack width, and closes the consortium.
func (s *Server) teardown(e *entry) {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	s.reg.recordHint(e.hintKey, e.cons.PackWidthHint())
	e.cons.Close()
}

// BeginDrain stops admitting new selection work (already-queued requests
// still run to completion).
func (s *Server) BeginDrain() { s.adm.BeginDrain() }

// Drain blocks until every admitted selection has finished, or ctx expires.
func (s *Server) Drain(ctx context.Context) error { return s.adm.Drain(ctx) }

// Close stops the janitor and tears down every consortium plus the shared
// randomizer pool. The server must not serve requests afterwards.
func (s *Server) Close() {
	if s.janitor != nil {
		close(s.janitor)
		<-s.janDone
	}
	for _, e := range s.reg.drainAll() {
		s.teardown(e)
	}
	s.pool.Close()
}

// Observer exposes the server's observer (for embedding and tests).
func (s *Server) Observer() *obs.Observer { return s.obs }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.reqs.With(r.Method).Inc()
	s.mux.ServeHTTP(w, r)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// lookup pins the consortium entry for the request's {id}. Callers must
// e.release() when done (pinning fences the idle-TTL janitor).
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	id := r.PathValue("id")
	e, ok := s.reg.acquire(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown consortium %q", id)
		return nil, false
	}
	return e, true
}

// tenantOf extracts the quota identity for a request.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// admit runs admission control for a selection-class request, writing the
// rejection response (with Retry-After when applicable) on failure.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (*lease, bool) {
	l, err := s.adm.acquire(r.Context(), tenantOf(r))
	if err != nil {
		var ae *admitError
		if errors.As(err, &ae) {
			s.adm.rejected.With(ae.reason).Inc()
			if ae.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
			}
			writeError(w, ae.status, "%s", ae.msg)
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return nil, false
	}
	return l, true
}

// heOps prices a selection for the tenant HE budget: the primitive
// operations the cost model attributes to encryption-side work.
func heOps(c costmodel.Raw) int64 {
	return c.Encryptions + c.Decryptions + c.CipherAdds
}

// CreateRequest builds a consortium from a built-in synthetic dataset (CSV
// upload flows should pre-process into a dataset client-side and are out of
// scope for the demo server).
type CreateRequest struct {
	Dataset     string  `json:"dataset"`
	Rows        int     `json:"rows"`
	Parties     int     `json:"parties"`
	Scheme      string  `json:"scheme"`
	DPEpsilon   float64 `json:"dpEpsilon"`
	SplitSeed   int64   `json:"splitSeed"`
	ShuffleSeed int64   `json:"shuffleSeed"`
	KeyBits     int     `json:"keyBits"` // Paillier modulus size (0 → library default)
	Wire        string  `json:"wire"`    // protocol codec: "gob" (default) or "binary"
	// Ciphertext payload knobs (Paillier only; see DESIGN.md §14).
	Pack         bool `json:"pack"`         // slot-pack ciphertexts
	PackAdaptive bool `json:"packAdaptive"` // renegotiate slot width per round
	ChunkBytes   int  `json:"chunkBytes"`   // stream collection responses in chunks
	DeltaCache   bool `json:"deltaCache"`   // cross-round delta encoding
	// ShardWorkers >= 2 shards the aggregation tree reduce across that many
	// in-process workers (DESIGN.md §15).
	ShardWorkers int `json:"shardWorkers"`
	// Parallelism pins per-role HE pipeline concurrency (0 → automatic).
	Parallelism int `json:"parallelism"`
	// SpeculateTA overlaps the threshold-variant scan's round r+1 decryption
	// with round r's stop check (DESIGN.md §16).
	SpeculateTA bool `json:"speculateTA"`
	// SimCache memoises similarity reports by (roster, queries, variant, K)
	// across this consortium's selections, so a recurring membership skips
	// the encrypted similarity phase (DESIGN.md §16).
	SimCache bool `json:"simCache"`
}

// CreateResponse identifies the new consortium.
type CreateResponse struct {
	ID      string `json:"id"`
	Parties int    `json:"parties"`
	Rows    int    `json:"rows"`
	Columns int    `json:"columns"`
}

func (s *Server) createConsortium(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Rows <= 0 {
		req.Rows = 1000
	}
	if req.Parties <= 0 {
		req.Parties = 4
	}
	d, err := vfps.GenerateDataset(req.Dataset, req.Rows)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pt, err := vfps.VerticalSplit(d, req.Parties, req.SplitSeed+1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Allocate the id first so the consortium's metric series carry it as
	// their instance label.
	id := s.reg.allocID()
	hintKey := hintKeyFor(req.Dataset, req.Rows, req.Parties, req.Scheme)
	cfg := vfps.Config{
		Partition:    pt,
		Labels:       d.Y,
		Classes:      d.Classes,
		Scheme:       req.Scheme,
		DPEpsilon:    req.DPEpsilon,
		ShuffleSeed:  req.ShuffleSeed,
		KeyBits:      req.KeyBits,
		Wire:         req.Wire,
		Pack:         req.Pack,
		PackAdaptive: req.PackAdaptive,
		ChunkBytes:   req.ChunkBytes,
		DeltaCache:   req.DeltaCache,
		ShardWorkers: req.ShardWorkers,
		Parallelism:  req.Parallelism,
		SpeculateTA:  req.SpeculateTA,
		SimCache:     req.SimCache,
		SharedPool:   s.pool,
		Obs:          s.obs,
		Instance:     id,
	}
	if req.Pack && req.PackAdaptive {
		// Seed the adaptive negotiation with the width a same-shape
		// predecessor learned, skipping its warm-up round.
		cfg.PackWidthHint = s.reg.hintFor(hintKey)
	}
	cons, err := vfps.NewConsortium(context.Background(), cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.reg.add(id, hintKey, cons)
	writeJSON(w, http.StatusCreated, CreateResponse{
		ID: id, Parties: cons.P(), Rows: cons.N(), Columns: d.F(),
	})
}

func (s *Server) getConsortium(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	defer e.release()
	writeJSON(w, http.StatusOK, map[string]any{
		"parties":       e.cons.P(),
		"partyNames":    e.cons.PartyNames(),
		"rows":          e.cons.N(),
		"classes":       e.cons.Classes(),
		"shardWorkers":  e.cons.ShardWorkers(),
		"packWidthHint": e.cons.PackWidthHint(),
	})
}

func (s *Server) deleteConsortium(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.remove(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown consortium %q", id)
		return
	}
	// teardown waits on runMu, so an in-flight selection finishes before the
	// cluster closes; new requests already 404.
	s.teardown(e)
	w.WriteHeader(http.StatusNoContent)
}

// SelectRequest runs one selection method.
type SelectRequest struct {
	Method     string `json:"method"` // vfps-sm (default), vfps-sm-base, random, shapley, vfmine
	Count      int    `json:"count"`
	K          int    `json:"k"`
	NumQueries int    `json:"numQueries"`
	Seed       int64  `json:"seed"`
	TopK       string `json:"topk"` // fagin|base|threshold (vfps-sm only)
	Stratified bool   `json:"stratified"`
	// Optimizer picks the submodular maximizer: "greedy" (default), "lazy"
	// or "stochastic" (vfps-sm only).
	Optimizer string `json:"optimizer"`
}

// SelectResponse reports the outcome.
type SelectResponse struct {
	Method           string    `json:"method"`
	Selected         []int     `json:"selected"`
	Scores           []float64 `json:"scores,omitempty"`
	AvgCandidates    float64   `json:"avgCandidates,omitempty"`
	ProjectedSeconds float64   `json:"projectedSeconds"`
	WallMillis       int64     `json:"wallMillis"`
}

func (s *Server) selectParticipants(w http.ResponseWriter, r *http.Request) {
	l, ok := s.admit(w, r)
	if !ok {
		return
	}
	var spent int64
	defer func() { l.Release(spent) }()
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	defer e.release()
	var req SelectRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Count <= 0 {
		req.Count = e.cons.P() / 2
	}
	method := vfps.Method(strings.ToLower(req.Method))
	if req.Method == "" {
		method = vfps.MethodVFPS
	}
	opts := vfps.SelectOptions{
		K: req.K, NumQueries: req.NumQueries, Seed: req.Seed,
		TopK: req.TopK, Stratified: req.Stratified, Optimizer: req.Optimizer,
	}
	resp := SelectResponse{Method: string(method)}
	// Protocol runs mutate per-consortium state (delta caches, pack
	// negotiation); serialize per consortium, not per server.
	e.runMu.Lock()
	defer e.runMu.Unlock()
	if method == vfps.MethodVFPS || method == vfps.MethodVFPSBase {
		opts.Base = method == vfps.MethodVFPSBase
		sel, err := e.cons.Select(r.Context(), req.Count, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		spent = heOps(sel.Counts)
		s.reg.recordHint(e.hintKey, e.cons.PackWidthHint())
		resp.Selected = sel.Selected
		resp.AvgCandidates = sel.AvgCandidates
		resp.ProjectedSeconds = sel.ProjectedSeconds
		resp.WallMillis = sel.WallTime.Milliseconds()
	} else {
		sel, err := e.cons.SelectWith(r.Context(), method, req.Count, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp.Selected = sel.Selected
		resp.Scores = sel.Scores
		resp.ProjectedSeconds = sel.ProjectedSeconds
		resp.WallMillis = sel.WallTime.Milliseconds()
	}
	writeJSON(w, http.StatusOK, resp)
}

// EvaluateRequest trains one downstream model.
type EvaluateRequest struct {
	Model     string `json:"model"` // KNN|LR|MLP|GBDT
	Parties   []int  `json:"parties"`
	K         int    `json:"k"`
	MaxEpochs int    `json:"maxEpochs"`
	Seed      int64  `json:"seed"`
}

// EvaluateResponse reports downstream quality and federated cost.
type EvaluateResponse struct {
	Model            string  `json:"model"`
	Accuracy         float64 `json:"accuracy"`
	MacroF1          float64 `json:"macroF1"`
	AUC              float64 `json:"auc,omitempty"`
	ProjectedSeconds float64 `json:"projectedSeconds"`
}

func (s *Server) evaluate(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	defer e.release()
	var req EvaluateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Model == "" {
		req.Model = string(vfps.ModelKNN)
	}
	ev, err := e.cons.Evaluate(vfps.ModelName(strings.ToUpper(req.Model)), req.Parties, vfps.EvalOptions{
		K: req.K, MaxEpochs: req.MaxEpochs, Seed: req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{
		Model:            string(ev.Model),
		Accuracy:         ev.Accuracy,
		MacroF1:          ev.MacroF1,
		AUC:              ev.AUC,
		ProjectedSeconds: ev.ProjectedSeconds,
	})
}

// RewardsRequest computes fair shares after a (fresh) similarity run.
type RewardsRequest struct {
	K          int   `json:"k"`
	NumQueries int   `json:"numQueries"`
	Seed       int64 `json:"seed"`
}

// RewardsResponse carries per-participant shares.
type RewardsResponse struct {
	Shares []float64 `json:"shares"`
}

func (s *Server) rewards(w http.ResponseWriter, r *http.Request) {
	l, ok := s.admit(w, r)
	if !ok {
		return
	}
	var spent int64
	defer func() { l.Release(spent) }()
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	defer e.release()
	var req RewardsRequest
	if !readJSON(w, r, &req) {
		return
	}
	e.runMu.Lock()
	defer e.runMu.Unlock()
	sel, err := e.cons.Select(r.Context(), e.cons.P(), vfps.SelectOptions{
		K: req.K, NumQueries: req.NumQueries, Seed: req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spent = heOps(sel.Counts)
	shares, err := vfps.RewardShares(sel)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, RewardsResponse{Shares: shares})
}

// JoinRequest admits a new participant to a running consortium. The demo
// server holds only synthetic datasets, so the joiner's vertical slice is
// synthesised from the consortium's own data: a seeded noisy clone of an
// existing party's columns. Noise 0 yields an exact duplicate (the paper's
// Fig. 6 redundancy case — the selection should never pick both).
type JoinRequest struct {
	// CloneOf is the original party index whose columns seed the joiner
	// (default 0; must be within the construction-time partition).
	CloneOf int `json:"cloneOf"`
	// Noise is the amplitude of seeded uniform jitter added per entry.
	Noise float64 `json:"noise"`
	// Seed drives the jitter.
	Seed int64 `json:"seed"`
}

// JoinResponse names the new party and reports the post-join roster size.
type JoinResponse struct {
	Name    string `json:"name"`
	Parties int    `json:"parties"`
}

func (s *Server) joinParticipant(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	defer e.release()
	var req JoinRequest
	if !readJSON(w, r, &req) {
		return
	}
	pt := e.cons.Partition()
	if req.CloneOf < 0 || req.CloneOf >= pt.P() {
		writeError(w, http.StatusBadRequest, "cloneOf %d out of range [0,%d)", req.CloneOf, pt.P())
		return
	}
	src := pt.Parties[req.CloneOf]
	rng := rand.New(rand.NewSource(req.Seed))
	features := make([][]float64, src.Rows)
	for i := range features {
		row := make([]float64, src.Cols)
		for j := range row {
			row[j] = src.At(i, j)
			if req.Noise > 0 {
				row[j] += req.Noise * (2*rng.Float64() - 1)
			}
		}
		features[i] = row
	}
	// Membership changes take the same lock as selections: an in-flight run
	// completes against a stable roster before the rewire starts.
	e.runMu.Lock()
	defer e.runMu.Unlock()
	name, err := e.cons.AddParticipant(features)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, JoinResponse{Name: name, Parties: e.cons.P()})
}

func (s *Server) leaveParticipant(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	defer e.release()
	index, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad participant index %q", r.PathValue("index"))
		return
	}
	e.runMu.Lock()
	defer e.runMu.Unlock()
	if err := e.cons.RemoveParticipant(index); err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "no participant") {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"parties": e.cons.P()})
}
