// Package server exposes participant selection and downstream evaluation as
// a JSON-over-HTTP service, so non-Go stacks can drive the library. State is
// an in-memory registry of consortiums keyed by caller-visible ids.
//
// Endpoints:
//
//	GET  /healthz                       liveness
//	GET  /v1/datasets                   built-in synthetic dataset names
//	POST /v1/consortiums                create a consortium
//	GET  /v1/consortiums/{id}           consortium info
//	POST /v1/consortiums/{id}/select    run a selection method
//	POST /v1/consortiums/{id}/evaluate  train a downstream model
//	POST /v1/consortiums/{id}/rewards   fair reward shares for a selection
//
// Observability (internal/obs; consortium metric series are labelled with
// the consortium id as instance):
//
//	GET  /metrics                       Prometheus text exposition
//	GET  /metrics.json                  same registry as JSON
//	GET  /v1/trace                      protocol span dump (?reset=1 clears)
//	GET  /debug/vars                    expvar, including the registry
//	GET  /debug/pprof/...               net/http/pprof profiles
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"vfps"
	"vfps/internal/costmodel"
	"vfps/internal/he"
	"vfps/internal/obs"
	"vfps/internal/transport"
)

// Server is the HTTP handler with its consortium registry.
type Server struct {
	mu     sync.Mutex
	nextID int
	pool   map[string]*vfps.Consortium
	mux    *http.ServeMux
	obs    *obs.Observer
	reqs   *obs.CounterVec
}

// Options configures the server's observability surface.
type Options struct {
	// LogWriter, when set, receives the structured per-query JSON event log
	// (one slog line per query/selection).
	LogWriter io.Writer
	// SlowRing is the flight-recorder capacity for /v1/slow (<= 0 →
	// obs.DefaultSlowRing).
	SlowRing int
	// TracePeers lists remote observability base URLs (vfpsnode -obs-addr
	// listeners) whose spans /v1/trace merges into the cross-node span
	// forest.
	TracePeers []string
}

// New builds the server with its routes and a live observer: every consortium
// it creates reports metrics and spans through the /metrics, /v1/trace and
// /debug endpoints.
func New() *Server { return NewWithOptions(Options{}) }

// NewWithOptions is New with the observability surface configured.
func NewWithOptions(opts Options) *Server {
	o := obs.NewObserver(obs.DefaultTraceCapacity)
	o.Trace.SetNode("serve")
	if opts.LogWriter != nil || opts.SlowRing > 0 {
		o.Events = obs.NewQueryLog(opts.LogWriter, opts.SlowRing)
	}
	o.SetTracePeers(opts.TracePeers)
	s := &Server{pool: map[string]*vfps.Consortium{}, mux: http.NewServeMux(), obs: o}
	reg := o.Registry()
	obs.RegisterRuntimeMetrics(reg)
	// Pre-declare the protocol metric families so scrapers see them before
	// the first consortium runs.
	transport.DeclareMetrics(reg)
	he.DeclareMetrics(reg)
	costmodel.DeclareMetrics(reg)
	s.reqs = reg.Counter("vfps_http_requests_total", "API requests served.", "method")
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"datasets": vfps.DatasetNames()})
	})
	s.mux.HandleFunc("POST /v1/consortiums", s.createConsortium)
	s.mux.HandleFunc("GET /v1/consortiums/{id}", s.getConsortium)
	s.mux.HandleFunc("POST /v1/consortiums/{id}/select", s.selectParticipants)
	s.mux.HandleFunc("POST /v1/consortiums/{id}/evaluate", s.evaluate)
	s.mux.HandleFunc("POST /v1/consortiums/{id}/rewards", s.rewards)
	o.Routes(s.mux)
	return s
}

// Observer exposes the server's observer (for embedding and tests).
func (s *Server) Observer() *obs.Observer { return s.obs }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.reqs.With(r.Method).Inc()
	s.mux.ServeHTTP(w, r)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*vfps.Consortium, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	cons, ok := s.pool[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown consortium %q", id)
		return nil, false
	}
	return cons, true
}

// CreateRequest builds a consortium from a built-in synthetic dataset (CSV
// upload flows should pre-process into a dataset client-side and are out of
// scope for the demo server).
type CreateRequest struct {
	Dataset     string  `json:"dataset"`
	Rows        int     `json:"rows"`
	Parties     int     `json:"parties"`
	Scheme      string  `json:"scheme"`
	DPEpsilon   float64 `json:"dpEpsilon"`
	SplitSeed   int64   `json:"splitSeed"`
	ShuffleSeed int64   `json:"shuffleSeed"`
	Wire        string  `json:"wire"` // protocol codec: "gob" (default) or "binary"
	// Ciphertext payload knobs (Paillier only; see DESIGN.md §14).
	Pack         bool `json:"pack"`         // slot-pack ciphertexts
	PackAdaptive bool `json:"packAdaptive"` // renegotiate slot width per round
	ChunkBytes   int  `json:"chunkBytes"`   // stream collection responses in chunks
	DeltaCache   bool `json:"deltaCache"`   // cross-round delta encoding
}

// CreateResponse identifies the new consortium.
type CreateResponse struct {
	ID      string `json:"id"`
	Parties int    `json:"parties"`
	Rows    int    `json:"rows"`
	Columns int    `json:"columns"`
}

func (s *Server) createConsortium(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Rows <= 0 {
		req.Rows = 1000
	}
	if req.Parties <= 0 {
		req.Parties = 4
	}
	d, err := vfps.GenerateDataset(req.Dataset, req.Rows)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pt, err := vfps.VerticalSplit(d, req.Parties, req.SplitSeed+1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Allocate the id first so the consortium's metric series carry it as
	// their instance label.
	s.mu.Lock()
	s.nextID++
	id := "c" + strconv.Itoa(s.nextID)
	s.mu.Unlock()
	cons, err := vfps.NewConsortium(context.Background(), vfps.Config{
		Partition:    pt,
		Labels:       d.Y,
		Classes:      d.Classes,
		Scheme:       req.Scheme,
		DPEpsilon:    req.DPEpsilon,
		ShuffleSeed:  req.ShuffleSeed,
		Wire:         req.Wire,
		Pack:         req.Pack,
		PackAdaptive: req.PackAdaptive,
		ChunkBytes:   req.ChunkBytes,
		DeltaCache:   req.DeltaCache,
		Obs:          s.obs,
		Instance:     id,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	s.pool[id] = cons
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, CreateResponse{
		ID: id, Parties: cons.P(), Rows: cons.N(), Columns: d.F(),
	})
}

func (s *Server) getConsortium(w http.ResponseWriter, r *http.Request) {
	cons, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"parties": cons.P(),
		"rows":    cons.N(),
		"classes": cons.Classes(),
	})
}

// SelectRequest runs one selection method.
type SelectRequest struct {
	Method     string `json:"method"` // vfps-sm (default), vfps-sm-base, random, shapley, vfmine
	Count      int    `json:"count"`
	K          int    `json:"k"`
	NumQueries int    `json:"numQueries"`
	Seed       int64  `json:"seed"`
	TopK       string `json:"topk"` // fagin|base|threshold (vfps-sm only)
	Stratified bool   `json:"stratified"`
}

// SelectResponse reports the outcome.
type SelectResponse struct {
	Method           string    `json:"method"`
	Selected         []int     `json:"selected"`
	Scores           []float64 `json:"scores,omitempty"`
	AvgCandidates    float64   `json:"avgCandidates,omitempty"`
	ProjectedSeconds float64   `json:"projectedSeconds"`
	WallMillis       int64     `json:"wallMillis"`
}

func (s *Server) selectParticipants(w http.ResponseWriter, r *http.Request) {
	cons, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req SelectRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Count <= 0 {
		req.Count = cons.P() / 2
	}
	method := vfps.Method(strings.ToLower(req.Method))
	if req.Method == "" {
		method = vfps.MethodVFPS
	}
	opts := vfps.SelectOptions{
		K: req.K, NumQueries: req.NumQueries, Seed: req.Seed,
		TopK: req.TopK, Stratified: req.Stratified,
	}
	resp := SelectResponse{Method: string(method)}
	if method == vfps.MethodVFPS || method == vfps.MethodVFPSBase {
		opts.Base = method == vfps.MethodVFPSBase
		sel, err := cons.Select(r.Context(), req.Count, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp.Selected = sel.Selected
		resp.AvgCandidates = sel.AvgCandidates
		resp.ProjectedSeconds = sel.ProjectedSeconds
		resp.WallMillis = sel.WallTime.Milliseconds()
	} else {
		sel, err := cons.SelectWith(r.Context(), method, req.Count, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp.Selected = sel.Selected
		resp.Scores = sel.Scores
		resp.ProjectedSeconds = sel.ProjectedSeconds
		resp.WallMillis = sel.WallTime.Milliseconds()
	}
	writeJSON(w, http.StatusOK, resp)
}

// EvaluateRequest trains one downstream model.
type EvaluateRequest struct {
	Model     string `json:"model"` // KNN|LR|MLP|GBDT
	Parties   []int  `json:"parties"`
	K         int    `json:"k"`
	MaxEpochs int    `json:"maxEpochs"`
	Seed      int64  `json:"seed"`
}

// EvaluateResponse reports downstream quality and federated cost.
type EvaluateResponse struct {
	Model            string  `json:"model"`
	Accuracy         float64 `json:"accuracy"`
	MacroF1          float64 `json:"macroF1"`
	AUC              float64 `json:"auc,omitempty"`
	ProjectedSeconds float64 `json:"projectedSeconds"`
}

func (s *Server) evaluate(w http.ResponseWriter, r *http.Request) {
	cons, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req EvaluateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Model == "" {
		req.Model = string(vfps.ModelKNN)
	}
	ev, err := cons.Evaluate(vfps.ModelName(strings.ToUpper(req.Model)), req.Parties, vfps.EvalOptions{
		K: req.K, MaxEpochs: req.MaxEpochs, Seed: req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{
		Model:            string(ev.Model),
		Accuracy:         ev.Accuracy,
		MacroF1:          ev.MacroF1,
		AUC:              ev.AUC,
		ProjectedSeconds: ev.ProjectedSeconds,
	})
}

// RewardsRequest computes fair shares after a (fresh) similarity run.
type RewardsRequest struct {
	K          int   `json:"k"`
	NumQueries int   `json:"numQueries"`
	Seed       int64 `json:"seed"`
}

// RewardsResponse carries per-participant shares.
type RewardsResponse struct {
	Shares []float64 `json:"shares"`
}

func (s *Server) rewards(w http.ResponseWriter, r *http.Request) {
	cons, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req RewardsRequest
	if !readJSON(w, r, &req) {
		return
	}
	sel, err := cons.Select(r.Context(), cons.P(), vfps.SelectOptions{
		K: req.K, NumQueries: req.NumQueries, Seed: req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	shares, err := vfps.RewardShares(sel)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, RewardsResponse{Shares: shares})
}
