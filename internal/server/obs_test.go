package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"vfps/internal/obs"
)

// TestObservabilityEndpoints drives one selection through the API and then
// scrapes the observability surface: /metrics must expose the transport,
// HE and cost-model families labelled with the consortium id, and /v1/trace
// must hold the selection's phase spans.
func TestObservabilityEndpoints(t *testing.T) {
	ts := startServer(t)
	var created CreateResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/consortiums",
		CreateRequest{Dataset: "Rice", Rows: 150, Parties: 3, Scheme: "paillier"}, &created); code != http.StatusCreated {
		t.Fatalf("create %d", code)
	}
	id := created.ID
	var sel SelectResponse
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/consortiums/%s/select", ts.URL, id),
		SelectRequest{Count: 2, K: 5, NumQueries: 6, Seed: 1}, &sel); code != 200 {
		t.Fatalf("select %d", code)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE vfps_transport_call_seconds histogram",
		"# TYPE vfps_he_ops_total counter",
		"# TYPE vfps_cost_ops gauge",
		"# TYPE vfps_http_requests_total counter",
		`instance="` + id + `"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var fams []obs.FamilySnapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &fams); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if len(fams) == 0 {
		t.Fatal("/metrics.json empty")
	}

	var rep obs.TraceReport
	if err := json.Unmarshal([]byte(get("/v1/trace")), &rep); err != nil {
		t.Fatalf("/v1/trace: %v", err)
	}
	phases := map[string]bool{}
	for _, p := range rep.Phases {
		phases[p.Name] = true
	}
	for _, want := range []string{"select.similarity", "select.maximize"} {
		if !phases[want] {
			t.Fatalf("trace phases missing %s: %+v", want, rep.Phases)
		}
	}

	if !strings.Contains(get("/debug/vars"), "vfps_metrics") {
		t.Fatal("/debug/vars missing vfps_metrics")
	}
}
