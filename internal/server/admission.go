package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vfps/internal/obs"
)

// AdmissionConfig bounds how much selection work the server accepts at once.
// Zero values disable the corresponding limit, so the zero config admits
// everything (the pre-admission behaviour).
type AdmissionConfig struct {
	// MaxConcurrent caps selections running across all tenants; excess
	// requests queue.
	MaxConcurrent int
	// QueueDepth caps queued requests waiting for a concurrency slot. A full
	// queue rejects with 429 and a Retry-After hint.
	QueueDepth int
	// TenantConcurrent caps selections running per tenant (X-Tenant header,
	// "default" when absent).
	TenantConcurrent int
	// TenantHEBudget caps cumulative HE operations (encryptions +
	// decryptions + ciphertext additions, from the cost-model counters) a
	// tenant may spend; once exhausted its selections get 429.
	TenantHEBudget int64
}

// admitError is a rejected admission, carrying the HTTP status and an
// optional Retry-After hint in seconds.
type admitError struct {
	status     int
	reason     string
	retryAfter int
	msg        string
}

func (e *admitError) Error() string { return e.msg }

// tenantState tracks one tenant's live usage.
type tenantState struct {
	inflight int
	heSpent  int64
}

// admission implements per-tenant quotas and a bounded wait queue in front
// of the selection endpoints.
type admission struct {
	cfg      AdmissionConfig
	slots    chan struct{} // nil when MaxConcurrent is unlimited
	mu       sync.Mutex
	tenants  map[string]*tenantState
	queued   atomic.Int64
	draining atomic.Bool
	inflight sync.WaitGroup

	admitted *obs.Counter
	enqueued *obs.Counter
	rejected *obs.CounterVec
}

func newAdmission(cfg AdmissionConfig, reg *obs.Registry) *admission {
	a := &admission{cfg: cfg, tenants: map[string]*tenantState{}}
	if cfg.MaxConcurrent > 0 {
		a.slots = make(chan struct{}, cfg.MaxConcurrent)
	}
	a.admitted = reg.Counter("vfps_admission_admitted_total",
		"Selection requests admitted past quota checks.").With()
	a.enqueued = reg.Counter("vfps_admission_queued_total",
		"Selection requests that waited in the admission queue.").With()
	a.rejected = reg.Counter("vfps_admission_rejected_total",
		"Selection requests rejected by admission control.", "reason")
	reg.Gauge("vfps_admission_queue_depth",
		"Selection requests currently waiting for a concurrency slot.").
		Func(func() float64 { return float64(a.queued.Load()) })
	return a
}

// lease is a successful admission; the holder must Release exactly once with
// the HE operations the run consumed.
type lease struct {
	a      *admission
	tenant string
}

// acquire admits, queues, or rejects a request for tenant. On rejection the
// returned error is an *admitError with the HTTP status to serve.
func (a *admission) acquire(ctx context.Context, tenant string) (*lease, error) {
	if a.draining.Load() {
		return nil, &admitError{status: 503, reason: "draining",
			msg: "server is draining; retry against another replica"}
	}
	// Tenant-level checks and reservation under the lock.
	a.mu.Lock()
	ts := a.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		a.tenants[tenant] = ts
	}
	if a.cfg.TenantHEBudget > 0 && ts.heSpent >= a.cfg.TenantHEBudget {
		a.mu.Unlock()
		return nil, &admitError{status: 429, reason: "tenant-budget",
			msg: fmt.Sprintf("tenant %q exhausted its HE-operation budget (%d spent of %d)",
				tenant, ts.heSpent, a.cfg.TenantHEBudget)}
	}
	if a.cfg.TenantConcurrent > 0 && ts.inflight >= a.cfg.TenantConcurrent {
		a.mu.Unlock()
		return nil, &admitError{status: 429, reason: "tenant-concurrency", retryAfter: 1,
			msg: fmt.Sprintf("tenant %q already has %d selections in flight",
				tenant, ts.inflight)}
	}
	ts.inflight++
	a.mu.Unlock()

	// Global concurrency: take a slot immediately, or wait in the bounded
	// queue. Queued requests survive BeginDrain — drain means "stop taking
	// new work, finish what is accepted", and a queued request is accepted.
	if a.slots != nil {
		select {
		case a.slots <- struct{}{}:
		default:
			if int(a.queued.Load()) >= a.cfg.QueueDepth {
				a.releaseTenant(tenant, 0)
				return nil, &admitError{status: 429, reason: "queue-full", retryAfter: 2,
					msg: fmt.Sprintf("admission queue full (%d waiting)", a.cfg.QueueDepth)}
			}
			a.queued.Add(1)
			a.enqueued.Inc()
			select {
			case a.slots <- struct{}{}:
				a.queued.Add(-1)
			case <-ctx.Done():
				a.queued.Add(-1)
				a.releaseTenant(tenant, 0)
				return nil, &admitError{status: 503, reason: "canceled",
					msg: "request canceled while queued"}
			}
		}
	}
	a.admitted.Inc()
	a.inflight.Add(1)
	return &lease{a: a, tenant: tenant}, nil
}

// releaseTenant undoes the tenant reservation and debits spent HE ops.
func (a *admission) releaseTenant(tenant string, heOps int64) {
	a.mu.Lock()
	if ts := a.tenants[tenant]; ts != nil {
		ts.inflight--
		ts.heSpent += heOps
	}
	a.mu.Unlock()
}

// Release returns the lease's slot and debits heOps against the tenant's
// budget.
func (l *lease) Release(heOps int64) {
	if l.a.slots != nil {
		<-l.a.slots
	}
	l.a.releaseTenant(l.tenant, heOps)
	l.a.inflight.Done()
}

// BeginDrain stops admitting new requests; already-queued requests still run.
func (a *admission) BeginDrain() { a.draining.Store(true) }

// Drain blocks until every admitted request has released, or ctx expires.
func (a *admission) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		a.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return errors.New("admission drain timed out with selections in flight")
	}
}
