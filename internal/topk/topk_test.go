package topk

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randomLists(rng *rand.Rand, p, n int) []*RankedList {
	lists := make([]*RankedList, p)
	for i := range lists {
		scores := make([]float64, n)
		for j := range scores {
			scores[j] = rng.Float64() * 100
		}
		lists[i] = NewRankedList(scores)
	}
	return lists
}

func TestRankedListSortedAscending(t *testing.T) {
	l := NewRankedList([]float64{5, 1, 3, 1})
	want := []int{1, 3, 2, 0} // ties by id: ids 1 and 3 share score 1
	if got := l.Ranking(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Ranking() = %v, want %v", got, want)
	}
	if l.Score(2) != 3 {
		t.Fatal("random access wrong")
	}
	if l.At(0).ID != 1 || l.At(0).Score != 1 {
		t.Fatal("At(0) wrong")
	}
}

func TestNaiveKnownAnswer(t *testing.T) {
	// Example from Fig. 2 shape: 3 parties, minimal-2.
	lists := []*RankedList{
		NewRankedList([]float64{1, 4, 2, 9}),
		NewRankedList([]float64{2, 8, 3, 7}),
		NewRankedList([]float64{1, 5, 6, 8}),
	}
	// Sums: X0=4, X1=17, X2=11, X3=24 -> minimal-2 = {0, 2}
	r, err := Naive(lists, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.TopK, []int{0, 2}) {
		t.Fatalf("Naive TopK = %v", r.TopK)
	}
}

func TestFaginMatchesNaiveKnownAnswer(t *testing.T) {
	lists := []*RankedList{
		NewRankedList([]float64{1, 4, 2, 9}),
		NewRankedList([]float64{2, 8, 3, 7}),
		NewRankedList([]float64{1, 5, 6, 8}),
	}
	f, err := Fagin(lists, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.TopK, []int{0, 2}) {
		t.Fatalf("Fagin TopK = %v", f.TopK)
	}
	if f.Stats.Candidates >= 4 {
		t.Logf("note: Fagin saw all candidates on this tiny input (%d)", f.Stats.Candidates)
	}
}

func TestThresholdMatchesNaiveKnownAnswer(t *testing.T) {
	lists := []*RankedList{
		NewRankedList([]float64{1, 4, 2, 9}),
		NewRankedList([]float64{2, 8, 3, 7}),
		NewRankedList([]float64{1, 5, 6, 8}),
	}
	r, err := Threshold(lists, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.TopK, []int{0, 2}) {
		t.Fatalf("Threshold TopK = %v", r.TopK)
	}
}

func TestValidation(t *testing.T) {
	lists := randomLists(rand.New(rand.NewSource(1)), 2, 10)
	if _, err := Fagin(nil, 2, 1); err == nil {
		t.Fatal("expected error for no lists")
	}
	if _, err := Fagin(lists, 0, 1); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := Fagin(lists, 11, 1); err == nil {
		t.Fatal("expected error for k>n")
	}
	if _, err := Fagin(lists, 2, 0); err == nil {
		t.Fatal("expected error for batch=0")
	}
	ragged := []*RankedList{NewRankedList([]float64{1}), NewRankedList([]float64{1, 2})}
	if _, err := Naive(ragged, 1); err == nil {
		t.Fatal("expected error for ragged lists")
	}
	if _, err := Threshold(lists, 0); err == nil {
		t.Fatal("expected error for TA k=0")
	}
}

// Property: Fagin result == Naive result on random inputs, for various
// batch sizes.
func TestFaginEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(5)
		n := 5 + rng.Intn(100)
		k := 1 + rng.Intn(n)
		batch := 1 + rng.Intn(10)
		lists := randomLists(rng, p, n)
		want, err := Naive(lists, k)
		if err != nil {
			return false
		}
		got, err := Fagin(lists, k, batch)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.TopK, want.TopK)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: TA result == Naive result on random inputs.
func TestThresholdEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(5)
		n := 5 + rng.Intn(100)
		k := 1 + rng.Intn(n)
		lists := randomLists(rng, p, n)
		want, err := Naive(lists, k)
		if err != nil {
			return false
		}
		got, err := Threshold(lists, k)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.TopK, want.TopK)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with duplicated (perfectly correlated) lists Fagin terminates at
// depth k — the candidate set is as small as possible.
func TestFaginCorrelatedListsPruneHard(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scores := make([]float64, 1000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	lists := []*RankedList{NewRankedList(scores), NewRankedList(scores), NewRankedList(scores)}
	r, err := Fagin(lists, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.ScanDepth != 10 {
		t.Fatalf("expected scan depth 10 on identical lists, got %d", r.Stats.ScanDepth)
	}
	if r.Stats.Candidates != 10 {
		t.Fatalf("expected 10 candidates, got %d", r.Stats.Candidates)
	}
}

// On anti-correlated lists Fagin must scan deep; its candidate count should
// approach n, never exceed it.
func TestFaginAntiCorrelated(t *testing.T) {
	n := 200
	asc := make([]float64, n)
	desc := make([]float64, n)
	for i := 0; i < n; i++ {
		asc[i] = float64(i)
		desc[i] = float64(n - i)
	}
	lists := []*RankedList{NewRankedList(asc), NewRankedList(desc)}
	r, err := Fagin(lists, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Candidates > n {
		t.Fatalf("candidates %d exceed n", r.Stats.Candidates)
	}
	want, _ := Naive(lists, 5)
	if !reflect.DeepEqual(r.TopK, want.TopK) {
		t.Fatalf("anti-correlated mismatch: %v vs %v", r.TopK, want.TopK)
	}
}

func TestFaginCandidatesContainTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lists := randomLists(rng, 4, 300)
	r, err := Fagin(lists, 15, 8)
	if err != nil {
		t.Fatal(err)
	}
	cand := make(map[int]bool, len(r.CandidateIDs))
	for _, id := range r.CandidateIDs {
		cand[id] = true
	}
	for _, id := range r.TopK {
		if !cand[id] {
			t.Fatalf("top-k id %d missing from candidates", id)
		}
	}
}

func TestFaginBatchInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	lists := randomLists(rng, 3, 500)
	var prev []int
	for _, b := range []int{1, 7, 32, 500} {
		r, err := Fagin(lists, 20, b)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(prev, r.TopK) {
			t.Fatalf("batch %d changed result", b)
		}
		prev = r.TopK
	}
}

func TestKSmallest(t *testing.T) {
	v := []float64{5, 1, 3, 1, 4}
	got := KSmallest(v, 3)
	want := []int{1, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("KSmallest = %v, want %v", got, want)
	}
	if KSmallest(v, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
	if len(KSmallest(v, 99)) != 5 {
		t.Fatal("k>n should clamp")
	}
}

// Statistics sanity: TA should never do more sorted accesses than Fagin with
// batch 1 needs rounds×p... both bounded by n×p.
func TestStatsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p, n := 4, 400
	lists := randomLists(rng, p, n)
	fr, _ := Fagin(lists, 10, 5)
	tr, _ := Threshold(lists, 10)
	nr, _ := Naive(lists, 10)
	if fr.Stats.SortedAccesses > p*n || tr.Stats.SortedAccesses > p*n {
		t.Fatal("sorted accesses exceed total rows")
	}
	if nr.Stats.RandomAccesses != p*n {
		t.Fatalf("naive should touch every cell: %d", nr.Stats.RandomAccesses)
	}
	if fr.Stats.Candidates == 0 || tr.Stats.Candidates == 0 {
		t.Fatal("candidate counts missing")
	}
}

func BenchmarkFagin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lists := randomLists(rng, 4, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fagin(lists, 10, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThreshold(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lists := randomLists(rng, 4, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Threshold(lists, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lists := randomLists(rng, 4, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Naive(lists, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: NRA result == Naive result on random (tie-free) inputs.
func TestNRAEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(4)
		n := 5 + rng.Intn(80)
		k := 1 + rng.Intn(n)
		lists := randomLists(rng, p, n)
		want, err := Naive(lists, k)
		if err != nil {
			return false
		}
		got, err := NRA(lists, k)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.TopK, want.TopK)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNRAValidation(t *testing.T) {
	lists := randomLists(rand.New(rand.NewSource(1)), 2, 10)
	if _, err := NRA(lists, 0); err == nil {
		t.Fatal("expected k=0 error")
	}
	if _, err := NRA(nil, 1); err == nil {
		t.Fatal("expected empty-lists error")
	}
}

func TestNRANoRandomAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lists := randomLists(rng, 3, 500)
	r, err := NRA(lists, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.RandomAccesses != 0 {
		t.Fatalf("NRA performed %d random accesses", r.Stats.RandomAccesses)
	}
	if r.Stats.SortedAccesses == 0 || r.Stats.ScanDepth == 0 {
		t.Fatal("stats missing")
	}
}

func TestNRACorrelatedListsTerminateEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	scores := make([]float64, 2000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	lists := []*RankedList{NewRankedList(scores), NewRankedList(scores)}
	r, err := NRA(lists, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.ScanDepth >= 2000 {
		t.Fatalf("NRA scanned everything (%d) on identical lists", r.Stats.ScanDepth)
	}
}
