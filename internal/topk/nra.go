package topk

import (
	"container/heap"
	"sort"
)

// NRA runs the No-Random-Access algorithm: sorted access only, maintaining
// per-object bounds, terminating once k fully-seen objects provably beat
// every other object's lower bound.
//
// For the minimal-k/sum setting the bounds are: a partially seen object's
// total is at least its seen scores plus the current frontier of each unseen
// list; a never-seen object's total is at least the frontier sum τ.
//
// NRA is included for completeness of the top-k substrate (it is the
// classic third member next to Fagin and TA). It does not map onto the
// *encrypted* VFL deployment: NRA needs the scores revealed during sorted
// access, whereas the paper's protocol deliberately streams only pseudo-ID
// rankings and keeps scores encrypted — which is exactly why VFPS-SM builds
// on Fagin's algorithm.
func NRA(lists []*RankedList, k int) (*Result, error) {
	n, err := validate(lists, k)
	if err != nil {
		return nil, err
	}
	p := len(lists)
	type state struct {
		seenMask uint64
		seenSum  float64
	}
	seen := make(map[int]*state, 4*k)
	order := make([]int, 0, 4*k)
	frontier := make([]float64, p)
	var stats Stats
	depth := 0
	// exact holds fully seen objects as a max-heap on total so the kth-best
	// exact total is cheap to track.
	exact := &maxHeap{}
	exactTotal := map[int]float64{}
	for depth < n {
		for li, l := range lists {
			it := l.At(depth)
			stats.SortedAccesses++
			frontier[li] = it.Score
			st, ok := seen[it.ID]
			if !ok {
				st = &state{}
				seen[it.ID] = st
				order = append(order, it.ID)
			}
			st.seenMask |= 1 << li
			st.seenSum += it.Score
			if st.seenMask == (uint64(1)<<p)-1 {
				exactTotal[it.ID] = st.seenSum
				heap.Push(exact, heapItem{id: it.ID, total: st.seenSum})
				if exact.Len() > k {
					heap.Pop(exact)
				}
			}
		}
		depth++
		stats.Rounds++
		if exact.Len() < k {
			continue
		}
		kth := (*exact)[0].total
		// τ bounds every never-seen object.
		var tau float64
		for _, f := range frontier {
			tau += f
		}
		if kth > tau {
			continue
		}
		// Check partially seen objects' lower bounds.
		ok := true
		for id, st := range seen {
			if st.seenMask == (uint64(1)<<p)-1 {
				continue
			}
			lb := st.seenSum
			for li := 0; li < p; li++ {
				if st.seenMask&(1<<li) == 0 {
					lb += frontier[li]
				}
			}
			if lb < kth {
				ok = false
				break
			}
			_ = id
		}
		if ok {
			break
		}
	}
	// Materialise the final top-k from the fully seen set (at full depth
	// every object is fully seen, so this always succeeds).
	type agg struct {
		id  int
		sum float64
	}
	finals := make([]agg, 0, len(exactTotal))
	for id, total := range exactTotal {
		finals = append(finals, agg{id: id, sum: total})
	}
	sort.Slice(finals, func(i, j int) bool {
		if finals[i].sum != finals[j].sum {
			return finals[i].sum < finals[j].sum
		}
		return finals[i].id < finals[j].id
	})
	topk := make([]int, k)
	for i := 0; i < k; i++ {
		topk[i] = finals[i].id
	}
	cand := append([]int{}, order...)
	sort.Ints(cand)
	stats.Candidates = len(cand)
	stats.ScanDepth = depth
	return &Result{TopK: topk, CandidateIDs: cand, Stats: stats}, nil
}

type heapItem struct {
	id    int
	total float64
}

// maxHeap keeps the largest total on top so it can be evicted, leaving the
// k smallest exact totals.
type maxHeap []heapItem

func (h maxHeap) Len() int { return len(h) }
func (h maxHeap) Less(i, j int) bool {
	if h[i].total != h[j].total {
		return h[i].total > h[j].total
	}
	return h[i].id > h[j].id
}
func (h maxHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *maxHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
