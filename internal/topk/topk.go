// Package topk implements multi-party top-k query algorithms over ranked
// score lists: Fagin's algorithm (FA, used by VFPS-SM), the Threshold
// Algorithm (TA, supported as an alternative per §IV-B of the paper) and a
// naive full merge used as the correctness oracle and ablation baseline.
//
// Conventions match the paper's vertical-KNN use: every party holds a score
// (partial distance) for the same N instance ids, lists are sorted in
// ascending order, the aggregate is the sum across parties, and the query
// asks for the k instances with the *smallest* aggregate score ("minimal-k").
// Ties are broken by instance id so all algorithms return identical results.
package topk

import (
	"fmt"
	"sort"
)

// Item pairs an instance id with its score on one party.
type Item struct {
	ID    int
	Score float64
}

// RankedList is one party's scores for instance ids 0..N-1, pre-sorted in
// ascending score order for sequential access, with random access by id.
type RankedList struct {
	sorted []Item    // ascending by (Score, ID)
	scores []float64 // indexed by id
}

// NewRankedList builds a ranked list from per-id scores (id = index).
func NewRankedList(scores []float64) *RankedList {
	l := &RankedList{
		sorted: make([]Item, len(scores)),
		scores: scores,
	}
	for id, s := range scores {
		l.sorted[id] = Item{ID: id, Score: s}
	}
	sort.Slice(l.sorted, func(i, j int) bool {
		a, b := l.sorted[i], l.sorted[j]
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.ID < b.ID
	})
	return l
}

// Len returns the number of instances in the list.
func (l *RankedList) Len() int { return len(l.sorted) }

// At returns the item at the given rank (0 = smallest score).
func (l *RankedList) At(rank int) Item { return l.sorted[rank] }

// Score performs a random access: the score of the given id.
func (l *RankedList) Score(id int) float64 { return l.scores[id] }

// Ranking returns the instance ids in ascending score order. This is the
// "sub-ranking of pseudo IDs" a participant streams to the aggregation
// server.
func (l *RankedList) Ranking() []int {
	ids := make([]int, len(l.sorted))
	for i, it := range l.sorted {
		ids[i] = it.ID
	}
	return ids
}

// Stats records the work a top-k algorithm performed; the VFL cost model
// turns these into encrypted-communication counts.
type Stats struct {
	// SortedAccesses is the total number of sequential accesses across all
	// lists (paper: rows scanned until termination).
	SortedAccesses int
	// RandomAccesses is the number of by-id score look-ups.
	RandomAccesses int
	// Candidates is the number of distinct instances seen during scanning —
	// exactly the instances whose partial distances must be encrypted and
	// communicated in VFPS-SM.
	Candidates int
	// Rounds is the number of mini-batch rounds until termination.
	Rounds int
	// ScanDepth is the per-list number of rows scanned.
	ScanDepth int
}

// Result is the outcome of a top-k query.
type Result struct {
	// TopK holds the ids of the k smallest-aggregate instances in ascending
	// aggregate order (ties by id).
	TopK []int
	// CandidateIDs are the distinct instances examined (TopK ⊆ CandidateIDs).
	CandidateIDs []int
	Stats        Stats
}

func validate(lists []*RankedList, k int) (n int, err error) {
	if len(lists) == 0 {
		return 0, fmt.Errorf("topk: no lists")
	}
	n = lists[0].Len()
	for i, l := range lists {
		if l.Len() != n {
			return 0, fmt.Errorf("topk: list %d has %d items, want %d", i, l.Len(), n)
		}
	}
	if k <= 0 {
		return 0, fmt.Errorf("topk: k=%d must be positive", k)
	}
	if k > n {
		return 0, fmt.Errorf("topk: k=%d exceeds %d instances", k, n)
	}
	return n, nil
}

// kSmallestByAggregate aggregates candidates across lists and returns the k
// ids with smallest sums (ascending, ties by id), along with the number of
// random accesses charged.
func kSmallestByAggregate(lists []*RankedList, cand []int, k int) ([]int, int) {
	type agg struct {
		id  int
		sum float64
	}
	sums := make([]agg, len(cand))
	ra := 0
	for i, id := range cand {
		var s float64
		for _, l := range lists {
			s += l.Score(id)
			ra++
		}
		sums[i] = agg{id: id, sum: s}
	}
	sort.Slice(sums, func(i, j int) bool {
		if sums[i].sum != sums[j].sum {
			return sums[i].sum < sums[j].sum
		}
		return sums[i].id < sums[j].id
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = sums[i].id
	}
	return out, ra
}

// Fagin runs Fagin's algorithm with mini-batched sequential access: each
// round scans the next `batch` rows of every list in parallel (paper Step
// ①–②), stopping once at least k ids have been seen in *all* lists, then
// aggregates every seen id (Step ③) and returns the minimal-k.
func Fagin(lists []*RankedList, k, batch int) (*Result, error) {
	n, err := validate(lists, k)
	if err != nil {
		return nil, err
	}
	if batch <= 0 {
		return nil, fmt.Errorf("topk: batch=%d must be positive", batch)
	}
	p := len(lists)
	seenCount := make(map[int]int, 4*k)
	seenOrder := make([]int, 0, 4*k)
	fullySeen := 0
	depth := 0
	rounds := 0
	var stats Stats
	for fullySeen < k && depth < n {
		rounds++
		end := depth + batch
		if end > n {
			end = n
		}
		for _, l := range lists {
			for r := depth; r < end; r++ {
				id := l.At(r).ID
				stats.SortedAccesses++
				c := seenCount[id]
				if c == 0 {
					seenOrder = append(seenOrder, id)
				}
				seenCount[id] = c + 1
				if c+1 == p {
					fullySeen++
				}
			}
		}
		depth = end
	}
	cand := make([]int, len(seenOrder))
	copy(cand, seenOrder)
	sort.Ints(cand)
	topk, ra := kSmallestByAggregate(lists, cand, k)
	stats.RandomAccesses = ra
	stats.Candidates = len(cand)
	stats.Rounds = rounds
	stats.ScanDepth = depth
	return &Result{TopK: topk, CandidateIDs: cand, Stats: stats}, nil
}

// Threshold runs the Threshold Algorithm (TA): depth-synchronised sorted
// access with immediate random access for each newly seen id, maintaining
// the threshold τ (the aggregate of the current scan frontier) and stopping
// as soon as k seen instances have aggregate ≤ τ.
func Threshold(lists []*RankedList, k int) (*Result, error) {
	n, err := validate(lists, k)
	if err != nil {
		return nil, err
	}
	type agg struct {
		id  int
		sum float64
	}
	seen := make(map[int]float64, 4*k)
	order := make([]int, 0, 4*k)
	var stats Stats
	best := make([]agg, 0, 4*k) // kept sorted ascending by (sum, id)
	insert := func(a agg) {
		i := sort.Search(len(best), func(i int) bool {
			if best[i].sum != a.sum {
				return best[i].sum > a.sum
			}
			return best[i].id > a.id
		})
		best = append(best, agg{})
		copy(best[i+1:], best[i:])
		best[i] = a
	}
	depth := 0
	for depth < n {
		var tau float64
		for _, l := range lists {
			it := l.At(depth)
			stats.SortedAccesses++
			tau += it.Score
			if _, ok := seen[it.ID]; !ok {
				var s float64
				for _, l2 := range lists {
					s += l2.Score(it.ID)
					stats.RandomAccesses++
				}
				seen[it.ID] = s
				order = append(order, it.ID)
				insert(agg{id: it.ID, sum: s})
			}
		}
		depth++
		stats.Rounds++
		if len(best) >= k && best[k-1].sum <= tau {
			break
		}
	}
	cand := make([]int, len(order))
	copy(cand, order)
	sort.Ints(cand)
	topk := make([]int, k)
	for i := 0; i < k; i++ {
		topk[i] = best[i].id
	}
	stats.Candidates = len(cand)
	stats.ScanDepth = depth
	return &Result{TopK: topk, CandidateIDs: cand, Stats: stats}, nil
}

// Naive aggregates every instance across all lists and sorts — the
// correctness oracle and the access pattern of VFPS-SM-BASE, which must
// encrypt and transmit all N partial distances.
func Naive(lists []*RankedList, k int) (*Result, error) {
	n, err := validate(lists, k)
	if err != nil {
		return nil, err
	}
	cand := make([]int, n)
	for i := range cand {
		cand[i] = i
	}
	topk, ra := kSmallestByAggregate(lists, cand, k)
	return &Result{
		TopK:         topk,
		CandidateIDs: cand,
		Stats: Stats{
			SortedAccesses: 0,
			RandomAccesses: ra,
			Candidates:     n,
			Rounds:         1,
			ScanDepth:      n,
		},
	}, nil
}

// KSmallest returns the indices of the k smallest values in ascending value
// order (ties by index). It is the single-list special case used by the
// leader after decrypting complete distances.
func KSmallest(values []float64, k int) []int {
	if k > len(values) {
		k = len(values)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if values[i] != values[j] {
			return values[i] < values[j]
		}
		return i < j
	})
	out := make([]int, k)
	copy(out, idx[:k])
	return out
}
