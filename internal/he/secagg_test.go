package he

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func secAggParties(t *testing.T, p int, seed int64) []*SecAgg {
	t.Helper()
	out := make([]*SecAgg, p)
	for i := range out {
		s, err := NewSecAgg(i, p, seed)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

// aggregate sums every party's masked contribution for one item and decodes.
func aggregate(t *testing.T, parties []*SecAgg, domain byte, query, key int, values []float64) float64 {
	t.Helper()
	var acc []byte
	for i, s := range parties {
		c, err := s.EncryptAt(domain, query, key, values[i])
		if err != nil {
			t.Fatal(err)
		}
		if acc == nil {
			acc = c
			continue
		}
		sum, err := s.Add(acc, c)
		if err != nil {
			t.Fatal(err)
		}
		acc = sum
	}
	v, err := parties[0].Decrypt(acc)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSecAggMasksCancel(t *testing.T) {
	parties := secAggParties(t, 4, 42)
	values := []float64{1.5, -2.25, 10.125, 0.0009765625}
	var want float64
	for _, v := range values {
		want += v
	}
	got := aggregate(t, parties, DomainItem, 7, 123, values)
	if math.Abs(got-want) > 1e-5 {
		t.Fatalf("aggregate %g, want %g", got, want)
	}
}

func TestSecAggPartialAggregateIsMasked(t *testing.T) {
	// Summing fewer than P contributions must NOT reveal the partial sum:
	// the residual mask makes the decode garbage with overwhelming
	// probability.
	parties := secAggParties(t, 3, 1)
	a, _ := parties[0].EncryptAt(DomainItem, 0, 5, 1.0)
	b, _ := parties[1].EncryptAt(DomainItem, 0, 5, 2.0)
	sum, _ := parties[0].Add(a, b)
	v, err := parties[0].Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-3.0) < 1e-3 {
		t.Fatalf("partial aggregate leaked the true sum: %g", v)
	}
}

func TestSecAggSingleCiphertextLooksRandom(t *testing.T) {
	// One participant's masked value must differ wildly from the plaintext.
	parties := secAggParties(t, 2, 9)
	c, err := parties[0].EncryptAt(DomainItem, 1, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := parties[0].Decrypt(c)
	if math.Abs(v-0.5) < 1e-3 {
		t.Fatalf("mask failed to blind the value: decoded %g", v)
	}
}

func TestSecAggDomainsAndKeysSeparateMasks(t *testing.T) {
	parties := secAggParties(t, 2, 3)
	c1, _ := parties[0].EncryptAt(DomainItem, 0, 1, 0)
	c2, _ := parties[0].EncryptAt(DomainItem, 0, 2, 0)
	c3, _ := parties[0].EncryptAt(DomainRank, 0, 1, 0)
	c4, _ := parties[0].EncryptAt(DomainItem, 1, 1, 0)
	w1 := binary.BigEndian.Uint64(c1)
	if w1 == binary.BigEndian.Uint64(c2) ||
		w1 == binary.BigEndian.Uint64(c3) ||
		w1 == binary.BigEndian.Uint64(c4) {
		t.Fatal("masks must differ across keys, domains and queries")
	}
}

func TestSecAggContextFreeEncryptRejected(t *testing.T) {
	parties := secAggParties(t, 2, 1)
	if _, err := parties[0].Encrypt(1.0); !errors.Is(err, ErrNeedsContext) {
		t.Fatalf("want ErrNeedsContext, got %v", err)
	}
}

func TestSecAggUnboundRoleCannotEncrypt(t *testing.T) {
	tmpl, err := NewSecAgg(-1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmpl.EncryptAt(DomainItem, 0, 0, 1.0); err == nil {
		t.Fatal("unbound template must not encrypt")
	}
	bound, err := tmpl.WithIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bound.EncryptAt(DomainItem, 0, 0, 1.0); err != nil {
		t.Fatalf("bound scheme should encrypt: %v", err)
	}
}

func TestSecAggValidation(t *testing.T) {
	if _, err := NewSecAgg(0, 1, 1); err == nil {
		t.Fatal("expected parties<2 error")
	}
	if _, err := NewSecAgg(5, 3, 1); err == nil {
		t.Fatal("expected index range error")
	}
	s, _ := NewSecAgg(0, 2, 1)
	if _, err := s.EncryptAt(DomainItem, 0, 0, math.NaN()); err == nil {
		t.Fatal("expected NaN error")
	}
	if _, err := s.EncryptAt(DomainItem, 0, 0, 1e18); err == nil {
		t.Fatal("expected overflow error")
	}
	if _, err := s.Decrypt([]byte{1}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := s.Add([]byte{1}, []byte{2}); err == nil {
		t.Fatal("expected add length error")
	}
	if s.CiphertextSize() != 8 || s.Name() != "secagg" {
		t.Fatal("metadata wrong")
	}
}

// Property: for random party counts, values, and items, the full aggregate
// always decodes to the true sum within fixed-point resolution.
func TestSecAggCancellationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(6)
		parties := make([]*SecAgg, p)
		for i := range parties {
			s, err := NewSecAgg(i, p, seed)
			if err != nil {
				return false
			}
			parties[i] = s
		}
		query := rng.Intn(1000)
		key := rng.Intn(1000)
		values := make([]float64, p)
		var want float64
		for i := range values {
			values[i] = rng.NormFloat64() * 100
			want += values[i]
		}
		var acc []byte
		for i, s := range parties {
			c, err := s.EncryptAt(DomainItem, query, key, values[i])
			if err != nil {
				return false
			}
			if acc == nil {
				acc = c
				continue
			}
			acc, err = s.Add(acc, c)
			if err != nil {
				return false
			}
		}
		got, err := parties[0].Decrypt(acc)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
