package he

import (
	"context"
	"math/big"
	"time"

	"vfps/internal/paillier"
	"vfps/internal/par"
)

// VecScheme is implemented by schemes with an optimized vector fast path
// (worker-pool parallelism, pooled randomizers). Callers should go through
// the package-level EncryptVec/DecryptVec helpers, which fall back to a
// serial loop for plain Scheme implementations.
type VecScheme interface {
	Scheme
	// EncryptVec encrypts a vector of real values, polling ctx between
	// chunks.
	EncryptVec(ctx context.Context, vs []float64) ([][]byte, error)
	// DecryptVec recovers a vector of (possibly aggregated) real values.
	DecryptVec(ctx context.Context, cs [][]byte) ([]float64, error)
}

// vecChunk is the ctx poll interval of the serial fallback loops.
const vecChunk = 16

// EncryptVec encrypts vs under s, using the scheme's vector fast path when
// it has one and a serial loop otherwise. The fallback stays serial on
// purpose: schemes whose output depends on call order (the DP noise stream)
// must see the exact sequence a serial protocol run would produce.
func EncryptVec(ctx context.Context, s Scheme, vs []float64) ([][]byte, error) {
	if v, ok := s.(VecScheme); ok {
		return v.EncryptVec(ctx, vs)
	}
	out := make([][]byte, len(vs))
	for i, x := range vs {
		if i%vecChunk == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		c, err := s.Encrypt(x)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// DecryptVec decrypts cs under s, using the scheme's vector fast path when
// it has one and a serial loop otherwise.
func DecryptVec(ctx context.Context, s Scheme, cs [][]byte) ([]float64, error) {
	if v, ok := s.(VecScheme); ok {
		return v.DecryptVec(ctx, cs)
	}
	out := make([]float64, len(cs))
	for i, c := range cs {
		if i%vecChunk == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		v, err := s.Decrypt(c)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ---- Paillier vector fast path ----

// SetParallelism pins the worker count of the scheme's vector operations:
// 1 restores fully serial execution (the determinism baseline), values <= 0
// restore the default (VFPS_PARALLELISM or GOMAXPROCS).
func (p *Paillier) SetParallelism(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 0 {
		n = 0
	}
	p.parallelism = n
}

// Parallelism reports the effective worker count for vector operations.
func (p *Paillier) Parallelism() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return par.Normalize(p.parallelism)
}

// SetMont selects the modular-arithmetic backend for this scheme's key
// material: 0 follows the process default (the Montgomery kernel, unless
// VFPS_MONT=0), positive forces the kernel, negative forces pure math/big.
// Both backends compute identical residues; the stdlib path exists for
// auditability. Set it before starting pools or sending traffic — tables
// built under one backend keep that representation for their lifetime.
func (p *Paillier) SetMont(m int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pk.Mont = m
	if p.sk != nil {
		p.sk.Mont = m
	}
}

// Mont reports the configured modular-arithmetic backend knob.
func (p *Paillier) Mont() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pk.Mont
}

// SetEncryptWindow pins the fixed-base window width used when this scheme
// starts its own randomizer pool: 0 keeps paillier.DefaultWindow, negative
// restores classic uniform-r sampling (full modexp per randomizer). It has
// no effect on an already-running or attached pool.
func (p *Paillier) SetEncryptWindow(w int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.window = w
}

// EncryptWindow reports the configured fixed-base window width.
func (p *Paillier) EncryptWindow() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.window
}

// StartRandomizerPool starts background precomputation of encryption
// randomizers (r^n mod n²) so subsequent encryptions hit the two-mulmod fast
// path. buffer bounds the pool (<= 0 → 64); workers is the number of filler
// goroutines (<= 0 → 1). Production uses fixed-base windowing per
// SetEncryptWindow and, on a key-holding scheme, the CRT half-width path.
// Calling it again is a no-op. Close releases the pool's goroutines.
func (p *Paillier) StartRandomizerPool(buffer, workers int) {
	p.mu.Lock()
	if p.rz != nil {
		p.mu.Unlock()
		return
	}
	p.rz = paillier.NewRandomizerOpts(p.pk, p.random, paillier.PoolOptions{
		Buffer:  buffer,
		Workers: workers,
		Window:  p.window,
		Key:     p.sk,
	})
	p.ownPool = true
	p.mu.Unlock()
	p.syncPoolObs()
}

// AttachPool points the scheme at a shared cluster-lifetime pool from ps
// (created on first use for this scheme's key). The pool is owned by the
// set — Close on this scheme leaves it running for the other sharers. A
// no-op when a pool is already running or the set is closed.
func (p *Paillier) AttachPool(ps *PoolSet) {
	if ps == nil {
		return
	}
	p.mu.Lock()
	if p.rz != nil {
		p.mu.Unlock()
		return
	}
	rz := ps.For(p.pk, p.random, p.sk)
	if rz == nil {
		p.mu.Unlock()
		return
	}
	p.rz = rz
	p.ownPool = false
	p.mu.Unlock()
	p.syncPoolObs()
}

// RefillHint implements Refiller: it asynchronously prefills up to n pooled
// randomizers, bounded by spare buffer capacity. Protocol roles call it at
// the end of an encryption burst so the idle gap until the next round fills
// the pool instead of the next burst's first encryptions missing it. At most
// one hint runs at a time; extras are dropped (the running one is already
// filling toward capacity).
func (p *Paillier) RefillHint(n int) {
	rz := p.pool()
	if rz == nil || rz.Closed() || n <= 0 {
		return
	}
	if !p.hinting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer p.hinting.Store(false)
		_, _ = rz.Prefill(n)
	}()
}

// PrefillRandomizers synchronously computes up to n pooled randomizers (the
// pool must have been started); it returns how many were added.
func (p *Paillier) PrefillRandomizers(n int) (int, error) {
	rz := p.pool()
	if rz == nil {
		return 0, nil
	}
	return rz.Prefill(n)
}

// Close stops the randomizer pool if this scheme owns one; a pool attached
// from a shared PoolSet is only detached (its owner closes it). The scheme
// remains usable; encryption just computes randomizers inline again.
func (p *Paillier) Close() {
	p.mu.Lock()
	rz, own := p.rz, p.ownPool
	p.rz = nil
	p.ownPool = false
	p.mu.Unlock()
	if rz != nil && own {
		rz.Close()
	}
}

func (p *Paillier) pool() *paillier.Randomizer {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.rz
}

// EncryptVec implements VecScheme: fixed-point encoding (serial, cheap)
// followed by chunked worker-pool encryption drawing from the randomizer
// pool when one is running.
func (p *Paillier) EncryptVec(ctx context.Context, vs []float64) ([][]byte, error) {
	if om := p.om.Load(); om != nil {
		defer om.vec("encrypt", len(vs), time.Now())
	}
	ms := make([]*big.Int, len(vs))
	for i, v := range vs {
		m, err := p.codec.Encode(v)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	cs, err := p.pk.EncryptVec(ctx, p.random, p.pool(), ms, p.Parallelism())
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(cs))
	for i, c := range cs {
		out[i] = c.Bytes()
	}
	return out, nil
}

// parseAll decodes and validates a batch of serialised ciphertexts.
func (p *Paillier) parseAll(cs [][]byte) ([]*paillier.Ciphertext, error) {
	cts := make([]*paillier.Ciphertext, len(cs))
	for i, c := range cs {
		ct, err := p.pk.ParseCiphertext(c)
		if err != nil {
			return nil, err
		}
		cts[i] = ct
	}
	return cts, nil
}

// DecryptVec implements VecScheme with a chunked worker pool.
func (p *Paillier) DecryptVec(ctx context.Context, cs [][]byte) ([]float64, error) {
	if p.sk == nil {
		return nil, ErrNoPrivateKey
	}
	if om := p.om.Load(); om != nil {
		start := time.Now()
		defer func() {
			om.vec("decrypt", len(cs), start)
			om.dec(p.sk.HasCRT(), start)
		}()
	}
	cts, err := p.parseAll(cs)
	if err != nil {
		return nil, err
	}
	ms, err := p.sk.DecryptVec(ctx, cts, p.Parallelism())
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = p.codec.Decode(m)
	}
	return out, nil
}
