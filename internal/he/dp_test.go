package he

import (
	"math"
	"testing"
)

func TestDPValidation(t *testing.T) {
	if _, err := NewDP(0, 1e-5, 1); err == nil {
		t.Fatal("expected epsilon error")
	}
	if _, err := NewDP(-1, 1e-5, 1); err == nil {
		t.Fatal("expected negative epsilon error")
	}
	if _, err := NewDP(1, 0, 1); err == nil {
		t.Fatal("expected delta error")
	}
	if _, err := NewDP(1, 1.5, 1); err == nil {
		t.Fatal("expected delta range error")
	}
}

func TestDPSigmaScalesInverselyWithEpsilon(t *testing.T) {
	weak, _ := NewDP(10, 1e-5, 1)
	strong, _ := NewDP(0.1, 1e-5, 1)
	if strong.Sigma() <= weak.Sigma() {
		t.Fatalf("stronger privacy must mean more noise: σ(0.1)=%g σ(10)=%g",
			strong.Sigma(), weak.Sigma())
	}
	if ratio := strong.Sigma() / weak.Sigma(); math.Abs(ratio-100) > 1e-9 {
		t.Fatalf("σ should scale as 1/ε: ratio %g", ratio)
	}
}

func TestDPNoiseIsUnbiasedAndCalibrated(t *testing.T) {
	d, _ := NewDP(1, 1e-5, 42)
	const n = 20000
	const truth = 5.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		c, err := d.Encrypt(truth)
		if err != nil {
			t.Fatal(err)
		}
		v, err := d.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
		sumSq += (v - truth) * (v - truth)
	}
	mean := sum / n
	std := math.Sqrt(sumSq / n)
	if math.Abs(mean-truth) > 0.3 {
		t.Fatalf("noise is biased: mean %g", mean)
	}
	if math.Abs(std-d.Sigma()) > 0.25*d.Sigma() {
		t.Fatalf("empirical σ %g vs calibrated %g", std, d.Sigma())
	}
}

func TestDPSchemeOperations(t *testing.T) {
	d, _ := NewDP(100, 1e-5, 1) // huge epsilon: near-zero noise
	a, err := d.Encrypt(1.5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.Encrypt(2.5)
	sum, err := d.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-4.0) > 1.0 {
		t.Fatalf("sum %g too far from 4 even at ε=100", v)
	}
	if d.Name() != "dp" || d.CiphertextSize() != 8 {
		t.Fatal("metadata wrong")
	}
	if _, err := d.Encrypt(math.NaN()); err == nil {
		t.Fatal("expected NaN error")
	}
}

func TestDPWithIndexIndependentStreams(t *testing.T) {
	tmpl, _ := NewDP(1, 1e-5, 7)
	a, err := tmpl.WithIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := tmpl.WithIndex(1)
	ca, _ := a.Encrypt(0)
	cb, _ := b.Encrypt(0)
	va, _ := a.Decrypt(ca)
	vb, _ := b.Decrypt(cb)
	if va == vb {
		t.Fatal("participants must have independent noise streams")
	}
	// Same index, same draw order: reproducible.
	a2, _ := tmpl.WithIndex(0)
	ca2, _ := a2.Encrypt(0)
	va2, _ := a2.Decrypt(ca2)
	if va != va2 {
		t.Fatal("noise stream not reproducible from seed")
	}
}
