package he

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"time"

	"vfps/internal/fixed"
)

// DefaultPackIntBits bounds the integer part of each packed value: slots hold
// |v| < 2^(scaleBits+DefaultPackIntBits) in fixed point, i.e. real values up
// to ~16.7M with the default 40-bit scale — orders of magnitude above any
// squared partial distance the protocol aggregates.
const DefaultPackIntBits = 24

// ErrPackingOff reports a packed-path call on a scheme where EnablePacking
// was never called (or was undone by DisablePacking).
var ErrPackingOff = errors.New("he: packing not enabled")

// EnablePacking derives the slot-packing geometry for this scheme's key and
// installs it: EncryptPacked will lay PackFactor fixed-point values side by
// side in each plaintext, with enough per-slot headroom that up to maxAdds
// packed ciphertexts can be summed homomorphically without slot overflow
// (maxAdds is the party count in the VFPS-SM aggregation tree).
//
// The geometry uses modulusBits−2 plaintext bits, which keeps every packed
// plaintext — and every sum of up to maxAdds of them — strictly below n/2,
// inside the positive half of the signed embedding. It fails when the key is
// too small to hold even one slot; keys that fit only one slot are accepted
// (PackFactor 1), callers can check PackFactor to skip the pointless packed
// path.
func (p *Paillier) EnablePacking(maxAdds int) error {
	valueBits := p.codec.ScaleBits() + DefaultPackIntBits
	usable := uint(p.pk.N.BitLen() - 2)
	packer, err := fixed.NewPacker(usable, valueBits, maxAdds)
	if err != nil {
		return fmt.Errorf("he: enabling packing: %w", err)
	}
	p.mu.Lock()
	p.packer = packer
	p.mu.Unlock()
	return nil
}

// DisablePacking removes the packing geometry; packed calls fail again with
// ErrPackingOff.
func (p *Paillier) DisablePacking() {
	p.mu.Lock()
	p.packer = nil
	p.mu.Unlock()
}

// PackFactor reports how many values ride in one ciphertext: S after
// EnablePacking, 1 otherwise.
func (p *Paillier) PackFactor() int {
	if packer := p.packing(); packer != nil {
		return packer.Slots()
	}
	return 1
}

// MaxPackAdds reports the addition budget the packing headroom covers, 0 when
// packing is off.
func (p *Paillier) MaxPackAdds() int {
	if packer := p.packing(); packer != nil {
		return packer.MaxAdds()
	}
	return 0
}

// PackedCiphertexts returns how many ciphertexts carry n packed values:
// ceil(n / PackFactor).
func (p *Paillier) PackedCiphertexts(n int) int {
	s := p.PackFactor()
	return (n + s - 1) / s
}

func (p *Paillier) packing() *fixed.Packer {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.packer
}

// EncryptPacked encrypts vs into ceil(len(vs)/PackFactor) ciphertexts,
// PackFactor values per plaintext (the last one partially filled). It shares
// the scalar path's randomizer pool and worker-pool parallelism; only the
// exponentiation count shrinks. The ciphertext sequence is aggregation-
// compatible slot by slot: summing the i-th packed ciphertext of several
// parties and decrypting with DecryptPacked yields the per-slot sums.
func (p *Paillier) EncryptPacked(ctx context.Context, vs []float64) ([][]byte, error) {
	packer := p.packing()
	if packer == nil {
		return nil, ErrPackingOff
	}
	if om := p.om.Load(); om != nil {
		defer om.vec("encrypt_packed", len(vs), time.Now())
	}
	s := packer.Slots()
	ms := make([]*big.Int, 0, (len(vs)+s-1)/s)
	slots := make([]*big.Int, 0, s)
	for lo := 0; lo < len(vs); lo += s {
		slots = slots[:0]
		for _, v := range vs[lo:min(lo+s, len(vs))] {
			m, err := p.codec.Encode(v)
			if err != nil {
				return nil, err
			}
			slots = append(slots, m)
		}
		m, err := packer.Pack(slots)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	cs, err := p.pk.EncryptVec(ctx, p.random, p.pool(), ms, p.Parallelism())
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(cs))
	for i, c := range cs {
		out[i] = c.Bytes()
	}
	return out, nil
}

// DecryptPacked recovers count real values from packed ciphertexts that are
// each the homomorphic sum of adds EncryptPacked outputs (adds == 1 for
// never-summed ciphertexts). adds must not exceed the headroom budget passed
// to EnablePacking. len(cs) must equal PackedCiphertexts(count).
func (p *Paillier) DecryptPacked(ctx context.Context, cs [][]byte, count, adds int) ([]float64, error) {
	if p.sk == nil {
		return nil, ErrNoPrivateKey
	}
	packer := p.packing()
	if packer == nil {
		return nil, ErrPackingOff
	}
	if count < 0 || len(cs) != p.PackedCiphertexts(count) {
		return nil, fmt.Errorf("he: %d packed ciphertexts cannot hold %d values (want %d)",
			len(cs), count, p.PackedCiphertexts(count))
	}
	if om := p.om.Load(); om != nil {
		start := time.Now()
		defer func() {
			om.vec("decrypt_packed", count, start)
			om.dec(p.sk.HasCRT(), start)
		}()
	}
	cts, err := p.parseAll(cs)
	if err != nil {
		return nil, err
	}
	ms, err := p.sk.DecryptVec(ctx, cts, p.Parallelism())
	if err != nil {
		return nil, err
	}
	s := packer.Slots()
	out := make([]float64, 0, count)
	for i, m := range ms {
		n := min(s, count-i*s)
		vals, err := packer.Unpack(m, n, adds)
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			out = append(out, p.codec.Decode(v))
		}
	}
	return out, nil
}
