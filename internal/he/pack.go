package he

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"time"

	"vfps/internal/fixed"
	"vfps/internal/paillier"
)

// DefaultPackIntBits bounds the integer part of each packed value: slots hold
// |v| < 2^(scaleBits+DefaultPackIntBits) in fixed point, i.e. real values up
// to ~16.7M with the default 40-bit scale — orders of magnitude above any
// squared partial distance the protocol aggregates.
const DefaultPackIntBits = 24

// ErrPackingOff reports a packed-path call on a scheme where EnablePacking
// was never called (or was undone by DisablePacking).
var ErrPackingOff = errors.New("he: packing not enabled")

// packerKey indexes the adaptive-geometry cache: one immutable Packer per
// (magnitude bound, addition budget) pair negotiated on the wire.
type packerKey struct {
	bits uint
	adds int
}

// packerCacheLimit bounds the adaptive-geometry cache. Negotiated widths are
// monotone in practice, so the cache holds a handful of entries; the bound
// only guards against a peer cycling geometries to grow it.
const packerCacheLimit = 64

// EnablePacking derives the slot-packing geometry for this scheme's key and
// installs it: EncryptPacked will lay PackFactor fixed-point values side by
// side in each plaintext, with enough per-slot headroom that up to maxAdds
// packed ciphertexts can be summed homomorphically without slot overflow
// (maxAdds is the party count in the VFPS-SM aggregation tree).
//
// The geometry uses the key's PlaintextHeadroomBits, which keeps every packed
// plaintext — and every sum of up to maxAdds of them — strictly below n/2,
// inside the positive half of the signed embedding. It fails when the key is
// too small to hold even one slot; keys that fit only one slot are accepted
// (PackFactor 1), callers can check PackFactor to skip the pointless packed
// path.
func (p *Paillier) EnablePacking(maxAdds int) error {
	valueBits := p.codec.ScaleBits() + DefaultPackIntBits
	packer, err := fixed.NewPacker(p.pk.PlaintextHeadroomBits(), valueBits, maxAdds)
	if err != nil {
		return fmt.Errorf("he: enabling packing: %w", err)
	}
	p.mu.Lock()
	p.packer = packer
	p.mu.Unlock()
	return nil
}

// DisablePacking removes the packing geometry; packed calls fail again with
// ErrPackingOff.
func (p *Paillier) DisablePacking() {
	p.mu.Lock()
	p.packer = nil
	p.packers = nil
	p.mu.Unlock()
}

// PackFactor reports how many values ride in one ciphertext: S after
// EnablePacking, 1 otherwise.
func (p *Paillier) PackFactor() int {
	if packer := p.packing(); packer != nil {
		return packer.Slots()
	}
	return 1
}

// MaxPackAdds reports the addition budget the packing headroom covers, 0 when
// packing is off.
func (p *Paillier) MaxPackAdds() int {
	if packer := p.packing(); packer != nil {
		return packer.MaxAdds()
	}
	return 0
}

// PackedCiphertexts returns how many ciphertexts carry n packed values:
// ceil(n / PackFactor).
func (p *Paillier) PackedCiphertexts(n int) int {
	s := p.PackFactor()
	return (n + s - 1) / s
}

func (p *Paillier) packing() *fixed.Packer {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.packer
}

// Packer returns the static geometry installed by EnablePacking (nil when
// packing is off), for callers that mix static and PackerFor geometries
// through EncryptPackedWith/DecryptPackedWith.
func (p *Paillier) Packer() *fixed.Packer { return p.packing() }

// PackerFor returns the packing geometry for an adaptively negotiated slot
// width: valueBits bounds each value's magnitude, adds is the aggregation
// depth the headroom must cover. Geometries are cached per (valueBits, adds).
// Packing must be enabled; an impossible geometry — a non-positive depth, or
// a slot too wide for the key's plaintext headroom — surfaces the typed
// fixed.ErrPackAdds / fixed.ErrPackShape errors, which is the hard backstop
// against a peer advertising a depth the key cannot honour.
func (p *Paillier) PackerFor(valueBits uint, adds int) (*fixed.Packer, error) {
	if p.packing() == nil {
		return nil, ErrPackingOff
	}
	key := packerKey{bits: valueBits, adds: adds}
	p.mu.RLock()
	cached := p.packers[key]
	p.mu.RUnlock()
	if cached != nil {
		return cached, nil
	}
	packer, err := fixed.NewPacker(p.pk.PlaintextHeadroomBits(), valueBits, adds)
	if err != nil {
		return nil, fmt.Errorf("he: adaptive packing geometry (V=%d, adds=%d): %w", valueBits, adds, err)
	}
	p.mu.Lock()
	if p.packers == nil || len(p.packers) >= packerCacheLimit {
		p.packers = make(map[packerKey]*fixed.Packer)
	}
	p.packers[key] = packer
	p.mu.Unlock()
	return packer, nil
}

// NeededPackBits reports the smallest per-slot magnitude bound, in bits, that
// admits every value of vs under this scheme's fixed-point encoding (floor 1
// so an all-zero vector still yields a valid geometry). Parties advertise
// this bound during adaptive pack negotiation; the aggregator dictates the
// densest safe slot width from the observed maximum.
func (p *Paillier) NeededPackBits(vs []float64) (uint, error) {
	ms := make([]*big.Int, len(vs))
	for i, v := range vs {
		m, err := p.codec.Encode(v)
		if err != nil {
			return 0, err
		}
		ms[i] = m
	}
	return fixed.NeededBits(ms), nil
}

// EncryptPacked encrypts vs into ceil(len(vs)/PackFactor) ciphertexts,
// PackFactor values per plaintext (the last one partially filled). It shares
// the scalar path's randomizer pool and worker-pool parallelism; only the
// exponentiation count shrinks. The ciphertext sequence is aggregation-
// compatible slot by slot: summing the i-th packed ciphertext of several
// parties and decrypting with DecryptPacked yields the per-slot sums.
func (p *Paillier) EncryptPacked(ctx context.Context, vs []float64) ([][]byte, error) {
	packer := p.packing()
	if packer == nil {
		return nil, ErrPackingOff
	}
	return p.encryptPacked(ctx, packer, vs)
}

// EncryptPackedWith is EncryptPacked under an explicit geometry from
// PackerFor — the adaptive path, where the slot width was negotiated per
// round instead of fixed at EnablePacking time.
func (p *Paillier) EncryptPackedWith(ctx context.Context, packer *fixed.Packer, vs []float64) ([][]byte, error) {
	if packer == nil {
		return nil, ErrPackingOff
	}
	return p.encryptPacked(ctx, packer, vs)
}

func (p *Paillier) encryptPacked(ctx context.Context, packer *fixed.Packer, vs []float64) ([][]byte, error) {
	if om := p.om.Load(); om != nil {
		om.slots(packer.Slots())
		defer om.vec("encrypt_packed", len(vs), time.Now())
	}
	s := packer.Slots()
	ms := make([]*big.Int, 0, (len(vs)+s-1)/s)
	slots := make([]*big.Int, 0, s)
	for lo := 0; lo < len(vs); lo += s {
		slots = slots[:0]
		for _, v := range vs[lo:min(lo+s, len(vs))] {
			m, err := p.codec.Encode(v)
			if err != nil {
				return nil, err
			}
			slots = append(slots, m)
		}
		m, err := packer.Pack(slots)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	cs, err := p.pk.EncryptVec(ctx, p.random, p.pool(), ms, p.Parallelism())
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(cs))
	for i, c := range cs {
		out[i] = c.Bytes()
	}
	return out, nil
}

// DecryptPacked recovers count real values from packed ciphertexts that are
// each the homomorphic sum of adds EncryptPacked outputs (adds == 1 for
// never-summed ciphertexts). adds must not exceed the headroom budget passed
// to EnablePacking. len(cs) must equal PackedCiphertexts(count).
func (p *Paillier) DecryptPacked(ctx context.Context, cs [][]byte, count, adds int) ([]float64, error) {
	packer := p.packing()
	if packer == nil {
		return nil, ErrPackingOff
	}
	return p.DecryptPackedWith(ctx, cs, count, packer, adds)
}

// DecryptPackedWith is DecryptPacked under an explicit geometry from
// PackerFor, for vectors packed with an adaptively negotiated slot width.
func (p *Paillier) DecryptPackedWith(ctx context.Context, cs [][]byte, count int, packer *fixed.Packer, adds int) ([]float64, error) {
	if p.sk == nil {
		return nil, ErrNoPrivateKey
	}
	if packer == nil {
		return nil, ErrPackingOff
	}
	s := packer.Slots()
	if count < 0 || len(cs) != (count+s-1)/s {
		return nil, fmt.Errorf("he: %d packed ciphertexts cannot hold %d values (want %d)",
			len(cs), count, (count+s-1)/s)
	}
	if om := p.om.Load(); om != nil {
		om.slots(s)
		start := time.Now()
		defer func() {
			om.vec("decrypt_packed", count, start)
			om.dec(p.sk.HasCRT(), start)
		}()
	}
	cts, err := p.parseAll(cs)
	if err != nil {
		return nil, err
	}
	ms, err := p.sk.DecryptVec(ctx, cts, p.Parallelism())
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, count)
	for i, m := range ms {
		n := min(s, count-i*s)
		vals, err := packer.Unpack(m, n, adds)
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			out = append(out, p.codec.Decode(v))
		}
	}
	return out, nil
}

// DecryptPackedChunks decrypts a chunk-framed packed vector with parse and
// decrypt overlapped: a producer goroutine parses and validates chunk k+1
// while the worker pool (the same internal/par workers DecryptVec uses)
// decrypts chunk k, so wire chunks flow into decryption without a
// whole-payload barrier. packer selects the slot geometry (nil → the
// EnablePacking geometry) and adds the accumulated aggregation depth, exactly
// as DecryptPacked; the result is bit-identical to decrypting the flattened
// vector in one call.
func (p *Paillier) DecryptPackedChunks(ctx context.Context, chunks [][][]byte, count int, packer *fixed.Packer, adds int) ([]float64, error) {
	if p.sk == nil {
		return nil, ErrNoPrivateKey
	}
	if packer == nil {
		if packer = p.packing(); packer == nil {
			return nil, ErrPackingOff
		}
	}
	s := packer.Slots()
	total := 0
	for _, chunk := range chunks {
		total += len(chunk)
	}
	if count < 0 || total != (count+s-1)/s {
		return nil, fmt.Errorf("he: %d packed ciphertexts in %d chunks cannot hold %d values (want %d)",
			total, len(chunks), count, (count+s-1)/s)
	}
	if om := p.om.Load(); om != nil {
		om.slots(s)
		start := time.Now()
		defer func() {
			om.vec("decrypt_packed", count, start)
			om.dec(p.sk.HasCRT(), start)
		}()
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	parsed := make(chan []*paillier.Ciphertext, 2)
	perr := make(chan error, 1)
	go func() {
		defer close(parsed)
		for _, chunk := range chunks {
			cts, err := p.parseAll(chunk)
			if err != nil {
				perr <- err
				return
			}
			select {
			case parsed <- cts:
			case <-pctx.Done():
				return
			}
		}
	}()

	out := make([]float64, 0, count)
	blob := 0 // global ciphertext index across chunk boundaries
	for cts := range parsed {
		ms, err := p.sk.DecryptVec(ctx, cts, p.Parallelism())
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			n := min(s, count-blob*s)
			vals, err := packer.Unpack(m, n, adds)
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				out = append(out, p.codec.Decode(v))
			}
			blob++
		}
	}
	select {
	case err := <-perr:
		return nil, err
	default:
	}
	return out, nil
}
