package he

import (
	"context"
	"crypto/rand"
	"errors"
	"math"
	"testing"

	"vfps/internal/paillier"
)

func packedScheme(t *testing.T, bits, maxAdds int) *Paillier {
	t.Helper()
	sk, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPaillier(&sk.PublicKey, sk)
	if err := p.EnablePacking(maxAdds); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPackedRoundTrip checks EncryptPacked/DecryptPacked over lengths that
// exercise full, partial and single-chunk layouts.
func TestPackedRoundTrip(t *testing.T) {
	p := packedScheme(t, 512, 4)
	if p.PackFactor() < 2 {
		t.Fatalf("512-bit key should pack several slots, got %d", p.PackFactor())
	}
	ctx := context.Background()
	for _, n := range []int{1, p.PackFactor(), p.PackFactor() + 1, 3*p.PackFactor() - 1} {
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = float64(i)*1.5 - 3.25
		}
		cs, err := p.EncryptPacked(ctx, vs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(cs) != p.PackedCiphertexts(n) {
			t.Fatalf("n=%d: %d ciphertexts, want %d", n, len(cs), p.PackedCiphertexts(n))
		}
		got, err := p.DecryptPacked(ctx, cs, n, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range vs {
			if math.Abs(got[i]-vs[i]) > 1e-9 {
				t.Fatalf("n=%d slot %d: got %g want %g", n, i, got[i], vs[i])
			}
		}
	}
}

// TestPackedAggregation sums packed ciphertexts across simulated parties and
// checks per-slot sums match the scalar-path aggregate exactly.
func TestPackedAggregation(t *testing.T) {
	const parties = 4
	p := packedScheme(t, 512, parties)
	ctx := context.Background()
	n := 2*p.PackFactor() + 1
	want := make([]float64, n)
	var agg [][]byte
	for pt := 0; pt < parties; pt++ {
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = float64(pt+1)*0.5 + float64(i)
			if i%2 == 1 {
				vs[i] = -vs[i]
			}
			want[i] += vs[i]
		}
		cs, err := p.EncryptPacked(ctx, vs)
		if err != nil {
			t.Fatal(err)
		}
		if agg == nil {
			agg = cs
			continue
		}
		for i := range cs {
			sum, err := p.Add(agg[i], cs[i])
			if err != nil {
				t.Fatal(err)
			}
			agg[i] = sum
		}
	}
	got, err := p.DecryptPacked(ctx, agg, n, parties)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("slot %d: got %g want %g", i, got[i], want[i])
		}
	}
}

// TestPackedGuards covers the error surface: disabled packing, shape
// mismatches, headroom violations, and public-only decryption.
func TestPackedGuards(t *testing.T) {
	p := packedScheme(t, 512, 2)
	ctx := context.Background()
	vs := []float64{1, 2, 3}
	cs, err := p.EncryptPacked(ctx, vs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DecryptPacked(ctx, cs, len(vs), 3); err == nil {
		t.Fatal("adds beyond EnablePacking budget must fail")
	}
	if _, err := p.DecryptPacked(ctx, cs, len(vs)+2*p.PackFactor(), 1); err == nil {
		t.Fatal("ciphertext/count mismatch must fail")
	}
	pub := NewPaillier(p.pk, nil)
	if err := pub.EnablePacking(2); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.DecryptPacked(ctx, cs, len(vs), 1); !errors.Is(err, ErrNoPrivateKey) {
		t.Fatalf("public-only DecryptPacked: got %v, want ErrNoPrivateKey", err)
	}
	p.DisablePacking()
	if p.PackFactor() != 1 {
		t.Fatalf("PackFactor after disable = %d, want 1", p.PackFactor())
	}
	if _, err := p.EncryptPacked(ctx, vs); !errors.Is(err, ErrPackingOff) {
		t.Fatalf("EncryptPacked while off: got %v, want ErrPackingOff", err)
	}
	if _, err := p.DecryptPacked(ctx, cs, len(vs), 1); !errors.Is(err, ErrPackingOff) {
		t.Fatalf("DecryptPacked while off: got %v, want ErrPackingOff", err)
	}
	// Keys too small for even one slot refuse to enable.
	tiny, err := paillier.GenerateKey(rand.Reader, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewPaillier(&tiny.PublicKey, tiny).EnablePacking(2); err == nil {
		t.Fatal("64-bit key cannot hold a slot; EnablePacking must fail")
	}
}

// TestPackedMatchesScalarValues pins that the packed path decodes to exactly
// the same float64s as the scalar path — the bit-identical selection
// guarantee rests on this.
func TestPackedMatchesScalarValues(t *testing.T) {
	p := packedScheme(t, 512, 3)
	ctx := context.Background()
	vs := []float64{0.125, -17.75, 3.1415926535, 1e6, -0.0009765625, 42}
	scalarCs, err := p.EncryptVec(ctx, vs)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := p.DecryptVec(ctx, scalarCs)
	if err != nil {
		t.Fatal(err)
	}
	packedCs, err := p.EncryptPacked(ctx, vs)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := p.DecryptPacked(ctx, packedCs, len(vs), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scalar {
		if scalar[i] != packed[i] {
			t.Fatalf("value %d: scalar %v != packed %v", i, scalar[i], packed[i])
		}
	}
	if len(packedCs) >= len(scalarCs) {
		t.Fatalf("packing produced %d ciphertexts vs %d scalar — no reduction", len(packedCs), len(scalarCs))
	}
}
