package he

import (
	"crypto/rand"
	"errors"
	"math"
	"sync"
	"testing"

	"vfps/internal/paillier"
)

var (
	keyOnce sync.Once
	sk      *paillier.PrivateKey
)

func testKey(t testing.TB) *paillier.PrivateKey {
	keyOnce.Do(func() {
		k, err := paillier.GenerateKey(rand.Reader, 512)
		if err != nil {
			panic(err)
		}
		sk = k
	})
	return sk
}

func schemes(t testing.TB) map[string]Scheme {
	k := testKey(t)
	return map[string]Scheme{
		"paillier": NewPaillier(&k.PublicKey, k),
		"plain":    NewPlain(),
	}
}

func TestSchemeRoundTrip(t *testing.T) {
	for name, s := range schemes(t) {
		for _, v := range []float64{0, 1.5, -2.25, 12345.6789, 1e-6} {
			c, err := s.Encrypt(v)
			if err != nil {
				t.Fatalf("%s Encrypt(%g): %v", name, v, err)
			}
			got, err := s.Decrypt(c)
			if err != nil {
				t.Fatalf("%s Decrypt: %v", name, err)
			}
			if math.Abs(got-v) > 1e-9 {
				t.Fatalf("%s round trip %g -> %g", name, v, got)
			}
		}
	}
}

func TestSchemeAdd(t *testing.T) {
	for name, s := range schemes(t) {
		a, _ := s.Encrypt(1.25)
		b, _ := s.Encrypt(-0.75)
		c, err := s.Add(a, b)
		if err != nil {
			t.Fatalf("%s Add: %v", name, err)
		}
		got, err := s.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-0.5) > 1e-9 {
			t.Fatalf("%s add got %g", name, got)
		}
	}
}

func TestSchemeNames(t *testing.T) {
	k := testKey(t)
	if NewPaillier(&k.PublicKey, nil).Name() != "paillier" || NewPlain().Name() != "plain" {
		t.Fatal("scheme names wrong")
	}
}

func TestPaillierPublicOnly(t *testing.T) {
	k := testKey(t)
	pub := NewPaillier(&k.PublicKey, nil)
	c, err := pub.Encrypt(3.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Decrypt(c); !errors.Is(err, ErrNoPrivateKey) {
		t.Fatalf("want ErrNoPrivateKey, got %v", err)
	}
	// The full scheme must decrypt what the public-only one encrypted.
	full := NewPaillier(&k.PublicKey, k)
	got, err := full.Decrypt(c)
	if err != nil || math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("cross decrypt: %v %g", err, got)
	}
}

func TestEncryptNonFinite(t *testing.T) {
	for name, s := range schemes(t) {
		if _, err := s.Encrypt(math.NaN()); err == nil {
			t.Fatalf("%s: expected NaN error", name)
		}
	}
}

func TestPlainDecryptBadLength(t *testing.T) {
	p := NewPlain()
	if _, err := p.Decrypt([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := p.Add([]byte{1}, []byte{2}); err == nil {
		t.Fatal("expected add error on bad ciphertexts")
	}
}

func TestCiphertextSizes(t *testing.T) {
	k := testKey(t)
	ps := NewPaillier(&k.PublicKey, nil)
	if ps.CiphertextSize() < 100 {
		t.Fatalf("paillier size %d too small", ps.CiphertextSize())
	}
	if NewPlain().CiphertextSize() != 256 {
		t.Fatal("plain simulated size should default to 256")
	}
	zero := &Plain{}
	if zero.CiphertextSize() != 8 {
		t.Fatal("zero-value plain should report raw size")
	}
}

func TestPaillierCorruptedCiphertext(t *testing.T) {
	k := testKey(t)
	s := NewPaillier(&k.PublicKey, k)
	if _, err := s.Decrypt([]byte{}); err == nil {
		t.Fatal("expected error for empty ciphertext")
	}
	c, _ := s.Encrypt(1)
	// Overflowing the modulus range must be rejected.
	huge := make([]byte, len(c)+64)
	for i := range huge {
		huge[i] = 0xff
	}
	if _, err := s.Decrypt(huge); err == nil {
		t.Fatal("expected error for oversized ciphertext")
	}
}

func TestPublicKeySerialization(t *testing.T) {
	k := testKey(t)
	b := MarshalPublicKey(&k.PublicKey)
	pk, err := UnmarshalPublicKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if pk.N.Cmp(k.N) != 0 || pk.N2.Cmp(k.N2) != 0 || pk.G.Cmp(k.G) != 0 {
		t.Fatal("public key round trip mismatch")
	}
	// Encrypt with the reconstructed key, decrypt with the original.
	s := NewPaillier(pk, nil)
	c, err := s.Encrypt(7.25)
	if err != nil {
		t.Fatal(err)
	}
	full := NewPaillier(&k.PublicKey, k)
	got, err := full.Decrypt(c)
	if err != nil || math.Abs(got-7.25) > 1e-9 {
		t.Fatalf("reconstructed-key encrypt failed: %v %g", err, got)
	}
}

func TestPrivateKeySerialization(t *testing.T) {
	k := testKey(t)
	b := MarshalPrivateKey(k)
	rk, err := UnmarshalPrivateKey(b)
	if err != nil {
		t.Fatal(err)
	}
	s := NewPaillier(&k.PublicKey, nil)
	c, _ := s.Encrypt(-4.5)
	full := NewPaillier(&rk.PublicKey, rk)
	got, err := full.Decrypt(c)
	if err != nil || math.Abs(got+4.5) > 1e-9 {
		t.Fatalf("reconstructed private key failed: %v %g", err, got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalPublicKey([]byte{1, 2}); err == nil {
		t.Fatal("expected truncated header error")
	}
	if _, err := UnmarshalPublicKey([]byte{0, 0, 0, 9, 1}); err == nil {
		t.Fatal("expected truncated body error")
	}
	k := testKey(t)
	b := append(MarshalPublicKey(&k.PublicKey), 0xaa)
	if _, err := UnmarshalPublicKey(b); err == nil {
		t.Fatal("expected trailing bytes error")
	}
	if _, err := UnmarshalPrivateKey([]byte{}); err == nil {
		t.Fatal("expected private key error")
	}
}

// The two schemes must agree on aggregated values: sum of many encrypted
// partials decrypts identically (within fixed-point tolerance).
func TestSchemesAgreeOnAggregation(t *testing.T) {
	k := testKey(t)
	pail := NewPaillier(&k.PublicKey, k)
	plain := NewPlain()
	values := []float64{0.5, 1.75, -0.25, 3.125, 10}
	var want float64
	for _, v := range values {
		want += v
	}
	for name, s := range map[string]Scheme{"paillier": pail, "plain": plain} {
		acc, err := s.Encrypt(values[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range values[1:] {
			c, err := s.Encrypt(v)
			if err != nil {
				t.Fatal(err)
			}
			acc, err = s.Add(acc, c)
			if err != nil {
				t.Fatal(err)
			}
		}
		got, err := s.Decrypt(acc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("%s aggregate %g, want %g", name, got, want)
		}
	}
}
