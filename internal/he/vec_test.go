package he

import (
	"context"
	"errors"
	"math"
	"testing"

	"vfps/internal/paillier"
)

func vecVals() []float64 {
	vs := make([]float64, 41)
	for i := range vs {
		vs[i] = float64(i)*0.25 - 3
	}
	return vs
}

func TestVecRoundTripAllSchemes(t *testing.T) {
	ctx := context.Background()
	dp, err := NewDP(1, 1e-5, 7)
	if err != nil {
		t.Fatal(err)
	}
	all := schemes(t)
	all["dp"] = dp // exercises the serial fallback path
	vs := vecVals()
	for name, s := range all {
		cs, err := EncryptVec(ctx, s, vs)
		if err != nil {
			t.Fatalf("%s EncryptVec: %v", name, err)
		}
		got, err := DecryptVec(ctx, s, cs)
		if err != nil {
			t.Fatalf("%s DecryptVec: %v", name, err)
		}
		if len(got) != len(vs) {
			t.Fatalf("%s: %d values decrypted from %d", name, len(got), len(vs))
		}
		for i := range vs {
			if name == "dp" { // Gaussian noise: check sanity, not the value
				if math.IsNaN(got[i]) || math.IsInf(got[i], 0) {
					t.Fatalf("dp item %d: %g", i, got[i])
				}
				continue
			}
			if math.Abs(got[i]-vs[i]) > 1e-9 {
				t.Fatalf("%s item %d: %g -> %g", name, i, vs[i], got[i])
			}
		}
	}
}

func TestPaillierVecMatchesScalarAtEveryParallelism(t *testing.T) {
	ctx := context.Background()
	k := testKey(t)
	vs := vecVals()
	for _, parallelism := range []int{1, 3, 0} {
		p := NewPaillier(&k.PublicKey, k)
		p.SetParallelism(parallelism)
		cs, err := p.EncryptVec(ctx, vs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.DecryptVec(ctx, cs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vs {
			if math.Abs(got[i]-vs[i]) > 1e-9 {
				t.Fatalf("parallelism=%d item %d: %g -> %g", parallelism, i, vs[i], got[i])
			}
			// Cross-check against the scalar path: same codec, same key.
			sv, err := p.Decrypt(cs[i])
			if err != nil {
				t.Fatal(err)
			}
			if sv != got[i] {
				t.Fatalf("scalar/vector decrypt disagree: %g vs %g", sv, got[i])
			}
		}
	}
}

func TestPaillierPooledEncryptVec(t *testing.T) {
	ctx := context.Background()
	k := testKey(t)
	p := NewPaillier(&k.PublicKey, k)
	p.StartRandomizerPool(8, 1)
	p.StartRandomizerPool(8, 1) // idempotent
	defer p.Close()
	if added, err := p.PrefillRandomizers(8); err != nil {
		t.Fatal(err)
	} else if added == 0 && p.pool().Depth() == 0 {
		// added == 0 is fine when the background filler beat us to a full
		// buffer (the windowed source makes that the common case).
		t.Fatal("PrefillRandomizers added nothing to an empty pool")
	}
	vs := vecVals()
	cs, err := p.EncryptVec(ctx, vs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.DecryptVec(ctx, cs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if math.Abs(got[i]-vs[i]) > 1e-9 {
			t.Fatalf("pooled item %d: %g -> %g", i, vs[i], got[i])
		}
	}
	// Scalar Encrypt also uses the pool's fast path and must stay correct.
	c, err := p.Encrypt(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := p.Decrypt(c); err != nil || math.Abs(v-2.5) > 1e-9 {
		t.Fatalf("pooled scalar Encrypt -> %g, %v", v, err)
	}
	p.Close()
	p.Close() // idempotent; scheme stays usable
	if _, err := p.EncryptVec(ctx, vs[:3]); err != nil {
		t.Fatalf("EncryptVec after Close: %v", err)
	}
}

func TestPaillierVecErrors(t *testing.T) {
	ctx := context.Background()
	k := testKey(t)
	pub := NewPaillier(&k.PublicKey, nil)
	if _, err := pub.DecryptVec(ctx, [][]byte{{1}}); !errors.Is(err, ErrNoPrivateKey) {
		t.Fatalf("public-only DecryptVec err = %v, want ErrNoPrivateKey", err)
	}
	p := NewPaillier(&k.PublicKey, k)
	if _, err := p.DecryptVec(ctx, [][]byte{nil}); !errors.Is(err, paillier.ErrCiphertextBytes) {
		t.Fatalf("DecryptVec(nil bytes) err = %v, want ErrCiphertextBytes", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.EncryptVec(cctx, vecVals()); !errors.Is(err, context.Canceled) {
		t.Fatalf("EncryptVec on cancelled ctx = %v", err)
	}
}

func TestPaillierScalarDecodeErrorsAreTyped(t *testing.T) {
	k := testKey(t)
	p := NewPaillier(&k.PublicKey, k)
	if _, err := p.Decrypt(nil); !errors.Is(err, paillier.ErrCiphertextBytes) {
		t.Fatalf("Decrypt(nil) err = %v, want ErrCiphertextBytes", err)
	}
	good, err := p.Encrypt(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Add(good, []byte{}); !errors.Is(err, paillier.ErrCiphertextBytes) {
		t.Fatalf("Add(good, empty) err = %v, want ErrCiphertextBytes", err)
	}
	if _, err := p.Add([]byte{0}, good); !errors.Is(err, paillier.ErrCiphertextBytes) {
		t.Fatalf("Add(zero, good) err = %v, want ErrCiphertextBytes", err)
	}
}

func TestSerialFallbackHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewPlain()
	if _, err := EncryptVec(ctx, s, vecVals()); !errors.Is(err, context.Canceled) {
		t.Fatalf("fallback EncryptVec on cancelled ctx = %v", err)
	}
	cs, err := EncryptVec(context.Background(), s, vecVals())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptVec(ctx, s, cs); !errors.Is(err, context.Canceled) {
		t.Fatalf("fallback DecryptVec on cancelled ctx = %v", err)
	}
}
