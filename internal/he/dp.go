package he

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// DP implements the differential-privacy alternative the paper discusses in
// §II: instead of encrypting partial distances, each participant perturbs
// them with Gaussian noise calibrated to (ε, δ) before release. Aggregation
// and "decryption" are then plain arithmetic — no keys, no public-key cost —
// but, as the paper notes, "adding noises inevitably affects the model
// accuracy": the noisy distances corrupt the KNN neighbour sets and hence
// the similarity estimates (the ExtDP experiment quantifies this).
//
// Each released value is perturbed with the Gaussian mechanism at scale
// σ = sensitivity·√(2·ln(1.25/δ))/ε. This models the per-release noise
// level; a full accountant for composition across releases is deployment
// policy and out of scope here.
type DP struct {
	// Epsilon and Delta are the per-release privacy parameters.
	Epsilon, Delta float64
	// Sensitivity bounds one record's contribution to a released partial
	// distance. With standardized features a loose practical bound is used
	// as the default (see NewDP).
	Sensitivity float64
	// BaseSeed is the consortium noise seed; WithIndex derives an
	// independent stream per participant from it.
	BaseSeed int64

	mu  sync.Mutex
	rng *rand.Rand
}

// DefaultSensitivity is the default clipping bound for released partial
// distances over standardized features.
const DefaultSensitivity = 4.0

// NewDP returns the scheme. seed fixes the noise stream for reproducible
// experiments; production deployments should seed from crypto/rand.
func NewDP(epsilon, delta float64, seed int64) (*DP, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("he: dp epsilon %g must be positive", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("he: dp delta %g must be in (0,1)", delta)
	}
	return &DP{
		Epsilon:     epsilon,
		Delta:       delta,
		Sensitivity: DefaultSensitivity,
		BaseSeed:    seed,
		rng:         rand.New(rand.NewSource(seed)),
	}, nil
}

// WithIndex derives a participant-specific scheme whose noise stream is
// independent of every other participant's.
func (d *DP) WithIndex(index int) (*DP, error) {
	nd, err := NewDP(d.Epsilon, d.Delta, d.BaseSeed+7919*int64(index+1))
	if err != nil {
		return nil, err
	}
	nd.Sensitivity = d.Sensitivity
	return nd, nil
}

// Sigma is the Gaussian-mechanism noise scale.
func (d *DP) Sigma() float64 {
	return d.Sensitivity * math.Sqrt(2*math.Log(1.25/d.Delta)) / d.Epsilon
}

// Name implements Scheme.
func (d *DP) Name() string { return "dp" }

// Encrypt implements Scheme: release the value perturbed with calibrated
// Gaussian noise. The output is a plain 8-byte float — DP protects through
// noise, not secrecy.
func (d *DP) Encrypt(v float64) ([]byte, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, fmt.Errorf("he: cannot release non-finite value %g", v)
	}
	d.mu.Lock()
	noise := d.rng.NormFloat64() * d.Sigma()
	d.mu.Unlock()
	return (&Plain{}).Encrypt(v + noise)
}

// Decrypt implements Scheme: decode the (noisy) value.
func (d *DP) Decrypt(c []byte) (float64, error) { return (&Plain{}).Decrypt(c) }

// Add implements Scheme: plain addition of noisy values.
func (d *DP) Add(a, b []byte) ([]byte, error) { return (&Plain{}).Add(a, b) }

// CiphertextSize implements Scheme: released values are raw 8-byte floats.
func (d *DP) CiphertextSize() int { return 8 }
