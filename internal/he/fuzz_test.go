package he

import (
	"testing"
)

// FuzzUnmarshalPublicKey ensures arbitrary bytes never panic the key parser.
func FuzzUnmarshalPublicKey(f *testing.F) {
	k := testKey(nil)
	f.Add(MarshalPublicKey(&k.PublicKey))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 7})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		pk, err := UnmarshalPublicKey(data)
		if err != nil {
			return
		}
		if pk.N == nil || pk.N2 == nil || pk.G == nil {
			t.Fatal("accepted key with nil components")
		}
	})
}

// FuzzUnmarshalPrivateKey mirrors the public-key fuzzing for private keys.
func FuzzUnmarshalPrivateKey(f *testing.F) {
	k := testKey(nil)
	f.Add(MarshalPrivateKey(k))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, err := UnmarshalPrivateKey(data)
		if err != nil {
			return
		}
		if sk.N == nil || sk.Lambda == nil || sk.Mu == nil {
			t.Fatal("accepted key with nil components")
		}
	})
}

// FuzzPaillierDecrypt ensures decrypting arbitrary ciphertext bytes returns
// an error or a value — never a panic.
func FuzzPaillierDecrypt(f *testing.F) {
	k := testKey(nil)
	s := NewPaillier(&k.PublicKey, k)
	good, _ := s.Encrypt(1.5)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(make([]byte, 600))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = s.Decrypt(data)
	})
}

// FuzzSecAggDecrypt exercises the masking decoder.
func FuzzSecAggDecrypt(f *testing.F) {
	s, _ := NewSecAgg(0, 2, 1)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = s.Decrypt(data)
		_, _ = s.Add(data, data)
	})
}
