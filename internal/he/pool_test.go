package he

import (
	"crypto/rand"
	"testing"
	"time"

	"vfps/internal/paillier"
)

func poolTestKey(t *testing.T) *paillier.PrivateKey {
	t.Helper()
	sk, err := paillier.GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// TestPoolSetReusesPerKey checks that For returns one pool per modulus and
// distinct pools for distinct keys.
func TestPoolSetReusesPerKey(t *testing.T) {
	ska, skb := poolTestKey(t), poolTestKey(t)
	ps := NewPoolSet(4, 1)
	defer ps.Close()

	a1 := ps.For(&ska.PublicKey, rand.Reader, nil)
	a2 := ps.For(&ska.PublicKey, rand.Reader, ska) // sk honoured only at creation
	b := ps.For(&skb.PublicKey, rand.Reader, nil)
	if a1 == nil || b == nil {
		t.Fatal("For returned nil on an open set")
	}
	if a1 != a2 {
		t.Fatal("same key produced distinct pools")
	}
	if a1 == b {
		t.Fatal("distinct keys share one pool")
	}
	if ps.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ps.Len())
	}
}

// TestPoolSetClose verifies Close stops every pool and that a closed set
// refuses to mint new ones.
func TestPoolSetClose(t *testing.T) {
	sk := poolTestKey(t)
	ps := NewPoolSet(2, 1)
	rz := ps.For(&sk.PublicKey, rand.Reader, nil)
	ps.Close()
	if !rz.Closed() {
		t.Fatal("pool still open after set Close")
	}
	if got := ps.For(&sk.PublicKey, rand.Reader, nil); got != nil {
		t.Fatal("For on a closed set returned a pool")
	}
	if ps.Len() != 0 {
		t.Fatalf("Len after Close = %d, want 0", ps.Len())
	}
}

// TestAttachPoolOwnership checks that a scheme closing after AttachPool
// leaves the shared pool running for other sharers, while StartRandomizerPool
// pools are torn down by the scheme itself.
func TestAttachPoolOwnership(t *testing.T) {
	sk := poolTestKey(t)
	ps := NewPoolSet(4, 1)
	defer ps.Close()

	shared := NewPaillier(&sk.PublicKey, nil)
	shared.AttachPool(ps)
	rz := shared.pool()
	if rz == nil {
		t.Fatal("AttachPool installed no pool")
	}
	shared.Close()
	if rz.Closed() {
		t.Fatal("scheme Close killed the shared pool")
	}
	if shared.pool() != nil {
		t.Fatal("scheme still references the pool after Close")
	}

	own := NewPaillier(&sk.PublicKey, nil)
	own.StartRandomizerPool(2, 1)
	ownRz := own.pool()
	own.Close()
	if !ownRz.Closed() {
		t.Fatal("scheme Close left its own pool running")
	}

	// AttachPool is a no-op once a pool is present.
	p2 := NewPaillier(&sk.PublicKey, nil)
	p2.StartRandomizerPool(2, 1)
	defer p2.Close()
	before := p2.pool()
	p2.AttachPool(ps)
	if p2.pool() != before {
		t.Fatal("AttachPool replaced a running pool")
	}
}

// TestRefillHint verifies the hint asynchronously tops up the pool and that
// redundant hints collapse into the one in flight.
func TestRefillHint(t *testing.T) {
	sk := poolTestKey(t)
	p := NewPaillier(&sk.PublicKey, nil)
	// Workers: -1 gives a pure pull pool (no background fillers), so depth
	// only moves when the hint's Prefill runs.
	p.mu.Lock()
	p.rz = paillier.NewRandomizerOpts(&sk.PublicKey, rand.Reader, paillier.PoolOptions{Buffer: 8, Workers: -1})
	p.ownPool = true
	p.mu.Unlock()
	defer p.Close()

	p.RefillHint(3)
	deadline := time.Now().Add(10 * time.Second)
	for p.pool().Depth() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := p.pool().Depth(); d < 3 {
		t.Fatalf("Depth after RefillHint = %d, want >= 3", d)
	}

	// Hints on schemes without pools (or closed pools) are dropped silently.
	none := NewPaillier(&sk.PublicKey, nil)
	none.RefillHint(5)
	Hint(none, 5)
	Hint(NewPlain(), 5)
}

// TestPoolSetStatsAggregates checks the set-level counter roll-up.
func TestPoolSetStatsAggregates(t *testing.T) {
	sk := poolTestKey(t)
	ps := NewPoolSet(2, -1) // pull-only pools: Next always misses
	defer ps.Close()
	rz := ps.For(&sk.PublicKey, rand.Reader, nil)
	if _, err := rz.Next(); err != nil {
		t.Fatal(err)
	}
	if s := ps.Stats(); s.Misses == 0 {
		t.Fatalf("aggregate stats show no misses: %+v", s)
	}
}
