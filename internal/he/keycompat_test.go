package he

import (
	"crypto/rand"
	"math/big"
	"testing"

	"vfps/internal/paillier"
)

// TestPrivateKeyMarshalCRT checks that the five-integer wire format carries
// the factorisation across (un)marshal, so remote leaders get CRT decryption.
func TestPrivateKeyMarshalCRT(t *testing.T) {
	sk, err := paillier.GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := UnmarshalPrivateKey(MarshalPrivateKey(sk))
	if err != nil {
		t.Fatal(err)
	}
	if !rt.HasCRT() {
		t.Fatal("unmarshalled key lost the CRT fast path")
	}
	c, err := sk.Encrypt(rand.Reader, big.NewInt(-12345))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != -12345 {
		t.Fatalf("round-tripped key decrypts to %v", m)
	}
}

// TestPrivateKeyUnmarshalLegacy accepts the pre-CRT three-integer layout and
// degrades gracefully to λ/μ decryption.
func TestPrivateKeyUnmarshalLegacy(t *testing.T) {
	sk, err := paillier.GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	legacy := MarshalPrivateKey(sk.WithoutCRT())
	rt, err := UnmarshalPrivateKey(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if rt.HasCRT() {
		t.Fatal("legacy key should not claim a CRT path")
	}
	c, err := sk.Encrypt(rand.Reader, big.NewInt(777))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 777 {
		t.Fatalf("legacy key decrypts to %v", m)
	}
}
