package he

import (
	"io"
	"sync"

	"vfps/internal/paillier"
)

// PoolSet is a cluster-lifetime registry of Paillier randomizer pools, keyed
// by public-key modulus. It exists so pools outlive any single protocol
// round or cluster: several consortiums (or successive Fagin rounds of one)
// sharing a key draw from one pool whose background workers keep producing
// through the idle gaps between rounds, instead of each round paying the
// table build and warm-up again.
//
// The set owns its pools: schemes attach via Paillier.AttachPool and must
// NOT close them; Close on the owning side tears everything down. A PoolSet
// is safe for concurrent use.
type PoolSet struct {
	mu      sync.Mutex
	buffer  int
	workers int
	window  int
	pools   map[string]*paillier.Randomizer
	closed  bool
}

// NewPoolSet returns an empty set whose pools are created on first use with
// the given buffer and worker count (<= 0 select the paillier defaults:
// buffer 64, one worker). Fixed-base windowing runs at DefaultWindow; see
// SetWindow.
func NewPoolSet(buffer, workers int) *PoolSet {
	return &PoolSet{buffer: buffer, workers: workers, pools: make(map[string]*paillier.Randomizer)}
}

// SetWindow pins the fixed-base window width used by pools created after the
// call: 0 keeps paillier.DefaultWindow, negative restores classic uniform
// sampling.
func (ps *PoolSet) SetWindow(w int) {
	ps.mu.Lock()
	ps.window = w
	ps.mu.Unlock()
}

// For returns the pool for pk, creating it on first use. sk optionally
// enables CRT-accelerated production — it is honoured only by the call that
// creates the pool (later callers share whatever strategy the pool was built
// with). A closed set returns nil, which callers treat as "no pool".
func (ps *PoolSet) For(pk *paillier.PublicKey, random io.Reader, sk *paillier.PrivateKey) *paillier.Randomizer {
	key := string(pk.N.Bytes())
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.closed {
		return nil
	}
	if rz := ps.pools[key]; rz != nil {
		return rz
	}
	rz := paillier.NewRandomizerOpts(pk, random, paillier.PoolOptions{
		Buffer:  ps.buffer,
		Workers: ps.workers,
		Window:  ps.window,
		Key:     sk,
	})
	ps.pools[key] = rz
	return rz
}

// Len reports how many distinct keys have pools.
func (ps *PoolSet) Len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.pools)
}

// Stats aggregates the hit/miss/error counters across every pool in the set.
func (ps *PoolSet) Stats() paillier.PoolStats {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var total paillier.PoolStats
	for _, rz := range ps.pools {
		s := rz.Stats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Errors += s.Errors
	}
	return total
}

// Close stops every pool's background workers and empties their buffers.
// Attached schemes stay usable; encryption computes randomizers inline.
func (ps *PoolSet) Close() {
	ps.mu.Lock()
	pools := ps.pools
	ps.pools = make(map[string]*paillier.Randomizer)
	ps.closed = true
	ps.mu.Unlock()
	for _, rz := range pools {
		rz.Close()
	}
}

// Refiller is implemented by schemes whose encryption draws on a precomputed
// pool that benefits from between-round refill hints.
type Refiller interface {
	// RefillHint asynchronously tops the pool up by up to n values, bounded
	// by spare buffer capacity. It never blocks the caller.
	RefillHint(n int)
}

// Hint forwards a refill hint to schemes that support one; a protocol role
// calls it when it knows a round just drained the pool and an idle gap
// follows (the leader is off aggregating or decrypting).
func Hint(s Scheme, n int) {
	if r, ok := s.(Refiller); ok {
		r.RefillHint(n)
	}
}
