package he

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// SecAgg implements the secure-multiparty-computation alternative the paper
// sketches in §II: instead of encrypting partial distances, each participant
// blinds them with pairwise one-time masks that cancel exactly when all P
// participants' values for the same item are summed. The aggregation server
// therefore only ever sees uniformly random 64-bit words, yet obtains the
// true aggregate without any public-key operations.
//
// Values are carried as fixed-point int64 (scale 2^20) embedded in uint64
// arithmetic modulo 2^64, so mask cancellation is exact. Pairwise mask seeds
// derive from a consortium seed via SHA-256; a hardened deployment would
// agree them with pairwise Diffie–Hellman, which changes key setup but not
// this data path.
//
// Unlike HE ciphertexts, a mask is bound to the item being blinded, so
// encryption needs context: participants use EncryptAt with a domain tag and
// the (query, key) pair all parties agree on — the pseudo ID for candidate
// values (DomainItem) or the scan rank for TA frontiers (DomainRank).
type SecAgg struct {
	// Index is this participant's index, or -1 for non-contributing roles
	// (the leader and aggregation server only Add/Decrypt).
	Index int
	// Parties is the consortium size P.
	Parties int
	// Seed is the shared consortium masking seed.
	Seed int64
}

// Mask domains: masks for different protocol fields must never collide.
const (
	// DomainItem masks a partial distance keyed by pseudo ID.
	DomainItem byte = 1
	// DomainRank masks a TA frontier score keyed by scan rank.
	DomainRank byte = 2
)

// secAggScale is the fixed-point scale (2^20 ≈ 1e-6 resolution).
const secAggScale = 1 << 20

// ErrNeedsContext reports use of context-free Encrypt on the masking scheme.
var ErrNeedsContext = errors.New("he: secagg requires EncryptAt (mask is item-bound)")

// Contextual is implemented by schemes whose encryption depends on which
// protocol item is being protected. Participants prefer it when available.
type Contextual interface {
	EncryptAt(domain byte, query, key int, v float64) ([]byte, error)
}

// NewSecAgg returns the scheme for one participant.
func NewSecAgg(index, parties int, seed int64) (*SecAgg, error) {
	if parties < 2 {
		return nil, fmt.Errorf("he: secagg needs at least 2 parties, got %d", parties)
	}
	if index < -1 || index >= parties {
		return nil, fmt.Errorf("he: secagg index %d out of range", index)
	}
	return &SecAgg{Index: index, Parties: parties, Seed: seed}, nil
}

// WithIndex returns a copy bound to a participant index.
func (s *SecAgg) WithIndex(index int) (*SecAgg, error) {
	return NewSecAgg(index, s.Parties, s.Seed)
}

// Name implements Scheme.
func (s *SecAgg) Name() string { return "secagg" }

// pairMask derives the shared one-time pad between parties a < b for a
// specific protocol item.
func (s *SecAgg) pairMask(a, b int, domain byte, query, key int) uint64 {
	var buf [8 + 8 + 8 + 1 + 8 + 8]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(s.Seed))
	binary.BigEndian.PutUint64(buf[8:], uint64(a))
	binary.BigEndian.PutUint64(buf[16:], uint64(b))
	buf[24] = domain
	binary.BigEndian.PutUint64(buf[25:], uint64(query))
	binary.BigEndian.PutUint64(buf[33:], uint64(key))
	h := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint64(h[:8])
}

// maskFor is this participant's total mask for an item: it adds the pad it
// shares with every higher-indexed party and subtracts the pad shared with
// every lower-indexed party, so the sum over all parties is zero mod 2^64.
func (s *SecAgg) maskFor(domain byte, query, key int) uint64 {
	var total uint64
	for j := 0; j < s.Parties; j++ {
		if j == s.Index {
			continue
		}
		if s.Index < j {
			total += s.pairMask(s.Index, j, domain, query, key)
		} else {
			total -= s.pairMask(j, s.Index, domain, query, key)
		}
	}
	return total
}

func encodeFixed(v float64) (uint64, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("he: cannot mask non-finite value %g", v)
	}
	scaled := v * secAggScale
	if math.Abs(scaled) >= math.MaxInt64/2 {
		return 0, fmt.Errorf("he: value %g overflows secagg fixed point", v)
	}
	return uint64(int64(math.Round(scaled))), nil
}

// EncryptAt blinds v with this participant's mask for the given item.
func (s *SecAgg) EncryptAt(domain byte, query, key int, v float64) ([]byte, error) {
	if s.Index < 0 {
		return nil, fmt.Errorf("he: secagg role without participant index cannot encrypt")
	}
	word, err := encodeFixed(v)
	if err != nil {
		return nil, err
	}
	word += s.maskFor(domain, query, key)
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, word)
	return out, nil
}

// Encrypt implements Scheme but always fails: masking is item-bound.
func (s *SecAgg) Encrypt(v float64) ([]byte, error) { return nil, ErrNeedsContext }

// Decrypt recovers the aggregate. It is only meaningful once all P
// participants' contributions for the item have been added (masks cancel);
// partial aggregates decode to uniformly random values.
func (s *SecAgg) Decrypt(c []byte) (float64, error) {
	if len(c) != 8 {
		return 0, fmt.Errorf("he: secagg ciphertext must be 8 bytes, got %d", len(c))
	}
	word := binary.BigEndian.Uint64(c)
	return float64(int64(word)) / secAggScale, nil
}

// Add implements Scheme: modular addition of masked words.
func (s *SecAgg) Add(a, b []byte) ([]byte, error) {
	if len(a) != 8 || len(b) != 8 {
		return nil, fmt.Errorf("he: secagg add needs 8-byte operands")
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, binary.BigEndian.Uint64(a)+binary.BigEndian.Uint64(b))
	return out, nil
}

// CiphertextSize implements Scheme: masked values are single 64-bit words.
func (s *SecAgg) CiphertextSize() int { return 8 }
