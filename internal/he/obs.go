package he

import (
	"time"

	"vfps/internal/obs"
)

// Metric families recorded by the Paillier scheme. The instance label
// distinguishes the public (participant/aggregator) and private (leader)
// scheme copies sharing one registry.
const (
	metricOps        = "vfps_he_ops_total"
	metricOpSecs     = "vfps_he_op_seconds"
	metricPoolDepth  = "vfps_he_randomizer_pool_depth"
	metricPackRatio  = "vfps_he_pack_ratio"
	metricPackSlots  = "vfps_he_pack_slots"
	metricDecSecs    = "vfps_he_decrypt_seconds"
	metricPoolErrs   = "vfps_paillier_pool_errors"
	metricFallbackRt = "vfps_he_randomizer_fallback_rate"
)

// Observable is implemented by schemes that can be instrumented; today only
// Paillier has anything worth measuring (Plain ops cost nanoseconds and are
// already accounted by the cost model).
type Observable interface {
	SetObserver(reg *obs.Registry, instance string)
}

// DeclareMetrics pre-declares the HE metric families on reg so they are
// visible on /metrics before the first operation. Safe on a nil registry.
func DeclareMetrics(reg *obs.Registry) {
	declareHE(reg)
}

// heFams bundles the declared HE metric families; declareHE is idempotent on
// a registry, so roles and schemes can each declare without coordination.
type heFams struct {
	ops      *obs.CounterVec
	secs     *obs.HistogramVec
	depth    *obs.GaugeVec
	pack     *obs.GaugeVec
	slots    *obs.GaugeVec
	dec      *obs.HistogramVec
	poolErrs *obs.CounterVec
	fall     *obs.GaugeVec
}

func declareHE(reg *obs.Registry) heFams {
	return heFams{
		ops:      reg.Counter(metricOps, "Homomorphic-encryption operations performed (φe/φd/γ in the paper's cost model).", "scheme", "instance", "op"),
		secs:     reg.Histogram(metricOpSecs, "HE operation latency in seconds; *_vec entries time whole vector calls.", obs.LatencyBuckets, "scheme", "instance", "op"),
		depth:    reg.Gauge(metricPoolDepth, "Precomputed Paillier randomizers currently pooled (0 once the pool closes).", "instance"),
		pack:     reg.Gauge(metricPackRatio, "Values carried per ciphertext (slot-packing factor S; 1 = unpacked).", "instance"),
		slots:    reg.Gauge(metricPackSlots, "Slot count S chosen for the most recent packed encrypt/decrypt call; adaptive negotiation lifts it above the static geometry.", "instance"),
		dec:      reg.Histogram(metricDecSecs, "Whole-call decryption latency in seconds, split by CRT fast-path use.", obs.LatencyBuckets, "instance", "crt"),
		poolErrs: reg.Counter(metricPoolErrs, "Entropy failures while producing pool randomizers; each is retried with capped backoff, never fatal to a worker.", "instance"),
		fall:     reg.Gauge(metricFallbackRt, "Fraction of randomizer draws that missed the pool and computed inline (0 = every encryption hit the precomputed fast path).", "instance"),
	}
}

// heMetrics is the resolved instrument set, installed atomically so the hot
// path pays one pointer load when observability is off.
type heMetrics struct {
	instance  string
	ops       *obs.CounterVec
	secs      *obs.HistogramVec
	decSecs   *obs.HistogramVec
	poolErrs  *obs.CounterVec
	packSlots *obs.GaugeVec
}

// op records one scalar operation; it is used as a defer with time.Now()
// evaluated at registration, so the observed duration spans the whole call.
func (m *heMetrics) op(op string, start time.Time) {
	if m == nil {
		return
	}
	m.ops.With("paillier", m.instance, op).Inc()
	m.secs.With("paillier", m.instance, op).ObserveSince(start)
}

// vec records a whole-vector call: n scalar ops on the base counter plus one
// "<op>_vec" latency sample covering the batch.
func (m *heMetrics) vec(op string, n int, start time.Time) {
	if m == nil {
		return
	}
	m.ops.With("paillier", m.instance, op).Add(int64(n))
	m.secs.With("paillier", m.instance, op+"_vec").ObserveSince(start)
}

// slots records the pack factor a packed call actually used, so adaptive
// density is visible live instead of only in benchmark output.
func (m *heMetrics) slots(s int) {
	if m == nil {
		return
	}
	m.packSlots.With(m.instance).Set(float64(s))
}

// dec records one whole decryption call (scalar, vector or packed) on the
// CRT-labelled latency histogram, so the fast-path win shows up directly in
// /metrics instead of only in offline benchmarks.
func (m *heMetrics) dec(crt bool, start time.Time) {
	if m == nil {
		return
	}
	label := "off"
	if crt {
		label = "on"
	}
	m.decSecs.With(m.instance, label).ObserveSince(start)
}

// SetObserver installs op counters and latency histograms on the scheme and
// registers the randomizer-pool depth and pack-ratio gauges, all labelled
// with instance (e.g. "public", "leader", or a node role). A nil registry
// restores the no-op default.
func (p *Paillier) SetObserver(reg *obs.Registry, instance string) {
	if reg == nil {
		p.om.Store(nil)
		return
	}
	fams := declareHE(reg)
	p.om.Store(&heMetrics{instance: instance, ops: fams.ops, secs: fams.secs,
		decSecs: fams.dec, poolErrs: fams.poolErrs, packSlots: fams.slots})
	fams.depth.Func(func() float64 {
		if rz := p.pool(); rz != nil {
			return float64(rz.Depth())
		}
		return 0
	}, instance)
	fams.pack.Func(func() float64 { return float64(p.PackFactor()) }, instance)
	fams.fall.Func(func() float64 {
		rz := p.pool()
		if rz == nil {
			return 0
		}
		s := rz.Stats()
		total := s.Hits + s.Misses
		if total == 0 {
			return 0
		}
		return float64(s.Misses) / float64(total)
	}, instance)
	p.syncPoolObs()
}

// syncPoolObs bridges the pool's entropy-failure counter to the registry.
// Called whenever either side appears (SetObserver, StartRandomizerPool,
// AttachPool), so the hook lands regardless of wiring order. On a pool
// shared across schemes the most recent sharer's instance labels the series.
func (p *Paillier) syncPoolObs() {
	om := p.om.Load()
	rz := p.pool()
	if om == nil || om.poolErrs == nil || rz == nil {
		return
	}
	ctr := om.poolErrs.With(om.instance)
	rz.SetErrorHook(func() { ctr.Inc() })
}
