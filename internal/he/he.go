// Package he defines the homomorphic-encryption interface the VFL protocol
// uses (HE.Enc, HE.Dec, HE.Sum over real-valued partial distances) and two
// implementations:
//
//   - Paillier: real additively homomorphic encryption over fixed-point
//     encodings (internal/paillier + internal/fixed).
//   - Plain: a pass-through scheme that moves IEEE-754 bytes while charging
//     the same operation counts. It exists so paper-scale benchmark sweeps
//     can run in seconds; the cost model prices its op counts as if they were
//     Paillier ops. Protocol correctness is always validated against the real
//     scheme in tests.
package he

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"vfps/internal/fixed"
	"vfps/internal/paillier"
)

// Scheme is the additive-HE operation set the protocol needs. Ciphertexts
// are opaque byte strings ready for the wire.
type Scheme interface {
	// Name identifies the scheme ("paillier" or "plain").
	Name() string
	// Encrypt encrypts a real value.
	Encrypt(v float64) ([]byte, error)
	// Decrypt recovers the (possibly aggregated) real value. Schemes
	// without the private key return ErrNoPrivateKey.
	Decrypt(c []byte) (float64, error)
	// Add homomorphically adds two ciphertexts.
	Add(a, b []byte) ([]byte, error)
	// CiphertextSize is the nominal wire size of one ciphertext, used for
	// communication accounting.
	CiphertextSize() int
}

// ErrNoPrivateKey is returned by Decrypt on public-only schemes.
var ErrNoPrivateKey = errors.New("he: no private key")

// ---- Paillier-backed scheme ----

// Paillier implements Scheme over the Paillier cryptosystem with fixed-point
// encoding. If sk is nil the scheme is encrypt/add-only.
//
// A Paillier scheme is safe for concurrent use. SetParallelism and
// StartRandomizerPool tune the vector fast paths (see vec.go); both default
// to off/serial-compatible settings so a freshly constructed scheme behaves
// exactly like the original single-threaded implementation.
type Paillier struct {
	pk     *paillier.PublicKey
	sk     *paillier.PrivateKey
	codec  *fixed.Codec
	random io.Reader

	mu          sync.RWMutex
	parallelism int                         // 0 → par.Degree()
	rz          *paillier.Randomizer        // nil until StartRandomizerPool/AttachPool
	ownPool     bool                        // pool started here (Close stops it) vs attached shared
	window      int                         // fixed-base window for own pools (SetEncryptWindow)
	packer      *fixed.Packer               // nil until EnablePacking (see pack.go)
	packers     map[packerKey]*fixed.Packer // adaptive geometries from PackerFor

	hinting atomic.Bool               // one RefillHint in flight at a time
	om      atomic.Pointer[heMetrics] // nil until SetObserver; one load per op
}

// NewPaillier wraps a key pair. sk may be nil for participant-side
// (public-only) use.
func NewPaillier(pk *paillier.PublicKey, sk *paillier.PrivateKey) *Paillier {
	return &Paillier{pk: pk, sk: sk, codec: fixed.NewCodec(fixed.DefaultScaleBits), random: rand.Reader}
}

// Name implements Scheme.
func (p *Paillier) Name() string { return "paillier" }

// Encrypt implements Scheme.
func (p *Paillier) Encrypt(v float64) ([]byte, error) {
	if om := p.om.Load(); om != nil {
		defer om.op("encrypt", time.Now())
	}
	m, err := p.codec.Encode(v)
	if err != nil {
		return nil, err
	}
	var c *paillier.Ciphertext
	if rz := p.pool(); rz != nil {
		c, err = p.pk.EncryptWith(rz, m)
	} else if p.sk != nil {
		// Key holder without a pool: CRT-accelerated randomizer production.
		c, err = p.sk.Encrypt(p.random, m)
	} else {
		c, err = p.pk.Encrypt(p.random, m)
	}
	if err != nil {
		return nil, err
	}
	return c.Bytes(), nil
}

// Decrypt implements Scheme.
func (p *Paillier) Decrypt(c []byte) (float64, error) {
	if p.sk == nil {
		return 0, ErrNoPrivateKey
	}
	if om := p.om.Load(); om != nil {
		start := time.Now()
		defer func() {
			om.op("decrypt", start)
			om.dec(p.sk.HasCRT(), start)
		}()
	}
	ct, err := p.pk.ParseCiphertext(c)
	if err != nil {
		return 0, err
	}
	m, err := p.sk.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	return p.codec.Decode(m), nil
}

// Add implements Scheme.
func (p *Paillier) Add(a, b []byte) ([]byte, error) {
	if om := p.om.Load(); om != nil {
		defer om.op("add", time.Now())
	}
	ca, err := p.pk.ParseCiphertext(a)
	if err != nil {
		return nil, err
	}
	cb, err := p.pk.ParseCiphertext(b)
	if err != nil {
		return nil, err
	}
	c, err := p.pk.AddCipher(ca, cb)
	if err != nil {
		return nil, err
	}
	return c.Bytes(), nil
}

// CiphertextSize implements Scheme.
func (p *Paillier) CiphertextSize() int { return p.pk.CiphertextSize() }

// ---- Plain (simulated) scheme ----

// Plain implements Scheme by shipping IEEE-754 bytes padded to the simulated
// ciphertext size. It preserves the protocol's data flow, operation counts
// and wire volume while removing cryptographic cost; the cost model prices
// the counted ops at calibrated Paillier rates.
type Plain struct {
	// SimulatedSize is the ciphertext blob size actually shipped (the value
	// occupies the first 8 bytes, the rest is zero padding), so communication
	// accounting matches an encrypted deployment byte for byte. Defaults to
	// 256 bytes (a 1024-bit-modulus Paillier ciphertext); the zero value
	// ships bare 8-byte floats.
	SimulatedSize int
}

// NewPlain returns a Plain scheme with the default simulated ciphertext size.
func NewPlain() *Plain { return &Plain{SimulatedSize: 256} }

// Name implements Scheme.
func (p *Plain) Name() string { return "plain" }

// Encrypt implements Scheme.
func (p *Plain) Encrypt(v float64) ([]byte, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, fmt.Errorf("he: cannot encrypt non-finite value %g", v)
	}
	b := make([]byte, max(p.CiphertextSize(), 8))
	binary.BigEndian.PutUint64(b, math.Float64bits(v))
	return b, nil
}

// Decrypt implements Scheme.
func (p *Plain) Decrypt(c []byte) (float64, error) {
	if len(c) < 8 {
		return 0, fmt.Errorf("he: plain ciphertext must be at least 8 bytes, got %d", len(c))
	}
	return math.Float64frombits(binary.BigEndian.Uint64(c)), nil
}

// Add implements Scheme.
func (p *Plain) Add(a, b []byte) ([]byte, error) {
	va, err := p.Decrypt(a)
	if err != nil {
		return nil, err
	}
	vb, err := p.Decrypt(b)
	if err != nil {
		return nil, err
	}
	return p.Encrypt(va + vb)
}

// CiphertextSize implements Scheme.
func (p *Plain) CiphertextSize() int {
	if p.SimulatedSize > 0 {
		return p.SimulatedSize
	}
	return 8
}

// ---- key material serialisation (for the key server) ----

// MarshalPublicKey serialises a Paillier public key.
func MarshalPublicKey(pk *paillier.PublicKey) []byte {
	return marshalBigInts(pk.N)
}

// UnmarshalPublicKey reconstructs a public key (G and N² are derived).
func UnmarshalPublicKey(b []byte) (*paillier.PublicKey, error) {
	ints, err := unmarshalBigInts(b, 1)
	if err != nil {
		return nil, fmt.Errorf("he: bad public key: %w", err)
	}
	n := ints[0]
	return &paillier.PublicKey{
		N:  n,
		N2: new(big.Int).Mul(n, n),
		G:  new(big.Int).Add(n, big.NewInt(1)),
	}, nil
}

// MarshalPrivateKey serialises a Paillier private key. Keys carrying their
// factorisation (the normal case) marshal as five integers so the receiver
// can rebuild the CRT decryption fast path; legacy keys without P, Q marshal
// in the original three-integer format.
func MarshalPrivateKey(sk *paillier.PrivateKey) []byte {
	if sk.P != nil && sk.Q != nil {
		return marshalBigInts(sk.N, sk.Lambda, sk.Mu, sk.P, sk.Q)
	}
	return marshalBigInts(sk.N, sk.Lambda, sk.Mu)
}

// UnmarshalPrivateKey reconstructs a private key from either wire format:
// five integers (n, λ, μ, p, q — CRT-enabled) or the legacy three-integer
// layout (n, λ, μ — λ/μ decryption only).
func UnmarshalPrivateKey(b []byte) (*paillier.PrivateKey, error) {
	ints, err := unmarshalBigInts(b, 5)
	if err != nil {
		if ints3, err3 := unmarshalBigInts(b, 3); err3 == nil {
			ints = ints3
		} else {
			return nil, fmt.Errorf("he: bad private key: %w", err)
		}
	}
	n := ints[0]
	sk := &paillier.PrivateKey{
		PublicKey: paillier.PublicKey{
			N:  n,
			N2: new(big.Int).Mul(n, n),
			G:  new(big.Int).Add(n, big.NewInt(1)),
		},
		Lambda: ints[1],
		Mu:     ints[2],
	}
	if len(ints) == 5 {
		sk.P, sk.Q = ints[3], ints[4]
	}
	if err := sk.Precompute(); err != nil {
		return nil, fmt.Errorf("he: bad private key: %w", err)
	}
	return sk, nil
}

func marshalBigInts(xs ...*big.Int) []byte {
	var out []byte
	for _, x := range xs {
		b := x.Bytes()
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
		out = append(out, hdr[:]...)
		out = append(out, b...)
	}
	return out
}

func unmarshalBigInts(b []byte, n int) ([]*big.Int, error) {
	out := make([]*big.Int, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, errors.New("truncated header")
		}
		l := binary.BigEndian.Uint32(b[:4])
		b = b[4:]
		if uint32(len(b)) < l {
			return nil, errors.New("truncated body")
		}
		out = append(out, new(big.Int).SetBytes(b[:l]))
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, errors.New("trailing bytes")
	}
	return out, nil
}
