package he

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"vfps/internal/fixed"
)

// TestAdaptiveGeometryNeverOverflows is the adaptive-packing safety property:
// for any value vector and any aggregation depth, the slot width chosen from
// NeededPackBits at that depth must decode exact per-slot sums after the full
// addition budget is spent — the densest safe S never admits slot overflow.
// Each trial aggregates the same extreme-magnitude vector `adds` times, the
// worst case the headroom is provisioned for.
func TestAdaptiveGeometryNeverOverflows(t *testing.T) {
	p := packedScheme(t, 512, 4)
	ctx := context.Background()
	usable := p.pk.PlaintextHeadroomBits()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		adds := 1 + rng.Intn(6)
		n := 1 + rng.Intn(2*p.PackFactor()+1)
		mag := math.Ldexp(1, rng.Intn(10)-3) // magnitudes from 2^-3 to 2^6
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = (rng.Float64()*2 - 1) * mag
		}
		vs[0] = mag // pin the advertised bound to the extreme value
		bits, err := p.NeededPackBits(vs)
		if err != nil {
			t.Fatal(err)
		}
		packer, err := p.PackerFor(bits, adds)
		if err != nil {
			t.Fatalf("trial %d (V=%d adds=%d): %v", trial, bits, adds, err)
		}
		if got := packer.Slots() * int(packer.SlotBits()); got > int(usable) {
			t.Fatalf("trial %d: geometry S=%d W=%d uses %d bits of %d usable",
				trial, packer.Slots(), packer.SlotBits(), got, usable)
		}
		var agg [][]byte
		for a := 0; a < adds; a++ {
			cs, err := p.EncryptPackedWith(ctx, packer, vs)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if agg == nil {
				agg = cs
				continue
			}
			for i := range cs {
				if agg[i], err = p.Add(agg[i], cs[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		got, err := p.DecryptPackedWith(ctx, agg, n, packer, adds)
		if err != nil {
			t.Fatalf("trial %d (V=%d adds=%d): %v", trial, bits, adds, err)
		}
		for i := range vs {
			want := vs[i] * float64(adds)
			if math.Abs(got[i]-want) > 1e-6*math.Max(1, math.Abs(want)) {
				t.Fatalf("trial %d slot %d (V=%d adds=%d): got %g want %g — slot overflow",
					trial, i, bits, adds, got[i], want)
			}
		}
	}
}

// TestPackerForRejectsImpossibleDepth pins the typed backstop: a peer
// advertising a non-positive aggregation depth, a depth beyond the decoded
// headroom, or a slot wider than the key's plaintext capacity must surface
// fixed.ErrPackAdds / fixed.ErrPackShape, never a silent wrong geometry.
func TestPackerForRejectsImpossibleDepth(t *testing.T) {
	p := packedScheme(t, 512, 4)
	ctx := context.Background()
	for _, adds := range []int{0, -3} {
		if _, err := p.PackerFor(40, adds); !errors.Is(err, fixed.ErrPackAdds) {
			t.Fatalf("PackerFor(40, %d) = %v, want fixed.ErrPackAdds", adds, err)
		}
	}
	wide := p.pk.PlaintextHeadroomBits() + 10
	if _, err := p.PackerFor(wide, 1); !errors.Is(err, fixed.ErrPackShape) {
		t.Fatalf("PackerFor(%d, 1) = %v, want fixed.ErrPackShape", wide, err)
	}

	// A ciphertext packed for depth 2 must refuse to unpack at depth 3.
	vs := []float64{1.5, -2.25}
	bits, err := p.NeededPackBits(vs)
	if err != nil {
		t.Fatal(err)
	}
	packer, err := p.PackerFor(bits, 2)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := p.EncryptPackedWith(ctx, packer, vs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DecryptPackedWith(ctx, cs, 2, packer, 3); !errors.Is(err, fixed.ErrPackAdds) {
		t.Fatalf("decrypt beyond headroom = %v, want fixed.ErrPackAdds", err)
	}

	// With packing off, adaptive geometries are unavailable entirely.
	off := NewPaillier(p.pk, p.sk)
	if _, err := off.PackerFor(20, 2); !errors.Is(err, ErrPackingOff) {
		t.Fatalf("PackerFor without packing = %v, want ErrPackingOff", err)
	}
}

// TestDecryptPackedChunksMatchesFlat checks the streamed chunk decrypt path
// is bit-identical to whole-vector decryption across chunk layouts, including
// geometry from adaptive negotiation.
func TestDecryptPackedChunksMatchesFlat(t *testing.T) {
	p := packedScheme(t, 512, 3)
	ctx := context.Background()
	n := 3*p.PackFactor() + 2
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = float64(i)*0.75 - 4.5
	}
	bits, err := p.NeededPackBits(vs)
	if err != nil {
		t.Fatal(err)
	}
	packer, err := p.PackerFor(bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := p.EncryptPackedWith(ctx, packer, vs)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.DecryptPackedWith(ctx, cs, n, packer, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, per := range []int{1, 2, len(cs)} {
		var chunks [][][]byte
		for i := 0; i < len(cs); i += per {
			end := i + per
			if end > len(cs) {
				end = len(cs)
			}
			chunks = append(chunks, cs[i:end])
		}
		got, err := p.DecryptPackedChunks(ctx, chunks, n, packer, 1)
		if err != nil {
			t.Fatalf("per=%d: %v", per, err)
		}
		for i := range flat {
			if got[i] != flat[i] {
				t.Fatalf("per=%d slot %d: chunked %g != flat %g", per, i, got[i], flat[i])
			}
		}
	}
}
