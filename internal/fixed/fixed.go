// Package fixed provides a fixed-point codec between float64 values and
// big.Int plaintexts, so real-valued partial distances can travel through the
// additively homomorphic Paillier scheme. Addition of encodings corresponds
// to addition of the underlying reals, which is the only arithmetic the
// VFPS-SM protocol performs under encryption.
package fixed

import (
	"errors"
	"math"
	"math/big"
)

// DefaultScaleBits is the default number of fractional bits. 40 bits keep
// ~12 decimal digits of precision, far below the noise floor of the
// distances being aggregated.
const DefaultScaleBits = 40

// Codec converts between float64 and scaled big.Int representations.
type Codec struct {
	scaleBits uint
	scale     *big.Float
	invScale  float64
}

// ErrNotFinite reports an attempt to encode NaN or ±Inf.
var ErrNotFinite = errors.New("fixed: value is not finite")

// NewCodec returns a codec with the given number of fractional bits.
func NewCodec(scaleBits uint) *Codec {
	return &Codec{
		scaleBits: scaleBits,
		scale:     new(big.Float).SetMantExp(big.NewFloat(1), int(scaleBits)),
		invScale:  math.Ldexp(1, -int(scaleBits)),
	}
}

// ScaleBits returns the number of fractional bits used by the codec.
func (c *Codec) ScaleBits() uint { return c.scaleBits }

// Encode converts a finite float64 to its fixed-point integer representation.
func (c *Codec) Encode(v float64) (*big.Int, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, ErrNotFinite
	}
	f := new(big.Float).SetFloat64(v)
	f.Mul(f, c.scale)
	i, _ := f.Int(nil)
	return i, nil
}

// Decode converts a fixed-point integer back to float64.
func (c *Codec) Decode(i *big.Int) float64 {
	f, _ := new(big.Float).SetInt(i).Float64()
	return f * c.invScale
}

// DecodeSum decodes an integer that is the sum of n encodings. Because the
// encoding is linear, this is identical to Decode; the method exists to make
// aggregation sites self-documenting.
func (c *Codec) DecodeSum(i *big.Int) float64 { return c.Decode(i) }
