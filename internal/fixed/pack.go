package fixed

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// Slot packing amortises one Paillier exponentiation over several fixed-point
// values: S values are laid side by side inside a single plaintext integer,
// each in a W-bit slot wide enough that up to maxAdds homomorphic additions
// can never carry into the neighbouring slot.
//
// Signed values are stored with a bias. A slot value x with |x| < 2^V is
// written as x + 2^V ∈ (0, 2^(V+1)); after summing A ≤ maxAdds packed
// plaintexts each slot holds Σx_i + A·2^V, and the decoder subtracts the
// known A·2^V. The slot width is therefore
//
//	W = V + 1 + ceil(log2(maxAdds))
//
// which guarantees A·(2^(V+1)−1) < 2^W — sums of A biased slots cannot
// overflow even when every addend sits at the magnitude bound.

// Typed packing errors, so callers can distinguish capacity misuse from
// malformed data.
var (
	// ErrPackValueRange reports a value whose magnitude exceeds the slot's
	// value range (|x| must be < 2^ValueBits).
	ErrPackValueRange = errors.New("fixed: value exceeds slot range")
	// ErrPackShape reports a structurally invalid pack or unpack request:
	// zero or too many values, or a packed integer that does not fit the
	// declared slot count.
	ErrPackShape = errors.New("fixed: bad pack shape")
	// ErrPackAdds reports an addition count outside [1, MaxAdds] — beyond
	// MaxAdds the slot headroom guarantee no longer holds.
	ErrPackAdds = errors.New("fixed: addition count outside packed headroom")
)

// Packer packs up to Slots signed fixed-point integers into one plaintext.
// A Packer is immutable and safe for concurrent use.
type Packer struct {
	valueBits uint     // V: magnitude bound, |x| < 2^V
	slotBits  uint     // W: full slot width including sign bias and headroom
	slots     int      // S: how many slots fit the usable plaintext bits
	maxAdds   int      // A: additions the headroom is provisioned for
	bias      *big.Int // 2^V
	slotMask  *big.Int // 2^W − 1
}

// NewPacker derives the packing geometry. usableBits is the number of
// plaintext bits the carrier offers (for Paillier: modulus bits minus the
// sign-split margin), valueBits bounds each value's magnitude (|x| < 2^V,
// i.e. fractional scale bits plus integer bits), and maxAdds is the largest
// number of packed plaintexts that will ever be summed homomorphically.
// It fails when not even one slot fits.
func NewPacker(usableBits, valueBits uint, maxAdds int) (*Packer, error) {
	if valueBits == 0 {
		return nil, fmt.Errorf("%w: zero value bits", ErrPackShape)
	}
	if maxAdds < 1 {
		return nil, fmt.Errorf("%w: maxAdds %d", ErrPackAdds, maxAdds)
	}
	slotBits := valueBits + 1 + uint(bits.Len(uint(maxAdds-1)))
	slots := int(usableBits / slotBits)
	if slots < 1 {
		return nil, fmt.Errorf("%w: %d usable bits cannot hold a %d-bit slot",
			ErrPackShape, usableBits, slotBits)
	}
	one := big.NewInt(1)
	return &Packer{
		valueBits: valueBits,
		slotBits:  slotBits,
		slots:     slots,
		maxAdds:   maxAdds,
		bias:      new(big.Int).Lsh(one, valueBits),
		slotMask:  new(big.Int).Sub(new(big.Int).Lsh(one, slotBits), one),
	}, nil
}

// Slots returns S, the pack factor.
func (p *Packer) Slots() int { return p.slots }

// SlotBits returns W, the per-slot width in bits.
func (p *Packer) SlotBits() uint { return p.slotBits }

// ValueBits returns V, the per-value magnitude bound exponent.
func (p *Packer) ValueBits() uint { return p.valueBits }

// MaxAdds returns A, the addition budget the headroom covers.
func (p *Packer) MaxAdds() int { return p.maxAdds }

// NeededBits reports the smallest valueBits bound that admits every value in
// vals (Pack accepts BitLen ≤ ValueBits), with a floor of 1 so an all-zero
// batch still yields a valid geometry. It is the measurement half of adaptive
// packing: parties advertise this bound, the aggregator dictates the densest
// safe slot width from the observed maximum.
func NeededBits(vals []*big.Int) uint {
	need := 1
	for _, v := range vals {
		if l := v.BitLen(); l > need {
			need = l
		}
	}
	return uint(need)
}

// Pack lays vals out into one plaintext, vals[0] in the least-significant
// slot. It accepts 1..Slots values and enforces the magnitude bound on each.
func (p *Packer) Pack(vals []*big.Int) (*big.Int, error) {
	if len(vals) < 1 || len(vals) > p.slots {
		return nil, fmt.Errorf("%w: %d values for %d slots", ErrPackShape, len(vals), p.slots)
	}
	m := new(big.Int)
	slot := new(big.Int)
	for i, v := range vals {
		if v.BitLen() > int(p.valueBits) {
			return nil, fmt.Errorf("%w: |value[%d]| has %d bits, slot holds %d",
				ErrPackValueRange, i, v.BitLen(), p.valueBits)
		}
		slot.Add(v, p.bias)
		m.Or(m, slot.Lsh(slot, uint(i)*p.slotBits))
	}
	return m, nil
}

// Unpack splits a packed plaintext that is the homomorphic sum of adds packed
// vectors (adds == 1 for a never-added ciphertext) back into count per-slot
// sums, subtracting the accumulated adds·2^V bias from each.
func (p *Packer) Unpack(m *big.Int, count, adds int) ([]*big.Int, error) {
	if count < 1 || count > p.slots {
		return nil, fmt.Errorf("%w: %d slots requested of %d", ErrPackShape, count, p.slots)
	}
	if adds < 1 || adds > p.maxAdds {
		return nil, fmt.Errorf("%w: %d additions, headroom covers %d", ErrPackAdds, adds, p.maxAdds)
	}
	if m.Sign() < 0 || m.BitLen() > count*int(p.slotBits) {
		return nil, fmt.Errorf("%w: packed integer has %d bits, %d slots hold %d",
			ErrPackShape, m.BitLen(), count, count*int(p.slotBits))
	}
	totalBias := new(big.Int).Mul(p.bias, big.NewInt(int64(adds)))
	out := make([]*big.Int, count)
	rest := new(big.Int).Set(m)
	for i := 0; i < count; i++ {
		slot := new(big.Int).And(rest, p.slotMask)
		out[i] = slot.Sub(slot, totalBias)
		rest.Rsh(rest, p.slotBits)
	}
	return out, nil
}
