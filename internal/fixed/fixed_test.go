package fixed

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := NewCodec(DefaultScaleBits)
	for _, v := range []float64{0, 1, -1, 0.5, -0.5, 3.14159, 1e6, -1e6, 1e-6} {
		i, err := c.Encode(v)
		if err != nil {
			t.Fatalf("Encode(%g): %v", v, err)
		}
		got := c.Decode(i)
		if math.Abs(got-v) > 1e-9*(1+math.Abs(v)) {
			t.Fatalf("round trip %g -> %g", v, got)
		}
	}
}

func TestEncodeNonFinite(t *testing.T) {
	c := NewCodec(DefaultScaleBits)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := c.Encode(v); err == nil {
			t.Fatalf("expected error encoding %g", v)
		}
	}
}

func TestScaleBits(t *testing.T) {
	c := NewCodec(20)
	if c.ScaleBits() != 20 {
		t.Fatal("ScaleBits wrong")
	}
	i, _ := c.Encode(1)
	if i.Cmp(big.NewInt(1<<20)) != 0 {
		t.Fatalf("Encode(1) = %v, want 2^20", i)
	}
}

func TestLinearity(t *testing.T) {
	c := NewCodec(DefaultScaleBits)
	a, _ := c.Encode(1.25)
	b, _ := c.Encode(2.5)
	sum := new(big.Int).Add(a, b)
	if got := c.DecodeSum(sum); math.Abs(got-3.75) > 1e-9 {
		t.Fatalf("sum decode got %g", got)
	}
}

// Property: decoding the integer sum of encodings equals the float sum.
func TestAdditivityProperty(t *testing.T) {
	c := NewCodec(DefaultScaleBits)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		sumInt := new(big.Int)
		var sumF float64
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 1000
			e, err := c.Encode(v)
			if err != nil {
				return false
			}
			sumInt.Add(sumInt, e)
			sumF += v
		}
		return math.Abs(c.Decode(sumInt)-sumF) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding is monotone — a <= b implies Encode(a) <= Encode(b).
func TestMonotoneProperty(t *testing.T) {
	c := NewCodec(DefaultScaleBits)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		ea, err1 := c.Encode(a)
		eb, err2 := c.Encode(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return ea.Cmp(eb) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
