package fixed

import (
	"errors"
	"math/big"
	"testing"
)

func mustPacker(t testing.TB, usable, valueBits uint, maxAdds int) *Packer {
	t.Helper()
	p, err := NewPacker(usable, valueBits, maxAdds)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPackerGeometry pins the W = V + 1 + ceil(log2 A) derivation.
func TestPackerGeometry(t *testing.T) {
	cases := []struct {
		usable, valueBits uint
		maxAdds           int
		wantW             uint
		wantS             int
	}{
		{1022, 64, 1, 65, 15},  // no headroom needed for a single addend
		{1022, 64, 2, 66, 15},  // one carry bit
		{1022, 64, 3, 67, 15},  // ceil(log2 3) = 2
		{1022, 64, 4, 67, 15},  // exact power of two
		{1022, 64, 16, 69, 14}, // larger consortium shrinks the pack factor
		{254, 64, 4, 67, 3},    // 256-bit key
		{70, 64, 4, 67, 1},     // degenerate single slot
	}
	for _, c := range cases {
		p := mustPacker(t, c.usable, c.valueBits, c.maxAdds)
		if p.SlotBits() != c.wantW || p.Slots() != c.wantS {
			t.Errorf("NewPacker(%d,%d,%d): W=%d S=%d, want W=%d S=%d",
				c.usable, c.valueBits, c.maxAdds, p.SlotBits(), p.Slots(), c.wantW, c.wantS)
		}
	}
	if _, err := NewPacker(60, 64, 4); !errors.Is(err, ErrPackShape) {
		t.Errorf("zero-slot geometry: got %v, want ErrPackShape", err)
	}
	if _, err := NewPacker(1022, 64, 0); !errors.Is(err, ErrPackAdds) {
		t.Errorf("maxAdds=0: got %v, want ErrPackAdds", err)
	}
}

// TestPackRoundTrip covers single-vector pack/unpack including partial fills.
func TestPackRoundTrip(t *testing.T) {
	p := mustPacker(t, 1022, 48, 8)
	for count := 1; count <= p.Slots(); count++ {
		vals := make([]*big.Int, count)
		for i := range vals {
			v := big.NewInt(int64(i*i + 1))
			if i%2 == 1 {
				v.Neg(v)
			}
			vals[i] = v
		}
		m, err := p.Pack(vals)
		if err != nil {
			t.Fatalf("count=%d: %v", count, err)
		}
		got, err := p.Unpack(m, count, 1)
		if err != nil {
			t.Fatalf("count=%d: %v", count, err)
		}
		for i := range vals {
			if got[i].Cmp(vals[i]) != 0 {
				t.Fatalf("count=%d slot %d: got %v want %v", count, i, got[i], vals[i])
			}
		}
	}
}

// TestPackSumAtHeadroomLimit adds exactly maxAdds packed vectors of
// extreme-magnitude values and checks no slot bleeds into its neighbour —
// the headroom bound is tight, not approximate.
func TestPackSumAtHeadroomLimit(t *testing.T) {
	const adds = 8 // power of two: A·(2^(V+1)−1) = 2^W − A, the tightest fit
	p := mustPacker(t, 1022, 40, adds)
	maxVal := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), p.ValueBits()), big.NewInt(1))
	minVal := new(big.Int).Neg(maxVal)
	count := p.Slots()
	// Alternate extremes across slots so a carry in either direction would
	// visibly corrupt a neighbour.
	vals := make([]*big.Int, count)
	want := make([]*big.Int, count)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = maxVal
		} else {
			vals[i] = minVal
		}
		want[i] = new(big.Int).Mul(vals[i], big.NewInt(adds))
	}
	sum := new(big.Int)
	for a := 0; a < adds; a++ {
		m, err := p.Pack(vals)
		if err != nil {
			t.Fatal(err)
		}
		sum.Add(sum, m) // plaintext addition mirrors the homomorphic sum
	}
	got, err := p.Unpack(sum, count, adds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Cmp(want[i]) != 0 {
			t.Fatalf("slot %d after %d adds: got %v want %v", i, adds, got[i], want[i])
		}
	}
	// One addition beyond the budget is refused rather than silently wrong.
	if _, err := p.Unpack(sum, count, adds+1); !errors.Is(err, ErrPackAdds) {
		t.Fatalf("adds beyond headroom: got %v, want ErrPackAdds", err)
	}
}

// TestPackNegativeBoundaries exercises sign handling right at the slot edges.
func TestPackNegativeBoundaries(t *testing.T) {
	p := mustPacker(t, 300, 16, 4)
	edge := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), p.ValueBits()), big.NewInt(1))
	vals := []*big.Int{
		new(big.Int).Neg(edge),                // −(2^V − 1), most negative legal
		big.NewInt(-1),                        // all-ones biased pattern below 2^V
		big.NewInt(0),                         // exactly the bias value
		new(big.Int).Set(edge),                // most positive legal
		new(big.Int).Neg(big.NewInt(1 << 15)), // half-range negative
	}
	if n := p.Slots(); len(vals) > n {
		vals = vals[:n]
	}
	m, err := p.Pack(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Unpack(m, len(vals), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i].Cmp(vals[i]) != 0 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], vals[i])
		}
	}
	// Out-of-range magnitudes are rejected with the typed error.
	over := new(big.Int).Lsh(big.NewInt(1), p.ValueBits())
	for _, bad := range []*big.Int{over, new(big.Int).Neg(over)} {
		if _, err := p.Pack([]*big.Int{bad}); !errors.Is(err, ErrPackValueRange) {
			t.Fatalf("Pack(%v): got %v, want ErrPackValueRange", bad, err)
		}
	}
}

// TestPackDegenerateSingleSlot checks the S=1 geometry still round-trips and
// enforces shape limits (it is the fallback when keys are too small to pack).
func TestPackDegenerateSingleSlot(t *testing.T) {
	p := mustPacker(t, 70, 48, 4)
	if p.Slots() != 1 {
		t.Fatalf("expected degenerate single slot, got %d", p.Slots())
	}
	v := big.NewInt(-123456789)
	m, err := p.Pack([]*big.Int{v})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Unpack(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Cmp(v) != 0 {
		t.Fatalf("got %v want %v", got[0], v)
	}
	if _, err := p.Pack([]*big.Int{v, v}); !errors.Is(err, ErrPackShape) {
		t.Fatalf("two values into one slot: got %v, want ErrPackShape", err)
	}
	if _, err := p.Pack(nil); !errors.Is(err, ErrPackShape) {
		t.Fatalf("empty pack: got %v, want ErrPackShape", err)
	}
	if _, err := p.Unpack(m, 2, 1); !errors.Is(err, ErrPackShape) {
		t.Fatalf("unpack beyond slots: got %v, want ErrPackShape", err)
	}
	if _, err := p.Unpack(new(big.Int).Neg(m), 1, 1); !errors.Is(err, ErrPackShape) {
		t.Fatalf("negative packed integer: got %v, want ErrPackShape", err)
	}
}

// FuzzPackRoundTrip drives random signed values (masked into slot range)
// through pack → simulated homomorphic sum → unpack.
func FuzzPackRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(1), uint8(3), uint8(2))
	f.Add(int64(-99999), int64(42), uint8(1), uint8(1))
	f.Add(int64(1)<<47, int64(-(1)<<47), uint8(7), uint8(4))
	f.Fuzz(func(t *testing.T, a, b int64, countSeed, addsSeed uint8) {
		p, err := NewPacker(508, 48, 4)
		if err != nil {
			t.Fatal(err)
		}
		count := int(countSeed)%p.Slots() + 1
		adds := int(addsSeed)%p.MaxAdds() + 1
		mask := int64(1)<<p.ValueBits() - 1
		mk := func(seed int64, i int) *big.Int {
			v := (seed + int64(i)*7919) & mask
			x := big.NewInt(v)
			if (seed+int64(i))%2 != 0 {
				x.Neg(x)
			}
			return x
		}
		want := make([]*big.Int, count)
		sum := new(big.Int)
		for add := 0; add < adds; add++ {
			vals := make([]*big.Int, count)
			for i := range vals {
				vals[i] = mk(a+int64(add)*b, i)
			}
			m, err := p.Pack(vals)
			if err != nil {
				t.Fatal(err)
			}
			sum.Add(sum, m)
			for i := range vals {
				if want[i] == nil {
					want[i] = new(big.Int)
				}
				want[i].Add(want[i], vals[i])
			}
		}
		got, err := p.Unpack(sum, count, adds)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Cmp(want[i]) != 0 {
				t.Fatalf("slot %d: got %v want %v (a=%d b=%d count=%d adds=%d)",
					i, got[i], want[i], a, b, count, adds)
			}
		}
	})
}
