package vfl

import (
	"context"
	"testing"

	"vfps/internal/obs"
)

// observedCluster builds a Paillier cluster with an explicit observer, so the
// test exercises the full instrumentation path (transport, HE, role spans).
func observedCluster(t *testing.T, parties int) (*Cluster, *obs.Observer) {
	t.Helper()
	_, pt := testPartition(t, "Bank", 60, parties)
	o := obs.NewObserver(1024)
	cl, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition:   pt,
		Scheme:      "paillier",
		KeyBits:     256,
		ShuffleSeed: 7,
		Batch:       8,
		Obs:         o,
		Instance:    "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl, o
}

// TestQuerySpanTree asserts the protocol phases of one KNN query form a
// single span tree rooted at vfl.query, in protocol order: the aggregation
// server's Fagin scan (with the parties' distance/encrypt work beneath it)
// strictly precedes the leader-side decrypt.
func TestQuerySpanTree(t *testing.T) {
	cl, o := observedCluster(t, 3)
	// Cluster construction distributes keys over the transport and records
	// spans of its own; discard them so the report holds one query's tree.
	o.Tracer().Reset()
	if _, err := cl.Leader.RunQuery(context.Background(), 5, 4, VariantFagin); err != nil {
		t.Fatal(err)
	}

	rep := o.Tracer().Report()
	byID := map[uint64]obs.SpanData{}
	byName := map[string][]obs.SpanData{}
	for _, s := range rep.Spans {
		byID[s.ID] = s
		byName[s.Name] = append(byName[s.Name], s)
	}

	roots := byName[SpanQuery]
	if len(roots) != 1 {
		t.Fatalf("want exactly one %s root span, got %d (all: %v)", SpanQuery, len(roots), names(rep.Spans))
	}
	query := roots[0]
	if query.Parent != 0 {
		t.Fatalf("%s must be a root span, has parent %d", SpanQuery, query.Parent)
	}
	if query.Labels["variant"] != string(VariantFagin) {
		t.Fatalf("query labels = %v", query.Labels)
	}

	// Every other span must sit somewhere under the query root.
	for _, s := range rep.Spans {
		if s.ID == query.ID {
			continue
		}
		cur := s
		for cur.Parent != 0 {
			cur = byID[cur.Parent]
		}
		if cur.ID != query.ID {
			t.Fatalf("span %s (id %d) does not nest under %s", s.Name, s.ID, SpanQuery)
		}
	}

	for _, want := range []string{SpanFagin, SpanDecrypt, SpanNeighborSums, SpanDistances, SpanEncrypt, SpanReduce} {
		if len(byName[want]) == 0 {
			t.Fatalf("missing %s span (have %v)", want, names(rep.Spans))
		}
	}
	// Phase order within the query: the Fagin scan produces the encrypted
	// scores the leader then decrypts; the neighbour-sum fan-out is last.
	fagin, decrypt, sums := byName[SpanFagin][0], byName[SpanDecrypt][0], byName[SpanNeighborSums][0]
	if !fagin.Start.Before(decrypt.Start) {
		t.Fatal("agg.fagin must start before vfl.decrypt")
	}
	if !decrypt.Start.Before(sums.Start) {
		t.Fatal("vfl.decrypt must start before vfl.neighborSums")
	}
	// The parties' distance scans happen inside the Fagin phase.
	for _, d := range byName[SpanDistances] {
		if d.Start.Before(fagin.Start) {
			t.Fatal("party.distances must not start before agg.fagin")
		}
	}
}

// TestObservedMetricsPopulate asserts a query drives every wired metric
// family: transport counters, HE op counters, and the cost-model gauges.
func TestObservedMetricsPopulate(t *testing.T) {
	cl, o := observedCluster(t, 3)
	if _, err := cl.Leader.RunQuery(context.Background(), 2, 4, VariantBase); err != nil {
		t.Fatal(err)
	}

	fams := map[string]obs.FamilySnapshot{}
	for _, f := range o.Registry().Snapshot() {
		fams[f.Name] = f
	}
	// Series totals per family we expect traffic on.
	sum := func(name string) float64 {
		var tot float64
		for _, s := range fams[name].Series {
			tot += s.Value
		}
		return tot
	}
	if sum("vfps_transport_calls_total") == 0 {
		t.Fatal("no transport calls recorded")
	}
	if got := sum("vfps_transport_errors_total"); got != 0 {
		t.Fatalf("unexpected transport errors: %g", got)
	}
	if sum("vfps_he_ops_total") == 0 {
		t.Fatal("no HE ops recorded")
	}
	if sum("vfps_cost_ops") == 0 {
		t.Fatal("cost-model gauges empty")
	}
	// Latency histograms observe once per call.
	if sum("vfps_transport_call_seconds") != sum("vfps_transport_calls_total") {
		t.Fatalf("call histogram count %g != calls %g",
			sum("vfps_transport_call_seconds"), sum("vfps_transport_calls_total"))
	}
}

// TestDisabledObservabilityIsInert pins the opt-in contract: without an
// observer the cluster records nothing and pays no tracer allocations.
func TestDisabledObservabilityIsInert(t *testing.T) {
	_, pt := testPartition(t, "Bank", 40, 3)
	cl, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition: pt, Scheme: "plain", ShuffleSeed: 7, Batch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Leader.RunQuery(context.Background(), 1, 3, VariantFagin); err != nil {
		t.Fatal(err)
	}
	if o := cl.Observer(); o != nil {
		t.Fatalf("cluster without Obs must have a nil observer, got %v", o)
	}
}

// TestTracedSelectionIdentity pins the acceptance contract that tracing is
// purely observational: a cluster with full observability (spans, query IDs
// on the wire, query-log events) produces the bit-identical similarity
// matrix of an identically seeded cluster with no observer at all.
func TestTracedSelectionIdentity(t *testing.T) {
	ctx := context.Background()
	_, pt := testPartition(t, "Bank", 40, 3)
	queries := []int{0, 13, 39}

	plain, err := NewLocalCluster(ctx, ClusterConfig{
		Partition: pt, Scheme: "paillier", KeyBits: 256, ShuffleSeed: 7, Batch: 8, Wire: "binary",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	o := obs.NewObserver(1024)
	traced, err := NewLocalCluster(ctx, ClusterConfig{
		Partition: pt, Scheme: "paillier", KeyBits: 256, ShuffleSeed: 7, Batch: 8, Wire: "binary",
		Obs: o, Instance: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer traced.Close()

	prep, err := plain.Leader.Similarities(ctx, queries, 3, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	trep, err := traced.Leader.SimilaritiesParallel(ctx, queries, 3, VariantFagin, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prep.W {
		for j := range prep.W[i] {
			if prep.W[i][j] != trep.W[i][j] {
				t.Fatalf("W[%d][%d] differs with tracing on: %v vs %v", i, j, prep.W[i][j], trep.W[i][j])
			}
		}
	}
	// The traced run must have accounted its queries: one event per query,
	// each carrying a minted ID, a trace and phase latencies.
	slow := o.Log().Slowest()
	if len(slow) != len(queries) {
		t.Fatalf("query log retained %d events, want %d", len(slow), len(queries))
	}
	for _, ev := range slow {
		if ev.Kind != "query" || ev.ID == "" || ev.Trace == "" || len(ev.Phases) == 0 {
			t.Fatalf("incomplete query event: %+v", ev)
		}
	}
}

func names(spans []obs.SpanData) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
