package vfl

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vfps/internal/dataset"
	"vfps/internal/fixed"
)

func payloadTestCluster(t *testing.T, pt *dataset.Partition, adaptive bool, chunkBytes int, delta bool) *Cluster {
	t.Helper()
	cl, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition:    pt,
		Scheme:       "paillier",
		KeyBits:      256,
		ShuffleSeed:  7,
		Batch:        8,
		Wire:         "binary",
		Pack:         true,
		PackAdaptive: adaptive,
		ChunkBytes:   chunkBytes,
		DeltaCache:   delta,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestAdaptivePackSelectionIdentity is the payload determinism contract: a
// consortium with every payload knob on — adaptive slot width, chunked
// streaming, cross-round delta cache — computes bit-identical similarities to
// static packing, across repeated rounds, while the second round actually
// hits the delta cache and moves fewer bytes.
func TestAdaptivePackSelectionIdentity(t *testing.T) {
	ctx := context.Background()
	_, pt := testPartition(t, "Bank", 48, 3)
	queries := []int{0, 11, 47}

	static := payloadTestCluster(t, pt, false, 0, false)
	full := payloadTestCluster(t, pt, true, 2048, true)

	for _, variant := range []Variant{VariantBase, VariantFagin} {
		sref, err := static.Leader.Similarities(ctx, queries, 3, variant)
		if err != nil {
			t.Fatal(err)
		}
		var roundBytes [2]int64
		for round := 0; round < 2; round++ {
			if err := full.Leader.ResetAllCounts(ctx); err != nil {
				t.Fatal(err)
			}
			frep, err := full.Leader.Similarities(ctx, queries, 3, variant)
			if err != nil {
				t.Fatalf("%s round %d: %v", variant, round+1, err)
			}
			for i := range sref.W {
				for j := range sref.W[i] {
					if sref.W[i][j] != frep.W[i][j] {
						t.Fatalf("%s round %d: W[%d][%d] = %v under payload knobs, %v static",
							variant, round+1, i, j, frep.W[i][j], sref.W[i][j])
					}
				}
			}
			total, err := full.Leader.TotalCounts(ctx)
			if err != nil {
				t.Fatal(err)
			}
			roundBytes[round] = total.BytesSent
			if round == 0 && total.CacheHits != 0 && variant == VariantBase {
				// First base round on a fresh cache: everything is a fresh send.
				t.Fatalf("%s round 1: %d cache hits on a cold cache", variant, total.CacheHits)
			}
			if round == 1 {
				if total.CacheHits == 0 {
					t.Fatalf("%s round 2: repeat queries recorded no delta-cache hits", variant)
				}
				if total.CacheMisses != 0 {
					t.Fatalf("%s round 2: %d unexpected delta-cache misses", variant, total.CacheMisses)
				}
			}
		}
		if roundBytes[1] >= roundBytes[0] {
			t.Fatalf("%s: steady-state round sent %d payload bytes, cold round %d — delta cache saved nothing",
				variant, roundBytes[1], roundBytes[0])
		}
	}
}

// TestMaliciousPackDepthRejected pins the leader's hard backstop against a
// peer advertising an impossible pack geometry: a non-positive aggregation
// depth or an oversized slot width must surface the typed fixed errors, and
// a pack factor inconsistent with the advertised geometry must be refused.
func TestMaliciousPackDepthRejected(t *testing.T) {
	ctx := context.Background()
	_, pt := testPartition(t, "Bank", 24, 3)
	cl := payloadTestCluster(t, pt, true, 0, false)

	col := &collected{
		pids:   []int{0, 1, 2},
		blobs:  [][]byte{{1}},
		factor: 3,
		bits:   40,
		adds:   0, // impossible: zero aggregation depth
	}
	if _, err := cl.Leader.decryptCollected(ctx, col); !errors.Is(err, fixed.ErrPackAdds) {
		t.Fatalf("zero advertised depth: err = %v, want fixed.ErrPackAdds", err)
	}

	col.adds = 3
	col.bits = 4096 // slot wider than any plaintext the key can hold
	if _, err := cl.Leader.decryptCollected(ctx, col); !errors.Is(err, fixed.ErrPackShape) {
		t.Fatalf("oversized slot width: err = %v, want fixed.ErrPackShape", err)
	}

	col.bits = 40
	col.factor = 1000 // geometry admits far fewer slots than advertised
	if _, err := cl.Leader.decryptCollected(ctx, col); err == nil ||
		!strings.Contains(err.Error(), "inconsistent packing configuration") {
		t.Fatalf("factor/geometry mismatch: err = %v, want inconsistent-packing rejection", err)
	}
}
