package vfl

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/transport"
	"vfps/internal/wire"
)

// allMessages returns one fully-populated instance of every protocol message.
// Round-trip and measurement tests iterate this list so a new message type
// that forgets its wire methods fails to compile here first.
func allMessages() []wire.Message {
	return []wire.Message{
		&PublicKeyResp{Scheme: "paillier", Key: []byte{1, 2, 3}, Parties: 3,
			MaskSeed: -77, Epsilon: 0.5, Delta: 1e-5},
		&PrivateKeyResp{Scheme: "secagg", Parties: 4, MaskSeed: 99},
		&RankingBatchReq{Query: 3, Offset: 64, Count: 32},
		&RankingBatchResp{PseudoIDs: []int{9, 4, 17, 16}}, // unsorted: negative deltas
		&EncryptAllReq{Query: 12, PackBits: 40, Delta: true, NoCache: true},
		&EncryptAllResp{PseudoIDs: []int{1, 2, 3}, Ciphers: [][]byte{{0xde, 0xad}, {0xbe}}, PackFactor: 2,
			PackBits: 36, NeedBits: 30, CachedBlocks: []int{0, 2}},
		&EncryptCandidatesReq{Query: 5, PseudoIDs: []int{100, 7}, PackBits: 20, Delta: true},
		&EncryptCandidatesResp{Ciphers: [][]byte{{1}, {2, 3}}, PackFactor: 1,
			NeedBits: 18, CachedBlocks: []int{1}},
		&NeighborSumReq{Query: 2, PseudoIDs: []int{8, 3, 11}},
		&NeighborSumResp{Sum: -2.25},
		&CountsResp{Counts: costmodel.Raw{DistanceFlops: 1, Encryptions: 2,
			Decryptions: 3, CipherAdds: 4, PlainAdds: 5, ItemsSent: 6,
			Messages: 7, BytesSent: 8, FramingBytes: 9, CacheHits: 10, CacheMisses: 11}},
		&EncryptRankScoreReq{Query: 1, Rank: 9},
		&EncryptRankScoreResp{Cipher: []byte{5, 6}},
		&AggregateCandidatesReq{Query: 4, PseudoIDs: []int{2, 1}, Adaptive: true, Delta: true, NoCache: true},
		&AggregateCandidatesResp{Aggregated: [][]byte{{9}}, PackFactor: 3,
			PackBits: 36, PackAdds: 3, CachedBlocks: []int{0}},
		&AggregateFrontierReq{Query: 6, Rank: 2},
		&AggregateFrontierResp{Cipher: []byte{7}},
		&CollectAllReq{Query: 8, ChunkBytes: 4096, Adaptive: true, Delta: true, NoCache: true},
		&CollectAllResp{PseudoIDs: []int{0, 5}, Aggregated: [][]byte{{1, 1}, {2, 2}}, PackFactor: 1,
			PackBits: 36, PackAdds: 3, CachedBlocks: []int{1}},
		&CollectAllResp{PseudoIDs: []int{0, 5}, PackFactor: 2,
			Chunked: [][][]byte{{{1, 1}}, {{2, 2}, {3}}}},
		&FaginCollectReq{Query: 7, K: 10, Batch: 32, ChunkBytes: 2048, Adaptive: true, Delta: true},
		&FaginCollectResp{PseudoIDs: []int{3, 1}, Aggregated: [][]byte{{4}}, PackFactor: 2,
			Stats: FaginStats{Rounds: 2, ScanDepth: 64, Candidates: 9}},
		&FaginCollectResp{PseudoIDs: []int{3, 1}, PackFactor: 2, PackBits: 40, PackAdds: 4,
			CachedBlocks: []int{0, 1}, Chunked: [][][]byte{{{7, 8}}},
			Stats: FaginStats{Rounds: 1, ScanDepth: 8, Candidates: 2}},
		&ShardCollectReq{Query: 11, PseudoIDs: []int{6, 2}, PackBits: 24, Delta: true, NoCache: true},
		&ShardCollectReq{Query: 11, All: true, PackBits: 24},
		&ShardCollectResp{PseudoIDs: []int{0, 3}, Ciphers: [][]byte{{0xfe}, {0xff, 1}},
			PackFactor: 2, PackBits: 30, NeedBits: 26},
	}
}

// TestGoldenVectors pins the v1 byte layout of representative messages. These
// bytes are the protocol: if any vector changes, that is a wire format break
// and needs a version bump, not a test update.
func TestGoldenVectors(t *testing.T) {
	vectors := []struct {
		msg     wire.Message
		hex     string
		payload int64
	}{
		// Envelope 00 01, then zigzag varints: 7→0e, 10→14, 32→40.
		{&FaginCollectReq{Query: 7, K: 10, Batch: 32}, "0001080e10141840", 0},
		// Zero-valued fields are omitted entirely: bare envelope.
		{&CollectAllReq{}, "0001", 0},
		// Delta-coded ID list: count 3, deltas +5, -2, +9 (zigzag 0a 03 12).
		{&RankingBatchResp{PseudoIDs: []int{5, 3, 12}}, "00010a04030a0312", 0},
		// Float64 1.5 as fixed64 little-endian bits; 8 payload bytes.
		{&NeighborSumResp{Sum: 1.5}, "000109000000000000f83f", 8},
		// Blob list: count 2, (len 2, aa bb), (len 1, cc); pack factor 2.
		{&EncryptCandidatesResp{Ciphers: [][]byte{{0xaa, 0xbb}, {0xcc}}, PackFactor: 2},
			"00010a060202aabb01cc1004", 3},
		// String field: length-prefixed UTF-8, counted as framing.
		{&PublicKeyResp{Scheme: "plain"}, "00010a05706c61696e", 0},
		// Nested message: counters as a length-delimited wireRaw sub-body.
		{&CountsResp{Counts: costmodel.Raw{Encryptions: 3, BytesSent: 500}},
			"00010a05100640e807", 0},
		// IDs + pack factor + nested FaginStats, blob field absent.
		{&FaginCollectResp{PseudoIDs: []int{1}, PackFactor: 1, Stats: FaginStats{Rounds: 2}},
			"00010a020102180222020804", 0},
		// Adaptive/delta request flags: booleans encode as varint 1 when set
		// and are omitted when clear (legacy peers skip the unknown tags).
		{&EncryptAllReq{Query: 12, PackBits: 40, Delta: true, NoCache: true},
			"00010818105018022002", 0},
		{&AggregateCandidatesReq{Query: 4, PseudoIDs: []int{2, 1}, Adaptive: true, Delta: true},
			"00010808120302040118022002", 0},
		// Delta response: a withheld block rides as a 0-length blob
		// placeholder and its index appears in the CachedBlocks ID list.
		{&EncryptAllResp{PseudoIDs: []int{4, 9}, Ciphers: [][]byte{{0xaa}, {}}, PackFactor: 2,
			PackBits: 36, NeedBits: 33, CachedBlocks: []int{1}},
			"00010a0302080a12040201aa0018042048284232020102", 1},
		// Chunked response (tag 7): uvarint chunk count, each chunk its own
		// length-prefixed blob list; the flat Aggregated field stays absent.
		{&CollectAllResp{PseudoIDs: []int{2}, PackFactor: 2, PackBits: 36, PackAdds: 3,
			Chunked: [][][]byte{{{0xaa, 0xbb}}, {{0xcc}, {}}}},
			"00010a0201041804204828063a09020102aabb0201cc00", 3},
		// Cross-round cache counters ride the nested counters sub-body.
		{&CountsResp{Counts: costmodel.Raw{CacheHits: 2, CacheMisses: 1}},
			"00010a0450045802", 0},
		// Shard collect request, candidate pattern: query, delta-coded IDs,
		// dictated pack bits, then the delta/no-cache flags.
		{&ShardCollectReq{Query: 11, PseudoIDs: []int{6, 2}, PackBits: 24, Delta: true, NoCache: true},
			"000108161203020c07203028023002", 0},
		// BASE pattern: the All flag rides tag 3, the ID list is absent.
		{&ShardCollectReq{Query: 3, All: true, PackBits: 40},
			"0001080618022050", 0},
		// Shard root: IDs + blob list + uniform geometry + NeedBits maximum.
		{&ShardCollectResp{PseudoIDs: []int{0, 3}, Ciphers: [][]byte{{0xfe}, {0xff, 1}},
			PackFactor: 2, PackBits: 30, NeedBits: 26},
			"00010a0302000612060201fe02ff011804203c2834", 3},
	}
	bin := wire.Binary()
	for _, v := range vectors {
		want, err := hex.DecodeString(v.hex)
		if err != nil {
			t.Fatal(err)
		}
		raw, payload, err := wire.MarshalMeasured(bin, v.msg)
		if err != nil {
			t.Fatalf("%T: %v", v.msg, err)
		}
		if !bytes.Equal(raw, want) {
			t.Errorf("%T encodes as %x, golden vector is %s", v.msg, raw, v.hex)
		}
		if payload != v.payload {
			t.Errorf("%T payload = %d, want %d", v.msg, payload, v.payload)
		}
		// The vector must also decode back to the original message.
		back := reflect.New(reflect.TypeOf(v.msg).Elem()).Interface().(wire.Message)
		if err := bin.Unmarshal(want, back); err != nil {
			t.Fatalf("%T: decoding golden vector: %v", v.msg, err)
		}
		if !reflect.DeepEqual(v.msg, back) {
			t.Errorf("%T golden vector decodes to %+v, want %+v", v.msg, back, v.msg)
		}
	}
}

// TestWireRoundTripAllMessages round-trips every protocol message through
// both codecs and requires exact equality.
func TestWireRoundTripAllMessages(t *testing.T) {
	for _, codec := range []wire.Codec{wire.Gob(), wire.Binary()} {
		for _, msg := range allMessages() {
			raw, err := codec.Marshal(msg)
			if err != nil {
				t.Fatalf("%s %T: %v", codec.Name(), msg, err)
			}
			back := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(wire.Message)
			if err := codec.Unmarshal(raw, back); err != nil {
				t.Fatalf("%s %T: %v", codec.Name(), msg, err)
			}
			if !reflect.DeepEqual(msg, back) {
				t.Errorf("%s %T: round trip %+v -> %+v", codec.Name(), msg, back, msg)
			}
			// Sniffing must route the payload to the codec that produced it.
			detected, err := wire.Detect(raw)
			if err != nil {
				t.Fatalf("%s %T: detect: %v", codec.Name(), msg, err)
			}
			if detected.Name() != codec.Name() {
				t.Errorf("%s %T sniffed as %s", codec.Name(), msg, detected.Name())
			}
		}
	}
}

// TestMarshalMeasuredBreakdown checks the payload/framing split both codecs
// report: payload (blob content plus 8 bytes per float scalar) is a property
// of the message, identical across codecs, and never exceeds the encoding.
func TestMarshalMeasuredBreakdown(t *testing.T) {
	gob, bin := wire.Gob(), wire.Binary()
	for _, msg := range allMessages() {
		graw, gp, err := wire.MarshalMeasured(gob, msg)
		if err != nil {
			t.Fatal(err)
		}
		braw, bp, err := wire.MarshalMeasured(bin, msg)
		if err != nil {
			t.Fatal(err)
		}
		if gp != bp {
			t.Errorf("%T: payload differs across codecs: gob %d, binary %d", msg, gp, bp)
		}
		if bp < 0 || bp > int64(len(braw)) || gp > int64(len(graw)) {
			t.Errorf("%T: payload %d outside [0, len(raw)] (binary %d, gob %d bytes)",
				msg, bp, len(braw), len(graw))
		}
		// framing = len(raw) - payload; the binary envelope alone is 2 bytes.
		if int64(len(braw))-bp < 2 {
			t.Errorf("%T: binary framing %d < envelope size", msg, int64(len(braw))-bp)
		}
	}
}

// TestUnknownTagSkipped pins the forward-compatibility contract: a v1 decoder
// skips fields with tags it does not know and still decodes the rest.
func TestUnknownTagSkipped(t *testing.T) {
	// FaginCollectReq body with an unknown length-delimited tag-9 field
	// spliced between query and k.
	raw, _ := hex.DecodeString("0001" + "080e" + "4a03aabbcc" + "1014")
	var r FaginCollectReq
	if err := wire.Binary().Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	if r.Query != 7 || r.K != 10 || r.Batch != 0 {
		t.Fatalf("decoded %+v, want Query 7, K 10", r)
	}
}

func wireTestCluster(t *testing.T, pt *dataset.Partition, scheme, wireName string) *Cluster {
	t.Helper()
	cl, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition:   pt,
		Scheme:      scheme,
		KeyBits:     256,
		ShuffleSeed: 7,
		Batch:       8,
		Wire:        wireName,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestCodecSelectionIdentity is the refactor's core contract: for every
// protection scheme, a cluster speaking the compact binary codec produces the
// bit-identical similarity matrix and neighbour sets of a gob cluster. Only
// bytes on the wire may change.
func TestCodecSelectionIdentity(t *testing.T) {
	ctx := context.Background()
	for _, scheme := range []string{"paillier", "plain", "secagg", "dp"} {
		t.Run(scheme, func(t *testing.T) {
			_, pt := testPartition(t, "Bank", 40, 3)
			gc := wireTestCluster(t, pt, scheme, "gob")
			bc := wireTestCluster(t, pt, scheme, "binary")
			queries := []int{0, 13, 39}

			for _, variant := range []Variant{VariantBase, VariantFagin} {
				grep, err := gc.Leader.Similarities(ctx, queries, 3, variant)
				if err != nil {
					t.Fatal(err)
				}
				brep, err := bc.Leader.Similarities(ctx, queries, 3, variant)
				if err != nil {
					t.Fatal(err)
				}
				for i := range grep.W {
					for j := range grep.W[i] {
						if grep.W[i][j] != brep.W[i][j] {
							t.Fatalf("%s: W[%d][%d] differs across codecs: %v vs %v",
								variant, i, j, grep.W[i][j], brep.W[i][j])
						}
					}
				}
			}

			gq, err := gc.Leader.RunQuery(ctx, queries[1], 3, VariantFagin)
			if err != nil {
				t.Fatal(err)
			}
			bq, err := bc.Leader.RunQuery(ctx, queries[1], 3, VariantFagin)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(gq.Neighbors) != fmt.Sprint(bq.Neighbors) {
				t.Fatalf("neighbours differ across codecs: %v vs %v", gq.Neighbors, bq.Neighbors)
			}

			// Both sides committed the codec they were configured with.
			if got := bc.Leader.Negotiated(AggServerName); got != "binary" {
				t.Fatalf("binary leader negotiated %q with aggserver", got)
			}
			if got := gc.Leader.Negotiated(AggServerName); got != "gob" {
				t.Fatalf("gob leader negotiated %q with aggserver", got)
			}
		})
	}
}

// TestMixedCodecSelectionIdentity drops one gob-only party into an otherwise
// binary consortium: every caller negotiates down to gob for that peer,
// stays on binary for the rest, and the selection output is bit-identical to
// an all-gob cluster.
func TestMixedCodecSelectionIdentity(t *testing.T) {
	ctx := context.Background()
	_, pt := testPartition(t, "Bank", 40, 3)
	queries := []int{0, 13, 39}

	gc := wireTestCluster(t, pt, "paillier", "gob")
	mixed := wireTestCluster(t, pt, "paillier", "binary")
	mixed.Parties[1].SetCodec(wire.Gob()) // the legacy node

	for _, variant := range []Variant{VariantBase, VariantFagin} {
		grep, err := gc.Leader.Similarities(ctx, queries, 3, variant)
		if err != nil {
			t.Fatal(err)
		}
		mrep, err := mixed.Leader.Similarities(ctx, queries, 3, variant)
		if err != nil {
			t.Fatal(err)
		}
		for i := range grep.W {
			for j := range grep.W[i] {
				if grep.W[i][j] != mrep.W[i][j] {
					t.Fatalf("%s: W[%d][%d] differs in mixed cluster: %v vs %v",
						variant, i, j, grep.W[i][j], mrep.W[i][j])
				}
			}
		}
	}

	// Per-peer negotiation: binary towards binary peers, gob towards the
	// legacy party — on both roles that fan out to parties.
	for caller, want := range map[string]map[string]string{
		"leader": {AggServerName: "binary", PartyName(0): "binary", PartyName(1): "gob", PartyName(2): "binary"},
		"agg":    {PartyName(0): "binary", PartyName(1): "gob", PartyName(2): "binary"},
	} {
		for peer, codec := range want {
			var got string
			if caller == "leader" {
				got = mixed.Leader.Negotiated(peer)
			} else {
				got = mixed.Agg.Negotiated(peer)
			}
			if got != codec {
				t.Fatalf("%s negotiated %q with %s, want %q", caller, got, peer, codec)
			}
		}
	}
}

// TestNegotiationHandshake proves the three negotiation outcomes at the node
// level: binary↔binary commits v1, binary↔gob commits gob, and an envelope
// from a future version is rejected with the typed error, never misparsed.
func TestNegotiationHandshake(t *testing.T) {
	ctx := context.Background()
	_, pt := testPartition(t, "Bank", 20, 2)
	bc := wireTestCluster(t, pt, "plain", "binary")
	gc := wireTestCluster(t, pt, "plain", "gob")

	// binary ↔ binary: the hello ack commits v1.
	ack, err := bc.Transport.Call(ctx, PartyName(0), transport.MethodHello, wire.MarshalHello(wire.MaxVersion))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := wire.ParseHelloAck(ack); err != nil || v != 1 {
		t.Fatalf("binary party committed version %d (err %v), want 1", v, err)
	}

	// binary ↔ gob: a gob-configured node answers version 0 (gob).
	ack, err = gc.Transport.Call(ctx, PartyName(0), transport.MethodHello, wire.MarshalHello(wire.MaxVersion))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := wire.ParseHelloAck(ack); err != nil || v != 0 {
		t.Fatalf("gob party committed version %d (err %v), want 0", v, err)
	}

	// A future envelope (version 2) must be rejected with the typed error by
	// every role, whatever its configured codec.
	future := []byte{0x00, 0x02}
	for _, tc := range []struct {
		cl     *Cluster
		node   string
		method string
	}{
		{bc, PartyName(0), MethodEncryptAll},
		{bc, AggServerName, MethodCollectAll},
		{bc, KeyServerName, MethodPublicKey},
		{gc, PartyName(0), MethodEncryptAll},
	} {
		_, err := tc.cl.Transport.Call(ctx, tc.node, tc.method, future)
		var uv *wire.UnsupportedVersionError
		if !errors.As(err, &uv) {
			t.Fatalf("%s %s accepted future envelope: err = %v", tc.node, tc.method, err)
		}
		if uv.Version != 2 {
			t.Fatalf("%s reported version %d, want 2", tc.node, uv.Version)
		}
	}
}
