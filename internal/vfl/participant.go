package vfl

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"vfps/internal/costmodel"
	"vfps/internal/fixed"
	"vfps/internal/he"
	"vfps/internal/mat"
	"vfps/internal/obs"
	"vfps/internal/par"
	"vfps/internal/transport"
	"vfps/internal/wire"
)

// PartyName returns the canonical node name of participant p.
func PartyName(p int) string { return fmt.Sprintf("party/%d", p) }

// Participant is one data-holding organisation: it owns a vertical slice of
// the feature space for all N instances and serves partial-distance queries.
// All participants share the shuffle seed, so they agree on the pseudo-ID
// permutation without the servers ever learning it (identity security,
// §IV-C).
type Participant struct {
	roleObs
	roleCodec
	index  int
	x      *mat.Matrix // N × F_p local features
	scheme he.Scheme

	perm []int // original id -> pseudo id
	inv  []int // pseudo id -> original id

	counts      costmodel.Counts
	parallelism int // 0 → par.Degree(); 1 → fully serial encryption

	// deltaSent caches ciphertext blocks sent to the aggregator, keyed by
	// block identity; a hit reuses the cached bytes (skipping re-encryption)
	// and withholds the block from the wire. Sound because partial distances
	// are a pure function of (query, pseudo ID) over the static dataset.
	deltaSent deltaCache

	mu         sync.Mutex
	cache      map[int]*queryCache
	cacheOrder []int // FIFO eviction order
}

// cacheLimit bounds the per-participant query cache so concurrent query
// processing does not retain every query's distance vector.
const cacheLimit = 32

// queryCache holds the per-query artefacts that several protocol steps
// reuse: partial distances by original id and the ascending sub-ranking of
// pseudo IDs.
type queryCache struct {
	query     int
	dist      []float64 // by original id; query itself = +Inf sentinel, excluded from ranking
	sortedPid []int     // pseudo ids in ascending distance order (query excluded)
}

// NewParticipant constructs participant p over its local features.
// shuffleSeed must be identical across all participants of a consortium.
func NewParticipant(index int, x *mat.Matrix, scheme he.Scheme, shuffleSeed int64) (*Participant, error) {
	if x == nil || x.Rows == 0 || x.Cols == 0 {
		return nil, fmt.Errorf("vfl: participant %d has no data", index)
	}
	if scheme == nil {
		return nil, fmt.Errorf("vfl: participant %d has no HE scheme", index)
	}
	// Index-bound schemes are distributed as unbound templates; bind them so
	// pairwise masks take the right sign (secagg) or noise streams are
	// independent across participants (dp).
	switch s := scheme.(type) {
	case *he.SecAgg:
		bound, err := s.WithIndex(index)
		if err != nil {
			return nil, fmt.Errorf("vfl: participant %d: %w", index, err)
		}
		scheme = bound
	case *he.DP:
		bound, err := s.WithIndex(index)
		if err != nil {
			return nil, fmt.Errorf("vfl: participant %d: %w", index, err)
		}
		scheme = bound
	}
	n := x.Rows
	perm := rand.New(rand.NewSource(shuffleSeed)).Perm(n)
	inv := make([]int, n)
	for orig, pid := range perm {
		inv[pid] = orig
	}
	return &Participant{
		index:  index,
		x:      x,
		scheme: scheme,
		perm:   perm,
		inv:    inv,
		cache:  make(map[int]*queryCache),
	}, nil
}

// N returns the instance count.
func (p *Participant) N() int { return p.x.Rows }

// Features returns the local feature dimension F_p.
func (p *Participant) Features() int { return p.x.Cols }

// Counts exposes the participant's operation counters.
func (p *Participant) Counts() costmodel.Raw { return p.counts.Snapshot() }

// SetObserver installs metrics and tracing on the participant: distance and
// encryption spans plus cost-model gauges labelled {instance, role="party/i"}.
func (p *Participant) SetObserver(o *obs.Observer, instance string) {
	p.store(o)
	p.counts.Register(o.Registry(), instance, PartyName(p.index))
}

// SetCodec configures the participant's wire codec (gob by default).
// Responses always mirror the requester's codec; the setting bounds which
// inbound protocol versions are accepted.
func (p *Participant) SetCodec(c wire.Codec) { p.setCodec(c) }

// SetParallelism pins the participant's encryption concurrency: 1 restores
// the serial loop, <= 0 restores the default degree.
func (p *Participant) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	p.parallelism = n
}

// encryptValue protects one protocol value, using item-bound masking when
// the scheme requires it (SecAgg) and plain HE encryption otherwise.
func (p *Participant) encryptValue(domain byte, query, key int, v float64) ([]byte, error) {
	if cs, ok := p.scheme.(he.Contextual); ok {
		return cs.EncryptAt(domain, query, key, v)
	}
	return p.scheme.Encrypt(v)
}

// partEnc is the outcome of one encryption sweep: the wire vector (delta-
// withheld blocks as empty placeholders), the pack factor, the adaptive slot
// width actually used (0 = static geometry), the advertised magnitude bound
// for the next negotiation round, the withheld block indices, and how many
// ciphertexts were actually produced (cache hits skip the exponentiation).
type partEnc struct {
	ciphers   [][]byte
	factor    int
	packBits  int
	needBits  int
	cached    []int
	encrypted int
}

// encryptItems protects a vector of item-keyed protocol values. Contextual
// (mask-based) schemes are pure functions of (domain, query, key, value), so
// their items parallelise over the worker pool; a pack-enabled Paillier
// scheme slot-packs values per ciphertext — under the static EnablePacking
// geometry, or the dictated packBits-wide adaptive geometry when every local
// value fits it (otherwise it falls back to static and lets the advertised
// NeedBits lift the next round's negotiation); everything else goes through
// the scheme's own vector path (he.EncryptVec). With delta set, blocks whose
// bytes were already sent for this (query, geometry, pseudo-ID segment) are
// withheld from the wire and reported in cached; noCache forces a full
// resend after a receiver-side eviction. ctx is polled per chunk so a dead
// client stops the encryption sweep early.
func (p *Participant) encryptItems(ctx context.Context, query int, pids []int, vals []float64, packBits int, delta, noCache bool) (partEnc, error) {
	ctx, esp := p.tracer().Start(ctx, SpanEncrypt)
	esp.SetLabelInt("n", int64(len(pids)))
	defer esp.End()
	if cs, ok := p.scheme.(he.Contextual); ok {
		// Item-bound masks change per round by construction; neither adaptive
		// packing nor delta caching applies.
		out := make([][]byte, len(pids))
		err := par.For(ctx, len(pids), p.parallelism, func(i int) error {
			c, err := cs.EncryptAt(he.DomainItem, query, pids[i], vals[i])
			if err != nil {
				return err
			}
			out[i] = c
			return nil
		})
		if err != nil {
			return partEnc{}, err
		}
		return partEnc{ciphers: out, factor: 1, encrypted: len(out)}, nil
	}

	var packer *fixed.Packer
	var usedBits, needBits int
	pp, isPaillier := p.scheme.(*he.Paillier)
	if isPaillier && pp.PackFactor() > 1 {
		packer = pp.Packer()
		nb, err := pp.NeededPackBits(vals)
		if err != nil {
			return partEnc{}, err
		}
		needBits = int(nb)
		if packBits > 0 && needBits <= packBits {
			ap, err := pp.PackerFor(uint(packBits), pp.MaxPackAdds())
			if err != nil {
				return partEnc{}, err
			}
			packer, usedBits = ap, packBits
		}
	}
	factor := 1
	if packer != nil {
		factor = packer.Slots()
		esp.SetLabelInt("pack", int64(factor))
	}

	blocks := packedLen(len(vals), factor)
	var keys []string
	if delta {
		keys = blockKeys("agg", query, usedBits, factor, pids)
	}
	blobs := make([][]byte, blocks)
	var cachedIdx, encBlocks []int
	var encVals []float64
	for b := 0; b < blocks; b++ {
		if delta && !noCache {
			if blob, ok := p.deltaSent.get(keys[b]); ok {
				// Reuse the cached ciphertext bytes: encryption is randomized,
				// so re-encrypting would produce different bytes the receiver
				// cannot match. The reuse also skips the exponentiation.
				blobs[b] = blob
				cachedIdx = append(cachedIdx, b)
				continue
			}
		}
		encBlocks = append(encBlocks, b)
		lo := b * factor
		encVals = append(encVals, vals[lo:min(lo+factor, len(vals))]...)
	}
	if len(encBlocks) > 0 {
		var cs [][]byte
		var err error
		if packer != nil {
			// Concatenating uncached blocks keeps packing valid: only the
			// globally last block can be partial, and it is encrypted last.
			cs, err = pp.EncryptPackedWith(ctx, packer, encVals)
		} else {
			cs, err = he.EncryptVec(ctx, p.scheme, encVals)
		}
		if err != nil {
			return partEnc{}, err
		}
		if len(cs) != len(encBlocks) {
			return partEnc{}, fmt.Errorf("vfl: party %d packed %d blocks, want %d", p.index, len(cs), len(encBlocks))
		}
		for i, b := range encBlocks {
			blobs[b] = cs[i]
			if delta {
				p.deltaSent.put(keys[b], cs[i])
			}
		}
		// The burst just drained up to len(cs) pooled randomizers; hint the
		// pool to refill through the idle gap while the leader aggregates, so
		// the next round's encryptions hit the precomputed fast path again.
		he.Hint(p.scheme, len(cs))
	}
	out := blobs
	if len(cachedIdx) > 0 {
		// The wire copy carries empty placeholders for withheld blocks; blobs
		// keeps the full vector so the cache refresh above stays intact.
		out = make([][]byte, blocks)
		copy(out, blobs)
		for _, b := range cachedIdx {
			out[b] = nil
		}
	}
	return partEnc{
		ciphers:   out,
		factor:    factor,
		packBits:  usedBits,
		needBits:  needBits,
		cached:    cachedIdx,
		encrypted: len(encBlocks),
	}, nil
}

// distances returns the cached per-query artefacts, computing them on first
// use. The query itself is excluded from the ranking (a KNN query drawn from
// the dataset is its own 0-distance neighbour).
func (p *Participant) distances(ctx context.Context, query int) (*queryCache, error) {
	if query < 0 || query >= p.N() {
		return nil, fmt.Errorf("vfl: query %d out of range [0,%d)", query, p.N())
	}
	p.mu.Lock()
	if qc, ok := p.cache[query]; ok {
		p.mu.Unlock()
		return qc, nil
	}
	p.mu.Unlock()
	// Compute outside the lock so concurrent queries for different samples
	// proceed in parallel; a rare duplicate computation is harmless.
	_, dsp := p.tracer().Start(ctx, SpanDistances)
	dsp.SetLabelInt("party", int64(p.index))
	defer dsp.End()
	n := p.N()
	qRow := p.x.Row(query)
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		if i == query {
			continue
		}
		dist[i] = mat.SqDist(qRow, p.x.Row(i))
	}
	p.counts.Add(costmodel.Raw{DistanceFlops: int64((n - 1) * p.x.Cols)})
	ranking := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != query {
			ranking = append(ranking, i)
		}
	}
	sort.Slice(ranking, func(a, b int) bool {
		i, j := ranking[a], ranking[b]
		if dist[i] != dist[j] {
			return dist[i] < dist[j]
		}
		// Tie-break on pseudo id so all parties and the servers see a
		// consistent order without leaking original ids.
		return p.perm[i] < p.perm[j]
	})
	pids := make([]int, len(ranking))
	for r, orig := range ranking {
		pids[r] = p.perm[orig]
	}
	qc := &queryCache{query: query, dist: dist, sortedPid: pids}
	p.mu.Lock()
	defer p.mu.Unlock()
	if existing, ok := p.cache[query]; ok {
		return existing, nil // another goroutine won the race
	}
	if len(p.cacheOrder) >= cacheLimit {
		oldest := p.cacheOrder[0]
		p.cacheOrder = p.cacheOrder[1:]
		delete(p.cache, oldest)
	}
	p.cache[query] = qc
	p.cacheOrder = append(p.cacheOrder, query)
	return qc, nil
}

// Handler returns the participant's RPC handler. Requests are decoded with
// the codec they arrived in (bounded by the configured codec's version) and
// responses mirror it, so one participant can serve gob and binary callers
// side by side.
func (p *Participant) Handler() transport.Handler {
	return func(ctx context.Context, method string, req []byte) ([]byte, error) {
		if method == transport.MethodHello {
			return wire.HandleHello(req, p.codec().Version())
		}
		codec, err := p.reqCodec(req)
		if err != nil {
			return nil, err
		}
		switch method {
		case MethodRankingBatch:
			var r RankingBatchReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return p.rankingBatch(ctx, codec, r)
		case MethodEncryptAll:
			var r EncryptAllReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return p.encryptAll(ctx, codec, r)
		case MethodEncryptCandidates:
			var r EncryptCandidatesReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return p.encryptCandidates(ctx, codec, r)
		case MethodEncryptRankScore:
			var r EncryptRankScoreReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return p.encryptRankScore(ctx, codec, r)
		case MethodNeighborSum:
			var r NeighborSumReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return p.neighborSum(ctx, codec, r)
		case MethodCounts:
			return codec.Marshal(&CountsResp{Counts: p.counts.Snapshot()})
		case MethodResetCounts:
			p.counts.Reset()
			return nil, nil
		default:
			return nil, fmt.Errorf("%w: %s", transport.ErrUnknownMethod, method)
		}
	}
}

func (p *Participant) rankingBatch(ctx context.Context, codec wire.Codec, r RankingBatchReq) ([]byte, error) {
	if r.Count <= 0 {
		return nil, fmt.Errorf("vfl: ranking batch count %d must be positive", r.Count)
	}
	qc, err := p.distances(ctx, r.Query)
	if err != nil {
		return nil, err
	}
	if r.Offset < 0 || r.Offset > len(qc.sortedPid) {
		return nil, fmt.Errorf("vfl: ranking offset %d out of range", r.Offset)
	}
	end := r.Offset + r.Count
	if end > len(qc.sortedPid) {
		end = len(qc.sortedPid)
	}
	batch := qc.sortedPid[r.Offset:end]
	return reply(codec, &RankingBatchResp{PseudoIDs: batch}, &p.counts, &p.roleObs,
		costmodel.Raw{ItemsSent: int64(len(batch)), Messages: 1})
}

func (p *Participant) encryptAll(ctx context.Context, codec wire.Codec, r EncryptAllReq) ([]byte, error) {
	qc, err := p.distances(ctx, r.Query)
	if err != nil {
		return nil, err
	}
	n := p.N()
	queryPid := p.perm[r.Query]
	pids := make([]int, 0, n-1)
	vals := make([]float64, 0, n-1)
	for pid := 0; pid < n; pid++ {
		if pid == queryPid {
			continue
		}
		pids = append(pids, pid)
		vals = append(vals, qc.dist[p.inv[pid]])
	}
	enc, err := p.encryptItems(ctx, r.Query, pids, vals, r.PackBits, r.Delta, r.NoCache)
	if err != nil {
		return nil, fmt.Errorf("vfl: party %d encrypting: %w", p.index, err)
	}
	// Counters reflect actual work and wire traffic: packing drops the
	// exponentiation and ciphertext counts by the pack factor, delta hits skip
	// both the exponentiation and the wire, and reply charges the bytes as
	// actually encoded.
	return reply(codec, &EncryptAllResp{
		PseudoIDs: pids, Ciphers: enc.ciphers, PackFactor: enc.factor,
		PackBits: enc.packBits, NeedBits: enc.needBits, CachedBlocks: enc.cached,
	}, &p.counts, &p.roleObs, costmodel.Raw{
		Encryptions: int64(enc.encrypted),
		ItemsSent:   int64(len(enc.ciphers) - len(enc.cached)),
		Messages:    1,
	})
}

func (p *Participant) encryptCandidates(ctx context.Context, codec wire.Codec, r EncryptCandidatesReq) ([]byte, error) {
	qc, err := p.distances(ctx, r.Query)
	if err != nil {
		return nil, err
	}
	queryPid := p.perm[r.Query]
	vals := make([]float64, len(r.PseudoIDs))
	for i, pid := range r.PseudoIDs {
		if pid < 0 || pid >= p.N() || pid == queryPid {
			return nil, fmt.Errorf("vfl: candidate pseudo id %d invalid", pid)
		}
		vals[i] = qc.dist[p.inv[pid]]
	}
	enc, err := p.encryptItems(ctx, r.Query, r.PseudoIDs, vals, r.PackBits, r.Delta, r.NoCache)
	if err != nil {
		return nil, fmt.Errorf("vfl: party %d encrypting candidate: %w", p.index, err)
	}
	return reply(codec, &EncryptCandidatesResp{
		Ciphers: enc.ciphers, PackFactor: enc.factor,
		PackBits: enc.packBits, NeedBits: enc.needBits, CachedBlocks: enc.cached,
	}, &p.counts, &p.roleObs, costmodel.Raw{
		Encryptions: int64(enc.encrypted),
		ItemsSent:   int64(len(enc.ciphers) - len(enc.cached)),
		Messages:    1,
	})
}

func (p *Participant) encryptRankScore(ctx context.Context, codec wire.Codec, r EncryptRankScoreReq) ([]byte, error) {
	qc, err := p.distances(ctx, r.Query)
	if err != nil {
		return nil, err
	}
	if r.Rank < 0 {
		return nil, fmt.Errorf("vfl: rank %d must be non-negative", r.Rank)
	}
	rank := r.Rank
	if rank >= len(qc.sortedPid) {
		rank = len(qc.sortedPid) - 1
	}
	// The mask key is the *requested* rank: every party is asked the same
	// rank in a TA round, so their masks cancel at aggregation even when the
	// effective rank was clamped.
	c, err := p.encryptValue(he.DomainRank, r.Query, r.Rank, qc.dist[p.inv[qc.sortedPid[rank]]])
	if err != nil {
		return nil, fmt.Errorf("vfl: party %d encrypting frontier: %w", p.index, err)
	}
	he.Hint(p.scheme, 1) // TA rounds repeat; keep the pool topped up between them
	return reply(codec, &EncryptRankScoreResp{Cipher: c}, &p.counts, &p.roleObs,
		costmodel.Raw{Encryptions: 1, ItemsSent: 1, Messages: 1})
}

func (p *Participant) neighborSum(ctx context.Context, codec wire.Codec, r NeighborSumReq) ([]byte, error) {
	qc, err := p.distances(ctx, r.Query)
	if err != nil {
		return nil, err
	}
	queryPid := p.perm[r.Query]
	var sum float64
	for _, pid := range r.PseudoIDs {
		if pid < 0 || pid >= p.N() || pid == queryPid {
			return nil, fmt.Errorf("vfl: neighbour pseudo id %d invalid", pid)
		}
		sum += qc.dist[p.inv[pid]]
	}
	return reply(codec, &NeighborSumResp{Sum: sum}, &p.counts, &p.roleObs,
		costmodel.Raw{PlainAdds: int64(len(r.PseudoIDs)), ItemsSent: 1, Messages: 1})
}
