// Package vfl implements the vertical-federated-learning runtime of the
// paper's §IV: the three system roles (key server, aggregation server,
// participants with one leader), the vertical KNN oracle in both the
// baseline variant (encrypt all N partial distances per query) and the
// Fagin-optimized variant (encrypt candidates only), pseudo-ID shuffling for
// identity security, and per-role operation accounting for the cost model.
//
// Message flow per query q (optimized variant, Fig. 3):
//
//	leader ──FaginCollect──▶ aggregation server
//	   agg ──RankingBatch──▶ each participant   (Step ①–②, mini-batches)
//	   agg runs Fagin until k ids seen in all lists (Step ③)
//	   agg ──EncryptCandidates──▶ each participant (Step ④)
//	   agg homomorphically sums the candidate ciphertexts (Step ⑤)
//	leader decrypts candidate totals, picks the k nearest T (Step ⑥)
//	leader ──NeighborSum(T)──▶ each participant (Step ⑦)
//	leader computes w_q(p1,p2) from the returned d^p_T (Step ⑧)
package vfl

import (
	"vfps/internal/costmodel"
	"vfps/internal/wire"
)

// Node names used by both the in-memory cluster and cmd/vfpsnode.
const (
	KeyServerName = "keyserver"
	AggServerName = "aggserver"
)

// Method names served by the roles.
const (
	// Key server.
	MethodPublicKey  = "key.public"
	MethodPrivateKey = "key.private"

	// Participants.
	MethodRankingBatch      = "party.rankingBatch"
	MethodEncryptAll        = "party.encryptAll"
	MethodEncryptCandidates = "party.encryptCandidates"
	MethodNeighborSum       = "party.neighborSum"
	MethodCounts            = "node.counts"
	MethodResetCounts       = "node.resetCounts"

	// Aggregation server.
	MethodCollectAll          = "agg.collectAll"
	MethodFaginCollect        = "agg.faginCollect"
	MethodAggregateCandidates = "agg.aggregateCandidates"
	MethodAggregateFrontier   = "agg.aggregateFrontier"

	// Aggregation worker (coordinator → shard worker, see shard.go).
	MethodShardCollect = "agg.shardCollect"

	// Participant methods used only by the Threshold-Algorithm variant.
	MethodEncryptRankScore = "party.encryptRankScore"
)

// PublicKeyResp carries the protection-scheme choice plus its key material:
// the serialised public key for Paillier, or the consortium masking
// parameters for secagg.
type PublicKeyResp struct {
	Scheme   string  // "paillier", "plain", "secagg" or "dp"
	Key      []byte  // Paillier public key; nil otherwise
	Parties  int     // secagg consortium size
	MaskSeed int64   // secagg masking seed / dp noise seed
	Epsilon  float64 // dp privacy parameters
	Delta    float64
}

// PrivateKeyResp carries the serialised private key to the leader.
type PrivateKeyResp struct {
	Scheme   string
	Key      []byte
	Parties  int
	MaskSeed int64
	Epsilon  float64
	Delta    float64
}

// RankingBatchReq asks a participant for the next mini-batch of its
// ascending-distance sub-ranking for a query.
type RankingBatchReq struct {
	Query  int // original instance id of the query sample
	Offset int // rank offset into the sorted list
	Count  int // mini-batch size b
}

// RankingBatchResp returns pseudo IDs in ascending partial-distance order.
type RankingBatchResp struct {
	PseudoIDs []int
}

// EncryptAllReq asks for encrypted partial distances of every instance
// (except the query itself), the VFPS-SM-BASE access pattern.
//
// PackBits > 0 dictates the adaptive slot width (per-value magnitude bound,
// in bits) the party must pack under — negotiated from the NeedBits the
// parties advertised last round. 0 keeps the static EnablePacking geometry.
// Delta asks the party to withhold ciphertext blocks the aggregator already
// caches from an earlier round; NoCache forces a full resend (the cache-miss
// recovery path).
type EncryptAllReq struct {
	Query    int
	PackBits int
	Delta    bool
	NoCache  bool
}

// EncryptAllResp returns ciphertexts aligned with ascending pseudo IDs.
// PackFactor > 1 means each ciphertext carries that many consecutive values
// (slot packing; the last one partially filled), so len(Ciphers) is
// ceil(len(PseudoIDs)/PackFactor). 0 or 1 means one value per ciphertext —
// the pre-packing wire format, which old peers emit implicitly via gob's
// zero-value defaulting.
//
// PackBits echoes the adaptive slot width the ciphertexts were packed under
// (0 = static geometry). NeedBits advertises the smallest slot width this
// party's values would fit, feeding the aggregator's next-round negotiation.
// CachedBlocks lists indices into the full ciphertext vector that were
// withheld because the receiver caches them (the corresponding Ciphers
// entries are empty placeholders).
type EncryptAllResp struct {
	PseudoIDs    []int
	Ciphers      [][]byte
	PackFactor   int
	PackBits     int
	NeedBits     int
	CachedBlocks []int
}

// EncryptCandidatesReq asks for encrypted partial distances of the given
// candidate pseudo IDs only (the Fagin-pruned set). PackBits, Delta and
// NoCache behave as in EncryptAllReq.
type EncryptCandidatesReq struct {
	Query     int
	PseudoIDs []int
	PackBits  int
	Delta     bool
	NoCache   bool
}

// EncryptCandidatesResp returns ciphertexts aligned with the request order
// (slot-packed when PackFactor > 1; PackBits, NeedBits and CachedBlocks as in
// EncryptAllResp).
type EncryptCandidatesResp struct {
	Ciphers      [][]byte
	PackFactor   int
	PackBits     int
	NeedBits     int
	CachedBlocks []int
}

// NeighborSumReq asks for d^p_T = Σ_{t∈T} d^p_t over the pseudo IDs of the
// query's k nearest neighbours.
type NeighborSumReq struct {
	Query     int
	PseudoIDs []int
}

// NeighborSumResp returns the plaintext partial-distance sum.
type NeighborSumResp struct {
	Sum float64
}

// CountsResp returns a node's operation counters.
type CountsResp struct {
	Counts costmodel.Raw
}

// EncryptRankScoreReq asks a participant to encrypt the partial distance of
// the instance at the given rank of its sorted list (the TA scan frontier).
// Ranks past the end of the list clamp to the last entry.
type EncryptRankScoreReq struct {
	Query int
	Rank  int
}

// EncryptRankScoreResp returns the frontier ciphertext.
type EncryptRankScoreResp struct {
	Cipher []byte
}

// AggregateCandidatesReq asks the aggregation server to collect and
// homomorphically sum the parties' encrypted partial distances for specific
// pseudo IDs (TA random-access phase). Adaptive lets the aggregator negotiate
// the slot width with the parties; Delta enables cross-round ciphertext
// caching on the leader link; NoCache forces a full resend.
type AggregateCandidatesReq struct {
	Query     int
	PseudoIDs []int
	Adaptive  bool
	Delta     bool
	NoCache   bool
}

// AggregateCandidatesResp returns aggregated ciphertexts aligned with the
// request order (slot-packed when PackFactor > 1, see EncryptAllResp).
// PackBits reports the adaptive slot width in effect (0 = static); PackAdds
// the aggregation depth the leader must unpack under; CachedBlocks the
// withheld indices as in EncryptAllResp.
type AggregateCandidatesResp struct {
	Aggregated   [][]byte
	PackFactor   int
	PackBits     int
	PackAdds     int
	CachedBlocks []int
}

// AggregateFrontierReq asks the aggregation server for the encrypted TA
// threshold: the sum over parties of each party's score at the given rank.
type AggregateFrontierReq struct {
	Query int
	Rank  int
}

// AggregateFrontierResp returns the aggregated threshold ciphertext.
type AggregateFrontierResp struct {
	Cipher []byte
}

// CollectAllReq drives the BASE variant for one query. ChunkBytes > 0 asks
// for the aggregated vector chunk-framed at roughly that content size per
// chunk (v1 codecs only; gob peers always get whole-blob framing). Adaptive,
// Delta and NoCache behave as in AggregateCandidatesReq.
type CollectAllReq struct {
	Query      int
	ChunkBytes int
	Adaptive   bool
	Delta      bool
	NoCache    bool
}

// CollectAllResp returns the homomorphically aggregated complete distances
// for every pseudo ID (slot-packed when PackFactor > 1, see EncryptAllResp;
// PackBits/PackAdds/CachedBlocks as in AggregateCandidatesResp). When the
// request asked for chunk framing and the codec supports it, the vector rides
// Chunked instead of Aggregated.
type CollectAllResp struct {
	PseudoIDs    []int
	Aggregated   [][]byte
	PackFactor   int
	PackBits     int
	PackAdds     int
	CachedBlocks []int
	Chunked      [][][]byte
}

// FaginCollectReq drives the optimized variant for one query. ChunkBytes,
// Adaptive, Delta and NoCache behave as in CollectAllReq.
type FaginCollectReq struct {
	Query      int
	K          int
	Batch      int
	ChunkBytes int
	Adaptive   bool
	Delta      bool
	NoCache    bool
}

// ShardCollectReq asks one aggregation worker to collect its shard's party
// vectors and tree-reduce them locally (see shard.go for the subtree-cut
// argument). All selects the BASE access pattern (full vectors, pseudo IDs in
// the response) over the candidate pattern (PseudoIDs echoes the request
// order). PackBits dictates the slot width exactly as in EncryptAllReq — the
// coordinator owns the adaptive negotiation, workers only relay the dictated
// geometry. Delta/NoCache tune the worker↔party links as in EncryptAllReq.
type ShardCollectReq struct {
	Query     int
	PseudoIDs []int
	All       bool
	PackBits  int
	Delta     bool
	NoCache   bool
}

// ShardCollectResp returns one shard's locally reduced ciphertext vector.
// PseudoIDs is set in All mode only; PackFactor/PackBits echo the uniform
// geometry of the shard's parties and NeedBits advertises the shard maximum,
// feeding the coordinator's negotiation exactly as a single party would.
type ShardCollectResp struct {
	PseudoIDs  []int
	Ciphers    [][]byte
	PackFactor int
	PackBits   int
	NeedBits   int
}

// packedLen returns how many ciphertexts carry n values at the given pack
// factor: ceil(n/factor), with 0 and 1 both meaning one value per ciphertext.
func packedLen(n, packFactor int) int {
	if packFactor <= 1 {
		return n
	}
	return (n + packFactor - 1) / packFactor
}

// normFactor maps the wire encoding of an absent pack factor (gob zero value
// from pre-packing peers) to the explicit unpacked factor 1.
func normFactor(f int) int {
	if f <= 1 {
		return 1
	}
	return f
}

// FaginStats reports the pruning achieved by the top-k phase for one query.
type FaginStats struct {
	Rounds     int
	ScanDepth  int
	Candidates int
}

// FaginCollectResp returns aggregated complete distances for the candidate
// set only (slot-packed when PackFactor > 1, see EncryptAllResp; the payload
// extension fields as in CollectAllResp).
type FaginCollectResp struct {
	PseudoIDs    []int
	Aggregated   [][]byte
	PackFactor   int
	Stats        FaginStats
	PackBits     int
	PackAdds     int
	CachedBlocks []int
	Chunked      [][][]byte
}

// ---- wire codec layouts --------------------------------------------------
//
// Every message carries explicit MarshalWire/UnmarshalWire methods pinning
// its v1 binary layout (see internal/wire for the field grammar and
// golden_test.go for byte-level vectors). Tags are append-only: new fields
// take fresh tags so v1 peers skip them, exactly how PackFactor rode on gob's
// zero-value defaulting before. Absent fields decode as zero, which the
// normFactor/packedLen helpers already normalise.

// MarshalWire implements wire.Message. 1: scheme, 2: key, 3: parties,
// 4: maskSeed, 5: epsilon, 6: delta.
func (m *PublicKeyResp) MarshalWire(e *wire.Encoder) {
	e.String(1, m.Scheme)
	e.Bytes(2, m.Key)
	e.Int(3, int64(m.Parties))
	e.Int(4, m.MaskSeed)
	e.Float(5, m.Epsilon)
	e.Float(6, m.Delta)
}

// UnmarshalWire implements wire.Message.
func (m *PublicKeyResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Scheme = d.String()
		case 2:
			m.Key = d.Bytes()
		case 3:
			m.Parties = int(d.Int())
		case 4:
			m.MaskSeed = d.Int()
		case 5:
			m.Epsilon = d.Float()
		case 6:
			m.Delta = d.Float()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message; same layout as PublicKeyResp.
func (m *PrivateKeyResp) MarshalWire(e *wire.Encoder) {
	(*PublicKeyResp)(m).MarshalWire(e)
}

// UnmarshalWire implements wire.Message.
func (m *PrivateKeyResp) UnmarshalWire(d *wire.Decoder) error {
	return (*PublicKeyResp)(m).UnmarshalWire(d)
}

// MarshalWire implements wire.Message. 1: query, 2: offset, 3: count.
func (m *RankingBatchReq) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Query))
	e.Int(2, int64(m.Offset))
	e.Int(3, int64(m.Count))
}

// UnmarshalWire implements wire.Message.
func (m *RankingBatchReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Query = int(d.Int())
		case 2:
			m.Offset = int(d.Int())
		case 3:
			m.Count = int(d.Int())
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: pseudo IDs (delta block).
func (m *RankingBatchResp) MarshalWire(e *wire.Encoder) { e.IDs(1, m.PseudoIDs) }

// UnmarshalWire implements wire.Message.
func (m *RankingBatchResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			m.PseudoIDs = d.IDs()
		}
	}
	return d.Err()
}

// boolField encodes a flag as an omitted-when-false varint 1, so legacy
// messages stay byte-identical and legacy peers skip the tag.
func boolField(e *wire.Encoder, tag int, v bool) {
	if v {
		e.Int(tag, 1)
	}
}

// MarshalWire implements wire.Message. 1: query, 2: pack bits, 3: delta,
// 4: no-cache.
func (m *EncryptAllReq) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Query))
	e.Int(2, int64(m.PackBits))
	boolField(e, 3, m.Delta)
	boolField(e, 4, m.NoCache)
}

// UnmarshalWire implements wire.Message.
func (m *EncryptAllReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Query = int(d.Int())
		case 2:
			m.PackBits = int(d.Int())
		case 3:
			m.Delta = d.Int() != 0
		case 4:
			m.NoCache = d.Int() != 0
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: pseudo IDs, 2: ciphertext blocks,
// 3: pack factor, 4: pack bits, 5: need bits, 6: cached block indices.
func (m *EncryptAllResp) MarshalWire(e *wire.Encoder) {
	e.IDs(1, m.PseudoIDs)
	e.Blobs(2, m.Ciphers)
	e.Int(3, int64(m.PackFactor))
	e.Int(4, int64(m.PackBits))
	e.Int(5, int64(m.NeedBits))
	e.IDs(6, m.CachedBlocks)
}

// UnmarshalWire implements wire.Message.
func (m *EncryptAllResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.PseudoIDs = d.IDs()
		case 2:
			m.Ciphers = d.Blobs()
		case 3:
			m.PackFactor = int(d.Int())
		case 4:
			m.PackBits = int(d.Int())
		case 5:
			m.NeedBits = int(d.Int())
		case 6:
			m.CachedBlocks = d.IDs()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: query, 2: pseudo IDs, 3: pack bits,
// 4: delta, 5: no-cache.
func (m *EncryptCandidatesReq) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Query))
	e.IDs(2, m.PseudoIDs)
	e.Int(3, int64(m.PackBits))
	boolField(e, 4, m.Delta)
	boolField(e, 5, m.NoCache)
}

// UnmarshalWire implements wire.Message.
func (m *EncryptCandidatesReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Query = int(d.Int())
		case 2:
			m.PseudoIDs = d.IDs()
		case 3:
			m.PackBits = int(d.Int())
		case 4:
			m.Delta = d.Int() != 0
		case 5:
			m.NoCache = d.Int() != 0
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: ciphertext blocks, 2: pack factor,
// 3: pack bits, 4: need bits, 5: cached block indices.
func (m *EncryptCandidatesResp) MarshalWire(e *wire.Encoder) {
	e.Blobs(1, m.Ciphers)
	e.Int(2, int64(m.PackFactor))
	e.Int(3, int64(m.PackBits))
	e.Int(4, int64(m.NeedBits))
	e.IDs(5, m.CachedBlocks)
}

// UnmarshalWire implements wire.Message.
func (m *EncryptCandidatesResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Ciphers = d.Blobs()
		case 2:
			m.PackFactor = int(d.Int())
		case 3:
			m.PackBits = int(d.Int())
		case 4:
			m.NeedBits = int(d.Int())
		case 5:
			m.CachedBlocks = d.IDs()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: query, 2: pseudo IDs.
func (m *NeighborSumReq) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Query))
	e.IDs(2, m.PseudoIDs)
}

// UnmarshalWire implements wire.Message.
func (m *NeighborSumReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Query = int(d.Int())
		case 2:
			m.PseudoIDs = d.IDs()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: sum (fixed64, bit-exact).
func (m *NeighborSumResp) MarshalWire(e *wire.Encoder) { e.Float(1, m.Sum) }

// UnmarshalWire implements wire.Message.
func (m *NeighborSumResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			m.Sum = d.Float()
		}
	}
	return d.Err()
}

// wireRaw pins costmodel.Raw's nested wire layout without coupling costmodel
// to the codec. 1: flops, 2: enc, 3: dec, 4: cadd, 5: padd, 6: items,
// 7: msgs, 8: bytes, 9: framing (framing was added with the codec itself, so
// v1 defines it from the start), 10: cache hits, 11: cache misses.
type wireRaw costmodel.Raw

func (r *wireRaw) MarshalWire(e *wire.Encoder) {
	e.Int(1, r.DistanceFlops)
	e.Int(2, r.Encryptions)
	e.Int(3, r.Decryptions)
	e.Int(4, r.CipherAdds)
	e.Int(5, r.PlainAdds)
	e.Int(6, r.ItemsSent)
	e.Int(7, r.Messages)
	e.Int(8, r.BytesSent)
	e.Int(9, r.FramingBytes)
	e.Int(10, r.CacheHits)
	e.Int(11, r.CacheMisses)
}

func (r *wireRaw) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.DistanceFlops = d.Int()
		case 2:
			r.Encryptions = d.Int()
		case 3:
			r.Decryptions = d.Int()
		case 4:
			r.CipherAdds = d.Int()
		case 5:
			r.PlainAdds = d.Int()
		case 6:
			r.ItemsSent = d.Int()
		case 7:
			r.Messages = d.Int()
		case 8:
			r.BytesSent = d.Int()
		case 9:
			r.FramingBytes = d.Int()
		case 10:
			r.CacheHits = d.Int()
		case 11:
			r.CacheMisses = d.Int()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: counts (nested wireRaw).
func (m *CountsResp) MarshalWire(e *wire.Encoder) { e.Msg(1, (*wireRaw)(&m.Counts)) }

// UnmarshalWire implements wire.Message.
func (m *CountsResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			d.Msg((*wireRaw)(&m.Counts))
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: query, 2: rank.
func (m *EncryptRankScoreReq) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Query))
	e.Int(2, int64(m.Rank))
}

// UnmarshalWire implements wire.Message.
func (m *EncryptRankScoreReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Query = int(d.Int())
		case 2:
			m.Rank = int(d.Int())
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: ciphertext.
func (m *EncryptRankScoreResp) MarshalWire(e *wire.Encoder) { e.Bytes(1, m.Cipher) }

// UnmarshalWire implements wire.Message.
func (m *EncryptRankScoreResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			m.Cipher = d.Bytes()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: query, 2: pseudo IDs, 3: adaptive,
// 4: delta, 5: no-cache.
func (m *AggregateCandidatesReq) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Query))
	e.IDs(2, m.PseudoIDs)
	boolField(e, 3, m.Adaptive)
	boolField(e, 4, m.Delta)
	boolField(e, 5, m.NoCache)
}

// UnmarshalWire implements wire.Message.
func (m *AggregateCandidatesReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Query = int(d.Int())
		case 2:
			m.PseudoIDs = d.IDs()
		case 3:
			m.Adaptive = d.Int() != 0
		case 4:
			m.Delta = d.Int() != 0
		case 5:
			m.NoCache = d.Int() != 0
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: aggregated blocks, 2: pack factor,
// 3: pack bits, 4: pack adds, 5: cached block indices.
func (m *AggregateCandidatesResp) MarshalWire(e *wire.Encoder) {
	e.Blobs(1, m.Aggregated)
	e.Int(2, int64(m.PackFactor))
	e.Int(3, int64(m.PackBits))
	e.Int(4, int64(m.PackAdds))
	e.IDs(5, m.CachedBlocks)
}

// UnmarshalWire implements wire.Message.
func (m *AggregateCandidatesResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Aggregated = d.Blobs()
		case 2:
			m.PackFactor = int(d.Int())
		case 3:
			m.PackBits = int(d.Int())
		case 4:
			m.PackAdds = int(d.Int())
		case 5:
			m.CachedBlocks = d.IDs()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: query, 2: rank.
func (m *AggregateFrontierReq) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Query))
	e.Int(2, int64(m.Rank))
}

// UnmarshalWire implements wire.Message.
func (m *AggregateFrontierReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Query = int(d.Int())
		case 2:
			m.Rank = int(d.Int())
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: ciphertext.
func (m *AggregateFrontierResp) MarshalWire(e *wire.Encoder) { e.Bytes(1, m.Cipher) }

// UnmarshalWire implements wire.Message.
func (m *AggregateFrontierResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			m.Cipher = d.Bytes()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: query, 2: chunk bytes, 3: adaptive,
// 4: delta, 5: no-cache.
func (m *CollectAllReq) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Query))
	e.Int(2, int64(m.ChunkBytes))
	boolField(e, 3, m.Adaptive)
	boolField(e, 4, m.Delta)
	boolField(e, 5, m.NoCache)
}

// UnmarshalWire implements wire.Message.
func (m *CollectAllReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Query = int(d.Int())
		case 2:
			m.ChunkBytes = int(d.Int())
		case 3:
			m.Adaptive = d.Int() != 0
		case 4:
			m.Delta = d.Int() != 0
		case 5:
			m.NoCache = d.Int() != 0
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: pseudo IDs, 2: aggregated blocks,
// 3: pack factor, 4: pack bits, 5: pack adds, 6: cached block indices,
// 7: chunk-framed blocks.
func (m *CollectAllResp) MarshalWire(e *wire.Encoder) {
	e.IDs(1, m.PseudoIDs)
	e.Blobs(2, m.Aggregated)
	e.Int(3, int64(m.PackFactor))
	e.Int(4, int64(m.PackBits))
	e.Int(5, int64(m.PackAdds))
	e.IDs(6, m.CachedBlocks)
	e.Chunks(7, m.Chunked)
}

// UnmarshalWire implements wire.Message.
func (m *CollectAllResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.PseudoIDs = d.IDs()
		case 2:
			m.Aggregated = d.Blobs()
		case 3:
			m.PackFactor = int(d.Int())
		case 4:
			m.PackBits = int(d.Int())
		case 5:
			m.PackAdds = int(d.Int())
		case 6:
			m.CachedBlocks = d.IDs()
		case 7:
			m.Chunked = d.Chunks()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: query, 2: k, 3: batch, 4: chunk
// bytes, 5: adaptive, 6: delta, 7: no-cache.
func (m *FaginCollectReq) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Query))
	e.Int(2, int64(m.K))
	e.Int(3, int64(m.Batch))
	e.Int(4, int64(m.ChunkBytes))
	boolField(e, 5, m.Adaptive)
	boolField(e, 6, m.Delta)
	boolField(e, 7, m.NoCache)
}

// UnmarshalWire implements wire.Message.
func (m *FaginCollectReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Query = int(d.Int())
		case 2:
			m.K = int(d.Int())
		case 3:
			m.Batch = int(d.Int())
		case 4:
			m.ChunkBytes = int(d.Int())
		case 5:
			m.Adaptive = d.Int() != 0
		case 6:
			m.Delta = d.Int() != 0
		case 7:
			m.NoCache = d.Int() != 0
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: rounds, 2: scan depth,
// 3: candidates.
func (m *FaginStats) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Rounds))
	e.Int(2, int64(m.ScanDepth))
	e.Int(3, int64(m.Candidates))
}

// UnmarshalWire implements wire.Message.
func (m *FaginStats) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Rounds = int(d.Int())
		case 2:
			m.ScanDepth = int(d.Int())
		case 3:
			m.Candidates = int(d.Int())
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: pseudo IDs, 2: aggregated blocks,
// 3: pack factor, 4: Fagin stats (nested), 5: pack bits, 6: pack adds,
// 7: cached block indices, 8: chunk-framed blocks.
func (m *FaginCollectResp) MarshalWire(e *wire.Encoder) {
	e.IDs(1, m.PseudoIDs)
	e.Blobs(2, m.Aggregated)
	e.Int(3, int64(m.PackFactor))
	e.Msg(4, &m.Stats)
	e.Int(5, int64(m.PackBits))
	e.Int(6, int64(m.PackAdds))
	e.IDs(7, m.CachedBlocks)
	e.Chunks(8, m.Chunked)
}

// UnmarshalWire implements wire.Message.
func (m *FaginCollectResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.PseudoIDs = d.IDs()
		case 2:
			m.Aggregated = d.Blobs()
		case 3:
			m.PackFactor = int(d.Int())
		case 4:
			d.Msg(&m.Stats)
		case 5:
			m.PackBits = int(d.Int())
		case 6:
			m.PackAdds = int(d.Int())
		case 7:
			m.CachedBlocks = d.IDs()
		case 8:
			m.Chunked = d.Chunks()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: query, 2: pseudo IDs, 3: all,
// 4: pack bits, 5: delta, 6: no-cache.
func (m *ShardCollectReq) MarshalWire(e *wire.Encoder) {
	e.Int(1, int64(m.Query))
	e.IDs(2, m.PseudoIDs)
	boolField(e, 3, m.All)
	e.Int(4, int64(m.PackBits))
	boolField(e, 5, m.Delta)
	boolField(e, 6, m.NoCache)
}

// UnmarshalWire implements wire.Message.
func (m *ShardCollectReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.Query = int(d.Int())
		case 2:
			m.PseudoIDs = d.IDs()
		case 3:
			m.All = d.Int() != 0
		case 4:
			m.PackBits = int(d.Int())
		case 5:
			m.Delta = d.Int() != 0
		case 6:
			m.NoCache = d.Int() != 0
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Message. 1: pseudo IDs, 2: ciphertext blocks,
// 3: pack factor, 4: pack bits, 5: need bits.
func (m *ShardCollectResp) MarshalWire(e *wire.Encoder) {
	e.IDs(1, m.PseudoIDs)
	e.Blobs(2, m.Ciphers)
	e.Int(3, int64(m.PackFactor))
	e.Int(4, int64(m.PackBits))
	e.Int(5, int64(m.NeedBits))
}

// UnmarshalWire implements wire.Message.
func (m *ShardCollectResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			m.PseudoIDs = d.IDs()
		case 2:
			m.Ciphers = d.Blobs()
		case 3:
			m.PackFactor = int(d.Int())
		case 4:
			m.PackBits = int(d.Int())
		case 5:
			m.NeedBits = int(d.Int())
		}
	}
	return d.Err()
}
