// Package vfl implements the vertical-federated-learning runtime of the
// paper's §IV: the three system roles (key server, aggregation server,
// participants with one leader), the vertical KNN oracle in both the
// baseline variant (encrypt all N partial distances per query) and the
// Fagin-optimized variant (encrypt candidates only), pseudo-ID shuffling for
// identity security, and per-role operation accounting for the cost model.
//
// Message flow per query q (optimized variant, Fig. 3):
//
//	leader ──FaginCollect──▶ aggregation server
//	   agg ──RankingBatch──▶ each participant   (Step ①–②, mini-batches)
//	   agg runs Fagin until k ids seen in all lists (Step ③)
//	   agg ──EncryptCandidates──▶ each participant (Step ④)
//	   agg homomorphically sums the candidate ciphertexts (Step ⑤)
//	leader decrypts candidate totals, picks the k nearest T (Step ⑥)
//	leader ──NeighborSum(T)──▶ each participant (Step ⑦)
//	leader computes w_q(p1,p2) from the returned d^p_T (Step ⑧)
package vfl

import (
	"vfps/internal/costmodel"
)

// Node names used by both the in-memory cluster and cmd/vfpsnode.
const (
	KeyServerName = "keyserver"
	AggServerName = "aggserver"
)

// Method names served by the roles.
const (
	// Key server.
	MethodPublicKey  = "key.public"
	MethodPrivateKey = "key.private"

	// Participants.
	MethodRankingBatch      = "party.rankingBatch"
	MethodEncryptAll        = "party.encryptAll"
	MethodEncryptCandidates = "party.encryptCandidates"
	MethodNeighborSum       = "party.neighborSum"
	MethodCounts            = "node.counts"
	MethodResetCounts       = "node.resetCounts"

	// Aggregation server.
	MethodCollectAll          = "agg.collectAll"
	MethodFaginCollect        = "agg.faginCollect"
	MethodAggregateCandidates = "agg.aggregateCandidates"
	MethodAggregateFrontier   = "agg.aggregateFrontier"

	// Participant methods used only by the Threshold-Algorithm variant.
	MethodEncryptRankScore = "party.encryptRankScore"
)

// PublicKeyResp carries the protection-scheme choice plus its key material:
// the serialised public key for Paillier, or the consortium masking
// parameters for secagg.
type PublicKeyResp struct {
	Scheme   string  // "paillier", "plain", "secagg" or "dp"
	Key      []byte  // Paillier public key; nil otherwise
	Parties  int     // secagg consortium size
	MaskSeed int64   // secagg masking seed / dp noise seed
	Epsilon  float64 // dp privacy parameters
	Delta    float64
}

// PrivateKeyResp carries the serialised private key to the leader.
type PrivateKeyResp struct {
	Scheme   string
	Key      []byte
	Parties  int
	MaskSeed int64
	Epsilon  float64
	Delta    float64
}

// RankingBatchReq asks a participant for the next mini-batch of its
// ascending-distance sub-ranking for a query.
type RankingBatchReq struct {
	Query  int // original instance id of the query sample
	Offset int // rank offset into the sorted list
	Count  int // mini-batch size b
}

// RankingBatchResp returns pseudo IDs in ascending partial-distance order.
type RankingBatchResp struct {
	PseudoIDs []int
}

// EncryptAllReq asks for encrypted partial distances of every instance
// (except the query itself), the VFPS-SM-BASE access pattern.
type EncryptAllReq struct {
	Query int
}

// EncryptAllResp returns ciphertexts aligned with ascending pseudo IDs.
// PackFactor > 1 means each ciphertext carries that many consecutive values
// (slot packing; the last one partially filled), so len(Ciphers) is
// ceil(len(PseudoIDs)/PackFactor). 0 or 1 means one value per ciphertext —
// the pre-packing wire format, which old peers emit implicitly via gob's
// zero-value defaulting.
type EncryptAllResp struct {
	PseudoIDs  []int
	Ciphers    [][]byte
	PackFactor int
}

// EncryptCandidatesReq asks for encrypted partial distances of the given
// candidate pseudo IDs only (the Fagin-pruned set).
type EncryptCandidatesReq struct {
	Query     int
	PseudoIDs []int
}

// EncryptCandidatesResp returns ciphertexts aligned with the request order
// (slot-packed when PackFactor > 1, see EncryptAllResp).
type EncryptCandidatesResp struct {
	Ciphers    [][]byte
	PackFactor int
}

// NeighborSumReq asks for d^p_T = Σ_{t∈T} d^p_t over the pseudo IDs of the
// query's k nearest neighbours.
type NeighborSumReq struct {
	Query     int
	PseudoIDs []int
}

// NeighborSumResp returns the plaintext partial-distance sum.
type NeighborSumResp struct {
	Sum float64
}

// CountsResp returns a node's operation counters.
type CountsResp struct {
	Counts costmodel.Raw
}

// EncryptRankScoreReq asks a participant to encrypt the partial distance of
// the instance at the given rank of its sorted list (the TA scan frontier).
// Ranks past the end of the list clamp to the last entry.
type EncryptRankScoreReq struct {
	Query int
	Rank  int
}

// EncryptRankScoreResp returns the frontier ciphertext.
type EncryptRankScoreResp struct {
	Cipher []byte
}

// AggregateCandidatesReq asks the aggregation server to collect and
// homomorphically sum the parties' encrypted partial distances for specific
// pseudo IDs (TA random-access phase).
type AggregateCandidatesReq struct {
	Query     int
	PseudoIDs []int
}

// AggregateCandidatesResp returns aggregated ciphertexts aligned with the
// request order (slot-packed when PackFactor > 1, see EncryptAllResp).
type AggregateCandidatesResp struct {
	Aggregated [][]byte
	PackFactor int
}

// AggregateFrontierReq asks the aggregation server for the encrypted TA
// threshold: the sum over parties of each party's score at the given rank.
type AggregateFrontierReq struct {
	Query int
	Rank  int
}

// AggregateFrontierResp returns the aggregated threshold ciphertext.
type AggregateFrontierResp struct {
	Cipher []byte
}

// CollectAllReq drives the BASE variant for one query.
type CollectAllReq struct {
	Query int
}

// CollectAllResp returns the homomorphically aggregated complete distances
// for every pseudo ID (slot-packed when PackFactor > 1, see EncryptAllResp).
type CollectAllResp struct {
	PseudoIDs  []int
	Aggregated [][]byte
	PackFactor int
}

// FaginCollectReq drives the optimized variant for one query.
type FaginCollectReq struct {
	Query int
	K     int
	Batch int
}

// packedLen returns how many ciphertexts carry n values at the given pack
// factor: ceil(n/factor), with 0 and 1 both meaning one value per ciphertext.
func packedLen(n, packFactor int) int {
	if packFactor <= 1 {
		return n
	}
	return (n + packFactor - 1) / packFactor
}

// normFactor maps the wire encoding of an absent pack factor (gob zero value
// from pre-packing peers) to the explicit unpacked factor 1.
func normFactor(f int) int {
	if f <= 1 {
		return 1
	}
	return f
}

// FaginStats reports the pruning achieved by the top-k phase for one query.
type FaginStats struct {
	Rounds     int
	ScanDepth  int
	Candidates int
}

// FaginCollectResp returns aggregated complete distances for the candidate
// set only (slot-packed when PackFactor > 1, see EncryptAllResp).
type FaginCollectResp struct {
	PseudoIDs  []int
	Aggregated [][]byte
	PackFactor int
	Stats      FaginStats
}
