package vfl

import (
	"context"
	"fmt"

	"vfps/internal/costmodel"
	"vfps/internal/he"
	"vfps/internal/transport"
)

// AggServer is the aggregation server role: it merges the participants'
// sub-rankings with Fagin's algorithm and homomorphically sums encrypted
// partial distances. It never holds the private key, so it only ever sees
// pseudo IDs and ciphertexts.
type AggServer struct {
	caller  transport.Caller
	parties []string // node names of the participants
	scheme  he.Scheme
	counts  costmodel.Counts
}

// NewAggServer wires the server to its participants through the given
// transport. scheme must be the public (encrypt/add) scheme.
func NewAggServer(caller transport.Caller, parties []string, scheme he.Scheme) (*AggServer, error) {
	if caller == nil {
		return nil, fmt.Errorf("vfl: aggregation server needs a transport")
	}
	if len(parties) == 0 {
		return nil, fmt.Errorf("vfl: aggregation server needs participants")
	}
	if scheme == nil {
		return nil, fmt.Errorf("vfl: aggregation server needs an HE scheme")
	}
	return &AggServer{caller: caller, parties: parties, scheme: scheme}, nil
}

// Counts exposes the server's operation counters.
func (a *AggServer) Counts() costmodel.Raw { return a.counts.Snapshot() }

// Handler returns the server's RPC handler.
func (a *AggServer) Handler() transport.Handler {
	return func(ctx context.Context, method string, req []byte) ([]byte, error) {
		switch method {
		case MethodCollectAll:
			var r CollectAllReq
			if err := transport.DecodeGob(req, &r); err != nil {
				return nil, err
			}
			return a.collectAll(ctx, r)
		case MethodFaginCollect:
			var r FaginCollectReq
			if err := transport.DecodeGob(req, &r); err != nil {
				return nil, err
			}
			return a.faginCollect(ctx, r)
		case MethodAggregateCandidates:
			var r AggregateCandidatesReq
			if err := transport.DecodeGob(req, &r); err != nil {
				return nil, err
			}
			agg, err := a.aggregateCandidates(ctx, r.Query, r.PseudoIDs)
			if err != nil {
				return nil, err
			}
			a.counts.Add(costmodel.Raw{
				ItemsSent: int64(len(agg)),
				BytesSent: int64(len(agg) * a.scheme.CiphertextSize()),
				Messages:  1,
			})
			return transport.EncodeGob(AggregateCandidatesResp{Aggregated: agg})
		case MethodAggregateFrontier:
			var r AggregateFrontierReq
			if err := transport.DecodeGob(req, &r); err != nil {
				return nil, err
			}
			return a.aggregateFrontier(ctx, r)
		case MethodCounts:
			return transport.EncodeGob(CountsResp{Counts: a.counts.Snapshot()})
		case MethodResetCounts:
			a.counts.Reset()
			return nil, nil
		default:
			return nil, fmt.Errorf("%w: %s", transport.ErrUnknownMethod, method)
		}
	}
}

// aggregateCandidates pulls every party's encrypted partial distances for
// the given pseudo IDs and sums them element-wise.
func (a *AggServer) aggregateCandidates(ctx context.Context, query int, pseudoIDs []int) ([][]byte, error) {
	var agg [][]byte
	for pi, party := range a.parties {
		raw, err := a.caller.Call(ctx, party, MethodEncryptCandidates,
			mustGob(EncryptCandidatesReq{Query: query, PseudoIDs: pseudoIDs}))
		if err != nil {
			return nil, fmt.Errorf("vfl: collecting candidates from %s: %w", party, err)
		}
		var resp EncryptCandidatesResp
		if err := transport.DecodeGob(raw, &resp); err != nil {
			return nil, err
		}
		if len(resp.Ciphers) != len(pseudoIDs) {
			return nil, fmt.Errorf("vfl: %s returned %d ciphertexts, want %d", party, len(resp.Ciphers), len(pseudoIDs))
		}
		if pi == 0 {
			agg = resp.Ciphers
			continue
		}
		for i := range agg {
			sum, err := a.scheme.Add(agg[i], resp.Ciphers[i])
			if err != nil {
				return nil, fmt.Errorf("vfl: aggregating candidates: %w", err)
			}
			agg[i] = sum
		}
		a.counts.Add(costmodel.Raw{CipherAdds: int64(len(agg))})
	}
	return agg, nil
}

// aggregateFrontier sums the parties' encrypted scores at one scan rank —
// the encrypted Threshold-Algorithm bound τ.
func (a *AggServer) aggregateFrontier(ctx context.Context, r AggregateFrontierReq) ([]byte, error) {
	var acc []byte
	for pi, party := range a.parties {
		raw, err := a.caller.Call(ctx, party, MethodEncryptRankScore,
			mustGob(EncryptRankScoreReq{Query: r.Query, Rank: r.Rank}))
		if err != nil {
			return nil, fmt.Errorf("vfl: frontier from %s: %w", party, err)
		}
		var resp EncryptRankScoreResp
		if err := transport.DecodeGob(raw, &resp); err != nil {
			return nil, err
		}
		if pi == 0 {
			acc = resp.Cipher
			continue
		}
		sum, err := a.scheme.Add(acc, resp.Cipher)
		if err != nil {
			return nil, fmt.Errorf("vfl: aggregating frontier: %w", err)
		}
		acc = sum
		a.counts.Add(costmodel.Raw{CipherAdds: 1})
	}
	a.counts.Add(costmodel.Raw{
		ItemsSent: 1,
		BytesSent: int64(a.scheme.CiphertextSize()),
		Messages:  1,
	})
	return transport.EncodeGob(AggregateFrontierResp{Cipher: acc})
}

// collectAll implements the BASE variant: pull every participant's full
// encrypted partial-distance vector and sum them per pseudo ID.
func (a *AggServer) collectAll(ctx context.Context, r CollectAllReq) ([]byte, error) {
	var pids []int
	var agg [][]byte
	for pi, party := range a.parties {
		raw, err := a.caller.Call(ctx, party, MethodEncryptAll, mustGob(EncryptAllReq{Query: r.Query}))
		if err != nil {
			return nil, fmt.Errorf("vfl: collecting from %s: %w", party, err)
		}
		var resp EncryptAllResp
		if err := transport.DecodeGob(raw, &resp); err != nil {
			return nil, err
		}
		if pi == 0 {
			pids = resp.PseudoIDs
			agg = resp.Ciphers
			continue
		}
		if len(resp.PseudoIDs) != len(pids) {
			return nil, fmt.Errorf("vfl: %s returned %d items, want %d", party, len(resp.PseudoIDs), len(pids))
		}
		for i := range pids {
			if resp.PseudoIDs[i] != pids[i] {
				return nil, fmt.Errorf("vfl: %s pseudo-id order mismatch at %d", party, i)
			}
			sum, err := a.scheme.Add(agg[i], resp.Ciphers[i])
			if err != nil {
				return nil, fmt.Errorf("vfl: aggregating: %w", err)
			}
			agg[i] = sum
		}
		a.counts.Add(costmodel.Raw{CipherAdds: int64(len(pids))})
	}
	a.counts.Add(costmodel.Raw{
		ItemsSent: int64(len(agg)),
		BytesSent: int64(len(agg) * a.scheme.CiphertextSize()),
		Messages:  1,
	})
	return transport.EncodeGob(CollectAllResp{PseudoIDs: pids, Aggregated: agg})
}

// faginCollect implements the optimized variant: run Fagin's algorithm over
// the participants' sub-rankings (pulled in mini-batches), then collect and
// aggregate encrypted partial distances for the candidate set only.
func (a *AggServer) faginCollect(ctx context.Context, r FaginCollectReq) ([]byte, error) {
	if r.K <= 0 {
		return nil, fmt.Errorf("vfl: k=%d must be positive", r.K)
	}
	if r.Batch <= 0 {
		return nil, fmt.Errorf("vfl: batch=%d must be positive", r.Batch)
	}
	p := len(a.parties)
	seenCount := map[int]int{}
	var candidates []int // in first-seen order
	fullySeen := 0
	depth := 0
	stats := FaginStats{}
	for fullySeen < r.K {
		// Pull the next mini-batch from every list in parallel ranks.
		exhausted := true
		for _, party := range a.parties {
			raw, err := a.caller.Call(ctx, party, MethodRankingBatch,
				mustGob(RankingBatchReq{Query: r.Query, Offset: depth, Count: r.Batch}))
			if err != nil {
				return nil, fmt.Errorf("vfl: pulling ranking from %s: %w", party, err)
			}
			var resp RankingBatchResp
			if err := transport.DecodeGob(raw, &resp); err != nil {
				return nil, err
			}
			if len(resp.PseudoIDs) > 0 {
				exhausted = false
			}
			for _, pid := range resp.PseudoIDs {
				c := seenCount[pid]
				if c == 0 {
					candidates = append(candidates, pid)
				}
				seenCount[pid] = c + 1
				if c+1 == p {
					fullySeen++
				}
			}
			a.counts.Add(costmodel.Raw{PlainAdds: int64(len(resp.PseudoIDs))})
		}
		stats.Rounds++
		depth += r.Batch
		if exhausted {
			if fullySeen < r.K {
				return nil, fmt.Errorf("vfl: lists exhausted with only %d of %d ids fully seen", fullySeen, r.K)
			}
			break
		}
	}
	stats.ScanDepth = depth
	stats.Candidates = len(candidates)

	// Random-access phase: encrypted partial distances for candidates only.
	agg, err := a.aggregateCandidates(ctx, r.Query, candidates)
	if err != nil {
		return nil, err
	}
	a.counts.Add(costmodel.Raw{
		ItemsSent: int64(len(agg)),
		BytesSent: int64(len(agg) * a.scheme.CiphertextSize()),
		Messages:  1,
	})
	return transport.EncodeGob(FaginCollectResp{PseudoIDs: candidates, Aggregated: agg, Stats: stats})
}

// mustGob encodes a value that cannot fail (our message structs); a failure
// is a programming error.
func mustGob(v any) []byte {
	b, err := transport.EncodeGob(v)
	if err != nil {
		panic(fmt.Sprintf("vfl: encoding %T: %v", v, err))
	}
	return b
}
