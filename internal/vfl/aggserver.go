package vfl

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"vfps/internal/costmodel"
	"vfps/internal/he"
	"vfps/internal/obs"
	"vfps/internal/par"
	"vfps/internal/transport"
	"vfps/internal/wire"
)

// AggServer is the aggregation server role: it merges the participants'
// sub-rankings with Fagin's algorithm and homomorphically sums encrypted
// partial distances. It never holds the private key, so it only ever sees
// pseudo IDs and ciphertexts.
//
// Party requests fan out concurrently (indexed result slots keep pseudo-ID
// ordering and error precedence identical to the serial implementation) and
// ciphertext vectors are tree-reduced with a chunked worker pool; see
// SetParallelism.
type AggServer struct {
	roleObs
	roleCodec
	caller      transport.Caller
	cc          atomic.Pointer[transport.CodecCaller]
	parties     []string // node names of the participants
	scheme      he.Scheme
	counts      costmodel.Counts
	parallelism int // 0 → par.Degree(); 1 → fully serial
}

// NewAggServer wires the server to its participants through the given
// transport. scheme must be the public (encrypt/add) scheme.
func NewAggServer(caller transport.Caller, parties []string, scheme he.Scheme) (*AggServer, error) {
	if caller == nil {
		return nil, fmt.Errorf("vfl: aggregation server needs a transport")
	}
	if len(parties) == 0 {
		return nil, fmt.Errorf("vfl: aggregation server needs participants")
	}
	if scheme == nil {
		return nil, fmt.Errorf("vfl: aggregation server needs an HE scheme")
	}
	a := &AggServer{caller: caller, parties: parties, scheme: scheme}
	a.cc.Store(transport.NewCodecCaller(caller, wire.Gob()))
	return a, nil
}

// SetCodec configures the codec the server prefers for its own calls to the
// participants (negotiated down per peer when a participant only speaks gob)
// and bounds which inbound protocol versions it accepts. Responses always
// mirror the requester's codec.
func (a *AggServer) SetCodec(c wire.Codec) {
	a.setCodec(c)
	a.cc.Store(transport.NewCodecCaller(a.caller, a.codec()))
}

// Negotiated reports the codec name in use towards one participant ("" before
// the first call reaches that peer).
func (a *AggServer) Negotiated(party string) string { return a.cc.Load().Negotiated(party) }

// call performs one outbound RPC through the negotiated codec and charges the
// encoded request/response bytes to the server's counters. The Messages
// counter stays responder-side, so round trips are not double-counted.
func (a *AggServer) call(ctx context.Context, node, method string, req, resp wire.Message) error {
	stats, err := a.cc.Load().Invoke(ctx, node, method, req, resp)
	a.counts.Add(costmodel.Raw{BytesSent: stats.Payload, FramingBytes: stats.Framing})
	a.recordWire(stats.Codec, stats.Payload, stats.Framing)
	return err
}

// SetParallelism pins the server's concurrency: 1 restores the serial party
// loop and serial reduction (the determinism baseline), <= 0 restores the
// default degree. Results are identical at every setting; only wall-clock
// time changes.
func (a *AggServer) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	a.parallelism = n
}

// Counts exposes the server's operation counters.
func (a *AggServer) Counts() costmodel.Raw { return a.counts.Snapshot() }

// SetObserver installs metrics and tracing on the server: aggregation-phase
// spans and cost-model gauges labelled {instance, role="aggserver"}.
func (a *AggServer) SetObserver(o *obs.Observer, instance string) {
	a.store(o)
	a.counts.Register(o.Registry(), instance, AggServerName)
}

// Handler returns the server's RPC handler. Requests are decoded with the
// codec they arrived in (bounded by the configured codec's version) and
// responses mirror it.
func (a *AggServer) Handler() transport.Handler {
	return func(ctx context.Context, method string, req []byte) ([]byte, error) {
		if method == transport.MethodHello {
			return wire.HandleHello(req, a.codec().Version())
		}
		codec, err := a.reqCodec(req)
		if err != nil {
			return nil, err
		}
		switch method {
		case MethodCollectAll:
			var r CollectAllReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return a.collectAll(ctx, codec, r)
		case MethodFaginCollect:
			var r FaginCollectReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return a.faginCollect(ctx, codec, r)
		case MethodAggregateCandidates:
			var r AggregateCandidatesReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			agg, factor, err := a.aggregateCandidates(ctx, r.Query, r.PseudoIDs)
			if err != nil {
				return nil, err
			}
			return reply(codec, &AggregateCandidatesResp{Aggregated: agg, PackFactor: factor},
				&a.counts, &a.roleObs, costmodel.Raw{ItemsSent: int64(len(agg)), Messages: 1})
		case MethodAggregateFrontier:
			var r AggregateFrontierReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return a.aggregateFrontier(ctx, codec, r)
		case MethodCounts:
			return codec.Marshal(&CountsResp{Counts: a.counts.Snapshot()})
		case MethodResetCounts:
			a.counts.Reset()
			return nil, nil
		default:
			return nil, fmt.Errorf("%w: %s", transport.ErrUnknownMethod, method)
		}
	}
}

// fanOut runs fn once per party, concurrently unless parallelism is pinned
// to 1. Results land in caller-provided indexed slots, so ordering is
// independent of completion order; the lowest-indexed party's error wins,
// matching the serial loop's error precedence.
func (a *AggServer) fanOut(ctx context.Context, fn func(pi int, party string) error) error {
	if a.parallelism == 1 {
		for pi, party := range a.parties {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(pi, party); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(a.parties))
	var wg sync.WaitGroup
	for pi, party := range a.parties {
		wg.Add(1)
		go func(pi int, party string) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[pi] = err
				return
			}
			errs[pi] = fn(pi, party)
		}(pi, party)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// reduceVectors tree-reduces the per-party ciphertext vectors element-wise
// into vecs[0]: pairwise combination over the party dimension with the
// element loop spread over the worker pool. The reduction shape is fixed by
// party index, so results do not depend on the parallelism setting. It
// charges the performed CipherAdds — (P−1)·len, exactly what the serial
// left fold performed.
func (a *AggServer) reduceVectors(ctx context.Context, vecs [][][]byte) ([][]byte, error) {
	p := len(vecs)
	if p == 1 {
		return vecs[0], nil
	}
	ctx, rsp := a.tracer().Start(ctx, SpanReduce)
	rsp.SetLabelInt("n", int64(len(vecs[0])))
	defer rsp.End()
	adds := 0
	for span := 1; span < p; span *= 2 {
		for lo := 0; lo+span < p; lo += 2 * span {
			left, right := vecs[lo], vecs[lo+span]
			err := par.For(ctx, len(left), a.parallelism, func(i int) error {
				sum, err := a.scheme.Add(left[i], right[i])
				if err != nil {
					return fmt.Errorf("vfl: aggregating: %w", err)
				}
				left[i] = sum
				return nil
			})
			if err != nil {
				return nil, err
			}
			adds += len(left)
		}
	}
	a.counts.Add(costmodel.Raw{CipherAdds: int64(adds)})
	return vecs[0], nil
}

// aggregateCandidates pulls every party's encrypted partial distances for
// the given pseudo IDs concurrently and sums them element-wise. When the
// parties slot-pack, every party must use the same pack factor — slotwise
// addition is only meaningful over identical layouts — and the factor is
// returned for the response.
func (a *AggServer) aggregateCandidates(ctx context.Context, query int, pseudoIDs []int) ([][]byte, int, error) {
	ctx, asp := a.tracer().Start(ctx, SpanAggregate)
	asp.SetLabelInt("candidates", int64(len(pseudoIDs)))
	defer asp.End()
	vecs := make([][][]byte, len(a.parties))
	factors := make([]int, len(a.parties))
	err := a.fanOut(ctx, func(pi int, party string) error {
		var resp EncryptCandidatesResp
		if err := a.call(ctx, party, MethodEncryptCandidates,
			&EncryptCandidatesReq{Query: query, PseudoIDs: pseudoIDs}, &resp); err != nil {
			return fmt.Errorf("vfl: collecting candidates from %s: %w", party, err)
		}
		factors[pi] = normFactor(resp.PackFactor)
		if want := packedLen(len(pseudoIDs), factors[pi]); len(resp.Ciphers) != want {
			return fmt.Errorf("vfl: %s returned %d ciphertexts, want %d", party, len(resp.Ciphers), want)
		}
		vecs[pi] = resp.Ciphers
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	factor, err := a.uniformFactor(factors)
	if err != nil {
		return nil, 0, err
	}
	agg, err := a.reduceVectors(ctx, vecs)
	if err != nil {
		return nil, 0, err
	}
	return agg, factor, nil
}

// uniformFactor checks that all parties reported the same pack factor.
func (a *AggServer) uniformFactor(factors []int) (int, error) {
	factor := factors[0]
	for pi, f := range factors {
		if f != factor {
			return 0, fmt.Errorf("vfl: %s pack factor %d differs from %s's %d — inconsistent packing configuration",
				a.parties[pi], f, a.parties[0], factor)
		}
	}
	return factor, nil
}

// aggregateFrontier sums the parties' encrypted scores at one scan rank —
// the encrypted Threshold-Algorithm bound τ.
func (a *AggServer) aggregateFrontier(ctx context.Context, codec wire.Codec, r AggregateFrontierReq) ([]byte, error) {
	ctx, fsp := a.tracer().Start(ctx, SpanFrontier)
	defer fsp.End()
	singles := make([][][]byte, len(a.parties))
	err := a.fanOut(ctx, func(pi int, party string) error {
		var resp EncryptRankScoreResp
		if err := a.call(ctx, party, MethodEncryptRankScore,
			&EncryptRankScoreReq{Query: r.Query, Rank: r.Rank}, &resp); err != nil {
			return fmt.Errorf("vfl: frontier from %s: %w", party, err)
		}
		singles[pi] = [][]byte{resp.Cipher}
		return nil
	})
	if err != nil {
		return nil, err
	}
	agg, err := a.reduceVectors(ctx, singles)
	if err != nil {
		return nil, fmt.Errorf("vfl: aggregating frontier: %w", err)
	}
	return reply(codec, &AggregateFrontierResp{Cipher: agg[0]}, &a.counts, &a.roleObs,
		costmodel.Raw{ItemsSent: 1, Messages: 1})
}

// collectAll implements the BASE variant: pull every participant's full
// encrypted partial-distance vector concurrently and sum them per pseudo ID.
func (a *AggServer) collectAll(ctx context.Context, codec wire.Codec, r CollectAllReq) ([]byte, error) {
	ctx, csp := a.tracer().Start(ctx, SpanCollectAll)
	defer csp.End()
	pidSets := make([][]int, len(a.parties))
	vecs := make([][][]byte, len(a.parties))
	factors := make([]int, len(a.parties))
	err := a.fanOut(ctx, func(pi int, party string) error {
		var resp EncryptAllResp
		if err := a.call(ctx, party, MethodEncryptAll, &EncryptAllReq{Query: r.Query}, &resp); err != nil {
			return fmt.Errorf("vfl: collecting from %s: %w", party, err)
		}
		factors[pi] = normFactor(resp.PackFactor)
		if want := packedLen(len(resp.PseudoIDs), factors[pi]); len(resp.Ciphers) != want {
			return fmt.Errorf("vfl: %s returned %d ciphertexts for %d items, want %d",
				party, len(resp.Ciphers), len(resp.PseudoIDs), want)
		}
		pidSets[pi] = resp.PseudoIDs
		vecs[pi] = resp.Ciphers
		return nil
	})
	if err != nil {
		return nil, err
	}
	pids := pidSets[0]
	for pi := 1; pi < len(a.parties); pi++ {
		if len(pidSets[pi]) != len(pids) {
			return nil, fmt.Errorf("vfl: %s returned %d items, want %d", a.parties[pi], len(pidSets[pi]), len(pids))
		}
		for i := range pids {
			if pidSets[pi][i] != pids[i] {
				return nil, fmt.Errorf("vfl: %s pseudo-id order mismatch at %d", a.parties[pi], i)
			}
		}
	}
	factor, err := a.uniformFactor(factors)
	if err != nil {
		return nil, err
	}
	agg, err := a.reduceVectors(ctx, vecs)
	if err != nil {
		return nil, err
	}
	return reply(codec, &CollectAllResp{PseudoIDs: pids, Aggregated: agg, PackFactor: factor},
		&a.counts, &a.roleObs, costmodel.Raw{ItemsSent: int64(len(agg)), Messages: 1})
}

// faginCollect implements the optimized variant: run Fagin's algorithm over
// the participants' sub-rankings (pulled in mini-batches, all parties in
// flight concurrently), then collect and aggregate encrypted partial
// distances for the candidate set only.
func (a *AggServer) faginCollect(ctx context.Context, codec wire.Codec, r FaginCollectReq) ([]byte, error) {
	if r.K <= 0 {
		return nil, fmt.Errorf("vfl: k=%d must be positive", r.K)
	}
	if r.Batch <= 0 {
		return nil, fmt.Errorf("vfl: batch=%d must be positive", r.Batch)
	}
	ctx, fsp := a.tracer().Start(ctx, SpanFagin)
	defer fsp.End()
	p := len(a.parties)
	seenCount := map[int]int{}
	var candidates []int // in first-seen order
	fullySeen := 0
	depth := 0
	stats := FaginStats{}
	for fullySeen < r.K {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Pull the next mini-batch from every list concurrently; merge the
		// indexed responses in party order so the candidate first-seen order
		// is identical to the serial scan.
		batches := make([][]int, p)
		err := a.fanOut(ctx, func(pi int, party string) error {
			var resp RankingBatchResp
			if err := a.call(ctx, party, MethodRankingBatch,
				&RankingBatchReq{Query: r.Query, Offset: depth, Count: r.Batch}, &resp); err != nil {
				return fmt.Errorf("vfl: pulling ranking from %s: %w", party, err)
			}
			batches[pi] = resp.PseudoIDs
			return nil
		})
		if err != nil {
			return nil, err
		}
		exhausted := true
		for _, batch := range batches {
			if len(batch) > 0 {
				exhausted = false
			}
			for _, pid := range batch {
				c := seenCount[pid]
				if c == 0 {
					candidates = append(candidates, pid)
				}
				seenCount[pid] = c + 1
				if c+1 == p {
					fullySeen++
				}
			}
			a.counts.Add(costmodel.Raw{PlainAdds: int64(len(batch))})
		}
		stats.Rounds++
		depth += r.Batch
		if exhausted {
			if fullySeen < r.K {
				return nil, fmt.Errorf("vfl: lists exhausted with only %d of %d ids fully seen", fullySeen, r.K)
			}
			break
		}
	}
	stats.ScanDepth = depth
	stats.Candidates = len(candidates)
	fsp.SetLabelInt("rounds", int64(stats.Rounds))
	fsp.SetLabelInt("candidates", int64(stats.Candidates))

	// Random-access phase: encrypted partial distances for candidates only.
	agg, factor, err := a.aggregateCandidates(ctx, r.Query, candidates)
	if err != nil {
		return nil, err
	}
	return reply(codec, &FaginCollectResp{PseudoIDs: candidates, Aggregated: agg, PackFactor: factor, Stats: stats},
		&a.counts, &a.roleObs, costmodel.Raw{ItemsSent: int64(len(agg)), Messages: 1})
}

// mustGob encodes a value that cannot fail (our message structs); a failure
// is a programming error.
func mustGob(v any) []byte {
	b, err := transport.EncodeGob(v)
	if err != nil {
		panic(fmt.Sprintf("vfl: encoding %T: %v", v, err))
	}
	return b
}
