package vfl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vfps/internal/costmodel"
	"vfps/internal/he"
	"vfps/internal/obs"
	"vfps/internal/par"
	"vfps/internal/transport"
	"vfps/internal/wire"
)

// AggServer is the aggregation server role: it merges the participants'
// sub-rankings with Fagin's algorithm and homomorphically sums encrypted
// partial distances. It never holds the private key, so it only ever sees
// pseudo IDs and ciphertexts.
//
// Party requests fan out concurrently (indexed result slots keep pseudo-ID
// ordering and error precedence identical to the serial implementation) and
// ciphertext vectors are tree-reduced with a chunked worker pool; see
// SetParallelism.
type AggServer struct {
	roleObs
	roleCodec
	caller      transport.Caller
	cc          atomic.Pointer[transport.CodecCaller]
	parties     []string // node names of the participants
	scheme      he.Scheme
	counts      costmodel.Counts
	parallelism int // 0 → par.Degree(); 1 → fully serial

	// role labels this server's metric series: AggServerName for the
	// coordinator (default), AggWorkerName(i) for a shard worker.
	role string

	// plan, when set, turns this server into a shard coordinator: collection
	// fan-outs go to the shard workers of the plan instead of the parties
	// directly, and the final reduce runs over the returned subtree roots.
	// See shard.go.
	plan *ShardPlan

	// packNeed is the adaptive pack negotiation state: the monotone maximum
	// of the slot-width bounds the parties advertised (NeedBits), plus a
	// drift margin. It is dictated back to the parties on the next adaptive
	// round; 0 until the first advertisement, which makes round one static.
	packNeed atomic.Int64

	// recvCache / sentCache hold the party→agg and agg→leader halves of the
	// cross-round delta encoding (see deltacache.go). The receive side is a
	// per-party pool: the FIFO bound applies per link, so one party's blocks
	// never evict another's — a shared FIFO at a 6+ roster overflows during a
	// single round and then never hits again.
	recvCache deltaCachePool
	sentCache deltaCache
}

// payloadOpts carries the requester's payload-optimisation knobs through the
// aggregation call tree.
type payloadOpts struct {
	adaptive bool
	delta    bool
	noCache  bool
}

// packBitsMargin is added to the dictated slot width so small round-to-round
// drift in the data's magnitude does not force a static fallback round.
const packBitsMargin = 2

// packDictate returns the slot width to dictate to the parties on an
// adaptive round: 0 (static) before the first advertisement.
func (a *AggServer) packDictate(adaptive bool) int {
	if !adaptive {
		return 0
	}
	return int(a.packNeed.Load())
}

// observeNeedBits folds the parties' advertised magnitude bounds into the
// negotiation state for the next round (monotone maximum).
func (a *AggServer) observeNeedBits(needs []int) {
	maxNeed := 0
	for _, n := range needs {
		if n > maxNeed {
			maxNeed = n
		}
	}
	if maxNeed == 0 {
		return
	}
	target := int64(maxNeed + packBitsMargin)
	for {
		cur := a.packNeed.Load()
		if target <= cur || a.packNeed.CompareAndSwap(cur, target) {
			return
		}
	}
}

// NewAggServer wires the server to its participants through the given
// transport. scheme must be the public (encrypt/add) scheme.
func NewAggServer(caller transport.Caller, parties []string, scheme he.Scheme) (*AggServer, error) {
	if caller == nil {
		return nil, fmt.Errorf("vfl: aggregation server needs a transport")
	}
	if len(parties) == 0 {
		return nil, fmt.Errorf("vfl: aggregation server needs participants")
	}
	if scheme == nil {
		return nil, fmt.Errorf("vfl: aggregation server needs an HE scheme")
	}
	a := &AggServer{caller: caller, parties: parties, scheme: scheme}
	a.cc.Store(transport.NewCodecCaller(caller, wire.Gob()))
	return a, nil
}

// SetCodec configures the codec the server prefers for its own calls to the
// participants (negotiated down per peer when a participant only speaks gob)
// and bounds which inbound protocol versions it accepts. Responses always
// mirror the requester's codec.
func (a *AggServer) SetCodec(c wire.Codec) {
	a.setCodec(c)
	a.cc.Store(transport.NewCodecCaller(a.caller, a.codec()))
}

// Negotiated reports the codec name in use towards one participant ("" before
// the first call reaches that peer).
func (a *AggServer) Negotiated(party string) string { return a.cc.Load().Negotiated(party) }

// call performs one outbound RPC through the negotiated codec and charges the
// encoded request/response bytes to the server's counters. The Messages
// counter stays responder-side, so round trips are not double-counted.
func (a *AggServer) call(ctx context.Context, node, method string, req, resp wire.Message) error {
	stats, err := a.cc.Load().Invoke(ctx, node, method, req, resp)
	a.counts.Add(costmodel.Raw{BytesSent: stats.Payload, FramingBytes: stats.Framing})
	a.recordWire(stats.Codec, stats.Payload, stats.Framing)
	return err
}

// SetParties replaces the server's participant roster after a membership
// change, without tearing the server down. Any shard plan is cleared — it was
// built for the old roster — so the caller must re-plan (SetShardPlan) when
// the reduce stays sharded. Not safe concurrently with an in-flight
// collection; callers fence membership changes with the consortium's run
// lock.
func (a *AggServer) SetParties(parties []string) error {
	if len(parties) == 0 {
		return fmt.Errorf("vfl: aggregation server needs participants")
	}
	a.parties = append([]string(nil), parties...)
	a.plan = nil
	// Release the receive caches of departed links; survivors keep theirs, so
	// their next-round blocks still restore without a resend.
	a.recvCache.retain(parties)
	return nil
}

// SetParallelism pins the server's concurrency: 1 restores the serial party
// loop and serial reduction (the determinism baseline), <= 0 restores the
// default degree. Results are identical at every setting; only wall-clock
// time changes.
func (a *AggServer) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	a.parallelism = n
}

// Counts exposes the server's operation counters.
func (a *AggServer) Counts() costmodel.Raw { return a.counts.Snapshot() }

// SetRole overrides the role label of this server's metric series (default
// "aggserver"). Shard workers set AggWorkerName(i) so coordinator and worker
// counters land in distinct series on a shared registry. Call before
// SetObserver.
func (a *AggServer) SetRole(name string) {
	if name != "" {
		a.role = name
	}
}

// roleName returns the metric-series role label.
func (a *AggServer) roleName() string {
	if a.role == "" {
		return AggServerName
	}
	return a.role
}

// PackHint exports the adaptive pack negotiation state (the dictated slot
// width, margin included; 0 before the first advertisement) so a serving
// layer can carry the learned width across consortium restarts.
func (a *AggServer) PackHint() int { return int(a.packNeed.Load()) }

// SetPackHint seeds the negotiation state with a previously learned width
// (monotone, like the in-band advertisements), turning the static round-one
// warm-up into an adaptive round. Safe to leave unset; a hint the data
// outgrew just triggers the standard static-fallback round.
func (a *AggServer) SetPackHint(bits int) {
	target := int64(bits)
	if target <= 0 {
		return
	}
	for {
		cur := a.packNeed.Load()
		if target <= cur || a.packNeed.CompareAndSwap(cur, target) {
			return
		}
	}
}

// SetObserver installs metrics and tracing on the server: aggregation-phase
// spans and cost-model gauges labelled {instance, role} (role "aggserver"
// unless overridden via SetRole).
func (a *AggServer) SetObserver(o *obs.Observer, instance string) {
	a.store(o)
	a.counts.Register(o.Registry(), instance, a.roleName())
	DeclareDeltaMetrics(o.Registry())
	DeclareShardMetrics(o.Registry())
}

// Handler returns the server's RPC handler. Requests are decoded with the
// codec they arrived in (bounded by the configured codec's version) and
// responses mirror it.
func (a *AggServer) Handler() transport.Handler {
	return func(ctx context.Context, method string, req []byte) ([]byte, error) {
		if method == transport.MethodHello {
			return wire.HandleHello(req, a.codec().Version())
		}
		codec, err := a.reqCodec(req)
		if err != nil {
			return nil, err
		}
		switch method {
		case MethodCollectAll:
			var r CollectAllReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return a.collectAll(ctx, codec, r)
		case MethodFaginCollect:
			var r FaginCollectReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return a.faginCollect(ctx, codec, r)
		case MethodAggregateCandidates:
			var r AggregateCandidatesReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			opt := payloadOpts{adaptive: r.Adaptive, delta: r.Delta, noCache: r.NoCache}
			agg, factor, packBits, err := a.aggregateCandidates(ctx, r.Query, r.PseudoIDs, opt)
			if err != nil {
				return nil, err
			}
			resp := &AggregateCandidatesResp{PackFactor: factor, PackBits: packBits}
			if factor > 1 {
				resp.PackAdds = len(a.parties)
			}
			var sent int
			// The threshold scan's per-round responses carry no chunk field;
			// pass chunkBytes 0 so only the delta trim applies.
			resp.Aggregated, _, resp.CachedBlocks, sent =
				a.trimAndChunk(codec, r.Query, r.PseudoIDs, agg, factor, packBits, opt, 0)
			return reply(codec, resp, &a.counts, &a.roleObs,
				costmodel.Raw{ItemsSent: int64(sent), Messages: 1})
		case MethodShardCollect:
			var r ShardCollectReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return a.shardCollect(ctx, codec, r)
		case MethodAggregateFrontier:
			var r AggregateFrontierReq
			if err := codec.Unmarshal(req, &r); err != nil {
				return nil, err
			}
			return a.aggregateFrontier(ctx, codec, r)
		case MethodCounts:
			return codec.Marshal(&CountsResp{Counts: a.counts.Snapshot()})
		case MethodResetCounts:
			a.counts.Reset()
			return nil, nil
		default:
			return nil, fmt.Errorf("%w: %s", transport.ErrUnknownMethod, method)
		}
	}
}

// fanOut runs fn once per party, concurrently unless parallelism is pinned
// to 1. Results land in caller-provided indexed slots, so ordering is
// independent of completion order; the lowest-indexed party's error wins,
// matching the serial loop's error precedence.
func (a *AggServer) fanOut(ctx context.Context, fn func(pi int, party string) error) error {
	return a.fanOutOver(ctx, a.parties, fn)
}

// fanOutOver is fanOut over an arbitrary node roster (party subset on a shard
// worker, worker roster on the coordinator), with the same ordering and
// error-precedence guarantees.
func (a *AggServer) fanOutOver(ctx context.Context, nodes []string, fn func(i int, node string) error) error {
	if a.parallelism == 1 {
		for i, node := range nodes {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i, node); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(i, node)
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// reduceVectors tree-reduces the per-party ciphertext vectors element-wise
// into vecs[0]: pairwise combination over the party dimension with the
// element loop spread over the worker pool. The reduction shape is fixed by
// party index, so results do not depend on the parallelism setting. It
// charges the performed CipherAdds — (P−1)·len, exactly what the serial
// left fold performed.
func (a *AggServer) reduceVectors(ctx context.Context, vecs [][][]byte) ([][]byte, error) {
	p := len(vecs)
	if p == 1 {
		return vecs[0], nil
	}
	ctx, rsp := a.tracer().Start(ctx, SpanReduce)
	rsp.SetLabelInt("n", int64(len(vecs[0])))
	defer rsp.End()
	adds := 0
	for span := 1; span < p; span *= 2 {
		for lo := 0; lo+span < p; lo += 2 * span {
			left, right := vecs[lo], vecs[lo+span]
			err := par.For(ctx, len(left), a.parallelism, func(i int) error {
				sum, err := a.scheme.Add(left[i], right[i])
				if err != nil {
					return fmt.Errorf("vfl: aggregating: %w", err)
				}
				left[i] = sum
				return nil
			})
			if err != nil {
				return nil, err
			}
			adds += len(left)
		}
	}
	a.counts.Add(costmodel.Raw{CipherAdds: int64(adds)})
	return vecs[0], nil
}

// restoreFromParty folds one party response's delta-withheld blocks back in
// from the receive cache and refreshes that cache. A cache miss (the agg
// evicted a block the party assumed cached) is reported via ErrDeltaCacheMiss
// so the caller can retry that party once with NoCache set.
func (a *AggServer) restoreFromParty(party string, query, packBits, factor int, pids []int, blobs [][]byte, cachedIdx []int) error {
	keys := blockKeys(party, query, packBits, factor, pids)
	hits, err := a.recvCache.forPeer(party).restore(keys, blobs, cachedIdx)
	if hits > 0 {
		a.counts.Add(costmodel.Raw{CacheHits: int64(hits)})
		a.recordDelta(a.roleName(), hits, 0)
	}
	if err != nil {
		return fmt.Errorf("vfl: restoring delta blocks from %s: %w", party, err)
	}
	return nil
}

// partyVec is one party's validated, fully restored ciphertext vector.
type partyVec struct {
	pids     []int
	ciphers  [][]byte
	factor   int
	packBits int
	needBits int
}

// pullCandidates fetches one party's encrypted candidate vector, retrying
// once with NoCache after a delta-cache miss.
func (a *AggServer) pullCandidates(ctx context.Context, party string, query int, pseudoIDs []int, dictate int, opt payloadOpts) (partyVec, error) {
	noCache := opt.noCache
	for attempt := 0; ; attempt++ {
		var resp EncryptCandidatesResp
		req := &EncryptCandidatesReq{Query: query, PseudoIDs: pseudoIDs,
			PackBits: dictate, Delta: opt.delta, NoCache: noCache}
		if err := a.call(ctx, party, MethodEncryptCandidates, req, &resp); err != nil {
			return partyVec{}, fmt.Errorf("vfl: collecting candidates from %s: %w", party, err)
		}
		factor := normFactor(resp.PackFactor)
		if want := packedLen(len(pseudoIDs), factor); len(resp.Ciphers) != want {
			return partyVec{}, fmt.Errorf("vfl: %s returned %d ciphertexts, want %d", party, len(resp.Ciphers), want)
		}
		if opt.delta {
			err := a.restoreFromParty(party, query, resp.PackBits, factor, pseudoIDs, resp.Ciphers, resp.CachedBlocks)
			if err != nil {
				if errors.Is(err, ErrDeltaCacheMiss) && attempt == 0 {
					a.counts.Add(costmodel.Raw{CacheMisses: 1})
					a.recordDelta(a.roleName(), 0, 1)
					noCache = true
					continue
				}
				return partyVec{}, err
			}
		} else if len(resp.CachedBlocks) > 0 {
			return partyVec{}, fmt.Errorf("vfl: %s withheld %d blocks without delta caching", party, len(resp.CachedBlocks))
		}
		return partyVec{pids: pseudoIDs, ciphers: resp.Ciphers, factor: factor,
			packBits: resp.PackBits, needBits: resp.NeedBits}, nil
	}
}

// pullAll fetches one party's full encrypted vector (BASE variant), retrying
// once with NoCache after a delta-cache miss.
func (a *AggServer) pullAll(ctx context.Context, party string, query, dictate int, opt payloadOpts) (partyVec, error) {
	noCache := opt.noCache
	for attempt := 0; ; attempt++ {
		var resp EncryptAllResp
		req := &EncryptAllReq{Query: query, PackBits: dictate, Delta: opt.delta, NoCache: noCache}
		if err := a.call(ctx, party, MethodEncryptAll, req, &resp); err != nil {
			return partyVec{}, fmt.Errorf("vfl: collecting from %s: %w", party, err)
		}
		factor := normFactor(resp.PackFactor)
		if want := packedLen(len(resp.PseudoIDs), factor); len(resp.Ciphers) != want {
			return partyVec{}, fmt.Errorf("vfl: %s returned %d ciphertexts for %d items, want %d",
				party, len(resp.Ciphers), len(resp.PseudoIDs), want)
		}
		if opt.delta {
			err := a.restoreFromParty(party, query, resp.PackBits, factor, resp.PseudoIDs, resp.Ciphers, resp.CachedBlocks)
			if err != nil {
				if errors.Is(err, ErrDeltaCacheMiss) && attempt == 0 {
					a.counts.Add(costmodel.Raw{CacheMisses: 1})
					a.recordDelta(a.roleName(), 0, 1)
					noCache = true
					continue
				}
				return partyVec{}, err
			}
		} else if len(resp.CachedBlocks) > 0 {
			return partyVec{}, fmt.Errorf("vfl: %s withheld %d blocks without delta caching", party, len(resp.CachedBlocks))
		}
		return partyVec{pids: resp.PseudoIDs, ciphers: resp.Ciphers, factor: factor,
			packBits: resp.PackBits, needBits: resp.NeedBits}, nil
	}
}

// uniformPacking checks that all collected vectors agree on the (pack
// factor, slot width) pair — slotwise addition is only meaningful over
// identical layouts. names labels the sources (parties, or shard workers on
// a coordinator) for error reporting.
func uniformPacking(names []string, pvs []partyVec) (factor, packBits int, err error) {
	factor, packBits = pvs[0].factor, pvs[0].packBits
	for pi := range pvs {
		if pvs[pi].factor != factor || pvs[pi].packBits != packBits {
			return 0, 0, fmt.Errorf("vfl: %s pack geometry (S=%d, V=%d) differs from %s's (S=%d, V=%d) — inconsistent packing configuration",
				names[pi], pvs[pi].factor, pvs[pi].packBits, names[0], factor, packBits)
		}
	}
	return factor, packBits, nil
}

// samePseudoIDs checks that every collected vector covers the same pseudo
// IDs in the same order (the BASE access pattern's alignment invariant).
func samePseudoIDs(names []string, pvs []partyVec) error {
	pids := pvs[0].pids
	for pi := 1; pi < len(pvs); pi++ {
		if len(pvs[pi].pids) != len(pids) {
			return fmt.Errorf("vfl: %s returned %d items, want %d", names[pi], len(pvs[pi].pids), len(pids))
		}
		for i := range pids {
			if pvs[pi].pids[i] != pids[i] {
				return fmt.Errorf("vfl: %s pseudo-id order mismatch at %d", names[pi], i)
			}
		}
	}
	return nil
}

// collectSubtree pulls the given parties' encrypted vectors concurrently
// under one dictated geometry: the candidate pattern when all is false, the
// full-vector BASE pattern otherwise.
func (a *AggServer) collectSubtree(ctx context.Context, parties []string, query int, pids []int, all bool, dictate int, opt payloadOpts) ([]partyVec, error) {
	pvs := make([]partyVec, len(parties))
	err := a.fanOutOver(ctx, parties, func(pi int, party string) error {
		var pv partyVec
		var err error
		if all {
			pv, err = a.pullAll(ctx, party, query, dictate, opt)
		} else {
			pv, err = a.pullCandidates(ctx, party, query, pids, dictate, opt)
		}
		if err != nil {
			return err
		}
		pvs[pi] = pv
		return nil
	})
	return pvs, err
}

// collectVectors runs one full collection round — direct party fan-out, or
// worker fan-out with per-shard local reduction when a shard plan is set —
// and returns geometry-uniform vectors ready for the final reduce.
func (a *AggServer) collectVectors(ctx context.Context, query int, pids []int, all bool, opt payloadOpts) ([]partyVec, int, int, error) {
	dictate := a.packDictate(opt.adaptive)
	if a.plan != nil {
		return a.collectSharded(ctx, query, pids, all, dictate, opt)
	}
	collect := func(d int) ([]partyVec, error) {
		return a.collectSubtree(ctx, a.parties, query, pids, all, d, opt)
	}
	return a.collectUniform(a.parties, dictate, collect)
}

// collectNames labels the sources of one collection round: the shard workers
// on a sharded coordinator, the parties otherwise.
func (a *AggServer) collectNames() []string {
	if a.plan != nil {
		return a.plan.Workers
	}
	return a.parties
}

// aggregateCandidates pulls every party's encrypted partial distances for
// the given pseudo IDs concurrently and sums them element-wise. On adaptive
// rounds the dictated slot width is only kept when every party complied
// (a party whose values outgrew it falls back to static); a mixed round is
// re-collected under the static geometry once before giving up.
func (a *AggServer) aggregateCandidates(ctx context.Context, query int, pseudoIDs []int, opt payloadOpts) ([][]byte, int, int, error) {
	ctx, asp := a.tracer().Start(ctx, SpanAggregate)
	asp.SetLabelInt("candidates", int64(len(pseudoIDs)))
	defer asp.End()
	pvs, factor, packBits, err := a.collectVectors(ctx, query, pseudoIDs, false, opt)
	if err != nil {
		return nil, 0, 0, err
	}
	vecs := make([][][]byte, len(pvs))
	for pi := range pvs {
		vecs[pi] = pvs[pi].ciphers
	}
	agg, err := a.reduceVectors(ctx, vecs)
	if err != nil {
		return nil, 0, 0, err
	}
	return agg, factor, packBits, nil
}

// collectUniform runs one collection fan-out and enforces geometry
// uniformity, re-collecting once under the static geometry when an adaptive
// dictation produced a mixed round. Advertised NeedBits feed the negotiation
// state either way. names labels the fan-out targets for error reporting.
func (a *AggServer) collectUniform(names []string, dictate int, collect func(dictate int) ([]partyVec, error)) ([]partyVec, int, int, error) {
	pvs, err := collect(dictate)
	if err != nil {
		return nil, 0, 0, err
	}
	needs := make([]int, len(pvs))
	for pi := range pvs {
		needs[pi] = pvs[pi].needBits
	}
	a.observeNeedBits(needs)
	factor, packBits, uerr := uniformPacking(names, pvs)
	if uerr != nil && dictate > 0 {
		// Mixed compliance: at least one party could not fit the dictated
		// width. The static EnablePacking geometry is shared by construction,
		// so one static round always restores uniformity.
		if pvs, err = collect(0); err != nil {
			return nil, 0, 0, err
		}
		factor, packBits, uerr = uniformPacking(names, pvs)
	}
	if uerr != nil {
		return nil, 0, 0, uerr
	}
	return pvs, factor, packBits, nil
}

// trimAndChunk applies the leader-link payload optimisations to an outgoing
// aggregate vector: delta withholding against the sent cache (aggregation is
// recomputed every round, but homomorphic addition is deterministic, so an
// all-inputs-identical round reproduces the aggregate byte for byte), then
// chunk framing when the response codec supports tagged fields. Returns the
// whole-blob wire vector (nil when chunked), the chunk list, the withheld
// indices, and the items actually sent.
func (a *AggServer) trimAndChunk(codec wire.Codec, query int, pids []int, agg [][]byte, factor, packBits int, opt payloadOpts, chunkBytes int) (out [][]byte, chunks [][][]byte, cached []int, sent int) {
	out, sent = agg, len(agg)
	if opt.delta {
		keys := blockKeys("leader", query, packBits, factor, pids)
		if opt.noCache {
			for b, key := range keys {
				a.sentCache.put(key, agg[b])
			}
		} else {
			out, cached = a.sentCache.trim(keys, agg)
			sent = len(agg) - len(cached)
		}
	}
	if chunkBytes > 0 && codec.Version() >= 1 && len(out) > 0 {
		chunks = wire.ChunkCiphers(out, chunkBytes)
		out = nil
	}
	return out, chunks, cached, sent
}

// aggregateFrontier sums the parties' encrypted scores at one scan rank —
// the encrypted Threshold-Algorithm bound τ.
func (a *AggServer) aggregateFrontier(ctx context.Context, codec wire.Codec, r AggregateFrontierReq) ([]byte, error) {
	ctx, fsp := a.tracer().Start(ctx, SpanFrontier)
	defer fsp.End()
	singles := make([][][]byte, len(a.parties))
	err := a.fanOut(ctx, func(pi int, party string) error {
		var resp EncryptRankScoreResp
		if err := a.call(ctx, party, MethodEncryptRankScore,
			&EncryptRankScoreReq{Query: r.Query, Rank: r.Rank}, &resp); err != nil {
			return fmt.Errorf("vfl: frontier from %s: %w", party, err)
		}
		singles[pi] = [][]byte{resp.Cipher}
		return nil
	})
	if err != nil {
		return nil, err
	}
	agg, err := a.reduceVectors(ctx, singles)
	if err != nil {
		return nil, fmt.Errorf("vfl: aggregating frontier: %w", err)
	}
	return reply(codec, &AggregateFrontierResp{Cipher: agg[0]}, &a.counts, &a.roleObs,
		costmodel.Raw{ItemsSent: 1, Messages: 1})
}

// collectAll implements the BASE variant: pull every participant's full
// encrypted partial-distance vector concurrently and sum them per pseudo ID.
func (a *AggServer) collectAll(ctx context.Context, codec wire.Codec, r CollectAllReq) ([]byte, error) {
	ctx, csp := a.tracer().Start(ctx, SpanCollectAll)
	defer csp.End()
	opt := payloadOpts{adaptive: r.Adaptive, delta: r.Delta, noCache: r.NoCache}
	pvs, factor, packBits, err := a.collectVectors(ctx, r.Query, nil, true, opt)
	if err != nil {
		return nil, err
	}
	if err := samePseudoIDs(a.collectNames(), pvs); err != nil {
		return nil, err
	}
	pids := pvs[0].pids
	vecs := make([][][]byte, len(pvs))
	for pi := range pvs {
		vecs[pi] = pvs[pi].ciphers
	}
	agg, err := a.reduceVectors(ctx, vecs)
	if err != nil {
		return nil, err
	}
	resp := &CollectAllResp{PseudoIDs: pids, PackFactor: factor, PackBits: packBits}
	if factor > 1 {
		resp.PackAdds = len(a.parties)
	}
	var sent int
	resp.Aggregated, resp.Chunked, resp.CachedBlocks, sent =
		a.trimAndChunk(codec, r.Query, pids, agg, factor, packBits, opt, r.ChunkBytes)
	return reply(codec, resp, &a.counts, &a.roleObs,
		costmodel.Raw{ItemsSent: int64(sent), Messages: 1})
}

// faginCollect implements the optimized variant: run Fagin's algorithm over
// the participants' sub-rankings (pulled in mini-batches, all parties in
// flight concurrently), then collect and aggregate encrypted partial
// distances for the candidate set only.
func (a *AggServer) faginCollect(ctx context.Context, codec wire.Codec, r FaginCollectReq) ([]byte, error) {
	if r.K <= 0 {
		return nil, fmt.Errorf("vfl: k=%d must be positive", r.K)
	}
	if r.Batch <= 0 {
		return nil, fmt.Errorf("vfl: batch=%d must be positive", r.Batch)
	}
	ctx, fsp := a.tracer().Start(ctx, SpanFagin)
	defer fsp.End()
	p := len(a.parties)
	seenCount := map[int]int{}
	var candidates []int // in first-seen order
	fullySeen := 0
	depth := 0
	stats := FaginStats{}
	for fullySeen < r.K {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Pull the next mini-batch from every list concurrently; merge the
		// indexed responses in party order so the candidate first-seen order
		// is identical to the serial scan.
		batches := make([][]int, p)
		err := a.fanOut(ctx, func(pi int, party string) error {
			var resp RankingBatchResp
			if err := a.call(ctx, party, MethodRankingBatch,
				&RankingBatchReq{Query: r.Query, Offset: depth, Count: r.Batch}, &resp); err != nil {
				return fmt.Errorf("vfl: pulling ranking from %s: %w", party, err)
			}
			batches[pi] = resp.PseudoIDs
			return nil
		})
		if err != nil {
			return nil, err
		}
		exhausted := true
		for _, batch := range batches {
			if len(batch) > 0 {
				exhausted = false
			}
			for _, pid := range batch {
				c := seenCount[pid]
				if c == 0 {
					candidates = append(candidates, pid)
				}
				seenCount[pid] = c + 1
				if c+1 == p {
					fullySeen++
				}
			}
			a.counts.Add(costmodel.Raw{PlainAdds: int64(len(batch))})
		}
		stats.Rounds++
		depth += r.Batch
		if exhausted {
			if fullySeen < r.K {
				return nil, fmt.Errorf("vfl: lists exhausted with only %d of %d ids fully seen", fullySeen, r.K)
			}
			break
		}
	}
	stats.ScanDepth = depth
	stats.Candidates = len(candidates)
	fsp.SetLabelInt("rounds", int64(stats.Rounds))
	fsp.SetLabelInt("candidates", int64(stats.Candidates))

	// Random-access phase: encrypted partial distances for candidates only.
	opt := payloadOpts{adaptive: r.Adaptive, delta: r.Delta, noCache: r.NoCache}
	agg, factor, packBits, err := a.aggregateCandidates(ctx, r.Query, candidates, opt)
	if err != nil {
		return nil, err
	}
	resp := &FaginCollectResp{PseudoIDs: candidates, PackFactor: factor, PackBits: packBits, Stats: stats}
	if factor > 1 {
		resp.PackAdds = len(a.parties)
	}
	var sent int
	resp.Aggregated, resp.Chunked, resp.CachedBlocks, sent =
		a.trimAndChunk(codec, r.Query, candidates, agg, factor, packBits, opt, r.ChunkBytes)
	return reply(codec, resp, &a.counts, &a.roleObs,
		costmodel.Raw{ItemsSent: int64(sent), Messages: 1})
}

// mustGob encodes a value that cannot fail (our message structs); a failure
// is a programming error.
func mustGob(v any) []byte {
	b, err := transport.EncodeGob(v)
	if err != nil {
		panic(fmt.Sprintf("vfl: encoding %T: %v", v, err))
	}
	return b
}
