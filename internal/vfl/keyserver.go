package vfl

import (
	"context"
	"crypto/rand"
	"fmt"

	"vfps/internal/he"
	"vfps/internal/paillier"
	"vfps/internal/transport"
)

// KeyServer generates the protection key material and serves it to the
// cluster: the HE public key to every node and the private key to the leader
// (§IV-A). Besides Paillier it supports the simulated "plain" scheme for
// paper-scale sweeps and the "secagg" pairwise-masking scheme (the SMC
// alternative of §II), whose consortium parameters it distributes.
type KeyServer struct {
	scheme         string
	sk             *paillier.PrivateKey
	parties        int
	maskSeed       int64
	epsilon, delta float64
}

// NewKeyServer creates the role. scheme is "paillier" (keyBits sized
// modulus) or "plain". For "secagg" use NewKeyServerSecAgg.
func NewKeyServer(scheme string, keyBits int) (*KeyServer, error) {
	switch scheme {
	case "plain":
		return &KeyServer{scheme: scheme}, nil
	case "paillier":
		sk, err := paillier.GenerateKey(rand.Reader, keyBits)
		if err != nil {
			return nil, fmt.Errorf("vfl: key server: %w", err)
		}
		return &KeyServer{scheme: scheme, sk: sk}, nil
	default:
		return nil, fmt.Errorf("vfl: unknown HE scheme %q", scheme)
	}
}

// NewKeyServerSecAgg creates a key server distributing secure-aggregation
// masking parameters for a consortium of the given size.
func NewKeyServerSecAgg(parties int, maskSeed int64) (*KeyServer, error) {
	if parties < 2 {
		return nil, fmt.Errorf("vfl: secagg needs at least 2 parties, got %d", parties)
	}
	return &KeyServer{scheme: "secagg", parties: parties, maskSeed: maskSeed}, nil
}

// NewKeyServerDP creates a key server distributing differential-privacy
// parameters (the noise-based protection of §II).
func NewKeyServerDP(epsilon, delta float64, noiseSeed int64) (*KeyServer, error) {
	if _, err := he.NewDP(epsilon, delta, noiseSeed); err != nil {
		return nil, fmt.Errorf("vfl: %w", err)
	}
	return &KeyServer{scheme: "dp", epsilon: epsilon, delta: delta, maskSeed: noiseSeed}, nil
}

// Handler returns the RPC handler for the key-server role.
func (k *KeyServer) Handler() transport.Handler {
	return func(ctx context.Context, method string, req []byte) ([]byte, error) {
		switch method {
		case MethodPublicKey:
			resp := PublicKeyResp{Scheme: k.scheme, Parties: k.parties, MaskSeed: k.maskSeed,
				Epsilon: k.epsilon, Delta: k.delta}
			if k.sk != nil {
				resp.Key = he.MarshalPublicKey(&k.sk.PublicKey)
			}
			return transport.EncodeGob(resp)
		case MethodPrivateKey:
			resp := PrivateKeyResp{Scheme: k.scheme, Parties: k.parties, MaskSeed: k.maskSeed,
				Epsilon: k.epsilon, Delta: k.delta}
			if k.sk != nil {
				resp.Key = he.MarshalPrivateKey(k.sk)
			}
			return transport.EncodeGob(resp)
		default:
			return nil, fmt.Errorf("%w: %s", transport.ErrUnknownMethod, method)
		}
	}
}

// FetchPublicScheme obtains an encrypt/add-only Scheme from the key server.
func FetchPublicScheme(ctx context.Context, c transport.Caller, keyNode string) (he.Scheme, error) {
	raw, err := c.Call(ctx, keyNode, MethodPublicKey, nil)
	if err != nil {
		return nil, fmt.Errorf("vfl: fetching public key: %w", err)
	}
	var resp PublicKeyResp
	if err := transport.DecodeGob(raw, &resp); err != nil {
		return nil, err
	}
	switch resp.Scheme {
	case "plain":
		return he.NewPlain(), nil
	case "secagg":
		// Distributed as an unbound template; participants bind their index.
		return he.NewSecAgg(-1, resp.Parties, resp.MaskSeed)
	case "dp":
		return he.NewDP(resp.Epsilon, resp.Delta, resp.MaskSeed)
	case "paillier":
		pk, err := he.UnmarshalPublicKey(resp.Key)
		if err != nil {
			return nil, err
		}
		return he.NewPaillier(pk, nil), nil
	default:
		return nil, fmt.Errorf("vfl: key server offered unknown scheme %q", resp.Scheme)
	}
}

// FetchPrivateScheme obtains the full Scheme (with decryption); only the
// leader should call this.
func FetchPrivateScheme(ctx context.Context, c transport.Caller, keyNode string) (he.Scheme, error) {
	raw, err := c.Call(ctx, keyNode, MethodPrivateKey, nil)
	if err != nil {
		return nil, fmt.Errorf("vfl: fetching private key: %w", err)
	}
	var resp PrivateKeyResp
	if err := transport.DecodeGob(raw, &resp); err != nil {
		return nil, err
	}
	switch resp.Scheme {
	case "plain":
		return he.NewPlain(), nil
	case "secagg":
		// Masking has no private key: full aggregates self-decrypt once all
		// parties' masks have cancelled.
		return he.NewSecAgg(-1, resp.Parties, resp.MaskSeed)
	case "dp":
		// Noisy releases are readable by design; there is no key.
		return he.NewDP(resp.Epsilon, resp.Delta, resp.MaskSeed)
	case "paillier":
		sk, err := he.UnmarshalPrivateKey(resp.Key)
		if err != nil {
			return nil, err
		}
		return he.NewPaillier(&sk.PublicKey, sk), nil
	default:
		return nil, fmt.Errorf("vfl: key server offered unknown scheme %q", resp.Scheme)
	}
}
