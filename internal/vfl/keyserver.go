package vfl

import (
	"context"
	"crypto/rand"
	"fmt"

	"vfps/internal/he"
	"vfps/internal/paillier"
	"vfps/internal/transport"
	"vfps/internal/wire"
)

// KeyServer generates the protection key material and serves it to the
// cluster: the HE public key to every node and the private key to the leader
// (§IV-A). Besides Paillier it supports the simulated "plain" scheme for
// paper-scale sweeps and the "secagg" pairwise-masking scheme (the SMC
// alternative of §II), whose consortium parameters it distributes.
type KeyServer struct {
	roleCodec
	scheme         string
	sk             *paillier.PrivateKey
	parties        int
	maskSeed       int64
	epsilon, delta float64
}

// SetCodec bounds which inbound protocol versions the key server accepts;
// responses always mirror the requester's codec.
func (k *KeyServer) SetCodec(c wire.Codec) { k.setCodec(c) }

// NewKeyServer creates the role. scheme is "paillier" (keyBits sized
// modulus) or "plain". For "secagg" use NewKeyServerSecAgg.
func NewKeyServer(scheme string, keyBits int) (*KeyServer, error) {
	switch scheme {
	case "plain":
		return &KeyServer{scheme: scheme}, nil
	case "paillier":
		sk, err := paillier.GenerateKey(rand.Reader, keyBits)
		if err != nil {
			return nil, fmt.Errorf("vfl: key server: %w", err)
		}
		return &KeyServer{scheme: scheme, sk: sk}, nil
	default:
		return nil, fmt.Errorf("vfl: unknown HE scheme %q", scheme)
	}
}

// NewKeyServerSecAgg creates a key server distributing secure-aggregation
// masking parameters for a consortium of the given size.
func NewKeyServerSecAgg(parties int, maskSeed int64) (*KeyServer, error) {
	if parties < 2 {
		return nil, fmt.Errorf("vfl: secagg needs at least 2 parties, got %d", parties)
	}
	return &KeyServer{scheme: "secagg", parties: parties, maskSeed: maskSeed}, nil
}

// NewKeyServerDP creates a key server distributing differential-privacy
// parameters (the noise-based protection of §II).
func NewKeyServerDP(epsilon, delta float64, noiseSeed int64) (*KeyServer, error) {
	if _, err := he.NewDP(epsilon, delta, noiseSeed); err != nil {
		return nil, fmt.Errorf("vfl: %w", err)
	}
	return &KeyServer{scheme: "dp", epsilon: epsilon, delta: delta, maskSeed: noiseSeed}, nil
}

// Handler returns the RPC handler for the key-server role. Responses mirror
// the codec the request arrived in.
func (k *KeyServer) Handler() transport.Handler {
	return func(ctx context.Context, method string, req []byte) ([]byte, error) {
		if method == transport.MethodHello {
			return wire.HandleHello(req, k.codec().Version())
		}
		codec, err := k.reqCodec(req)
		if err != nil {
			return nil, err
		}
		switch method {
		case MethodPublicKey:
			resp := PublicKeyResp{Scheme: k.scheme, Parties: k.parties, MaskSeed: k.maskSeed,
				Epsilon: k.epsilon, Delta: k.delta}
			if k.sk != nil {
				resp.Key = he.MarshalPublicKey(&k.sk.PublicKey)
			}
			return codec.Marshal(&resp)
		case MethodPrivateKey:
			resp := PrivateKeyResp{Scheme: k.scheme, Parties: k.parties, MaskSeed: k.maskSeed,
				Epsilon: k.epsilon, Delta: k.delta}
			if k.sk != nil {
				resp.Key = he.MarshalPrivateKey(k.sk)
			}
			return codec.Marshal(&resp)
		default:
			return nil, fmt.Errorf("%w: %s", transport.ErrUnknownMethod, method)
		}
	}
}

// FetchPublicScheme obtains an encrypt/add-only Scheme from the key server
// over plain gob (the pre-wire behaviour); see FetchPublicSchemeWire for
// codec-negotiated fetches.
func FetchPublicScheme(ctx context.Context, c transport.Caller, keyNode string) (he.Scheme, error) {
	return FetchPublicSchemeWire(ctx, transport.NewCodecCaller(c, wire.Gob()), keyNode)
}

// FetchPublicSchemeWire obtains an encrypt/add-only Scheme from the key
// server through a codec-negotiating caller.
func FetchPublicSchemeWire(ctx context.Context, cc *transport.CodecCaller, keyNode string) (he.Scheme, error) {
	var resp PublicKeyResp
	if _, err := cc.Invoke(ctx, keyNode, MethodPublicKey, nil, &resp); err != nil {
		return nil, fmt.Errorf("vfl: fetching public key: %w", err)
	}
	switch resp.Scheme {
	case "plain":
		return he.NewPlain(), nil
	case "secagg":
		// Distributed as an unbound template; participants bind their index.
		return he.NewSecAgg(-1, resp.Parties, resp.MaskSeed)
	case "dp":
		return he.NewDP(resp.Epsilon, resp.Delta, resp.MaskSeed)
	case "paillier":
		pk, err := he.UnmarshalPublicKey(resp.Key)
		if err != nil {
			return nil, err
		}
		return he.NewPaillier(pk, nil), nil
	default:
		return nil, fmt.Errorf("vfl: key server offered unknown scheme %q", resp.Scheme)
	}
}

// FetchPrivateScheme obtains the full Scheme (with decryption) over plain
// gob; only the leader should call this. See FetchPrivateSchemeWire for
// codec-negotiated fetches.
func FetchPrivateScheme(ctx context.Context, c transport.Caller, keyNode string) (he.Scheme, error) {
	return FetchPrivateSchemeWire(ctx, transport.NewCodecCaller(c, wire.Gob()), keyNode)
}

// FetchPrivateSchemeWire obtains the full Scheme through a codec-negotiating
// caller.
func FetchPrivateSchemeWire(ctx context.Context, cc *transport.CodecCaller, keyNode string) (he.Scheme, error) {
	var resp PrivateKeyResp
	if _, err := cc.Invoke(ctx, keyNode, MethodPrivateKey, nil, &resp); err != nil {
		return nil, fmt.Errorf("vfl: fetching private key: %w", err)
	}
	switch resp.Scheme {
	case "plain":
		return he.NewPlain(), nil
	case "secagg":
		// Masking has no private key: full aggregates self-decrypt once all
		// parties' masks have cancelled.
		return he.NewSecAgg(-1, resp.Parties, resp.MaskSeed)
	case "dp":
		// Noisy releases are readable by design; there is no key.
		return he.NewDP(resp.Epsilon, resp.Delta, resp.MaskSeed)
	case "paillier":
		sk, err := he.UnmarshalPrivateKey(resp.Key)
		if err != nil {
			return nil, err
		}
		return he.NewPaillier(&sk.PublicKey, sk), nil
	default:
		return nil, fmt.Errorf("vfl: key server offered unknown scheme %q", resp.Scheme)
	}
}
