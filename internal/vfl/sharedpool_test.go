package vfl

import (
	"context"
	"fmt"
	"testing"

	"vfps/internal/dataset"
	"vfps/internal/he"
)

func sharedPoolCluster(t *testing.T, pt *dataset.Partition, ps *he.PoolSet, parallelism int) *Cluster {
	t.Helper()
	cl, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition:   pt,
		Scheme:      "paillier",
		KeyBits:     256,
		ShuffleSeed: 7,
		Batch:       8,
		Pack:        true,
		Parallelism: parallelism,
		Pool:        ps,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestSharedPoolSelectionIdentity is the cluster-lifetime pool contract: two
// clusters drawing randomizers from one shared PoolSet — at every Parallelism
// setting — produce the exact neighbour sets of a pool-less baseline.
// Randomizers only blind ciphertexts; where they come from must never leak
// into what the leader decides.
func TestSharedPoolSelectionIdentity(t *testing.T) {
	_, pt := testPartition(t, "Bank", 60, 3)
	ctx := context.Background()
	queries := []int{0, 11, 29, 58}

	baseline := packedCluster(t, pt, true)

	ps := he.NewPoolSet(32, 2)
	defer ps.Close()
	// Parallelism 1 is the serial determinism baseline; 0 is the default
	// worker-pool degree. The shared pool must attach (and stay harmless) at
	// both.
	a := sharedPoolCluster(t, pt, ps, 1)
	b := sharedPoolCluster(t, pt, ps, 0)

	// Both clusters generated distinct keys, so the set carries one pool per
	// modulus — attachment must actually have happened.
	if n := ps.Len(); n != 2 {
		t.Fatalf("PoolSet carries %d pools, want 2 (one per cluster key)", n)
	}

	for _, variant := range []Variant{VariantBase, VariantFagin, VariantThreshold} {
		t.Run(fmt.Sprint(variant), func(t *testing.T) {
			for _, q := range queries {
				want, err := baseline.Leader.RunQuery(ctx, q, 3, variant)
				if err != nil {
					t.Fatal(err)
				}
				for name, cl := range map[string]*Cluster{"serial": a, "parallel": b} {
					got, err := cl.Leader.RunQuery(ctx, q, 3, variant)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if fmt.Sprint(want.Neighbors) != fmt.Sprint(got.Neighbors) {
						t.Fatalf("%s query %d: neighbours differ: %v vs %v",
							name, q, want.Neighbors, got.Neighbors)
					}
				}
			}
		})
	}

	// The rounds above must actually have drawn from the shared pools.
	if s := ps.Stats(); s.Hits == 0 {
		t.Fatalf("shared pools were never hit: %+v", s)
	}

	// Closing one sharer must leave the set's pools running for the other.
	a.Close()
	if _, err := b.Leader.RunQuery(ctx, queries[0], 3, VariantFagin); err != nil {
		t.Fatalf("cluster b after cluster a closed: %v", err)
	}
}
