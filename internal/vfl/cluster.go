package vfl

import (
	"context"
	"fmt"
	"os"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/he"
	"vfps/internal/mat"
	"vfps/internal/obs"
	"vfps/internal/transport"
	"vfps/internal/wire"
)

// ClusterConfig describes an in-process VFL deployment.
type ClusterConfig struct {
	// Partition supplies each participant's local features (training rows).
	Partition *dataset.Partition
	// Scheme is "paillier", "plain", "secagg" or "dp".
	Scheme string
	// DPEpsilon/DPDelta tune the "dp" scheme (defaults 1.0 and 1e-5).
	DPEpsilon, DPDelta float64
	// KeyBits sizes the Paillier modulus (ignored for plain). Tests use
	// small keys; production deployments should use ≥ 2048.
	KeyBits int
	// ShuffleSeed seeds the shared pseudo-ID permutation.
	ShuffleSeed int64
	// Batch is the Fagin mini-batch size b (default 32).
	Batch int
	// Parallelism pins the concurrency of the HE pipeline on every role
	// (party fan-out, worker-pool encryption/decryption): 1 restores fully
	// serial execution, 0 or negative uses the default degree
	// (VFPS_PARALLELISM or GOMAXPROCS). Results are identical at every
	// setting.
	Parallelism int
	// RandomizerPool sizes the Paillier pool of precomputed encryption
	// randomizers (0 → a default when Parallelism != 1; negative disables).
	// Ignored by the other schemes.
	RandomizerPool int
	// Pool, when non-nil, attaches the cluster's encrypting roles to a shared
	// cluster-lifetime PoolSet instead of starting a private pool: randomizer
	// precomputation then survives across protocol rounds and across clusters
	// sharing the same key, and the caller owns teardown (ps.Close). It takes
	// effect even at Parallelism 1 — pooling does not change call order, so
	// selections stay bit-identical. RandomizerPool < 0 still disables
	// pooling entirely.
	Pool *he.PoolSet
	// EncryptWindow pins the fixed-base window width used by randomizer
	// production in pools this cluster starts: 0 keeps the paillier default
	// (currently 6), negative restores classic uniform-r sampling (one full
	// modexp per randomizer). Ignored when Pool is set (the PoolSet carries
	// its own window) and by non-Paillier schemes.
	EncryptWindow int
	// Mont selects the modular-arithmetic backend of every Paillier scheme the
	// cluster configures: 0 follows the process default (the Montgomery kernel
	// of internal/mont, unless VFPS_MONT=0), positive forces the kernel,
	// negative forces pure math/big. Both backends compute identical residues
	// — ciphertexts, sums and selections are bit-identical — so the stdlib
	// path exists for auditability and for machines where the portable kernel
	// does not pay off. Ignored by non-Paillier schemes.
	Mont int
	// Pack enables Paillier slot packing: participants lay several
	// fixed-point partial distances side by side in each plaintext, cutting
	// ciphertext count and bytes on the wire by the pack factor (key-size
	// dependent; ~15× at 2048-bit keys). The headroom is provisioned for
	// summing one ciphertext per party, exactly what the aggregation tree
	// performs. Selection results are bit-identical with packing on or off.
	// Ignored by non-Paillier schemes; fails cluster construction when the
	// key is too small to hold even one slot.
	Pack bool
	// PackAdaptive lets the aggregation server renegotiate the slot width per
	// round from the magnitude bounds the parties advertise, packing more
	// values per ciphertext than the static worst-case geometry whenever the
	// data allows. Requires Pack; ignored otherwise. Selections stay
	// bit-identical — only the carrier layout changes.
	PackAdaptive bool
	// ShardWorkers ≥ 2 shards the aggregation tree reduce: that many in-process
	// shard workers are built over aligned power-of-two party subtrees (see
	// PlanSubtrees) and the aggregation server becomes their coordinator.
	// Selections are bit-identical at every worker count, 0/1 included; only
	// where the ciphertext additions run changes. Counts of ≤ 1 (or plans that
	// collapse to one shard) keep the unsharded path.
	ShardWorkers int
	// PackHint seeds the adaptive pack negotiation with a slot width learned
	// by an earlier consortium over the same data shape (margin included), so
	// round one packs adaptively instead of paying the static warm-up. Only
	// meaningful with Pack+PackAdaptive; 0 keeps the in-band negotiation.
	PackHint int
	// ChunkBytes > 0 splits collection responses into ≤ChunkBytes ciphertext
	// chunks on the binary codec (new tagged field; gob and legacy peers keep
	// whole-blob framing), letting the leader pipeline chunk decryption.
	ChunkBytes int
	// DeltaCache enables cross-round delta encoding: both ends of each link
	// cache ciphertext blocks by (query, geometry, pseudo-ID segment) and
	// repeat queries resend only changed blocks.
	DeltaCache bool
	// SpeculateTA enables speculative decryption on the threshold variant:
	// round r+1's collection and candidate decryption overlap round r's
	// stopping-rule round trip, discarded (waste counted in
	// vfps_ta_speculative_waste_total) when the threshold stops. Selections
	// are identical with the knob on or off.
	SpeculateTA bool
	// Wire selects the protocol codec every role speaks: "gob" (the
	// self-describing stdlib encoding, the default) or "binary" (the compact
	// versioned wire format of internal/wire). Empty falls back to the
	// VFPS_WIRE environment variable, then "gob". Selection results are
	// bit-identical across codecs; only bytes on the wire change.
	Wire string
	// Obs installs metrics and tracing on the transport, every role and the
	// HE schemes. Nil falls back to the process-wide default observer
	// (obs.SetDefault); when that is also unset, observability stays fully
	// disabled at no measurable cost.
	Obs *obs.Observer
	// Instance labels this cluster's metric series so several consortiums
	// can share one registry (default "local").
	Instance string
}

// Cluster is a fully wired in-process deployment: key server, aggregation
// server, one node per participant, and the leader driver.
type Cluster struct {
	Transport *transport.Memory
	Leader    *Leader
	Parties   []*Participant
	Agg       *AggServer
	Workers   []*AggServer // shard workers (nil when unsharded)
	Keys      *KeyServer

	shuffleSeed int64
	pubScheme   he.Scheme
	privScheme  he.Scheme
	parallelism int
	codec       wire.Codec
	observer    *obs.Observer
	instance    string

	// Membership state (see AddParticipant / RemoveParticipant): the current
	// roster in index order, a monotone index counter so node names are never
	// reused after a removal, and the construction knobs rewiring needs.
	partyNames   []string
	nextIndex    int
	pack         bool
	shardWorkers int
}

// ResolveWireCodec maps a wire knob value to a codec: the explicit name wins,
// an empty name falls back to the VFPS_WIRE environment variable, and an
// empty environment means gob (the pre-wire default).
func ResolveWireCodec(name string) (wire.Codec, error) {
	if name == "" {
		name = os.Getenv("VFPS_WIRE")
	}
	if name == "" {
		return wire.Gob(), nil
	}
	return wire.ByName(name)
}

// Observer returns the cluster's observer (nil when observability is off).
func (c *Cluster) Observer() *obs.Observer { return c.observer }

// configureScheme applies the cluster parallelism, arithmetic-backend and
// pooling settings to an HE scheme; only Paillier has tunables today. The
// Mont knob is applied first so any pool started below builds its fixed-base
// tables in the selected representation. A shared PoolSet wins over a private
// pool and attaches even at Parallelism 1 (pooling never changes call order,
// so the determinism baseline is preserved); otherwise a private pool is
// started unless the cluster is pinned fully serial or the pool is explicitly
// disabled.
func configureScheme(s he.Scheme, parallelism, pool, window, mont int, shared *he.PoolSet) {
	p, ok := s.(*he.Paillier)
	if !ok {
		return
	}
	p.SetMont(mont)
	p.SetParallelism(parallelism)
	if pool < 0 {
		return
	}
	if shared != nil {
		p.AttachPool(shared)
		return
	}
	if parallelism == 1 {
		return
	}
	if pool == 0 {
		pool = 4 * p.Parallelism()
	}
	p.SetEncryptWindow(window)
	p.StartRandomizerPool(pool, 1)
}

// configurePacking enables Paillier slot packing with headroom for one
// addition per party. Non-Paillier schemes ignore the knob: SecAgg/DP
// ciphertexts are item-bound masks and Plain already ships 8-byte values.
func configurePacking(s he.Scheme, pack bool, parties int) error {
	if !pack {
		return nil
	}
	p, ok := s.(*he.Paillier)
	if !ok {
		return nil
	}
	return p.EnablePacking(parties)
}

// Close releases background resources (Paillier randomizer pools). The
// cluster stays usable afterwards; encryption just computes randomizers
// inline again.
func (c *Cluster) Close() {
	for _, s := range []he.Scheme{c.pubScheme, c.privScheme} {
		if p, ok := s.(*he.Paillier); ok {
			p.Close()
		}
	}
}

// NewLocalCluster builds the full topology over the in-memory transport,
// distributing key material through the key-server RPCs exactly as the
// distributed deployment does.
func NewLocalCluster(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Partition == nil || cfg.Partition.P() == 0 {
		return nil, fmt.Errorf("vfl: cluster needs a partition")
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "plain"
	}
	if cfg.KeyBits == 0 {
		cfg.KeyBits = 512
	}
	o := cfg.Obs.Or(obs.Default())
	instance := cfg.Instance
	if instance == "" {
		instance = "local"
	}
	codec, err := ResolveWireCodec(cfg.Wire)
	if err != nil {
		return nil, err
	}
	if reg := o.Registry(); reg != nil {
		transport.DeclareMetrics(reg)
		he.DeclareMetrics(reg)
		costmodel.DeclareMetrics(reg)
		declareWire(reg)
		declareDelta(reg)
		declareTAWaste(reg)
	}
	tr := &transport.Memory{}
	tr.SetObserver(o)
	var ks *KeyServer
	switch cfg.Scheme {
	case "secagg":
		ks, err = NewKeyServerSecAgg(cfg.Partition.P(), cfg.ShuffleSeed^0x5eca66)
	case "dp":
		eps, delta := cfg.DPEpsilon, cfg.DPDelta
		if eps == 0 {
			eps = 1.0
		}
		if delta == 0 {
			delta = 1e-5
		}
		ks, err = NewKeyServerDP(eps, delta, cfg.ShuffleSeed^0xd9)
	default:
		ks, err = NewKeyServer(cfg.Scheme, cfg.KeyBits)
	}
	if err != nil {
		return nil, err
	}
	ks.SetCodec(codec)
	tr.Register(KeyServerName, ks.Handler())

	pubScheme, err := FetchPublicSchemeWire(ctx, transport.NewCodecCaller(tr, codec), KeyServerName)
	if err != nil {
		return nil, err
	}
	configureScheme(pubScheme, cfg.Parallelism, cfg.RandomizerPool, cfg.EncryptWindow, cfg.Mont, cfg.Pool)
	if err := configurePacking(pubScheme, cfg.Pack, cfg.Partition.P()); err != nil {
		return nil, err
	}
	if ob, ok := pubScheme.(he.Observable); ok {
		ob.SetObserver(o.Registry(), instance+"/public")
	}
	p := cfg.Partition.P()
	partyNames := make([]string, p)
	parties := make([]*Participant, p)
	for i := 0; i < p; i++ {
		part, err := NewParticipant(i, cfg.Partition.Parties[i], pubScheme, cfg.ShuffleSeed)
		if err != nil {
			return nil, err
		}
		part.SetParallelism(cfg.Parallelism)
		part.SetObserver(o, instance)
		part.SetCodec(codec)
		parties[i] = part
		partyNames[i] = PartyName(i)
		tr.Register(partyNames[i], part.Handler())
	}
	agg, err := NewAggServer(tr, partyNames, pubScheme)
	if err != nil {
		return nil, err
	}
	agg.SetParallelism(cfg.Parallelism)
	agg.SetObserver(o, instance)
	agg.SetCodec(codec)
	if cfg.PackAdaptive && cfg.Pack {
		agg.SetPackHint(cfg.PackHint)
	}
	tr.Register(AggServerName, agg.Handler())

	workers, plan, err := buildShardWorkers(tr, partyNames, pubScheme, cfg.ShardWorkers, cfg.Parallelism, codec, o, instance)
	if err != nil {
		return nil, err
	}
	var workerNames []string
	if plan != nil {
		workerNames = plan.Workers
		if err := agg.SetShardPlan(plan); err != nil {
			return nil, err
		}
	}

	privScheme, err := FetchPrivateSchemeWire(ctx, transport.NewCodecCaller(tr, codec), KeyServerName)
	if err != nil {
		return nil, err
	}
	// The leader decrypts but never bulk-encrypts, so it gets no pool.
	configureScheme(privScheme, cfg.Parallelism, -1, cfg.EncryptWindow, cfg.Mont, nil)
	if err := configurePacking(privScheme, cfg.Pack, cfg.Partition.P()); err != nil {
		return nil, err
	}
	if ob, ok := privScheme.(he.Observable); ok {
		ob.SetObserver(o.Registry(), instance+"/leader")
	}
	leader, err := NewLeader(tr, AggServerName, partyNames, privScheme, cfg.Batch)
	if err != nil {
		return nil, err
	}
	leader.SetParallelism(cfg.Parallelism)
	leader.SetObserver(o, instance)
	leader.SetCodec(codec)
	leader.SetPayloadOptions(cfg.PackAdaptive && cfg.Pack, cfg.ChunkBytes, cfg.DeltaCache)
	leader.SetExtraCountNodes(workerNames)
	leader.SetSpeculativeTA(cfg.SpeculateTA)
	return &Cluster{
		Transport:    tr,
		Leader:       leader,
		Parties:      parties,
		Agg:          agg,
		Workers:      workers,
		Keys:         ks,
		shuffleSeed:  cfg.ShuffleSeed,
		pubScheme:    pubScheme,
		privScheme:   privScheme,
		parallelism:  cfg.Parallelism,
		codec:        codec,
		observer:     o,
		instance:     instance,
		partyNames:   partyNames,
		nextIndex:    p,
		pack:         cfg.Pack,
		shardWorkers: cfg.ShardWorkers,
	}, nil
}

// buildShardWorkers constructs shard workers over the roster when the
// configuration calls for a sharded reduce, registering their handlers on
// the transport (Register replaces any previous handler under the same
// name, which is what lets a membership change rebuild the shard layer in
// place). Returns (nil, nil, nil) when the plan collapses to the unsharded
// path.
func buildShardWorkers(tr *transport.Memory, partyNames []string, pubScheme he.Scheme, shardWorkers, parallelism int, codec wire.Codec, o *obs.Observer, instance string) ([]*AggServer, *ShardPlan, error) {
	size, shards := PlanSubtrees(len(partyNames), shardWorkers)
	if shardWorkers < 2 || shards < 2 {
		return nil, nil, nil
	}
	plan := &ShardPlan{SubtreeSize: size}
	var workers []*AggServer
	for wi := 0; wi < shards; wi++ {
		lo, hi := plan.shardRange(wi, len(partyNames))
		w, err := NewAggServer(tr, partyNames[lo:hi], pubScheme)
		if err != nil {
			return nil, nil, err
		}
		w.SetParallelism(parallelism)
		w.SetRole(AggWorkerName(wi))
		w.SetObserver(o, instance)
		w.SetCodec(codec)
		name := AggWorkerName(wi)
		tr.Register(name, w.Handler())
		workers = append(workers, w)
		plan.Workers = append(plan.Workers, name)
	}
	return workers, plan, nil
}

// PartyNames returns the current roster's node names in index order.
func (c *Cluster) PartyNames() []string { return append([]string(nil), c.partyNames...) }

// checkMembershipScheme rejects membership changes the protection scheme
// cannot honour: secagg's pairwise masks fix the consortium size at key
// setup.
func (c *Cluster) checkMembershipScheme() error {
	if _, ok := c.pubScheme.(*he.SecAgg); ok {
		return fmt.Errorf("vfl: secagg consortium size is fixed at key setup; rebuild the cluster")
	}
	return nil
}

// AddParticipant joins a new participant to a running consortium: it builds
// the participant node over the shared public scheme and shuffle seed,
// registers it on the transport, and rewires the aggregation roster, shard
// plan, pack headroom and leader roster in place — no teardown, and every
// surviving node keeps its state (delta caches included, so a re-selection
// after the join re-encrypts only the new party's blocks). The joiner must
// hold features for the same instance rows. Node names are never reused: a
// join after a removal gets a fresh index, so cached ciphertext blocks can
// never alias across distinct parties. Callers fence concurrent selections
// (the server layer uses the per-consortium run lock). Not supported under
// the secagg scheme, whose pairwise masks fix the consortium size at key
// setup.
func (c *Cluster) AddParticipant(x *mat.Matrix) (string, error) {
	if err := c.checkMembershipScheme(); err != nil {
		return "", err
	}
	index := c.nextIndex
	part, err := NewParticipant(index, x, c.pubScheme, c.shuffleSeed)
	if err != nil {
		return "", err
	}
	part.SetParallelism(c.parallelism)
	part.SetObserver(c.observer, c.instance)
	part.SetCodec(c.codec)
	name := PartyName(index)
	c.Transport.Register(name, part.Handler())
	c.Parties = append(c.Parties, part)
	c.partyNames = append(c.partyNames, name)
	c.nextIndex = index + 1
	if err := c.rewire(); err != nil {
		return "", err
	}
	return name, nil
}

// RemoveParticipant removes the participant with the given index (the i of
// its party/<i> node name) from the consortium and rewires the aggregation
// roster, shard plan, pack headroom and leader roster in place. Surviving
// parties keep their indices, names and caches. The last participant cannot
// be removed. Callers fence concurrent selections with the consortium's run
// lock.
func (c *Cluster) RemoveParticipant(index int) error {
	if err := c.checkMembershipScheme(); err != nil {
		return err
	}
	name := PartyName(index)
	pos := -1
	for i, n := range c.partyNames {
		if n == name {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("vfl: no participant %q in the consortium", name)
	}
	if len(c.partyNames) == 1 {
		return fmt.Errorf("vfl: cannot remove the last participant")
	}
	// The node's handler stays registered on the transport (nothing routes
	// to it once the rosters drop it); only the rosters change.
	c.Parties = append(c.Parties[:pos], c.Parties[pos+1:]...)
	c.partyNames = append(c.partyNames[:pos], c.partyNames[pos+1:]...)
	return c.rewire()
}

// rewire propagates the current roster through every layer that depends on
// membership: Paillier pack headroom (the packed aggregation sums one
// ciphertext per party), the aggregation server's roster, the shard worker
// set and plan, and the leader's roster and accounting nodes.
func (c *Cluster) rewire() error {
	p := len(c.partyNames)
	if err := configurePacking(c.pubScheme, c.pack, p); err != nil {
		return err
	}
	if err := configurePacking(c.privScheme, c.pack, p); err != nil {
		return err
	}
	if err := c.Agg.SetParties(c.partyNames); err != nil {
		return err
	}
	workers, plan, err := buildShardWorkers(c.Transport, c.partyNames, c.pubScheme, c.shardWorkers, c.parallelism, c.codec, c.observer, c.instance)
	if err != nil {
		return err
	}
	c.Workers = workers
	var workerNames []string
	if plan != nil {
		workerNames = plan.Workers
		if err := c.Agg.SetShardPlan(plan); err != nil {
			return err
		}
	}
	if err := c.Leader.SetParties(c.partyNames); err != nil {
		return err
	}
	c.Leader.SetExtraCountNodes(workerNames)
	return nil
}
