package vfl

import (
	"context"
	"testing"
)

func TestPlanSubtrees(t *testing.T) {
	cases := []struct {
		parties, workers, size, shards int
	}{
		{4, 2, 2, 2},
		{5, 2, 4, 2}, // ragged: shards of 4 and 1
		{8, 4, 2, 4},
		{3, 2, 2, 2}, // ragged: shards of 2 and 1
		{3, 8, 1, 3}, // more workers than parties: one party per shard
		{6, 1, 8, 1}, // single worker: sharding is moot
		{7, 3, 4, 2}, // ceil(7/3)=3 rounds up to subtree 4
		{16, 4, 4, 4},
	}
	for _, c := range cases {
		size, shards := PlanSubtrees(c.parties, c.workers)
		if size != c.size || shards != c.shards {
			t.Errorf("PlanSubtrees(%d, %d) = (%d, %d), want (%d, %d)",
				c.parties, c.workers, size, shards, c.size, c.shards)
		}
		if shards > 1 {
			plan := &ShardPlan{SubtreeSize: size}
			for i := 0; i < shards; i++ {
				plan.Workers = append(plan.Workers, AggWorkerName(i))
			}
			if err := plan.Validate(c.parties); err != nil {
				t.Errorf("plan for (%d, %d): %v", c.parties, c.workers, err)
			}
		}
	}
}

func TestShardPlanValidate(t *testing.T) {
	bad := []ShardPlan{
		{SubtreeSize: 3, Workers: []string{"a", "b"}}, // not a power of two
		{SubtreeSize: 2, Workers: []string{"a"}},      // wrong worker count for 4 parties
		{SubtreeSize: 2, Workers: []string{"a", "a"}}, // duplicate
		{SubtreeSize: 2, Workers: []string{"a", ""}},  // empty name
		{SubtreeSize: 0, Workers: nil},                // zero size
	}
	for i := range bad {
		if err := bad[i].Validate(4); err == nil {
			t.Errorf("plan %d validated unexpectedly: %+v", i, bad[i])
		}
	}
	good := ShardPlan{SubtreeSize: 2, Workers: []string{"a", "b"}}
	if err := good.Validate(4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// shardedSimilarities runs one full similarity estimation over a cluster
// built with the given config and returns the W matrix plus total counts.
func shardedSimilarities(t *testing.T, cfg ClusterConfig, queries []int, k, rounds int) ([][]float64, int64, int64) {
	t.Helper()
	cl, err := NewLocalCluster(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var rep *SimilarityReport
	for r := 0; r < rounds; r++ {
		rep, err = cl.Leader.Similarities(context.Background(), queries, k, VariantFagin)
		if err != nil {
			t.Fatal(err)
		}
	}
	total, err := cl.Leader.TotalCounts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep.W, total.CipherAdds, total.Encryptions
}

// TestShardedSelectionIdentity is the bit-identity property test of the
// shard refactor: the similarity matrix (and hence any selection derived
// from it) must match the unsharded baseline exactly — not approximately —
// for every worker count, including ragged final shards.
func TestShardedSelectionIdentity(t *testing.T) {
	for _, parties := range []int{3, 4, 5} {
		_, pt := testPartition(t, "Rice", 60, parties)
		queries := []int{0, 7, 21}
		base := ClusterConfig{Partition: pt, Scheme: "plain", ShuffleSeed: 7, Batch: 8}
		refW, refAdds, refEnc := shardedSimilarities(t, base, queries, 4, 1)
		for _, workers := range []int{1, 2, 3, 4} {
			cfg := base
			cfg.ShardWorkers = workers
			w, adds, enc := shardedSimilarities(t, cfg, queries, 4, 1)
			for i := range refW {
				for j := range refW[i] {
					if w[i][j] != refW[i][j] {
						t.Fatalf("p=%d workers=%d: W[%d][%d] = %v, unsharded %v",
							parties, workers, i, j, w[i][j], refW[i][j])
					}
				}
			}
			// The reduce moves across roles but performs the same additions
			// and the parties encrypt the same items.
			if adds != refAdds || enc != refEnc {
				t.Fatalf("p=%d workers=%d: counts (adds=%d, enc=%d), unsharded (%d, %d)",
					parties, workers, adds, enc, refAdds, refEnc)
			}
		}
	}
}

// TestShardedPaillierIdentity repeats the identity check on the real HE path
// with every payload optimisation on (packing, adaptive width negotiation,
// delta cache, chunking, binary codec) over two rounds, so the sharded
// NeedBits negotiation and cache interplay are exercised, not just plain
// arithmetic.
func TestShardedPaillierIdentity(t *testing.T) {
	_, pt := testPartition(t, "Rice", 40, 5)
	queries := []int{0, 9}
	base := ClusterConfig{Partition: pt, Scheme: "paillier", KeyBits: 256,
		ShuffleSeed: 7, Batch: 8, Pack: true, PackAdaptive: true,
		ChunkBytes: 2048, DeltaCache: true, Wire: "binary"}
	refW, refAdds, refEnc := shardedSimilarities(t, base, queries, 3, 2)
	for _, workers := range []int{2, 3} {
		cfg := base
		cfg.ShardWorkers = workers
		w, adds, enc := shardedSimilarities(t, cfg, queries, 3, 2)
		for i := range refW {
			for j := range refW[i] {
				if w[i][j] != refW[i][j] {
					t.Fatalf("workers=%d: W[%d][%d] = %v, unsharded %v",
						workers, i, j, w[i][j], refW[i][j])
				}
			}
		}
		if adds != refAdds || enc != refEnc {
			t.Fatalf("workers=%d: counts (adds=%d, enc=%d), unsharded (%d, %d)",
				workers, adds, enc, refAdds, refEnc)
		}
	}
}

// TestShardWorkerFailureFallback kills one shard worker's transport and
// checks that the coordinator re-collects that shard directly from its
// parties, still producing the exact unsharded result.
func TestShardWorkerFailureFallback(t *testing.T) {
	_, pt := testPartition(t, "Rice", 60, 4)
	queries := []int{0, 7}
	refW, _, _ := shardedSimilarities(t, ClusterConfig{Partition: pt, Scheme: "plain",
		ShuffleSeed: 7, Batch: 8}, queries, 4, 1)

	cl, err := NewLocalCluster(context.Background(), ClusterConfig{Partition: pt,
		Scheme: "plain", ShuffleSeed: 7, Batch: 8, ShardWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if len(cl.Workers) != 2 {
		t.Fatalf("expected 2 shard workers, got %d", len(cl.Workers))
	}
	cl.Transport.InjectFailure(AggWorkerName(1))
	rep, err := cl.Leader.Similarities(context.Background(), queries, 4, VariantFagin)
	if err != nil {
		t.Fatalf("selection did not survive a worker failure: %v", err)
	}
	for i := range refW {
		for j := range refW[i] {
			if rep.W[i][j] != refW[i][j] {
				t.Fatalf("failover W[%d][%d] = %v, unsharded %v", i, j, rep.W[i][j], refW[i][j])
			}
		}
	}
}

// TestShardedBaseVariantIdentity covers the BASE (collectAll) access pattern,
// whose pseudo-ID alignment check crosses shard roots on the coordinator.
func TestShardedBaseVariantIdentity(t *testing.T) {
	_, pt := testPartition(t, "Rice", 40, 3)
	queries := []int{0, 5}
	ref, err := NewLocalCluster(context.Background(), ClusterConfig{Partition: pt,
		Scheme: "plain", ShuffleSeed: 7, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	sh, err := NewLocalCluster(context.Background(), ClusterConfig{Partition: pt,
		Scheme: "plain", ShuffleSeed: 7, Batch: 8, ShardWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for _, q := range queries {
		want, err := ref.Leader.RunQuery(context.Background(), q, 4, VariantBase)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.Leader.RunQuery(context.Background(), q, 4, VariantBase)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Neighbors) != len(got.Neighbors) {
			t.Fatalf("q=%d: %d neighbors sharded, want %d", q, len(got.Neighbors), len(want.Neighbors))
		}
		for i := range want.Neighbors {
			if want.Neighbors[i] != got.Neighbors[i] {
				t.Fatalf("q=%d neighbor %d: %d != %d", q, i, got.Neighbors[i], want.Neighbors[i])
			}
		}
	}
}
