package vfl

import (
	"context"
	"fmt"
	"testing"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
)

// dropBytes clears the wire-byte fields of a snapshot. Byte counters charge
// bytes as actually encoded, and Paillier ciphertexts are randomized big
// integers whose serialized length varies by a byte or two between runs —
// independent of parallelism — so determinism checks compare the operation
// counts only for randomized schemes.
func dropBytes(r costmodel.Raw) costmodel.Raw {
	r.BytesSent, r.FramingBytes = 0, 0
	return r
}

func parallelCluster(t *testing.T, pt *dataset.Partition, scheme string, parallelism int) *Cluster {
	t.Helper()
	cl, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition:   pt,
		Scheme:      scheme,
		KeyBits:     256,
		ShuffleSeed: 7,
		Batch:       8,
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestParallelismDeterminism is the pipeline's core contract: a cluster
// running with worker pools and concurrent party fan-out produces the exact
// similarity matrix, the exact neighbour sets, and the exact operation counts
// of a fully serial run.
func TestParallelismDeterminism(t *testing.T) {
	_, pt := testPartition(t, "Bank", 60, 3)
	ctx := context.Background()
	queries := []int{0, 11, 29, 58}
	for _, scheme := range []string{"plain", "paillier", "secagg"} {
		for _, variant := range []Variant{VariantBase, VariantFagin} {
			t.Run(fmt.Sprintf("%s/%s", scheme, variant), func(t *testing.T) {
				serial := parallelCluster(t, pt, scheme, 1)
				parallel := parallelCluster(t, pt, scheme, 4)

				sq, err := serial.Leader.RunQuery(ctx, queries[0], 3, variant)
				if err != nil {
					t.Fatal(err)
				}
				pq, err := parallel.Leader.RunQuery(ctx, queries[0], 3, variant)
				if err != nil {
					t.Fatal(err)
				}
				if len(sq.Neighbors) != len(pq.Neighbors) {
					t.Fatalf("neighbour counts differ: %d vs %d", len(sq.Neighbors), len(pq.Neighbors))
				}
				for i := range sq.Neighbors {
					if sq.Neighbors[i] != pq.Neighbors[i] {
						t.Fatalf("neighbour %d differs: %v vs %v", i, sq.Neighbors, pq.Neighbors)
					}
				}

				srep, err := serial.Leader.Similarities(ctx, queries, 3, variant)
				if err != nil {
					t.Fatal(err)
				}
				prep, err := parallel.Leader.Similarities(ctx, queries, 3, variant)
				if err != nil {
					t.Fatal(err)
				}
				for i := range srep.W {
					for j := range srep.W[i] {
						if srep.W[i][j] != prep.W[i][j] {
							t.Fatalf("W[%d][%d] differs: %v vs %v",
								i, j, srep.W[i][j], prep.W[i][j])
						}
					}
				}
				if srep.AvgCandidates != prep.AvgCandidates {
					t.Fatalf("AvgCandidates differ: %v vs %v", srep.AvgCandidates, prep.AvgCandidates)
				}

				sc, err := serial.Leader.TotalCounts(ctx)
				if err != nil {
					t.Fatal(err)
				}
				pc, err := parallel.Leader.TotalCounts(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if scheme == "paillier" {
					sc, pc = dropBytes(sc), dropBytes(pc)
				}
				if sc != pc {
					t.Fatalf("operation counts differ under concurrency:\nserial:   %+v\nparallel: %+v", sc, pc)
				}
			})
		}
	}
}

// TestParallelismThresholdVariant covers the leader-driven TA scan, whose
// per-round candidate aggregation also fans out.
func TestParallelismThresholdVariant(t *testing.T) {
	_, pt := testPartition(t, "Rice", 50, 3)
	ctx := context.Background()
	serial := parallelCluster(t, pt, "paillier", 1)
	parallel := parallelCluster(t, pt, "paillier", 4)
	for _, q := range []int{0, 17} {
		sq, err := serial.Leader.RunQuery(ctx, q, 3, VariantThreshold)
		if err != nil {
			t.Fatal(err)
		}
		pq, err := parallel.Leader.RunQuery(ctx, q, 3, VariantThreshold)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(sq.Neighbors) != fmt.Sprint(pq.Neighbors) {
			t.Fatalf("query %d: neighbours differ: %v vs %v", q, sq.Neighbors, pq.Neighbors)
		}
	}
	sc, err := serial.Leader.TotalCounts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := parallel.Leader.TotalCounts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sc, pc = dropBytes(sc), dropBytes(pc); sc != pc {
		t.Fatalf("threshold counts differ:\nserial:   %+v\nparallel: %+v", sc, pc)
	}
}

// TestParallelContextCancellation verifies the satellite bugfix: a cancelled
// context aborts the party fan-out and the encryption loops instead of
// completing the full protocol round.
func TestParallelContextCancellation(t *testing.T) {
	_, pt := testPartition(t, "Bank", 60, 3)
	for _, parallelism := range []int{1, 4} {
		cl := parallelCluster(t, pt, "paillier", parallelism)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := cl.Leader.RunQuery(ctx, 0, 3, VariantBase); err == nil {
			t.Fatalf("parallelism=%d: RunQuery on cancelled ctx succeeded", parallelism)
		}
		if _, err := cl.Leader.RunQuery(ctx, 0, 3, VariantThreshold); err == nil {
			t.Fatalf("parallelism=%d: threshold RunQuery on cancelled ctx succeeded", parallelism)
		}
	}
}
