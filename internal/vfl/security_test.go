package vfl

import (
	"context"
	"encoding/binary"
	"math"
	"sync"
	"testing"

	"vfps/internal/transport"
)

// recordingCaller wraps a transport and records every request and response
// payload, so tests can scan the full protocol transcript for leaks.
type recordingCaller struct {
	inner transport.Caller
	mu    sync.Mutex
	blobs [][]byte
}

func (r *recordingCaller) Call(ctx context.Context, peer, method string, req []byte) ([]byte, error) {
	resp, err := r.inner.Call(ctx, peer, method, req)
	r.mu.Lock()
	r.blobs = append(r.blobs, append([]byte{}, req...))
	if resp != nil {
		r.blobs = append(r.blobs, append([]byte{}, resp...))
	}
	r.mu.Unlock()
	return resp, err
}

// containsFloat64 reports whether any 8-byte window of any recorded blob
// decodes (big-endian or little-endian) to a float64 within tol of v.
func (r *recordingCaller) containsFloat64(v, tol float64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.blobs {
		for i := 0; i+8 <= len(b); i++ {
			be := math.Float64frombits(binary.BigEndian.Uint64(b[i : i+8]))
			le := math.Float64frombits(binary.LittleEndian.Uint64(b[i : i+8]))
			if math.Abs(be-v) < tol || math.Abs(le-v) < tol {
				return true
			}
		}
	}
	return false
}

// buildRecordedCluster wires a cluster whose leader and aggregation server
// route through a recorder, capturing the entire selection transcript.
func buildRecordedCluster(t *testing.T, scheme string) (*Cluster, *recordingCaller) {
	t.Helper()
	_, pt := testPartition(t, "Rice", 60, 3)
	cl, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition:   pt,
		Scheme:      scheme,
		KeyBits:     256,
		ShuffleSeed: 7,
		Batch:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingCaller{inner: cl.Transport}
	// Rebuild the server and leader over the recorder so every hop that
	// carries protected values is captured.
	pub, err := FetchPublicScheme(context.Background(), rec, KeyServerName)
	if err != nil {
		t.Fatal(err)
	}
	partyNames := make([]string, pt.P())
	for i := range partyNames {
		partyNames[i] = PartyName(i)
	}
	agg, err := NewAggServer(rec, partyNames, pub)
	if err != nil {
		t.Fatal(err)
	}
	cl.Transport.Register(AggServerName, agg.Handler())
	priv, err := FetchPrivateScheme(context.Background(), rec, KeyServerName)
	if err != nil {
		t.Fatal(err)
	}
	leader, err := NewLeader(rec, AggServerName, partyNames, priv, 8)
	if err != nil {
		t.Fatal(err)
	}
	cl.Leader = leader
	return cl, rec
}

// TestTranscriptDoesNotLeakPlaintextDistances runs a full selection under
// each protecting scheme and scans every byte that crossed the transport for
// IEEE-754 encodings of the true partial distances.
func TestTranscriptDoesNotLeakPlaintextDistances(t *testing.T) {
	for _, scheme := range []string{"paillier", "secagg"} {
		t.Run(scheme, func(t *testing.T) {
			cl, rec := buildRecordedCluster(t, scheme)
			ctx := context.Background()
			query := 5
			if _, err := cl.Leader.Similarities(ctx, []int{query}, 4, VariantFagin); err != nil {
				t.Fatal(err)
			}
			// The secrets: party 0's true partial distances for this query.
			qc, err := cl.Parties[0].distances(context.Background(), query)
			if err != nil {
				t.Fatal(err)
			}
			leaks := 0
			checked := 0
			for i, d := range qc.dist {
				if i == query || d == 0 {
					continue
				}
				checked++
				if rec.containsFloat64(d, 1e-12) {
					leaks++
				}
				if checked >= 30 {
					break
				}
			}
			if leaks > 0 {
				t.Fatalf("%d of %d partial distances appeared in plaintext on the wire", leaks, checked)
			}
		})
	}
}

// Sanity-check the detector itself: under the plain scheme the distances DO
// cross the wire verbatim, so the scan must find them.
func TestTranscriptDetectorFindsPlainLeaks(t *testing.T) {
	cl, rec := buildRecordedCluster(t, "plain")
	ctx := context.Background()
	query := 5
	if _, err := cl.Leader.Similarities(ctx, []int{query}, 4, VariantBase); err != nil {
		t.Fatal(err)
	}
	qc, err := cl.Parties[0].distances(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i, d := range qc.dist {
		if i == query || d == 0 {
			continue
		}
		if rec.containsFloat64(d, 1e-12) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("detector failed to find plaintext distances in the plain-scheme transcript")
	}
}
