package vfl

import (
	"sync/atomic"

	"vfps/internal/costmodel"
	"vfps/internal/obs"
	"vfps/internal/wire"
)

// roleCodec is the wire-codec slot embedded in every protocol role. It holds
// the codec the role is configured to speak (gob until SetCodec): outbound
// requests prefer it, and inbound requests from newer protocol versions than
// it allows are rejected with a typed error. The indirection through a box
// struct keeps the atomic happy across differing concrete codec types.
type roleCodec struct {
	c atomic.Pointer[codecBox]
}

type codecBox struct{ codec wire.Codec }

// codec returns the configured codec (gob by default).
func (r *roleCodec) codec() wire.Codec {
	if b := r.c.Load(); b != nil {
		return b.codec
	}
	return wire.Gob()
}

func (r *roleCodec) setCodec(c wire.Codec) {
	if c == nil {
		c = wire.Gob()
	}
	r.c.Store(&codecBox{codec: c})
}

// reqCodec sniffs the codec of an inbound request, bounded by the role's own
// configured version: a gob-configured node rejects binary envelopes and any
// node rejects future-version frames with *wire.UnsupportedVersionError.
// Responses are encoded with the returned codec, mirroring the requester.
func (r *roleCodec) reqCodec(req []byte) (wire.Codec, error) {
	return wire.DetectMax(req, r.codec().Version())
}

// metricWireBytes counts encoded protocol bytes split by codec and share.
const metricWireBytes = "vfps_wire_bytes"

func declareWire(reg *obs.Registry) *obs.CounterVec {
	return reg.Counter(metricWireBytes,
		"Encoded protocol message bytes by codec and share: payload is value content (ciphertext/key blobs, float scalars), framing is the wire overhead around it (envelope, field tags, length prefixes, pseudo-ID lists, gob descriptors).",
		"codec", "kind")
}

// recordWire feeds one encoded message's byte split into the
// vfps_wire_bytes{codec,kind} counters. No-op without a registry.
func (r *roleObs) recordWire(codec string, payload, framing int64) {
	reg := r.o.Load().Registry()
	if reg == nil {
		return
	}
	v := declareWire(reg)
	v.With(codec, "payload").Add(payload)
	v.With(codec, "framing").Add(framing)
}

// reply encodes resp with the codec the requester used and charges the
// encoded bytes — payload into BytesSent, the rest into FramingBytes — to
// the responder's counters along with the operation counts in extra.
func reply(codec wire.Codec, resp wire.Message, counts *costmodel.Counts, ro *roleObs, extra costmodel.Raw) ([]byte, error) {
	raw, payload, err := wire.MarshalMeasured(codec, resp)
	if err != nil {
		return nil, err
	}
	framing := int64(len(raw)) - payload
	extra.BytesSent += payload
	extra.FramingBytes += framing
	counts.Add(extra)
	ro.recordWire(codec.Name(), payload, framing)
	return raw, nil
}
