package vfl

import (
	"bytes"
	"fmt"
	"testing"
)

// TestDeltaCacheEvictionPressure drives 3× deltaCacheLimit distinct puts and
// asserts the cache's memory stays stable: the live map never exceeds the
// limit and the FIFO bookkeeping slice (length and capacity) stays
// O(deltaCacheLimit) instead of accumulating an unbounded dead prefix, which
// the old reslice-based eviction (`order = order[1:]`) allowed.
func TestDeltaCacheEvictionPressure(t *testing.T) {
	var c deltaCache
	total := 3 * deltaCacheLimit
	for i := 0; i < total; i++ {
		c.put(fmt.Sprintf("key-%d", i), []byte{byte(i), byte(i >> 8)})
	}
	if got := c.len(); got != deltaCacheLimit {
		t.Fatalf("live entries = %d, want %d", got, deltaCacheLimit)
	}
	length, capacity := c.orderFootprint()
	if length > 2*deltaCacheLimit {
		t.Fatalf("order length %d exceeds 2×limit (%d): dead prefix not compacted", length, 2*deltaCacheLimit)
	}
	if capacity > 8*deltaCacheLimit {
		t.Fatalf("order capacity %d grew unboundedly (limit %d)", capacity, deltaCacheLimit)
	}
	// FIFO semantics: the oldest keys are gone, the newest survive.
	if _, ok := c.get("key-0"); ok {
		t.Fatalf("oldest key survived %d puts over a %d-entry cache", total, deltaCacheLimit)
	}
	for i := total - deltaCacheLimit; i < total; i++ {
		key := fmt.Sprintf("key-%d", i)
		want := []byte{byte(i), byte(i >> 8)}
		got, ok := c.get(key)
		if !ok {
			t.Fatalf("recent %s missing", key)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s = %x, want %x", key, got, want)
		}
	}
}

// TestDeltaCachePoolIsolation pins the shared-FIFO regression that broke
// survivor reuse at 6+ parties: when every sender shared one receive cache,
// a roster whose combined blocks exceeded deltaCacheLimit evicted its own
// working set mid-round, every withheld block missed, and the full-resend
// retries cascaded more evictions — the delta path never hit again. The pool
// bounds each link independently, so flooding one peer far past the limit
// must leave every other peer's blocks restorable, and retain must release
// only departed links.
func TestDeltaCachePoolIsolation(t *testing.T) {
	var p deltaCachePool
	p.forPeer("party/0").put("party/0|0|0|1|0|sig", []byte("survivor-block"))
	noisy := p.forPeer("party/1")
	for i := 0; i < 2*deltaCacheLimit; i++ {
		noisy.put(fmt.Sprintf("party/1|0|0|1|%d|sig", i), []byte{byte(i)})
	}
	if got := noisy.len(); got != deltaCacheLimit {
		t.Fatalf("noisy link holds %d entries, want %d", got, deltaCacheLimit)
	}
	got, ok := p.forPeer("party/0").get("party/0|0|0|1|0|sig")
	if !ok || !bytes.Equal(got, []byte("survivor-block")) {
		t.Fatalf("quiet link's block evicted by another link's traffic (ok=%v, got %q)", ok, got)
	}
	if p.peers() != 2 {
		t.Fatalf("pool tracks %d peers, want 2", p.peers())
	}
	// Membership leave: the departed link's cache is released, survivors keep
	// theirs.
	p.retain([]string{"party/0"})
	if p.peers() != 1 {
		t.Fatalf("retain left %d peers, want 1", p.peers())
	}
	if _, ok := p.forPeer("party/0").get("party/0|0|0|1|0|sig"); !ok {
		t.Fatal("retained link lost its block")
	}
	if got := p.forPeer("party/1").len(); got != 0 {
		t.Fatalf("departed link still caches %d blocks after retain", got)
	}
}

// TestDeltaCacheDefensiveCopy pins the mutation-after-put regression: the
// cache must own its bytes, so a caller reusing its encode buffer after a put
// (as trim's re-cache path does) cannot corrupt future hit comparisons.
func TestDeltaCacheDefensiveCopy(t *testing.T) {
	var c deltaCache
	buf := []byte("ciphertext-block-v1")
	c.put("blk", buf)
	copy(buf, "XXXXXXXXXXXXXXXXXXX") // caller reuses its buffer
	got, ok := c.get("blk")
	if !ok {
		t.Fatal("block missing after put")
	}
	if !bytes.Equal(got, []byte("ciphertext-block-v1")) {
		t.Fatalf("cached bytes mutated through caller alias: %q", got)
	}
}

// TestDeltaCacheTrimDefensiveCopy exercises the same hazard through trim: a
// blob cached on trim's re-cache path, then mutated by the caller, must still
// compare equal against a fresh resend of the original bytes (a hit), not be
// poisoned into a perpetual miss — and never withhold blocks that changed.
func TestDeltaCacheTrimDefensiveCopy(t *testing.T) {
	var c deltaCache
	keys := []string{"a", "b"}
	round1 := [][]byte{[]byte("alpha-block"), []byte("beta-block")}
	if _, cached := c.trim(keys, round1); len(cached) != 0 {
		t.Fatalf("cold trim withheld blocks %v", cached)
	}
	// The sender reuses its encode buffers for the next message.
	copy(round1[0], "MUTATED-BLK")
	copy(round1[1], "MUTATED-BLK")

	// A repeat round resends the original bytes: both blocks must hit.
	round2 := [][]byte{[]byte("alpha-block"), []byte("beta-block")}
	out, cached := c.trim(keys, round2)
	if len(cached) != 2 {
		t.Fatalf("repeat trim withheld %v, want both blocks (cache poisoned by caller mutation?)", cached)
	}
	for b := range out {
		if len(out[b]) != 0 {
			t.Fatalf("withheld block %d still carries %d bytes", b, len(out[b]))
		}
	}
	// And genuinely changed bytes must never be withheld.
	round3 := [][]byte{[]byte("alpha-block"), []byte("gamma-block")}
	_, cached = c.trim(keys, round3)
	if len(cached) != 1 || cached[0] != 0 {
		t.Fatalf("changed-block trim withheld %v, want [0]", cached)
	}
}
