package vfl

import (
	"sync/atomic"

	"vfps/internal/obs"
)

// roleObs is the observer slot embedded in every protocol role. The pointer
// is loaded once per instrumented operation, so an unset observer costs one
// atomic load and the nil-safe no-op path of internal/obs.
type roleObs struct {
	o atomic.Pointer[obs.Observer]
}

func (r *roleObs) store(o *obs.Observer) { r.o.Store(o) }

// Observer returns the installed observer (nil when observability is off).
func (r *roleObs) Observer() *obs.Observer { return r.o.Load() }

func (r *roleObs) tracer() *obs.Tracer { return r.o.Load().Tracer() }

// Span names emitted by the protocol roles. The leader's spans parent the
// aggregation-server and participant spans through the request context on the
// in-memory transport, so one query renders as a tree.
const (
	SpanQuery        = "vfl.query"        // leader: one KNN query
	SpanDecrypt      = "vfl.decrypt"      // leader: candidate vector decryption
	SpanNeighborSums = "vfl.neighborSums" // leader: plaintext partial-sum fan-out
	SpanTAScan       = "vfl.taScan"       // leader: Threshold-Algorithm scan
	SpanCollectAll   = "agg.collectAll"   // aggserver: BASE variant collection
	SpanFagin        = "agg.fagin"        // aggserver: Fagin scan + aggregation
	SpanAggregate    = "agg.aggregate"    // aggserver: candidate aggregation
	SpanFrontier     = "agg.frontier"     // aggserver: TA frontier bound
	SpanReduce       = "agg.reduce"       // aggserver: ciphertext tree reduction
	SpanShardMerge   = "agg.shardMerge"   // coordinator: worker fan-out + root merge
	SpanShardCollect = "agg.shardCollect" // shard worker: subtree collect + reduce
	SpanDistances    = "party.distances"  // participant: distance+ranking compute
	SpanEncrypt      = "party.encrypt"    // participant: item encryption sweep
)
