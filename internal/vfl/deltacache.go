package vfl

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"vfps/internal/obs"
)

// Cross-round delta encoding: partial distances are a pure function of
// (query, pseudo-ID, party) over a static dataset, so when a monitoring
// workload re-runs the same queries, most ciphertext blocks on the wire are
// byte-identical to the previous round. Both ends of a transfer keep a
// bounded per-link cache of blocks keyed by that identity; the sender withholds blocks
// the receiver is known to hold (empty placeholder + index list) and the
// receiver restores them locally. Paillier encryption is randomized, so a
// sender-side hit must reuse the cached ciphertext bytes — which also skips
// the re-encryption — rather than re-encrypt; aggregated blocks only hit when
// every input block was identical, because the homomorphic sum is recomputed
// every round and compared byte for byte before any withholding.
//
// A receiver that evicted a block the sender assumed cached fails restore
// with ErrDeltaCacheMiss; the requester retries once with NoCache set, which
// forces a full resend and refreshes both caches.

// ErrDeltaCacheMiss reports a withheld ciphertext block the receiver no
// longer holds. It is the typed trigger for the full-resend retry.
var ErrDeltaCacheMiss = errors.New("vfl: delta cache miss")

// deltaCacheLimit bounds each link's block cache (FIFO eviction). At the
// default packing density a block is one ciphertext, so the bound is a few MB
// per link at paper scale. The bound is per peer link, not per role: a
// receiver with many senders keys a separate cache per sender (deltaCachePool)
// so one link's traffic cannot evict another's blocks. A shared FIFO at
// capacity cascades — every full resend re-inserts its keys, evicting other
// senders' still-needed blocks, until no withheld block ever hits.
const deltaCacheLimit = 4096

// deltaCache is a bounded FIFO map from block identity to ciphertext bytes.
// The zero value is ready to use. Eviction advances a ring index into order
// instead of reslicing it: a reslice (`order = order[1:]`) would pin the
// evicted keys' backing array forever on a long-lived aggserver and grow the
// dead prefix without bound. The dead prefix is compacted away once it
// reaches half the slice, so memory stays O(deltaCacheLimit).
type deltaCache struct {
	mu    sync.Mutex
	m     map[string][]byte
	order []string
	head  int // index of the oldest live key in order; order[:head] is dead
}

func (c *deltaCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[key]
	return b, ok
}

func (c *deltaCache) put(key string, blob []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string][]byte)
	}
	if prev, ok := c.m[key]; ok {
		if bytes.Equal(prev, blob) {
			// Byte-identical re-put (the common restore-refresh path): keep
			// the copy already owned by the cache.
			return
		}
	} else {
		if len(c.order)-c.head >= deltaCacheLimit {
			delete(c.m, c.order[c.head])
			c.order[c.head] = "" // unpin the evicted key string
			c.head++
			if c.head*2 >= len(c.order) {
				c.order = append(c.order[:0], c.order[c.head:]...)
				c.head = 0
			}
		}
		c.order = append(c.order, key)
	}
	// Defensive copy: callers reuse encode buffers, and an aliased blob
	// mutated after the put would silently corrupt future hit comparisons.
	c.m[key] = append([]byte(nil), blob...)
}

// deltaCachePool partitions delta caches per peer link: each sender a
// receiver talks to gets its own FIFO with its own deltaCacheLimit bound.
// Block keys already embed the peer, so the partition only changes capacity
// accounting, never key semantics. The zero value is ready to use.
type deltaCachePool struct {
	mu sync.Mutex
	m  map[string]*deltaCache
}

// forPeer returns the peer's cache, creating it on first use.
func (p *deltaCachePool) forPeer(peer string) *deltaCache {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = make(map[string]*deltaCache)
	}
	c := p.m[peer]
	if c == nil {
		c = &deltaCache{}
		p.m[peer] = c
	}
	return c
}

// retain drops every per-peer cache whose peer is not in keep, releasing the
// departed links' ciphertext blocks (membership churn hygiene).
func (p *deltaCachePool) retain(keep []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		return
	}
	live := make(map[string]bool, len(keep))
	for _, peer := range keep {
		live[peer] = true
	}
	for peer := range p.m {
		if !live[peer] {
			delete(p.m, peer)
		}
	}
}

// peers reports the number of live per-peer caches (tests).
func (p *deltaCachePool) peers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// len reports the live entry count (tests).
func (c *deltaCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// orderFootprint reports the bookkeeping slice's length and capacity (tests:
// both must stay O(deltaCacheLimit) under sustained eviction pressure).
func (c *deltaCache) orderFootprint() (length, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order), cap(c.order)
}

// idSig folds a pseudo-ID segment into an order-sensitive FNV-style
// signature, binding a cache key to the exact IDs a block covers. The two
// ends compute it over the same ID list, so keys agree by construction.
func idSig(pids []int) uint64 {
	h := uint64(14695981039346656037)
	for _, id := range pids {
		h = (h ^ uint64(id)) * 1099511628211
	}
	return h
}

// blockKeys derives the cache key of every block of a ciphertext vector:
// peer scopes the link (a receiver caches per sender), then the query, the
// slot geometry (adaptive pack bits and factor — a renegotiated width is a
// different block) and the covered pseudo-ID segment.
func blockKeys(peer string, query, packBits, factor int, pids []int) []string {
	blocks := packedLen(len(pids), factor)
	keys := make([]string, blocks)
	for b := 0; b < blocks; b++ {
		lo := b * factor
		hi := min(lo+factor, len(pids))
		keys[b] = fmt.Sprintf("%s|%d|%d|%d|%d|%x", peer, query, packBits, factor, b, idSig(pids[lo:hi]))
	}
	return keys
}

// trim withholds every block whose bytes match the sender-side cache: the
// receiver proved it holds those bytes by having received them. Changed or
// new blocks are (re)cached and sent in full. Returns the wire vector (hits
// replaced by empty placeholders, aliasing blobs otherwise) and the withheld
// indices in ascending order.
func (c *deltaCache) trim(keys []string, blobs [][]byte) ([][]byte, []int) {
	var cached []int
	out := blobs
	for b, key := range keys {
		if prev, ok := c.get(key); ok && bytes.Equal(prev, blobs[b]) {
			if len(cached) == 0 {
				out = make([][]byte, len(blobs))
				copy(out, blobs)
			}
			out[b] = nil
			cached = append(cached, b)
			continue
		}
		c.put(key, blobs[b])
	}
	return out, cached
}

// restore fills the withheld blocks of blobs (in place) from the cache and
// refreshes the cache with every block of the restored vector. cachedIdx must
// be strictly ascending, in range, and point at empty placeholders — anything
// else is a framing error. A withheld block absent from the cache returns
// ErrDeltaCacheMiss (typed, so the caller can retry with NoCache). Returns
// the hit count, which equals len(cachedIdx) on success.
func (c *deltaCache) restore(keys []string, blobs [][]byte, cachedIdx []int) (int, error) {
	if len(blobs) != len(keys) {
		return 0, fmt.Errorf("vfl: delta restore over %d blocks, want %d", len(blobs), len(keys))
	}
	if !sort.IntsAreSorted(cachedIdx) {
		return 0, fmt.Errorf("vfl: cached block indices not ascending")
	}
	for i, b := range cachedIdx {
		if b < 0 || b >= len(blobs) {
			return 0, fmt.Errorf("vfl: cached block index %d out of range [0,%d)", b, len(blobs))
		}
		if i > 0 && cachedIdx[i-1] == b {
			return 0, fmt.Errorf("vfl: duplicate cached block index %d", b)
		}
		if len(blobs[b]) != 0 {
			return 0, fmt.Errorf("vfl: cached block %d carries %d bytes, want empty placeholder", b, len(blobs[b]))
		}
		blob, ok := c.get(keys[b])
		if !ok {
			return 0, fmt.Errorf("%w: block %d of %d", ErrDeltaCacheMiss, b, len(blobs))
		}
		blobs[b] = blob
	}
	for b, key := range keys {
		c.put(key, blobs[b])
	}
	return len(cachedIdx), nil
}

// Delta-cache metric families: receiver-side lookup outcomes per role.
const (
	metricDeltaHits   = "vfps_delta_cache_hits_total"
	metricDeltaMisses = "vfps_delta_cache_misses_total"
)

func declareDelta(reg *obs.Registry) (hits, misses *obs.CounterVec) {
	hits = reg.Counter(metricDeltaHits,
		"Ciphertext blocks restored from the cross-round delta cache instead of the wire (receiver side).",
		"role")
	misses = reg.Counter(metricDeltaMisses,
		"Withheld ciphertext blocks the receiver no longer cached, each forcing a full-resend retry.",
		"role")
	return hits, misses
}

// DeclareDeltaMetrics pre-declares the delta-cache families on reg so they
// render on /metrics before the first delta transfer. Safe on a nil registry.
func DeclareDeltaMetrics(reg *obs.Registry) {
	declareDelta(reg)
}

// recordDelta feeds receiver-side lookup outcomes into the metric families.
// No-op without a registry.
func (r *roleObs) recordDelta(role string, hits, misses int) {
	if hits == 0 && misses == 0 {
		return
	}
	reg := r.o.Load().Registry()
	if reg == nil {
		return
	}
	h, m := declareDelta(reg)
	h.With(role).Add(int64(hits))
	m.With(role).Add(int64(misses))
}
