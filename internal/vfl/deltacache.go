package vfl

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"vfps/internal/obs"
)

// Cross-round delta encoding: partial distances are a pure function of
// (query, pseudo-ID, party) over a static dataset, so when a monitoring
// workload re-runs the same queries, most ciphertext blocks on the wire are
// byte-identical to the previous round. Both ends of a transfer keep a
// bounded cache of blocks keyed by that identity; the sender withholds blocks
// the receiver is known to hold (empty placeholder + index list) and the
// receiver restores them locally. Paillier encryption is randomized, so a
// sender-side hit must reuse the cached ciphertext bytes — which also skips
// the re-encryption — rather than re-encrypt; aggregated blocks only hit when
// every input block was identical, because the homomorphic sum is recomputed
// every round and compared byte for byte before any withholding.
//
// A receiver that evicted a block the sender assumed cached fails restore
// with ErrDeltaCacheMiss; the requester retries once with NoCache set, which
// forces a full resend and refreshes both caches.

// ErrDeltaCacheMiss reports a withheld ciphertext block the receiver no
// longer holds. It is the typed trigger for the full-resend retry.
var ErrDeltaCacheMiss = errors.New("vfl: delta cache miss")

// deltaCacheLimit bounds each role's block cache (FIFO eviction). At the
// default packing density a block is one ciphertext, so the bound is a few MB
// per link at paper scale.
const deltaCacheLimit = 4096

// deltaCache is a bounded FIFO map from block identity to ciphertext bytes.
// The zero value is ready to use.
type deltaCache struct {
	mu    sync.Mutex
	m     map[string][]byte
	order []string
}

func (c *deltaCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[key]
	return b, ok
}

func (c *deltaCache) put(key string, blob []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string][]byte)
	}
	if _, ok := c.m[key]; !ok {
		if len(c.order) >= deltaCacheLimit {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, key)
	}
	c.m[key] = blob
}

// idSig folds a pseudo-ID segment into an order-sensitive FNV-style
// signature, binding a cache key to the exact IDs a block covers. The two
// ends compute it over the same ID list, so keys agree by construction.
func idSig(pids []int) uint64 {
	h := uint64(14695981039346656037)
	for _, id := range pids {
		h = (h ^ uint64(id)) * 1099511628211
	}
	return h
}

// blockKeys derives the cache key of every block of a ciphertext vector:
// peer scopes the link (a receiver caches per sender), then the query, the
// slot geometry (adaptive pack bits and factor — a renegotiated width is a
// different block) and the covered pseudo-ID segment.
func blockKeys(peer string, query, packBits, factor int, pids []int) []string {
	blocks := packedLen(len(pids), factor)
	keys := make([]string, blocks)
	for b := 0; b < blocks; b++ {
		lo := b * factor
		hi := min(lo+factor, len(pids))
		keys[b] = fmt.Sprintf("%s|%d|%d|%d|%d|%x", peer, query, packBits, factor, b, idSig(pids[lo:hi]))
	}
	return keys
}

// trim withholds every block whose bytes match the sender-side cache: the
// receiver proved it holds those bytes by having received them. Changed or
// new blocks are (re)cached and sent in full. Returns the wire vector (hits
// replaced by empty placeholders, aliasing blobs otherwise) and the withheld
// indices in ascending order.
func (c *deltaCache) trim(keys []string, blobs [][]byte) ([][]byte, []int) {
	var cached []int
	out := blobs
	for b, key := range keys {
		if prev, ok := c.get(key); ok && bytes.Equal(prev, blobs[b]) {
			if len(cached) == 0 {
				out = make([][]byte, len(blobs))
				copy(out, blobs)
			}
			out[b] = nil
			cached = append(cached, b)
			continue
		}
		c.put(key, blobs[b])
	}
	return out, cached
}

// restore fills the withheld blocks of blobs (in place) from the cache and
// refreshes the cache with every block of the restored vector. cachedIdx must
// be strictly ascending, in range, and point at empty placeholders — anything
// else is a framing error. A withheld block absent from the cache returns
// ErrDeltaCacheMiss (typed, so the caller can retry with NoCache). Returns
// the hit count, which equals len(cachedIdx) on success.
func (c *deltaCache) restore(keys []string, blobs [][]byte, cachedIdx []int) (int, error) {
	if len(blobs) != len(keys) {
		return 0, fmt.Errorf("vfl: delta restore over %d blocks, want %d", len(blobs), len(keys))
	}
	if !sort.IntsAreSorted(cachedIdx) {
		return 0, fmt.Errorf("vfl: cached block indices not ascending")
	}
	for i, b := range cachedIdx {
		if b < 0 || b >= len(blobs) {
			return 0, fmt.Errorf("vfl: cached block index %d out of range [0,%d)", b, len(blobs))
		}
		if i > 0 && cachedIdx[i-1] == b {
			return 0, fmt.Errorf("vfl: duplicate cached block index %d", b)
		}
		if len(blobs[b]) != 0 {
			return 0, fmt.Errorf("vfl: cached block %d carries %d bytes, want empty placeholder", b, len(blobs[b]))
		}
		blob, ok := c.get(keys[b])
		if !ok {
			return 0, fmt.Errorf("%w: block %d of %d", ErrDeltaCacheMiss, b, len(blobs))
		}
		blobs[b] = blob
	}
	for b, key := range keys {
		c.put(key, blobs[b])
	}
	return len(cachedIdx), nil
}

// Delta-cache metric families: receiver-side lookup outcomes per role.
const (
	metricDeltaHits   = "vfps_delta_cache_hits_total"
	metricDeltaMisses = "vfps_delta_cache_misses_total"
)

func declareDelta(reg *obs.Registry) (hits, misses *obs.CounterVec) {
	hits = reg.Counter(metricDeltaHits,
		"Ciphertext blocks restored from the cross-round delta cache instead of the wire (receiver side).",
		"role")
	misses = reg.Counter(metricDeltaMisses,
		"Withheld ciphertext blocks the receiver no longer cached, each forcing a full-resend retry.",
		"role")
	return hits, misses
}

// DeclareDeltaMetrics pre-declares the delta-cache families on reg so they
// render on /metrics before the first delta transfer. Safe on a nil registry.
func DeclareDeltaMetrics(reg *obs.Registry) {
	declareDelta(reg)
}

// recordDelta feeds receiver-side lookup outcomes into the metric families.
// No-op without a registry.
func (r *roleObs) recordDelta(role string, hits, misses int) {
	if hits == 0 && misses == 0 {
		return
	}
	reg := r.o.Load().Registry()
	if reg == nil {
		return
	}
	h, m := declareDelta(reg)
	h.With(role).Add(int64(hits))
	m.With(role).Add(int64(misses))
}
