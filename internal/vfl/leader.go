package vfl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"vfps/internal/costmodel"
	"vfps/internal/he"
	"vfps/internal/obs"
	"vfps/internal/topk"
	"vfps/internal/transport"
	"vfps/internal/wire"
)

// Variant selects the vertical-KNN implementation.
type Variant string

const (
	// VariantBase encrypts and transmits all N partial distances per query
	// (VFPS-SM-BASE, §IV-A).
	VariantBase Variant = "base"
	// VariantFagin prunes the candidate set with Fagin's algorithm before
	// any encryption (VFPS-SM, §IV-B).
	VariantFagin Variant = "fagin"
	// VariantThreshold prunes with the Threshold Algorithm instead. TA
	// needs the *scores* at the scan frontier to compute its stopping bound
	// τ, which in the encrypted setting forces a leader round trip per scan
	// batch (aggregate-frontier decryptions). It sees fewer candidates than
	// Fagin but pays more rounds — the trade-off that §IV-B's choice of
	// Fagin avoids.
	VariantThreshold Variant = "threshold"
)

// Leader is the driver role: the label-holding participant that additionally
// owns the HE private key. It decrypts aggregated complete distances,
// determines the k nearest neighbours, and accumulates the pairwise
// participant similarities w(p,s) that feed submodular selection.
type Leader struct {
	roleObs
	roleCodec
	caller      transport.Caller
	cc          atomic.Pointer[transport.CodecCaller]
	agg         string
	parties     []string
	scheme      he.Scheme // full scheme (with private key)
	batch       int       // Fagin mini-batch size b
	counts      costmodel.Counts
	parallelism int      // 0 → par.Degree(); 1 → fully serial party fan-out
	instance    string   // observer instance label; the query log's tenant
	extraNodes  []string // additional accounting nodes (shard workers)

	// Payload-optimisation knobs requested from the aggregation server (see
	// SetPayloadOptions) and the receive half of the leader-link delta cache.
	padaptive  bool
	chunkBytes int
	delta      bool
	recvCache  deltaCache

	// speculate overlaps the threshold variant's round r+1 collection and
	// decryption with round r's stopping-rule evaluation (SetSpeculativeTA).
	speculate bool
}

// NewLeader wires the leader to the cluster. batch is the Fagin mini-batch
// size (paper's b); a non-positive value defaults to 32.
func NewLeader(caller transport.Caller, aggNode string, parties []string, scheme he.Scheme, batch int) (*Leader, error) {
	if caller == nil {
		return nil, fmt.Errorf("vfl: leader needs a transport")
	}
	if len(parties) == 0 {
		return nil, fmt.Errorf("vfl: leader needs participants")
	}
	if scheme == nil {
		return nil, fmt.Errorf("vfl: leader needs the private HE scheme")
	}
	if batch <= 0 {
		batch = 32
	}
	l := &Leader{caller: caller, agg: aggNode, parties: parties, scheme: scheme, batch: batch}
	l.cc.Store(transport.NewCodecCaller(caller, wire.Gob()))
	return l, nil
}

// SetCodec configures the codec the leader prefers for its calls (negotiated
// down per peer when a node only speaks gob).
func (l *Leader) SetCodec(c wire.Codec) {
	l.setCodec(c)
	l.cc.Store(transport.NewCodecCaller(l.caller, l.codec()))
}

// Negotiated reports the codec name in use towards one node ("" before the
// first call to it).
func (l *Leader) Negotiated(node string) string { return l.cc.Load().Negotiated(node) }

// call performs one outbound RPC through the negotiated codec and charges the
// encoded request/response bytes to the leader's counters. The Messages
// counter stays responder-side, so round trips are not double-counted.
func (l *Leader) call(ctx context.Context, node, method string, req, resp wire.Message) error {
	stats, err := l.cc.Load().Invoke(ctx, node, method, req, resp)
	l.counts.Add(costmodel.Raw{BytesSent: stats.Payload, FramingBytes: stats.Framing})
	l.recordWire(stats.Codec, stats.Payload, stats.Framing)
	return err
}

// Counts exposes the leader's operation counters.
func (l *Leader) Counts() costmodel.Raw { return l.counts.Snapshot() }

// SetObserver installs metrics and tracing on the leader: per-query protocol
// spans, structured query-log events and cost-model gauges labelled
// {instance, role="leader"}. The instance doubles as the query log's tenant.
func (l *Leader) SetObserver(o *obs.Observer, instance string) {
	l.store(o)
	l.instance = instance
	l.counts.Register(o.Registry(), instance, "leader")
	DeclareDeltaMetrics(o.Registry())
	DeclareTAMetrics(o.Registry())
}

// Instance returns the observer instance label ("" when observability is
// off); selection-level query-log events reuse it as the tenant.
func (l *Leader) Instance() string { return l.instance }

// SetParallelism pins the leader's party fan-out concurrency: 1 restores the
// serial loops, <= 0 restores the default degree. Vector decryption
// parallelism is governed by the HE scheme itself (he.Paillier.SetParallelism).
func (l *Leader) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	l.parallelism = n
}

// P returns the number of participants.
func (l *Leader) P() int { return len(l.parties) }

// Parties returns a copy of the leader's participant roster in index order.
func (l *Leader) Parties() []string { return append([]string(nil), l.parties...) }

// SetParties replaces the roster after a membership change, without tearing
// the leader down. Not safe concurrently with an in-flight protocol run;
// callers fence membership changes with the consortium's run lock.
func (l *Leader) SetParties(parties []string) error {
	if len(parties) == 0 {
		return fmt.Errorf("vfl: leader needs participants")
	}
	l.parties = append([]string(nil), parties...)
	return nil
}

// SetSpeculativeTA enables speculative decryption on the threshold variant:
// while the leader fetches and decrypts round r's frontier bound τ and
// evaluates the stopping rule, round r+1's sorted access, aggregation and
// candidate decryption already run in the background. When the scan
// continues, the next round's distances are ready; when it stops, the
// speculation is cancelled and discarded, and the decryptions it completed
// are counted in vfps_ta_speculative_waste_total. Selections are identical
// with speculation on or off — a discarded round never touches the scan
// state. Off by default (the zero-waste baseline).
func (l *Leader) SetSpeculativeTA(on bool) { l.speculate = on }

// SetPayloadOptions configures the ciphertext-payload optimisations the
// leader requests from the aggregation server: adaptive pack-width
// negotiation (effective only when the parties slot-pack), chunk framing of
// collection responses (chunkBytes > 0 splits packed vectors into
// ≤chunkBytes chunks the leader decrypts as a pipeline; requires the binary
// codec, gob peers silently keep whole-blob framing), and cross-round delta
// caching (repeat queries resend only changed ciphertext blocks). All three
// default to off, which keeps the wire image and the selections byte-
// identical to previous protocol versions.
func (l *Leader) SetPayloadOptions(adaptive bool, chunkBytes int, delta bool) {
	if chunkBytes < 0 {
		chunkBytes = 0
	}
	l.padaptive, l.chunkBytes, l.delta = adaptive, chunkBytes, delta
}

// QueryResult is the outcome of one vertical-KNN query.
type QueryResult struct {
	// Neighbors holds the pseudo IDs of the k nearest samples in ascending
	// complete-distance order.
	Neighbors []int
	// PartySums[p] is d^p_T, participant p's partial-distance sum over the
	// neighbour set.
	PartySums []float64
	// Fagin reports pruning statistics (zero for the base variant except
	// Candidates, which then equals N−1).
	Fagin FaginStats
}

// RunQuery executes the vertical KNN oracle for one query sample.
func (l *Leader) RunQuery(ctx context.Context, query, k int, variant Variant) (res *QueryResult, err error) {
	if k <= 0 {
		return nil, fmt.Errorf("vfl: k=%d must be positive", k)
	}
	o := l.Observer()
	qid := obs.QueryIDFromContext(ctx)
	if o != nil && qid == "" {
		// Mint a query ID at the outermost point it is missing, so every span
		// and every downstream RPC of this query carries the same handle.
		qid = obs.NewQueryID("q")
		ctx = obs.ContextWithQueryID(ctx, qid)
	}
	ctx, qsp := l.tracer().Start(ctx, SpanQuery)
	qsp.SetLabel("variant", string(variant))
	qsp.SetLabelInt("k", int64(k))
	if qid != "" {
		qsp.SetLabel("qid", qid)
	}
	defer qsp.End()
	// Per-query accounting: phase latencies accumulate into one structured
	// query-log event emitted on every exit path. All of it is gated on the
	// observer so the bare protocol path stays allocation-free.
	var phases []obs.PhaseSecs
	phase := func(name string, since time.Time) {
		if o != nil {
			phases = append(phases, obs.PhaseSecs{Name: name, Seconds: time.Since(since).Seconds()})
		}
	}
	var chunkCount int
	if o != nil {
		qstart := time.Now()
		defer func() {
			ev := obs.QueryEvent{
				Kind:    "query",
				ID:      qid,
				Tenant:  l.instance,
				Seconds: time.Since(qstart).Seconds(),
				Phases:  phases,
				Attrs:   map[string]any{"query": query, "k": k, "variant": string(variant)},
			}
			if sc, ok := qsp.Context(); ok {
				ev.Trace = sc.Trace.String()
			}
			if res != nil {
				ev.Attrs["candidates"] = res.Fagin.Candidates
				ev.Attrs["rounds"] = res.Fagin.Rounds
			}
			if chunkCount > 0 {
				ev.Attrs["chunks"] = chunkCount
			}
			if err != nil {
				ev.Attrs["error"] = err.Error()
			}
			o.Log().Record(ev)
		}()
	}
	var pids []int
	var col *collected
	var dist []float64
	var stats FaginStats
	collectStart := time.Now()
	switch variant {
	case VariantThreshold:
		var terr error
		pids, dist, stats, terr = l.thresholdScan(ctx, query, k)
		if terr != nil {
			return nil, terr
		}
	case VariantBase:
		var cerr error
		col, stats, cerr = l.collectBase(ctx, query)
		if cerr != nil {
			return nil, cerr
		}
		pids = col.pids
	case VariantFagin:
		var cerr error
		col, stats, cerr = l.collectFagin(ctx, query, k)
		if cerr != nil {
			return nil, cerr
		}
		pids = col.pids
	default:
		return nil, fmt.Errorf("vfl: unknown variant %q", variant)
	}
	if col != nil {
		chunkCount = len(col.chunks)
	}
	phase("collect", collectStart)
	if k > len(pids) {
		return nil, fmt.Errorf("vfl: k=%d exceeds %d candidates", k, len(pids))
	}

	// Decrypt complete distances for the candidates and take the k nearest
	// (the Threshold variant arrives pre-decrypted).
	if dist == nil {
		decStart := time.Now()
		dctx, dsp := l.tracer().Start(ctx, SpanDecrypt)
		dsp.SetLabelInt("n", int64(len(col.blobs)))
		dist, derr := l.decryptCollected(dctx, col)
		dsp.End()
		phase("decrypt", decStart)
		if derr != nil {
			return nil, fmt.Errorf("vfl: leader decrypting: %w", derr)
		}
		l.counts.Add(costmodel.Raw{Decryptions: int64(len(col.blobs))})
		return l.finishQuery(ctx, query, k, pids, dist, stats, phase)
	}
	return l.finishQuery(ctx, query, k, pids, dist, stats, phase)
}

// collected is one collection round's aggregate ciphertext vector after
// chunk reassembly and delta restoration, with the layout metadata the
// decrypt step validates.
type collected struct {
	pids   []int
	blobs  [][]byte   // flat, fully restored
	chunks [][][]byte // chunk views over blobs when the response was chunked
	factor int
	bits   int // adaptive slot width; 0 = static geometry
	adds   int // advertised aggregation depth (PackAdds)
}

// resolveCollected turns a collection response into a usable ciphertext
// vector: reassemble chunk framing, validate the packed length, and restore
// delta-withheld blocks from the receive cache. An ErrDeltaCacheMiss is
// returned typed so the caller can retry the call with NoCache.
func (l *Leader) resolveCollected(query int, pids []int, aggregated [][]byte, chunked [][][]byte, cachedBlocks []int, factor, bits, adds int, delta bool) (*collected, error) {
	factor = normFactor(factor)
	flat := aggregated
	var chunkLens []int
	if len(chunked) > 0 {
		f, err := wire.FlattenChunks(chunked)
		if err != nil {
			return nil, fmt.Errorf("vfl: reassembling chunked aggregates: %w", err)
		}
		flat = f
		chunkLens = make([]int, len(chunked))
		for i, c := range chunked {
			chunkLens[i] = len(c)
		}
	}
	if want := packedLen(len(pids), factor); len(flat) != want {
		return nil, fmt.Errorf("vfl: got %d aggregates for %d candidates, want %d", len(flat), len(pids), want)
	}
	if delta {
		keys := blockKeys("agg", query, bits, factor, pids)
		hits, err := l.recvCache.restore(keys, flat, cachedBlocks)
		if hits > 0 {
			l.counts.Add(costmodel.Raw{CacheHits: int64(hits)})
			l.recordDelta("leader", hits, 0)
		}
		if err != nil {
			return nil, err
		}
	} else if len(cachedBlocks) > 0 {
		return nil, fmt.Errorf("vfl: response withheld %d blocks without delta caching", len(cachedBlocks))
	}
	out := &collected{pids: pids, blobs: flat, factor: factor, bits: bits, adds: adds}
	if chunkLens != nil {
		// Rebuild the chunk views over the restored flat vector so the
		// pipelined decrypt sees complete blocks in wire-chunk granularity.
		out.chunks = make([][][]byte, len(chunkLens))
		pos := 0
		for i, n := range chunkLens {
			out.chunks[i] = flat[pos : pos+n]
			pos += n
		}
	}
	return out, nil
}

// deltaMissRetry reports whether err is a first-attempt delta-cache miss
// (the leader evicted a block the agg assumed cached) and charges the miss;
// the caller then retries the same call once with NoCache set.
func (l *Leader) deltaMissRetry(err error, attempt int) bool {
	if !errors.Is(err, ErrDeltaCacheMiss) || attempt != 0 {
		return false
	}
	l.counts.Add(costmodel.Raw{CacheMisses: 1})
	l.recordDelta("leader", 0, 1)
	return true
}

// collectBase performs the BASE variant's collection round trip, including
// the payload-knob negotiation and the NoCache retry after a delta miss.
func (l *Leader) collectBase(ctx context.Context, query int) (*collected, FaginStats, error) {
	req := &CollectAllReq{Query: query, ChunkBytes: l.chunkBytes, Adaptive: l.padaptive, Delta: l.delta}
	for attempt := 0; ; attempt++ {
		var resp CollectAllResp
		if err := l.call(ctx, l.agg, MethodCollectAll, req, &resp); err != nil {
			return nil, FaginStats{}, err
		}
		col, err := l.resolveCollected(query, resp.PseudoIDs, resp.Aggregated, resp.Chunked,
			resp.CachedBlocks, resp.PackFactor, resp.PackBits, resp.PackAdds, l.delta)
		if err != nil {
			if l.deltaMissRetry(err, attempt) {
				req.NoCache = true
				continue
			}
			return nil, FaginStats{}, err
		}
		n := len(col.pids)
		return col, FaginStats{Candidates: n, Rounds: 1, ScanDepth: n}, nil
	}
}

// collectFagin performs the Fagin variant's collection round trip; see
// collectBase for the retry semantics.
func (l *Leader) collectFagin(ctx context.Context, query, k int) (*collected, FaginStats, error) {
	req := &FaginCollectReq{Query: query, K: k, Batch: l.batch,
		ChunkBytes: l.chunkBytes, Adaptive: l.padaptive, Delta: l.delta}
	for attempt := 0; ; attempt++ {
		var resp FaginCollectResp
		if err := l.call(ctx, l.agg, MethodFaginCollect, req, &resp); err != nil {
			return nil, FaginStats{}, err
		}
		col, err := l.resolveCollected(query, resp.PseudoIDs, resp.Aggregated, resp.Chunked,
			resp.CachedBlocks, resp.PackFactor, resp.PackBits, resp.PackAdds, l.delta)
		if err != nil {
			if l.deltaMissRetry(err, attempt) {
				req.NoCache = true
				continue
			}
			return nil, FaginStats{}, err
		}
		return col, resp.Stats, nil
	}
}

// decryptCollected recovers the aggregate distances of one collection round.
// factor 1 is the classic one-value-per-ciphertext layout; factor > 1 means
// the parties slot-packed, so every ciphertext is a per-slot sum over all
// parties. A static layout (bits == 0) must match the leader's own
// EnablePacking geometry; an adaptive layout is validated by rebuilding the
// (bits, adds) geometry through PackerFor, whose typed fixed.ErrPackAdds /
// fixed.ErrPackShape errors are the hard backstop against a peer advertising
// an aggregation depth the key cannot honour. Chunked vectors stream through
// DecryptPackedChunks, overlapping parse and decrypt per wire chunk. The
// decoded values are bit-identical to the scalar whole-blob path — packing
// and chunking change the carrier layout, not the fixed-point arithmetic —
// so selection results do not depend on any payload knob.
func (l *Leader) decryptCollected(ctx context.Context, col *collected) ([]float64, error) {
	if col.factor == 1 {
		return he.DecryptVec(ctx, l.scheme, col.blobs)
	}
	pp, ok := l.scheme.(*he.Paillier)
	if !ok {
		return nil, fmt.Errorf("vfl: packed aggregates under non-paillier scheme %q", l.scheme.Name())
	}
	count := len(col.pids)
	if col.bits == 0 {
		if lf := pp.PackFactor(); lf != col.factor {
			return nil, fmt.Errorf("vfl: aggregates packed %d-wide but the leader's geometry is %d-wide — inconsistent packing configuration", col.factor, lf)
		}
		if len(col.chunks) > 0 {
			return pp.DecryptPackedChunks(ctx, col.chunks, count, nil, len(l.parties))
		}
		return pp.DecryptPacked(ctx, col.blobs, count, len(l.parties))
	}
	packer, err := pp.PackerFor(uint(col.bits), col.adds)
	if err != nil {
		return nil, fmt.Errorf("vfl: rejecting advertised pack geometry: %w", err)
	}
	if packer.Slots() != col.factor {
		return nil, fmt.Errorf("vfl: advertised pack factor %d does not match geometry (V=%d, adds=%d → S=%d) — inconsistent packing configuration",
			col.factor, col.bits, col.adds, packer.Slots())
	}
	if len(col.chunks) > 0 {
		return pp.DecryptPackedChunks(ctx, col.chunks, count, packer, col.adds)
	}
	return pp.DecryptPackedWith(ctx, col.blobs, count, packer, col.adds)
}

// finishQuery ranks the decrypted candidate distances and gathers the
// parties' plaintext partial sums over the neighbour set (Step ⑦),
// fanning the NeighborSum requests out concurrently. phase records the
// neighbour-sum latency into the caller's query-log event.
func (l *Leader) finishQuery(ctx context.Context, query, k int, pids []int, dist []float64, stats FaginStats, phase func(string, time.Time)) (*QueryResult, error) {
	order := topk.KSmallest(dist, k)
	neighbors := make([]int, k)
	for i, idx := range order {
		neighbors[i] = pids[idx]
	}

	sumStart := time.Now()
	nctx, nsp := l.tracer().Start(ctx, SpanNeighborSums)
	ctx = nctx
	sums := make([]float64, len(l.parties))
	err := l.fanOut(ctx, func(pi int, party string) error {
		var resp NeighborSumResp
		if err := l.call(ctx, party, MethodNeighborSum,
			&NeighborSumReq{Query: query, PseudoIDs: neighbors}, &resp); err != nil {
			return fmt.Errorf("vfl: neighbour sum from %s: %w", party, err)
		}
		sums[pi] = resp.Sum
		return nil
	})
	nsp.End()
	phase("sums", sumStart)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Neighbors: neighbors, PartySums: sums, Fagin: stats}, nil
}

// fanOut runs fn once per party, concurrently unless parallelism is pinned
// to 1, with indexed result slots and lowest-index error precedence (the
// same semantics as the serial loop).
func (l *Leader) fanOut(ctx context.Context, fn func(pi int, party string) error) error {
	if l.parallelism == 1 {
		for pi, party := range l.parties {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(pi, party); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(l.parties))
	var wg sync.WaitGroup
	for pi, party := range l.parties {
		wg.Add(1)
		go func(pi int, party string) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[pi] = err
				return
			}
			errs[pi] = fn(pi, party)
		}(pi, party)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// taRoundResult is one TA scan round's outcome: the sorted-access batches
// merged against the already-seen set, plus the new candidates' decrypted
// complete distances.
type taRoundResult struct {
	newIDs    []int
	dist      []float64
	decrypts  int // candidate decryptions performed (waste if discarded)
	exhausted bool
	err       error
}

// taRound runs one threshold-scan round at the given depth: synchronized
// sorted access over every party, then aggregate-and-decrypt for the
// candidates not yet in seen. seen is only read — the caller commits a
// round's IDs after deciding to use it — so a speculative round can execute
// while the caller still evaluates the previous round's stopping rule.
func (l *Leader) taRound(ctx context.Context, query, depth int, seen map[int]bool) *taRoundResult {
	r := &taRoundResult{}
	// Sorted access: next batch of every party's ranking, all parties in
	// flight concurrently; merge in party order for determinism.
	batches := make([][]int, len(l.parties))
	err := l.fanOut(ctx, func(pi int, party string) error {
		var resp RankingBatchResp
		if err := l.call(ctx, party, MethodRankingBatch,
			&RankingBatchReq{Query: query, Offset: depth, Count: l.batch}, &resp); err != nil {
			return fmt.Errorf("vfl: TA ranking from %s: %w", party, err)
		}
		batches[pi] = resp.PseudoIDs
		return nil
	})
	if err != nil {
		r.err = err
		return r
	}
	r.exhausted = true
	dup := make(map[int]bool) // a pid may surface in several parties' batches
	for _, batch := range batches {
		if len(batch) > 0 {
			r.exhausted = false
		}
		for _, pid := range batch {
			if !seen[pid] && !dup[pid] {
				dup[pid] = true
				r.newIDs = append(r.newIDs, pid)
			}
		}
	}
	if len(r.newIDs) == 0 {
		return r
	}

	// Random access: aggregated ciphertexts for the new candidates.
	req := &AggregateCandidatesReq{Query: query, PseudoIDs: r.newIDs, Adaptive: l.padaptive, Delta: l.delta}
	var col *collected
	for attempt := 0; ; attempt++ {
		var resp AggregateCandidatesResp
		if err := l.call(ctx, l.agg, MethodAggregateCandidates, req, &resp); err != nil {
			r.err = err
			return r
		}
		var rerr error
		col, rerr = l.resolveCollected(query, r.newIDs, resp.Aggregated, nil,
			resp.CachedBlocks, resp.PackFactor, resp.PackBits, resp.PackAdds, l.delta)
		if rerr != nil {
			if l.deltaMissRetry(rerr, attempt) {
				req.NoCache = true
				continue
			}
			r.err = fmt.Errorf("vfl: TA aggregate round: %w", rerr)
			return r
		}
		break
	}
	vs, err := l.decryptCollected(ctx, col)
	if err != nil {
		r.err = fmt.Errorf("vfl: TA decrypting candidate: %w", err)
		return r
	}
	r.dist = vs
	r.decrypts = len(col.blobs)
	return r
}

// metricTAWaste counts the decryptions speculative TA rounds performed
// before being discarded — the work the latency overlap trades away.
const metricTAWaste = "vfps_ta_speculative_waste_total"

func declareTAWaste(reg *obs.Registry) *obs.CounterVec {
	return reg.Counter(metricTAWaste,
		"Decryptions performed by speculative threshold-scan rounds that were discarded when the threshold stopped the scan.",
		"role")
}

// DeclareTAMetrics pre-declares the speculative-TA waste family on reg so it
// renders on /metrics before the first discarded speculation. Safe on a nil
// registry.
func DeclareTAMetrics(reg *obs.Registry) {
	declareTAWaste(reg)
}

// recordTAWaste feeds a discarded speculation's completed decryptions into
// the waste counter. No-op without a registry.
func (l *Leader) recordTAWaste(n int) {
	if n <= 0 {
		return
	}
	reg := l.o.Load().Registry()
	if reg == nil {
		return
	}
	declareTAWaste(reg).With("leader").Add(int64(n))
}

// taSpeculation is an in-flight speculative TA round.
type taSpeculation struct {
	cancel context.CancelFunc
	ch     chan *taRoundResult
}

// speculateRound launches round r+1's collection and decryption in the
// background while the caller evaluates round r's stopping rule.
func (l *Leader) speculateRound(ctx context.Context, query, depth int, seen map[int]bool) *taSpeculation {
	sctx, cancel := context.WithCancel(ctx)
	s := &taSpeculation{cancel: cancel, ch: make(chan *taRoundResult, 1)}
	go func() {
		s.ch <- l.taRound(sctx, query, depth, seen)
	}()
	return s
}

// join waits for the speculative round — the scan continued, so its result
// is used as-is.
func (s *taSpeculation) join() *taRoundResult {
	r := <-s.ch
	s.cancel()
	return r
}

// discard cancels an in-flight speculation after the threshold stopped the
// scan and counts the decryptions it had already completed as waste.
func (s *taSpeculation) discard(l *Leader) {
	s.cancel()
	r := <-s.ch
	l.recordTAWaste(r.decrypts)
}

// thresholdScan drives the leader-assisted Threshold Algorithm for one
// query: synchronized sorted access in batches, aggregate-and-decrypt for
// every newly seen candidate, and an encrypted frontier bound τ per batch.
// With SetSpeculativeTA, round r+1 runs concurrently with round r's τ round
// trip and stopping check, and is discarded (waste counted) when the scan
// stops. Returns the candidate pseudo IDs with their decrypted complete
// distances, identical with speculation on or off.
func (l *Leader) thresholdScan(ctx context.Context, query, k int) ([]int, []float64, FaginStats, error) {
	ctx, tsp := l.tracer().Start(ctx, SpanTAScan)
	defer tsp.End()
	var stats FaginStats
	seen := make(map[int]bool)
	var pids []int
	var dist []float64
	depth := 0
	var spec *taSpeculation
	defer func() {
		if spec != nil {
			spec.discard(l)
		}
	}()
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, stats, err
		}
		var round *taRoundResult
		if spec != nil {
			round, spec = spec.join(), nil
		} else {
			round = l.taRound(ctx, query, depth, seen)
		}
		if round.err != nil {
			return nil, nil, stats, round.err
		}
		// Commit the round: only now do its candidates enter the scan state.
		for _, pid := range round.newIDs {
			seen[pid] = true
		}
		stats.Rounds++
		depth += l.batch
		if len(round.newIDs) > 0 {
			pids = append(pids, round.newIDs...)
			dist = append(dist, round.dist...)
			l.counts.Add(costmodel.Raw{Decryptions: int64(round.decrypts)})
		}
		if round.exhausted {
			break
		}
		if l.speculate {
			spec = l.speculateRound(ctx, query, depth, seen)
		}

		// Threshold: τ bounds every unseen instance's complete distance from
		// below, because unseen instances rank deeper than the frontier in
		// every list.
		var fresp AggregateFrontierResp
		if err := l.call(ctx, l.agg, MethodAggregateFrontier,
			&AggregateFrontierReq{Query: query, Rank: depth - 1}, &fresp); err != nil {
			return nil, nil, stats, err
		}
		tau, err := l.scheme.Decrypt(fresp.Cipher)
		if err != nil {
			return nil, nil, stats, fmt.Errorf("vfl: TA decrypting threshold: %w", err)
		}
		l.counts.Add(costmodel.Raw{Decryptions: 1})
		if len(dist) >= k {
			order := topk.KSmallest(dist, k)
			if dist[order[k-1]] <= tau {
				break
			}
		}
	}
	stats.ScanDepth = depth
	stats.Candidates = len(pids)
	if len(pids) < k {
		return nil, nil, stats, fmt.Errorf("vfl: TA terminated with %d candidates for k=%d", len(pids), k)
	}
	return pids, dist, stats, nil
}

// SimilarityReport is the output of a full selection-phase protocol run.
type SimilarityReport struct {
	// W[p][s] is the average similarity w(p,s) over the query set, the input
	// to submodular maximization. W is symmetric with unit diagonal.
	W [][]float64
	// Queries is the number of query samples processed.
	Queries int
	// AvgCandidates is the mean per-query number of instances whose partial
	// distances were encrypted and communicated — the Fig. 9 metric.
	AvgCandidates float64
	// TotalRounds accumulates Fagin mini-batch rounds across queries.
	TotalRounds int
}

// Similarities runs the KNN oracle over the query set and accumulates the
// pairwise participant similarity matrix of §III-A:
//
//	w_q(p1,p2) = (d_T − |d^p1_T − d^p2_T|) / d_T,   w = mean over queries.
func (l *Leader) Similarities(ctx context.Context, queries []int, k int, variant Variant) (*SimilarityReport, error) {
	return l.SimilaritiesParallel(ctx, queries, k, variant, 1)
}

// SimAccumulator incrementally aggregates per-query similarity
// contributions, enabling adaptive protocols that add query batches until
// the estimate stabilises.
type SimAccumulator struct {
	p      int
	sums   [][]float64
	n      int
	cands  int
	rounds int
	// Record, when set before accumulation, keeps each query's neighbour
	// set and per-party sums so the similarity matrix can later be extended
	// to late-joining participants without re-running the encrypted KNN.
	Record  bool
	records []QueryRecord
}

// QueryRecord is one query's reusable protocol outcome.
type QueryRecord struct {
	Query     int
	Neighbors []int // pseudo IDs of the k nearest samples
	PartySums []float64
}

// NewAccumulator returns an empty similarity accumulator for this
// consortium.
func (l *Leader) NewAccumulator() *SimAccumulator {
	p := len(l.parties)
	sums := make([][]float64, p)
	for i := range sums {
		sums[i] = make([]float64, p)
	}
	return &SimAccumulator{p: p, sums: sums}
}

// Queries returns the number of query samples accumulated so far.
func (a *SimAccumulator) Queries() int { return a.n }

// add folds one query result into the accumulator.
func (a *SimAccumulator) add(res *QueryResult) {
	a.cands += res.Fagin.Candidates
	a.rounds += res.Fagin.Rounds
	var dT float64
	for _, s := range res.PartySums {
		dT += s
	}
	for i := 0; i < a.p; i++ {
		for j := 0; j < a.p; j++ {
			var w float64
			if dT <= 0 {
				// All neighbours coincide with the query on every party:
				// no divergence information, treat parties as identical.
				w = 1
			} else {
				w = (dT - math.Abs(res.PartySums[i]-res.PartySums[j])) / dT
			}
			a.sums[i][j] += w
		}
	}
	a.n++
}

// Report materialises the current similarity estimate.
func (a *SimAccumulator) Report() *SimilarityReport {
	w := make([][]float64, a.p)
	for i := range w {
		w[i] = make([]float64, a.p)
		for j := range w[i] {
			w[i][j] = a.sums[i][j] / float64(a.n)
		}
		w[i][i] = 1
	}
	return &SimilarityReport{
		W:             w,
		Queries:       a.n,
		AvgCandidates: float64(a.cands) / float64(a.n),
		TotalRounds:   a.rounds,
	}
}

// Accumulate runs the KNN oracle over additional queries and folds them into
// acc, with up to `workers` queries in flight.
func (l *Leader) Accumulate(ctx context.Context, queries []int, k int, variant Variant, workers int, acc *SimAccumulator) error {
	results, err := l.runQueries(ctx, queries, k, variant, workers)
	if err != nil {
		return err
	}
	for i, res := range results {
		acc.add(res)
		if acc.Record {
			acc.records = append(acc.records, QueryRecord{
				Query:     queries[i],
				Neighbors: res.Neighbors,
				PartySums: res.PartySums,
			})
		}
	}
	l.counts.Add(costmodel.Raw{PlainAdds: int64(len(queries) * acc.p * acc.p)})
	return nil
}

// ExtendWithParties warm-starts the similarity matrix for late-joining
// participants: instead of re-running the encrypted KNN protocol, the leader
// asks only the new parties for their plaintext partial sums over each
// recorded query's existing neighbour set (|Q| cheap messages per joiner).
//
// This is an approximation: the neighbour sets were computed over the
// original consortium's joint feature space, so the new parties' features do
// not influence which samples count as neighbours. For parties whose data
// correlates with the consortium (the common case in VFL, where records
// describe the same users) the approximation is close; re-run Similarities
// from scratch when exactness matters. Requires an accumulator built with
// Record set.
func (l *Leader) ExtendWithParties(ctx context.Context, newParties []string, acc *SimAccumulator) (*SimilarityReport, error) {
	if !acc.Record || len(acc.records) == 0 {
		return nil, fmt.Errorf("vfl: extension requires a recording accumulator with at least one query")
	}
	if len(newParties) == 0 {
		return nil, fmt.Errorf("vfl: no new parties to extend with")
	}
	oldP := acc.p
	newP := oldP + len(newParties)
	ext := &SimAccumulator{p: newP}
	ext.sums = make([][]float64, newP)
	for i := range ext.sums {
		ext.sums[i] = make([]float64, newP)
	}
	for _, rec := range acc.records {
		sums := make([]float64, newP)
		copy(sums, rec.PartySums)
		for ni, party := range newParties {
			var resp NeighborSumResp
			if err := l.call(ctx, party, MethodNeighborSum,
				&NeighborSumReq{Query: rec.Query, PseudoIDs: rec.Neighbors}, &resp); err != nil {
				return nil, fmt.Errorf("vfl: extending with %s: %w", party, err)
			}
			sums[oldP+ni] = resp.Sum
		}
		ext.add(&QueryResult{Neighbors: rec.Neighbors, PartySums: sums})
	}
	l.counts.Add(costmodel.Raw{PlainAdds: int64(len(acc.records) * newP * newP)})
	return ext.Report(), nil
}

// SimilaritiesParallel is Similarities with up to `workers` queries in
// flight concurrently. Results are accumulated in query order, so the
// report is bit-identical to the sequential run.
func (l *Leader) SimilaritiesParallel(ctx context.Context, queries []int, k int, variant Variant, workers int) (*SimilarityReport, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("vfl: empty query set")
	}
	acc := l.NewAccumulator()
	if err := l.Accumulate(ctx, queries, k, variant, workers, acc); err != nil {
		return nil, err
	}
	return acc.Report(), nil
}

// runQueries executes the KNN oracle for every query, optionally in
// parallel, preserving query order in the results.
func (l *Leader) runQueries(ctx context.Context, queries []int, k int, variant Variant, workers int) ([]*QueryResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("vfl: empty query set")
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	results := make([]*QueryResult, len(queries))
	if workers == 1 {
		for qi, q := range queries {
			res, err := l.RunQuery(ctx, q, k, variant)
			if err != nil {
				return nil, fmt.Errorf("vfl: query %d: %w", q, err)
			}
			results[qi] = res
		}
	} else {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var wg sync.WaitGroup
		var errOnce sync.Once
		var firstErr error
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for qi := range next {
					res, err := l.RunQuery(ctx, queries[qi], k, variant)
					if err != nil {
						errOnce.Do(func() {
							firstErr = fmt.Errorf("vfl: query %d: %w", queries[qi], err)
							cancel()
						})
						return
					}
					results[qi] = res
				}
			}()
		}
	feed:
		for qi := range queries {
			select {
			case next <- qi:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		// Cancellation can stop the feed before any worker reports an error,
		// leaving gaps; surface that instead of returning partial results.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, r := range results {
			if r == nil {
				return nil, fmt.Errorf("vfl: query processing incomplete")
			}
		}
	}

	return results, nil
}

// SetExtraCountNodes registers additional accounting nodes — the shard
// workers of a sharded deployment — so GatherCounts/ResetAllCounts cover the
// HE additions that moved off the aggregation server. Nil clears the list.
func (l *Leader) SetExtraCountNodes(nodes []string) {
	l.extraNodes = append([]string(nil), nodes...)
}

// countNodes lists every remote node that carries operation counters.
func (l *Leader) countNodes() []string {
	nodes := append([]string{l.agg}, l.extraNodes...)
	return append(nodes, l.parties...)
}

// GatherCounts pulls operation counters from every node plus the leader's
// own, keyed by node name ("leader" for the local counters).
func (l *Leader) GatherCounts(ctx context.Context) (map[string]costmodel.Raw, error) {
	// Meta-calls go through Invoke directly so gathering counters does not
	// itself perturb the byte counters being gathered.
	out := map[string]costmodel.Raw{"leader": l.counts.Snapshot()}
	for _, node := range l.countNodes() {
		var resp CountsResp
		if _, err := l.cc.Load().Invoke(ctx, node, MethodCounts, nil, &resp); err != nil {
			return nil, fmt.Errorf("vfl: counts from %s: %w", node, err)
		}
		out[node] = resp.Counts
	}
	return out, nil
}

// TotalCounts sums GatherCounts over all roles.
func (l *Leader) TotalCounts(ctx context.Context) (costmodel.Raw, error) {
	per, err := l.GatherCounts(ctx)
	if err != nil {
		return costmodel.Raw{}, err
	}
	var total costmodel.Raw
	for _, r := range per {
		total = total.Plus(r)
	}
	return total, nil
}

// ResetAllCounts zeroes the counters on every node including the leader.
func (l *Leader) ResetAllCounts(ctx context.Context) error {
	l.counts.Reset()
	for _, node := range l.countNodes() {
		if _, err := l.cc.Load().Invoke(ctx, node, MethodResetCounts, nil, nil); err != nil {
			return fmt.Errorf("vfl: resetting %s: %w", node, err)
		}
	}
	return nil
}

// Scheme exposes the leader's HE scheme (used by integration tests).
func (l *Leader) Scheme() he.Scheme { return l.scheme }
