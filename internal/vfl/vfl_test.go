package vfl

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"

	"vfps/internal/dataset"
	"vfps/internal/mat"
	"vfps/internal/transport"
)

func testPartition(t *testing.T, name string, rows, parties int) (*dataset.Dataset, *dataset.Partition) {
	t.Helper()
	spec, err := dataset.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := spec.Generate(rows)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := dataset.VerticalSplit(d, parties, 42)
	if err != nil {
		t.Fatal(err)
	}
	return d, pt
}

func newCluster(t *testing.T, pt *dataset.Partition, scheme string) *Cluster {
	t.Helper()
	cl, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition:   pt,
		Scheme:      scheme,
		KeyBits:     256, // small for test speed; correctness is key-size independent
		ShuffleSeed: 7,
		Batch:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// bruteNeighbors computes the query's k nearest neighbours in the joint
// feature space directly, as pseudo IDs under the cluster's shared shuffle.
func bruteNeighbors(d *dataset.Dataset, pt *dataset.Partition, cl *Cluster, query, k int) []int {
	joint := pt.Joint()
	n := joint.Rows
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		if i == query {
			dist[i] = math.Inf(1)
			continue
		}
		dist[i] = mat.SqDist(joint.Row(query), joint.Row(i))
	}
	perm := cl.Parties[0].perm
	type cand struct {
		pid int
		d   float64
	}
	cands := make([]cand, 0, n-1)
	for i := 0; i < n; i++ {
		if i == query {
			continue
		}
		cands = append(cands, cand{pid: perm[i], d: dist[i]})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].pid < cands[b].pid
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].pid
	}
	return out
}

func TestRunQueryMatchesBruteForce(t *testing.T) {
	d, pt := testPartition(t, "Rice", 120, 4)
	cl := newCluster(t, pt, "plain")
	ctx := context.Background()
	for _, variant := range []Variant{VariantBase, VariantFagin} {
		for _, q := range []int{0, 17, 119} {
			res, err := cl.Leader.RunQuery(ctx, q, 5, variant)
			if err != nil {
				t.Fatalf("%s query %d: %v", variant, q, err)
			}
			want := bruteNeighbors(d, pt, cl, q, 5)
			got := append([]int{}, res.Neighbors...)
			// Distances can tie; compare as sets of the same size with the
			// same distance multiset by checking sorted ids match.
			sort.Ints(got)
			wantSorted := append([]int{}, want...)
			sort.Ints(wantSorted)
			for i := range got {
				if got[i] != wantSorted[i] {
					t.Fatalf("%s query %d: neighbours %v, want %v", variant, q, res.Neighbors, want)
				}
			}
		}
	}
}

func TestBaseAndFaginAgree(t *testing.T) {
	_, pt := testPartition(t, "Bank", 100, 4)
	cl := newCluster(t, pt, "plain")
	ctx := context.Background()
	queries := []int{1, 5, 33, 77}
	base, err := cl.Leader.Similarities(ctx, queries, 5, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	fagin, err := cl.Leader.Similarities(ctx, queries, 5, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.W {
		for j := range base.W[i] {
			if math.Abs(base.W[i][j]-fagin.W[i][j]) > 1e-9 {
				t.Fatalf("W[%d][%d]: base %g fagin %g", i, j, base.W[i][j], fagin.W[i][j])
			}
		}
	}
	if fagin.AvgCandidates > base.AvgCandidates {
		t.Fatalf("fagin candidates %g exceed base %g", fagin.AvgCandidates, base.AvgCandidates)
	}
}

func TestPaillierAndPlainAgree(t *testing.T) {
	_, pt := testPartition(t, "Rice", 60, 3)
	plain := newCluster(t, pt, "plain")
	pail := newCluster(t, pt, "paillier")
	ctx := context.Background()
	queries := []int{2, 30}
	a, err := plain.Leader.Similarities(ctx, queries, 4, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pail.Leader.Similarities(ctx, queries, 4, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		for j := range a.W[i] {
			if math.Abs(a.W[i][j]-b.W[i][j]) > 1e-6 {
				t.Fatalf("W[%d][%d]: plain %g paillier %g", i, j, a.W[i][j], b.W[i][j])
			}
		}
	}
}

func TestSimilarityMatrixProperties(t *testing.T) {
	_, pt := testPartition(t, "Credit", 150, 4)
	cl := newCluster(t, pt, "plain")
	rep, err := cl.Leader.Similarities(context.Background(), []int{3, 9, 50, 100, 149}, 5, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	p := len(rep.W)
	for i := 0; i < p; i++ {
		if rep.W[i][i] != 1 {
			t.Fatalf("diagonal W[%d][%d] = %g", i, i, rep.W[i][i])
		}
		for j := 0; j < p; j++ {
			if rep.W[i][j] < 0 || rep.W[i][j] > 1+1e-9 {
				t.Fatalf("W[%d][%d] = %g out of [0,1]", i, j, rep.W[i][j])
			}
			if math.Abs(rep.W[i][j]-rep.W[j][i]) > 1e-12 {
				t.Fatalf("asymmetry at %d,%d", i, j)
			}
		}
	}
}

func TestDuplicatePartiesHaveUnitSimilarity(t *testing.T) {
	_, pt := testPartition(t, "Rice", 80, 3)
	dup := pt.WithDuplicates(1, 11) // party 3 duplicates some original
	cl := newCluster(t, dup, "plain")
	rep, err := cl.Leader.Similarities(context.Background(), []int{4, 40, 70}, 5, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	src := dup.DuplicateOf[3]
	if w := rep.W[3][src]; math.Abs(w-1) > 1e-9 {
		t.Fatalf("duplicate similarity W[3][%d] = %g, want 1", src, w)
	}
}

func TestFaginPrunesCandidates(t *testing.T) {
	// With correlated partitions, Fagin must encrypt far fewer than N-1
	// instances per query.
	_, pt := testPartition(t, "Phishing", 400, 4)
	cl := newCluster(t, pt, "plain")
	rep, err := cl.Leader.Similarities(context.Background(), []int{10, 200}, 5, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgCandidates >= 399 {
		t.Fatalf("no pruning: %g candidates", rep.AvgCandidates)
	}
	t.Logf("avg candidates: %g of 399", rep.AvgCandidates)
}

func TestCountsAccounting(t *testing.T) {
	_, pt := testPartition(t, "Rice", 60, 3)
	cl := newCluster(t, pt, "plain")
	ctx := context.Background()
	if _, err := cl.Leader.Similarities(ctx, []int{5}, 4, VariantBase); err != nil {
		t.Fatal(err)
	}
	counts, err := cl.Leader.GatherCounts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Every party encrypts N-1 = 59 partial distances in BASE.
	for i := 0; i < 3; i++ {
		c := counts[PartyName(i)]
		if c.Encryptions != 59 {
			t.Fatalf("party %d encryptions = %d, want 59", i, c.Encryptions)
		}
		if c.DistanceFlops == 0 {
			t.Fatalf("party %d distance flops missing", i)
		}
	}
	// The server aggregates (P-1)*59 ciphertext additions.
	if c := counts[AggServerName]; c.CipherAdds != 2*59 {
		t.Fatalf("agg cipher adds = %d, want 118", c.CipherAdds)
	}
	// The leader decrypts all 59 aggregated distances.
	if c := counts["leader"]; c.Decryptions != 59 {
		t.Fatalf("leader decryptions = %d, want 59", c.Decryptions)
	}
	// Totals must equal the per-node sum.
	total, err := cl.Leader.TotalCounts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var manual int64
	for _, c := range counts {
		manual += c.Encryptions
	}
	if total.Encryptions != manual {
		t.Fatal("TotalCounts mismatch")
	}
	// Reset must zero everything.
	if err := cl.Leader.ResetAllCounts(ctx); err != nil {
		t.Fatal(err)
	}
	total, _ = cl.Leader.TotalCounts(ctx)
	if total.Encryptions != 0 || total.Decryptions != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestFaginEncryptsFewerThanBase(t *testing.T) {
	_, pt := testPartition(t, "Phishing", 300, 4)
	cl := newCluster(t, pt, "plain")
	ctx := context.Background()
	if _, err := cl.Leader.Similarities(ctx, []int{7, 70}, 5, VariantBase); err != nil {
		t.Fatal(err)
	}
	baseTotal, _ := cl.Leader.TotalCounts(ctx)
	if err := cl.Leader.ResetAllCounts(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Leader.Similarities(ctx, []int{7, 70}, 5, VariantFagin); err != nil {
		t.Fatal(err)
	}
	faginTotal, _ := cl.Leader.TotalCounts(ctx)
	if faginTotal.Encryptions >= baseTotal.Encryptions {
		t.Fatalf("fagin encryptions %d not fewer than base %d",
			faginTotal.Encryptions, baseTotal.Encryptions)
	}
	t.Logf("encryptions: base %d, fagin %d", baseTotal.Encryptions, faginTotal.Encryptions)
}

func TestLeaderValidation(t *testing.T) {
	_, pt := testPartition(t, "Rice", 40, 2)
	cl := newCluster(t, pt, "plain")
	ctx := context.Background()
	if _, err := cl.Leader.RunQuery(ctx, 0, 0, VariantBase); err == nil {
		t.Fatal("expected k=0 error")
	}
	if _, err := cl.Leader.RunQuery(ctx, 0, 5, Variant("bogus")); err == nil {
		t.Fatal("expected variant error")
	}
	if _, err := cl.Leader.RunQuery(ctx, -1, 5, VariantBase); err == nil {
		t.Fatal("expected query range error")
	}
	if _, err := cl.Leader.RunQuery(ctx, 0, 40, VariantBase); err == nil {
		t.Fatal("expected k>candidates error")
	}
	if _, err := cl.Leader.Similarities(ctx, nil, 5, VariantBase); err == nil {
		t.Fatal("expected empty query set error")
	}
}

func TestClusterValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := NewLocalCluster(ctx, ClusterConfig{}); err == nil {
		t.Fatal("expected partition error")
	}
	_, pt := testPartition(t, "Rice", 40, 2)
	if _, err := NewLocalCluster(ctx, ClusterConfig{Partition: pt, Scheme: "rot13"}); err == nil {
		t.Fatal("expected scheme error")
	}
}

func TestParticipantFailureSurfacesError(t *testing.T) {
	_, pt := testPartition(t, "Rice", 40, 3)
	cl := newCluster(t, pt, "plain")
	cl.Transport.InjectFailure(PartyName(1))
	_, err := cl.Leader.Similarities(context.Background(), []int{3}, 4, VariantFagin)
	if !errors.Is(err, transport.ErrInjectedFailure) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	// Recovery: clearing the fault restores service.
	cl.Transport.InjectFailure("")
	if _, err := cl.Leader.Similarities(context.Background(), []int{3}, 4, VariantFagin); err != nil {
		t.Fatalf("cluster did not recover: %v", err)
	}
}

func TestAggServerFailure(t *testing.T) {
	_, pt := testPartition(t, "Rice", 40, 3)
	cl := newCluster(t, pt, "plain")
	cl.Transport.InjectFailure(AggServerName)
	if _, err := cl.Leader.RunQuery(context.Background(), 0, 3, VariantBase); err == nil {
		t.Fatal("expected error when aggregation server is down")
	}
}

func TestIdentitySecurityPseudoIDs(t *testing.T) {
	// The ranking a participant ships to the server must be pseudo IDs, not
	// original IDs: for a non-trivial shuffle they differ.
	_, pt := testPartition(t, "Rice", 50, 2)
	cl := newCluster(t, pt, "plain")
	party := cl.Parties[0]
	qc, err := party.distances(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	identical := true
	for rank, pid := range qc.sortedPid {
		if party.inv[pid] != qc.sortedPid[rank] {
			identical = false
			break
		}
	}
	// Verify the permutation is actually shuffling (overwhelmingly likely).
	moved := 0
	for orig, pid := range party.perm {
		if orig != pid {
			moved++
		}
	}
	if moved < 10 {
		t.Fatalf("shuffle barely permutes: %d moved", moved)
	}
	_ = identical // rankings are pseudo-id space by construction; perm check above is the guarantee
	// All parties must share the same permutation.
	for i := 1; i < len(cl.Parties); i++ {
		for j, v := range cl.Parties[i].perm {
			if v != cl.Parties[0].perm[j] {
				t.Fatal("participants disagree on the pseudo-ID permutation")
			}
		}
	}
}

func TestParticipantValidation(t *testing.T) {
	if _, err := NewParticipant(0, nil, nil, 1); err == nil {
		t.Fatal("expected nil-data error")
	}
	m := mat.New(3, 2)
	if _, err := NewParticipant(0, m, nil, 1); err == nil {
		t.Fatal("expected nil-scheme error")
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	// Wire the full topology over real TCP sockets: one server per role.
	_, pt := testPartition(t, "Rice", 60, 3)
	ctx := context.Background()

	ks, err := NewKeyServer("plain", 0)
	if err != nil {
		t.Fatal(err)
	}
	keySrv, err := transport.ListenTCP("127.0.0.1:0", ks.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer keySrv.Close()

	directory := map[string]string{KeyServerName: keySrv.Addr()}
	bootstrapCli := transport.NewTCPClient(directory)
	defer bootstrapCli.Close()
	pub, err := FetchPublicScheme(ctx, bootstrapCli, KeyServerName)
	if err != nil {
		t.Fatal(err)
	}

	partyNames := make([]string, pt.P())
	var partySrvs []*transport.TCPServer
	for i := 0; i < pt.P(); i++ {
		part, err := NewParticipant(i, pt.Parties[i], pub, 7)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := transport.ListenTCP("127.0.0.1:0", part.Handler())
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		partySrvs = append(partySrvs, srv)
		partyNames[i] = PartyName(i)
		directory[partyNames[i]] = srv.Addr()
	}
	_ = partySrvs

	aggCli := transport.NewTCPClient(directory)
	defer aggCli.Close()
	agg, err := NewAggServer(aggCli, partyNames, pub)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv, err := transport.ListenTCP("127.0.0.1:0", agg.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer aggSrv.Close()
	directory[AggServerName] = aggSrv.Addr()

	leaderCli := transport.NewTCPClient(directory)
	defer leaderCli.Close()
	priv, err := FetchPrivateScheme(ctx, leaderCli, KeyServerName)
	if err != nil {
		t.Fatal(err)
	}
	leader, err := NewLeader(leaderCli, AggServerName, partyNames, priv, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := leader.Similarities(ctx, []int{2, 30, 59}, 4, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}

	// The TCP run must agree with the in-memory run bit-for-bit.
	mem := newCluster(t, pt, "plain")
	memRep, err := mem.Leader.Similarities(ctx, []int{2, 30, 59}, 4, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.W {
		for j := range rep.W[i] {
			if math.Abs(rep.W[i][j]-memRep.W[i][j]) > 1e-12 {
				t.Fatalf("TCP vs memory divergence at %d,%d", i, j)
			}
		}
	}
}

func TestThresholdVariantMatchesBase(t *testing.T) {
	_, pt := testPartition(t, "Bank", 120, 4)
	cl := newCluster(t, pt, "plain")
	ctx := context.Background()
	queries := []int{0, 25, 60, 119}
	base, err := cl.Leader.Similarities(ctx, queries, 5, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := cl.Leader.Similarities(ctx, queries, 5, VariantThreshold)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.W {
		for j := range base.W[i] {
			if math.Abs(base.W[i][j]-ta.W[i][j]) > 1e-9 {
				t.Fatalf("W[%d][%d]: base %g threshold %g", i, j, base.W[i][j], ta.W[i][j])
			}
		}
	}
	if ta.AvgCandidates > base.AvgCandidates {
		t.Fatalf("TA candidates %g exceed base %g", ta.AvgCandidates, base.AvgCandidates)
	}
}

func TestThresholdPrunesAtLeastAsHardAsFagin(t *testing.T) {
	_, pt := testPartition(t, "Phishing", 400, 4)
	cl := newCluster(t, pt, "plain")
	ctx := context.Background()
	queries := []int{10, 200}
	fagin, err := cl.Leader.Similarities(ctx, queries, 5, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := cl.Leader.Similarities(ctx, queries, 5, VariantThreshold)
	if err != nil {
		t.Fatal(err)
	}
	// TA stops as soon as the bound allows; it must not see substantially
	// more candidates than Fagin under the same batch size.
	if ta.AvgCandidates > fagin.AvgCandidates+float64(8*pt.P()) {
		t.Fatalf("TA candidates %g much worse than Fagin %g", ta.AvgCandidates, fagin.AvgCandidates)
	}
	t.Logf("candidates: fagin %.1f, threshold %.1f", fagin.AvgCandidates, ta.AvgCandidates)
}

func TestThresholdVariantWithPaillier(t *testing.T) {
	_, pt := testPartition(t, "Rice", 60, 3)
	cl := newCluster(t, pt, "paillier")
	res, err := cl.Leader.RunQuery(context.Background(), 5, 4, VariantThreshold)
	if err != nil {
		t.Fatal(err)
	}
	plain := newCluster(t, pt, "plain")
	want, err := plain.Leader.RunQuery(context.Background(), 5, 4, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]int{}, res.Neighbors...)
	wantN := append([]int{}, want.Neighbors...)
	sort.Ints(got)
	sort.Ints(wantN)
	for i := range got {
		if got[i] != wantN[i] {
			t.Fatalf("TA+paillier neighbours %v, want %v", res.Neighbors, want.Neighbors)
		}
	}
}

func TestThresholdUsesMoreLeaderRoundsThanFagin(t *testing.T) {
	// The reason the paper prefers Fagin: TA's termination check needs a
	// leader decryption per scan round.
	_, pt := testPartition(t, "Credit", 200, 4)
	cl := newCluster(t, pt, "plain")
	ctx := context.Background()
	if _, err := cl.Leader.Similarities(ctx, []int{7}, 5, VariantFagin); err != nil {
		t.Fatal(err)
	}
	faginLeader := cl.Leader.Counts()
	if err := cl.Leader.ResetAllCounts(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Leader.Similarities(ctx, []int{7}, 5, VariantThreshold); err != nil {
		t.Fatal(err)
	}
	taLeader := cl.Leader.Counts()
	// Fagin decrypts once per candidate; TA additionally decrypts a τ per
	// round, so with similar candidate counts TA's leader does no less work.
	if taLeader.Decryptions == 0 || faginLeader.Decryptions == 0 {
		t.Fatal("missing decryption accounting")
	}
	t.Logf("leader decryptions: fagin %d, threshold %d", faginLeader.Decryptions, taLeader.Decryptions)
}

func TestParallelSimilaritiesMatchSequential(t *testing.T) {
	_, pt := testPartition(t, "Credit", 200, 4)
	cl := newCluster(t, pt, "plain")
	ctx := context.Background()
	queries := []int{1, 20, 40, 60, 80, 100, 120, 140, 160, 199}
	seq, err := cl.Leader.Similarities(ctx, queries, 5, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	par, err := cl.Leader.SimilaritiesParallel(ctx, queries, 5, VariantFagin, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.W {
		for j := range seq.W[i] {
			if seq.W[i][j] != par.W[i][j] {
				t.Fatalf("parallel diverges at %d,%d: %g vs %g", i, j, seq.W[i][j], par.W[i][j])
			}
		}
	}
	if seq.AvgCandidates != par.AvgCandidates {
		t.Fatal("candidate stats diverge")
	}
}

func TestParallelSimilaritiesErrorPropagates(t *testing.T) {
	_, pt := testPartition(t, "Rice", 50, 3)
	cl := newCluster(t, pt, "plain")
	// One invalid query among many must fail the whole batch.
	queries := []int{1, 2, 3, -5, 4, 5}
	if _, err := cl.Leader.SimilaritiesParallel(context.Background(), queries, 4, VariantFagin, 3); err == nil {
		t.Fatal("expected error for invalid query")
	}
}

func TestParticipantCacheEviction(t *testing.T) {
	_, pt := testPartition(t, "Rice", 60, 2)
	cl := newCluster(t, pt, "plain")
	party := cl.Parties[0]
	// Touch more queries than the cache holds.
	for q := 0; q < cacheLimit+10; q++ {
		if _, err := party.distances(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	party.mu.Lock()
	size := len(party.cache)
	party.mu.Unlock()
	if size > cacheLimit {
		t.Fatalf("cache grew to %d entries (limit %d)", size, cacheLimit)
	}
	// Evicted entries must still be recomputable.
	if _, err := party.distances(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestSecAggClusterMatchesPlain(t *testing.T) {
	_, pt := testPartition(t, "Bank", 100, 4)
	plain := newCluster(t, pt, "plain")
	masked := newCluster(t, pt, "secagg")
	ctx := context.Background()
	queries := []int{1, 30, 75}
	for _, variant := range []Variant{VariantBase, VariantFagin, VariantThreshold} {
		a, err := plain.Leader.Similarities(ctx, queries, 5, variant)
		if err != nil {
			t.Fatalf("plain/%s: %v", variant, err)
		}
		b, err := masked.Leader.Similarities(ctx, queries, 5, variant)
		if err != nil {
			t.Fatalf("secagg/%s: %v", variant, err)
		}
		for i := range a.W {
			for j := range a.W[i] {
				if math.Abs(a.W[i][j]-b.W[i][j]) > 1e-4 {
					t.Fatalf("%s: W[%d][%d]: plain %g secagg %g", variant, i, j, a.W[i][j], b.W[i][j])
				}
			}
		}
	}
}

func TestSecAggHidesValuesFromServer(t *testing.T) {
	// The aggregation server sees only masked words: a single party's
	// response must not decode to its true partial distance.
	_, pt := testPartition(t, "Rice", 50, 3)
	cl := newCluster(t, pt, "secagg")
	party := cl.Parties[0]
	raw, err := party.Handler()(context.Background(), MethodEncryptCandidates,
		mustGob(EncryptCandidatesReq{Query: 0, PseudoIDs: []int{1, 2, 3}}))
	if err != nil {
		t.Fatal(err)
	}
	var resp EncryptCandidatesResp
	if err := transport.DecodeGob(raw, &resp); err != nil {
		t.Fatal(err)
	}
	qc, err := party.distances(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	scheme := cl.Leader.Scheme()
	for i, pid := range []int{1, 2, 3} {
		truth := qc.dist[party.inv[pid]]
		decoded, err := scheme.Decrypt(resp.Ciphers[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(decoded-truth) < 1e-3 {
			t.Fatalf("server could read party 0's partial distance %g", truth)
		}
	}
}

func TestSecAggNoHEOperations(t *testing.T) {
	// Masking replaces public-key work with hashing: ciphertexts are 8-byte
	// words, so communication drops by ~32x vs a 1024-bit-modulus scheme.
	_, pt := testPartition(t, "Rice", 60, 3)
	cl := newCluster(t, pt, "secagg")
	ctx := context.Background()
	if _, err := cl.Leader.Similarities(ctx, []int{5}, 4, VariantFagin); err != nil {
		t.Fatal(err)
	}
	counts, err := cl.Leader.GatherCounts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p0 := counts[PartyName(0)]
	if p0.Encryptions == 0 {
		t.Fatal("masking ops should still be counted as protections")
	}
	if p0.BytesSent >= p0.ItemsSent*32 {
		t.Fatalf("secagg bytes/item too high: %d bytes for %d items", p0.BytesSent, p0.ItemsSent)
	}
}

func TestDPClusterRunsAndPerturbs(t *testing.T) {
	_, pt := testPartition(t, "Rice", 80, 3)
	ctx := context.Background()
	mk := func(eps float64) *SimilarityReport {
		cl, err := NewLocalCluster(ctx, ClusterConfig{
			Partition: pt, Scheme: "dp", DPEpsilon: eps, DPDelta: 1e-5,
			ShuffleSeed: 7, Batch: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := cl.Leader.Similarities(ctx, []int{3, 40, 70}, 5, VariantFagin)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := newCluster(t, pt, "plain")
	truth, err := plain.Leader.Similarities(ctx, []int{3, 40, 70}, 5, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	// Large epsilon: W close to the exact protocol.
	weak := mk(1000)
	for i := range truth.W {
		for j := range truth.W[i] {
			if math.Abs(weak.W[i][j]-truth.W[i][j]) > 0.05 {
				t.Fatalf("ε=1000 should barely perturb: W[%d][%d] %g vs %g",
					i, j, weak.W[i][j], truth.W[i][j])
			}
		}
	}
	// Tiny epsilon: the estimate must visibly differ somewhere (the paper's
	// point that noise costs accuracy).
	strong := mk(0.01)
	var maxDiff float64
	for i := range truth.W {
		for j := range truth.W[i] {
			if d := math.Abs(strong.W[i][j] - truth.W[i][j]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff < 1e-4 {
		t.Fatalf("ε=0.01 left the similarity estimate untouched (max diff %g)", maxDiff)
	}
}

func TestDPClusterValidation(t *testing.T) {
	_, pt := testPartition(t, "Rice", 40, 2)
	if _, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition: pt, Scheme: "dp", DPEpsilon: -2,
	}); err == nil {
		t.Fatal("expected epsilon validation error")
	}
}

func TestExtendWithPartiesApproximatesFullRerun(t *testing.T) {
	// Start with 3 of 4 parties, record the similarity run, then let the
	// 4th join via the warm-start extension and compare against the exact
	// 4-party protocol.
	_, ptFull := testPartition(t, "Credit", 150, 4)
	sub, err := ptFull.Select([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cl := newCluster(t, sub, "plain")
	ctx := context.Background()
	queries := []int{2, 30, 60, 90, 120}

	acc := cl.Leader.NewAccumulator()
	acc.Record = true
	if err := cl.Leader.Accumulate(ctx, queries, 5, VariantFagin, 1, acc); err != nil {
		t.Fatal(err)
	}
	name, err := cl.AddParticipant(ptFull.Parties[3])
	if err != nil {
		t.Fatal(err)
	}
	ext, err := cl.Leader.ExtendWithParties(ctx, []string{name}, acc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.W) != 4 {
		t.Fatalf("extended W is %dx", len(ext.W))
	}

	// Exact baseline: full 4-party cluster with the same seeds.
	full := newCluster(t, ptFull, "plain")
	exact, err := full.Leader.Similarities(ctx, queries, 5, VariantFagin)
	if err != nil {
		t.Fatal(err)
	}
	// The old 3x3 block must match closely; the new row/column is an
	// approximation (neighbour sets exclude the joiner's features) so allow
	// a loose tolerance.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(ext.W[i][j]-exact.W[i][j]) > 0.15 {
				t.Fatalf("old block drifted at %d,%d: %g vs %g", i, j, ext.W[i][j], exact.W[i][j])
			}
		}
	}
	for i := 0; i < 4; i++ {
		if math.Abs(ext.W[i][3]-exact.W[i][3]) > 0.25 {
			t.Fatalf("joiner column too far off at %d: %g vs %g", i, ext.W[i][3], exact.W[i][3])
		}
		if math.Abs(ext.W[i][3]-ext.W[3][i]) > 1e-12 {
			t.Fatal("extended matrix not symmetric")
		}
	}
}

func TestExtendWithPartiesValidation(t *testing.T) {
	_, pt := testPartition(t, "Rice", 40, 2)
	cl := newCluster(t, pt, "plain")
	ctx := context.Background()
	acc := cl.Leader.NewAccumulator() // Record not set
	if err := cl.Leader.Accumulate(ctx, []int{1}, 3, VariantFagin, 1, acc); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Leader.ExtendWithParties(ctx, []string{"party/9"}, acc); err == nil {
		t.Fatal("expected recording-required error")
	}
	rec := cl.Leader.NewAccumulator()
	rec.Record = true
	if err := cl.Leader.Accumulate(ctx, []int{1}, 3, VariantFagin, 1, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Leader.ExtendWithParties(ctx, nil, rec); err == nil {
		t.Fatal("expected no-parties error")
	}
	if _, err := cl.Leader.ExtendWithParties(ctx, []string{"party/9"}, rec); err == nil {
		t.Fatal("expected unknown-peer error")
	}
}

func TestAddParticipantSecAggRejected(t *testing.T) {
	_, pt := testPartition(t, "Rice", 40, 2)
	cl := newCluster(t, pt, "secagg")
	if _, err := cl.AddParticipant(pt.Parties[0]); err == nil {
		t.Fatal("expected secagg fixed-size error")
	}
}

func TestFetchSchemeErrors(t *testing.T) {
	tr := &transport.Memory{}
	ctx := context.Background()
	// Key server absent.
	if _, err := FetchPublicScheme(ctx, tr, KeyServerName); err == nil {
		t.Fatal("expected unknown-peer error")
	}
	if _, err := FetchPrivateScheme(ctx, tr, KeyServerName); err == nil {
		t.Fatal("expected unknown-peer error")
	}
	// Key server speaking an unknown scheme.
	tr.Register(KeyServerName, func(ctx context.Context, method string, req []byte) ([]byte, error) {
		return transport.EncodeGob(PublicKeyResp{Scheme: "rot13"})
	})
	if _, err := FetchPublicScheme(ctx, tr, KeyServerName); err == nil {
		t.Fatal("expected unknown-scheme error")
	}
	// Garbage payload.
	tr.Register(KeyServerName, func(ctx context.Context, method string, req []byte) ([]byte, error) {
		return []byte{0xff, 0x01}, nil
	})
	if _, err := FetchPublicScheme(ctx, tr, KeyServerName); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestKeyServerValidation(t *testing.T) {
	if _, err := NewKeyServer("rot13", 0); err == nil {
		t.Fatal("expected unknown-scheme error")
	}
	if _, err := NewKeyServerSecAgg(1, 1); err == nil {
		t.Fatal("expected parties error")
	}
	if _, err := NewKeyServerDP(-1, 1e-5, 1); err == nil {
		t.Fatal("expected epsilon error")
	}
	ks, err := NewKeyServer("plain", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ks.Handler()(context.Background(), "nope", nil); err == nil {
		t.Fatal("expected unknown-method error")
	}
}

func TestParticipantHandlerErrors(t *testing.T) {
	_, pt := testPartition(t, "Rice", 30, 2)
	cl := newCluster(t, pt, "plain")
	h := cl.Parties[0].Handler()
	ctx := context.Background()
	if _, err := h(ctx, "nope", nil); err == nil {
		t.Fatal("expected unknown-method error")
	}
	if _, err := h(ctx, MethodRankingBatch, []byte{0xff}); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := h(ctx, MethodRankingBatch, mustGob(RankingBatchReq{Query: 0, Offset: -1, Count: 5})); err == nil {
		t.Fatal("expected offset error")
	}
	if _, err := h(ctx, MethodRankingBatch, mustGob(RankingBatchReq{Query: 0, Offset: 0, Count: 0})); err == nil {
		t.Fatal("expected count error")
	}
	if _, err := h(ctx, MethodEncryptCandidates, mustGob(EncryptCandidatesReq{Query: 0, PseudoIDs: []int{999}})); err == nil {
		t.Fatal("expected candidate range error")
	}
	if _, err := h(ctx, MethodNeighborSum, mustGob(NeighborSumReq{Query: 0, PseudoIDs: []int{-1}})); err == nil {
		t.Fatal("expected neighbour range error")
	}
	if _, err := h(ctx, MethodEncryptRankScore, mustGob(EncryptRankScoreReq{Query: 0, Rank: -3})); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestSimilaritiesContextCancellation(t *testing.T) {
	_, pt := testPartition(t, "Credit", 200, 4)
	cl := newCluster(t, pt, "plain")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Leader.SimilaritiesParallel(ctx, []int{1, 2, 3, 4}, 5, VariantFagin, 2); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestAggServerHandlerErrors(t *testing.T) {
	_, pt := testPartition(t, "Rice", 30, 2)
	cl := newCluster(t, pt, "plain")
	h := cl.Agg.Handler()
	ctx := context.Background()
	if _, err := h(ctx, "nope", nil); err == nil {
		t.Fatal("expected unknown-method error")
	}
	if _, err := h(ctx, MethodFaginCollect, mustGob(FaginCollectReq{Query: 0, K: 0, Batch: 8})); err == nil {
		t.Fatal("expected k validation error")
	}
	if _, err := h(ctx, MethodFaginCollect, mustGob(FaginCollectReq{Query: 0, K: 5, Batch: 0})); err == nil {
		t.Fatal("expected batch validation error")
	}
	if _, err := h(ctx, MethodFaginCollect, mustGob(FaginCollectReq{Query: 0, K: 99, Batch: 8})); err == nil {
		t.Fatal("expected exhaustion error")
	}
}
