package vfl

import (
	"context"
	"fmt"
	"testing"

	"vfps/internal/dataset"
	"vfps/internal/he"
)

func packedCluster(t *testing.T, pt *dataset.Partition, pack bool) *Cluster {
	t.Helper()
	cl, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition:   pt,
		Scheme:      "paillier",
		KeyBits:     256,
		ShuffleSeed: 7,
		Batch:       8,
		Pack:        pack,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestPackedSelectionIdentity is the packing contract: slot-packed ciphertexts
// change only how many ciphertexts move, never what the leader decides. The
// packed cluster must produce the exact similarity matrix and neighbour sets
// of the scalar cluster while sending strictly fewer bytes.
func TestPackedSelectionIdentity(t *testing.T) {
	_, pt := testPartition(t, "Bank", 60, 3)
	ctx := context.Background()
	queries := []int{0, 11, 29, 58}

	scalar := packedCluster(t, pt, false)
	packed := packedCluster(t, pt, true)
	if pf := packed.pubScheme.(*he.Paillier).PackFactor(); pf < 2 {
		t.Fatalf("packed cluster pack factor = %d, want ≥ 2", pf)
	}

	for _, variant := range []Variant{VariantBase, VariantFagin, VariantThreshold} {
		t.Run(fmt.Sprint(variant), func(t *testing.T) {
			sq, err := scalar.Leader.RunQuery(ctx, queries[0], 3, variant)
			if err != nil {
				t.Fatal(err)
			}
			pq, err := packed.Leader.RunQuery(ctx, queries[0], 3, variant)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(sq.Neighbors) != fmt.Sprint(pq.Neighbors) {
				t.Fatalf("neighbours differ: %v vs %v", sq.Neighbors, pq.Neighbors)
			}
		})
	}

	for _, variant := range []Variant{VariantBase, VariantFagin} {
		srep, err := scalar.Leader.Similarities(ctx, queries, 3, variant)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := packed.Leader.Similarities(ctx, queries, 3, variant)
		if err != nil {
			t.Fatal(err)
		}
		for i := range srep.W {
			for j := range srep.W[i] {
				if srep.W[i][j] != prep.W[i][j] {
					t.Fatalf("%s: W[%d][%d] differs: %v vs %v",
						variant, i, j, srep.W[i][j], prep.W[i][j])
				}
			}
		}
	}

	sc, err := scalar.Leader.TotalCounts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := packed.Leader.TotalCounts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pc.BytesSent >= sc.BytesSent {
		t.Fatalf("packed run sent %d bytes, scalar %d — packing should shrink traffic",
			pc.BytesSent, sc.BytesSent)
	}
	if pc.Encryptions >= sc.Encryptions {
		t.Fatalf("packed run performed %d encryptions, scalar %d — counters should reflect packed ciphertexts",
			pc.Encryptions, sc.Encryptions)
	}
}

// TestPackedRejectsUndersizedKey pins the failure mode: a modulus too small to
// hold one slot must fail cluster construction instead of silently degrading.
func TestPackedRejectsUndersizedKey(t *testing.T) {
	_, pt := testPartition(t, "Bank", 20, 2)
	_, err := NewLocalCluster(context.Background(), ClusterConfig{
		Partition:   pt,
		Scheme:      "paillier",
		KeyBits:     64,
		ShuffleSeed: 7,
		Pack:        true,
	})
	if err == nil {
		t.Fatal("64-bit key accepted packing")
	}
}
