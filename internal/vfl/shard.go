package vfl

import (
	"context"
	"fmt"
	"math/bits"

	"vfps/internal/costmodel"
	"vfps/internal/obs"
	"vfps/internal/wire"
)

// Sharded aggregation: the ciphertext tree reduce is index-deterministic —
// reduceVectors combines vecs[lo] += vecs[lo+span] for span = 1, 2, 4, … — so
// cutting the party axis into aligned power-of-two subtrees changes nothing
// about which pairs are added in which order. Every combination with
// span < SubtreeSize stays inside one subtree (even the ragged final one,
// whose local tree over p mod SubtreeSize parties performs exactly the
// combinations the full tree performs in that index range), and every
// combination with span ≥ SubtreeSize is exactly the tree reduce over the
// subtree roots in shard order. A coordinator that fans subtrees out to
// workers, reduces each locally, and tree-reduces the shard roots therefore
// produces bit-identical aggregates to the single-server path — Paillier
// addition is deterministic given its inputs.
//
// Adaptive pack negotiation is unchanged: each worker advertises the maximum
// NeedBits over its parties, the coordinator folds the maximum over workers —
// the same monotone maximum the unsharded server folds over all parties — so
// the dictated geometry trajectory is identical round for round.
//
// A worker RPC failure degrades, not fails: the coordinator re-collects that
// shard's parties directly and reduces the subtree locally (counted in
// vfps_shard_retries_total). Parties key their delta caches per aggregator
// link, so a failover pull may trip ErrDeltaCacheMiss; the standard one-shot
// NoCache retry in pullCandidates/pullAll absorbs it with a full resend.

// AggWorkerName returns the node name of shard worker i, mirroring PartyName.
func AggWorkerName(i int) string { return fmt.Sprintf("aggworker/%d", i) }

// ShardPlan assigns aligned power-of-two subtrees of the party axis to
// aggregation workers: worker i owns parties [i·SubtreeSize,
// min((i+1)·SubtreeSize, P)). The alignment is what preserves bit-identity
// (see the package comment above); Validate enforces it.
type ShardPlan struct {
	// SubtreeSize is the number of consecutive parties per shard; must be a
	// power of two so shard boundaries align with the reduce tree's cuts.
	SubtreeSize int
	// Workers lists the shard workers' node names in shard order; worker i
	// serves shard i. Must hold exactly ceil(P/SubtreeSize) names.
	Workers []string
}

// Validate checks the plan against a party count.
func (sp *ShardPlan) Validate(parties int) error {
	if parties <= 0 {
		return fmt.Errorf("vfl: shard plan over %d parties", parties)
	}
	if sp.SubtreeSize <= 0 || bits.OnesCount(uint(sp.SubtreeSize)) != 1 {
		return fmt.Errorf("vfl: shard subtree size %d is not a power of two", sp.SubtreeSize)
	}
	shards := (parties + sp.SubtreeSize - 1) / sp.SubtreeSize
	if len(sp.Workers) != shards {
		return fmt.Errorf("vfl: shard plan has %d workers, want %d (= ceil(%d/%d))",
			len(sp.Workers), shards, parties, sp.SubtreeSize)
	}
	seen := make(map[string]bool, len(sp.Workers))
	for _, w := range sp.Workers {
		if w == "" {
			return fmt.Errorf("vfl: shard plan has an empty worker name")
		}
		if seen[w] {
			return fmt.Errorf("vfl: duplicate shard worker %q", w)
		}
		seen[w] = true
	}
	return nil
}

// shardRange returns the party index range [lo, hi) of shard i.
func (sp *ShardPlan) shardRange(i, parties int) (lo, hi int) {
	lo = i * sp.SubtreeSize
	hi = min(lo+sp.SubtreeSize, parties)
	return lo, hi
}

// Range is shardRange for external deployment tooling (cmd/vfpsnode builds
// each worker's party subset from it).
func (sp *ShardPlan) Range(i, parties int) (lo, hi int) { return sp.shardRange(i, parties) }

// PlanSubtrees sizes a shard plan: the smallest power-of-two subtree that
// spreads parties over at most maxWorkers shards. Returns the subtree size
// and the resulting shard count (≤ maxWorkers; 1 means sharding is moot).
func PlanSubtrees(parties, maxWorkers int) (size, shards int) {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	per := (parties + maxWorkers - 1) / maxWorkers
	size = 1
	for size < per {
		size *= 2
	}
	return size, (parties + size - 1) / size
}

// SetShardPlan installs (or, with nil, removes) the coordinator's shard plan.
// With a plan set, collection fan-outs go to the shard workers instead of the
// parties; the workers must be registered on the same transport and built
// over the matching party subsets (see ClusterConfig.ShardWorkers). Not safe
// to call concurrently with in-flight collections.
func (a *AggServer) SetShardPlan(plan *ShardPlan) error {
	if plan == nil {
		a.plan = nil
		return nil
	}
	if err := plan.Validate(len(a.parties)); err != nil {
		return err
	}
	cp := *plan
	cp.Workers = append([]string(nil), plan.Workers...)
	a.plan = &cp
	return nil
}

// ShardWorkers returns the coordinator's worker roster (nil when unsharded).
func (a *AggServer) ShardWorkers() []string {
	if a.plan == nil {
		return nil
	}
	return append([]string(nil), a.plan.Workers...)
}

// metricShardRetries counts shard collections the coordinator re-ran against
// the shard's parties directly after the assigned worker failed.
const metricShardRetries = "vfps_shard_retries_total"

func declareShard(reg *obs.Registry) *obs.CounterVec {
	return reg.Counter(metricShardRetries,
		"Shard collections re-collected directly from the shard's parties by the coordinator after the assigned aggregation worker failed.",
		"worker")
}

// DeclareShardMetrics pre-declares the shard-retry family on reg so it
// renders on /metrics before the first failover. Safe on a nil registry.
func DeclareShardMetrics(reg *obs.Registry) { declareShard(reg) }

func (a *AggServer) recordShardRetry(worker string) {
	reg := a.o.Load().Registry()
	if reg == nil {
		return
	}
	declareShard(reg).With(worker).Inc()
}

// collectSharded fans one collection out over the shard workers and enforces
// cross-shard geometry uniformity, mirroring the direct party fan-out: each
// worker returns its locally reduced subtree root, and the roots stand in for
// parties in the coordinator's uniformity/negotiation logic.
func (a *AggServer) collectSharded(ctx context.Context, query int, pids []int, all bool, dictate int, opt payloadOpts) ([]partyVec, int, int, error) {
	ctx, msp := a.tracer().Start(ctx, SpanShardMerge)
	msp.SetLabelInt("shards", int64(len(a.plan.Workers)))
	defer msp.End()
	collect := func(d int) ([]partyVec, error) {
		pvs := make([]partyVec, len(a.plan.Workers))
		err := a.fanOutOver(ctx, a.plan.Workers, func(wi int, worker string) error {
			pv, err := a.pullShard(ctx, wi, worker, query, pids, all, d, opt)
			if err != nil {
				return err
			}
			pvs[wi] = pv
			return nil
		})
		return pvs, err
	}
	return a.collectUniform(a.plan.Workers, dictate, collect)
}

// pullShard fetches one shard's reduced vector from its worker, falling back
// to a direct collection over the shard's parties when the worker RPC fails.
func (a *AggServer) pullShard(ctx context.Context, wi int, worker string, query int, pids []int, all bool, dictate int, opt payloadOpts) (partyVec, error) {
	req := &ShardCollectReq{Query: query, All: all, PackBits: dictate,
		Delta: opt.delta, NoCache: opt.noCache}
	if !all {
		req.PseudoIDs = pids
	}
	var resp ShardCollectResp
	if err := a.call(ctx, worker, MethodShardCollect, req, &resp); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return partyVec{}, cerr
		}
		a.recordShardRetry(worker)
		return a.collectShardLocal(ctx, wi, query, pids, all, dictate, opt)
	}
	out := pids
	if all {
		out = resp.PseudoIDs
	}
	factor := normFactor(resp.PackFactor)
	if want := packedLen(len(out), factor); len(resp.Ciphers) != want {
		return partyVec{}, fmt.Errorf("vfl: %s returned %d aggregates for %d ids, want %d",
			worker, len(resp.Ciphers), len(out), want)
	}
	return partyVec{pids: out, ciphers: resp.Ciphers, factor: factor,
		packBits: resp.PackBits, needBits: resp.NeedBits}, nil
}

// collectShardLocal is the failover path: the coordinator collects the
// shard's parties itself and reduces the subtree locally, reproducing the
// worker's output bit for bit (same parties, same dictate, same tree shape).
func (a *AggServer) collectShardLocal(ctx context.Context, wi, query int, pids []int, all bool, dictate int, opt payloadOpts) (partyVec, error) {
	lo, hi := a.plan.shardRange(wi, len(a.parties))
	parties := a.parties[lo:hi]
	collect := func(d int) ([]partyVec, error) {
		return a.collectSubtree(ctx, parties, query, pids, all, d, opt)
	}
	pvs, factor, packBits, err := a.collectUniform(parties, dictate, collect)
	if err != nil {
		return partyVec{}, err
	}
	if all {
		if err := samePseudoIDs(parties, pvs); err != nil {
			return partyVec{}, err
		}
	}
	return a.reduceSubtree(ctx, pvs, factor, packBits)
}

// reduceSubtree tree-reduces a shard's party vectors into one root vector,
// carrying the shard-maximum NeedBits advertisement upward.
func (a *AggServer) reduceSubtree(ctx context.Context, pvs []partyVec, factor, packBits int) (partyVec, error) {
	need := 0
	vecs := make([][][]byte, len(pvs))
	for i := range pvs {
		vecs[i] = pvs[i].ciphers
		if pvs[i].needBits > need {
			need = pvs[i].needBits
		}
	}
	agg, err := a.reduceVectors(ctx, vecs)
	if err != nil {
		return partyVec{}, err
	}
	return partyVec{pids: pvs[0].pids, ciphers: agg, factor: factor,
		packBits: packBits, needBits: need}, nil
}

// shardCollect serves MethodShardCollect on a shard worker: collect this
// worker's parties under the coordinator-dictated geometry, reduce the
// subtree, and return the root. Intra-shard mixed compliance falls back to
// one static re-collect exactly as the unsharded server would; the
// coordinator then sees the static geometry from this shard and re-dispatches
// all shards statically, matching the unsharded mixed-round recovery.
func (a *AggServer) shardCollect(ctx context.Context, codec wire.Codec, r ShardCollectReq) ([]byte, error) {
	ctx, ssp := a.tracer().Start(ctx, SpanShardCollect)
	ssp.SetLabelInt("parties", int64(len(a.parties)))
	defer ssp.End()
	opt := payloadOpts{delta: r.Delta, noCache: r.NoCache}
	collect := func(d int) ([]partyVec, error) {
		return a.collectSubtree(ctx, a.parties, r.Query, r.PseudoIDs, r.All, d, opt)
	}
	pvs, factor, packBits, err := a.collectUniform(a.parties, r.PackBits, collect)
	if err != nil {
		return nil, err
	}
	if r.All {
		if err := samePseudoIDs(a.parties, pvs); err != nil {
			return nil, err
		}
	}
	pv, err := a.reduceSubtree(ctx, pvs, factor, packBits)
	if err != nil {
		return nil, err
	}
	resp := &ShardCollectResp{Ciphers: pv.ciphers, PackFactor: factor,
		PackBits: packBits, NeedBits: pv.needBits}
	if r.All {
		resp.PseudoIDs = pv.pids
	}
	return reply(codec, resp, &a.counts, &a.roleObs,
		costmodel.Raw{ItemsSent: int64(len(pv.ciphers)), Messages: 1})
}
