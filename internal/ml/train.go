package ml

import (
	"fmt"
	"math"
	"math/rand"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/mat"
)

// TrainConfig mirrors the paper's training protocol (§V-A): mini-batches of
// 100, at most 200 epochs with early stopping after 5 epochs without
// validation-loss improvement, and a learning-rate grid search over
// {0.001, 0.01, 0.1} scored on validation accuracy.
type TrainConfig struct {
	BatchSize int
	MaxEpochs int
	Patience  int
	LRGrid    []float64
	Seed      int64
	// Counts, when non-nil, accumulates the federated training cost: per
	// batch, participants encrypt their forward outputs, the server
	// aggregates and decrypts them, and gradients travel back.
	Counts *costmodel.Counts
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 200
	}
	if c.Patience <= 0 {
		c.Patience = 5
	}
	if len(c.LRGrid) == 0 {
		c.LRGrid = []float64{0.001, 0.01, 0.1}
	}
	return c
}

// FitReport describes one completed Fit.
type FitReport struct {
	BestLR      float64
	Epochs      int // epochs run at the chosen learning rate
	ValLoss     float64
	ValAccuracy float64
}

// gradModel is the contract the shared training loop drives. Parameters are
// exposed as one flat slice so Adam state survives across batches.
type gradModel interface {
	// params returns the flat parameter vector (aliased, mutated in place).
	params() []float64
	// forward computes logits (rows×C) for the given partition rows and
	// caches activations for backward.
	forward(pt *dataset.Partition, rows []int) *mat.Matrix
	// backward consumes dLoss/dLogits and returns the flat gradient vector
	// aligned with params().
	backward(pt *dataset.Partition, rows []int, dLogits *mat.Matrix) []float64
	// reinit re-randomises parameters (fresh model for grid search).
	reinit(seed int64)
	// perSampleEncryptedScalars is the number of scalars each forward
	// sample ships from participants to the server (cost accounting).
	perSampleEncryptedScalars() int
	// parties returns the participant count (cost accounting).
	parties() int
}

// softmaxCE computes mean cross-entropy loss and the logits gradient
// d(loss)/d(logits) for integer labels.
func softmaxCE(logits *mat.Matrix, y []int) (float64, *mat.Matrix) {
	n, c := logits.Rows, logits.Cols
	grad := mat.New(n, c)
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		g := grad.Row(i)
		for j, v := range row {
			e := math.Exp(v - maxv)
			g[j] = e
			sum += e
		}
		for j := range g {
			g[j] /= sum
		}
		loss += -math.Log(math.Max(g[y[i]], 1e-300))
		g[y[i]] -= 1
		for j := range g {
			g[j] /= float64(n)
		}
	}
	return loss / float64(n), grad
}

// Accuracy returns the fraction of matching predictions.
func Accuracy(pred, y []int) float64 {
	if len(pred) != len(y) {
		panic("ml: Accuracy length mismatch")
	}
	if len(y) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

// evaluate computes loss and accuracy over a whole set (in batches to bound
// memory) without accumulating gradients.
func evaluate(m gradModel, pt *dataset.Partition, y []int, batch int) (loss, acc float64) {
	n := len(y)
	if n == 0 {
		return 0, 0
	}
	correct := 0
	var totalLoss float64
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		rows := make([]int, end-start)
		for i := range rows {
			rows[i] = start + i
		}
		logits := m.forward(pt, rows)
		l, _ := softmaxCE(logits, y[start:end])
		totalLoss += l * float64(end-start)
		for i := 0; i < logits.Rows; i++ {
			if mat.ArgMax(logits.Row(i)) == y[start+i] {
				correct++
			}
		}
	}
	return totalLoss / float64(n), float64(correct) / float64(n)
}

// chargeBatchCost accounts one federated training batch: every participant
// encrypts its per-sample outputs, the server homomorphically aggregates
// them, decrypts the batch for the top model, and ships per-sample gradients
// back to each participant.
func chargeBatchCost(cfg TrainConfig, m gradModel, batchLen int) {
	if cfg.Counts == nil {
		return
	}
	scalars := int64(batchLen * m.perSampleEncryptedScalars())
	p := int64(m.parties())
	cfg.Counts.Add(costmodel.Raw{
		Encryptions: scalars,
		CipherAdds:  scalars * (p - 1) / p, // aggregation across parties
		Decryptions: scalars / p,           // server recovers aggregated activations
		ItemsSent:   2 * scalars,           // forward activations + backward gradients
		Messages:    2 * p,
	})
}

// trainOnce trains m at a fixed learning rate, returning the best validation
// loss observed and restoring nothing (caller keeps the final state).
func trainOnce(m gradModel, trainPt *dataset.Partition, yTrain []int,
	valPt *dataset.Partition, yVal []int, lr float64, cfg TrainConfig) (epochs int, bestValLoss float64) {
	opt := NewAdam(lr)
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(yTrain)
	order := rng.Perm(n)
	bestValLoss = math.Inf(1)
	sinceBest := 0
	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		// Reshuffle each epoch.
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			rows := order[start:end]
			logits := m.forward(trainPt, rows)
			yBatch := make([]int, len(rows))
			for i, r := range rows {
				yBatch[i] = yTrain[r]
			}
			_, dLogits := softmaxCE(logits, yBatch)
			grads := m.backward(trainPt, rows, dLogits)
			opt.Step(m.params(), grads)
			chargeBatchCost(cfg, m, len(rows))
		}
		valLoss, _ := evaluate(m, valPt, yVal, cfg.BatchSize)
		if valLoss < bestValLoss-1e-9 {
			bestValLoss = valLoss
			sinceBest = 0
		} else {
			sinceBest++
			if sinceBest >= cfg.Patience {
				return epoch, bestValLoss
			}
		}
	}
	return cfg.MaxEpochs, bestValLoss
}

// fitWithGrid runs the learning-rate grid search: train a fresh model per
// rate, keep the one with the best validation accuracy.
func fitWithGrid(m gradModel, trainPt *dataset.Partition, yTrain []int,
	valPt *dataset.Partition, yVal []int, cfg TrainConfig) (*FitReport, error) {
	cfg = cfg.withDefaults()
	if trainPt == nil || len(yTrain) == 0 {
		return nil, fmt.Errorf("ml: empty training data")
	}
	if trainPt.Parties[0].Rows != len(yTrain) {
		return nil, fmt.Errorf("ml: %d rows vs %d labels", trainPt.Parties[0].Rows, len(yTrain))
	}
	bestAcc := math.Inf(-1)
	var best []float64
	report := &FitReport{}
	for _, lr := range cfg.LRGrid {
		m.reinit(cfg.Seed)
		epochs, _ := trainOnce(m, trainPt, yTrain, valPt, yVal, lr, cfg)
		valLoss, valAcc := evaluate(m, valPt, yVal, cfg.BatchSize)
		if valAcc > bestAcc {
			bestAcc = valAcc
			best = append(best[:0], m.params()...)
			report.BestLR = lr
			report.Epochs = epochs
			report.ValLoss = valLoss
			report.ValAccuracy = valAcc
		}
	}
	copy(m.params(), best)
	return report, nil
}
