package ml

import (
	"math"
	"math/rand"
	"testing"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/mat"
)

// tinyPartition builds a small random vertical partition for gradient checks.
func tinyPartition(t *testing.T, rows int, dims []int, seed int64) (*dataset.Partition, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	parties := make([]*mat.Matrix, len(dims))
	idx := make([][]int, len(dims))
	col := 0
	for p, f := range dims {
		m := mat.New(rows, f)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		parties[p] = m
		ids := make([]int, f)
		for j := range ids {
			ids[j] = col
			col++
		}
		idx[p] = ids
	}
	y := make([]int, rows)
	for i := range y {
		y[i] = rng.Intn(2)
	}
	dup := make([]int, len(dims))
	for i := range dup {
		dup[i] = -1
	}
	return &dataset.Partition{Parties: parties, FeatureIdx: idx, DuplicateOf: dup}, y
}

// learnablePartition produces data a linear model can separate.
func learnablePartition(t *testing.T, name string, rows, parties int) (*dataset.Partition, []int, *dataset.Partition, []int, *dataset.Partition, []int) {
	t.Helper()
	spec, err := dataset.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := spec.Generate(rows)
	if err != nil {
		t.Fatal(err)
	}
	split, err := dataset.TrainValTest(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ds *dataset.Dataset) *dataset.Partition {
		pt, err := dataset.VerticalSplit(ds, parties, 4)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	return mk(split.Train), split.Train.Y, mk(split.Val), split.Val.Y, mk(split.Test), split.Test.Y
}

func numericalGradCheck(t *testing.T, m gradModel, pt *dataset.Partition, y []int, samples int, tol float64) {
	t.Helper()
	// Randomise every parameter (including zero-initialised biases) so no
	// ReLU pre-activation sits exactly on its kink, where two-sided numeric
	// differences and subgradients legitimately disagree.
	prng := rand.New(rand.NewSource(123))
	for i := range m.params() {
		m.params()[i] = prng.NormFloat64() * 0.5
	}
	rows := make([]int, len(y))
	for i := range rows {
		rows[i] = i
	}
	lossAt := func() float64 {
		logits := m.forward(pt, rows)
		l, _ := softmaxCE(logits, y)
		return l
	}
	logits := m.forward(pt, rows)
	_, dLogits := softmaxCE(logits, y)
	analytic := m.backward(pt, rows, dLogits)
	params := m.params()
	rng := rand.New(rand.NewSource(99))
	const eps = 1e-5
	for s := 0; s < samples; s++ {
		i := rng.Intn(len(params))
		orig := params[i]
		params[i] = orig + eps
		lp := lossAt()
		params[i] = orig - eps
		lm := lossAt()
		params[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if diff := math.Abs(numeric - analytic[i]); diff > tol*(1+math.Abs(numeric)) {
			t.Fatalf("param %d: numeric %g vs analytic %g", i, numeric, analytic[i])
		}
	}
}

func TestLRGradientCheck(t *testing.T) {
	pt, y := tinyPartition(t, 12, []int{3, 2, 4}, 1)
	m, err := NewLogisticRegression(pt, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	numericalGradCheck(t, m, pt, y, 60, 1e-4)
}

func TestMLPGradientCheck(t *testing.T) {
	pt, y := tinyPartition(t, 10, []int{3, 2}, 2)
	m, err := NewMLP(pt, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	numericalGradCheck(t, m, pt, y, 80, 1e-3)
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise (x-3)² + (y+1)².
	params := []float64{0, 0}
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		grads := []float64{2 * (params[0] - 3), 2 * (params[1] + 1)}
		opt.Step(params, grads)
	}
	if math.Abs(params[0]-3) > 0.05 || math.Abs(params[1]+1) > 0.05 {
		t.Fatalf("Adam did not converge: %v", params)
	}
}

func TestAdamLengthMismatchPanics(t *testing.T) {
	opt := NewAdam(0.1)
	opt.Step([]float64{1}, []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length change")
		}
	}()
	opt.Step([]float64{1, 2}, []float64{1, 2})
}

func TestSoftmaxCEKnown(t *testing.T) {
	logits := mat.FromRows([][]float64{{0, 0}})
	loss, grad := softmaxCE(logits, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss %g, want ln2", loss)
	}
	if math.Abs(grad.At(0, 0)-(-0.5)) > 1e-12 || math.Abs(grad.At(0, 1)-0.5) > 1e-12 {
		t.Fatalf("grad %v", grad.Data)
	}
}

func TestAccuracy(t *testing.T) {
	if Accuracy([]int{1, 0, 1}, []int{1, 1, 1}) != 2.0/3.0 {
		t.Fatal("Accuracy wrong")
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestLRTrainsToHighAccuracy(t *testing.T) {
	trainPt, yTr, valPt, yVal, testPt, yTest := learnablePartition(t, "Rice", 900, 3)
	m, err := NewLogisticRegression(trainPt, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Fit(trainPt, yTr, valPt, yVal, TrainConfig{MaxEpochs: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(m.Predict(testPt), yTest)
	if acc < 0.85 {
		t.Fatalf("LR test accuracy %.3f too low (val %.3f, lr %g)", acc, rep.ValAccuracy, rep.BestLR)
	}
}

func TestMLPTrainsToHighAccuracy(t *testing.T) {
	trainPt, yTr, valPt, yVal, testPt, yTest := learnablePartition(t, "Rice", 700, 3)
	m, err := NewMLP(trainPt, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Fit(trainPt, yTr, valPt, yVal, TrainConfig{MaxEpochs: 25, LRGrid: []float64{0.01}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(m.Predict(testPt), yTest)
	if acc < 0.85 {
		t.Fatalf("MLP test accuracy %.3f too low (val %.3f)", acc, rep.ValAccuracy)
	}
}

func TestGridSearchPicksALearningRate(t *testing.T) {
	trainPt, yTr, valPt, yVal, _, _ := learnablePartition(t, "Rice", 400, 2)
	m, _ := NewLogisticRegression(trainPt, 2, 7)
	rep, err := m.Fit(trainPt, yTr, valPt, yVal, TrainConfig{MaxEpochs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, lr := range []float64{0.001, 0.01, 0.1} {
		if rep.BestLR == lr {
			found = true
		}
	}
	if !found {
		t.Fatalf("BestLR %g not from the default grid", rep.BestLR)
	}
}

func TestEarlyStopping(t *testing.T) {
	trainPt, yTr, valPt, yVal, _, _ := learnablePartition(t, "Rice", 400, 2)
	m, _ := NewLogisticRegression(trainPt, 2, 7)
	rep, err := m.Fit(trainPt, yTr, valPt, yVal,
		TrainConfig{MaxEpochs: 200, Patience: 3, LRGrid: []float64{0.1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs >= 200 {
		t.Fatalf("early stopping never triggered (%d epochs)", rep.Epochs)
	}
}

func TestTrainingCostAccounting(t *testing.T) {
	trainPt, yTr, valPt, yVal, _, _ := learnablePartition(t, "Rice", 300, 3)
	var counts costmodel.Counts
	m, _ := NewLogisticRegression(trainPt, 2, 7)
	if _, err := m.Fit(trainPt, yTr, valPt, yVal,
		TrainConfig{MaxEpochs: 2, LRGrid: []float64{0.01}, Counts: &counts, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	c := counts.Snapshot()
	if c.Encryptions == 0 || c.Messages == 0 {
		t.Fatalf("training cost not accounted: %+v", c)
	}
}

func TestTrainingCostScalesWithParties(t *testing.T) {
	cost := func(parties int) int64 {
		trainPt, yTr, valPt, yVal, _, _ := learnablePartition(t, "Credit", 400, parties)
		var counts costmodel.Counts
		m, _ := NewLogisticRegression(trainPt, 2, 7)
		if _, err := m.Fit(trainPt, yTr, valPt, yVal,
			TrainConfig{MaxEpochs: 1, LRGrid: []float64{0.01}, Counts: &counts, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		return counts.Snapshot().Encryptions
	}
	c2, c4 := cost(2), cost(4)
	if c4 <= c2 {
		t.Fatalf("cost should grow with parties: %d vs %d", c2, c4)
	}
}

func TestKNNKnownAnswer(t *testing.T) {
	// Two clusters on a single axis.
	train := &dataset.Partition{
		Parties:     []*mat.Matrix{mat.FromRows([][]float64{{0}, {0.1}, {10}, {10.1}})},
		FeatureIdx:  [][]int{{0}},
		DuplicateOf: []int{-1},
	}
	y := []int{0, 0, 1, 1}
	knn, err := NewKNN(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := knn.Fit(train, y); err != nil {
		t.Fatal(err)
	}
	query := &dataset.Partition{
		Parties:     []*mat.Matrix{mat.FromRows([][]float64{{0.05}, {9.9}})},
		FeatureIdx:  [][]int{{0}},
		DuplicateOf: []int{-1},
	}
	pred, err := knn.Predict(query)
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != 0 || pred[1] != 1 {
		t.Fatalf("pred %v", pred)
	}
}

func TestKNNAccuracyOnLearnable(t *testing.T) {
	trainPt, yTr, _, _, testPt, yTest := learnablePartition(t, "Rice", 800, 3)
	knn, _ := NewKNN(5, 2)
	if err := knn.Fit(trainPt, yTr); err != nil {
		t.Fatal(err)
	}
	pred, err := knn.Predict(testPt)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(pred, yTest); acc < 0.85 {
		t.Fatalf("KNN accuracy %.3f too low", acc)
	}
}

func TestKNNCostAccounting(t *testing.T) {
	trainPt, yTr, _, _, testPt, _ := learnablePartition(t, "Rice", 200, 2)
	var counts costmodel.Counts
	knn, _ := NewKNN(5, 2)
	knn.Counts = &counts
	if err := knn.Fit(trainPt, yTr); err != nil {
		t.Fatal(err)
	}
	if _, err := knn.Predict(testPt); err != nil {
		t.Fatal(err)
	}
	c := counts.Snapshot()
	nq := int64(testPt.Parties[0].Rows)
	nTr := int64(trainPt.Parties[0].Rows)
	if c.Encryptions != nq*nTr*2 {
		t.Fatalf("encryptions %d, want %d", c.Encryptions, nq*nTr*2)
	}
}

func TestKNNValidation(t *testing.T) {
	if _, err := NewKNN(0, 2); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := NewKNN(3, 1); err == nil {
		t.Fatal("expected classes error")
	}
	knn, _ := NewKNN(3, 2)
	if _, err := knn.Predict(nil); err == nil {
		t.Fatal("expected not-fitted error")
	}
	pt, y := tinyPartition(t, 2, []int{2}, 3)
	if err := knn.Fit(pt, y); err == nil {
		t.Fatal("expected k>rows error")
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewLogisticRegression(nil, 2, 1); err == nil {
		t.Fatal("expected partition error")
	}
	pt, _ := tinyPartition(t, 4, []int{2}, 3)
	if _, err := NewLogisticRegression(pt, 1, 1); err == nil {
		t.Fatal("expected classes error")
	}
	if _, err := NewMLP(nil, 2, 1); err == nil {
		t.Fatal("expected MLP partition error")
	}
	if _, err := NewMLP(pt, 0, 1); err == nil {
		t.Fatal("expected MLP classes error")
	}
}

func TestModelNames(t *testing.T) {
	pt, _ := tinyPartition(t, 4, []int{2}, 3)
	lr, _ := NewLogisticRegression(pt, 2, 1)
	mlp, _ := NewMLP(pt, 2, 1)
	knn, _ := NewKNN(3, 2)
	if lr.Name() != "LR" || mlp.Name() != "MLP" || knn.Name() != "KNN" {
		t.Fatal("model names wrong")
	}
}

func TestConfusionMatrix(t *testing.T) {
	pred := []int{0, 1, 1, 0}
	truth := []int{0, 1, 0, 1}
	cm := ConfusionMatrix(pred, truth, 2)
	if cm[0][0] != 1 || cm[0][1] != 1 || cm[1][0] != 1 || cm[1][1] != 1 {
		t.Fatalf("confusion %v", cm)
	}
}

func TestPrecisionRecallF1Known(t *testing.T) {
	// Class 1: tp=2 fp=1 fn=1 -> P=2/3 R=2/3 F1=2/3.
	pred := []int{1, 1, 1, 0, 0}
	truth := []int{1, 1, 0, 1, 0}
	m := PrecisionRecallF1(pred, truth, 2)
	if math.Abs(m[1].Precision-2.0/3) > 1e-12 || math.Abs(m[1].Recall-2.0/3) > 1e-12 {
		t.Fatalf("class1 metrics %+v", m[1])
	}
	if math.Abs(m[1].F1-2.0/3) > 1e-12 {
		t.Fatalf("F1 %g", m[1].F1)
	}
	if m[1].Support != 3 {
		t.Fatalf("support %d", m[1].Support)
	}
}

func TestPrecisionRecallF1Degenerate(t *testing.T) {
	// No predictions and no instances for class 1.
	pred := []int{0, 0}
	truth := []int{0, 0}
	m := PrecisionRecallF1(pred, truth, 2)
	if m[1].Precision != 0 || m[1].Recall != 0 || m[1].F1 != 0 {
		t.Fatalf("degenerate class should be zeros: %+v", m[1])
	}
}

func TestMacroF1PerfectAndWorst(t *testing.T) {
	pred := []int{0, 1, 0, 1}
	if MacroF1(pred, pred, 2) != 1 {
		t.Fatal("perfect predictions should give F1=1")
	}
	inverted := []int{1, 0, 1, 0}
	if MacroF1(inverted, pred, 2) != 0 {
		t.Fatal("fully inverted predictions should give F1=0")
	}
}
