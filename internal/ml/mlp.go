package ml

import (
	"fmt"
	"math"
	"math/rand"

	"vfps/internal/dataset"
	"vfps/internal/mat"
)

// MLP is the split multi-layer perceptron of §V-A: a one-layer bottom model
// on each participant (F_p → F_p, ReLU) whose concatenated activations feed
// a two-layer top model on the server (F → F, ReLU, F → C). Hidden widths
// equal the input feature dimensions, as in the paper.
type MLP struct {
	classes  int
	featDims []int
	total    int // F = Σ F_p
	offsets  []int

	buf []float64
	// views into buf
	bottomW [][]float64 // per party F_p×F_p
	bottomB [][]float64 // per party F_p
	topW1   []float64   // F×F
	topB1   []float64   // F
	topW2   []float64   // F×C
	topB2   []float64   // C

	// forward caches
	a1pre, h1, a2pre, h2 *mat.Matrix
}

// NewMLP shapes the split MLP for a partition layout.
func NewMLP(pt *dataset.Partition, classes int, seed int64) (*MLP, error) {
	if pt == nil || pt.P() == 0 {
		return nil, fmt.Errorf("ml: MLP needs a partition")
	}
	if classes < 2 {
		return nil, fmt.Errorf("ml: need at least 2 classes, got %d", classes)
	}
	m := &MLP{classes: classes}
	size := 0
	off := 0
	for _, party := range pt.Parties {
		f := party.Cols
		m.featDims = append(m.featDims, f)
		m.offsets = append(m.offsets, off)
		off += f
		size += f*f + f
	}
	m.total = off
	size += m.total*m.total + m.total // top1
	size += m.total*classes + classes // top2
	m.buf = make([]float64, size)
	p := 0
	for _, f := range m.featDims {
		m.bottomW = append(m.bottomW, m.buf[p:p+f*f])
		p += f * f
		m.bottomB = append(m.bottomB, m.buf[p:p+f])
		p += f
	}
	m.topW1 = m.buf[p : p+m.total*m.total]
	p += m.total * m.total
	m.topB1 = m.buf[p : p+m.total]
	p += m.total
	m.topW2 = m.buf[p : p+m.total*m.classes]
	p += m.total * m.classes
	m.topB2 = m.buf[p : p+m.classes]
	m.reinit(seed)
	return m, nil
}

func (m *MLP) params() []float64 { return m.buf }

func (m *MLP) reinit(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	heInit := func(w []float64, fanIn int) {
		s := math.Sqrt(2 / float64(fanIn))
		for i := range w {
			w[i] = rng.NormFloat64() * s
		}
	}
	for p, f := range m.featDims {
		heInit(m.bottomW[p], f)
		for i := range m.bottomB[p] {
			m.bottomB[p][i] = 0
		}
	}
	heInit(m.topW1, m.total)
	for i := range m.topB1 {
		m.topB1[i] = 0
	}
	heInit(m.topW2, m.total)
	for i := range m.topB2 {
		m.topB2[i] = 0
	}
}

func (m *MLP) parties() int { return len(m.featDims) }

// perSampleEncryptedScalars: each party ships its F_p bottom activations.
func (m *MLP) perSampleEncryptedScalars() int { return m.total }

func relu(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

func (m *MLP) forward(pt *dataset.Partition, rows []int) *mat.Matrix {
	n := len(rows)
	m.a1pre = mat.New(n, m.total)
	// Bottom models: h1[:, off_p:off_p+F_p] = ReLU(x_p W_p + b_p).
	for p, party := range pt.Parties {
		f := m.featDims[p]
		w := m.bottomW[p]
		b := m.bottomB[p]
		off := m.offsets[p]
		for i, r := range rows {
			x := party.Row(r)
			out := m.a1pre.Row(i)[off : off+f]
			copy(out, b)
			for fi, xv := range x {
				if xv == 0 {
					continue
				}
				wRow := w[fi*f : (fi+1)*f]
				for j, wv := range wRow {
					out[j] += xv * wv
				}
			}
		}
	}
	m.h1 = m.a1pre.Clone().Apply(relu)
	// Top layer 1: a2 = h1 W1 + b1, h2 = ReLU(a2).
	m.a2pre = mat.New(n, m.total)
	for i := 0; i < n; i++ {
		h := m.h1.Row(i)
		out := m.a2pre.Row(i)
		copy(out, m.topB1)
		for j, hv := range h {
			if hv == 0 {
				continue
			}
			wRow := m.topW1[j*m.total : (j+1)*m.total]
			for k, wv := range wRow {
				out[k] += hv * wv
			}
		}
	}
	m.h2 = m.a2pre.Clone().Apply(relu)
	// Output layer: logits = h2 W2 + b2.
	logits := mat.New(n, m.classes)
	for i := 0; i < n; i++ {
		h := m.h2.Row(i)
		out := logits.Row(i)
		copy(out, m.topB2)
		for j, hv := range h {
			if hv == 0 {
				continue
			}
			wRow := m.topW2[j*m.classes : (j+1)*m.classes]
			for c, wv := range wRow {
				out[c] += hv * wv
			}
		}
	}
	return logits
}

func (m *MLP) backward(pt *dataset.Partition, rows []int, dLogits *mat.Matrix) []float64 {
	n := len(rows)
	grads := make([]float64, len(m.buf))
	// Locate gradient views mirroring the parameter layout.
	p := 0
	gBottomW := make([][]float64, len(m.featDims))
	gBottomB := make([][]float64, len(m.featDims))
	for pi, f := range m.featDims {
		gBottomW[pi] = grads[p : p+f*f]
		p += f * f
		gBottomB[pi] = grads[p : p+f]
		p += f
	}
	gTopW1 := grads[p : p+m.total*m.total]
	p += m.total * m.total
	gTopB1 := grads[p : p+m.total]
	p += m.total
	gTopW2 := grads[p : p+m.total*m.classes]
	p += m.total * m.classes
	gTopB2 := grads[p : p+m.classes]

	// Output layer.
	dh2 := mat.New(n, m.total)
	for i := 0; i < n; i++ {
		dl := dLogits.Row(i)
		h := m.h2.Row(i)
		for j, hv := range h {
			gRow := gTopW2[j*m.classes : (j+1)*m.classes]
			dRow := m.topW2[j*m.classes : (j+1)*m.classes]
			var acc float64
			for c, dv := range dl {
				if hv != 0 {
					gRow[c] += hv * dv
				}
				acc += dv * dRow[c]
			}
			dh2.Row(i)[j] = acc
		}
		for c, dv := range dl {
			gTopB2[c] += dv
		}
	}
	// Top hidden layer (ReLU).
	da2 := dh2
	for i := 0; i < n; i++ {
		pre := m.a2pre.Row(i)
		row := da2.Row(i)
		for j := range row {
			if pre[j] <= 0 {
				row[j] = 0
			}
		}
	}
	dh1 := mat.New(n, m.total)
	for i := 0; i < n; i++ {
		h := m.h1.Row(i)
		d := da2.Row(i)
		for j, hv := range h {
			gRow := gTopW1[j*m.total : (j+1)*m.total]
			wRow := m.topW1[j*m.total : (j+1)*m.total]
			var acc float64
			for k, dv := range d {
				if hv != 0 {
					gRow[k] += hv * dv
				}
				acc += dv * wRow[k]
			}
			dh1.Row(i)[j] = acc
		}
		for k, dv := range d {
			gTopB1[k] += dv
		}
	}
	// Bottom layers (ReLU then per-party linear).
	da1 := dh1
	for i := 0; i < n; i++ {
		pre := m.a1pre.Row(i)
		row := da1.Row(i)
		for j := range row {
			if pre[j] <= 0 {
				row[j] = 0
			}
		}
	}
	for pi, party := range pt.Parties {
		f := m.featDims[pi]
		off := m.offsets[pi]
		gw := gBottomW[pi]
		gb := gBottomB[pi]
		for i, r := range rows {
			x := party.Row(r)
			d := da1.Row(i)[off : off+f]
			for fi, xv := range x {
				if xv == 0 {
					continue
				}
				gRow := gw[fi*f : (fi+1)*f]
				for j, dv := range d {
					gRow[j] += xv * dv
				}
			}
			for j, dv := range d {
				gb[j] += dv
			}
		}
	}
	return grads
}

// Fit trains with the shared protocol (grid search + early stopping).
func (m *MLP) Fit(trainPt *dataset.Partition, yTrain []int,
	valPt *dataset.Partition, yVal []int, cfg TrainConfig) (*FitReport, error) {
	return fitWithGrid(m, trainPt, yTrain, valPt, yVal, cfg)
}

// Predict returns argmax class predictions for every row of the partition.
func (m *MLP) Predict(pt *dataset.Partition) []int {
	n := pt.Parties[0].Rows
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	out := make([]int, n)
	// Batch to bound the activation cache.
	const chunk = 256
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		logits := m.forward(pt, rows[start:end])
		for i := 0; i < logits.Rows; i++ {
			out[start+i] = mat.ArgMax(logits.Row(i))
		}
	}
	return out
}

// Name implements the downstream-model naming used by the harness.
func (m *MLP) Name() string { return "MLP" }
