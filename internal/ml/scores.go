package ml

import (
	"fmt"
	"math"

	"vfps/internal/dataset"
	"vfps/internal/topk"
)

// PredictScores returns the positive-class probability for every row
// (binary models only), for threshold tuning and AUC evaluation.
func (m *LogisticRegression) PredictScores(pt *dataset.Partition) ([]float64, error) {
	if m.classes != 2 {
		return nil, fmt.Errorf("ml: scores require a binary model, have %d classes", m.classes)
	}
	n := pt.Parties[0].Rows
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	logits := m.forward(pt, rows)
	out := make([]float64, n)
	for i := range out {
		row := logits.Row(i)
		out[i] = softmax2(row[0], row[1])
	}
	return out, nil
}

// PredictScores returns the positive-class probability for every row
// (binary models only).
func (m *MLP) PredictScores(pt *dataset.Partition) ([]float64, error) {
	if m.classes != 2 {
		return nil, fmt.Errorf("ml: scores require a binary model, have %d classes", m.classes)
	}
	n := pt.Parties[0].Rows
	out := make([]float64, n)
	const chunk = 256
	rows := make([]int, 0, chunk)
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		rows = rows[:0]
		for r := start; r < end; r++ {
			rows = append(rows, r)
		}
		logits := m.forward(pt, rows)
		for i := 0; i < logits.Rows; i++ {
			row := logits.Row(i)
			out[start+i] = softmax2(row[0], row[1])
		}
	}
	return out, nil
}

// softmax2 is the probability of class 1 under a two-class softmax.
func softmax2(z0, z1 float64) float64 { return 1 / (1 + math.Exp(z0-z1)) }

// PredictScores returns the positive-class probability for every row.
func (m *GBDT) PredictScores(pt *dataset.Partition) ([]float64, error) {
	if len(m.trees) == 0 {
		return nil, fmt.Errorf("ml: gbdt not fitted")
	}
	if pt.P() != len(m.nFeats) {
		return nil, fmt.Errorf("ml: gbdt layout mismatch")
	}
	n := pt.Parties[0].Rows
	out := make([]float64, n)
	rowBuf := make([]float64, 0, 64)
	for i := 0; i < n; i++ {
		rowBuf = jointRow(pt, i, rowBuf)
		margin := m.bias
		for _, t := range m.trees {
			margin += m.cfg.LearningRate * t.predict(rowBuf)
		}
		out[i] = sigmoid(margin)
	}
	return out, nil
}

// PredictScores returns the positive-class vote fraction among the k
// nearest neighbours of every query row.
func (m *KNN) PredictScores(queryPt *dataset.Partition) ([]float64, error) {
	if m.trainPt == nil {
		return nil, fmt.Errorf("ml: knn not fitted")
	}
	if m.classes != 2 {
		return nil, fmt.Errorf("ml: scores require a binary model, have %d classes", m.classes)
	}
	if queryPt.P() != m.trainPt.P() {
		return nil, fmt.Errorf("ml: knn partition layout mismatch")
	}
	nq := queryPt.Parties[0].Rows
	nTrain := len(m.yTrain)
	out := make([]float64, nq)
	dist := make([]float64, nTrain)
	for q := 0; q < nq; q++ {
		for i := range dist {
			dist[i] = 0
		}
		for p, party := range queryPt.Parties {
			qRow := party.Row(q)
			train := m.trainPt.Parties[p]
			for i := 0; i < nTrain; i++ {
				dist[i] += sqDistRows(qRow, train.Row(i))
			}
		}
		pos := 0
		for _, idx := range topk.KSmallest(dist, m.K) {
			if m.yTrain[idx] == 1 {
				pos++
			}
		}
		out[q] = float64(pos) / float64(m.K)
	}
	return out, nil
}

func sqDistRows(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
