package ml

import (
	"bytes"
	"testing"
)

func TestLRSaveLoadRoundTrip(t *testing.T) {
	trainPt, yTr, valPt, yVal, testPt, _ := learnablePartition(t, "Rice", 400, 3)
	m, _ := NewLogisticRegression(trainPt, 2, 7)
	if _, err := m.Fit(trainPt, yTr, valPt, yVal, TrainConfig{MaxEpochs: 5, LRGrid: []float64{0.01}, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLogisticRegression(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Predict(testPt)
	got := loaded.Predict(testPt)
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("loaded LR predicts differently")
		}
	}
}

func TestMLPSaveLoadRoundTrip(t *testing.T) {
	trainPt, yTr, valPt, yVal, testPt, _ := learnablePartition(t, "Rice", 300, 2)
	m, _ := NewMLP(trainPt, 2, 7)
	if _, err := m.Fit(trainPt, yTr, valPt, yVal, TrainConfig{MaxEpochs: 3, LRGrid: []float64{0.01}, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Predict(testPt)
	got := loaded.Predict(testPt)
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("loaded MLP predicts differently")
		}
	}
}

func TestGBDTSaveLoadRoundTrip(t *testing.T) {
	trainPt, yTr, valPt, yVal, testPt, _ := learnablePartition(t, "Rice", 300, 2)
	m := NewGBDT(GBDTConfig{Rounds: 8})
	if err := m.Fit(trainPt, yTr, valPt, yVal); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGBDT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Predict(testPt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Predict(testPt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("loaded GBDT predicts differently")
		}
	}
	if loaded.Trees() != m.Trees() {
		t.Fatal("tree count changed across save/load")
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	trainPt, yTr, _, _, _, _ := learnablePartition(t, "Rice", 200, 2)
	m, _ := NewLogisticRegression(trainPt, 2, 7)
	if _, err := m.Fit(trainPt, yTr, trainPt, yTr, TrainConfig{MaxEpochs: 1, LRGrid: []float64{0.01}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMLP(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected kind mismatch error")
	}
	if _, err := LoadGBDT(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected kind mismatch error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadLogisticRegression(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := LoadGBDT(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
}

func TestSaveUnfittedGBDTFails(t *testing.T) {
	var buf bytes.Buffer
	if err := NewGBDT(GBDTConfig{}).Save(&buf); err == nil {
		t.Fatal("expected unfitted error")
	}
}
