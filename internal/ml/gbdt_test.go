package ml

import (
	"testing"

	"vfps/internal/costmodel"
	"vfps/internal/dataset"
	"vfps/internal/mat"
)

func TestGBDTTrainsToHighAccuracy(t *testing.T) {
	trainPt, yTr, valPt, yVal, testPt, yTest := learnablePartition(t, "Rice", 900, 3)
	m := NewGBDT(GBDTConfig{Rounds: 40})
	if err := m.Fit(trainPt, yTr, valPt, yVal); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(testPt)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(pred, yTest); acc < 0.85 {
		t.Fatalf("GBDT accuracy %.3f too low (%d trees)", acc, m.Trees())
	}
}

func TestGBDTBeatsBiasOnHardData(t *testing.T) {
	trainPt, yTr, valPt, yVal, testPt, yTest := learnablePartition(t, "Credit", 900, 3)
	m := NewGBDT(GBDTConfig{Rounds: 40})
	if err := m.Fit(trainPt, yTr, valPt, yVal); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(testPt)
	if err != nil {
		t.Fatal(err)
	}
	// Majority-class rate on Credit-like data is ~0.5; boosted trees must
	// clearly beat it.
	if acc := Accuracy(pred, yTest); acc < 0.62 {
		t.Fatalf("GBDT accuracy %.3f no better than chance", acc)
	}
}

func TestGBDTEarlyStopping(t *testing.T) {
	trainPt, yTr, valPt, yVal, _, _ := learnablePartition(t, "Rice", 500, 2)
	m := NewGBDT(GBDTConfig{Rounds: 300, Patience: 3})
	if err := m.Fit(trainPt, yTr, valPt, yVal); err != nil {
		t.Fatal(err)
	}
	if m.Trees() >= 300 {
		t.Fatalf("early stopping never fired: %d trees", m.Trees())
	}
}

func TestGBDTDeterministic(t *testing.T) {
	trainPt, yTr, valPt, yVal, testPt, _ := learnablePartition(t, "Bank", 400, 2)
	run := func() []int {
		m := NewGBDT(GBDTConfig{Rounds: 10})
		if err := m.Fit(trainPt, yTr, valPt, yVal); err != nil {
			t.Fatal(err)
		}
		pred, err := m.Predict(testPt)
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GBDT training not deterministic")
		}
	}
}

func TestGBDTCostAccounting(t *testing.T) {
	trainPt, yTr, valPt, yVal, _, _ := learnablePartition(t, "Rice", 300, 3)
	var counts costmodel.Counts
	m := NewGBDT(GBDTConfig{Rounds: 5, Patience: 100})
	m.Counts = &counts
	if err := m.Fit(trainPt, yTr, valPt, yVal); err != nil {
		t.Fatal(err)
	}
	c := counts.Snapshot()
	rounds := int64(m.Trees())
	// Leader encrypts 2N gradients per round.
	wantEnc := rounds * 2 * int64(trainPt.Parties[0].Rows)
	if c.Encryptions != wantEnc {
		t.Fatalf("encryptions %d, want %d", c.Encryptions, wantEnc)
	}
	if c.Decryptions == 0 || c.Messages == 0 {
		t.Fatal("histogram exchange not accounted")
	}
}

func TestGBDTValidation(t *testing.T) {
	m := NewGBDT(GBDTConfig{})
	if err := m.Fit(nil, nil, nil, nil); err == nil {
		t.Fatal("expected partition error")
	}
	pt, y := tinyPartition(t, 10, []int{2}, 1)
	if err := m.Fit(pt, y[:5], nil, nil); err == nil {
		t.Fatal("expected label mismatch error")
	}
	bad := append([]int{}, y...)
	bad[0] = 7
	if err := m.Fit(pt, bad, nil, nil); err == nil {
		t.Fatal("expected non-binary label error")
	}
	ones := make([]int, 10)
	for i := range ones {
		ones[i] = 1
	}
	if err := m.Fit(pt, ones, nil, nil); err == nil {
		t.Fatal("expected single-class error")
	}
	if _, err := m.Predict(pt); err == nil {
		t.Fatal("expected not-fitted error")
	}
}

func TestGBDTPredictLayoutMismatch(t *testing.T) {
	trainPt, yTr, _, _, _, _ := learnablePartition(t, "Rice", 200, 2)
	m := NewGBDT(GBDTConfig{Rounds: 3})
	if err := m.Fit(trainPt, yTr, nil, nil); err != nil {
		t.Fatal(err)
	}
	wrong := &dataset.Partition{
		Parties:     []*mat.Matrix{mat.New(5, 3)},
		FeatureIdx:  [][]int{{0, 1, 2}},
		DuplicateOf: []int{-1},
	}
	if _, err := m.Predict(wrong); err == nil {
		t.Fatal("expected layout mismatch error")
	}
}

func TestGBDTDepthOneIsStump(t *testing.T) {
	// A depth-1 tree on linearly separated one-feature data must split it.
	x := mat.New(100, 1)
	y := make([]int, 100)
	for i := 0; i < 100; i++ {
		if i < 50 {
			x.Set(i, 0, float64(i)/50-1.5) // negatives below
		} else {
			x.Set(i, 0, float64(i-50)/50+0.5)
			y[i] = 1
		}
	}
	pt := &dataset.Partition{
		Parties:     []*mat.Matrix{x},
		FeatureIdx:  [][]int{{0}},
		DuplicateOf: []int{-1},
	}
	m := NewGBDT(GBDTConfig{Rounds: 5, MaxDepth: 1, MinChildCount: 2})
	if err := m.Fit(pt, y, nil, nil); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(pt)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(pred, y); acc < 0.99 {
		t.Fatalf("stump failed separable data: %.3f", acc)
	}
}
