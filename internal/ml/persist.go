package ml

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Trained models serialise to a small gob envelope so downstream users can
// train once and deploy the model without retraining. KNN is deliberately
// excluded: it is a lazy learner whose "model" is the training partition
// itself.

const (
	kindLR   = "vfps/lr/v1"
	kindMLP  = "vfps/mlp/v1"
	kindGBDT = "vfps/gbdt/v1"
)

type envelope struct {
	Kind string
	Body []byte
}

type lrSnapshot struct {
	Classes  int
	FeatDims []int
	Buf      []float64
}

type mlpSnapshot struct {
	Classes  int
	FeatDims []int
	Buf      []float64
}

type gbdtSnapshot struct {
	Cfg    GBDTConfig
	Bias   float64
	Trees  []gbTree
	NFeats []int
}

func writeEnvelope(w io.Writer, kind string, body any) error {
	var enc encodedBody
	if err := gob.NewEncoder(&enc).Encode(body); err != nil {
		return fmt.Errorf("ml: encoding %s: %w", kind, err)
	}
	if err := gob.NewEncoder(w).Encode(envelope{Kind: kind, Body: enc}); err != nil {
		return fmt.Errorf("ml: writing %s: %w", kind, err)
	}
	return nil
}

type encodedBody []byte

func (e *encodedBody) Write(p []byte) (int, error) {
	*e = append(*e, p...)
	return len(p), nil
}

func readEnvelope(r io.Reader, wantKind string, body any) error {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("ml: reading model: %w", err)
	}
	if env.Kind != wantKind {
		return fmt.Errorf("ml: model kind %q, want %q", env.Kind, wantKind)
	}
	if err := gob.NewDecoder(bytesReader(env.Body)).Decode(body); err != nil {
		return fmt.Errorf("ml: decoding %s: %w", wantKind, err)
	}
	return nil
}

type byteReaderWrapper struct {
	b []byte
}

func bytesReader(b []byte) io.Reader { return &byteReaderWrapper{b: b} }

func (r *byteReaderWrapper) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// Save serialises the trained logistic regression.
func (m *LogisticRegression) Save(w io.Writer) error {
	return writeEnvelope(w, kindLR, lrSnapshot{
		Classes:  m.classes,
		FeatDims: m.featDims,
		Buf:      m.buf,
	})
}

// LoadLogisticRegression reconstructs a model saved with Save.
func LoadLogisticRegression(r io.Reader) (*LogisticRegression, error) {
	var s lrSnapshot
	if err := readEnvelope(r, kindLR, &s); err != nil {
		return nil, err
	}
	if s.Classes < 2 || len(s.FeatDims) == 0 {
		return nil, fmt.Errorf("ml: corrupt logistic-regression snapshot")
	}
	m := &LogisticRegression{classes: s.Classes, featDims: s.FeatDims, buf: s.Buf}
	want := s.Classes
	for _, f := range s.FeatDims {
		want += f * s.Classes
	}
	if len(s.Buf) != want {
		return nil, fmt.Errorf("ml: snapshot has %d params, want %d", len(s.Buf), want)
	}
	off := 0
	for _, f := range m.featDims {
		m.weights = append(m.weights, m.buf[off:off+f*s.Classes])
		off += f * s.Classes
	}
	m.bias = m.buf[off : off+s.Classes]
	return m, nil
}

// Save serialises the trained MLP.
func (m *MLP) Save(w io.Writer) error {
	return writeEnvelope(w, kindMLP, mlpSnapshot{
		Classes:  m.classes,
		FeatDims: m.featDims,
		Buf:      m.buf,
	})
}

// LoadMLP reconstructs a model saved with Save.
func LoadMLP(r io.Reader) (*MLP, error) {
	var s mlpSnapshot
	if err := readEnvelope(r, kindMLP, &s); err != nil {
		return nil, err
	}
	if s.Classes < 2 || len(s.FeatDims) == 0 {
		return nil, fmt.Errorf("ml: corrupt MLP snapshot")
	}
	m := &MLP{classes: s.Classes}
	size := 0
	off := 0
	for _, f := range s.FeatDims {
		m.featDims = append(m.featDims, f)
		m.offsets = append(m.offsets, off)
		off += f
		size += f*f + f
	}
	m.total = off
	size += m.total*m.total + m.total
	size += m.total*s.Classes + s.Classes
	if len(s.Buf) != size {
		return nil, fmt.Errorf("ml: snapshot has %d params, want %d", len(s.Buf), size)
	}
	m.buf = s.Buf
	p := 0
	for _, f := range m.featDims {
		m.bottomW = append(m.bottomW, m.buf[p:p+f*f])
		p += f * f
		m.bottomB = append(m.bottomB, m.buf[p:p+f])
		p += f
	}
	m.topW1 = m.buf[p : p+m.total*m.total]
	p += m.total * m.total
	m.topB1 = m.buf[p : p+m.total]
	p += m.total
	m.topW2 = m.buf[p : p+m.total*m.classes]
	p += m.total * m.classes
	m.topB2 = m.buf[p : p+m.classes]
	return m, nil
}

// Save serialises the trained GBDT ensemble.
func (m *GBDT) Save(w io.Writer) error {
	if len(m.trees) == 0 {
		return fmt.Errorf("ml: refusing to save an unfitted GBDT")
	}
	return writeEnvelope(w, kindGBDT, gbdtSnapshot{
		Cfg:    m.cfg,
		Bias:   m.bias,
		Trees:  m.trees,
		NFeats: m.nFeats,
	})
}

// LoadGBDT reconstructs a model saved with Save.
func LoadGBDT(r io.Reader) (*GBDT, error) {
	var s gbdtSnapshot
	if err := readEnvelope(r, kindGBDT, &s); err != nil {
		return nil, err
	}
	if len(s.Trees) == 0 || len(s.NFeats) == 0 {
		return nil, fmt.Errorf("ml: corrupt GBDT snapshot")
	}
	return &GBDT{cfg: s.Cfg, bias: s.Bias, trees: s.Trees, nFeats: s.NFeats}, nil
}
