// Package ml implements the downstream models of the paper's evaluation —
// KNN, logistic regression and a split-learning MLP — from scratch: dense
// layers with manual backpropagation, the Adam optimizer, mini-batch
// training with early stopping on validation loss, and the learning-rate
// grid search of §V-A. Models train on vertical partitions so that
// federated communication and encryption costs can be accounted per batch.
package ml

import "math"

// Adam is the Adam optimizer (Kingma & Ba) over a flat parameter vector.
type Adam struct {
	lr      float64
	beta1   float64
	beta2   float64
	eps     float64
	t       int
	m, v    []float64
	created bool
}

// NewAdam returns an Adam optimizer with standard hyper-parameters
// (β1=0.9, β2=0.999, ε=1e-8) and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
}

// Step applies one Adam update to params given grads (same length).
func (a *Adam) Step(params, grads []float64) {
	if !a.created {
		a.m = make([]float64, len(params))
		a.v = make([]float64, len(params))
		a.created = true
	}
	if len(params) != len(a.m) || len(params) != len(grads) {
		panic("ml: Adam parameter length changed between steps")
	}
	a.t++
	b1c := 1 - math.Pow(a.beta1, float64(a.t))
	b2c := 1 - math.Pow(a.beta2, float64(a.t))
	for i, g := range grads {
		a.m[i] = a.beta1*a.m[i] + (1-a.beta1)*g
		a.v[i] = a.beta2*a.v[i] + (1-a.beta2)*g*g
		mHat := a.m[i] / b1c
		vHat := a.v[i] / b2c
		params[i] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
	}
}
